// Checked numeric flag parsing shared by the example binaries. atoi/atoll
// silently turn garbage into 0 (and clamp nothing), so a typo like
// `--port 80O0` would bind port 0 without a word. These helpers reject
// non-numeric text, trailing junk, negatives, and out-of-range values with
// a clear message; callers exit with code 2 (usage error) on failure.
#ifndef LAHAR_EXAMPLES_PARSE_FLAGS_H_
#define LAHAR_EXAMPLES_PARSE_FLAGS_H_

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace lahar {
namespace examples {

/// Parses `text` as an unsigned integer in [min, max]. On success stores
/// into *out and returns true; otherwise prints an error naming `flag` to
/// stderr and returns false. Rejects empty strings, non-digits, trailing
/// junk, leading '-', and values outside the range.
inline bool ParseUint(const char* flag, const char* text, uint64_t min,
                      uint64_t max, uint64_t* out) {
  if (text == nullptr || *text == '\0') {
    std::fprintf(stderr, "%s: expected a number, got an empty value\n", flag);
    return false;
  }
  if (*text == '-') {
    std::fprintf(stderr, "%s: must be non-negative, got '%s'\n", flag, text);
    return false;
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "%s: not a number: '%s'\n", flag, text);
    return false;
  }
  if (errno == ERANGE || v < min || v > max) {
    std::fprintf(stderr,
                 "%s: value '%s' out of range [%llu, %llu]\n", flag, text,
                 static_cast<unsigned long long>(min),
                 static_cast<unsigned long long>(max));
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

/// Parses `text` as a finite double in [min, max]; same error contract as
/// ParseUint.
inline bool ParseDouble(const char* flag, const char* text, double min,
                        double max, double* out) {
  if (text == nullptr || *text == '\0') {
    std::fprintf(stderr, "%s: expected a number, got an empty value\n", flag);
    return false;
  }
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "%s: not a number: '%s'\n", flag, text);
    return false;
  }
  if (errno == ERANGE || !(v >= min && v <= max)) {
    std::fprintf(stderr, "%s: value '%s' out of range [%g, %g]\n", flag, text,
                 min, max);
    return false;
  }
  *out = v;
  return true;
}

}  // namespace examples
}  // namespace lahar

#endif  // LAHAR_EXAMPLES_PARSE_FLAGS_H_
