// RFID tracking end to end: the paper's primary motivating application.
//
// Simulates office workers in an instrumented two-floor building, runs raw
// RFID readings through the particle filter (real-time) and through
// forward-backward smoothing (archived), then answers the paper's central
// coffee-room query with Lahar and with the deterministic MLE / Viterbi
// baselines, and reports precision/recall/F1 for each.
//
// Usage: rfid_tracking [workers] [horizon] [seed]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "engine/deterministic_engine.h"
#include "engine/lahar.h"
#include "metrics/quality.h"
#include "parse_flags.h"
#include "sim/scenarios.h"

using namespace lahar;

namespace {

std::string CoffeeQuery(const std::string& tag) {
  return "(At('" + tag + "', l1); At('" + tag + "', l2); At('" + tag +
         "', l3)) WHERE NotRoom(l1) AND NotRoom(l2) AND CoffeeRoom(l3)";
}

struct Pooled {
  size_t tp = 0, fp = 0, fn = 0;
  void Add(const QualityScore& s) {
    tp += s.true_positives;
    fp += s.false_positives;
    fn += s.false_negatives;
  }
  void Print(const char* label) const {
    double p = tp + fp ? double(tp) / (tp + fp) : 1.0;
    double r = tp + fn ? double(tp) / (tp + fn) : 1.0;
    double f1 = p + r > 0 ? 2 * p * r / (p + r) : 0.0;
    std::printf("  %-22s precision %.3f  recall %.3f  F1 %.3f\n", label, p, r,
                f1);
  }
};

}  // namespace

int main(int argc, char** argv) {
  uint64_t workers_in = 4, horizon_in = 300, seed = 42;
  if (argc > 1 &&
      !examples::ParseUint("workers", argv[1], 1, 10000, &workers_in)) {
    return 2;
  }
  if (argc > 2 &&
      !examples::ParseUint("horizon", argv[2], 1, 1000000, &horizon_in)) {
    return 2;
  }
  if (argc > 3 &&
      !examples::ParseUint("seed", argv[3], 0, UINT64_MAX, &seed)) {
    return 2;
  }
  const size_t workers = static_cast<size_t>(workers_in);
  const Timestamp horizon = static_cast<Timestamp>(horizon_in);
  const Timestamp tolerance = 8;
  const double rho = 0.12;

  PipelineConfig config;
  config.read_rate = 0.6;
  config.bleed_rate = 0.06;
  config.room_stay = 0.8;
  config.coffee_bias = 3.0;
  config.num_particles = 100;

  auto scenario = OfficeScenario(workers, horizon, seed, config);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  std::printf("Simulated %zu workers for %u steps in a building with %zu "
              "locations and %zu antennas (read rate %.0f%%).\n",
              workers, horizon, scenario->floorplan->num_locations(),
              scenario->floorplan->num_antennas(), 100 * config.read_rate);

  auto truth_db = scenario->BuildDatabase(StreamKind::kTruth);
  auto filtered_db = scenario->BuildDatabase(StreamKind::kFiltered);
  auto smoothed_db = scenario->BuildDatabase(StreamKind::kSmoothed);
  if (!truth_db.ok() || !filtered_db.ok() || !smoothed_db.ok()) {
    std::fprintf(stderr, "database construction failed\n");
    return 1;
  }

  Pooled realtime, mle, archived, viterbi;
  size_t total_events = 0;
  for (const TagTrace& tag : scenario->tags) {
    std::string query = CoffeeQuery(tag.name);
    // Ground truth from the simulator's exact paths.
    Lahar truth_lahar(truth_db->get());
    auto truth_answer = truth_lahar.Run(query);
    if (!truth_answer.ok()) {
      std::fprintf(stderr, "truth: %s\n",
                   truth_answer.status().ToString().c_str());
      return 1;
    }
    std::vector<Timestamp> truth = DetectionEvents(truth_answer->probs, 0.5);
    total_events += truth.size();

    // Real-time: Lahar on particle-filtered streams vs MLE.
    Lahar rt(filtered_db->get());
    auto rt_answer = rt.Run(query);
    if (rt_answer.ok()) {
      realtime.Add(Score(rt_answer->probs, rho, truth, tolerance));
    }
    auto rt_prepared = rt.Prepare(query);
    auto mle_engine = DeterministicEngine::Create(
        rt_prepared->ast, **filtered_db, Determinization::kMle);
    if (mle_engine.ok()) {
      auto sat = mle_engine->Run();
      if (sat.ok()) mle.Add(Score(*sat, truth, tolerance));
    }

    // Archived: Lahar on smoothed Markovian streams vs the Viterbi path.
    Lahar ar(smoothed_db->get());
    auto ar_answer = ar.Run(query);
    if (ar_answer.ok()) {
      archived.Add(Score(ar_answer->probs, rho, truth, tolerance));
    }
    auto map_engine = DeterministicEngine::Create(
        rt_prepared->ast, **smoothed_db, Determinization::kViterbi);
    if (map_engine.ok()) {
      auto sat = map_engine->Run();
      if (sat.ok()) viterbi.Add(Score(*sat, truth, tolerance));
    }
  }

  std::printf("\nCoffee-room events in the ground truth: %zu\n", total_events);
  std::printf("\nReal-time scenario (threshold rho = %.2f):\n", rho);
  realtime.Print("Lahar (independent)");
  mle.Print("MLE baseline");
  std::printf("\nArchived scenario:\n");
  archived.Print("Lahar (Markovian)");
  viterbi.Print("Viterbi MAP baseline");
  std::printf("\nThe probabilistic engines trade a tunable amount of "
              "precision for far higher recall; see bench_fig09/fig10 for "
              "the full threshold sweeps.\n");
  return 0;
}
