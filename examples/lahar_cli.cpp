// lahar_cli: query saved probabilistic event databases from the shell.
//
//   lahar_cli QUERY DBFILE          run a query, print P[q@t] per timestep
//   lahar_cli --classify QUERY DBFILE
//   lahar_cli --explain DBFILE QUERY...
//                                   print each query's plan before/after the
//                                   canonicalizing rewrite and the sharing
//                                   groups the queries form (docs/SHARING.md)
//   lahar_cli --gen DBFILE [SCENARIO]
//                                   write a demo database. SCENARIO is
//                                   "office" (default: 3 office workers) or
//                                   "wide" (200-tag diurnal wide-floorplan
//                                   population; see docs/PERF.md "Chain
//                                   lifecycle")
//   lahar_cli --serve DBFILE QUERY...
//                                   replay DBFILE live through the
//                                   concurrent runtime (docs/RUNTIME.md)
//   lahar_cli --connect HOST:PORT QUERY...
//                                   register queries on a running
//                                   lahar_server and stream the pushed
//                                   per-tick probabilities (docs/SERVING.md)
//
// Serve-mode flags (anywhere after --serve):
//   --checkpoint-every N            checkpoint the runtime every N ticks
//   --checkpoint-path FILE          where to write it (default lahar.ckpt)
//   --restore FILE                  resume from a checkpoint: queries come
//                                   from the snapshot (none on the command
//                                   line) and already-consumed ticks are
//                                   skipped on replay
//   --threads N                     runtime worker threads (default
//                                   hardware concurrency)
//   --pin                           pin worker i to core i mod cores
//                                   (Linux only; ignored elsewhere)
//
// Connect-mode flags (anywhere after --connect):
//   --tenant NAME                   tenant for the kHello handshake
//   --stats                         print the server's stats JSON and exit
//
// Serve mode shuts down gracefully on SIGINT/SIGTERM: the producer stops,
// the ingest queue drains through its remaining ticks, a final checkpoint
// is written when --checkpoint-path was given, and the process exits 0.
//
// The database format is documented in src/model/io.h; --gen produces one
// to play with:
//
//   ./lahar_cli --gen /tmp/demo.db
//   ./lahar_cli "At('tag1', l : CoffeeRoom(l))" /tmp/demo.db
//   ./lahar_cli --serve /tmp/demo.db "At(x, l : CoffeeRoom(l))"
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/plan.h"
#include "engine/lahar.h"
#include "parse_flags.h"
#include "model/io.h"
#include "net/client.h"
#include "query/printer.h"
#include "runtime/executor.h"
#include "runtime/replay.h"
#include "sim/scenarios.h"

using namespace lahar;

namespace {

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int) { g_signal = 1; }

int Generate(const std::string& path, const std::string& kind) {
  PipelineConfig config;
  config.read_rate = 0.6;
  config.coffee_bias = 3.0;
  Result<Scenario> scenario = Status::InvalidArgument("unknown scenario");
  StreamKind stream_kind = StreamKind::kFiltered;
  if (kind.empty() || kind == "office") {
    scenario = OfficeScenario(3, 120, /*seed=*/7, config);
  } else if (kind == "wide") {
    // Diurnal wide-floorplan population: hundreds of registered tags, only
    // a slice active per tick (the chain-lifecycle demo workload; try
    // --serve with "At(x, l : CoffeeRoom(l))" and watch the memory line in
    // the final stats).
    scenario = WideFloorplanScenario(200, 120, /*seed=*/7, config);
    stream_kind = StreamKind::kDiurnal;
  } else {
    std::fprintf(stderr, "unknown scenario %s (try office, wide)\n",
                 kind.c_str());
    return 2;
  }
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  auto db = scenario->BuildDatabase(stream_kind);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  if (Status s = WriteDatabaseToFile(**db, path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu streams over %u timesteps to %s\n",
              (*db)->num_streams(), (*db)->horizon(), path.c_str());
  return 0;
}

int Classify(EventDatabase* db, const std::string& query) {
  Lahar lahar(db);
  auto prepared = lahar.Prepare(query);
  if (!prepared.ok()) {
    std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
    return 1;
  }
  std::printf("class: %s\n",
              QueryClassName(prepared->classification.query_class));
  if (!prepared->classification.reason.empty()) {
    std::printf("note:  %s\n", prepared->classification.reason.c_str());
  }
  if (prepared->classification.query_class == QueryClass::kSafe) {
    PlanOptions options;
    options.assume_distinct_keys = true;
    auto plan = CompileSafePlan(prepared->normalized, *db, options);
    if (plan.ok()) {
      std::printf("plan:  %s\n",
                  PlanToString(**plan, db->interner()).c_str());
    }
  }
  return 0;
}

// --explain: the sharing pass as a diagnostic. For every query, print the
// parsed plan ("before"), its canonical rewrite ("after" — alpha-renamed
// variables, sorted predicate clauses, oriented comparisons), whether the
// runtime would share live chain state for it, and — across the whole
// command line — which queries fall into the same sharing group or overlap
// on an automaton prefix (docs/SHARING.md).
int Explain(EventDatabase* db, const std::vector<std::string>& queries) {
  SharedPlanIndex index;
  std::vector<PreparedQuery> prepared;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto p = PrepareQuery(queries[i], db);
    if (!p.ok()) {
      std::fprintf(stderr, "%s: %s\n", queries[i].c_str(),
                   p.status().ToString().c_str());
      return 1;
    }
    index.Add(i, AnalyzeSharing(p->normalized, p->classification));
    prepared.push_back(std::move(*p));
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    const PreparedQuery& p = prepared[i];
    std::printf("query %zu: %s\n", i, queries[i].c_str());
    std::printf("  class:  %s\n",
                QueryClassName(p.classification.query_class));
    std::printf("  before: %s\n",
                ToString(*p.ast, db->interner()).c_str());
    std::printf("  after:  %s\n",
                CanonicalToString(p.normalized, db->interner()).c_str());
    if (p.classification.query_class == QueryClass::kSafe) {
      PlanOptions options;
      options.assume_distinct_keys = true;
      auto plan = CompileSafePlan(p.normalized, *db, options);
      if (plan.ok()) {
        std::printf("  plan:   %s\n",
                    PlanToString(**plan, db->interner()).c_str());
      }
    }
    const QuerySharingInfo* info = index.Find(i);
    if (info != nullptr && !info->sharable) {
      std::printf("  sharing: declined (%s)\n", info->decline_reason.c_str());
    } else {
      auto overlap = index.LongestPrefixOverlap(i);
      std::printf("  sharing: eligible; alphabet peers=%zu",
                  index.NumAlphabetPeers(i));
      if (overlap.subgoals > 0) {
        std::printf(", shares a %zu-subgoal automaton prefix with query "
                    "%llu",
                    overlap.subgoals,
                    static_cast<unsigned long long>(overlap.with));
      }
      std::printf("\n");
    }
  }
  size_t group = 0;
  for (const auto& g : index.Groups()) {
    if (g.members.size() < 2) continue;
    std::printf("group %zu: queries", group++);
    for (uint64_t id : g.members) {
      std::printf(" %llu", static_cast<unsigned long long>(id));
    }
    std::printf(" are structurally identical (one shared evaluation unit "
                "in the runtime)\n");
  }
  if (group == 0) {
    std::printf("no structurally identical queries; nothing to share at "
                "runtime\n");
  }
  return 0;
}

int RunQuery(EventDatabase* db, const std::string& query) {
  LaharOptions options;
  options.plan.assume_distinct_keys = true;
  Lahar lahar(db, options);
  auto answer = lahar.Run(query);
  if (!answer.ok()) {
    std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("# engine=%s class=%s exact=%s\n",
              EngineKindName(answer->engine),
              QueryClassName(answer->query_class),
              answer->exact ? "yes" : "no (sampled)");
  std::printf("# t  P[q@t]\n");
  for (Timestamp t = 1; t < answer->probs.size(); ++t) {
    std::printf("%u %.6f\n", t, answer->probs[t]);
  }
  return 0;
}

// Serve-mode checkpoint configuration (see the usage comment up top).
struct ServeConfig {
  size_t checkpoint_every = 0;  // 0 = never checkpoint
  std::string checkpoint_path = "lahar.ckpt";
  bool checkpoint_path_set = false;  // --checkpoint-path given explicitly
  std::string restore_path;          // empty = fresh start
  size_t num_threads = 0;            // 0 = hardware concurrency
  bool pin_threads = false;          // pin worker i to core i mod cores
};

bool ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return bool(out);
}

// Replays an archived database through the streaming runtime as if its
// timesteps were arriving live: standing queries are registered up front, a
// producer thread pushes one TickBatch per timestep with backpressure, and
// every published TickResult is printed as it completes.
int Serve(EventDatabase* archive, const std::vector<std::string>& queries,
          const ServeConfig& config) {
  auto live = CloneDeclarations(*archive);
  if (!live.ok()) {
    std::fprintf(stderr, "%s\n", live.status().ToString().c_str());
    return 1;
  }
  auto batches = ExtractBatches(*archive);
  if (!batches.ok()) {
    std::fprintf(stderr, "%s\n", batches.status().ToString().c_str());
    return 1;
  }
  RuntimeOptions options;
  options.queue_capacity = 16;
  options.num_threads = config.num_threads;
  options.pin_threads = config.pin_threads;
  // Serve every query class: Safe queries compile to incremental plans
  // (distinct-keys assumption, as in batch mode) and Unsafe or
  // plan-less Safe queries fall back to approximate sampling sessions.
  options.session.plan.assume_distinct_keys = true;
  StreamRuntime runtime(live->get(), options);
  std::vector<QueryId> ids;
  if (!config.restore_path.empty()) {
    std::string snapshot;
    if (!ReadFileBytes(config.restore_path, &snapshot)) {
      std::fprintf(stderr, "cannot read checkpoint %s\n",
                   config.restore_path.c_str());
      return 1;
    }
    if (Status s = runtime.Restore(snapshot); !s.ok()) {
      std::fprintf(stderr, "restore: %s\n", s.ToString().c_str());
      return 1;
    }
    for (const QueryStats& qs : runtime.Stats().queries) ids.push_back(qs.id);
    std::printf("# restored %zu queries at tick %u from %s\n", ids.size(),
                runtime.tick(), config.restore_path.c_str());
  }
  for (const std::string& q : queries) {
    auto id = runtime.Register(q);
    if (!id.ok()) {
      std::fprintf(stderr, "%s: %s\n", q.c_str(),
                   id.status().ToString().c_str());
      return 1;
    }
    ids.push_back(*id);
  }
  for (const QueryStats& qs : runtime.Stats().queries) {
    std::printf("# q%llu [%s via %s%s]: %s\n",
                static_cast<unsigned long long>(qs.id),
                qs.query_class.c_str(), qs.engine.c_str(),
                qs.exact ? "" : ", (eps,delta)-approximate",
                qs.text.c_str());
  }
  std::printf("# t");
  for (QueryId id : ids) {
    std::printf("  P[q%llu@t]", static_cast<unsigned long long>(id));
  }
  std::printf("\n");
  runtime.SetTickCallback([&](const TickResult& r) {
    std::printf("%u", r.t);
    for (QueryId id : ids) {
      const double* p = r.Find(id);
      std::printf(" %.6f", p ? *p : 0.0);
    }
    std::printf("\n");
    if (config.checkpoint_every > 0 && r.t % config.checkpoint_every == 0) {
      // Checkpoint() is callback-safe: the coordinator holds no locks here,
      // and the snapshot lands exactly at tick r.t.
      auto snapshot = runtime.Checkpoint();
      if (!snapshot.ok()) {
        std::fprintf(stderr, "checkpoint: %s\n",
                     snapshot.status().ToString().c_str());
      } else if (!WriteFileBytes(config.checkpoint_path, *snapshot)) {
        std::fprintf(stderr, "checkpoint: cannot write %s\n",
                     config.checkpoint_path.c_str());
      }
    }
  });
  const Timestamp resume_from = runtime.tick();
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  runtime.Start();
  std::thread producer([&] {
    for (TickBatch& b : *batches) {
      if (g_signal != 0) break;  // graceful shutdown: stop producing
      // On restore, ticks the checkpoint already covers are history; the
      // runtime would reject them as duplicates anyway, so skip the push.
      if (b.t <= resume_from) continue;
      // Short deadlines so a SIGINT during backpressure is noticed quickly
      // (Push takes its batch by value, so a timed-out attempt leaves `b`
      // intact for the retry).
      Status s;
      do {
        s = runtime.ingest().Push(b, std::chrono::milliseconds(200));
      } while (s.code() == StatusCode::kOutOfRange && g_signal == 0);
      if (!s.ok()) {
        if (s.code() != StatusCode::kOutOfRange) {
          std::fprintf(stderr, "push: %s\n", s.ToString().c_str());
        }
        break;
      }
    }
    runtime.ingest().Close();  // end of stream: drain and stop
  });
  producer.join();
  if (g_signal != 0) {
    std::fprintf(stderr, "# interrupted: draining ingest queue...\n");
  }
  // The queue is closed; the coordinator exits once it has drained through
  // every accepted tick, whether we got here by end-of-stream or by signal.
  while (runtime.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  runtime.Stop();
  if (config.checkpoint_path_set) {
    auto snapshot = runtime.Checkpoint();
    if (!snapshot.ok()) {
      std::fprintf(stderr, "final checkpoint: %s\n",
                   snapshot.status().ToString().c_str());
      return 1;
    }
    if (!WriteFileBytes(config.checkpoint_path, *snapshot)) {
      std::fprintf(stderr, "final checkpoint: cannot write %s\n",
                   config.checkpoint_path.c_str());
      return 1;
    }
    std::printf("# final checkpoint (tick %u) written to %s\n",
                runtime.tick(), config.checkpoint_path.c_str());
  }
  std::printf("\n%s", runtime.Stats().ToString().c_str());
  return 0;
}

// Thin client over a running lahar_server: registers the queries remotely,
// subscribes, and prints the pushed per-tick probabilities in the same
// format Serve() uses locally.
int Connect(const std::string& endpoint, const std::string& tenant,
            bool stats_only, const std::vector<std::string>& queries) {
  auto colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect needs HOST:PORT, got %s\n",
                 endpoint.c_str());
    return 2;
  }
  const std::string host = endpoint.substr(0, colon);
  uint64_t port = 0;
  if (!examples::ParseUint("--connect port", endpoint.c_str() + colon + 1, 1,
                           65535, &port)) {
    return 2;
  }
  auto client = net::Client::Connect(host, static_cast<uint16_t>(port),
                                     tenant.empty() ? "default" : tenant);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  if (stats_only) {
    auto json = (*client)->StatsJson();
    if (!json.ok()) {
      std::fprintf(stderr, "%s\n", json.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", json->c_str());
    return 0;
  }
  std::vector<QueryId> ids;
  for (const std::string& q : queries) {
    auto reg = (*client)->RegisterQuery(q);
    if (!reg.ok()) {
      std::fprintf(stderr, "%s: %s\n", q.c_str(),
                   reg.status().ToString().c_str());
      return 1;
    }
    std::printf("# q%llu [%s via %s%s]: %s\n",
                static_cast<unsigned long long>(reg->id),
                reg->query_class.c_str(), reg->engine.c_str(),
                reg->exact ? "" : ", (eps,delta)-approximate", q.c_str());
    if (Status s = (*client)->Subscribe(reg->id); !s.ok()) {
      std::fprintf(stderr, "subscribe q%llu: %s\n",
                   static_cast<unsigned long long>(reg->id),
                   s.ToString().c_str());
      return 1;
    }
    ids.push_back(reg->id);
  }
  std::printf("# t");
  for (QueryId id : ids) {
    std::printf("  P[q%llu@t]", static_cast<unsigned long long>(id));
  }
  std::printf("\n");
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_signal == 0) {
    auto update = (*client)->NextUpdate(std::chrono::milliseconds(250));
    if (!update.ok()) {
      if (update.status().code() == StatusCode::kOutOfRange) continue;
      if (g_signal != 0) break;
      std::fprintf(stderr, "%s\n", update.status().ToString().c_str());
      return 1;
    }
    std::printf("%u", update->t);
    for (QueryId id : ids) {
      double p = 0.0;
      for (const auto& [qid, prob] : update->probs) {
        if (qid == id) p = prob;
      }
      std::printf(" %.6f", p);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if ((argc == 3 || argc == 4) && std::strcmp(argv[1], "--gen") == 0) {
    return Generate(argv[2], argc == 4 ? argv[3] : "");
  }
  bool serve = argc >= 2 && std::strcmp(argv[1], "--serve") == 0;
  if (serve) {
    ServeConfig config;
    std::string dbfile;
    std::vector<std::string> queries;
    bool bad = false;
    for (int i = 2; i < argc; ++i) {
      auto flag_value = [&](const char* name) -> const char* {
        if (std::strcmp(argv[i], name) != 0) return nullptr;
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s needs a value\n", name);
          bad = true;
          return nullptr;
        }
        return argv[++i];
      };
      uint64_t n = 0;
      if (const char* v = flag_value("--checkpoint-every")) {
        if (!examples::ParseUint("--checkpoint-every", v, 0, UINT32_MAX, &n))
          return 2;
        config.checkpoint_every = static_cast<size_t>(n);
      } else if (const char* v = flag_value("--checkpoint-path")) {
        config.checkpoint_path = v;
        config.checkpoint_path_set = true;
      } else if (const char* v = flag_value("--restore")) {
        config.restore_path = v;
      } else if (const char* v = flag_value("--threads")) {
        if (!examples::ParseUint("--threads", v, 0, 4096, &n)) return 2;
        config.num_threads = static_cast<size_t>(n);
      } else if (std::strcmp(argv[i], "--pin") == 0) {
        config.pin_threads = true;
      } else if (!bad) {
        if (dbfile.empty()) {
          dbfile = argv[i];
        } else {
          queries.emplace_back(argv[i]);
        }
      }
    }
    // Queries may all come from a restored checkpoint; otherwise at least
    // one must be given on the command line.
    if (bad || dbfile.empty() ||
        (queries.empty() && config.restore_path.empty())) {
      std::fprintf(stderr,
                   "usage: %s --serve [--checkpoint-every N] "
                   "[--checkpoint-path FILE] [--restore FILE] "
                   "[--threads N] [--pin] DBFILE QUERY...\n",
                   argv[0]);
      return 2;
    }
    auto db = ReadDatabaseFromFile(dbfile);
    if (!db.ok()) {
      std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
      return 1;
    }
    return Serve(db->get(), queries, config);
  }
  bool explain = argc >= 2 && std::strcmp(argv[1], "--explain") == 0;
  if (explain) {
    if (argc < 4) {
      std::fprintf(stderr, "usage: %s --explain DBFILE QUERY...\n", argv[0]);
      return 2;
    }
    auto db = ReadDatabaseFromFile(argv[2]);
    if (!db.ok()) {
      std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> queries(argv + 3, argv + argc);
    return Explain(db->get(), queries);
  }
  bool connect = argc >= 2 && std::strcmp(argv[1], "--connect") == 0;
  if (connect) {
    std::string endpoint;
    std::string tenant;
    bool stats_only = false;
    std::vector<std::string> queries;
    bool bad = false;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--tenant") == 0) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "--tenant needs a value\n");
          bad = true;
        } else {
          tenant = argv[++i];
        }
      } else if (std::strcmp(argv[i], "--stats") == 0) {
        stats_only = true;
      } else if (endpoint.empty()) {
        endpoint = argv[i];
      } else {
        queries.emplace_back(argv[i]);
      }
    }
    if (bad || endpoint.empty() || (queries.empty() && !stats_only)) {
      std::fprintf(stderr,
                   "usage: %s --connect HOST:PORT [--tenant NAME] "
                   "[--stats] QUERY...\n",
                   argv[0]);
      return 2;
    }
    return Connect(endpoint, tenant, stats_only, queries);
  }
  bool classify = argc == 4 && std::strcmp(argv[1], "--classify") == 0;
  if (argc != 3 && !classify) {
    std::fprintf(stderr,
                 "usage: %s QUERY DBFILE\n"
                 "       %s --classify QUERY DBFILE\n"
                 "       %s --explain DBFILE QUERY...\n"
                 "       %s --gen DBFILE\n"
                 "       %s --serve DBFILE QUERY...\n"
                 "       %s --connect HOST:PORT QUERY...\n",
                 argv[0], argv[0], argv[0], argv[0], argv[0], argv[0]);
    return 2;
  }
  const char* query = classify ? argv[2] : argv[1];
  const char* path = classify ? argv[3] : argv[2];
  auto db = ReadDatabaseFromFile(path);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  return classify ? Classify(db->get(), query) : RunQuery(db->get(), query);
}
