// Elder-care activity monitoring: the paper's second motivating domain
// (Section 1.1). An activity-recognition HMM produces a probabilistic
// stream of the elder's current activity; caregivers ask event queries:
//
//   "Did she take her medicine after breakfast today?"
//   "Did she brush her teeth before going to bed?"
//
// This example builds the activity HMM and sensor model by hand (no RFID
// floorplan), smooths a day of noisy sensor data into a Markovian activity
// stream, and answers the queries two ways: per-timestep probabilities via
// the Lahar facade, and "did it happen at all today" interval probabilities
// via the chain's latched accept flag.
#include <cstdio>
#include <string>
#include <vector>

#include "engine/lahar.h"
#include "engine/regular_engine.h"
#include "inference/hmm.h"

using namespace lahar;

namespace {

constexpr const char* kActivities[] = {"sleeping", "cooking",  "eating",
                                       "medicine", "brushing", "idle"};
constexpr size_t kNumActivities = 6;

// A morning routine: sleep -> cook -> eat -> (medicine?) -> idle ... with
// sticky self-transitions.
Matrix ActivityTransitions() {
  Matrix t(kNumActivities, kNumActivities, 0.0);
  auto set = [&](int from, std::initializer_list<std::pair<int, double>> tos) {
    for (auto [to, p] : tos) t.At(from, to) = p;
  };
  set(0, {{0, 0.85}, {1, 0.10}, {5, 0.05}});                 // sleeping
  set(1, {{1, 0.70}, {2, 0.25}, {5, 0.05}});                 // cooking
  set(2, {{2, 0.70}, {3, 0.15}, {5, 0.15}});                 // eating
  set(3, {{3, 0.40}, {5, 0.50}, {4, 0.10}});                 // medicine
  set(4, {{4, 0.50}, {5, 0.40}, {0, 0.10}});                 // brushing
  set(5, {{5, 0.70}, {4, 0.10}, {0, 0.10}, {1, 0.10}});      // idle
  return t;
}

// Noisy activity sensors: each true activity is observed correctly with
// probability 0.7, confused with "idle" with 0.2, anything else uniformly.
Likelihoods Observe(const std::vector<size_t>& true_acts, Rng* rng) {
  Likelihoods out;
  for (size_t act : true_acts) {
    size_t observed = act;
    double u = rng->Uniform();
    if (u > 0.7 && u <= 0.9) {
      observed = 5;  // idle confusion
    } else if (u > 0.9) {
      observed = rng->Below(kNumActivities);
    }
    std::vector<double> like(kNumActivities, 0.05);
    like[observed] = 0.7;
    like[5] = std::max(like[5], 0.2);
    out.push_back(like);
  }
  return out;
}

}  // namespace

int main() {
  // The elder's true morning, minute by minute (24 steps).
  std::vector<size_t> truth = {0, 0, 0, 0, 0, 1, 1, 1, 2, 2, 2, 3,
                               5, 5, 1, 2, 5, 5, 4, 4, 0, 0, 0, 0};
  const Timestamp T = static_cast<Timestamp>(truth.size());

  auto hmm = DiscreteHmm::Create(
      {0.9, 0.02, 0.02, 0.02, 0.02, 0.02}, ActivityTransitions());
  if (!hmm.ok()) return 1;
  Rng rng(7);
  Likelihoods observations = Observe(truth, &rng);
  auto smoothed = hmm->Smooth(observations);
  if (!smoothed.ok()) {
    std::fprintf(stderr, "%s\n", smoothed.status().ToString().c_str());
    return 1;
  }

  // Build the probabilistic event database: one Markovian Does(person |
  // activity) stream from the smoothed posterior.
  EventDatabase db;
  EventSchema schema;
  schema.type = db.interner().Intern("Does");
  schema.attr_names = {db.interner().Intern("person"),
                       db.interner().Intern("activity")};
  schema.num_key_attrs = 1;
  if (!db.DeclareSchema(schema).ok()) return 1;

  Stream stream(schema.type, {db.Sym("Grandma")}, 1, T, /*markovian=*/true);
  for (const char* a : kActivities) stream.InternTuple({db.Sym(a)});
  const size_t D = stream.domain_size();
  std::vector<double> init(D, 0.0);
  for (size_t s = 0; s < kNumActivities; ++s) {
    init[s + 1] = smoothed->marginals[0][s];
  }
  if (!stream.SetInitial(init).ok()) return 1;
  for (Timestamp t = 1; t < T; ++t) {
    Matrix cpt(D, D, 0.0);
    cpt.At(0, 0) = 1.0;
    for (size_t i = 0; i < kNumActivities; ++i) {
      for (size_t j = 0; j < kNumActivities; ++j) {
        cpt.At(i + 1, j + 1) = smoothed->cpts[t - 1].At(i, j);
      }
    }
    if (!stream.SetCpt(t, cpt).ok()) return 1;
  }
  if (!stream.FinalizeMarkov().ok()) return 1;
  if (!db.AddStream(std::move(stream)).ok()) return 1;

  Lahar lahar(&db);
  struct Ask {
    const char* what;
    const char* query;
  };
  const Ask asks[] = {
      {"ate breakfast then took her medicine",
       "Does('Grandma', a1 : a1 = 'eating'); "
       "Does('Grandma', a2 : a2 = 'medicine')"},
      {"brushed her teeth and then went to bed",
       "Does('Grandma', a1 : a1 = 'brushing'); "
       "Does('Grandma', a2 : a2 = 'sleeping')"},
      {"cooked, ate, and took medicine in order",
       "Does('Grandma', a1 : a1 = 'cooking'); "
       "Does('Grandma', a2 : a2 = 'eating'); "
       "Does('Grandma', a3 : a3 = 'medicine')"},
  };
  std::printf("Caregiver report for Grandma (24 five-minute steps)\n\n");
  for (const Ask& ask : asks) {
    auto answer = lahar.Run(ask.query);
    if (!answer.ok()) {
      std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
      return 1;
    }
    double best = 0;
    Timestamp when = 0;
    for (Timestamp t = 1; t < answer->probs.size(); ++t) {
      if (answer->probs[t] > best) {
        best = answer->probs[t];
        when = t;
      }
    }
    // "Did it happen at all today?" is an interval probability: run the
    // chain with the latched accept flag (the safe-plan reg<> primitive).
    auto prepared = lahar.Prepare(ask.query);
    auto normalized = Normalize(*prepared->ast);
    auto chain = RegularChain::Create(*normalized, db);
    double at_all = 0;
    if (chain.ok()) {
      chain->EnableAcceptTracking();
      while (chain->time() < T) chain->Step();
      at_all = chain->AcceptedProb();
    }
    std::printf("Did she %s?\n", ask.what);
    std::printf("  engine %-16s P[at all today] = %.3f   peak %.3f at "
                "step %u\n\n",
                EngineKindName(answer->engine), at_all, best, when);
  }
  std::printf("The Markovian stream lets short, noisy activities (a single "
              "'medicine' step) accumulate evidence that per-step argmax "
              "would discard.\n");
  return 0;
}
