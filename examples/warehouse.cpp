// Supply-chain compliance monitoring (the paper's first motivating domain):
// RFID-tagged pallets move through a warehouse with scanning portals at the
// dock, the corridors, and the inspection station — but the storage area is
// unsensed and portals miss reads. The compliance query asks, per pallet:
//
//   "did it reach storage WITHOUT ever passing the inspection station?"
//
// expressed with a Kleene plus whose every unfolding avoids the inspection
// zone. The answer is a probability per pallet; we compare against the
// simulator's ground truth.
#include <cstdio>
#include <string>
#include <vector>

#include "engine/lahar.h"
#include "engine/regular_engine.h"
#include "sim/scenarios.h"

using namespace lahar;

namespace {

// dock -- corrA -- inspection -- corrB -- storage
//            \____________________/         (bypass edge skips inspection)
Floorplan WarehouseFloorplan() {
  Floorplan fp;
  uint32_t dock = fp.AddLocation("dock", RoomType::kLobby, /*antenna=*/true);
  uint32_t corr_a =
      fp.AddLocation("corrA", RoomType::kHallway, /*antenna=*/true);
  uint32_t inspection =
      fp.AddLocation("inspection", RoomType::kOffice, /*antenna=*/true);
  uint32_t corr_b =
      fp.AddLocation("corrB", RoomType::kHallway, /*antenna=*/true);
  uint32_t storage =
      fp.AddLocation("storage", RoomType::kOffice, /*antenna=*/false);
  fp.Link(dock, corr_a);
  fp.Link(corr_a, inspection);
  fp.Link(inspection, corr_b);
  fp.Link(corr_a, corr_b);  // the bypass
  fp.Link(corr_b, storage);
  return fp;
}

TruePath MakePath(const Floorplan& fp, bool compliant, Timestamp horizon) {
  auto at = [&](const char* name) { return fp.Find(name); };
  std::vector<uint32_t> route = {at("dock"), at("dock"), at("corrA")};
  if (compliant) {
    // Inspection takes a few steps — several chances for the portal to
    // catch the pallet despite missed reads.
    route.push_back(at("inspection"));
    route.push_back(at("inspection"));
    route.push_back(at("inspection"));
  }
  route.push_back(at("corrB"));
  TruePath path(horizon + 1, at("storage"));
  Timestamp t = 1;
  for (uint32_t loc : route) {
    if (t > horizon) break;
    path[t++] = loc;
  }
  return path;  // rest of the trace: parked in storage
}

}  // namespace

int main() {
  const Timestamp kHorizon = 12;
  auto fp = std::make_shared<const Floorplan>(WarehouseFloorplan());
  PipelineConfig config;
  config.read_rate = 0.7;   // portals miss ~30% of pallets
  config.room_stay = 0.8;
  auto pipeline = std::make_shared<const TracePipeline>(fp.get(), config);

  Scenario scenario;
  scenario.floorplan = fp;
  scenario.pipeline = pipeline;
  scenario.seed = 77;
  Rng rng(scenario.seed);
  const bool compliant[] = {true, false, true, false, true};
  for (size_t i = 0; i < 5; ++i) {
    Rng obs = rng.Split();
    scenario.tags.push_back(pipeline->Observe(
        "pallet" + std::to_string(i + 1),
        MakePath(*fp, compliant[i], kHorizon), &obs));
  }

  auto db = scenario.BuildDatabase(StreamKind::kSmoothed);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  // Domain-specific relations on top of the generic world.
  auto not_inspection = (*db)->DeclareRelation("NotInspection", 1);
  if (!not_inspection.ok()) return 1;
  for (const Location& loc : fp->locations()) {
    if (loc.name != "inspection") {
      if (!(*not_inspection)->Insert({(*db)->Sym(loc.name)}).ok()) return 1;
    }
  }

  std::printf("Warehouse compliance report (read rate %.0f%%, %u steps)\n\n",
              100 * config.read_rate, kHorizon);
  std::printf("%-10s %-10s %-28s %s\n", "pallet", "truth",
              "P[skipped inspection]", "verdict");
  Lahar lahar(db->get());
  int correct = 0;
  for (size_t i = 0; i < scenario.tags.size(); ++i) {
    const std::string& name = scenario.tags[i].name;
    // Left the dock, then a chain of zones that are never the inspection
    // station, ending in storage. The final condition sits in an outer
    // WHERE so that it *blocks*: if the zone right after the chain is not
    // storage (e.g. the pallet went to inspection), the partial match dies
    // instead of waiting for a later storage sighting (see docs/LANGUAGE.md
    // on ':' vs WHERE).
    std::string query = "(At('" + name + "', z1 : z1 = 'dock'); At('" + name +
                        "', z2)+{ : NotInspection(z2)}; At('" + name +
                        "', z3)) WHERE z3 = 'storage'";
    auto prepared = lahar.Prepare(query);
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
      return 1;
    }
    // "At any point" is an interval probability: latch the accept flag.
    auto chain = RegularChain::Create(prepared->normalized, **db);
    if (!chain.ok()) {
      std::fprintf(stderr, "%s\n", chain.status().ToString().c_str());
      return 1;
    }
    chain->EnableAcceptTracking();
    while (chain->time() < kHorizon) chain->Step();
    double p = chain->AcceptedProb();
    bool flagged = p > 0.5;
    bool truth_violation = !compliant[i];
    correct += flagged == truth_violation;
    std::printf("%-10s %-10s %-28.3f %s\n", name.c_str(),
                truth_violation ? "VIOLATED" : "ok", p,
                flagged == truth_violation ? "correct" : "WRONG");
  }
  std::printf("\n%d/5 pallets classified correctly at threshold 0.5.\n",
              correct);
  std::printf("Missed portal reads make the deterministic story ambiguous; "
              "the probabilistic query quantifies exactly how ambiguous.\n");
  return 0;
}
