// Quickstart: build a tiny probabilistic stream by hand, run a Regular
// event query, and print the per-timestep probability that it is satisfied.
//
// Scenario (Fig. 1 of the paper): Joe walks past an RFID antenna, then the
// readers go quiet — is he in his office or still in the hallway? We query
// for "Joe was in the hallway and then entered his office".
#include <cstdio>

#include "engine/regular_engine.h"
#include "query/normalize.h"
#include "query/parser.h"

int main() {
  using namespace lahar;

  EventDatabase db;

  // Schema: At(tag | location, T) — tag is the event key.
  EventSchema schema;
  schema.type = db.interner().Intern("At");
  schema.attr_names = {db.interner().Intern("tag"),
                       db.interner().Intern("location")};
  schema.num_key_attrs = 1;
  if (auto s = db.DeclareSchema(schema); !s.ok()) {
    std::fprintf(stderr, "schema: %s\n", s.ToString().c_str());
    return 1;
  }

  // Joe's location distribution over 5 timesteps (an inference output):
  // certain in the hallway at t=1-2, then increasingly likely in the office.
  Stream joe(schema.type, {db.Sym("Joe")}, /*num_value_attrs=*/1,
             /*horizon=*/5, /*markovian=*/false);
  DomainIndex hall = joe.InternTuple({db.Sym("hallway")});
  DomainIndex office = joe.InternTuple({db.Sym("office")});
  const double office_prob[6] = {0, 0.0, 0.0, 0.4, 0.6, 0.8};
  for (Timestamp t = 1; t <= 5; ++t) {
    std::vector<double> dist(joe.domain_size(), 0.0);
    dist[office] = office_prob[t];
    dist[hall] = 1.0 - office_prob[t];
    if (auto s = joe.SetMarginal(t, dist); !s.ok()) {
      std::fprintf(stderr, "marginal: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (!db.AddStream(std::move(joe)).ok()) return 1;

  // The event query: hallway, then office (immediate-successor semantics).
  auto query = ParseQuery(
      "At('Joe', l1 : l1 = 'hallway'); At('Joe', l2 : l2 = 'office')",
      &db.interner());
  if (!query.ok()) {
    std::fprintf(stderr, "parse: %s\n", query.status().ToString().c_str());
    return 1;
  }
  if (auto s = ValidateQuery(**query, db); !s.ok()) {
    std::fprintf(stderr, "validate: %s\n", s.ToString().c_str());
    return 1;
  }
  auto normalized = Normalize(**query);
  if (!normalized.ok()) return 1;
  auto engine = RegularEngine::Create(*normalized, db);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  std::printf("t   P[Joe entered his office at t]\n");
  std::vector<double> probs = engine->Run();
  for (Timestamp t = 1; t < probs.size(); ++t) {
    std::printf("%-3u %.4f\n", t, probs[t]);
  }
  return 0;
}
