// Query classifier: feed event queries to Lahar's static analysis and see
// which of the Section 3 classes they fall into, which engine would run
// them, and — for Safe queries — the compiled safe plan (Algorithm 1).
//
// Usage: query_classifier            (runs the paper's example queries)
//        query_classifier 'QUERY'    (classifies your own query)
#include <cstdio>
#include <string>

#include "analysis/classify.h"
#include "analysis/plan.h"
#include "engine/lahar.h"
#include "query/printer.h"
#include "sim/scenarios.h"

using namespace lahar;

namespace {

void Classify(Lahar& lahar, EventDatabase& db, const std::string& text) {
  std::printf("query: %s\n", text.c_str());
  auto prepared = lahar.Prepare(text);
  if (!prepared.ok()) {
    std::printf("  error: %s\n\n", prepared.status().ToString().c_str());
    return;
  }
  const Classification& cls = prepared->classification;
  std::printf("  class:  %s", QueryClassName(cls.query_class));
  if (!cls.reason.empty()) std::printf("  (%s)", cls.reason.c_str());
  std::printf("\n");
  switch (cls.query_class) {
    case QueryClass::kRegular:
      std::printf("  engine: Markov-chain evaluation, O(1) space (Thm 3.3)\n");
      break;
    case QueryClass::kExtendedRegular:
      std::printf(
          "  engine: one chain per key grounding, O(m) space (Thm 3.7)\n");
      break;
    case QueryClass::kSafe: {
      std::printf("  engine: safe plan, O(|W| T^2) time (Thm 3.16)\n");
      PlanOptions options;
      options.assume_distinct_keys = true;
      auto plan = CompileSafePlan(prepared->normalized, db, options);
      if (plan.ok()) {
        std::printf("  plan:   %s\n",
                    PlanToString(**plan, db.interner()).c_str());
      } else {
        std::printf("  plan:   %s\n", plan.status().ToString().c_str());
      }
      break;
    }
    case QueryClass::kUnsafe:
      std::printf(
          "  engine: #P-hard (Props 3.18/3.19); naive sampling only\n");
      break;
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  // A database with the schemas/relations the example queries mention.
  auto scenario = OfficeScenario(2, 10, 1);
  if (!scenario.ok()) return 1;
  auto db = scenario->BuildDatabase(StreamKind::kTruth);
  if (!db.ok()) return 1;
  // Extra schema for the qtalk example.
  EventSchema carries;
  carries.type = (*db)->interner().Intern("Carries");
  carries.attr_names = {(*db)->interner().Intern("person"),
                        (*db)->interner().Intern("object"),
                        (*db)->interner().Intern("loc")};
  carries.num_key_attrs = 2;
  (void)(*db)->DeclareSchema(carries);
  (void)(*db)->DeclareRelation("Laptop", 1);

  Lahar lahar(db->get());
  if (argc > 1) {
    Classify(lahar, **db, argv[1]);
    return 0;
  }

  const char* examples[] = {
      // Ex. 3.2: Joe from 'a' to 'c' through hallways — Regular.
      "At('tag1', l1); At('tag1', l2)+{ : Hallway(l2)}; At('tag1', l3 : "
      "CoffeeRoom(l3))",
      // Ex. 3.6: anyone from 'a' to 'c' — Extended Regular.
      "(At(x, l1 : Office(l1)); At(x, l2)+{x : Hallway(l2)}; At(x, l3 : "
      "CoffeeRoom(l3))) WHERE Person(x)",
      // Ex. 3.9 (qtalk): person+laptop, then the person at a lecture — Safe.
      "(Carries(x, y, z); Carries(x, y, w)+{x, y}; At(x, u : "
      "LectureRoom(u))) WHERE Person(x) AND Laptop(y)",
      // Fig. 14: someone's trajectory followed by another tag — Safe.
      "At(p, l1); At(p, l2); At(q, l3)",
      // Prop. 3.18 h1: a non-local predicate — Unsafe.
      "(At(p1, x); At(p2, y)) WHERE x = y",
      // Prop. 3.19 h3 shape — Unsafe.
      "At('tag1', z); At(x, w1 : Hallway(w1)); At(x, w2 : CoffeeRoom(w2))",
  };
  for (const char* q : examples) Classify(lahar, **db, q);
  return 0;
}
