// lahar_server: the network serving front-end (docs/SERVING.md).
//
//   lahar_server [flags] DBFILE [QUERY...]
//
// Loads DBFILE for its *declarations* (schemas, streams, relations) and
// serves a live runtime over TCP: clients connect with the binary protocol
// in src/net/protocol.h to stream ingest batches, register standing
// queries, subscribe to per-tick µ(q@t) pushes, fetch stats, and trigger
// checkpoints. Queries given on the command line are registered up front.
//
// Flags:
//   --port N              TCP port (default 0 = ephemeral; the bound port
//                         is printed on startup)
//   --host ADDR           bind address (default 127.0.0.1)
//   --threads N           runtime worker threads (default hardware)
//   --pin                 pin worker i to core i mod cores (Linux only)
//   --queue-capacity N    ingest queue depth in batches (default 256)
//   --max-connections N   connection cap (default 256)
//   --outbound-limit B    per-connection outbound byte cap; a subscriber
//                         lagging past it is disconnected (default 4MiB)
//   --quota-burst N       default per-tenant ingest token bucket size
//                         (default 0 = unlimited)
//   --quota-refill R      tokens per second refilled into the bucket
//   --checkpoint-every N  checkpoint the runtime every N ticks
//   --checkpoint-path F   where checkpoints (periodic, client-triggered,
//                         and the final shutdown one) are written
//   --restore F           resume from a checkpoint before serving
//
// SIGINT/SIGTERM shut down gracefully: stop accepting ingest, drain the
// queue through the remaining ticks, write a final checkpoint when
// --checkpoint-path is set, then exit 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "model/io.h"
#include "net/server.h"
#include "parse_flags.h"
#include "runtime/executor.h"
#include "runtime/replay.h"

using namespace lahar;

namespace {

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int) { g_signal = 1; }

bool ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return bool(out);
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--host ADDR] [--threads N] [--pin] "
               "[--queue-capacity N] [--max-connections N] "
               "[--outbound-limit BYTES] [--quota-burst N] "
               "[--quota-refill R] [--checkpoint-every N] "
               "[--checkpoint-path FILE] [--restore FILE] DBFILE [QUERY...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  net::ServerOptions server_options;
  RuntimeOptions runtime_options;
  runtime_options.session.plan.assume_distinct_keys = true;
  size_t checkpoint_every = 0;
  std::string restore_path;
  std::string dbfile;
  std::vector<std::string> queries;
  bool bad = false;
  for (int i = 1; i < argc; ++i) {
    auto flag_value = [&](const char* name) -> const char* {
      if (std::strcmp(argv[i], name) != 0) return nullptr;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", name);
        bad = true;
        return nullptr;
      }
      return argv[++i];
    };
    uint64_t n = 0;
    double d = 0;
    if (const char* v = flag_value("--port")) {
      // 0 stays legal: it asks the OS for an ephemeral port.
      if (!examples::ParseUint("--port", v, 0, 65535, &n)) return 2;
      server_options.port = static_cast<uint16_t>(n);
    } else if (const char* v = flag_value("--host")) {
      server_options.host = v;
    } else if (const char* v = flag_value("--threads")) {
      if (!examples::ParseUint("--threads", v, 0, 4096, &n)) return 2;
      runtime_options.num_threads = static_cast<size_t>(n);
    } else if (std::strcmp(argv[i], "--pin") == 0) {
      runtime_options.pin_threads = true;
    } else if (const char* v = flag_value("--queue-capacity")) {
      if (!examples::ParseUint("--queue-capacity", v, 1, UINT32_MAX, &n))
        return 2;
      runtime_options.queue_capacity = static_cast<size_t>(n);
    } else if (const char* v = flag_value("--max-connections")) {
      if (!examples::ParseUint("--max-connections", v, 1, UINT32_MAX, &n))
        return 2;
      server_options.max_connections = static_cast<size_t>(n);
    } else if (const char* v = flag_value("--outbound-limit")) {
      if (!examples::ParseUint("--outbound-limit", v, 1, UINT64_MAX / 2, &n))
        return 2;
      server_options.outbound_buffer_limit = static_cast<size_t>(n);
    } else if (const char* v = flag_value("--quota-burst")) {
      if (!examples::ParseDouble("--quota-burst", v, 0.0, 1e18, &d)) return 2;
      server_options.default_quota.burst = d;
    } else if (const char* v = flag_value("--quota-refill")) {
      if (!examples::ParseDouble("--quota-refill", v, 0.0, 1e18, &d))
        return 2;
      server_options.default_quota.refill_per_sec = d;
    } else if (const char* v = flag_value("--checkpoint-every")) {
      if (!examples::ParseUint("--checkpoint-every", v, 0, UINT32_MAX, &n))
        return 2;
      checkpoint_every = static_cast<size_t>(n);
    } else if (const char* v = flag_value("--checkpoint-path")) {
      server_options.checkpoint_path = v;
    } else if (const char* v = flag_value("--restore")) {
      restore_path = v;
    } else if (!bad) {
      if (dbfile.empty()) {
        dbfile = argv[i];
      } else {
        queries.emplace_back(argv[i]);
      }
    }
  }
  if (bad || dbfile.empty()) return Usage(argv[0]);

  auto archive = ReadDatabaseFromFile(dbfile);
  if (!archive.ok()) {
    std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
    return 1;
  }
  // Serve the declarations live: clients stream the data in over TCP.
  auto live = CloneDeclarations(**archive);
  if (!live.ok()) {
    std::fprintf(stderr, "%s\n", live.status().ToString().c_str());
    return 1;
  }
  StreamRuntime runtime(live->get(), runtime_options);

  if (!restore_path.empty()) {
    std::string snapshot;
    if (!ReadFileBytes(restore_path, &snapshot)) {
      std::fprintf(stderr, "cannot read checkpoint %s\n",
                   restore_path.c_str());
      return 1;
    }
    if (Status s = runtime.Restore(snapshot); !s.ok()) {
      std::fprintf(stderr, "restore: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("# restored %zu queries at tick %u from %s\n",
                runtime.Stats().num_queries, runtime.tick(),
                restore_path.c_str());
  }
  for (const std::string& q : queries) {
    auto id = runtime.Register(q);
    if (!id.ok()) {
      std::fprintf(stderr, "%s: %s\n", q.c_str(),
                   id.status().ToString().c_str());
      return 1;
    }
    std::printf("# q%llu: %s\n", static_cast<unsigned long long>(*id),
                q.c_str());
  }

  if (checkpoint_every > 0) {
    if (server_options.checkpoint_path.empty()) {
      std::fprintf(stderr, "--checkpoint-every needs --checkpoint-path\n");
      return 2;
    }
    server_options.on_tick = [&](const TickResult& r) {
      if (r.t % checkpoint_every != 0) return;
      auto snapshot = runtime.Checkpoint();
      if (!snapshot.ok()) {
        std::fprintf(stderr, "checkpoint: %s\n",
                     snapshot.status().ToString().c_str());
      } else if (!WriteFileBytes(server_options.checkpoint_path, *snapshot)) {
        std::fprintf(stderr, "checkpoint: cannot write %s\n",
                     server_options.checkpoint_path.c_str());
      }
    };
  }

  net::Server server(&runtime, server_options);
  runtime.Start();
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%u\n", server_options.host.c_str(),
              server.port());
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_signal == 0 && runtime.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // Graceful shutdown: no new ingest, drain what was accepted (the
  // coordinator exits once the closed queue is empty and every covered
  // tick has run), then checkpoint the final state.
  std::printf("\nshutting down: draining ingest queue...\n");
  server.Stop();
  runtime.ingest().Close();
  while (runtime.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  runtime.Stop();
  if (!server_options.checkpoint_path.empty()) {
    auto snapshot = runtime.Checkpoint();
    if (!snapshot.ok()) {
      std::fprintf(stderr, "final checkpoint: %s\n",
                   snapshot.status().ToString().c_str());
      return 1;
    }
    if (!WriteFileBytes(server_options.checkpoint_path, *snapshot)) {
      std::fprintf(stderr, "final checkpoint: cannot write %s\n",
                   server_options.checkpoint_path.c_str());
      return 1;
    }
    std::printf("final checkpoint (tick %u) written to %s\n", runtime.tick(),
                server_options.checkpoint_path.c_str());
  }
  std::printf("%s", server.Stats().ToString().c_str());
  return 0;
}
