#include "metrics/quality.h"

#include <algorithm>
#include <cstdlib>

namespace lahar {

std::vector<Timestamp> DetectionEvents(const std::vector<bool>& detected) {
  std::vector<Timestamp> events;
  bool in_run = false;
  for (Timestamp t = 1; t < detected.size(); ++t) {
    if (detected[t] && !in_run) {
      events.push_back(t);
      in_run = true;
    } else if (!detected[t]) {
      in_run = false;
    }
  }
  return events;
}

std::vector<Timestamp> DetectionEvents(const std::vector<double>& probs,
                                       double rho) {
  std::vector<bool> detected(probs.size(), false);
  for (size_t t = 1; t < probs.size(); ++t) detected[t] = probs[t] > rho;
  return DetectionEvents(detected);
}

QualityScore ScoreEvents(const std::vector<Timestamp>& detections,
                         const std::vector<Timestamp>& truth,
                         Timestamp tolerance) {
  std::vector<bool> truth_used(truth.size(), false);
  size_t tp = 0;
  for (Timestamp d : detections) {
    // Greedy: match the closest unused truth event within tolerance.
    size_t best = truth.size();
    long best_dist = static_cast<long>(tolerance) + 1;
    for (size_t i = 0; i < truth.size(); ++i) {
      if (truth_used[i]) continue;
      long dist = std::labs(static_cast<long>(truth[i]) - static_cast<long>(d));
      if (dist < best_dist) {
        best_dist = dist;
        best = i;
      }
    }
    if (best < truth.size()) {
      truth_used[best] = true;
      ++tp;
    }
  }
  QualityScore score;
  score.true_positives = tp;
  score.false_positives = detections.size() - tp;
  score.false_negatives = truth.size() - tp;
  score.precision = detections.empty()
                        ? (truth.empty() ? 1.0 : 0.0)
                        : static_cast<double>(tp) / detections.size();
  score.recall = truth.empty() ? 1.0 : static_cast<double>(tp) / truth.size();
  score.f1 = (score.precision + score.recall) > 0
                 ? 2 * score.precision * score.recall /
                       (score.precision + score.recall)
                 : 0.0;
  return score;
}

QualityScore Score(const std::vector<double>& probs, double rho,
                         const std::vector<Timestamp>& truth,
                         Timestamp tolerance) {
  return ScoreEvents(DetectionEvents(probs, rho), truth, tolerance);
}

QualityScore Score(const std::vector<bool>& detected,
                         const std::vector<Timestamp>& truth,
                         Timestamp tolerance) {
  return ScoreEvents(DetectionEvents(detected), truth, tolerance);
}

std::vector<Timestamp> TruthEvents(const std::vector<bool>& satisfied) {
  return DetectionEvents(satisfied);
}

std::vector<Timestamp> InjectSkew(const std::vector<Timestamp>& truth,
                                  Timestamp max_skew, Timestamp horizon,
                                  Rng* rng) {
  std::vector<Timestamp> out;
  out.reserve(truth.size());
  for (Timestamp t : truth) {
    long skew = static_cast<long>(rng->Below(2 * max_skew + 1)) -
                static_cast<long>(max_skew);
    long shifted = static_cast<long>(t) + skew;
    shifted = std::max(1L, std::min(static_cast<long>(horizon), shifted));
    out.push_back(static_cast<Timestamp>(shifted));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace lahar
