// Quality metrics of Section 4.2: precision, recall, and F1 under the
// paper's d-second tolerance matching, plus threshold sweeps over rho and
// ground-truth skew injection.
//
// Probabilistic outputs are thresholded at rho and clustered into detection
// events (maximal runs of above-threshold timesteps); a detection matches a
// true event if it falls within `tolerance` timesteps; matching is one-to-
// one and greedy in time order.
#ifndef LAHAR_METRICS_QUALITY_H_
#define LAHAR_METRICS_QUALITY_H_

#include <vector>

#include "common/rng.h"
#include "model/value.h"

namespace lahar {

/// \brief Precision / recall / F1 with the raw counts behind them.
struct QualityScore {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
};

/// Clusters per-timestep detections into events: each maximal run of
/// detected timesteps contributes its first timestep.
std::vector<Timestamp> DetectionEvents(const std::vector<bool>& detected);

/// Thresholds probabilities at rho (strictly greater) then clusters.
std::vector<Timestamp> DetectionEvents(const std::vector<double>& probs,
                                       double rho);

/// One-to-one greedy matching of detection events to truth events within
/// `tolerance`.
QualityScore ScoreEvents(const std::vector<Timestamp>& detections,
                         const std::vector<Timestamp>& truth,
                         Timestamp tolerance);

/// Convenience: threshold + cluster + score.
QualityScore Score(const std::vector<double>& probs, double rho,
                   const std::vector<Timestamp>& truth, Timestamp tolerance);
QualityScore Score(const std::vector<bool>& detected,
                   const std::vector<Timestamp>& truth, Timestamp tolerance);

/// Event times of a deterministic satisfaction vector (each satisfied run's
/// first timestep) — used to extract ground-truth event times.
std::vector<Timestamp> TruthEvents(const std::vector<bool>& satisfied);

/// Adds uniform random skew in [-max_skew, +max_skew] to each truth time
/// (clamped to [1, horizon]), modelling the noisy participant annotations
/// of Section 4.2.2.
std::vector<Timestamp> InjectSkew(const std::vector<Timestamp>& truth,
                                  Timestamp max_skew, Timestamp horizon,
                                  Rng* rng);

}  // namespace lahar

#endif  // LAHAR_METRICS_QUALITY_H_
