// The TCP serving front-end: a poll(2)-based multi-client server that
// drives one StreamRuntime over the wire protocol in net/protocol.h.
//
//   * Ingest frames feed the runtime's bounded MPSC queue (TryPush — a full
//     queue is explicit backpressure, answered with a kBackpressure error
//     frame the producer retries on), so network ingest flows through the
//     same transactional ApplyBatch / reorder-buffer path as in-process
//     producers.
//   * Subscriptions invert the polling model: the runtime's tick callback
//     hands every published TickResult to the server thread, which fans
//     µ(q@t) out to each connection subscribed to q as kTickUpdate pushes.
//   * Admission control is per-tenant (the kHello handshake names the
//     tenant): a token bucket of `burst` tokens refilled at
//     `refill_per_sec` gates ingest frames; burst 0 means unlimited.
//   * Slow consumers are bounded: each connection's outbound buffer may
//     hold at most `outbound_buffer_limit` bytes. A connection that cannot
//     keep up with its subscription stream is disconnected (counted in
//     NetStats::slow_disconnects) instead of holding server memory hostage.
//
// Threading: one server thread owns every socket and all connection state;
// the runtime coordinator thread only touches a small mutex-protected
// snapshot queue (the tick callback) and a self-pipe. Requests are executed
// inline on the server thread via the runtime's public (internally locked)
// API. Stats() is callable from any thread.
#ifndef LAHAR_NET_SERVER_H_
#define LAHAR_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "runtime/executor.h"

namespace lahar {
namespace net {

/// \brief Per-tenant ingest admission control: a token bucket holding at
/// most `burst` tokens, refilled continuously at `refill_per_sec`. Every
/// accepted ingest frame costs one token. burst == 0 disables the quota.
struct TenantQuota {
  double burst = 0;
  double refill_per_sec = 0;
};

/// Options for Server.
struct ServerOptions {
  /// Interface to bind. Loopback by default: exposing the runtime beyond
  /// the host is an explicit decision.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; Server::port() reports the bound one.
  uint16_t port = 0;
  int backlog = 64;
  /// Connections beyond this are greeted with kServerFull and closed.
  size_t max_connections = 256;
  /// Per-connection outbound byte cap; exceeding it is a slow-consumer
  /// disconnect (see class comment).
  size_t outbound_buffer_limit = 4u << 20;
  /// Quota applied to tenants absent from `tenant_quotas`.
  TenantQuota default_quota;
  /// Per-tenant overrides, keyed by the kHello tenant string.
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Destination for kCheckpoint triggers; empty rejects the request.
  std::string checkpoint_path;
  /// Extra per-tick hook run on the runtime coordinator after the snapshot
  /// is queued for fan-out — the place for periodic Checkpoint() calls
  /// (the server owns the runtime's single tick-callback slot).
  std::function<void(const TickResult&)> on_tick;
  /// poll(2) timeout; bounds shutdown latency, not throughput.
  std::chrono::milliseconds poll_interval{50};
};

/// \brief Poll-based TCP server over one StreamRuntime.
class Server {
 public:
  /// The caller keeps `runtime` alive for the server's lifetime and must
  /// not install its own tick callback while the server runs (use
  /// ServerOptions::on_tick instead).
  Server(StreamRuntime* runtime, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, installs the tick callback, and spawns the server
  /// thread. The port is bound when Start returns OK.
  Status Start();

  /// Clears the tick callback, closes every socket, joins the server
  /// thread. Idempotent.
  void Stop();

  /// The bound TCP port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// Network-layer counters only.
  NetStats NetCounters() const;

  /// Full runtime stats with the net section filled in — the payload of a
  /// kStats request.
  RuntimeStats Stats() const;

 private:
  struct Connection {
    int fd = -1;
    FrameReader reader;
    std::string outbound;       // encoded frames awaiting write
    std::string tenant;
    bool hello_done = false;
    bool doomed = false;        // close once outbound drains
    std::set<QueryId> subs;
    // Token bucket state (tenant quota resolved at kHello time).
    TenantQuota quota;
    double tokens = 0;
    std::chrono::steady_clock::time_point last_refill;
  };

  void Loop();
  void AcceptNew();
  // Reads everything available; dispatches complete frames.
  void ServiceRead(Connection* c);
  void ServiceWrite(Connection* c);
  void Dispatch(Connection* c, const Frame& frame);
  void HandleIngest(Connection* c, const Frame& frame);
  // Appends an encoded frame, enforcing the outbound cap. Returns false
  // when the connection was slow-disconnected instead.
  bool Enqueue(Connection* c, std::string frame);
  void SendError(Connection* c, WireError code, std::string_view message);
  // Fans one published tick out to every subscribed connection.
  void FanOut(const TickResult& result);
  void CloseConnection(size_t index);
  TenantQuota QuotaFor(const std::string& tenant) const;

  StreamRuntime* runtime_;
  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_rd_ = -1;   // self-pipe: tick callback -> poll loop
  int wake_wr_ = -1;
  std::thread thread_;
  bool started_ = false;
  std::atomic<bool> stop_{false};

  // Owned by the server thread exclusively.
  std::vector<std::unique_ptr<Connection>> conns_;

  // Tick snapshots queued by the runtime coordinator for fan-out. The
  // coordinator invokes the tick callback *after* copying it out of the
  // slot, so an invocation can still be in flight when SetTickCallback
  // (nullptr) returns inside Stop(). The callback therefore captures this
  // channel by shared_ptr (never `this`) and only touches the self-pipe
  // under `mu` while `wake_wr` is still valid; Stop() invalidates the fd
  // under the same mutex before closing it.
  struct TickChannel {
    std::mutex mu;
    std::deque<std::shared_ptr<const TickResult>> snapshots;
    int wake_wr = -1;  // -1 once the server is stopping
  };
  std::shared_ptr<TickChannel> channel_;

  // Counters shared between the server thread and Stats() callers.
  mutable std::mutex stats_mu_;
  NetStats counters_;
  std::map<std::string, NetTenantStats> tenant_counters_;
};

}  // namespace net
}  // namespace lahar

#endif  // LAHAR_NET_SERVER_H_
