// Wire protocol for the network serving front-end: length-prefixed binary
// frames over TCP carrying versioned message types for ingest batches,
// query registration, subscription management, stats, and checkpoint
// triggers (docs/SERVING.md has the full contract).
//
// Frame layout:
//
//   u32 payload_len (little-endian)    — at most kMaxFrameBytes
//   u8  version                        — kProtocolVersion
//   u8  type                           — MsgType
//   ... body                           — serial-encoded, per message type
//
// Everything rides on common/serial.h, so decoding shares the checkpoint
// reader's bounds discipline: malformed or truncated bodies fail with a
// Status, never UB. Framing errors split into two severities — a bad *body*
// inside a well-delimited frame is recoverable (the server answers with an
// error frame and keeps the connection), while a bad *length prefix* is not
// (the byte stream can no longer be resynchronized, so the connection
// closes after one final error frame).
#ifndef LAHAR_NET_PROTOCOL_H_
#define LAHAR_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/serial.h"
#include "runtime/ingest.h"
#include "runtime/stats.h"

namespace lahar {
namespace net {

/// Bumped on any incompatible wire change; the server rejects frames whose
/// version byte differs with WireError::kVersionMismatch.
inline constexpr uint8_t kProtocolVersion = 1;

/// Hard ceiling on one frame's payload. A declared length beyond this is an
/// unrecoverable framing error (nothing that large is ever legitimate, and
/// honoring it would let one client balloon server memory).
inline constexpr size_t kMaxFrameBytes = 16u << 20;

/// Bytes of length prefix in front of every payload.
inline constexpr size_t kFrameHeaderBytes = 4;

/// Message types. Requests are < 64, responses < 96, server pushes >= 96.
enum class MsgType : uint8_t {
  // --- requests (client -> server) --------------------------------------
  kHello = 1,        ///< Str tenant — identifies the connection for quotas
  kIngest = 2,       ///< TickBatch (see EncodeBatch)
  kRegister = 3,     ///< Str query text
  kUnregister = 4,   ///< u64 query id
  kSubscribe = 5,    ///< u64 query id — push µ(q@t) every tick from now on
  kUnsubscribe = 6,  ///< u64 query id
  kStats = 7,        ///< empty — runtime + net counters as JSON
  kCheckpoint = 8,   ///< empty — write a snapshot to the server's path
  // --- responses (server -> client, one per request) --------------------
  kOk = 64,           ///< empty
  kError = 65,        ///< u32 WireError, Str message
  kHelloOk = 66,      ///< u8 server protocol version
  kRegistered = 67,   ///< u64 id, Str class, Str engine, u8 exact
  kStatsResult = 68,  ///< Str json
  kCheckpointOk = 69, ///< Str path, u64 bytes written
  // --- pushes (server -> client, unsolicited) ---------------------------
  kTickUpdate = 96,  ///< u32 t, u32 n, n x (u64 id, f64 prob)
};

/// Machine-readable reason on a kError frame.
enum class WireError : uint32_t {
  kBadFrame = 1,         ///< body failed to decode
  kUnknownType = 2,      ///< type byte matches no MsgType
  kVersionMismatch = 3,  ///< version byte != kProtocolVersion
  kBackpressure = 4,     ///< ingest queue full — retry after a pause
  kQuotaExceeded = 5,    ///< per-tenant admission control rejected the batch
  kRejected = 6,         ///< the runtime rejected the request (see message)
  kHandshake = 7,        ///< request arrived before kHello
  kServerFull = 8,       ///< connection limit reached
};

/// Human-readable name of a wire error ("quota_exceeded", ...).
const char* WireErrorName(WireError e);

/// \brief One decoded frame: header fields plus the raw body bytes.
struct Frame {
  uint8_t version = 0;
  uint8_t type = 0;  ///< raw byte so unknown types survive to the dispatcher
  std::string body;

  MsgType msg_type() const { return static_cast<MsgType>(type); }
};

/// \brief Decoded kError body.
struct ErrorBody {
  WireError code = WireError::kBadFrame;
  std::string message;

  /// Maps the wire error onto a Status (kBackpressure/kQuotaExceeded ->
  /// OutOfRange, kRejected -> InvalidArgument, ...) with the wire error
  /// name attached as the "wire_error" payload.
  Status ToStatus() const;
};

/// \brief Decoded kRegistered body.
struct RegisteredBody {
  QueryId id = 0;
  std::string query_class;
  std::string engine;
  bool exact = true;
};

/// \brief Decoded kTickUpdate body: the pushed µ(q@t) values for one tick,
/// restricted to the connection's subscriptions.
struct TickUpdateBody {
  Timestamp t = 0;
  std::vector<std::pair<QueryId, double>> probs;
};

/// \brief Decoded kCheckpointOk body.
struct CheckpointOkBody {
  std::string path;
  uint64_t bytes = 0;
};

// --- frame assembly ------------------------------------------------------

/// One complete frame (length prefix + version + type + body bytes).
std::string EncodeFrame(MsgType type, const serial::Writer& body);
/// Same, for messages with an empty body.
std::string EncodeFrame(MsgType type);

/// \brief Incremental frame extractor over a connection's inbound bytes.
///
/// Append() whatever arrived; Next() pops complete frames one at a time.
/// A declared payload length over kMaxFrameBytes poisons the reader (the
/// stream cannot be resynchronized): Next() returns OutOfRange from then
/// on and the caller must drop the connection.
class FrameReader {
 public:
  void Append(std::string_view bytes);

  /// Pops the next complete frame into `*out`. Returns OK when a frame was
  /// produced, NotFound when more bytes are needed (not an error), and
  /// OutOfRange on an unrecoverable framing violation.
  Status Next(Frame* out);

  size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
  bool poisoned_ = false;
};

// --- message bodies ------------------------------------------------------

void EncodeHello(std::string_view tenant, serial::Writer* w);
Status DecodeHello(serial::Reader* r, std::string* tenant);

/// TickBatch: u32 t, u32 n, then per update u32 stream, u8 has_cpt,
/// DoubleVec marginal, and (when has_cpt) u32 rows, u32 cols, rows*cols
/// bit-exact doubles.
void EncodeBatch(const TickBatch& batch, serial::Writer* w);
Status DecodeBatch(serial::Reader* r, TickBatch* out);

void EncodeError(WireError code, std::string_view message, serial::Writer* w);
Status DecodeError(serial::Reader* r, ErrorBody* out);

void EncodeRegistered(const RegisteredBody& body, serial::Writer* w);
Status DecodeRegistered(serial::Reader* r, RegisteredBody* out);

void EncodeTickUpdate(const TickUpdateBody& body, serial::Writer* w);
Status DecodeTickUpdate(serial::Reader* r, TickUpdateBody* out);

void EncodeCheckpointOk(const CheckpointOkBody& body, serial::Writer* w);
Status DecodeCheckpointOk(serial::Reader* r, CheckpointOkBody* out);

}  // namespace net
}  // namespace lahar

#endif  // LAHAR_NET_PROTOCOL_H_
