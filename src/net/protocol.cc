#include "net/protocol.h"

#include <cstring>

namespace lahar {
namespace net {

const char* WireErrorName(WireError e) {
  switch (e) {
    case WireError::kBadFrame: return "bad_frame";
    case WireError::kUnknownType: return "unknown_type";
    case WireError::kVersionMismatch: return "version_mismatch";
    case WireError::kBackpressure: return "backpressure";
    case WireError::kQuotaExceeded: return "quota_exceeded";
    case WireError::kRejected: return "rejected";
    case WireError::kHandshake: return "handshake_required";
    case WireError::kServerFull: return "server_full";
  }
  return "unknown";
}

Status ErrorBody::ToStatus() const {
  Status s;
  switch (code) {
    case WireError::kBackpressure:
    case WireError::kQuotaExceeded:
      s = Status::OutOfRange(message);
      break;
    case WireError::kRejected:
    case WireError::kBadFrame:
    case WireError::kUnknownType:
      s = Status::InvalidArgument(message);
      break;
    case WireError::kVersionMismatch:
    case WireError::kHandshake:
      s = Status::InvalidArgument(message);
      break;
    case WireError::kServerFull:
      s = Status::OutOfRange(message);
      break;
    default:
      s = Status::Internal(message);
      break;
  }
  return std::move(s).WithPayload("wire_error", WireErrorName(code));
}

std::string EncodeFrame(MsgType type, const serial::Writer& body) {
  const uint32_t len = static_cast<uint32_t>(2 + body.size());
  std::string out;
  out.reserve(kFrameHeaderBytes + len);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((len >> (8 * i)) & 0xFF));
  }
  out.push_back(static_cast<char>(kProtocolVersion));
  out.push_back(static_cast<char>(type));
  out += body.str();
  return out;
}

std::string EncodeFrame(MsgType type) {
  return EncodeFrame(type, serial::Writer());
}

void FrameReader::Append(std::string_view bytes) {
  buf_.append(bytes.data(), bytes.size());
}

Status FrameReader::Next(Frame* out) {
  if (poisoned_) {
    return Status::OutOfRange("framing violated; connection must be dropped");
  }
  if (buf_.size() < kFrameHeaderBytes) {
    return Status::NotFound("incomplete frame header");
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(buf_[i])) << (8 * i);
  }
  if (len < 2 || len > kMaxFrameBytes) {
    poisoned_ = true;
    return Status::OutOfRange("frame payload length " + std::to_string(len) +
                              " outside [2, " +
                              std::to_string(kMaxFrameBytes) + "]");
  }
  if (buf_.size() < kFrameHeaderBytes + len) {
    return Status::NotFound("incomplete frame body");
  }
  out->version = static_cast<uint8_t>(buf_[kFrameHeaderBytes]);
  out->type = static_cast<uint8_t>(buf_[kFrameHeaderBytes + 1]);
  out->body.assign(buf_, kFrameHeaderBytes + 2, len - 2);
  buf_.erase(0, kFrameHeaderBytes + len);
  return Status::OK();
}

void EncodeHello(std::string_view tenant, serial::Writer* w) {
  w->Str(tenant);
}

Status DecodeHello(serial::Reader* r, std::string* tenant) {
  return r->Str(tenant);
}

void EncodeBatch(const TickBatch& batch, serial::Writer* w) {
  w->U32(batch.t);
  w->U32(static_cast<uint32_t>(batch.updates.size()));
  for (const StreamUpdate& u : batch.updates) {
    w->U32(u.stream);
    w->U8(u.cpt.has_value() ? 1 : 0);
    w->DoubleVec(u.marginal);
    if (u.cpt.has_value()) {
      w->U32(static_cast<uint32_t>(u.cpt->rows()));
      w->U32(static_cast<uint32_t>(u.cpt->cols()));
      for (size_t row = 0; row < u.cpt->rows(); ++row) {
        const double* p = u.cpt->Row(row);
        for (size_t c = 0; c < u.cpt->cols(); ++c) w->F64(p[c]);
      }
    }
  }
}

Status DecodeBatch(serial::Reader* r, TickBatch* out) {
  out->updates.clear();
  uint32_t n = 0;
  LAHAR_RETURN_NOT_OK(r->U32(&out->t));
  LAHAR_RETURN_NOT_OK(r->U32(&n));
  // Every update costs at least 13 bytes on the wire (u32 stream + u8
  // has_cpt + empty DoubleVec's u64 length); a count beyond that bound is
  // garbage and must not drive a huge reserve.
  if (static_cast<uint64_t>(n) * 13 > r->remaining()) {
    return Status::InvalidArgument("batch update count exceeds frame size");
  }
  out->updates.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    StreamUpdate u;
    uint8_t has_cpt = 0;
    LAHAR_RETURN_NOT_OK(r->U32(&u.stream));
    LAHAR_RETURN_NOT_OK(r->U8(&has_cpt));
    LAHAR_RETURN_NOT_OK(r->DoubleVec(&u.marginal));
    if (has_cpt > 1) {
      return Status::InvalidArgument("bad has_cpt flag");
    }
    if (has_cpt) {
      uint32_t rows = 0, cols = 0;
      LAHAR_RETURN_NOT_OK(r->U32(&rows));
      LAHAR_RETURN_NOT_OK(r->U32(&cols));
      // Divide rather than multiply by the element size: `cells * 8` wraps
      // uint64 for attacker-chosen dims (e.g. rows=2^31, cols=2^30), which
      // would pass the guard and then throw from a ~2^61-element allocation.
      const uint64_t cells = static_cast<uint64_t>(rows) * cols;
      if (cells > r->remaining() / 8) {
        return Status::InvalidArgument("CPT dims exceed frame size");
      }
      Matrix m(rows, cols, 0.0);
      for (uint32_t row = 0; row < rows; ++row) {
        double* p = m.Row(row);
        for (uint32_t c = 0; c < cols; ++c) {
          LAHAR_RETURN_NOT_OK(r->F64(&p[c]));
        }
      }
      u.cpt = std::move(m);
    }
    out->updates.push_back(std::move(u));
  }
  return Status::OK();
}

void EncodeError(WireError code, std::string_view message, serial::Writer* w) {
  w->U32(static_cast<uint32_t>(code));
  w->Str(message);
}

Status DecodeError(serial::Reader* r, ErrorBody* out) {
  uint32_t code = 0;
  LAHAR_RETURN_NOT_OK(r->U32(&code));
  LAHAR_RETURN_NOT_OK(r->Str(&out->message));
  out->code = static_cast<WireError>(code);
  return Status::OK();
}

void EncodeRegistered(const RegisteredBody& body, serial::Writer* w) {
  w->U64(body.id);
  w->Str(body.query_class);
  w->Str(body.engine);
  w->U8(body.exact ? 1 : 0);
}

Status DecodeRegistered(serial::Reader* r, RegisteredBody* out) {
  uint8_t exact = 1;
  LAHAR_RETURN_NOT_OK(r->U64(&out->id));
  LAHAR_RETURN_NOT_OK(r->Str(&out->query_class));
  LAHAR_RETURN_NOT_OK(r->Str(&out->engine));
  LAHAR_RETURN_NOT_OK(r->U8(&exact));
  out->exact = exact != 0;
  return Status::OK();
}

void EncodeTickUpdate(const TickUpdateBody& body, serial::Writer* w) {
  w->U32(body.t);
  w->U32(static_cast<uint32_t>(body.probs.size()));
  for (const auto& [id, p] : body.probs) {
    w->U64(id);
    w->F64(p);
  }
}

Status DecodeTickUpdate(serial::Reader* r, TickUpdateBody* out) {
  out->probs.clear();
  uint32_t n = 0;
  LAHAR_RETURN_NOT_OK(r->U32(&out->t));
  LAHAR_RETURN_NOT_OK(r->U32(&n));
  if (static_cast<uint64_t>(n) * 16 > r->remaining()) {
    return Status::InvalidArgument("tick update count exceeds frame size");
  }
  out->probs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    QueryId id = 0;
    double p = 0;
    LAHAR_RETURN_NOT_OK(r->U64(&id));
    LAHAR_RETURN_NOT_OK(r->F64(&p));
    out->probs.emplace_back(id, p);
  }
  return Status::OK();
}

void EncodeCheckpointOk(const CheckpointOkBody& body, serial::Writer* w) {
  w->Str(body.path);
  w->U64(body.bytes);
}

Status DecodeCheckpointOk(serial::Reader* r, CheckpointOkBody* out) {
  LAHAR_RETURN_NOT_OK(r->Str(&out->path));
  return r->U64(&out->bytes);
}

}  // namespace net
}  // namespace lahar
