#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>

namespace lahar {
namespace net {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

}  // namespace

Server::Server(StreamRuntime* runtime, ServerOptions options)
    : runtime_(runtime), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_) return Status::InvalidArgument("server already started");

  // Every failure below must release whatever fds were already opened
  // (Stop() won't: started_ is still false on these paths).
  auto fail = [this](Status s) {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_rd_ >= 0) ::close(wake_rd_);
    if (wake_wr_ >= 0) ::close(wake_wr_);
    listen_fd_ = wake_rd_ = wake_wr_ = -1;
    return s;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return fail(Status::InvalidArgument("bad host address: " + options_.host));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return fail(Errno("bind " + options_.host + ":" +
                      std::to_string(options_.port)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return fail(Errno("getsockname"));
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, options_.backlog) < 0) {
    return fail(Errno("listen"));
  }
  if (Status s = SetNonBlocking(listen_fd_); !s.ok()) {
    return fail(std::move(s));
  }

  int pipefd[2];
  if (::pipe(pipefd) < 0) {
    return fail(Errno("pipe"));
  }
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  if (Status s = SetNonBlocking(wake_rd_); !s.ok()) return fail(std::move(s));
  if (Status s = SetNonBlocking(wake_wr_); !s.ok()) return fail(std::move(s));

  // The coordinator hands each published snapshot to the server thread and
  // rings the self-pipe; the optional on_tick hook (periodic checkpoints)
  // then runs on the coordinator with no locks held, exactly like a
  // directly-installed tick callback would. The callback captures the
  // channel by shared_ptr, not `this`: an invocation copied out of the
  // slot may still be running after Stop() clears the slot, and must not
  // touch freed server state or a closed pipe fd (see TickChannel).
  channel_ = std::make_shared<TickChannel>();
  channel_->wake_wr = wake_wr_;
  runtime_->SetTickCallback(
      [channel = channel_, on_tick = options_.on_tick](const TickResult& r) {
        // Copy the snapshot: the coordinator publishes a whole window of
        // ticks back to back, and Latest() only points at the newest one.
        {
          std::lock_guard<std::mutex> lock(channel->mu);
          const bool was_empty = channel->snapshots.empty();
          channel->snapshots.push_back(std::make_shared<TickResult>(r));
          // Ring the self-pipe only on the empty->non-empty edge: the
          // server loop drains the whole deque per wake, so one byte
          // covers every tick of a window instead of W pipe writes per
          // window (the pipe would also fill at high tick rates).
          if (was_empty && channel->wake_wr >= 0) {
            char b = 1;
            [[maybe_unused]] ssize_t n = ::write(channel->wake_wr, &b, 1);
          }
        }
        if (on_tick) on_tick(r);
      });

  stop_.store(false);
  started_ = true;
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!started_) return;
  runtime_->SetTickCallback(nullptr);
  stop_.store(true);
  char b = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_wr_, &b, 1);
  if (thread_.joinable()) thread_.join();
  for (auto& c : conns_) {
    if (c->fd >= 0) ::close(c->fd);
  }
  conns_.clear();
  // Invalidate the pipe fd under the channel mutex before closing it: a
  // tick-callback invocation already copied out of the slot may still be
  // running, and it only writes the pipe while wake_wr >= 0 under `mu`.
  {
    std::lock_guard<std::mutex> lock(channel_->mu);
    channel_->wake_wr = -1;
    channel_->snapshots.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
  listen_fd_ = wake_rd_ = wake_wr_ = -1;
  started_ = false;
  std::lock_guard<std::mutex> lock(stats_mu_);
  counters_.connections = 0;
  counters_.subscriptions = 0;
}

NetStats Server::NetCounters() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  NetStats out = counters_;
  out.tenants.clear();
  for (const auto& [name, t] : tenant_counters_) out.tenants.push_back(t);
  return out;
}

RuntimeStats Server::Stats() const {
  RuntimeStats out = runtime_->Stats();
  out.net = NetCounters();
  return out;
}

TenantQuota Server::QuotaFor(const std::string& tenant) const {
  auto it = options_.tenant_quotas.find(tenant);
  return it != options_.tenant_quotas.end() ? it->second
                                            : options_.default_quota;
}

void Server::Loop() {
  std::vector<pollfd> fds;
  while (!stop_.load()) {
    fds.clear();
    fds.push_back(pollfd{wake_rd_, POLLIN, 0});
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const auto& c : conns_) {
      short events = c->doomed ? 0 : POLLIN;
      if (!c->outbound.empty()) events |= POLLOUT;
      fds.push_back(pollfd{c->fd, events, 0});
    }
    int rc = ::poll(fds.data(), fds.size(),
                    static_cast<int>(options_.poll_interval.count()));
    if (stop_.load()) break;
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // poll itself failed; nothing sane left to do
    }

    if (fds[0].revents & POLLIN) {
      char drain[256];
      while (::read(wake_rd_, drain, sizeof(drain)) > 0) {
      }
    }
    // Fan out every queued snapshot (even when the wake byte raced poll).
    while (true) {
      std::shared_ptr<const TickResult> snap;
      {
        std::lock_guard<std::mutex> lock(channel_->mu);
        if (channel_->snapshots.empty()) break;
        snap = std::move(channel_->snapshots.front());
        channel_->snapshots.pop_front();
      }
      FanOut(*snap);
    }

    // Service connections before accepting: fds[i + 2] mirrors conns_[i]
    // only for the connections that existed when fds was built, and
    // erasure is deferred to `dead` so indices stay stable.
    const size_t polled = fds.size() - 2;
    std::vector<size_t> dead;
    for (size_t i = 0; i < polled; ++i) {
      Connection* c = conns_[i].get();
      short re = fds[i + 2].revents;
      if (re & (POLLERR | POLLHUP | POLLNVAL)) {
        dead.push_back(i);
        continue;
      }
      if (re & POLLOUT) ServiceWrite(c);
      if (!c->doomed && (re & POLLIN)) ServiceRead(c);
      if (c->fd < 0 || (c->doomed && c->outbound.empty())) dead.push_back(i);
    }
    for (size_t j = dead.size(); j > 0; --j) CloseConnection(dead[j - 1]);

    if (fds[1].revents & POLLIN) AcceptNew();
  }
}

void Server::AcceptNew() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: try again next poll
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto c = std::make_unique<Connection>();
    c->fd = fd;
    c->last_refill = std::chrono::steady_clock::now();
    if (conns_.size() >= options_.max_connections) {
      // Over the cap: one error frame, then a doomed connection that
      // closes as soon as the frame flushes.
      SendError(c.get(), WireError::kServerFull, "connection limit reached");
      c->doomed = true;
    }
    conns_.push_back(std::move(c));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.total_connections;
    counters_.connections = conns_.size();
  }
}

void Server::CloseConnection(size_t index) {
  Connection* c = conns_[index].get();
  size_t subs = c->subs.size();
  if (c->fd >= 0) ::close(c->fd);
  conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(index));
  std::lock_guard<std::mutex> lock(stats_mu_);
  counters_.connections = conns_.size();
  counters_.subscriptions -= std::min(counters_.subscriptions, subs);
}

void Server::ServiceWrite(Connection* c) {
  while (!c->outbound.empty()) {
    ssize_t n = ::send(c->fd, c->outbound.data(), c->outbound.size(),
                       MSG_NOSIGNAL);
    if (n > 0) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        counters_.bytes_out += static_cast<uint64_t>(n);
      }
      c->outbound.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // Hard write error: drop the connection.
    ::close(c->fd);
    c->fd = -1;
    return;
  }
}

bool Server::Enqueue(Connection* c, std::string frame) {
  if (c->fd < 0) return false;
  if (c->outbound.size() + frame.size() > options_.outbound_buffer_limit) {
    // Slow consumer: its buffer is full and another frame is due. Keeping
    // the connection would make its lag our memory; drop it instead.
    // Count before close: a peer observes EOF the instant the fd closes,
    // and may read the stats right then.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++counters_.slow_disconnects;
    }
    ::close(c->fd);
    c->fd = -1;
    return false;
  }
  c->outbound += frame;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.frames_out;
  }
  // Opportunistic flush: most frames fit the socket buffer, so this keeps
  // latency at one syscall instead of one poll cycle.
  ServiceWrite(c);
  return true;
}

void Server::SendError(Connection* c, WireError code,
                       std::string_view message) {
  serial::Writer w;
  EncodeError(code, message, &w);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.protocol_errors;
  }
  Enqueue(c, EncodeFrame(MsgType::kError, w));
}

void Server::ServiceRead(Connection* c) {
  char buf[16384];
  while (true) {
    ssize_t n = ::recv(c->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        counters_.bytes_in += static_cast<uint64_t>(n);
      }
      c->reader.Append(std::string_view(buf, static_cast<size_t>(n)));
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or hard error.
    ::close(c->fd);
    c->fd = -1;
    return;
  }
  while (c->fd >= 0 && !c->doomed) {
    Frame frame;
    Status s = c->reader.Next(&frame);
    if (s.code() == StatusCode::kNotFound) break;  // need more bytes
    if (!s.ok()) {
      // Framing violation: the stream cannot be resynchronized. One last
      // error frame, then close once it flushes.
      SendError(c, WireError::kBadFrame, s.message());
      c->doomed = true;
      break;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++counters_.frames_in;
    }
    Dispatch(c, frame);
  }
}

void Server::Dispatch(Connection* c, const Frame& frame) {
  if (frame.version != kProtocolVersion) {
    SendError(c, WireError::kVersionMismatch,
              "protocol version " + std::to_string(frame.version) +
                  " != server version " + std::to_string(kProtocolVersion));
    return;
  }
  serial::Reader r(frame.body);
  switch (frame.msg_type()) {
    case MsgType::kHello: {
      std::string tenant;
      if (Status s = DecodeHello(&r, &tenant); !s.ok()) {
        SendError(c, WireError::kBadFrame, s.message());
        return;
      }
      c->tenant = tenant.empty() ? "default" : tenant;
      c->hello_done = true;
      c->quota = QuotaFor(c->tenant);
      c->tokens = c->quota.burst;
      c->last_refill = std::chrono::steady_clock::now();
      serial::Writer w;
      w.U8(kProtocolVersion);
      Enqueue(c, EncodeFrame(MsgType::kHelloOk, w));
      return;
    }
    case MsgType::kIngest:
      HandleIngest(c, frame);
      return;
    case MsgType::kRegister: {
      serial::Reader rr(frame.body);
      std::string text;
      if (Status s = rr.Str(&text); !s.ok()) {
        SendError(c, WireError::kBadFrame, s.message());
        return;
      }
      auto id = runtime_->Register(text);
      if (!id.ok()) {
        SendError(c, WireError::kRejected, id.status().ToString());
        return;
      }
      // Pull class/engine for the one query just registered; the client
      // prints it the way lahar_cli --serve does.
      RegisteredBody body;
      body.id = *id;
      for (const QueryStats& qs : runtime_->Stats().queries) {
        if (qs.id != *id) continue;
        body.query_class = qs.query_class;
        body.engine = qs.engine;
        body.exact = qs.exact;
      }
      serial::Writer w;
      EncodeRegistered(body, &w);
      Enqueue(c, EncodeFrame(MsgType::kRegistered, w));
      return;
    }
    case MsgType::kUnregister: {
      QueryId id = 0;
      if (Status s = r.U64(&id); !s.ok()) {
        SendError(c, WireError::kBadFrame, s.message());
        return;
      }
      if (Status s = runtime_->Unregister(id); !s.ok()) {
        SendError(c, WireError::kRejected, s.ToString());
        return;
      }
      // The query is gone for everyone: drop its subscription from every
      // connection (the server thread owns them all), not just the
      // requester's, so the subscription counter can't stay inflated.
      size_t removed = 0;
      for (auto& cp : conns_) removed += cp->subs.erase(id);
      if (removed > 0) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        counters_.subscriptions -=
            std::min(counters_.subscriptions, removed);
      }
      Enqueue(c, EncodeFrame(MsgType::kOk));
      return;
    }
    case MsgType::kSubscribe: {
      QueryId id = 0;
      if (Status s = r.U64(&id); !s.ok()) {
        SendError(c, WireError::kBadFrame, s.message());
        return;
      }
      if (!runtime_->HasQuery(id)) {
        SendError(c, WireError::kRejected,
                  "no standing query with id " + std::to_string(id));
        return;
      }
      if (c->subs.insert(id).second) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++counters_.subscriptions;
      }
      Enqueue(c, EncodeFrame(MsgType::kOk));
      return;
    }
    case MsgType::kUnsubscribe: {
      QueryId id = 0;
      if (Status s = r.U64(&id); !s.ok()) {
        SendError(c, WireError::kBadFrame, s.message());
        return;
      }
      if (c->subs.erase(id) > 0) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        --counters_.subscriptions;
      }
      Enqueue(c, EncodeFrame(MsgType::kOk));
      return;
    }
    case MsgType::kStats: {
      serial::Writer w;
      w.Str(Stats().ToJson());
      Enqueue(c, EncodeFrame(MsgType::kStatsResult, w));
      return;
    }
    case MsgType::kCheckpoint: {
      if (options_.checkpoint_path.empty()) {
        SendError(c, WireError::kRejected, "no checkpoint path configured");
        return;
      }
      auto snapshot = runtime_->Checkpoint();
      if (!snapshot.ok()) {
        SendError(c, WireError::kRejected, snapshot.status().ToString());
        return;
      }
      std::ofstream out(options_.checkpoint_path,
                        std::ios::binary | std::ios::trunc);
      out.write(snapshot->data(),
                static_cast<std::streamsize>(snapshot->size()));
      // Flush and close before replying: the kCheckpointOk frame promises
      // the bytes are on disk, and a client may read the file the moment
      // it sees the reply.
      out.close();
      if (!out) {
        SendError(c, WireError::kRejected,
                  "cannot write " + options_.checkpoint_path);
        return;
      }
      CheckpointOkBody body;
      body.path = options_.checkpoint_path;
      body.bytes = snapshot->size();
      serial::Writer w;
      EncodeCheckpointOk(body, &w);
      Enqueue(c, EncodeFrame(MsgType::kCheckpointOk, w));
      return;
    }
    default:
      SendError(c, WireError::kUnknownType,
                "unknown message type " + std::to_string(frame.type));
      return;
  }
}

void Server::HandleIngest(Connection* c, const Frame& frame) {
  serial::Reader r(frame.body);
  TickBatch batch;
  if (Status s = DecodeBatch(&r, &batch); !s.ok()) {
    SendError(c, WireError::kBadFrame, s.message());
    return;
  }
  if (!c->hello_done) {
    // Admission control is per-tenant; an ingest before kHello has no
    // tenant to charge, so it is rejected rather than sneaking past quotas.
    SendError(c, WireError::kHandshake, "kHello required before ingest");
    return;
  }
  if (c->quota.burst > 0) {
    auto now = std::chrono::steady_clock::now();
    double elapsed = std::chrono::duration<double>(now - c->last_refill).count();
    c->last_refill = now;
    c->tokens = std::min(c->quota.burst,
                         c->tokens + elapsed * c->quota.refill_per_sec);
    if (c->tokens < 1.0) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++counters_.quota_rejected;
        NetTenantStats& t = tenant_counters_[c->tenant];
        t.tenant = c->tenant;
        ++t.quota_rejected;
      }
      SendError(c, WireError::kQuotaExceeded,
                "tenant '" + c->tenant + "' over ingest quota");
      return;
    }
    c->tokens -= 1.0;
  }
  if (!runtime_->ingest().TryPush(std::move(batch))) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++counters_.backpressure_rejected;
    }
    SendError(c, WireError::kBackpressure,
              runtime_->ingest().closed() ? "ingest queue closed"
                                          : "ingest queue full; retry");
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    NetTenantStats& t = tenant_counters_[c->tenant];
    t.tenant = c->tenant;
    ++t.ingest_frames;
  }
  Enqueue(c, EncodeFrame(MsgType::kOk));
}

void Server::FanOut(const TickResult& result) {
  for (auto& cp : conns_) {
    Connection* c = cp.get();
    if (c->fd < 0 || c->doomed || c->subs.empty()) continue;
    TickUpdateBody body;
    body.t = result.t;
    for (QueryId id : c->subs) {
      if (const double* p = result.Find(id)) body.probs.emplace_back(id, *p);
    }
    if (body.probs.empty()) continue;
    serial::Writer w;
    EncodeTickUpdate(body, &w);
    Enqueue(c, EncodeFrame(MsgType::kTickUpdate, w));
  }
}

}  // namespace net
}  // namespace lahar
