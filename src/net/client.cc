#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace lahar {
namespace net {
namespace {

using Clock = std::chrono::steady_clock;

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

std::chrono::milliseconds Remaining(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? left : std::chrono::milliseconds(0);
}

}  // namespace

Result<std::unique_ptr<Client>> Client::ConnectRaw(const std::string& host,
                                                   uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd));
}

Result<std::unique_ptr<Client>> Client::Connect(
    const std::string& host, uint16_t port, const std::string& tenant,
    std::chrono::milliseconds timeout) {
  auto raw = ConnectRaw(host, port);
  if (!raw.ok()) return raw.status();
  auto client = std::move(*raw);
  serial::Writer w;
  EncodeHello(tenant, &w);
  auto reply = client->Transact(EncodeFrame(MsgType::kHello, w), timeout);
  if (!reply.ok()) return reply.status();
  if (reply->msg_type() != MsgType::kHelloOk) {
    return Status::Internal("unexpected handshake reply type " +
                            std::to_string(reply->type));
  }
  return client;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::InvalidArgument("client disconnected");
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Errno("send");
      ::close(fd_);
      fd_ = -1;
      return s;
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Frame> Client::ReadFrame(std::chrono::milliseconds timeout) {
  if (fd_ < 0) return Status::InvalidArgument("client disconnected");
  const auto deadline = Clock::now() + timeout;
  while (true) {
    Frame frame;
    Status s = reader_.Next(&frame);
    if (s.ok()) return frame;
    if (s.code() != StatusCode::kNotFound) return s;  // framing violation

    auto left = Remaining(deadline);
    pollfd pfd{fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (rc == 0) return Status::OutOfRange("timed out waiting for a frame");
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    char buf[16384];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      ::close(fd_);
      fd_ = -1;
      return Status::InvalidArgument("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      Status es = Errno("recv");
      ::close(fd_);
      fd_ = -1;
      return es;
    }
    reader_.Append(std::string_view(buf, static_cast<size_t>(n)));
  }
}

Result<Frame> Client::Transact(const std::string& frame,
                               std::chrono::milliseconds timeout) {
  LAHAR_RETURN_NOT_OK(SendRaw(frame));
  const auto deadline = Clock::now() + timeout;
  while (true) {
    auto reply = ReadFrame(Remaining(deadline));
    if (!reply.ok()) return reply.status();
    if (reply->msg_type() == MsgType::kTickUpdate) {
      // A push racing the response: queue it for NextUpdate.
      TickUpdateBody body;
      serial::Reader r(reply->body);
      if (DecodeTickUpdate(&r, &body).ok()) {
        updates_.push_back(std::move(body));
      }
      continue;
    }
    if (reply->msg_type() == MsgType::kError) {
      ErrorBody err;
      serial::Reader r(reply->body);
      LAHAR_RETURN_NOT_OK(DecodeError(&r, &err));
      return err.ToStatus();
    }
    return reply;
  }
}

Status Client::Ingest(const TickBatch& batch) {
  serial::Writer w;
  EncodeBatch(batch, &w);
  auto reply = Transact(EncodeFrame(MsgType::kIngest, w), request_timeout_);
  if (!reply.ok()) return reply.status();
  if (reply->msg_type() != MsgType::kOk) {
    return Status::Internal("unexpected ingest reply type " +
                            std::to_string(reply->type));
  }
  return Status::OK();
}

Result<RegisteredBody> Client::RegisterQuery(const std::string& text) {
  serial::Writer w;
  w.Str(text);
  auto reply = Transact(EncodeFrame(MsgType::kRegister, w), request_timeout_);
  if (!reply.ok()) return reply.status();
  if (reply->msg_type() != MsgType::kRegistered) {
    return Status::Internal("unexpected register reply type " +
                            std::to_string(reply->type));
  }
  RegisteredBody body;
  serial::Reader r(reply->body);
  LAHAR_RETURN_NOT_OK(DecodeRegistered(&r, &body));
  return body;
}

Status Client::UnregisterQuery(QueryId id) {
  serial::Writer w;
  w.U64(id);
  auto reply =
      Transact(EncodeFrame(MsgType::kUnregister, w), request_timeout_);
  return reply.ok() ? Status::OK() : reply.status();
}

Status Client::Subscribe(QueryId id) {
  serial::Writer w;
  w.U64(id);
  auto reply = Transact(EncodeFrame(MsgType::kSubscribe, w), request_timeout_);
  return reply.ok() ? Status::OK() : reply.status();
}

Status Client::Unsubscribe(QueryId id) {
  serial::Writer w;
  w.U64(id);
  auto reply =
      Transact(EncodeFrame(MsgType::kUnsubscribe, w), request_timeout_);
  return reply.ok() ? Status::OK() : reply.status();
}

Result<std::string> Client::StatsJson() {
  auto reply = Transact(EncodeFrame(MsgType::kStats), request_timeout_);
  if (!reply.ok()) return reply.status();
  if (reply->msg_type() != MsgType::kStatsResult) {
    return Status::Internal("unexpected stats reply type " +
                            std::to_string(reply->type));
  }
  std::string json;
  serial::Reader r(reply->body);
  LAHAR_RETURN_NOT_OK(r.Str(&json));
  return json;
}

Result<CheckpointOkBody> Client::TriggerCheckpoint() {
  auto reply = Transact(EncodeFrame(MsgType::kCheckpoint), request_timeout_);
  if (!reply.ok()) return reply.status();
  if (reply->msg_type() != MsgType::kCheckpointOk) {
    return Status::Internal("unexpected checkpoint reply type " +
                            std::to_string(reply->type));
  }
  CheckpointOkBody body;
  serial::Reader r(reply->body);
  LAHAR_RETURN_NOT_OK(DecodeCheckpointOk(&r, &body));
  return body;
}

Result<TickUpdateBody> Client::NextUpdate(std::chrono::milliseconds timeout) {
  if (!updates_.empty()) {
    TickUpdateBody body = std::move(updates_.front());
    updates_.pop_front();
    return body;
  }
  const auto deadline = Clock::now() + timeout;
  while (true) {
    auto frame = ReadFrame(Remaining(deadline));
    if (!frame.ok()) return frame.status();
    if (frame->msg_type() != MsgType::kTickUpdate) continue;  // stray reply
    TickUpdateBody body;
    serial::Reader r(frame->body);
    LAHAR_RETURN_NOT_OK(DecodeTickUpdate(&r, &body));
    return body;
  }
}

}  // namespace net
}  // namespace lahar
