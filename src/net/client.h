// Blocking client for the TCP serving front-end (net/server.h): one
// synchronous request/response call per method, plus a pull interface over
// the server's asynchronous kTickUpdate subscription pushes.
//
// Pushes interleave arbitrarily with responses on the wire; the client
// queues any kTickUpdate it encounters while waiting for a response, and
// NextUpdate() drains that queue before reading the socket. Single-threaded
// by design: callers that want concurrent request + update processing open
// two connections (subscriptions are per-connection anyway).
#ifndef LAHAR_NET_CLIENT_H_
#define LAHAR_NET_CLIENT_H_

#include <chrono>
#include <deque>
#include <memory>
#include <string>

#include "net/protocol.h"

namespace lahar {
namespace net {

/// \brief Blocking TCP client speaking the net/protocol.h wire format.
class Client {
 public:
  /// Connects and completes the kHello handshake as `tenant`.
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& host, uint16_t port,
      const std::string& tenant = "default",
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

  /// Connects WITHOUT the kHello handshake. For protocol-robustness tests
  /// that need to speak to the server from an unidentified connection (raw
  /// bytes via SendRaw, requests before kHello, ...).
  static Result<std::unique_ptr<Client>> ConnectRaw(const std::string& host,
                                                    uint16_t port);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Pushes one tick batch into the server's ingest queue. OutOfRange with
  /// payload wire_error=backpressure means the queue was full — retry;
  /// wire_error=quota_exceeded means admission control shed it.
  Status Ingest(const TickBatch& batch);

  /// Registers a standing query; the body mirrors lahar_cli's header line.
  Result<RegisteredBody> RegisterQuery(const std::string& text);
  Status UnregisterQuery(QueryId id);

  /// Subscribes to µ(q@t) pushes for `id` (NextUpdate delivers them).
  Status Subscribe(QueryId id);
  Status Unsubscribe(QueryId id);

  /// Runtime + net stats as one JSON object.
  Result<std::string> StatsJson();

  /// Asks the server to write a checkpoint to its configured path.
  Result<CheckpointOkBody> TriggerCheckpoint();

  /// Returns the next pushed tick update, waiting up to `timeout`. Queued
  /// updates (received while waiting for responses) are returned first.
  /// OutOfRange on timeout; InvalidArgument once the connection is gone.
  Result<TickUpdateBody> NextUpdate(std::chrono::milliseconds timeout);

  /// Raw socket access for protocol-robustness tests: writes bytes as-is.
  Status SendRaw(std::string_view bytes);
  /// Reads one frame (any type, pushes included), waiting up to `timeout`.
  Result<Frame> ReadFrame(std::chrono::milliseconds timeout);

  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  // Sends `frame` and reads until a non-push frame arrives (pushes are
  // queued); decodes kError into a Status.
  Result<Frame> Transact(const std::string& frame,
                         std::chrono::milliseconds timeout);

  int fd_ = -1;
  FrameReader reader_;
  std::deque<TickUpdateBody> updates_;
  std::chrono::milliseconds request_timeout_{30000};
};

}  // namespace net
}  // namespace lahar

#endif  // LAHAR_NET_CLIENT_H_
