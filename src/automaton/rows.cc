#include "automaton/rows.h"

#include <algorithm>

namespace lahar {

std::shared_ptr<const TransitionRowSet> TransitionRowClass::Find(
    Timestamp t) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sets_.find(t);
  return it != sets_.end() ? it->second : nullptr;
}

std::shared_ptr<const TransitionRowSet> TransitionRowClass::Insert(
    Timestamp t, std::shared_ptr<const TransitionRowSet> set) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, fresh] = sets_.emplace(t, std::move(set));
  if (fresh) {
    if (t < max_seen_) ++rebuilds_;  // this timestep had come and gone
    max_seen_ = std::max(max_seen_, t);
    while (sets_.size() > kMaxResident) sets_.erase(sets_.begin());
  }
  return it->second;
}

uint64_t TransitionRowClass::rebuilds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rebuilds_;
}

size_t TransitionRowClass::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [t, set] : sets_) total += set->bytes();
  return total;
}

std::shared_ptr<TransitionRowClass> TransitionRowPool::FindOrCreate(
    const RowFingerprint& fp) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = classes_.find(fp);
  if (it != classes_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  auto cls = std::make_shared<TransitionRowClass>();
  classes_.emplace(fp, cls);
  return cls;
}

size_t TransitionRowPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return classes_.size();
}

TransitionRowPool::Stats TransitionRowPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace lahar
