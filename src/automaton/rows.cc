#include "automaton/rows.h"

#include <algorithm>

namespace lahar {

std::shared_ptr<const TransitionRowSet> TransitionRowClass::Find(
    Timestamp t, const RowFingerprint& fp) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sets_.find(t);
  if (it == sets_.end()) return nullptr;
  for (const Entry& e : it->second) {
    if (e.fp == fp) return e.set;
  }
  return nullptr;
}

std::shared_ptr<const TransitionRowSet> TransitionRowClass::Insert(
    Timestamp t, const RowFingerprint& fp,
    std::shared_ptr<const TransitionRowSet> set) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry>& entries = sets_[t];
  // Another chain may have won the build race since the caller's Find;
  // converge on its pointer so stripes recognize shared content.
  for (const Entry& e : entries) {
    if (e.fp == fp) return e.set;
  }
  // Hold the canonical set before eviction: a rebuild of a timestep below
  // the resident window is the lowest key and gets evicted immediately.
  // The caller keeps its set either way.
  std::shared_ptr<const TransitionRowSet> canonical = set;
  entries.push_back(Entry{fp, std::move(set)});
  if (t < max_seen_) ++rebuilds_;  // this timestep had come and gone
  max_seen_ = std::max(max_seen_, t);
  while (sets_.size() > kMaxResident) sets_.erase(sets_.begin());
  return canonical;
}

uint64_t TransitionRowClass::rebuilds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rebuilds_;
}

size_t TransitionRowClass::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [t, entries] : sets_) {
    for (const Entry& e : entries) total += e.set->bytes();
  }
  return total;
}

std::shared_ptr<TransitionRowClass> TransitionRowPool::FindOrCreate(
    const RowFingerprint& fp) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = classes_.find(fp);
  if (it != classes_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  auto cls = std::make_shared<TransitionRowClass>();
  classes_.emplace(fp, cls);
  return cls;
}

size_t TransitionRowPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return classes_.size();
}

TransitionRowPool::Stats TransitionRowPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace lahar
