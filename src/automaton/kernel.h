// Compiled transition kernels for the Regular/Extended hot path.
//
// RegularChain::Step() conceptually advances a sparse probability vector over
// the joint space (NFA state set x joint Markovian hidden value). The dynamic
// implementation re-discovers that space every timestep through a hash map.
// This module enumerates it ONCE at chain-creation time and emits an
// immutable CompiledKernel:
//
//   * the reachable NFA state-set space, found by closing the initial state
//     set under every achievable input-symbol profile;
//   * the input-symbol profiles themselves: a step's input mask is always
//     (OR of the Markovian streams' successor-value masks) | (one entry of
//     the independent-stream OR-distribution). Both factors range over small
//     finite sets fixed at creation, so their combinations are interned into
//     dense "input classes";
//   * a CSR-style dense transition table trans[state_set][input class] ->
//     (next state set, accepts-bit), so stepping never touches the NFA (or
//     its memo hash map) again.
//
// With a kernel in hand, Step() becomes a double-buffered flat-array sparse
// mat-vec: zero per-step allocation, zero hashing. Only the per-timestep
// *probabilities* (CPT rows / marginals) are read at step time; the
// structure is static and shared — across interval snapshots of one chain
// (safe plans), across the m per-key chains of one Extended Regular query,
// and across sessions created from one PreparedQuery (see KernelCache).
//
// Compilation is budgeted: when the reachable space exceeds KernelLimits the
// compiler returns null and the caller keeps the dynamic map path, which
// stays the semantic reference (kernel probabilities are bit-identical).
#ifndef LAHAR_AUTOMATON_KERNEL_H_
#define LAHAR_AUTOMATON_KERNEL_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "automaton/nfa.h"

namespace lahar {

/// \brief Static per-stream profile the compiler consumes: how one
/// participating stream can contribute to the input symbol mask, in
/// SymbolTable::participating() order.
struct KernelStream {
  bool markovian = false;
  uint64_t radix = 1;       ///< multiplier of this stream's digit in the
                            ///< joint hidden code (1 for independent)
  uint32_t domain_size = 1; ///< includes bottom
  std::vector<SymbolMask> masks;  ///< mask per domain index
};

/// Budgets bounding the compiled space; exceeding any of them makes
/// compilation fail (return null) and the chain keep the dynamic map path.
struct KernelLimits {
  /// Max flat states per chain (|reachable state sets| x |joint hidden
  /// codes|). 0 disables compilation entirely.
  size_t max_flat_states = 1 << 16;
  /// Max distinct combined input-symbol profiles.
  size_t max_input_classes = 4096;
  /// Max reachable NFA state sets.
  size_t max_masks = 4096;
};

/// \brief Immutable compiled evaluation structure. Shared (shared_ptr) by
/// every chain copy / grounding / session with the same structural
/// signature; all members are read-only after compilation.
struct CompiledKernel {
  /// Joint hidden code count: product of Markovian participants' domains.
  uint64_t R = 1;
  /// Reachable NFA state sets, ascending. Flat state (m, h) lives at index
  /// m * R + h of a plane; accept-tracking chains hold two planes.
  std::vector<StateMask> masks;
  /// accepts[m]: masks[m] contains the accepting NFA state.
  std::vector<uint8_t> accepts;
  /// Number of distinct combined input classes.
  uint32_t num_inputs = 0;
  /// trans[m * num_inputs + c] = (next mask index << 1) | accepts-bit.
  std::vector<uint32_t> trans;
  /// markov_class[h'] = class of the input-mask contribution that the joint
  /// Markovian successor value h' makes (a pure function of h').
  std::vector<uint32_t> markov_class;
  uint32_t num_markov_classes = 0;
  /// Distinct achievable independent-stream OR-masks, ascending.
  std::vector<SymbolMask> indep_masks;
  /// pair_class[mc * indep_masks.size() + ic] = combined input class.
  std::vector<uint32_t> pair_class;

  /// One contiguous storage-slot range of hidden codes sharing a markov
  /// class (see slot_of below). cls indexes markov_class space.
  struct ClassSegment {
    uint32_t begin = 0;  ///< first slot of the segment
    uint32_t end = 0;    ///< one past the last slot
    uint32_t cls = 0;    ///< shared markov input class of every slot
  };

  /// Class-sorted hidden-slot permutation for the vectorized step path:
  /// slot_of[h] is the storage slot of canonical hidden code h, assigned by
  /// ascending (markov_class[h], h) so every markov class occupies one
  /// contiguous slot range (class_segments). SIMD-mode chains store state
  /// vectors in slot space — each (source h, input class) then scatters into
  /// a *contiguous* destination run instead of an R-way gather. Scalar-mode
  /// chains keep natural h order and never consult these tables.
  std::vector<uint32_t> slot_of;
  /// Inverse permutation: h_of[slot] = canonical hidden code.
  std::vector<uint32_t> h_of;
  /// Segments in ascending slot order, one per markov class.
  std::vector<ClassSegment> class_segments;

  /// Structural signature this kernel was compiled from (cache key).
  std::string signature;

  size_t num_flat() const { return masks.size() * R; }

  /// Index of a state-set mask, or -1 if unreachable.
  int MaskIndexOf(StateMask m) const;
  /// Index of an independent OR-mask into indep_masks, or -1 if unknown.
  int IndepClassOf(SymbolMask m) const;
};

/// Structural fingerprint of (automaton, stream profiles, limits): equal
/// signatures compile to identical kernels, so one compilation can be
/// shared.
std::string KernelSignature(const QueryNfa& nfa,
                            const std::vector<KernelStream>& streams,
                            const KernelLimits& limits);

/// Compiles a kernel, or returns null when the reachable space exceeds
/// `limits` (the caller falls back to the dynamic map path). `signature`
/// must be KernelSignature(nfa, streams, limits).
std::shared_ptr<const CompiledKernel> CompileKernel(
    const QueryNfa& nfa, const std::vector<KernelStream>& streams,
    const KernelLimits& limits, std::string signature);

/// \brief Signature-keyed cache of compiled kernels. One cache hangs off
/// every PreparedQuery (so the runtime registry reuses kernels across
/// sessions); engines also use a local one to dedupe the per-grounding
/// chains of a single query. Thread-safe; failed compilations are cached
/// too (as null) so the budget check runs once per signature.
class KernelCache {
 public:
  /// Cumulative lookup counters (a hit returns a previously compiled —
  /// possibly null — entry; a miss compiles). Surfaced per query and
  /// registry-wide in runtime stats.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  std::shared_ptr<const CompiledKernel> FindOrCompile(
      const QueryNfa& nfa, const std::vector<KernelStream>& streams,
      const KernelLimits& limits);

  size_t size() const;
  Stats stats() const;

 private:
  mutable std::mutex mu_;
  Stats stats_;
  std::unordered_map<std::string, std::shared_ptr<const CompiledKernel>>
      cache_;
};

}  // namespace lahar

#endif  // LAHAR_AUTOMATON_KERNEL_H_
