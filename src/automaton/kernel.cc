#include "automaton/kernel.h"

#include <algorithm>
#include <unordered_set>

namespace lahar {
namespace {

void AppendU64(std::string* s, uint64_t v) {
  s->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

}  // namespace

int CompiledKernel::MaskIndexOf(StateMask m) const {
  auto it = std::lower_bound(masks.begin(), masks.end(), m);
  if (it == masks.end() || *it != m) return -1;
  return static_cast<int>(it - masks.begin());
}

int CompiledKernel::IndepClassOf(SymbolMask m) const {
  auto it = std::lower_bound(indep_masks.begin(), indep_masks.end(), m);
  if (it == indep_masks.end() || *it != m) return -1;
  return static_cast<int>(it - indep_masks.begin());
}

std::string KernelSignature(const QueryNfa& nfa,
                            const std::vector<KernelStream>& streams,
                            const KernelLimits& limits) {
  std::string sig;
  sig.reserve(64 + streams.size() * 32);
  AppendU64(&sig, limits.max_flat_states);
  AppendU64(&sig, limits.max_input_classes);
  AppendU64(&sig, limits.max_masks);
  AppendU64(&sig, nfa.num_states());
  AppendU64(&sig, nfa.accept_mask());
  AppendU64(&sig, nfa.edges().size());
  for (const NfaEdge& e : nfa.edges()) {
    AppendU64(&sig, (static_cast<uint64_t>(e.from) << 32) | e.to);
    AppendU64(&sig, e.req);
    AppendU64(&sig, (e.forbid ? 2u : 0u) | (e.always ? 1u : 0u));
  }
  AppendU64(&sig, streams.size());
  for (const KernelStream& s : streams) {
    AppendU64(&sig, s.markovian ? 1 : 0);
    AppendU64(&sig, s.radix);
    AppendU64(&sig, s.domain_size);
    for (SymbolMask m : s.masks) AppendU64(&sig, m);
  }
  return sig;
}

std::shared_ptr<const CompiledKernel> CompileKernel(
    const QueryNfa& nfa, const std::vector<KernelStream>& streams,
    const KernelLimits& limits, std::string signature) {
  if (limits.max_flat_states == 0) return nullptr;
  auto kernel = std::make_shared<CompiledKernel>();
  kernel->signature = std::move(signature);

  // Joint hidden code space R = product of Markovian domains.
  uint64_t R = 1;
  for (const KernelStream& s : streams) {
    if (!s.markovian) continue;
    if (R > limits.max_flat_states / std::max<uint32_t>(1, s.domain_size)) {
      return nullptr;
    }
    R *= s.domain_size;
  }
  kernel->R = R;

  // The input-mask contribution of the Markovian successor value is a pure
  // function of the joint code h' (each stream contributes the mask of its
  // h'-digit; ended streams sit on digit 0, whose mask is 0).
  kernel->markov_class.resize(R);
  std::vector<SymbolMask> markov_list;
  {
    std::unordered_map<SymbolMask, uint32_t> interned;
    for (uint64_t h = 0; h < R; ++h) {
      SymbolMask m = 0;
      for (const KernelStream& s : streams) {
        if (!s.markovian) continue;
        m |= s.masks[(h / s.radix) % s.domain_size];
      }
      auto [it, fresh] =
          interned.emplace(m, static_cast<uint32_t>(markov_list.size()));
      if (fresh) markov_list.push_back(m);
      kernel->markov_class[h] = it->second;
    }
  }
  kernel->num_markov_classes = static_cast<uint32_t>(markov_list.size());

  // Achievable independent OR-masks: one mask class per independent stream
  // (0 included: bottom, zero-probability steps, or the stream having
  // ended), convolved across streams. This is a superset of what any
  // timestep's BuildIndependentMaskDist can produce, which is what the
  // closure below needs.
  std::vector<SymbolMask> combos{0};
  for (const KernelStream& s : streams) {
    if (s.markovian) continue;
    std::vector<SymbolMask> stream_masks{0};
    for (SymbolMask m : s.masks) {
      if (std::find(stream_masks.begin(), stream_masks.end(), m) ==
          stream_masks.end()) {
        stream_masks.push_back(m);
      }
    }
    if (stream_masks.size() == 1) continue;  // only contributes 0
    std::vector<SymbolMask> next;
    for (SymbolMask c : combos) {
      for (SymbolMask m : stream_masks) {
        SymbolMask combined = c | m;
        if (std::find(next.begin(), next.end(), combined) == next.end()) {
          next.push_back(combined);
        }
      }
    }
    if (next.size() > limits.max_input_classes) return nullptr;
    combos.swap(next);
  }
  std::sort(combos.begin(), combos.end());
  kernel->indep_masks = combos;

  // Combined input classes and the (markov class x indep class) pair table.
  std::unordered_map<SymbolMask, uint32_t> input_id;
  std::vector<SymbolMask> inputs;
  kernel->pair_class.resize(markov_list.size() * combos.size());
  for (size_t mc = 0; mc < markov_list.size(); ++mc) {
    for (size_t ic = 0; ic < combos.size(); ++ic) {
      SymbolMask combined = markov_list[mc] | combos[ic];
      auto [it, fresh] =
          input_id.emplace(combined, static_cast<uint32_t>(inputs.size()));
      if (fresh) {
        if (inputs.size() >= limits.max_input_classes) return nullptr;
        inputs.push_back(combined);
      }
      kernel->pair_class[mc * combos.size() + ic] = it->second;
    }
  }
  kernel->num_inputs = static_cast<uint32_t>(inputs.size());

  // Close the initial state set under every input class to enumerate the
  // reachable state-set space.
  std::vector<StateMask> masks{nfa.InitialStates()};
  std::unordered_set<StateMask> seen{nfa.InitialStates()};
  for (size_t i = 0; i < masks.size(); ++i) {
    for (SymbolMask input : inputs) {
      StateMask next = nfa.Transition(masks[i], input);
      if (seen.insert(next).second) {
        masks.push_back(next);
        if (masks.size() > limits.max_masks ||
            masks.size() * R > limits.max_flat_states) {
          return nullptr;
        }
      }
    }
  }
  std::sort(masks.begin(), masks.end());
  kernel->masks = masks;

  kernel->accepts.resize(masks.size());
  kernel->trans.resize(masks.size() * inputs.size());
  for (size_t mi = 0; mi < masks.size(); ++mi) {
    kernel->accepts[mi] = nfa.Accepts(masks[mi]) ? 1 : 0;
    for (size_t c = 0; c < inputs.size(); ++c) {
      StateMask next = nfa.Transition(masks[mi], inputs[c]);
      int idx = kernel->MaskIndexOf(next);
      // Unreachable by construction: the closure above visited (mask, input)
      // for every input class.
      if (idx < 0) return nullptr;
      kernel->trans[mi * inputs.size() + c] =
          (static_cast<uint32_t>(idx) << 1) | (nfa.Accepts(next) ? 1u : 0u);
    }
  }

  // Class-sorted hidden-slot permutation: assign slots by ascending
  // (markov_class[h], h) so each markov class is one contiguous slot range.
  // h order within a class stays ascending, which the vectorized step
  // relies on for bit-identical accumulation order.
  kernel->slot_of.resize(R);
  kernel->h_of.resize(R);
  {
    uint32_t slot = 0;
    for (uint32_t cls = 0; cls < kernel->num_markov_classes; ++cls) {
      CompiledKernel::ClassSegment seg;
      seg.begin = slot;
      seg.cls = cls;
      for (uint64_t h = 0; h < R; ++h) {
        if (kernel->markov_class[h] != cls) continue;
        kernel->slot_of[h] = slot;
        kernel->h_of[slot] = static_cast<uint32_t>(h);
        ++slot;
      }
      seg.end = slot;
      kernel->class_segments.push_back(seg);
    }
  }
  return kernel;
}

std::shared_ptr<const CompiledKernel> KernelCache::FindOrCompile(
    const QueryNfa& nfa, const std::vector<KernelStream>& streams,
    const KernelLimits& limits) {
  std::string sig = KernelSignature(nfa, streams, limits);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(sig);
  if (it != cache_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  auto kernel = CompileKernel(nfa, streams, limits, sig);
  cache_.emplace(std::move(sig), kernel);
  return kernel;
}

size_t KernelCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

KernelCache::Stats KernelCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace lahar
