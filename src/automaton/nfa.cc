#include "automaton/nfa.h"

namespace lahar {

Result<QueryNfa> QueryNfa::Build(const NormalizedQuery& q) {
  const size_t n = q.subgoals.size();
  if (n == 0) return Status::InvalidArgument("query has no subgoals");
  if (n > 31) return Status::InvalidArgument("too many subgoals (max 31)");

  QueryNfa nfa;
  auto add = [&nfa](uint8_t from, uint8_t to, SymbolMask req, bool forbid,
                    bool always) {
    nfa.edges_.push_back({from, to, req, forbid, always});
  };

  // State 0 is the start with the wildcard self-loop (the .* prefix: a match
  // may begin at any timestep). State s_i is reached after subgoal i; Kleene
  // subgoals get an extra "gap" state for in-between timesteps.
  uint8_t next_state = 1;
  add(0, 0, 0, false, /*always=*/true);

  uint8_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    const SymbolMask ma = MatchBit(i) | AcceptBit(i);
    const SymbolMask a = AcceptBit(i);
    uint8_t si = next_state++;
    if (i > 0) {
      // (not {m_i, a_i})* self-loop on the previous state, then consume a_i.
      add(prev, prev, ma, /*forbid=*/true, false);
    }
    add(prev, si, a, /*forbid=*/false, false);
    if (q.subgoals[i].is_kleene) {
      // ((not {m,a})*, a)+ : consume further a_i's, possibly across gaps.
      uint8_t gap = next_state++;
      add(si, si, a, false, false);         // immediate next unfolding
      add(si, gap, ma, /*forbid=*/true, false);
      add(gap, gap, ma, /*forbid=*/true, false);
      add(gap, si, a, false, false);
    }
    prev = si;
  }
  nfa.num_states_ = next_state;
  if (nfa.num_states_ > 63) {
    return Status::InvalidArgument("automaton too large");
  }
  nfa.accept_mask_ = 1ULL << prev;

  nfa.edges_by_state_.resize(nfa.num_states_);
  for (const NfaEdge& e : nfa.edges_) nfa.edges_by_state_[e.from].push_back(e);
  return nfa;
}

StateMask QueryNfa::Transition(StateMask states, SymbolMask input) const {
  auto key = std::make_pair(states, input);
  if (memo_enabled_) {
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
  }
  StateMask out = 0;
  StateMask rest = states;
  while (rest != 0) {
    int s = __builtin_ctzll(rest);
    rest &= rest - 1;
    for (const NfaEdge& e : edges_by_state_[s]) {
      if (e.Matches(input)) out |= 1ULL << e.to;
    }
  }
  if (memo_enabled_) memo_.emplace(key, out);
  return out;
}

}  // namespace lahar
