// Portable SIMD primitives for the vectorized transition kernels
// (engine/regular_engine.cc StepKernelSimd / StepStripe; see docs/PERF.md
// "Vectorized kernels").
//
// The instruction set is selected at configure time:
//
//   * AVX2 (4 double lanes)  — x86-64 with -march=native/-mavx2,
//   * SSE2 (2 double lanes)  — the x86-64 baseline, always present,
//   * NEON (2 double lanes)  — aarch64,
//   * scalar fallback        — LAHAR_SCALAR_KERNELS=ON (defines
//                              LAHAR_NO_SIMD) or an unknown ISA; plain
//                              loops the compiler may auto-vectorize.
//
// Bit-identity discipline: every helper here is *elementwise* — no
// horizontal reductions — so lane order never changes the floating-point
// result, and every multiply-accumulate is written as a separate multiply
// and add (never an FMA intrinsic; the build also sets -ffp-contract=off)
// so vector, scalar-fallback, and reference-path arithmetic round
// identically. kLanes only changes how many chains a stripe packs, never
// the numbers.
#ifndef LAHAR_AUTOMATON_SIMD_H_
#define LAHAR_AUTOMATON_SIMD_H_

#include <cstddef>

#if !defined(LAHAR_NO_SIMD) && defined(__AVX2__)
#include <immintrin.h>
#define LAHAR_SIMD_AVX2 1
#elif !defined(LAHAR_NO_SIMD) && defined(__SSE2__)
#include <emmintrin.h>
#define LAHAR_SIMD_SSE2 1
#elif !defined(LAHAR_NO_SIMD) && defined(__ARM_NEON)
#include <arm_neon.h>
#define LAHAR_SIMD_NEON 1
#endif

namespace lahar {
namespace simd {

#if defined(LAHAR_SIMD_AVX2)
inline constexpr size_t kLanes = 4;
inline const char* IsaName() { return "avx2"; }
#elif defined(LAHAR_SIMD_SSE2)
inline constexpr size_t kLanes = 2;
inline const char* IsaName() { return "sse2"; }
#elif defined(LAHAR_SIMD_NEON)
inline constexpr size_t kLanes = 2;
inline const char* IsaName() { return "neon"; }
#else
// Stripes still interleave two chains so the fallback loops stay
// auto-vectorizable; all math is plain scalar C++.
inline constexpr size_t kLanes = 2;
inline const char* IsaName() { return "scalar"; }
#endif

/// w[i] = row[i] * p for i in [0, n).
inline void ScaleRow(double* w, const double* row, double p, size_t n) {
  size_t i = 0;
#if defined(LAHAR_SIMD_AVX2)
  const __m256d pv = _mm256_set1_pd(p);
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(w + i, _mm256_mul_pd(_mm256_loadu_pd(row + i), pv));
  }
#elif defined(LAHAR_SIMD_SSE2)
  const __m128d pv = _mm_set1_pd(p);
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(w + i, _mm_mul_pd(_mm_loadu_pd(row + i), pv));
  }
#elif defined(LAHAR_SIMD_NEON)
  const float64x2_t pv = vdupq_n_f64(p);
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(w + i, vmulq_f64(vld1q_f64(row + i), pv));
  }
#endif
  for (; i < n; ++i) w[i] = row[i] * p;
}

/// w[i] = double(row[i]) * p for i in [0, n) — the float32 storage tier;
/// each row entry is widened back to double before the multiply, so the
/// only extra rounding versus ScaleRow is the one float32 store.
inline void ScaleRowF32(double* w, const float* row, double p, size_t n) {
  size_t i = 0;
#if defined(LAHAR_SIMD_AVX2)
  const __m256d pv = _mm256_set1_pd(p);
  for (; i + 4 <= n; i += 4) {
    const __m256d r = _mm256_cvtps_pd(_mm_loadu_ps(row + i));
    _mm256_storeu_pd(w + i, _mm256_mul_pd(r, pv));
  }
#endif
  for (; i < n; ++i) w[i] = static_cast<double>(row[i]) * p;
}

/// dst[i] += w[i] * ip for i in [0, n) — separate multiply and add.
inline void AxpyConst(double* dst, const double* w, double ip, size_t n) {
  size_t i = 0;
#if defined(LAHAR_SIMD_AVX2)
  const __m256d iv = _mm256_set1_pd(ip);
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(_mm256_loadu_pd(w + i), iv);
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i), prod));
  }
#elif defined(LAHAR_SIMD_SSE2)
  const __m128d iv = _mm_set1_pd(ip);
  for (; i + 2 <= n; i += 2) {
    const __m128d prod = _mm_mul_pd(_mm_loadu_pd(w + i), iv);
    _mm_storeu_pd(dst + i, _mm_add_pd(_mm_loadu_pd(dst + i), prod));
  }
#elif defined(LAHAR_SIMD_NEON)
  const float64x2_t iv = vdupq_n_f64(ip);
  for (; i + 2 <= n; i += 2) {
    const float64x2_t prod = vmulq_f64(vld1q_f64(w + i), iv);
    vst1q_f64(dst + i, vaddq_f64(vld1q_f64(dst + i), prod));
  }
#endif
  for (; i < n; ++i) dst[i] += w[i] * ip;
}

/// Strided form of AxpyConst for a lane-interleaved chain stepping alone:
/// dst[i * stride] += w[i] * ip.
inline void AxpyConstStrided(double* dst, const double* w, double ip,
                             size_t n, size_t stride) {
  if (stride == 1) {
    AxpyConst(dst, w, ip, n);
    return;
  }
  for (size_t i = 0; i < n; ++i) dst[i * stride] += w[i] * ip;
}

/// True when any of p[0..lanes) is nonzero (stripe source-skip test).
inline bool AnyNonzero(const double* p, size_t lanes) {
  for (size_t l = 0; l < lanes; ++l) {
    if (p[l] != 0.0) return true;
  }
  return false;
}

/// Stripe weights: w[s * lanes + l] = p[l] * row[s] for s in [0, n).
/// `p` holds one source probability per interleaved chain lane.
inline void StripeWeights(double* w, const double* p, const double* row,
                          size_t n, size_t lanes) {
#if defined(LAHAR_SIMD_AVX2)
  if (lanes == 4) {
    const __m256d pv = _mm256_loadu_pd(p);
    for (size_t s = 0; s < n; ++s) {
      _mm256_storeu_pd(w + s * 4, _mm256_mul_pd(pv, _mm256_set1_pd(row[s])));
    }
    return;
  }
#elif defined(LAHAR_SIMD_SSE2)
  if (lanes == 2) {
    const __m128d pv = _mm_loadu_pd(p);
    for (size_t s = 0; s < n; ++s) {
      _mm_storeu_pd(w + s * 2, _mm_mul_pd(pv, _mm_set1_pd(row[s])));
    }
    return;
  }
#elif defined(LAHAR_SIMD_NEON)
  if (lanes == 2) {
    const float64x2_t pv = vld1q_f64(p);
    for (size_t s = 0; s < n; ++s) {
      vst1q_f64(w + s * 2, vmulq_f64(pv, vdupq_n_f64(row[s])));
    }
    return;
  }
#endif
  for (size_t s = 0; s < n; ++s) {
    for (size_t l = 0; l < lanes; ++l) w[s * lanes + l] = p[l] * row[s];
  }
}

/// Float32-tier StripeWeights: w[s * lanes + l] = p[l] * double(row[s]).
inline void StripeWeightsF32(double* w, const double* p, const float* row,
                             size_t n, size_t lanes) {
  for (size_t s = 0; s < n; ++s) {
    const double r = static_cast<double>(row[s]);
    for (size_t l = 0; l < lanes; ++l) w[s * lanes + l] = p[l] * r;
  }
}

/// Stripe accumulate: dst[s * lanes + l] += w[s * lanes + l] * ip[l] for
/// s in [0, n) — ip holds one independent-mask probability per lane.
inline void StripeAccum(double* dst, const double* w, const double* ip,
                        size_t n, size_t lanes) {
#if defined(LAHAR_SIMD_AVX2)
  if (lanes == 4) {
    const __m256d iv = _mm256_loadu_pd(ip);
    for (size_t s = 0; s < n; ++s) {
      const __m256d prod = _mm256_mul_pd(_mm256_loadu_pd(w + s * 4), iv);
      _mm256_storeu_pd(dst + s * 4,
                       _mm256_add_pd(_mm256_loadu_pd(dst + s * 4), prod));
    }
    return;
  }
#elif defined(LAHAR_SIMD_SSE2)
  if (lanes == 2) {
    const __m128d iv = _mm_loadu_pd(ip);
    for (size_t s = 0; s < n; ++s) {
      const __m128d prod = _mm_mul_pd(_mm_loadu_pd(w + s * 2), iv);
      _mm_storeu_pd(dst + s * 2,
                    _mm_add_pd(_mm_loadu_pd(dst + s * 2), prod));
    }
    return;
  }
#elif defined(LAHAR_SIMD_NEON)
  if (lanes == 2) {
    const float64x2_t iv = vld1q_f64(ip);
    for (size_t s = 0; s < n; ++s) {
      const float64x2_t prod = vmulq_f64(vld1q_f64(w + s * 2), iv);
      vst1q_f64(dst + s * 2, vaddq_f64(vld1q_f64(dst + s * 2), prod));
    }
    return;
  }
#endif
  for (size_t s = 0; s < n; ++s) {
    for (size_t l = 0; l < lanes; ++l) {
      dst[s * lanes + l] += w[s * lanes + l] * ip[l];
    }
  }
}

}  // namespace simd
}  // namespace lahar

#endif  // LAHAR_AUTOMATON_SIMD_H_
