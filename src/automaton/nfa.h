// The query automaton (step III of Section 3.1.1).
//
// The regular-expression translation of a normalized query
//
//   E_q = .*, {a_1}, [(not {m_2,a_2})*, {a_2}], ... per subgoal,
//   with ((not {m_i,a_i})*, {a_i})+ for Kleene subgoals
//
// is built directly as a small NFA whose edges carry atomic set predicates:
// either "input contains all of REQ" or "input is disjoint from REQ"
// (Section 3.1.1's P and not-P forms). Evaluation tracks the *set* of live
// NFA states as a bitmask; the set evolves deterministically with each input
// symbol set, which is exactly the lazy subset construction the paper's
// Markov-chain algorithm needs.
#ifndef LAHAR_AUTOMATON_NFA_H_
#define LAHAR_AUTOMATON_NFA_H_

#include <unordered_map>
#include <vector>

#include "automaton/symbols.h"

namespace lahar {

/// Bitmask over NFA states (state i = bit i); supports up to 63 states.
using StateMask = uint64_t;

/// \brief One NFA edge: from --pred--> to.
struct NfaEdge {
  uint8_t from;
  uint8_t to;
  SymbolMask req;     ///< the symbol set S of the atomic predicate
  bool forbid;        ///< false: input ⊇ S matches; true: input ∩ S = ∅
  bool always;        ///< true: matches any input (the wildcard self-loop)

  bool Matches(SymbolMask input) const {
    if (always) return true;
    if (forbid) return (input & req) == 0;
    return (input & req) == req;
  }
};

/// \brief Query NFA with memoized state-set transitions.
class QueryNfa {
 public:
  /// Builds the automaton for a normalized query (at most 31 subgoals).
  static Result<QueryNfa> Build(const NormalizedQuery& q);

  /// The state set before any input: {start}.
  StateMask InitialStates() const { return 1; }

  /// Advances a state set on one input symbol set. Memoized.
  StateMask Transition(StateMask states, SymbolMask input) const;

  /// True iff the state set contains the accepting state.
  bool Accepts(StateMask states) const { return (states & accept_mask_) != 0; }

  size_t num_states() const { return num_states_; }
  const std::vector<NfaEdge>& edges() const { return edges_; }

  /// Bitmask of accepting states (kernel compilation fingerprints this).
  StateMask accept_mask() const { return accept_mask_; }

  /// Disables/enables the transition memo cache (ablation hook; on by
  /// default).
  void set_memoization(bool enabled) { memo_enabled_ = enabled; }

 private:
  struct KeyHash {
    size_t operator()(const std::pair<StateMask, SymbolMask>& k) const {
      return std::hash<uint64_t>()(k.first * 0x9e3779b97f4a7c15ULL ^ k.second);
    }
  };

  size_t num_states_ = 0;
  StateMask accept_mask_ = 0;
  bool memo_enabled_ = true;
  std::vector<NfaEdge> edges_;
  // Edges grouped by source state for the transition loop.
  std::vector<std::vector<NfaEdge>> edges_by_state_;
  mutable std::unordered_map<std::pair<StateMask, SymbolMask>, StateMask,
                             KeyHash>
      memo_;
};

}  // namespace lahar

#endif  // LAHAR_AUTOMATON_NFA_H_
