#include "automaton/symbols.h"

#include <algorithm>
#include <set>

namespace lahar {

bool UnifyEvent(const Subgoal& goal, const ValueTuple& key,
                const ValueTuple& values, size_t num_key_attrs,
                Binding* binding) {
  if (goal.terms.size() != key.size() + values.size()) return false;
  for (size_t i = 0; i < goal.terms.size(); ++i) {
    const Value& v = i < num_key_attrs ? key[i] : values[i - num_key_attrs];
    const Term& t = goal.terms[i];
    if (!t.is_var) {
      if (t.constant != v) return false;
      continue;
    }
    auto [it, inserted] = binding->emplace(t.var, v);
    if (!inserted && it->second != v) return false;
  }
  return true;
}

Status SymbolTable::ComputeMasks(const NormalizedQuery& q,
                                 const EventDatabase& db, const Stream& stream,
                                 size_t num_key_attrs, DomainIndex from,
                                 std::vector<SymbolMask>* masks) {
  Binding binding;
  for (DomainIndex d = std::max<DomainIndex>(from, 1);
       d < stream.domain_size(); ++d) {
    const ValueTuple& values = stream.TupleOf(d);
    for (size_t i = 0; i < q.subgoals.size(); ++i) {
      const NormalizedSubgoal& sg = q.subgoals[i];
      if (sg.goal.type != stream.type()) continue;
      binding.clear();
      if (!UnifyEvent(sg.goal, stream.key(), values, num_key_attrs,
                      &binding)) {
        continue;
      }
      LAHAR_ASSIGN_OR_RETURN(bool match, sg.match_pred.Eval(binding, db));
      if (!match) continue;
      (*masks)[d] |= MatchBit(i);
      LAHAR_ASSIGN_OR_RETURN(bool accept, sg.accept_pred.Eval(binding, db));
      if (accept) (*masks)[d] |= AcceptBit(i);
    }
  }
  return Status::OK();
}

StreamKeyIndex StreamKeyIndex::Build(const EventDatabase& db) {
  StreamKeyIndex index;
  index.num_streams_ = db.num_streams();
  for (StreamId s = 0; s < db.num_streams(); ++s) {
    const Stream& stream = db.stream(s);
    index.map_[{stream.type(), stream.key()}].push_back(s);
  }
  return index;
}

const std::vector<StreamId>* StreamKeyIndex::Find(
    SymbolId type, const ValueTuple& key) const {
  auto it = map_.find({type, key});
  return it == map_.end() ? nullptr : &it->second;
}

// Appends `stream` to the table when it can produce at least one symbol
// for `q`; shared by the full-scan and index-accelerated builds so both
// produce identical tables (same fast reject, same masks, same order as
// long as streams are considered in ascending id).
Status SymbolTable::ConsiderStream(
    const NormalizedQuery& q, const EventDatabase& db, StreamId s,
    std::vector<StreamId>* streams,
    std::vector<std::vector<SymbolMask>>* all_masks) {
  const Stream& stream = db.stream(s);
  const EventSchema* schema = db.FindSchema(stream.type());
  if (schema == nullptr) return Status::Internal("stream without schema");

  // Fast reject: can any subgoal's type and key constants fit this stream?
  bool possible = false;
  for (const NormalizedSubgoal& sg : q.subgoals) {
    if (sg.goal.type != stream.type()) continue;
    if (sg.goal.terms.size() != schema->arity()) continue;
    bool key_ok = true;
    for (size_t i = 0; i < schema->num_key_attrs; ++i) {
      const Term& t = sg.goal.terms[i];
      if (!t.is_var && t.constant != stream.key()[i]) {
        key_ok = false;
        break;
      }
    }
    if (key_ok) {
      possible = true;
      break;
    }
  }
  if (!possible) return Status::OK();

  std::vector<SymbolMask> masks(stream.domain_size(), 0);
  LAHAR_RETURN_NOT_OK(
      ComputeMasks(q, db, stream, schema->num_key_attrs, 1, &masks));
  bool any = false;
  for (SymbolMask m : masks) any = any || m != 0;
  if (any) {
    streams->push_back(s);
    all_masks->push_back(std::move(masks));
  }
  return Status::OK();
}

Result<SymbolTable> SymbolTable::Build(const NormalizedQuery& q,
                                       const EventDatabase& db) {
  return Build(q, db, nullptr);
}

Result<SymbolTable> SymbolTable::Build(const NormalizedQuery& q,
                                       const EventDatabase& db,
                                       const StreamKeyIndex* index) {
  SymbolTable table;
  table.query_ = q;
  table.num_subgoals_ = q.subgoals.size();
  if (table.num_subgoals_ > 31) {
    return Status::InvalidArgument("too many subgoals (max 31)");
  }

  // Index path: usable only when every subgoal's key positions hold
  // constants, i.e. the candidate key tuples are known exactly. Any
  // variable key term means the set of matching streams is data-dependent
  // and the full scan below stays authoritative.
  if (index != nullptr) {
    bool grounded = true;
    std::set<StreamId> candidates;
    for (const NormalizedSubgoal& sg : q.subgoals) {
      const EventSchema* schema = db.FindSchema(sg.goal.type);
      if (schema == nullptr) continue;  // no streams of this type can exist
      if (sg.goal.terms.size() != schema->arity()) continue;
      ValueTuple key;
      key.reserve(schema->num_key_attrs);
      for (size_t i = 0; i < schema->num_key_attrs && grounded; ++i) {
        const Term& t = sg.goal.terms[i];
        if (t.is_var) {
          grounded = false;
        } else {
          key.push_back(t.constant);
        }
      }
      if (!grounded) break;
      if (const std::vector<StreamId>* ids = index->Find(sg.goal.type, key)) {
        candidates.insert(ids->begin(), ids->end());
      }
    }
    if (grounded) {
      for (StreamId s : candidates) {  // ascending: same order as full scan
        LAHAR_RETURN_NOT_OK(
            ConsiderStream(q, db, s, &table.streams_, &table.masks_));
      }
      return table;
    }
  }

  for (StreamId s = 0; s < db.num_streams(); ++s) {
    LAHAR_RETURN_NOT_OK(
        ConsiderStream(q, db, s, &table.streams_, &table.masks_));
  }
  return table;
}

bool SymbolTable::CoversDomains(const EventDatabase& db) const {
  for (size_t pos = 0; pos < streams_.size(); ++pos) {
    if (db.stream(streams_[pos]).domain_size() > masks_[pos].size()) {
      return false;
    }
  }
  return true;
}

Result<SymbolTable> SymbolTable::WithGrownDomains(
    const EventDatabase& db) const {
  SymbolTable table(*this);
  for (size_t pos = 0; pos < table.streams_.size(); ++pos) {
    const Stream& stream = db.stream(table.streams_[pos]);
    std::vector<SymbolMask>& masks = table.masks_[pos];
    if (stream.domain_size() <= masks.size()) continue;
    const EventSchema* schema = db.FindSchema(stream.type());
    if (schema == nullptr) return Status::Internal("stream without schema");
    const DomainIndex from = static_cast<DomainIndex>(masks.size());
    masks.resize(stream.domain_size(), 0);
    LAHAR_RETURN_NOT_OK(ComputeMasks(table.query_, db, stream,
                                     schema->num_key_attrs, from, &masks));
  }
  return table;
}

}  // namespace lahar
