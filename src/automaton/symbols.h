// The symbol alphabet L_q and the event-to-symbol translation (steps I and
// II of Section 3.1.1).
//
// For a normalized query with subgoals g_1..g_n, L_q = {m_1..m_n, a_1..a_n}.
// A timestep's input is the *set* of symbols produced by all events at that
// timestep, encoded as a bitmask: bit 2i is m_{i+1}, bit 2i+1 is a_{i+1}.
// An event produces m_i if it unifies with g_i and satisfies its match
// predicate, and additionally a_i if it satisfies the accept predicate.
//
// Because a stream's key is deterministic and its value attributes range
// over a fixed domain, the symbol set contributed by a stream is a pure
// function of its current domain index; SymbolTable precomputes that mask
// for every participating stream and domain index.
#ifndef LAHAR_AUTOMATON_SYMBOLS_H_
#define LAHAR_AUTOMATON_SYMBOLS_H_

#include <map>
#include <utility>
#include <vector>

#include "model/database.h"
#include "query/normalize.h"

namespace lahar {

/// Symbol sets are bitmasks over L_q; supports up to 31 subgoals.
using SymbolMask = uint64_t;

inline SymbolMask MatchBit(size_t subgoal) { return 1ULL << (2 * subgoal); }
inline SymbolMask AcceptBit(size_t subgoal) {
  return 1ULL << (2 * subgoal + 1);
}

/// Attempts to unify an event (stream key + value tuple) with a subgoal,
/// extending `binding` in place. Returns false (and may leave partial
/// bindings) on mismatch; callers pass a scratch binding.
bool UnifyEvent(const Subgoal& goal, const ValueTuple& key,
                const ValueTuple& values, size_t num_key_attrs,
                Binding* binding);

/// \brief (type, key tuple) -> streams index for grounded-query builds.
///
/// SymbolTable::Build scans every stream in the database; for an extended
/// query with N key bindings that makes engine creation O(N * streams).
/// A StreamKeyIndex is built once in O(streams) and lets fully grounded
/// queries jump straight to their candidate streams, so creating (or later
/// promoting) a chain costs O(subgoals) lookups instead of a full scan.
/// The index is a snapshot: streams added to the database afterwards are
/// invisible, so holders rebuild when db.num_streams() changes.
class StreamKeyIndex {
 public:
  static StreamKeyIndex Build(const EventDatabase& db);

  /// Streams whose type and full key tuple equal (type, key); nullptr when
  /// none exist. Key tuples must match the schema's key arity exactly.
  const std::vector<StreamId>* Find(SymbolId type,
                                    const ValueTuple& key) const;

  /// Stream count at Build time (staleness check for holders).
  size_t num_streams() const { return num_streams_; }

 private:
  std::map<std::pair<SymbolId, ValueTuple>, std::vector<StreamId>> map_;
  size_t num_streams_ = 0;
};

/// \brief Precomputed per-stream symbol masks for one normalized query.
class SymbolTable {
 public:
  /// Builds the table. Fails if the query has more than 31 subgoals or a
  /// predicate references an undeclared relation.
  static Result<SymbolTable> Build(const NormalizedQuery& q,
                                   const EventDatabase& db);

  /// Index-accelerated build. When `index` is non-null and every subgoal's
  /// key positions are constants (a fully grounded query), only the
  /// index's candidate streams are scanned; the result is identical to the
  /// full Build because a stream whose key does not match any subgoal's
  /// key constants can never produce a symbol (UnifyEvent rejects it for
  /// every domain value). Falls back to the full scan when `index` is null
  /// or a key position still holds a variable.
  static Result<SymbolTable> Build(const NormalizedQuery& q,
                                   const EventDatabase& db,
                                   const StreamKeyIndex* index);

  /// Streams that can produce at least one symbol for this query, in id
  /// order. Only these matter to the Markov chain. Participation is fixed
  /// at Build time: streams added later (or whose first matching value is
  /// interned later) are not picked up — re-ground the query instead.
  const std::vector<StreamId>& participating() const { return streams_; }

  /// Symbol mask produced by participating stream (by *position* in
  /// participating()) when it takes domain index d. Bottom yields 0.
  /// Domain indices interned after the table was built yield 0 (no
  /// symbols) until the holder swaps in WithGrownDomains().
  SymbolMask MaskFor(size_t position, DomainIndex d) const {
    const std::vector<SymbolMask>& m = masks_[position];
    return d < m.size() ? m[d] : 0;
  }

  /// Domain indices covered for participating stream `position`.
  size_t domain_size(size_t position) const { return masks_[position].size(); }

  /// True when every participating stream's current domain is covered —
  /// i.e. no value was interned since the table was built (or last grown).
  bool CoversDomains(const EventDatabase& db) const;

  /// Returns a copy whose masks also cover domain indices interned after
  /// this table was built (streams grow mid-stream in live serving; see
  /// docs/RUNTIME.md). The copy is independent, so each holder upgrades
  /// its own shared_ptr — no mutation is visible to concurrent readers.
  Result<SymbolTable> WithGrownDomains(const EventDatabase& db) const;

  size_t num_subgoals() const { return num_subgoals_; }

 private:
  // Fills masks[from..) for one participating stream (masks is already
  // sized to the stream's domain); shared by Build and WithGrownDomains.
  static Status ComputeMasks(const NormalizedQuery& q, const EventDatabase& db,
                             const Stream& stream, size_t num_key_attrs,
                             DomainIndex from, std::vector<SymbolMask>* masks);

  // Appends stream `s` (and its masks) when it can produce a symbol for
  // `q`; shared by the full-scan and index-accelerated Build paths.
  static Status ConsiderStream(const NormalizedQuery& q,
                               const EventDatabase& db, StreamId s,
                               std::vector<StreamId>* streams,
                               std::vector<std::vector<SymbolMask>>* masks);

  // The normalized query is retained so WithGrownDomains can evaluate the
  // match/accept predicates on newly interned values.
  NormalizedQuery query_;
  size_t num_subgoals_ = 0;
  std::vector<StreamId> streams_;
  std::vector<std::vector<SymbolMask>> masks_;  // [position][domain index]
};

}  // namespace lahar

#endif  // LAHAR_AUTOMATON_SYMBOLS_H_
