// Interned dense transition rows for the vectorized step path.
//
// The scalar kernel path (RegularChain::StepKernel) rebuilds sparse CSR
// successor rows per chain per tick. For the m per-key chains of one
// Extended query those rows are usually *identical*: every tag shares the
// same CPTs, only the initial marginal (t == 1) differs. This module makes
// that sharing explicit:
//
//   * TransitionRowSet — the dense per-source successor rows of one
//     timestep, laid out in the kernel's class-sorted slot space so the
//     vectorized step writes contiguous destination runs. Values are built
//     with exactly the scalar path's enumeration (left-associated products,
//     q <= 0 skipped), so the nonzero entries are bit-identical to the CSR
//     values; the extra zeros only ever add +0.0 to non-negative
//     accumulators, which is a bitwise no-op.
//   * TransitionRowClass — the per-timestep row sets of one *structure
//     class*: all chains with equal kernel signature, storage tier, and
//     per-Markovian-participant domains. Each resident timestep is keyed
//     by a content fingerprint of that tick's CPT slices, so reuse is
//     validated against the data actually stepped through — structurally
//     identical streams whose CPTs diverge at some tick simply hash to
//     different entries. A small per-class window of timestamps is kept so
//     chains stepping in loose lockstep share one build.
//   * TransitionRowPool — fingerprint-keyed registry of row classes,
//     shared registry-wide like the KernelCache. Neither key covers the
//     t == 1 initial marginal: per-key chains with distinct initials still
//     land in one class (t == 1 rows are always built chain-locally,
//     never pooled).
//
// Sharing assumes stream CPT slices are immutable once written; in-place
// mutation (Stream::PruneCpts) must happen before chains are created when
// a pool is in use. Horizon *growth* is safe by construction: appending
// tick t's slices never changes the content key of any earlier tick, so
// live-database chains keep pooling (and striping) as the stream extends —
// only a not-yet-covered tick builds an "ended" row, and that row's key
// differs from the post-append key, so it can never be read stale.
//
// The optional float32 tier stores rows as floats (half the bytes). It is
// NOT bit-identical: each row entry picks up one float32 rounding, so a
// per-tick row-vs-row error of |Δrow| <= row * 2^-24 compounds to
// |Δp(t)| <= p(t) * ((1 + 2^-24)^t - 1) ≈ p(t) * t * 2^-24 over t ticks
// (see docs/PERF.md). Chains on different tiers never share a class (the
// tier is part of the fingerprint).
#ifndef LAHAR_AUTOMATON_ROWS_H_
#define LAHAR_AUTOMATON_ROWS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "model/value.h"

namespace lahar {

/// Dense successor rows for one timestep, in kernel slot space:
/// Row(h)[slot] = P(joint hidden h -> h_of[slot]). Immutable once built.
struct TransitionRowSet {
  uint64_t R = 0;
  /// No participant is in CPT phase this step (t == 1 marginal, or every
  /// stream ended): all sources share one successor row, stored once.
  bool broadcast = false;
  /// Rows live in rows_f (float32 tier) instead of rows.
  bool f32 = false;
  std::vector<double> rows;   ///< (broadcast ? 1 : R) x R, empty when f32
  std::vector<float> rows_f;  ///< float32 tier storage, empty otherwise

  const double* Row(uint64_t h) const {
    return rows.data() + (broadcast ? 0 : h * R);
  }
  const float* RowF(uint64_t h) const {
    return rows_f.data() + (broadcast ? 0 : h * R);
  }
  size_t bytes() const {
    return rows.capacity() * sizeof(double) +
           rows_f.capacity() * sizeof(float);
  }
};

/// 128-bit content fingerprint (dual FNV-1a). Used twice: as the class key
/// (kernel signature, storage tier, per-Markovian-participant domains —
/// structural identity only, stable while a live stream's horizon grows)
/// and as the per-timestep content key (that tick's CPT slices), which is
/// what actually guards row reuse. Splitting the two is what keeps pooling
/// and striping alive under the streaming runtime: appends move horizons
/// every tick, but never rewrite a CPT slice already stepped through.
struct RowFingerprint {
  uint64_t lo = 0xcbf29ce484222325ULL;
  uint64_t hi = 0x84222325cbf29ce4ULL;

  void Mix(const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      lo = (lo ^ p[i]) * 0x100000001b3ULL;
      hi = (hi ^ p[i]) * 0x00000100000001b3ULL + 0x9e3779b97f4a7c15ULL;
    }
  }
  void MixU64(uint64_t v) { Mix(&v, sizeof(v)); }

  bool operator==(const RowFingerprint& o) const {
    return lo == o.lo && hi == o.hi;
  }
};

/// The per-timestep row sets of one content class. Thread-safe; keeps a
/// small window of timestamps so loosely-lockstepped chains share builds
/// without the window growing with the horizon.
class TransitionRowClass {
 public:
  /// Row set for timestep t with the given content key, or null if not
  /// resident. Class members whose streams diverge at t (same structure,
  /// different CPT slice) hash to different keys and never cross-read.
  std::shared_ptr<const TransitionRowSet> Find(Timestamp t,
                                              const RowFingerprint& fp) const;

  /// Inserts the row set for (t, fp) and returns the canonical resident
  /// set: the already-present one if another chain won the build race
  /// (both builds are deterministic and value-identical, but converging on
  /// one pointer lets stripes recognize shared content by identity).
  std::shared_ptr<const TransitionRowSet> Insert(
      Timestamp t, const RowFingerprint& fp,
      std::shared_ptr<const TransitionRowSet> set);

  /// Cumulative rebuilds of a timestep that had already been evicted
  /// (chains stepping further apart than the residency window).
  uint64_t rebuilds() const;
  /// Bytes held by the resident row sets.
  size_t bytes() const;

 private:
  // Residency window: chains step within a few ticks of each other under
  // every executor mode (batched windows are <= 16 ticks), so a handful of
  // timestamps covers the live spread; lowest t is the least useful.
  static constexpr size_t kMaxResident = 4;

  struct Entry {
    RowFingerprint fp;
    std::shared_ptr<const TransitionRowSet> set;
  };

  mutable std::mutex mu_;
  // One short vector per timestep: almost always a single entry; longer
  // only when structurally identical streams carry divergent CPT slices.
  std::map<Timestamp, std::vector<Entry>> sets_;
  uint64_t rebuilds_ = 0;
  Timestamp max_seen_ = 0;
};

/// Fingerprint-keyed registry of row classes. One pool hangs off every
/// PreparedQuery (runtime registry shares it across sessions, like the
/// KernelCache); the extended engine falls back to a Create-local pool so
/// the per-key chains of a single query still share. Chains hold their
/// class by shared_ptr, so a pool may die before the chains using it.
class TransitionRowPool {
 public:
  struct Stats {
    uint64_t hits = 0;    ///< chain creations that joined an existing class
    uint64_t misses = 0;  ///< chain creations that opened a new class
  };

  std::shared_ptr<TransitionRowClass> FindOrCreate(const RowFingerprint& fp);

  size_t size() const;
  Stats stats() const;

 private:
  struct FpHash {
    size_t operator()(const RowFingerprint& fp) const {
      return static_cast<size_t>(fp.lo ^ (fp.hi * 0x9e3779b97f4a7c15ULL));
    }
  };

  mutable std::mutex mu_;
  Stats stats_;
  std::unordered_map<RowFingerprint, std::shared_ptr<TransitionRowClass>,
                     FpHash>
      classes_;
};

}  // namespace lahar

#endif  // LAHAR_AUTOMATON_ROWS_H_
