#include "analysis/bindings.h"

#include <algorithm>

namespace lahar {

std::set<Value> CandidateValues(const NormalizedQuery& q,
                                const EventDatabase& db, SymbolId x,
                                const Binding& bound, size_t begin,
                                size_t end) {
  std::set<Value> candidates;
  bool first_subgoal = true;
  end = std::min(end, q.subgoals.size());
  for (size_t i = begin; i < end; ++i) {
    const NormalizedSubgoal& sg = q.subgoals[i];
    const EventSchema* schema = db.FindSchema(sg.goal.type);
    if (schema == nullptr) continue;
    size_t key_arity =
        std::min(schema->num_key_attrs, sg.goal.terms.size());
    // Key positions holding x in this subgoal.
    std::vector<size_t> xpos;
    for (size_t p = 0; p < key_arity; ++p) {
      const Term& t = sg.goal.terms[p];
      if (t.is_var && t.var == x) xpos.push_back(p);
    }
    if (xpos.empty()) continue;

    std::set<Value> here;
    for (StreamId sid : db.StreamsOfType(sg.goal.type)) {
      const Stream& stream = db.stream(sid);
      const ValueTuple& key = stream.key();
      if (key.size() != key_arity) continue;
      // Check constants and already-bound variables in key positions.
      bool ok = true;
      for (size_t p = 0; p < key_arity && ok; ++p) {
        const Term& t = sg.goal.terms[p];
        if (!t.is_var) {
          ok = t.constant == key[p];
        } else if (t.var != x) {
          auto it = bound.find(t.var);
          if (it != bound.end()) ok = it->second == key[p];
        }
      }
      // x may occupy several key positions; all must agree.
      if (ok) {
        Value v = key[xpos[0]];
        for (size_t j = 1; j < xpos.size() && ok; ++j) {
          ok = key[xpos[j]] == v;
        }
        if (ok) here.insert(v);
      }
    }
    if (first_subgoal) {
      candidates = std::move(here);
      first_subgoal = false;
    } else {
      std::set<Value> inter;
      std::set_intersection(candidates.begin(), candidates.end(),
                            here.begin(), here.end(),
                            std::inserter(inter, inter.begin()));
      candidates = std::move(inter);
    }
    if (candidates.empty()) break;
  }
  return candidates;
}

std::vector<Binding> EnumerateBindings(const NormalizedQuery& q,
                                       const EventDatabase& db,
                                       const std::set<SymbolId>& vars) {
  std::vector<Binding> bindings{Binding{}};
  for (SymbolId x : vars) {
    std::vector<Binding> next;
    for (const Binding& b : bindings) {
      for (const Value& v :
           CandidateValues(q, db, x, b, 0, q.subgoals.size())) {
        Binding nb = b;
        nb.emplace(x, v);
        next.push_back(std::move(nb));
      }
    }
    bindings = std::move(next);
  }
  return bindings;
}

}  // namespace lahar
