// A parsed, validated, normalized, and classified query — the unit of work
// every engine consumes. Preparing once and evaluating many times is the
// paper's standing-query model: the runtime registers hundreds of sessions
// from one PreparedQuery batch without reparsing or reclassifying.
#ifndef LAHAR_ANALYSIS_PREPARED_H_
#define LAHAR_ANALYSIS_PREPARED_H_

#include <memory>
#include <string_view>

#include "analysis/classify.h"
#include "automaton/kernel.h"
#include "automaton/rows.h"
#include "query/ast.h"
#include "query/normalize.h"

namespace lahar {

/// \brief A parsed, validated, normalized, and classified query.
struct PreparedQuery {
  QueryPtr ast;
  NormalizedQuery normalized;
  Classification classification;
  /// Compiled-kernel cache shared by every session created from this
  /// prepared query: the runtime registers many sessions per query and all
  /// their groundings share one automaton structure, so the kernel compiles
  /// once here instead of once per session (see automaton/kernel.h).
  std::shared_ptr<KernelCache> kernel_cache;
  /// Interned dense-transition-row pool shared the same way: per-key chains
  /// (and sessions) with identical CPT content share one row class on the
  /// vectorized step path (see automaton/rows.h).
  std::shared_ptr<TransitionRowPool> row_pool;
};

/// Parses, validates, normalizes, and classifies `text` against `db`'s
/// schemas. The database is non-const because parsing interns new symbols
/// through its interner; stream contents are never touched.
Result<PreparedQuery> PrepareQuery(std::string_view text, EventDatabase* db);

}  // namespace lahar

#endif  // LAHAR_ANALYSIS_PREPARED_H_
