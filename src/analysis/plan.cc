#include "analysis/plan.h"

#include <algorithm>
#include <set>

#include "analysis/classify.h"
#include "query/printer.h"

namespace lahar {
namespace {

NormalizedQuery Prefix(const NormalizedQuery& q, size_t len) {
  NormalizedQuery out;
  out.subgoals.assign(q.subgoals.begin(), q.subgoals.begin() + len);
  return out;
}

std::set<SymbolId> SharedVarsInPrefix(const NormalizedQuery& q, size_t len) {
  return Prefix(q, len).SharedVars();
}

std::set<SymbolId> VarsInRange(const NormalizedQuery& q, size_t begin,
                               size_t end) {
  std::set<SymbolId> out;
  for (size_t i = begin; i < end; ++i) {
    auto v = q.subgoals[i].Vars();
    out.insert(v.begin(), v.end());
  }
  return out;
}

// True if the terms are syntactically identical.
bool SameTerm(const Term& a, const Term& b) { return a == b; }

// True if some key position distinguishes the two same-type subgoals
// syntactically (used by the assume_distinct_keys relaxation).
bool KeysSyntacticallyDiffer(const Subgoal& a, const Subgoal& b,
                             const EventDatabase& db) {
  const EventSchema* schema = db.FindSchema(a.type);
  if (schema == nullptr) return false;
  size_t key_arity = std::min({schema->num_key_attrs, a.terms.size(),
                               b.terms.size()});
  for (size_t i = 0; i < key_arity; ++i) {
    if (!SameTerm(a.terms[i], b.terms[i])) return true;
  }
  return false;
}

struct Compiler {
  const NormalizedQuery& q;
  const EventDatabase& db;
  const PlanOptions& options;

  Result<SafePlanPtr> Plan(std::set<SymbolId> env, size_t len) {
    std::set<SymbolId> shared = SharedVarsInPrefix(q, len);
    // Line 1: all shared variables eliminated -> regular leaf.
    if (std::includes(env.begin(), env.end(), shared.begin(), shared.end())) {
      auto node = std::make_shared<SafePlanNode>();
      node->kind = SafePlanNode::Kind::kReg;
      node->prefix_len = len;
      node->reg_query = Prefix(q, len);
      node->reg_vars.assign(env.begin(), env.end());
      return SafePlanPtr(node);
    }
    // Line 3: eliminate an independent shared variable by projection.
    for (SymbolId x : shared) {
      if (env.count(x)) continue;
      if (SyntacticallyIndependentOn(q, db, x, 0, len)) {
        std::set<SymbolId> env2 = env;
        env2.insert(x);
        LAHAR_ASSIGN_OR_RETURN(SafePlanPtr child, Plan(std::move(env2), len));
        auto node = std::make_shared<SafePlanNode>();
        node->kind = SafePlanNode::Kind::kProject;
        node->prefix_len = len;
        node->project_var = x;
        node->child = std::move(child);
        return SafePlanPtr(node);
      }
    }
    // Line 7: split off the last subgoal with seq.
    if (len >= 2) {
      const NormalizedSubgoal& g = q.subgoals[len - 1];
      if (g.is_kleene) {
        return Status::Unimplemented(
            "a parameterized Kleene plus cannot be the right child of seq; "
            "no safe plan (use the sampling engine)");
      }
      // cannotUnify precondition: strictly, no event may match both g and a
      // prefix subgoal; the relaxed mode additionally accepts pairs whose
      // key terms differ syntactically (the distinct-keys reading).
      bool strict_ok = true;
      bool relaxed_ok = options.assume_distinct_keys;
      for (size_t i = 0; i + 1 < len; ++i) {
        const Subgoal& h = q.subgoals[i].goal;
        if (!CanUnifySubgoals(h, g.goal, db)) continue;
        strict_ok = false;
        if (!KeysSyntacticallyDiffer(h, g.goal, db)) relaxed_ok = false;
      }
      std::set<SymbolId> gvars = g.Vars();
      std::set<SymbolId> q1vars = VarsInRange(q, 0, len - 1);
      std::set<SymbolId> inter;
      std::set_intersection(gvars.begin(), gvars.end(), q1vars.begin(),
                            q1vars.end(), std::inserter(inter, inter.begin()));
      bool shared_grounded = std::includes(env.begin(), env.end(),
                                           inter.begin(), inter.end());
      if (strict_ok && shared_grounded) {
        LAHAR_ASSIGN_OR_RETURN(SafePlanPtr child, Plan(env, len - 1));
        return MakeSeq(std::move(child), g, len, /*exclude=*/false);
      }
      if (relaxed_ok && shared_grounded) {
        // The witness exclusion set must be the streams of ONE grounding of
        // the prefix, so every variable shared within the prefix is
        // projected *outside* the seq: pi_-x(seq(reg<..x..>(prefix), g)).
        // Combining groundings with the independent-union formula is an
        // approximation here (groundings share witness streams); see the
        // deviations section of DESIGN.md.
        std::set<SymbolId> missing = SharedVarsInPrefix(q, len - 1);
        for (SymbolId x : env) missing.erase(x);
        std::set<SymbolId> env2 = env;
        for (SymbolId x : missing) {
          if (gvars.count(x) ||
              !SyntacticallyIndependentOn(q, db, x, 0, len - 1)) {
            return Status::UnsafeQuery(
                "prefix variable '" + db.interner().Name(x) +
                "' cannot be grounded for the relaxed seq split");
          }
          env2.insert(x);
        }
        LAHAR_ASSIGN_OR_RETURN(SafePlanPtr child, Plan(env2, len - 1));
        LAHAR_ASSIGN_OR_RETURN(
            SafePlanPtr node,
            MakeSeq(std::move(child), g, len, /*exclude=*/true));
        for (SymbolId x : missing) {
          auto proj = std::make_shared<SafePlanNode>();
          proj->kind = SafePlanNode::Kind::kProject;
          proj->prefix_len = len;
          proj->project_var = x;
          proj->child = std::move(node);
          node = std::move(proj);
        }
        return node;
      }
    }
    return Status::UnsafeQuery(
        "no safe plan exists for this query (Def 3.8 fails); evaluation is "
        "#P-hard and only the sampling engine applies");
  }

  Result<SafePlanPtr> MakeSeq(SafePlanPtr child, const NormalizedSubgoal& g,
                              size_t len, bool exclude) {
    auto node = std::make_shared<SafePlanNode>();
    node->kind = SafePlanNode::Kind::kSeq;
    node->prefix_len = len;
    node->seq_goal = g;
    node->seq_exclude_left_streams = exclude;
    node->child = std::move(child);
    return SafePlanPtr(node);
  }
};

}  // namespace

bool CanUnifySubgoals(const Subgoal& a, const Subgoal& b,
                      const EventDatabase& db) {
  (void)db;
  if (a.type != b.type) return false;
  if (a.terms.size() != b.terms.size()) return false;
  for (size_t i = 0; i < a.terms.size(); ++i) {
    if (!a.terms[i].is_var && !b.terms[i].is_var &&
        a.terms[i].constant != b.terms[i].constant) {
      return false;
    }
  }
  return true;
}

Result<SafePlanPtr> CompileSafePlan(const NormalizedQuery& q,
                                    const EventDatabase& db,
                                    const PlanOptions& options) {
  if (!q.AllPredicatesLocal()) {
    return Status::UnsafeQuery(
        "query has a non-local predicate; #P-hard (Prop. 3.18)");
  }
  Compiler compiler{q, db, options};
  return compiler.Plan({}, q.subgoals.size());
}

std::string PlanToString(const SafePlanNode& plan, const Interner& interner) {
  switch (plan.kind) {
    case SafePlanNode::Kind::kReg: {
      std::string out = "reg<";
      for (size_t i = 0; i < plan.reg_vars.size(); ++i) {
        if (i) out += ", ";
        out += interner.Name(plan.reg_vars[i]);
      }
      out += ">(";
      for (size_t i = 0; i < plan.reg_query.subgoals.size(); ++i) {
        if (i) out += "; ";
        out += ToString(plan.reg_query.subgoals[i].goal, interner);
        if (plan.reg_query.subgoals[i].is_kleene) out += "+";
      }
      return out + ")";
    }
    case SafePlanNode::Kind::kProject:
      return "pi_-" + interner.Name(plan.project_var) + "(" +
             PlanToString(*plan.child, interner) + ")";
    case SafePlanNode::Kind::kSeq:
      return "seq(" + PlanToString(*plan.child, interner) + ", " +
             ToString(plan.seq_goal.goal, interner) + ")";
  }
  return "?";
}

}  // namespace lahar
