#include "analysis/plan.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "analysis/classify.h"
#include "query/printer.h"

namespace lahar {
namespace {

NormalizedQuery Prefix(const NormalizedQuery& q, size_t len) {
  NormalizedQuery out;
  out.subgoals.assign(q.subgoals.begin(), q.subgoals.begin() + len);
  return out;
}

std::set<SymbolId> SharedVarsInPrefix(const NormalizedQuery& q, size_t len) {
  return Prefix(q, len).SharedVars();
}

std::set<SymbolId> VarsInRange(const NormalizedQuery& q, size_t begin,
                               size_t end) {
  std::set<SymbolId> out;
  for (size_t i = begin; i < end; ++i) {
    auto v = q.subgoals[i].Vars();
    out.insert(v.begin(), v.end());
  }
  return out;
}

// True if the terms are syntactically identical.
bool SameTerm(const Term& a, const Term& b) { return a == b; }

// True if some key position distinguishes the two same-type subgoals
// syntactically (used by the assume_distinct_keys relaxation).
bool KeysSyntacticallyDiffer(const Subgoal& a, const Subgoal& b,
                             const EventDatabase& db) {
  const EventSchema* schema = db.FindSchema(a.type);
  if (schema == nullptr) return false;
  size_t key_arity = std::min({schema->num_key_attrs, a.terms.size(),
                               b.terms.size()});
  for (size_t i = 0; i < key_arity; ++i) {
    if (!SameTerm(a.terms[i], b.terms[i])) return true;
  }
  return false;
}

struct Compiler {
  const NormalizedQuery& q;
  const EventDatabase& db;
  const PlanOptions& options;

  Result<SafePlanPtr> Plan(std::set<SymbolId> env, size_t len) {
    std::set<SymbolId> shared = SharedVarsInPrefix(q, len);
    // Line 1: all shared variables eliminated -> regular leaf.
    if (std::includes(env.begin(), env.end(), shared.begin(), shared.end())) {
      auto node = std::make_shared<SafePlanNode>();
      node->kind = SafePlanNode::Kind::kReg;
      node->prefix_len = len;
      node->reg_query = Prefix(q, len);
      node->reg_vars.assign(env.begin(), env.end());
      return SafePlanPtr(node);
    }
    // Line 3: eliminate an independent shared variable by projection.
    for (SymbolId x : shared) {
      if (env.count(x)) continue;
      if (SyntacticallyIndependentOn(q, db, x, 0, len)) {
        std::set<SymbolId> env2 = env;
        env2.insert(x);
        LAHAR_ASSIGN_OR_RETURN(SafePlanPtr child, Plan(std::move(env2), len));
        auto node = std::make_shared<SafePlanNode>();
        node->kind = SafePlanNode::Kind::kProject;
        node->prefix_len = len;
        node->project_var = x;
        node->child = std::move(child);
        return SafePlanPtr(node);
      }
    }
    // Line 7: split off the last subgoal with seq.
    if (len >= 2) {
      const NormalizedSubgoal& g = q.subgoals[len - 1];
      if (g.is_kleene) {
        return Status::Unimplemented(
            "a parameterized Kleene plus cannot be the right child of seq; "
            "no safe plan (use the sampling engine)");
      }
      // cannotUnify precondition: strictly, no event may match both g and a
      // prefix subgoal; the relaxed mode additionally accepts pairs whose
      // key terms differ syntactically (the distinct-keys reading).
      bool strict_ok = true;
      bool relaxed_ok = options.assume_distinct_keys;
      for (size_t i = 0; i + 1 < len; ++i) {
        const Subgoal& h = q.subgoals[i].goal;
        if (!CanUnifySubgoals(h, g.goal, db)) continue;
        strict_ok = false;
        if (!KeysSyntacticallyDiffer(h, g.goal, db)) relaxed_ok = false;
      }
      std::set<SymbolId> gvars = g.Vars();
      std::set<SymbolId> q1vars = VarsInRange(q, 0, len - 1);
      std::set<SymbolId> inter;
      std::set_intersection(gvars.begin(), gvars.end(), q1vars.begin(),
                            q1vars.end(), std::inserter(inter, inter.begin()));
      bool shared_grounded = std::includes(env.begin(), env.end(),
                                           inter.begin(), inter.end());
      if (strict_ok && shared_grounded) {
        LAHAR_ASSIGN_OR_RETURN(SafePlanPtr child, Plan(env, len - 1));
        return MakeSeq(std::move(child), g, len, /*exclude=*/false);
      }
      if (relaxed_ok && shared_grounded) {
        // The witness exclusion set must be the streams of ONE grounding of
        // the prefix, so every variable shared within the prefix is
        // projected *outside* the seq: pi_-x(seq(reg<..x..>(prefix), g)).
        // Combining groundings with the independent-union formula is an
        // approximation here (groundings share witness streams); see the
        // deviations section of DESIGN.md.
        std::set<SymbolId> missing = SharedVarsInPrefix(q, len - 1);
        for (SymbolId x : env) missing.erase(x);
        std::set<SymbolId> env2 = env;
        for (SymbolId x : missing) {
          if (gvars.count(x) ||
              !SyntacticallyIndependentOn(q, db, x, 0, len - 1)) {
            return Status::UnsafeQuery(
                "prefix variable '" + db.interner().Name(x) +
                "' cannot be grounded for the relaxed seq split");
          }
          env2.insert(x);
        }
        LAHAR_ASSIGN_OR_RETURN(SafePlanPtr child, Plan(env2, len - 1));
        LAHAR_ASSIGN_OR_RETURN(
            SafePlanPtr node,
            MakeSeq(std::move(child), g, len, /*exclude=*/true));
        for (SymbolId x : missing) {
          auto proj = std::make_shared<SafePlanNode>();
          proj->kind = SafePlanNode::Kind::kProject;
          proj->prefix_len = len;
          proj->project_var = x;
          proj->child = std::move(node);
          node = std::move(proj);
        }
        return node;
      }
    }
    return Status::UnsafeQuery(
        "no safe plan exists for this query (Def 3.8 fails); evaluation is "
        "#P-hard and only the sampling engine applies");
  }

  Result<SafePlanPtr> MakeSeq(SafePlanPtr child, const NormalizedSubgoal& g,
                              size_t len, bool exclude) {
    auto node = std::make_shared<SafePlanNode>();
    node->kind = SafePlanNode::Kind::kSeq;
    node->prefix_len = len;
    node->seq_goal = g;
    node->seq_exclude_left_streams = exclude;
    node->child = std::move(child);
    return SafePlanPtr(node);
  }
};

}  // namespace

bool CanUnifySubgoals(const Subgoal& a, const Subgoal& b,
                      const EventDatabase& db) {
  (void)db;
  if (a.type != b.type) return false;
  if (a.terms.size() != b.terms.size()) return false;
  for (size_t i = 0; i < a.terms.size(); ++i) {
    if (!a.terms[i].is_var && !b.terms[i].is_var &&
        a.terms[i].constant != b.terms[i].constant) {
      return false;
    }
  }
  return true;
}

Result<SafePlanPtr> CompileSafePlan(const NormalizedQuery& q,
                                    const EventDatabase& db,
                                    const PlanOptions& options) {
  if (!q.AllPredicatesLocal()) {
    return Status::UnsafeQuery(
        "query has a non-local predicate; #P-hard (Prop. 3.18)");
  }
  Compiler compiler{q, db, options};
  return compiler.Plan({}, q.subgoals.size());
}

namespace {

// Renders queries into canonical form: byte keys when `interner` is null,
// human-readable text otherwise. Variables are alpha-renamed by order of
// first occurrence over subgoal terms (ValidateQuery guarantees predicate
// and Kleene variables are drawn from their subgoal's terms, so the scan
// covers everything on validated queries; stragglers get indices lazily).
struct CanonicalRenderer {
  const Interner* interner = nullptr;
  std::unordered_map<SymbolId, size_t> var_index;

  size_t IndexOf(SymbolId v) {
    auto it = var_index.find(v);
    if (it != var_index.end()) return it->second;
    size_t idx = var_index.size();
    var_index.emplace(v, idx);
    return idx;
  }

  void AssignVars(const NormalizedSubgoal& g) {
    for (const Term& t : g.goal.terms) {
      if (t.is_var) IndexOf(t.var);
    }
    for (SymbolId v : g.kleene_vars) IndexOf(v);
  }

  void U64(std::string* out, uint64_t x) const {
    for (int i = 0; i < 8; ++i) {
      out->push_back(static_cast<char>((x >> (8 * i)) & 0xff));
    }
  }

  void Render(std::string* out, const Term& t) {
    if (t.is_var) {
      size_t idx = IndexOf(t.var);
      if (interner != nullptr) {
        *out += "$" + std::to_string(idx);
      } else {
        out->push_back('v');
        U64(out, idx);
      }
      return;
    }
    if (interner != nullptr) {
      *out += t.constant.ToString(*interner);
      return;
    }
    out->push_back('c');
    out->push_back(static_cast<char>(t.constant.kind()));
    U64(out, t.constant.is_int()
                 ? static_cast<uint64_t>(t.constant.int_value())
                 : (t.constant.is_symbol() ? t.constant.symbol() : 0));
  }

  static CmpOp Flip(CmpOp op) {
    switch (op) {
      case CmpOp::kLt: return CmpOp::kGt;
      case CmpOp::kGt: return CmpOp::kLt;
      case CmpOp::kLe: return CmpOp::kGe;
      case CmpOp::kGe: return CmpOp::kLe;
      default: return op;  // kEq / kNe are symmetric
    }
  }

  static const char* OpName(CmpOp op) {
    switch (op) {
      case CmpOp::kEq: return "=";
      case CmpOp::kNe: return "!=";
      case CmpOp::kLt: return "<";
      case CmpOp::kLe: return "<=";
      case CmpOp::kGt: return ">";
      case CmpOp::kGe: return ">=";
    }
    return "?";
  }

  void Render(std::string* out, const ConditionAtom& atom) {
    if (const auto* cmp = std::get_if<CompareAtom>(&atom)) {
      // Orientation-normalize: the side whose rendering compares lower goes
      // left; inequalities flip their operator when swapped.
      std::string lhs, rhs;
      Render(&lhs, cmp->lhs);
      Render(&rhs, cmp->rhs);
      CmpOp op = cmp->op;
      if (rhs < lhs) {
        std::swap(lhs, rhs);
        op = Flip(op);
      }
      if (interner != nullptr) {
        *out += lhs + " " + OpName(op) + " " + rhs;
      } else {
        out->push_back('C');
        out->push_back(static_cast<char>(op));
        *out += lhs;
        *out += rhs;
      }
      return;
    }
    const auto& rel = std::get<RelAtom>(atom);
    if (interner != nullptr) {
      if (rel.negated) *out += "NOT ";
      *out += interner->Name(rel.rel) + "(";
      for (size_t i = 0; i < rel.args.size(); ++i) {
        if (i) *out += ", ";
        Render(out, rel.args[i]);
      }
      *out += ")";
      return;
    }
    out->push_back('R');
    out->push_back(rel.negated ? 1 : 0);
    U64(out, rel.rel);
    U64(out, rel.args.size());
    for (const Term& t : rel.args) Render(out, t);
  }

  // CNF is order-insensitive: atoms within a clause and clauses within the
  // condition sort by their canonical rendering.
  void Render(std::string* out, const Condition& cond) {
    std::vector<std::string> clauses;
    clauses.reserve(cond.clauses().size());
    for (const ConditionClause& clause : cond.clauses()) {
      std::vector<std::string> atoms;
      atoms.reserve(clause.atoms.size());
      for (const ConditionAtom& atom : clause.atoms) {
        std::string a;
        Render(&a, atom);
        atoms.push_back(std::move(a));
      }
      std::sort(atoms.begin(), atoms.end());
      std::string c;
      if (interner != nullptr) {
        bool paren = atoms.size() > 1;
        if (paren) c += "(";
        for (size_t i = 0; i < atoms.size(); ++i) {
          if (i) c += " OR ";
          c += atoms[i];
        }
        if (paren) c += ")";
      } else {
        U64(&c, atoms.size());
        for (const std::string& a : atoms) {
          U64(&c, a.size());
          c += a;
        }
      }
      clauses.push_back(std::move(c));
    }
    std::sort(clauses.begin(), clauses.end());
    if (interner != nullptr) {
      for (size_t i = 0; i < clauses.size(); ++i) {
        if (i) *out += " AND ";
        *out += clauses[i];
      }
    } else {
      U64(out, clauses.size());
      for (const std::string& c : clauses) {
        U64(out, c.size());
        *out += c;
      }
    }
  }

  void Render(std::string* out, const NormalizedSubgoal& g) {
    AssignVars(g);
    if (interner != nullptr) {
      *out += interner->Name(g.goal.type) + "(";
      for (size_t i = 0; i < g.goal.terms.size(); ++i) {
        if (i) *out += ", ";
        Render(out, g.goal.terms[i]);
      }
      *out += ")";
      if (!g.match_pred.IsTrue()) {
        *out += "[";
        Render(out, g.match_pred);
        *out += "]";
      }
      if (g.is_kleene) {
        *out += "+<";
        for (size_t i = 0; i < g.kleene_vars.size(); ++i) {
          if (i) *out += ", ";
          *out += "$" + std::to_string(IndexOf(g.kleene_vars[i]));
        }
        *out += ">";
      }
      if (!g.accept_pred.IsTrue()) {
        *out += "{";
        Render(out, g.accept_pred);
        *out += "}";
      }
      return;
    }
    out->push_back('G');
    U64(out, g.goal.type);
    U64(out, g.goal.terms.size());
    for (const Term& t : g.goal.terms) Render(out, t);
    out->push_back(g.is_kleene ? 'K' : 'k');
    U64(out, g.kleene_vars.size());
    for (SymbolId v : g.kleene_vars) U64(out, IndexOf(v));
    Render(out, g.match_pred);
    Render(out, g.accept_pred);
  }
};

}  // namespace

std::string CanonicalQueryKey(const NormalizedQuery& q) {
  CanonicalRenderer r;
  std::string out;
  for (const NormalizedSubgoal& g : q.subgoals) r.Render(&out, g);
  if (!q.residual.IsTrue()) {
    out.push_back('X');
    r.Render(&out, q.residual);
  }
  return out;
}

std::vector<std::string> CanonicalPrefixKeys(const NormalizedQuery& q) {
  CanonicalRenderer r;
  std::string out;
  std::vector<std::string> keys;
  keys.reserve(q.subgoals.size());
  for (const NormalizedSubgoal& g : q.subgoals) {
    r.Render(&out, g);
    keys.push_back(out);
  }
  return keys;
}

std::string CanonicalToString(const NormalizedQuery& q,
                              const Interner& interner) {
  CanonicalRenderer r;
  r.interner = &interner;
  std::string out;
  for (size_t i = 0; i < q.subgoals.size(); ++i) {
    if (i) out += " ; ";
    r.Render(&out, q.subgoals[i]);
  }
  if (!q.residual.IsTrue()) {
    out += " | residual: ";
    r.Render(&out, q.residual);
  }
  return out;
}

QuerySharingInfo AnalyzeSharing(const NormalizedQuery& q,
                                const Classification& c) {
  QuerySharingInfo info;
  info.query_key = CanonicalQueryKey(q);
  info.prefix_keys = CanonicalPrefixKeys(q);
  info.subgoal_keys.reserve(q.subgoals.size());
  for (const NormalizedSubgoal& g : q.subgoals) {
    NormalizedQuery one;
    one.subgoals.push_back(g);
    info.subgoal_keys.push_back(CanonicalQueryKey(one));
  }
  switch (c.query_class) {
    case QueryClass::kRegular:
    case QueryClass::kExtendedRegular:
      info.sharable = true;
      break;
    case QueryClass::kSafe:
      info.decline_reason =
          "safe plans keep operator-local state (memos, interval rows); "
          "only compiled kernels are shared via the registry KernelCache";
      break;
    case QueryClass::kUnsafe:
      info.decline_reason =
          "unsafe queries run on the approximate sampling engine; sampled "
          "sessions are never shared";
      break;
  }
  return info;
}

size_t SharedPlanIndex::Add(uint64_t id, QuerySharingInfo info) {
  entries_[id] = std::move(info);
  const std::string& key = entries_[id].query_key;
  size_t n = 0;
  for (const auto& [other_id, other] : entries_) {
    (void)other_id;
    if (other.query_key == key) ++n;
  }
  return n;
}

void SharedPlanIndex::Remove(uint64_t id) { entries_.erase(id); }

size_t SharedPlanIndex::num_groups() const {
  std::unordered_map<std::string, size_t> counts;
  for (const auto& [id, info] : entries_) {
    (void)id;
    ++counts[info.query_key];
  }
  size_t groups = 0;
  for (const auto& [key, n] : counts) {
    (void)key;
    if (n >= 2) ++groups;
  }
  return groups;
}

std::vector<SharedPlanIndex::Group> SharedPlanIndex::Groups() const {
  std::vector<Group> out;
  std::unordered_map<std::string, size_t> pos;
  for (const auto& [id, info] : entries_) {
    auto it = pos.find(info.query_key);
    if (it == pos.end()) {
      pos.emplace(info.query_key, out.size());
      out.push_back(Group{info.query_key, {id}});
    } else {
      out[it->second].members.push_back(id);
    }
  }
  return out;
}

SharedPlanIndex::PrefixOverlap SharedPlanIndex::LongestPrefixOverlap(
    uint64_t id) const {
  PrefixOverlap best;
  auto self = entries_.find(id);
  if (self == entries_.end()) return best;
  for (const auto& [other_id, other] : entries_) {
    if (other_id == id) continue;
    size_t n = std::min(self->second.prefix_keys.size(),
                        other.prefix_keys.size());
    size_t len = 0;
    while (len < n && self->second.prefix_keys[len] == other.prefix_keys[len])
      ++len;
    if (len > best.subgoals) {
      best.subgoals = len;
      best.with = other_id;
    }
  }
  return best;
}

size_t SharedPlanIndex::NumAlphabetPeers(uint64_t id) const {
  auto self = entries_.find(id);
  if (self == entries_.end()) return 0;
  std::set<std::string> alphabet(self->second.subgoal_keys.begin(),
                                 self->second.subgoal_keys.end());
  size_t peers = 0;
  for (const auto& [other_id, other] : entries_) {
    if (other_id == id) continue;
    for (const std::string& k : other.subgoal_keys) {
      if (alphabet.count(k)) {
        ++peers;
        break;
      }
    }
  }
  return peers;
}

const QuerySharingInfo* SharedPlanIndex::Find(uint64_t id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

std::string PlanToString(const SafePlanNode& plan, const Interner& interner) {
  switch (plan.kind) {
    case SafePlanNode::Kind::kReg: {
      std::string out = "reg<";
      for (size_t i = 0; i < plan.reg_vars.size(); ++i) {
        if (i) out += ", ";
        out += interner.Name(plan.reg_vars[i]);
      }
      out += ">(";
      for (size_t i = 0; i < plan.reg_query.subgoals.size(); ++i) {
        if (i) out += "; ";
        out += ToString(plan.reg_query.subgoals[i].goal, interner);
        if (plan.reg_query.subgoals[i].is_kleene) out += "+";
      }
      return out + ")";
    }
    case SafePlanNode::Kind::kProject:
      return "pi_-" + interner.Name(plan.project_var) + "(" +
             PlanToString(*plan.child, interner) + ")";
    case SafePlanNode::Kind::kSeq:
      return "seq(" + PlanToString(*plan.child, interner) + ", " +
             ToString(plan.seq_goal.goal, interner) + ")";
  }
  return "?";
}

}  // namespace lahar
