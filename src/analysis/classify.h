// Static analysis: the four query classes of Section 3.
//
//   Regular (Def 3.1)          — every predicate local, no shared variables.
//   Extended Regular (Def 3.5) — every predicate local; every shared
//                                variable x has q syntactically independent
//                                on x (Def 3.4). The check is sound and
//                                complete for event queries (Section 3.2).
//   Safe (Def 3.8)             — every predicate local; every shared
//                                variable is grounded: the smallest prefix
//                                containing all its occurrences is
//                                syntactically independent on it.
//   Unsafe                     — anything else; provably #P-hard
//                                (Props. 3.18/3.19), sampling only.
#ifndef LAHAR_ANALYSIS_CLASSIFY_H_
#define LAHAR_ANALYSIS_CLASSIFY_H_

#include <string>

#include "model/database.h"
#include "query/normalize.h"

namespace lahar {

/// The query classes, ordered from most to least restrictive.
enum class QueryClass {
  kRegular,
  kExtendedRegular,
  kSafe,
  kUnsafe,
};

/// Human-readable class name.
const char* QueryClassName(QueryClass c);

/// \brief Classification result with the reason a tighter class was missed.
struct Classification {
  QueryClass query_class = QueryClass::kUnsafe;
  /// Why the query is not in the next-tighter class (diagnostics).
  std::string reason;
};

/// Checks Def 3.4 on the subgoal range [begin, end): x occurs in every
/// subgoal of the range, always in a key position, and same-type subgoals
/// agree on at least one key position holding x. Kleene subgoals must
/// export x (x in V).
bool SyntacticallyIndependentOn(const NormalizedQuery& q,
                                const EventDatabase& db, SymbolId x,
                                size_t begin, size_t end);

/// Checks Def 3.8's groundedness of x: the smallest prefix containing all
/// occurrences of x is syntactically independent on x.
bool IsGrounded(const NormalizedQuery& q, const EventDatabase& db, SymbolId x);

/// Classifies a normalized query against a database's schemas.
Classification Classify(const NormalizedQuery& q, const EventDatabase& db);

}  // namespace lahar

#endif  // LAHAR_ANALYSIS_CLASSIFY_H_
