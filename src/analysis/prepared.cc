#include "analysis/prepared.h"

#include "query/parser.h"

namespace lahar {

Result<PreparedQuery> PrepareQuery(std::string_view text, EventDatabase* db) {
  PreparedQuery out;
  LAHAR_ASSIGN_OR_RETURN(out.ast, ParseQuery(text, &db->interner()));
  LAHAR_RETURN_NOT_OK(ValidateQuery(*out.ast, *db));
  LAHAR_ASSIGN_OR_RETURN(out.normalized, Normalize(*out.ast));
  out.classification = Classify(out.normalized, *db);
  out.kernel_cache = std::make_shared<KernelCache>();
  out.row_pool = std::make_shared<TransitionRowPool>();
  return out;
}

}  // namespace lahar
