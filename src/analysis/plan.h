// Safe plans and the plan compiler (Section 3.3.2, Algorithm 1).
//
// A safe plan is a left-linear tree whose leftmost leaf is a regular
// expression operator reg<Vreg>(q) — a prefix of the query whose shared
// variables Vreg have been eliminated by enclosing projections — combined
// upward by seq (sequencing with the precursor/witness decomposition of
// Eq. 3) and pi_{-x} (independent-project) operators. Selections are folded
// into subgoal predicates during normalization, so no explicit sigma
// operator remains.
#ifndef LAHAR_ANALYSIS_PLAN_H_
#define LAHAR_ANALYSIS_PLAN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/classify.h"
#include "model/database.h"
#include "query/normalize.h"

namespace lahar {

class KernelCache;  // automaton/kernel.h

struct SafePlanNode;
using SafePlanPtr = std::shared_ptr<const SafePlanNode>;

/// \brief One operator of a safe plan.
struct SafePlanNode {
  enum class Kind { kReg, kProject, kSeq };
  Kind kind = Kind::kReg;

  /// Subgoals [0, prefix_len) of the normalized query are this node's scope.
  size_t prefix_len = 0;

  // kReg: the (still-parameterized) regular prefix and its grounded vars.
  NormalizedQuery reg_query;
  std::vector<SymbolId> reg_vars;

  // kProject: the eliminated variable.
  SymbolId project_var = 0;

  // kSeq: the right-hand base subgoal. When seq_exclude_left_streams is set
  // (assume_distinct_keys relaxation), the witness probabilities for this
  // subgoal exclude every stream consumed by the left subplan.
  NormalizedSubgoal seq_goal;
  bool seq_exclude_left_streams = false;

  SafePlanPtr child;  // kProject / kSeq
};

/// Options controlling safe-plan *serving*: the incremental per-tick
/// kernels and bounded caches of engine/safe_engine.cc. Every knob here is
/// numerically neutral — the fast kernels skip exact zeros and reuse
/// deterministic rebuilds, so answers are bit-identical to the reference
/// loops at any capacity setting; the knobs trade recompute time against
/// resident memory.
struct SafePlanOptions {
  /// Use the sparse incremental seq kernels (skip timesteps whose witness
  /// probability is exactly 0 and reuse a per-node scratch buffer). false
  /// selects the reference dense loops — same doubles, O(t) per call —
  /// kept selectable for verification and as the bench's "pre-PR" cell.
  bool incremental = true;

  /// Bounded (ts, tf) interval memo per seq node (direct-mapped; collisions
  /// evict). Evicted entries recompute bit-identically on the next miss.
  size_t seq_memo_capacity = 1024;

  /// Bounded interval-row arena per reg leaf (LRU). An evicted row rebuilds
  /// bit-identically from the nearest chain keyframe when re-requested.
  /// Eviction scans the arena for the coldest row, so the capacity also
  /// bounds per-eviction work — keep it a small multiple of the live
  /// precursor window, not "as big as memory allows".
  size_t reg_row_capacity = 128;

  /// Spacing of reg-leaf chain keyframes (snapshots kept for row rebuilds);
  /// memory is O(horizon / interval) chains instead of one per timestep,
  /// and a row rebuild steps at most this many transitions from the
  /// preceding keyframe.
  size_t reg_keyframe_interval = 256;

  /// Optional compiled-kernel cache shared across *plans*: reg leaves whose
  /// canonical structure matches another plan's leaf (or a standalone
  /// regular query) reuse its compiled automaton instead of recompiling.
  /// Null keeps the historical behaviour of one private cache per plan
  /// engine. The cache must outlive every engine created with it (the
  /// runtime registry owns one for the whole process).
  KernelCache* kernel_cache = nullptr;
};

/// Options controlling plan compilation.
struct PlanOptions {
  /// Relaxes the cannotUnify precondition of seq: subgoals whose key terms
  /// are syntactically different are treated as matching *distinct* keys
  /// (e.g. At(p, l2); At(q, l3) reads "another tag q"), and the seq
  /// operator's witness probabilities exclude the streams consumed by the
  /// left subplan. This matches the evaluation queries of Fig. 14; without
  /// it, such queries are rejected as potentially overlapping.
  bool assume_distinct_keys = false;

  /// The seq operator drops precursor/witness terms whose probability falls
  /// below this (0 disables truncation — the eager ablation). With dense
  /// witness streams the truncated sums are near-constant work per
  /// timestep, the behaviour behind Fig. 14(b).
  double seq_truncate = 1e-12;

  /// Incremental serving knobs (see SafePlanOptions above).
  SafePlanOptions safe;
};

/// Compiles a safe plan per Algorithm 1. Returns an UnsafeQuery status when
/// no safe plan exists (the query is #P-hard, Sections 3.4), or
/// Unimplemented for a Kleene tail that cannot fold into the reg leaf.
Result<SafePlanPtr> CompileSafePlan(const NormalizedQuery& q,
                                    const EventDatabase& db,
                                    const PlanOptions& options = {});

/// Renders the plan, e.g. "seq(pi_-x(reg<x>(R(x); S(x))), T('a', y))".
std::string PlanToString(const SafePlanNode& plan, const Interner& interner);

/// True if no event can unify with both subgoals (conservative syntactic
/// check; used by the seq precondition).
bool CanUnifySubgoals(const Subgoal& a, const Subgoal& b,
                      const EventDatabase& db);

// ---------------------------------------------------------------------------
// Cross-query sharing analysis (docs/SHARING.md).
//
// The canonicalizing rewrite maps a normalized query to a canonical byte
// key: variables are alpha-renamed by order of first occurrence (scanning
// subgoal terms left to right), CNF predicate clauses and their atoms are
// sorted into a canonical byte order, and comparisons are orientation-
// normalized. Two queries that drive the same automaton/chain structure
// therefore hash equal regardless of variable names or predicate spelling
// order. Keys are raw byte strings (may contain NULs); they are stable
// within one interner context, not across processes.
// ---------------------------------------------------------------------------

/// Canonical structural key of the whole query (subgoals + residual).
std::string CanonicalQueryKey(const NormalizedQuery& q);

/// keys[i] is the canonical key of the subgoal prefix [0, i] (residual
/// excluded). First-occurrence renaming makes keys[i] depend only on
/// subgoals 0..i, so two queries share an automaton prefix of length k iff
/// their keys[k-1] compare equal.
std::vector<std::string> CanonicalPrefixKeys(const NormalizedQuery& q);

/// Human-readable canonical form (variables rendered as $0, $1, ...); the
/// "after rewrite" view printed by `lahar_cli --explain`.
std::string CanonicalToString(const NormalizedQuery& q,
                              const Interner& interner);

/// \brief What the sharing pass discovered about one prepared query.
struct QuerySharingInfo {
  /// Whole-query canonical key: queries with equal keys are structurally
  /// identical and can share live evaluation state.
  std::string query_key;
  /// Per-prefix canonical keys (see CanonicalPrefixKeys).
  std::vector<std::string> prefix_keys;
  /// Standalone canonical key of each subgoal (the query's "alphabet"):
  /// position-independent, used to report partial structural overlap.
  std::vector<std::string> subgoal_keys;
  /// True when the runtime may share live chain state for this class.
  bool sharable = false;
  /// Why runtime chain sharing is declined (empty when sharable).
  std::string decline_reason;
};

/// Classifies a query's sharing potential. Regular/extended-regular queries
/// are chain-sharable; safe plans share only compiled kernels (their
/// operator state is plan-local); sampling sessions are never shared.
QuerySharingInfo AnalyzeSharing(const NormalizedQuery& q,
                                const Classification& c);

/// \brief Index of prepared queries keyed by canonical structure.
///
/// Detects (a) structurally identical queries — same canonical key, the
/// groups the runtime evaluates as one shared unit — and (b) common
/// automaton prefixes / shared subgoal alphabets across different queries,
/// reported by `lahar_cli --explain`. Not internally synchronized.
class SharedPlanIndex {
 public:
  struct Group {
    std::string key;
    std::vector<uint64_t> members;  // insertion order
  };
  struct PrefixOverlap {
    size_t subgoals = 0;  // longest shared automaton prefix, 0 if none
    uint64_t with = 0;    // some other member sharing that prefix
  };

  /// Registers a query; returns how many queries now share its key.
  size_t Add(uint64_t id, QuerySharingInfo info);
  void Remove(uint64_t id);

  size_t num_queries() const { return entries_.size(); }
  /// Number of canonical keys held by two or more queries.
  size_t num_groups() const;
  /// All key groups in first-insertion order.
  std::vector<Group> Groups() const;
  /// Longest automaton prefix `id` shares with any *other* indexed query.
  PrefixOverlap LongestPrefixOverlap(uint64_t id) const;
  /// Number of other queries sharing at least one subgoal-alphabet symbol.
  size_t NumAlphabetPeers(uint64_t id) const;
  const QuerySharingInfo* Find(uint64_t id) const;

 private:
  std::map<uint64_t, QuerySharingInfo> entries_;
};

}  // namespace lahar

#endif  // LAHAR_ANALYSIS_PLAN_H_
