// Safe plans and the plan compiler (Section 3.3.2, Algorithm 1).
//
// A safe plan is a left-linear tree whose leftmost leaf is a regular
// expression operator reg<Vreg>(q) — a prefix of the query whose shared
// variables Vreg have been eliminated by enclosing projections — combined
// upward by seq (sequencing with the precursor/witness decomposition of
// Eq. 3) and pi_{-x} (independent-project) operators. Selections are folded
// into subgoal predicates during normalization, so no explicit sigma
// operator remains.
#ifndef LAHAR_ANALYSIS_PLAN_H_
#define LAHAR_ANALYSIS_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "model/database.h"
#include "query/normalize.h"

namespace lahar {

struct SafePlanNode;
using SafePlanPtr = std::shared_ptr<const SafePlanNode>;

/// \brief One operator of a safe plan.
struct SafePlanNode {
  enum class Kind { kReg, kProject, kSeq };
  Kind kind = Kind::kReg;

  /// Subgoals [0, prefix_len) of the normalized query are this node's scope.
  size_t prefix_len = 0;

  // kReg: the (still-parameterized) regular prefix and its grounded vars.
  NormalizedQuery reg_query;
  std::vector<SymbolId> reg_vars;

  // kProject: the eliminated variable.
  SymbolId project_var = 0;

  // kSeq: the right-hand base subgoal. When seq_exclude_left_streams is set
  // (assume_distinct_keys relaxation), the witness probabilities for this
  // subgoal exclude every stream consumed by the left subplan.
  NormalizedSubgoal seq_goal;
  bool seq_exclude_left_streams = false;

  SafePlanPtr child;  // kProject / kSeq
};

/// Options controlling safe-plan *serving*: the incremental per-tick
/// kernels and bounded caches of engine/safe_engine.cc. Every knob here is
/// numerically neutral — the fast kernels skip exact zeros and reuse
/// deterministic rebuilds, so answers are bit-identical to the reference
/// loops at any capacity setting; the knobs trade recompute time against
/// resident memory.
struct SafePlanOptions {
  /// Use the sparse incremental seq kernels (skip timesteps whose witness
  /// probability is exactly 0 and reuse a per-node scratch buffer). false
  /// selects the reference dense loops — same doubles, O(t) per call —
  /// kept selectable for verification and as the bench's "pre-PR" cell.
  bool incremental = true;

  /// Bounded (ts, tf) interval memo per seq node (direct-mapped; collisions
  /// evict). Evicted entries recompute bit-identically on the next miss.
  size_t seq_memo_capacity = 1024;

  /// Bounded interval-row arena per reg leaf (LRU). An evicted row rebuilds
  /// bit-identically from the nearest chain keyframe when re-requested.
  /// Eviction scans the arena for the coldest row, so the capacity also
  /// bounds per-eviction work — keep it a small multiple of the live
  /// precursor window, not "as big as memory allows".
  size_t reg_row_capacity = 128;

  /// Spacing of reg-leaf chain keyframes (snapshots kept for row rebuilds);
  /// memory is O(horizon / interval) chains instead of one per timestep,
  /// and a row rebuild steps at most this many transitions from the
  /// preceding keyframe.
  size_t reg_keyframe_interval = 256;
};

/// Options controlling plan compilation.
struct PlanOptions {
  /// Relaxes the cannotUnify precondition of seq: subgoals whose key terms
  /// are syntactically different are treated as matching *distinct* keys
  /// (e.g. At(p, l2); At(q, l3) reads "another tag q"), and the seq
  /// operator's witness probabilities exclude the streams consumed by the
  /// left subplan. This matches the evaluation queries of Fig. 14; without
  /// it, such queries are rejected as potentially overlapping.
  bool assume_distinct_keys = false;

  /// The seq operator drops precursor/witness terms whose probability falls
  /// below this (0 disables truncation — the eager ablation). With dense
  /// witness streams the truncated sums are near-constant work per
  /// timestep, the behaviour behind Fig. 14(b).
  double seq_truncate = 1e-12;

  /// Incremental serving knobs (see SafePlanOptions above).
  SafePlanOptions safe;
};

/// Compiles a safe plan per Algorithm 1. Returns an UnsafeQuery status when
/// no safe plan exists (the query is #P-hard, Sections 3.4), or
/// Unimplemented for a Kleene tail that cannot fold into the reg leaf.
Result<SafePlanPtr> CompileSafePlan(const NormalizedQuery& q,
                                    const EventDatabase& db,
                                    const PlanOptions& options = {});

/// Renders the plan, e.g. "seq(pi_-x(reg<x>(R(x); S(x))), T('a', y))".
std::string PlanToString(const SafePlanNode& plan, const Interner& interner);

/// True if no event can unify with both subgoals (conservative syntactic
/// check; used by the seq precondition).
bool CanUnifySubgoals(const Subgoal& a, const Subgoal& b,
                      const EventDatabase& db);

}  // namespace lahar

#endif  // LAHAR_ANALYSIS_PLAN_H_
