#include "analysis/classify.h"

#include <algorithm>

namespace lahar {
namespace {

// Key positions (term indices) of subgoal sg that hold variable x.
std::vector<size_t> KeyPositionsOf(const NormalizedSubgoal& sg,
                                   const EventDatabase& db, SymbolId x) {
  std::vector<size_t> out;
  const EventSchema* schema = db.FindSchema(sg.goal.type);
  if (schema == nullptr) return out;
  size_t key_arity =
      std::min(schema->num_key_attrs, sg.goal.terms.size());
  for (size_t i = 0; i < key_arity; ++i) {
    const Term& t = sg.goal.terms[i];
    if (t.is_var && t.var == x) out.push_back(i);
  }
  return out;
}

bool OccursAnywhere(const NormalizedSubgoal& sg, SymbolId x) {
  for (const Term& t : sg.goal.terms) {
    if (t.is_var && t.var == x) return true;
  }
  return false;
}

bool OccursOutsideKey(const NormalizedSubgoal& sg, const EventDatabase& db,
                      SymbolId x) {
  const EventSchema* schema = db.FindSchema(sg.goal.type);
  size_t key_arity = schema == nullptr
                         ? 0
                         : std::min(schema->num_key_attrs,
                                    sg.goal.terms.size());
  for (size_t i = key_arity; i < sg.goal.terms.size(); ++i) {
    const Term& t = sg.goal.terms[i];
    if (t.is_var && t.var == x) return true;
  }
  return false;
}

}  // namespace

const char* QueryClassName(QueryClass c) {
  switch (c) {
    case QueryClass::kRegular: return "Regular";
    case QueryClass::kExtendedRegular: return "ExtendedRegular";
    case QueryClass::kSafe: return "Safe";
    case QueryClass::kUnsafe: return "Unsafe";
  }
  return "?";
}

bool SyntacticallyIndependentOn(const NormalizedQuery& q,
                                const EventDatabase& db, SymbolId x,
                                size_t begin, size_t end) {
  // (a) x occurs in every subgoal of the range, (b) only in key positions.
  for (size_t i = begin; i < end; ++i) {
    const NormalizedSubgoal& sg = q.subgoals[i];
    if (KeyPositionsOf(sg, db, x).empty()) return false;
    if (OccursOutsideKey(sg, db, x)) return false;
    // A Kleene subgoal must export x, otherwise unfoldings rebind it.
    if (sg.is_kleene &&
        std::find(sg.kleene_vars.begin(), sg.kleene_vars.end(), x) ==
            sg.kleene_vars.end()) {
      return false;
    }
  }
  // (c) same-type subgoals share a key position holding x, so no event can
  // unify with two different groundings of x.
  for (size_t i = begin; i < end; ++i) {
    for (size_t j = i + 1; j < end; ++j) {
      if (q.subgoals[i].goal.type != q.subgoals[j].goal.type) continue;
      std::vector<size_t> pi = KeyPositionsOf(q.subgoals[i], db, x);
      std::vector<size_t> pj = KeyPositionsOf(q.subgoals[j], db, x);
      bool common = false;
      for (size_t p : pi) {
        if (std::find(pj.begin(), pj.end(), p) != pj.end()) {
          common = true;
          break;
        }
      }
      if (!common) return false;
    }
  }
  return true;
}

bool IsGrounded(const NormalizedQuery& q, const EventDatabase& db,
                SymbolId x) {
  // The smallest subquery containing all occurrences of x is a prefix
  // (subqueries are prefixes in this language).
  size_t last = 0;
  bool found = false;
  for (size_t i = 0; i < q.subgoals.size(); ++i) {
    if (OccursAnywhere(q.subgoals[i], x)) {
      last = i;
      found = true;
    }
  }
  if (!found) return true;  // never occurs: vacuously grounded
  return SyntacticallyIndependentOn(q, db, x, 0, last + 1);
}

Classification Classify(const NormalizedQuery& q, const EventDatabase& db) {
  Classification c;
  if (!q.AllPredicatesLocal()) {
    c.query_class = QueryClass::kUnsafe;
    c.reason = "query has a non-local predicate (Prop. 3.18: #P-hard)";
    return c;
  }
  std::set<SymbolId> shared = q.SharedVars();
  if (shared.empty()) {
    c.query_class = QueryClass::kRegular;
    return c;
  }
  bool extended = true;
  SymbolId bad_extended = 0;
  for (SymbolId x : shared) {
    if (!SyntacticallyIndependentOn(q, db, x, 0, q.subgoals.size())) {
      extended = false;
      bad_extended = x;
      break;
    }
  }
  if (extended) {
    c.query_class = QueryClass::kExtendedRegular;
    c.reason = "shared variables present";
    return c;
  }
  for (SymbolId x : shared) {
    if (!IsGrounded(q, db, x)) {
      c.query_class = QueryClass::kUnsafe;
      c.reason = "shared variable '" + db.interner().Name(x) +
                 "' is not grounded (Def 3.8); #P-hard by Prop. 3.19";
      return c;
    }
  }
  c.query_class = QueryClass::kSafe;
  c.reason = "variable '" + db.interner().Name(bad_extended) +
             "' is not shared across all subgoals";
  return c;
}

}  // namespace lahar
