// Enumeration of candidate groundings for shared variables.
//
// Syntactic independence puts shared variables in key positions, and stream
// keys are deterministic, so the possible groundings of a shared variable
// are exactly the key values of the streams that can unify with its
// subgoals — a finite set independent of the stream length (Theorem 3.7's
// "m distinct keys").
#ifndef LAHAR_ANALYSIS_BINDINGS_H_
#define LAHAR_ANALYSIS_BINDINGS_H_

#include <set>
#include <vector>

#include "model/database.h"
#include "query/normalize.h"

namespace lahar {

/// Candidate values for variable x: the intersection over all subgoals
/// containing x (within [begin, end)) of the key values offered by streams
/// whose type and key constants unify with that subgoal after substituting
/// `bound`. Requires x to sit in key positions (guaranteed for grounded /
/// syntactically-independent variables).
std::set<Value> CandidateValues(const NormalizedQuery& q,
                                const EventDatabase& db, SymbolId x,
                                const Binding& bound, size_t begin,
                                size_t end);

/// Joint groundings for `vars` over the whole query: extends bindings one
/// variable at a time so that multi-variable keys stay consistent.
std::vector<Binding> EnumerateBindings(const NormalizedQuery& q,
                                       const EventDatabase& db,
                                       const std::set<SymbolId>& vars);

}  // namespace lahar

#endif  // LAHAR_ANALYSIS_BINDINGS_H_
