#include "sim/scenarios.h"

#include <algorithm>

namespace lahar {

const char* StreamKindName(StreamKind kind) {
  switch (kind) {
    case StreamKind::kFiltered: return "filtered";
    case StreamKind::kExactFiltered: return "exact_filtered";
    case StreamKind::kSmoothed: return "smoothed";
    case StreamKind::kSmoothedIndependent: return "smoothed_independent";
    case StreamKind::kTruth: return "truth";
    case StreamKind::kDiurnal: return "diurnal";
  }
  return "?";
}

Result<std::unique_ptr<EventDatabase>> Scenario::BuildDatabase(
    StreamKind kind) const {
  auto db = std::make_unique<EventDatabase>();
  LAHAR_RETURN_NOT_OK(pipeline->DeclareWorld(db.get()));
  LAHAR_ASSIGN_OR_RETURN(Relation * person, db->DeclareRelation("Person", 1));
  Rng rng(seed ^ 0x5eed5eedULL);
  for (size_t i = 0; i < tags.size(); ++i) {
    const TagTrace& tag = tags[i];
    LAHAR_RETURN_NOT_OK(person->Insert({db->Sym(tag.name)}));
    switch (kind) {
      case StreamKind::kFiltered: {
        Rng tag_rng = rng.Split();
        LAHAR_RETURN_NOT_OK(
            pipeline->AddFilteredStream(db.get(), tag, &tag_rng).status());
        break;
      }
      case StreamKind::kExactFiltered:
        LAHAR_RETURN_NOT_OK(
            pipeline->AddExactFilteredStream(db.get(), tag).status());
        break;
      case StreamKind::kSmoothed:
        LAHAR_RETURN_NOT_OK(
            pipeline->AddSmoothedStream(db.get(), tag).status());
        break;
      case StreamKind::kSmoothedIndependent:
        LAHAR_RETURN_NOT_OK(
            pipeline->AddSmoothedIndependentStream(db.get(), tag).status());
        break;
      case StreamKind::kTruth:
        LAHAR_RETURN_NOT_OK(pipeline->AddTruthStream(db.get(), tag).status());
        break;
      case StreamKind::kDiurnal: {
        const Timestamp T =
            static_cast<Timestamp>(tag.readings.size()) - 1;
        Timestamp from = 1, to = T;
        if (i < active_windows.size()) {
          from = active_windows[i].first;
          to = active_windows[i].second;
        }
        LAHAR_RETURN_NOT_OK(
            pipeline->AddDiurnalStream(db.get(), tag, from, to).status());
        break;
      }
    }
  }
  return db;
}

namespace {

Scenario MakeScenario(Floorplan floorplan, PipelineConfig config,
                      uint64_t seed) {
  Scenario scenario;
  scenario.floorplan = std::make_shared<const Floorplan>(std::move(floorplan));
  scenario.pipeline =
      std::make_shared<const TracePipeline>(scenario.floorplan.get(), config);
  scenario.seed = seed;
  return scenario;
}

}  // namespace

Result<Scenario> OfficeScenario(size_t num_workers, Timestamp horizon,
                                uint64_t seed, PipelineConfig config) {
  int per_floor = static_cast<int>((num_workers + 1) / 2);
  // Dense antenna coverage (one per hallway segment), as in the paper's
  // heavily instrumented deployment; rooms stay unsensed.
  Floorplan fp =
      Floorplan::Building(2, std::max(4, per_floor), /*antenna_every=*/1);
  Scenario scenario = MakeScenario(std::move(fp), config, seed);
  std::vector<uint32_t> offices =
      scenario.floorplan->OfType(RoomType::kOffice);
  if (offices.size() < num_workers) {
    return Status::Internal("building too small for workers");
  }
  Rng rng(seed);
  for (size_t i = 0; i < num_workers; ++i) {
    Rng worker_rng = rng.Split();
    TruePath path = OfficeWorkerPath(*scenario.floorplan, offices[i], horizon,
                                     &worker_rng);
    Rng obs_rng = rng.Split();
    scenario.tags.push_back(scenario.pipeline->Observe(
        "tag" + std::to_string(i + 1), std::move(path), &obs_rng));
  }
  return scenario;
}

Result<Scenario> RandomWalkScenario(size_t num_tags, Timestamp horizon,
                                    uint64_t seed, PipelineConfig config) {
  Floorplan fp = Floorplan::Building(2, 10);
  Scenario scenario = MakeScenario(std::move(fp), config, seed);
  Matrix motion =
      scenario.floorplan->MotionModel(config.hall_stay, config.room_stay,
                                      config.coffee_bias);
  Rng rng(seed);
  for (size_t i = 0; i < num_tags; ++i) {
    Rng walk_rng = rng.Split();
    uint32_t start = static_cast<uint32_t>(
        walk_rng.Below(scenario.floorplan->num_locations()));
    TruePath path = RandomWalkPath(*scenario.floorplan, motion, start, horizon,
                                   &walk_rng);
    Rng obs_rng = rng.Split();
    scenario.tags.push_back(scenario.pipeline->Observe(
        "tag" + std::to_string(i + 1), std::move(path), &obs_rng));
  }
  return scenario;
}

Result<Scenario> WideFloorplanScenario(size_t num_tags, Timestamp horizon,
                                       uint64_t seed, PipelineConfig config) {
  // The building is sized independently of the population: hundreds of tags
  // share the same rooms, so the location domain (and with it the per-chain
  // state) stays fixed while the registered-key count scales.
  Floorplan fp = Floorplan::Building(2, 8);
  Scenario scenario = MakeScenario(std::move(fp), config, seed);
  Matrix motion =
      scenario.floorplan->MotionModel(config.hall_stay, config.room_stay,
                                      config.coffee_bias);
  Rng rng(seed);
  // Eight staggered shifts of ~horizon/8 ticks each: tag i is live only in
  // shift i mod 8, so ~1/8 of the population is active at any tick and the
  // rest of the streams sit on quiet all-bottom marginals.
  const Timestamp shift =
      std::max<Timestamp>(1, horizon / 8);
  for (size_t i = 0; i < num_tags; ++i) {
    Rng walk_rng = rng.Split();
    uint32_t start = static_cast<uint32_t>(
        walk_rng.Below(scenario.floorplan->num_locations()));
    TruePath path = RandomWalkPath(*scenario.floorplan, motion, start, horizon,
                                   &walk_rng);
    Rng obs_rng = rng.Split();
    scenario.tags.push_back(scenario.pipeline->Observe(
        "tag" + std::to_string(i + 1), std::move(path), &obs_rng));
    const Timestamp from =
        std::min<Timestamp>(horizon, 1 + static_cast<Timestamp>(i % 8) * shift);
    const Timestamp to = std::min<Timestamp>(horizon, from + shift - 1);
    scenario.active_windows.emplace_back(from, to);
  }
  return scenario;
}

Result<Scenario> RoomOccupancyScenario(Timestamp horizon, uint64_t seed,
                                       PipelineConfig config) {
  Floorplan fp = Floorplan::Corridor(6);
  Scenario scenario = MakeScenario(std::move(fp), config, seed);
  uint32_t start = scenario.floorplan->Find("hall1");
  uint32_t room = scenario.floorplan->Find("room4");
  TruePath path =
      EnterRoomAndStayPath(*scenario.floorplan, start, room, horizon);
  Rng rng(seed);
  scenario.tags.push_back(
      scenario.pipeline->Observe("tag1", std::move(path), &rng));
  return scenario;
}

}  // namespace lahar
