// RFID sensor model: antennas detect a tag in their location with
// probability `read_rate` (the paper cites read rates from 10% to 90% in
// large deployments) and misfire on adjacent locations with a small
// `bleed_rate`, reproducing both missed and conflicting readings.
#ifndef LAHAR_SIM_SENSOR_H_
#define LAHAR_SIM_SENSOR_H_

#include <vector>

#include "common/rng.h"
#include "inference/hmm.h"
#include "sim/floorplan.h"

namespace lahar {

/// \brief One timestep's raw readings: the antenna ids that saw the tag.
using Reading = std::vector<int>;

/// \brief Probabilistic antenna model over a floorplan.
class RfidSensorModel {
 public:
  RfidSensorModel(const Floorplan* floorplan, double read_rate,
                  double bleed_rate = 0.05);

  /// P[antenna a fires | tag at location loc].
  double FireProb(int antenna, uint32_t loc) const;

  /// Samples the set of firing antennas for a tag at `loc`.
  Reading Sample(uint32_t loc, Rng* rng) const;

  /// Observation likelihood vector L[loc] = P[reading | tag at loc],
  /// the plug-in for DiscreteHmm / ParticleFilter.
  std::vector<double> Likelihood(const Reading& reading) const;

  /// Likelihood sequence for a whole reading trace.
  Likelihoods LikelihoodTrace(const std::vector<Reading>& readings) const;

 private:
  const Floorplan* floorplan_;
  double read_rate_;
  double bleed_rate_;
  // coverage_[loc] = antenna covering loc (own location), -1 if none.
  // adjacency_[loc] = antennas covering a neighbor of loc.
  std::vector<int> coverage_;
  std::vector<std::vector<int>> adjacent_;
};

}  // namespace lahar

#endif  // LAHAR_SIM_SENSOR_H_
