// Prepackaged experiment scenarios: building + trajectories + inference,
// shared by the tests, examples, and the benchmark harness.
#ifndef LAHAR_SIM_SCENARIOS_H_
#define LAHAR_SIM_SCENARIOS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "model/database.h"
#include "sim/trace_generator.h"

namespace lahar {

/// Which stream representation to materialize from a scenario.
enum class StreamKind {
  kFiltered,             ///< particle filter, independent (real-time)
  kExactFiltered,        ///< exact forward filter, independent
  kSmoothed,             ///< forward-backward + CPTs, Markovian (archived)
  kSmoothedIndependent,  ///< smoothed marginals without CPTs (ablation)
  kTruth,                ///< the certain ground-truth path
  kDiurnal,              ///< exact filter inside each tag's activity window,
                         ///< all-bottom (quiet) outside it
};

const char* StreamKindName(StreamKind kind);

/// \brief A simulated world: floorplan, pipeline, and per-tag traces.
struct Scenario {
  std::shared_ptr<const Floorplan> floorplan;
  std::shared_ptr<const TracePipeline> pipeline;
  std::vector<TagTrace> tags;
  /// Per-tag [from, to] activity windows, index-aligned with `tags`; only
  /// read by StreamKind::kDiurnal (a tag without an entry, or any tag under
  /// the other kinds, is active over the whole horizon).
  std::vector<std::pair<Timestamp, Timestamp>> active_windows;
  uint64_t seed = 0;

  /// Builds a database holding every tag's stream of the given kind, the
  /// location-type relations, and a Person(tag) relation.
  Result<std::unique_ptr<EventDatabase>> BuildDatabase(StreamKind kind) const;
};

/// Office workers looping office -> hallway -> coffee room -> office in the
/// two-floor evaluation building (the Section 4.2 quality workload).
Result<Scenario> OfficeScenario(size_t num_workers, Timestamp horizon,
                                uint64_t seed, PipelineConfig config = {});

/// n tags random-walking through the building (the Section 4.3 performance
/// workload: "we simulate n objects moving simultaneously").
Result<Scenario> RandomWalkScenario(size_t num_tags, Timestamp horizon,
                                    uint64_t seed, PipelineConfig config = {});

/// One tag walking down a short corridor into a specific unsensed room and
/// staying there (the Fig. 11 occupancy scenario; ~6 candidate rooms).
Result<Scenario> RoomOccupancyScenario(Timestamp horizon, uint64_t seed,
                                       PipelineConfig config = {});

/// A fixed-size building shared by an arbitrarily large tag population with
/// diurnal activity: each tag random-walks the floorplan but its stream is
/// only "live" inside a staggered ~1/8-horizon window (all-bottom / quiet
/// outside, via StreamKind::kDiurnal). At any tick only a small slice of the
/// registered tags is active — the residency workload the chain lifecycle
/// (docs/PERF.md "Chain lifecycle") is benchmarked against in bench_t10.
Result<Scenario> WideFloorplanScenario(size_t num_tags, Timestamp horizon,
                                       uint64_t seed,
                                       PipelineConfig config = {});

}  // namespace lahar

#endif  // LAHAR_SIM_SCENARIOS_H_
