#include "sim/trajectory.h"

#include <algorithm>
#include <deque>

namespace lahar {

std::vector<uint32_t> ShortestPath(const Floorplan& fp, uint32_t from,
                                   uint32_t to) {
  const uint32_t kUnvisited = UINT32_MAX;
  std::vector<uint32_t> parent(fp.num_locations(), kUnvisited);
  std::deque<uint32_t> queue{from};
  parent[from] = from;
  while (!queue.empty()) {
    uint32_t cur = queue.front();
    queue.pop_front();
    if (cur == to) break;
    for (uint32_t n : fp.location(cur).neighbors) {
      if (parent[n] == kUnvisited) {
        parent[n] = cur;
        queue.push_back(n);
      }
    }
  }
  std::vector<uint32_t> path;
  if (parent[to] == kUnvisited) return path;
  for (uint32_t cur = to; cur != from; cur = parent[cur]) path.push_back(cur);
  path.push_back(from);
  std::reverse(path.begin(), path.end());
  return path;
}

TruePath RandomWalkPath(const Floorplan& fp, const Matrix& motion,
                        uint32_t start, Timestamp horizon, Rng* rng) {
  TruePath path(horizon + 1, start);
  uint32_t cur = start;
  std::vector<double> row(fp.num_locations());
  for (Timestamp t = 1; t <= horizon; ++t) {
    path[t] = cur;
    const double* r = motion.Row(cur);
    row.assign(r, r + fp.num_locations());
    size_t next = rng->Categorical(row);
    if (next < fp.num_locations()) cur = static_cast<uint32_t>(next);
  }
  return path;
}

namespace {

// Geometric dwell time with the given mean (at least 1).
Timestamp Dwell(Timestamp mean, Rng* rng) {
  if (mean <= 1) return 1;
  double p = 1.0 / static_cast<double>(mean);
  Timestamp n = 1;
  while (!rng->Bernoulli(p) && n < 10 * mean) ++n;
  return n;
}

}  // namespace

TruePath OfficeWorkerPath(const Floorplan& fp, uint32_t office,
                          Timestamp horizon, Rng* rng,
                          Timestamp office_stay_mean,
                          Timestamp coffee_stay_mean) {
  // Nearest coffee room by BFS distance.
  uint32_t coffee = Floorplan::kNotFound;
  size_t best = SIZE_MAX;
  for (uint32_t c : fp.OfType(RoomType::kCoffeeRoom)) {
    auto p = ShortestPath(fp, office, c);
    if (!p.empty() && p.size() < best) {
      best = p.size();
      coffee = c;
    }
  }
  TruePath path(horizon + 1, office);
  if (coffee == Floorplan::kNotFound) return path;
  std::vector<uint32_t> to_coffee = ShortestPath(fp, office, coffee);
  std::vector<uint32_t> to_office(to_coffee.rbegin(), to_coffee.rend());

  Timestamp t = 1;
  auto emit = [&](uint32_t loc, Timestamp count) {
    for (Timestamp i = 0; i < count && t <= horizon; ++i) path[t++] = loc;
  };
  auto walk = [&](const std::vector<uint32_t>& route) {
    for (size_t i = 1; i < route.size() && t <= horizon; ++i) {
      path[t++] = route[i];
    }
  };
  while (t <= horizon) {
    emit(office, Dwell(office_stay_mean, rng));
    if (t > horizon) break;
    walk(to_coffee);
    emit(coffee, Dwell(coffee_stay_mean, rng));
    walk(to_office);
  }
  return path;
}

TruePath EnterRoomAndStayPath(const Floorplan& fp, uint32_t start,
                              uint32_t room, Timestamp horizon) {
  std::vector<uint32_t> route = ShortestPath(fp, start, room);
  TruePath path(horizon + 1, room);
  Timestamp t = 1;
  for (uint32_t loc : route) {
    if (t > horizon) break;
    path[t++] = loc;
  }
  while (t <= horizon) path[t++] = room;
  return path;
}

}  // namespace lahar
