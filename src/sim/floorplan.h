// A synthetic office building (the substitute for the paper's instrumented
// two-floor deployment): a typed location graph with RFID antennas placed
// in hallways only, reproducing the paper's granularity mismatch — queries
// speak of rooms, but only hallway antennas ever fire.
#ifndef LAHAR_SIM_FLOORPLAN_H_
#define LAHAR_SIM_FLOORPLAN_H_

#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"

namespace lahar {

/// Kind of a location; condition relations (Hallway, Office, CoffeeRoom...)
/// are derived from these types.
enum class RoomType {
  kOffice,
  kHallway,
  kCoffeeRoom,
  kLectureRoom,
  kLobby,
};

const char* RoomTypeName(RoomType type);

/// \brief One node of the location graph.
struct Location {
  std::string name;
  RoomType type = RoomType::kHallway;
  std::vector<uint32_t> neighbors;
  int antenna = -1;  ///< antenna id covering this location, or -1
};

/// \brief The building: locations, adjacency, and antenna placement.
class Floorplan {
 public:
  /// Builds the evaluation building: `floors` corridors of
  /// `offices_per_floor` offices hanging off hallway segments, a coffee
  /// room and a lecture room per floor, a shared lobby connecting floors,
  /// and an antenna on every `antenna_every`-th hallway segment (offices
  /// are never sensed — the granularity mismatch).
  static Floorplan Building(int floors, int offices_per_floor,
                            int antenna_every = 2);

  /// A minimal single-corridor world for unit tests and Fig. 11: `rooms`
  /// unsensed rooms hanging off a short sensed hallway.
  static Floorplan Corridor(int rooms);

  /// Custom construction: adds a location (optionally covered by a new
  /// antenna) and returns its id; Link connects two locations.
  uint32_t AddLocation(std::string name, RoomType type, bool antenna = false);
  void Link(uint32_t a, uint32_t b) { Connect(a, b); }

  size_t num_locations() const { return locations_.size(); }
  size_t num_antennas() const { return num_antennas_; }
  const Location& location(uint32_t id) const { return locations_[id]; }
  const std::vector<Location>& locations() const { return locations_; }

  /// Index of the first location with the given name (kNotFound if absent).
  uint32_t Find(const std::string& name) const;
  static constexpr uint32_t kNotFound = UINT32_MAX;

  /// All locations of a type.
  std::vector<uint32_t> OfType(RoomType type) const;

  /// The motion model: self-transition `stay`, remaining mass spread over
  /// neighbors. Rooms (non-hallways) use `room_stay` instead, modelling
  /// people lingering in rooms — the correlation that makes the archived
  /// Markovian streams valuable (Section 4.2.1). `coffee_bias` weights
  /// transitions into coffee rooms (a destination prior, as a model trained
  /// on building traffic would learn); 1.0 means uniform neighbors.
  Matrix MotionModel(double stay, double room_stay,
                     double coffee_bias = 1.0) const;

  /// Uniform prior over all locations.
  std::vector<double> UniformPrior() const;

 private:
  uint32_t Add(std::string name, RoomType type);
  void Connect(uint32_t a, uint32_t b);

  std::vector<Location> locations_;
  size_t num_antennas_ = 0;
};

}  // namespace lahar

#endif  // LAHAR_SIM_FLOORPLAN_H_
