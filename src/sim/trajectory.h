// Ground-truth trajectory scripts over a floorplan. The quality experiments
// need *known* true paths (the paper used participant annotations; our
// simulator knows the truth exactly), and the performance experiments need
// many concurrently moving tags.
#ifndef LAHAR_SIM_TRAJECTORY_H_
#define LAHAR_SIM_TRAJECTORY_H_

#include <vector>

#include "common/rng.h"
#include "model/value.h"
#include "sim/floorplan.h"

namespace lahar {

/// A true path: path[t] for t = 1..horizon (index 0 unused).
using TruePath = std::vector<uint32_t>;

/// BFS shortest path between two locations (inclusive of both endpoints).
std::vector<uint32_t> ShortestPath(const Floorplan& fp, uint32_t from,
                                   uint32_t to);

/// Random walk under a motion model, starting at `start`.
TruePath RandomWalkPath(const Floorplan& fp, const Matrix& motion,
                        uint32_t start, Timestamp horizon, Rng* rng);

/// An office worker's routine: linger in the office, walk to the floor's
/// coffee room, linger, walk back; repeat until the horizon. This is the
/// workload behind the paper's central coffee-room query.
TruePath OfficeWorkerPath(const Floorplan& fp, uint32_t office,
                          Timestamp horizon, Rng* rng,
                          Timestamp office_stay_mean = 10,
                          Timestamp coffee_stay_mean = 5);

/// The Fig. 11 scenario: walk down the hallway, enter `room`, and stay
/// there for the rest of the trace.
TruePath EnterRoomAndStayPath(const Floorplan& fp, uint32_t start,
                              uint32_t room, Timestamp horizon);

}  // namespace lahar

#endif  // LAHAR_SIM_TRAJECTORY_H_
