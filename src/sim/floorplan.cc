#include "sim/floorplan.h"

namespace lahar {

const char* RoomTypeName(RoomType type) {
  switch (type) {
    case RoomType::kOffice: return "office";
    case RoomType::kHallway: return "hallway";
    case RoomType::kCoffeeRoom: return "coffee_room";
    case RoomType::kLectureRoom: return "lecture_room";
    case RoomType::kLobby: return "lobby";
  }
  return "?";
}

uint32_t Floorplan::Add(std::string name, RoomType type) {
  Location loc;
  loc.name = std::move(name);
  loc.type = type;
  locations_.push_back(std::move(loc));
  return static_cast<uint32_t>(locations_.size() - 1);
}

void Floorplan::Connect(uint32_t a, uint32_t b) {
  locations_[a].neighbors.push_back(b);
  locations_[b].neighbors.push_back(a);
}

Floorplan Floorplan::Building(int floors, int offices_per_floor,
                              int antenna_every) {
  Floorplan fp;
  uint32_t lobby = fp.Add("lobby", RoomType::kLobby);
  fp.locations_[lobby].antenna = static_cast<int>(fp.num_antennas_++);
  for (int f = 0; f < floors; ++f) {
    std::string prefix = "f" + std::to_string(f + 1) + "_";
    // Hallway segments: one per pair of offices, in a chain off the lobby.
    int segments = (offices_per_floor + 1) / 2;
    uint32_t prev = lobby;
    for (int h = 0; h < segments; ++h) {
      uint32_t hall =
          fp.Add(prefix + "hall" + std::to_string(h + 1), RoomType::kHallway);
      if (antenna_every > 0 && h % antenna_every == 0) {
        fp.locations_[hall].antenna = static_cast<int>(fp.num_antennas_++);
      }
      fp.Connect(prev, hall);
      // Offices hang off this segment.
      for (int side = 0; side < 2; ++side) {
        int office_index = h * 2 + side;
        if (office_index >= offices_per_floor) break;
        uint32_t office = fp.Add(
            prefix + "office" + std::to_string(office_index + 1),
            RoomType::kOffice);
        fp.Connect(hall, office);
      }
      prev = hall;
    }
    // The coffee room sits alone at the end of the corridor; the floor's
    // lecture room opens off the lobby.
    uint32_t coffee = fp.Add(prefix + "coffee", RoomType::kCoffeeRoom);
    fp.Connect(prev, coffee);
    uint32_t lecture = fp.Add(prefix + "lecture", RoomType::kLectureRoom);
    fp.Connect(lobby, lecture);
  }
  return fp;
}

Floorplan Floorplan::Corridor(int rooms) {
  Floorplan fp;
  uint32_t hall = fp.Add("hall1", RoomType::kHallway);
  fp.locations_[hall].antenna = static_cast<int>(fp.num_antennas_++);
  uint32_t prev = hall;
  for (int r = 0; r < rooms; ++r) {
    if (r > 0 && r % 2 == 0) {
      uint32_t next = fp.Add("hall" + std::to_string(r / 2 + 1),
                             RoomType::kHallway);
      // Every hallway segment is sensed; only the rooms are blind spots.
      fp.locations_[next].antenna = static_cast<int>(fp.num_antennas_++);
      fp.Connect(prev, next);
      prev = next;
    }
    uint32_t room =
        fp.Add("room" + std::to_string(r + 1), RoomType::kOffice);
    fp.Connect(prev, room);
  }
  return fp;
}

uint32_t Floorplan::AddLocation(std::string name, RoomType type,
                                bool antenna) {
  uint32_t id = Add(std::move(name), type);
  if (antenna) {
    locations_[id].antenna = static_cast<int>(num_antennas_++);
  }
  return id;
}

uint32_t Floorplan::Find(const std::string& name) const {
  for (uint32_t i = 0; i < locations_.size(); ++i) {
    if (locations_[i].name == name) return i;
  }
  return kNotFound;
}

std::vector<uint32_t> Floorplan::OfType(RoomType type) const {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < locations_.size(); ++i) {
    if (locations_[i].type == type) out.push_back(i);
  }
  return out;
}

Matrix Floorplan::MotionModel(double stay, double room_stay,
                              double coffee_bias) const {
  const size_t N = locations_.size();
  Matrix m(N, N, 0.0);
  for (size_t i = 0; i < N; ++i) {
    const Location& loc = locations_[i];
    double self = loc.type == RoomType::kHallway ? stay : room_stay;
    if (loc.neighbors.empty()) {
      m.At(i, i) = 1.0;
      continue;
    }
    m.At(i, i) = self;
    double total_weight = 0;
    for (uint32_t n : loc.neighbors) {
      total_weight +=
          locations_[n].type == RoomType::kCoffeeRoom ? coffee_bias : 1.0;
    }
    for (uint32_t n : loc.neighbors) {
      double w =
          locations_[n].type == RoomType::kCoffeeRoom ? coffee_bias : 1.0;
      m.At(i, n) += (1.0 - self) * w / total_weight;
    }
  }
  return m;
}

std::vector<double> Floorplan::UniformPrior() const {
  return std::vector<double>(locations_.size(),
                             1.0 / static_cast<double>(locations_.size()));
}

}  // namespace lahar
