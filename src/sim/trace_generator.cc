#include "sim/trace_generator.h"

#include <algorithm>

#include "inference/particle_filter.h"

namespace lahar {
namespace {

DiscreteHmm MakeModel(const Floorplan& fp, const PipelineConfig& config) {
  auto hmm = DiscreteHmm::Create(
      fp.UniformPrior(),
      fp.MotionModel(config.hall_stay, config.room_stay, config.coffee_bias));
  // The floorplan always yields a valid stochastic model.
  return std::move(*hmm);
}

}  // namespace

TracePipeline::TracePipeline(const Floorplan* floorplan, PipelineConfig config)
    : floorplan_(floorplan),
      config_(config),
      sensor_(floorplan, config.read_rate, config.bleed_rate),
      model_(MakeModel(*floorplan, config)) {}

TagTrace TracePipeline::Observe(std::string name, TruePath true_path,
                                Rng* rng) const {
  TagTrace tag;
  tag.name = std::move(name);
  tag.readings.resize(true_path.size());
  for (Timestamp t = 1; t < true_path.size(); ++t) {
    tag.readings[t] = sensor_.Sample(true_path[t], rng);
  }
  tag.true_path = std::move(true_path);
  return tag;
}

Status TracePipeline::DeclareWorld(EventDatabase* db) const {
  SymbolId at = db->interner().Intern("At");
  if (db->FindSchema(at) == nullptr) {
    EventSchema schema;
    schema.type = at;
    schema.attr_names = {db->interner().Intern("tag"),
                         db->interner().Intern("location")};
    schema.num_key_attrs = 1;
    LAHAR_RETURN_NOT_OK(db->DeclareSchema(schema));
  }
  struct Def {
    const char* name;
    bool (*pred)(RoomType);
  };
  const Def defs[] = {
      {"Hallway", [](RoomType t) { return t == RoomType::kHallway; }},
      {"Office", [](RoomType t) { return t == RoomType::kOffice; }},
      {"CoffeeRoom", [](RoomType t) { return t == RoomType::kCoffeeRoom; }},
      {"LectureRoom", [](RoomType t) { return t == RoomType::kLectureRoom; }},
      {"Lobby", [](RoomType t) { return t == RoomType::kLobby; }},
      {"Room",
       [](RoomType t) {
         return t == RoomType::kOffice || t == RoomType::kCoffeeRoom ||
                t == RoomType::kLectureRoom;
       }},
      {"NotRoom",
       [](RoomType t) {
         return t == RoomType::kHallway || t == RoomType::kLobby;
       }},
  };
  for (const Def& def : defs) {
    LAHAR_ASSIGN_OR_RETURN(Relation * rel, db->DeclareRelation(def.name, 1));
    for (const Location& loc : floorplan_->locations()) {
      if (def.pred(loc.type)) {
        LAHAR_RETURN_NOT_OK(rel->Insert({db->Sym(loc.name)}));
      }
    }
  }
  return Status::OK();
}

Result<StreamId> TracePipeline::AddMarginalStream(
    EventDatabase* db, const std::string& name,
    const std::vector<std::vector<double>>& marginals) const {
  const Timestamp T = static_cast<Timestamp>(marginals.size());
  Stream stream(db->interner().Intern("At"), {db->Sym(name)}, 1, T,
                /*markovian=*/false);
  // Domain index for location i is i + 1 (0 is bottom).
  for (const Location& loc : floorplan_->locations()) {
    stream.InternTuple({db->Sym(loc.name)});
  }
  for (Timestamp t = 1; t <= T; ++t) {
    std::vector<double> dist(stream.domain_size(), 0.0);
    for (size_t i = 0; i < marginals[t - 1].size(); ++i) {
      dist[i + 1] = marginals[t - 1][i];
    }
    double total = Sum(dist);
    dist[kBottom] = total < 1.0 ? 1.0 - total : 0.0;
    LAHAR_RETURN_NOT_OK(stream.SetMarginal(t, std::move(dist)));
  }
  return db->AddStream(std::move(stream));
}

Result<StreamId> TracePipeline::AddFilteredStream(EventDatabase* db,
                                                  const TagTrace& tag,
                                                  Rng* rng) const {
  Likelihoods likelihoods = sensor_.LikelihoodTrace(
      {tag.readings.begin() + 1, tag.readings.end()});
  std::vector<std::vector<double>> marginals = RunParticleFilter(
      model_, likelihoods, config_.num_particles, rng->Split());
  return AddMarginalStream(db, tag.name, marginals);
}

Result<StreamId> TracePipeline::AddExactFilteredStream(
    EventDatabase* db, const TagTrace& tag) const {
  Likelihoods likelihoods = sensor_.LikelihoodTrace(
      {tag.readings.begin() + 1, tag.readings.end()});
  LAHAR_ASSIGN_OR_RETURN(std::vector<std::vector<double>> marginals,
                         model_.Filter(likelihoods));
  return AddMarginalStream(db, tag.name, marginals);
}

Result<StreamId> TracePipeline::AddSmoothedIndependentStream(
    EventDatabase* db, const TagTrace& tag) const {
  Likelihoods likelihoods = sensor_.LikelihoodTrace(
      {tag.readings.begin() + 1, tag.readings.end()});
  LAHAR_ASSIGN_OR_RETURN(DiscreteHmm::Smoothed smoothed,
                         model_.Smooth(likelihoods));
  return AddMarginalStream(db, tag.name, smoothed.marginals);
}

Result<StreamId> TracePipeline::AddSmoothedStream(EventDatabase* db,
                                                  const TagTrace& tag) const {
  Likelihoods likelihoods = sensor_.LikelihoodTrace(
      {tag.readings.begin() + 1, tag.readings.end()});
  LAHAR_ASSIGN_OR_RETURN(DiscreteHmm::Smoothed smoothed,
                         model_.Smooth(likelihoods));
  const Timestamp T = static_cast<Timestamp>(smoothed.marginals.size());
  Stream stream(db->interner().Intern("At"), {db->Sym(tag.name)}, 1, T,
                /*markovian=*/true);
  for (const Location& loc : floorplan_->locations()) {
    stream.InternTuple({db->Sym(loc.name)});
  }
  const size_t D = stream.domain_size();  // locations + bottom
  {
    std::vector<double> init(D, 0.0);
    for (size_t i = 0; i < smoothed.marginals[0].size(); ++i) {
      init[i + 1] = smoothed.marginals[0][i];
    }
    double total = Sum(init);
    init[kBottom] = total < 1.0 ? 1.0 - total : 0.0;
    LAHAR_RETURN_NOT_OK(stream.SetInitial(std::move(init)));
  }
  for (Timestamp t = 1; t < T; ++t) {
    const Matrix& src = smoothed.cpts[t - 1];
    Matrix cpt(D, D, 0.0);
    cpt.At(kBottom, kBottom) = 1.0;  // absent keys stay absent
    for (size_t i = 0; i < src.rows(); ++i) {
      for (size_t j = 0; j < src.cols(); ++j) {
        cpt.At(i + 1, j + 1) = src.At(i, j);
      }
    }
    LAHAR_RETURN_NOT_OK(stream.SetCpt(t, std::move(cpt)));
  }
  LAHAR_RETURN_NOT_OK(stream.FinalizeMarkov());
  return db->AddStream(std::move(stream));
}

Result<StreamId> TracePipeline::AddDiurnalStream(EventDatabase* db,
                                                 const TagTrace& tag,
                                                 Timestamp active_from,
                                                 Timestamp active_to) const {
  const Timestamp T = static_cast<Timestamp>(tag.readings.size()) - 1;
  active_from = std::max<Timestamp>(1, active_from);
  active_to = std::min(T, active_to);
  std::vector<std::vector<double>> marginals(T);
  if (active_from <= active_to) {
    Likelihoods likelihoods = sensor_.LikelihoodTrace(
        {tag.readings.begin() + active_from,
         tag.readings.begin() + active_to + 1});
    LAHAR_ASSIGN_OR_RETURN(std::vector<std::vector<double>> active,
                           model_.Filter(likelihoods));
    for (Timestamp t = active_from; t <= active_to; ++t) {
      marginals[t - 1] = std::move(active[t - active_from]);
    }
  }
  // Ticks outside the window stay empty; AddMarginalStream turns an empty
  // row into "all mass on bottom", which every engine treats as a quiet
  // tick (the chain state passes through bit-identically unchanged).
  return AddMarginalStream(db, tag.name, marginals);
}

Result<StreamId> TracePipeline::AddTruthStream(EventDatabase* db,
                                               const TagTrace& tag) const {
  const Timestamp T = static_cast<Timestamp>(tag.true_path.size()) - 1;
  Stream stream(db->interner().Intern("At"), {db->Sym(tag.name)}, 1, T,
                /*markovian=*/false);
  for (const Location& loc : floorplan_->locations()) {
    stream.InternTuple({db->Sym(loc.name)});
  }
  for (Timestamp t = 1; t <= T; ++t) {
    std::vector<double> dist(stream.domain_size(), 0.0);
    dist[tag.true_path[t] + 1] = 1.0;
    LAHAR_RETURN_NOT_OK(stream.SetMarginal(t, std::move(dist)));
  }
  return db->AddStream(std::move(stream));
}

}  // namespace lahar
