#include "sim/sensor.h"

#include <algorithm>

namespace lahar {

RfidSensorModel::RfidSensorModel(const Floorplan* floorplan, double read_rate,
                                 double bleed_rate)
    : floorplan_(floorplan), read_rate_(read_rate), bleed_rate_(bleed_rate) {
  const size_t N = floorplan_->num_locations();
  coverage_.resize(N, -1);
  adjacent_.resize(N);
  for (uint32_t i = 0; i < N; ++i) {
    coverage_[i] = floorplan_->location(i).antenna;
    for (uint32_t n : floorplan_->location(i).neighbors) {
      int a = floorplan_->location(n).antenna;
      if (a >= 0) adjacent_[i].push_back(a);
    }
    std::sort(adjacent_[i].begin(), adjacent_[i].end());
    adjacent_[i].erase(std::unique(adjacent_[i].begin(), adjacent_[i].end()),
                       adjacent_[i].end());
  }
}

double RfidSensorModel::FireProb(int antenna, uint32_t loc) const {
  if (coverage_[loc] == antenna) return read_rate_;
  if (std::binary_search(adjacent_[loc].begin(), adjacent_[loc].end(),
                         antenna)) {
    return bleed_rate_;
  }
  return 0.0;
}

Reading RfidSensorModel::Sample(uint32_t loc, Rng* rng) const {
  Reading reading;
  if (coverage_[loc] >= 0 && rng->Bernoulli(read_rate_)) {
    reading.push_back(coverage_[loc]);
  }
  for (int a : adjacent_[loc]) {
    if (rng->Bernoulli(bleed_rate_)) reading.push_back(a);
  }
  std::sort(reading.begin(), reading.end());
  return reading;
}

std::vector<double> RfidSensorModel::Likelihood(const Reading& reading) const {
  const size_t N = floorplan_->num_locations();
  std::vector<double> out(N, 1.0);
  for (uint32_t loc = 0; loc < N; ++loc) {
    // Antennas that could fire for this location: its own plus adjacent.
    double p = 1.0;
    auto fired = [&](int a) {
      return std::binary_search(reading.begin(), reading.end(), a);
    };
    if (coverage_[loc] >= 0) {
      p *= fired(coverage_[loc]) ? read_rate_ : 1.0 - read_rate_;
    }
    for (int a : adjacent_[loc]) {
      p *= fired(a) ? bleed_rate_ : 1.0 - bleed_rate_;
    }
    // Any fired antenna not explainable from this location rules it out.
    for (int a : reading) {
      if (a != coverage_[loc] &&
          !std::binary_search(adjacent_[loc].begin(), adjacent_[loc].end(),
                              a)) {
        p = 0.0;
        break;
      }
    }
    out[loc] = p;
  }
  return out;
}

Likelihoods RfidSensorModel::LikelihoodTrace(
    const std::vector<Reading>& readings) const {
  Likelihoods out;
  out.reserve(readings.size());
  for (const Reading& r : readings) out.push_back(Likelihood(r));
  return out;
}

}  // namespace lahar
