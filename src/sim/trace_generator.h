// The end-to-end data pipeline of Section 2.4: true paths -> raw RFID
// readings -> inference -> probabilistic event streams.
//
//   Real-time scenario: bootstrap particle filter -> filtered marginals ->
//   an *independent* At stream (with realistic particle churn).
//   Archived scenario: exact forward-backward smoothing -> smoothed
//   marginals + pairwise CPTs -> a *Markovian* At stream (Fig. 3(d)).
//   Ground truth: the simulator's true path as a certain stream, from which
//   any query's true event times follow by deterministic evaluation.
#ifndef LAHAR_SIM_TRACE_GENERATOR_H_
#define LAHAR_SIM_TRACE_GENERATOR_H_

#include <string>
#include <vector>

#include "inference/hmm.h"
#include "model/database.h"
#include "sim/floorplan.h"
#include "sim/sensor.h"
#include "sim/trajectory.h"

namespace lahar {

/// Configuration of the simulation + inference pipeline.
struct PipelineConfig {
  double read_rate = 0.7;    ///< antenna detection probability
  double bleed_rate = 0.05;  ///< adjacent-antenna misfire probability
  double hall_stay = 0.3;    ///< motion model: hallway self-transition
  double room_stay = 0.75;   ///< motion model: room self-transition
  double coffee_bias = 1.0;  ///< destination prior for coffee rooms
  size_t num_particles = 250;
};

/// \brief One tag's simulated data.
struct TagTrace {
  std::string name;
  TruePath true_path;              ///< [1..T], entry 0 unused
  std::vector<Reading> readings;   ///< [1..T], entry 0 unused
};

/// \brief Simulates readings and turns them into Lahar streams.
class TracePipeline {
 public:
  /// The pipeline borrows the floorplan; the caller keeps it alive.
  TracePipeline(const Floorplan* floorplan, PipelineConfig config);

  const Floorplan& floorplan() const { return *floorplan_; }
  const RfidSensorModel& sensor() const { return sensor_; }
  const DiscreteHmm& model() const { return model_; }

  /// Samples raw readings along a true path.
  TagTrace Observe(std::string name, TruePath true_path, Rng* rng) const;

  /// Declares the At(tag | location) schema and the location-type relations
  /// (Hallway, Office, CoffeeRoom, LectureRoom, Lobby, Room, NotRoom) in a
  /// fresh database. Idempotent per database.
  Status DeclareWorld(EventDatabase* db) const;

  /// Particle-filtered independent stream (real-time scenario).
  Result<StreamId> AddFilteredStream(EventDatabase* db, const TagTrace& tag,
                                     Rng* rng) const;

  /// Smoothed Markovian stream with CPTs (archived scenario).
  Result<StreamId> AddSmoothedStream(EventDatabase* db,
                                     const TagTrace& tag) const;

  /// Exact-forward-filtered independent stream (the archived-scenario
  /// ablation "smoothed marginals treated as independent" uses smoothing;
  /// this one is the noise-free real-time reference).
  Result<StreamId> AddExactFilteredStream(EventDatabase* db,
                                          const TagTrace& tag) const;

  /// Smoothed marginals *without* the CPTs — the Section 4.2.1 ablation
  /// quantifying how much the Markovian correlations themselves add.
  Result<StreamId> AddSmoothedIndependentStream(EventDatabase* db,
                                                const TagTrace& tag) const;

  /// Exact-filtered independent stream with a bounded activity window:
  /// marginals are filtered inside [active_from, active_to] and all-bottom
  /// (tag certainly absent — a quiet tick for the engines) outside it. The
  /// diurnal shape of a badge that is only in the building part of the day;
  /// the wide-floorplan residency workload (bench_t10) is built from these.
  Result<StreamId> AddDiurnalStream(EventDatabase* db, const TagTrace& tag,
                                    Timestamp active_from,
                                    Timestamp active_to) const;

  /// The true path as a certain stream (ground truth for metrics).
  Result<StreamId> AddTruthStream(EventDatabase* db, const TagTrace& tag) const;

 private:
  Result<StreamId> AddMarginalStream(
      EventDatabase* db, const std::string& name,
      const std::vector<std::vector<double>>& marginals) const;

  const Floorplan* floorplan_;
  PipelineConfig config_;
  RfidSensorModel sensor_;
  DiscreteHmm model_;
};

}  // namespace lahar

#endif  // LAHAR_SIM_TRACE_GENERATOR_H_
