#include "common/status.h"

namespace lahar {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kUnsafeQuery: return "UnsafeQuery";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

}  // namespace

Status::Status(StatusCode code, std::string msg)
    : code_(code), msg_(std::move(msg)) {}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status Status::Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
Status Status::ParseError(std::string msg) {
  return Status(StatusCode::kParseError, std::move(msg));
}
Status Status::UnsafeQuery(std::string msg) {
  return Status(StatusCode::kUnsafeQuery, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

Status& Status::SetPayload(std::string key, std::string value) & {
  for (auto& kv : payload_) {
    if (kv.first == key) {
      kv.second = std::move(value);
      return *this;
    }
  }
  payload_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Status&& Status::WithPayload(std::string key, std::string value) && {
  SetPayload(std::move(key), std::move(value));
  return std::move(*this);
}

const std::string* Status::GetPayload(std::string_view key) const {
  for (const auto& kv : payload_) {
    if (kv.first == key) return &kv.second;
  }
  return nullptr;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += msg_;
  if (!payload_.empty()) {
    out += " [";
    for (size_t i = 0; i < payload_.size(); ++i) {
      if (i > 0) out += ' ';
      out += payload_[i].first;
      out += '=';
      out += payload_[i].second;
    }
    out += ']';
  }
  return out;
}

}  // namespace lahar
