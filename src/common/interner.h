// String interning: maps strings to dense 32-bit symbol ids so that values,
// relation names, and variables compare and hash as integers on hot paths.
#ifndef LAHAR_COMMON_INTERNER_H_
#define LAHAR_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace lahar {

/// Dense id assigned to an interned string. Id 0 is always the empty string.
using SymbolId = uint32_t;

/// \brief Bidirectional string <-> SymbolId map.
///
/// Ids are assigned densely in insertion order, so they can index vectors.
/// Not thread-safe; each pipeline owns one interner (usually via
/// EventDatabase).
class Interner {
 public:
  Interner();

  /// Returns the id for `s`, interning it if new.
  SymbolId Intern(std::string_view s);

  /// Returns the id for `s` if already interned, or kNotFound.
  SymbolId Lookup(std::string_view s) const;

  /// Returns the string for `id`. Requires a valid id.
  const std::string& Name(SymbolId id) const;

  /// Number of interned symbols (ids are 0..size()-1).
  size_t size() const { return names_.size(); }

  static constexpr SymbolId kNotFound = UINT32_MAX;

 private:
  std::unordered_map<std::string, SymbolId> ids_;
  std::vector<std::string> names_;
};

}  // namespace lahar

#endif  // LAHAR_COMMON_INTERNER_H_
