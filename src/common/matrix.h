// Small dense row-major matrix of doubles, used for HMM message passing and
// Markov-chain probability propagation.
#ifndef LAHAR_COMMON_MATRIX_H_
#define LAHAR_COMMON_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <vector>

namespace lahar {

/// \brief Dense row-major matrix of doubles.
///
/// Intentionally minimal: the library needs multiply, transpose-multiply and
/// row normalization for CPT handling; anything fancier would be dead weight.
class Matrix {
 public:
  Matrix() = default;
  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Row `r` as a contiguous span start pointer (cols() entries).
  double* Row(size_t r) { return &data_[r * cols_]; }
  const double* Row(size_t r) const { return &data_[r * cols_]; }

  /// Normalizes each row to sum to 1; rows summing to 0 are left untouched.
  void NormalizeRows();

  /// Returns this * other. Requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// Returns v * this (row vector times matrix). Requires v.size() == rows().
  std::vector<double> LeftMultiply(const std::vector<double>& v) const;

  /// v * this written into `out` (resized to cols()), allocation-free when
  /// `out` already has capacity — the double-buffered form the inference
  /// loops use. `out` must not alias `v`. Accumulation order matches
  /// LeftMultiply exactly.
  void LeftMultiplyInto(const std::vector<double>& v,
                        std::vector<double>* out) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Sum of a probability vector (for normalization checks).
double Sum(const std::vector<double>& v);

/// Normalizes `v` in place to sum to 1; no-op if the sum is 0.
void Normalize(std::vector<double>* v);

}  // namespace lahar

#endif  // LAHAR_COMMON_MATRIX_H_
