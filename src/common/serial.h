// Minimal binary serialization for checkpoints: a byte-buffer Writer and a
// bounds-checked Reader over little-endian fixed-width integers and
// bit-exact doubles.
//
// The encoding is deliberately dumb — no varints, no tags — because the
// consumers (model snapshots, runtime checkpoints) carry their own versioned
// headers and care about exactly two properties: doubles round-trip
// bit-for-bit (restored chains must continue bit-identically), and corrupt
// or truncated input fails with a Status instead of reading out of bounds.
#ifndef LAHAR_COMMON_SERIAL_H_
#define LAHAR_COMMON_SERIAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace lahar {
namespace serial {

/// \brief Appends little-endian values to a growing byte buffer.
class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  /// Bit-exact double (the IEEE-754 bit pattern as a u64).
  void F64(double v);
  /// u64 length followed by the raw bytes.
  void Str(std::string_view s);
  /// u64 length followed by bit-exact doubles.
  void DoubleVec(const std::vector<double>& v);

  const std::string& str() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// \brief Consumes a byte buffer written by Writer. Every read is
/// bounds-checked: running past the end (or a length prefix larger than the
/// remaining bytes) returns InvalidArgument, never UB.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Status U8(uint8_t* out);
  Status U32(uint32_t* out);
  Status U64(uint64_t* out);
  Status F64(double* out);
  Status Str(std::string* out);
  Status DoubleVec(std::vector<double>* out);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace serial
}  // namespace lahar

#endif  // LAHAR_COMMON_SERIAL_H_
