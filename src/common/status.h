// Status and Result types for error handling without exceptions, following the
// Arrow / RocksDB idiom: every fallible operation returns a Status (or a
// Result<T> bundling a Status with a value).
#ifndef LAHAR_COMMON_STATUS_H_
#define LAHAR_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string_view>
#include <string>
#include <utility>
#include <vector>

namespace lahar {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kParseError,
  kUnsafeQuery,    ///< query provably #P-hard; only the sampling engine applies
  kInternal,
};

/// Payload key carrying the QueryClass name ("Regular", "ExtendedRegular",
/// "Safe", "Unsafe") on statuses produced by query routing, so callers can
/// distinguish a provably-hard query from one a given engine merely does
/// not support yet (see engine/session.h).
inline constexpr const char* kQueryClassPayload = "query_class";

/// \brief Outcome of a fallible operation: either OK or a code plus message.
///
/// Statuses are cheap to copy when OK (no allocation) and must be checked by
/// the caller; the library never throws on data paths.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a non-OK status with the given code and message.
  Status(StatusCode code, std::string msg);

  /// Returns the OK status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status OutOfRange(std::string msg);
  static Status Unimplemented(std::string msg);
  static Status ParseError(std::string msg);
  static Status UnsafeQuery(std::string msg);
  static Status Internal(std::string msg);

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Attaches a small machine-readable (key, value) pair to a non-OK
  /// status, following the absl::Status payload idiom. Setting a key twice
  /// overwrites it; payloads on OK statuses are ignored by ToString.
  Status& SetPayload(std::string key, std::string value) &;
  Status&& WithPayload(std::string key, std::string value) &&;

  /// Returns the payload for `key`, or nullptr when absent.
  const std::string* GetPayload(std::string_view key) const;

  /// Renders "OK" or "<Code>: <message> [key=value ...]" for logs and test
  /// failures.
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
  // Non-OK statuses are already off the fast path, so a tiny vector beats a
  // map for the one or two payloads ever attached.
  std::vector<std::pair<std::string, std::string>> payload_;
};

/// \brief A value of type T or a non-OK Status explaining its absence.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: failure. OK statuses are a logic error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Accessors for the contained value.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller (Arrow's ARROW_RETURN_NOT_OK).
#define LAHAR_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::lahar::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

#define LAHAR_CONCAT_IMPL(x, y) x##y
#define LAHAR_CONCAT(x, y) LAHAR_CONCAT_IMPL(x, y)

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define LAHAR_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  auto LAHAR_CONCAT(_res_, __LINE__) = (rexpr);                  \
  if (!LAHAR_CONCAT(_res_, __LINE__).ok())                       \
    return LAHAR_CONCAT(_res_, __LINE__).status();               \
  lhs = std::move(LAHAR_CONCAT(_res_, __LINE__)).value()

}  // namespace lahar

#endif  // LAHAR_COMMON_STATUS_H_
