#include "common/serial.h"

#include <cstring>

namespace lahar {
namespace serial {

void Writer::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void Writer::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void Writer::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void Writer::Str(std::string_view s) {
  U64(s.size());
  buf_.append(s.data(), s.size());
}

void Writer::DoubleVec(const std::vector<double>& v) {
  U64(v.size());
  for (double d : v) F64(d);
}

Status Reader::Need(size_t n) {
  if (remaining() < n) {
    return Status::InvalidArgument("truncated serialized data (need " +
                                   std::to_string(n) + " bytes, have " +
                                   std::to_string(remaining()) + ")");
  }
  return Status::OK();
}

Status Reader::U8(uint8_t* out) {
  LAHAR_RETURN_NOT_OK(Need(1));
  *out = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status Reader::U32(uint32_t* out) {
  LAHAR_RETURN_NOT_OK(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  *out = v;
  return Status::OK();
}

Status Reader::U64(uint64_t* out) {
  LAHAR_RETURN_NOT_OK(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  *out = v;
  return Status::OK();
}

Status Reader::F64(double* out) {
  uint64_t bits;
  LAHAR_RETURN_NOT_OK(U64(&bits));
  static_assert(sizeof(bits) == sizeof(*out));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status Reader::Str(std::string* out) {
  uint64_t len;
  LAHAR_RETURN_NOT_OK(U64(&len));
  LAHAR_RETURN_NOT_OK(Need(len));
  out->assign(data_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

Status Reader::DoubleVec(std::vector<double>* out) {
  uint64_t len;
  LAHAR_RETURN_NOT_OK(U64(&len));
  // Divide rather than multiply: `len * 8` wraps uint64 for an untrusted
  // len >= 2^61, which would pass Need() and then throw from reserve().
  if (len > remaining() / 8) {
    return Status::InvalidArgument(
        "truncated serialized data (double vector of " + std::to_string(len) +
        " elements, have " + std::to_string(remaining()) + " bytes)");
  }
  out->clear();
  out->reserve(len);
  for (uint64_t i = 0; i < len; ++i) {
    double d;
    LAHAR_RETURN_NOT_OK(F64(&d));
    out->push_back(d);
  }
  return Status::OK();
}

}  // namespace serial
}  // namespace lahar
