// Deterministic pseudo-random number generation for simulation and sampling.
// A single splittable 64-bit generator keeps every experiment reproducible.
#ifndef LAHAR_COMMON_RNG_H_
#define LAHAR_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lahar {

/// \brief xoshiro256** generator with convenience draws.
///
/// Deterministic given its seed; used by the simulator, the particle filter,
/// and the sampling engine so that all experiments are exactly repeatable.
class Rng {
 public:
  /// Seeds the generator; the same seed yields the same stream of draws.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit draw.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Below(uint64_t n);

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Returns weights.size() if all weights are zero.
  size_t Categorical(const std::vector<double>& weights);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Derives an independent generator (for per-tag / per-worker streams).
  Rng Split();

 private:
  uint64_t s_[4];
};

}  // namespace lahar

#endif  // LAHAR_COMMON_RNG_H_
