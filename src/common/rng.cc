#include "common/rng.h"

#include <cassert>

namespace lahar {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(&x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::Below(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) return weights.size();
  double u = Uniform() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;  // Floating-point slack lands on the last index.
}

Rng Rng::Split() { return Rng(Next()); }

}  // namespace lahar
