#include "common/matrix.h"

namespace lahar {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::NormalizeRows() {
  for (size_t r = 0; r < rows_; ++r) {
    double total = 0;
    for (size_t c = 0; c < cols_; ++c) total += At(r, c);
    if (total <= 0) continue;
    for (size_t c = 0; c < cols_; ++c) At(r, c) /= total;
  }
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows());
  Matrix out(rows_, other.cols());
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = At(r, k);
      if (a == 0) continue;
      for (size_t c = 0; c < other.cols(); ++c) {
        out.At(r, c) += a * other.At(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::LeftMultiply(const std::vector<double>& v) const {
  std::vector<double> out;
  LeftMultiplyInto(v, &out);
  return out;
}

void Matrix::LeftMultiplyInto(const std::vector<double>& v,
                              std::vector<double>* out) const {
  assert(v.size() == rows_);
  assert(out != &v);
  out->assign(cols_, 0.0);
  double* dst = out->data();
  for (size_t r = 0; r < rows_; ++r) {
    double a = v[r];
    if (a == 0) continue;
    const double* row = Row(r);
    for (size_t c = 0; c < cols_; ++c) dst[c] += a * row[c];
  }
}

double Sum(const std::vector<double>& v) {
  double total = 0;
  for (double x : v) total += x;
  return total;
}

void Normalize(std::vector<double>* v) {
  double total = Sum(*v);
  if (total <= 0) return;
  for (double& x : *v) x /= total;
}

}  // namespace lahar
