#include "engine/lahar.h"

#include "engine/extended_engine.h"
#include "engine/regular_engine.h"
#include "engine/safe_engine.h"
#include "engine/session.h"
#include "query/parser.h"

namespace lahar {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kRegular: return "Regular";
    case EngineKind::kExtendedRegular: return "ExtendedRegular";
    case EngineKind::kSafePlan: return "SafePlan";
    case EngineKind::kSampling: return "Sampling";
  }
  return "?";
}

Result<PreparedQuery> Lahar::Prepare(std::string_view text) const {
  return PrepareQuery(text, db_);
}

Result<QueryAnswer> Lahar::Run(std::string_view text) const {
  LAHAR_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(text));
  return Run(prepared);
}

Result<std::unique_ptr<QuerySession>> Lahar::OpenSession(
    std::string_view text) const {
  LAHAR_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(text));
  return CreateQuerySession(db_, prepared, options_);
}

Result<std::unique_ptr<QuerySession>> Lahar::OpenSession(
    const PreparedQuery& prepared) const {
  return CreateQuerySession(db_, prepared, options_);
}

Result<QueryAnswer> Lahar::Run(const PreparedQuery& prepared) const {
  QueryAnswer answer;
  answer.query_class = prepared.classification.query_class;

  auto sample = [&]() -> Result<QueryAnswer> {
    LAHAR_ASSIGN_OR_RETURN(
        SamplingEngine engine,
        SamplingEngine::Create(prepared.ast, *db_, options_.sampling));
    LAHAR_ASSIGN_OR_RETURN(answer.probs, engine.Run());
    answer.engine = EngineKind::kSampling;
    answer.exact = false;
    return answer;
  };

  switch (prepared.classification.query_class) {
    case QueryClass::kRegular: {
      LAHAR_ASSIGN_OR_RETURN(
          RegularEngine engine,
          RegularEngine::Create(prepared.normalized, *db_));
      answer.probs = engine.Run();
      answer.engine = EngineKind::kRegular;
      return answer;
    }
    case QueryClass::kExtendedRegular: {
      LAHAR_ASSIGN_OR_RETURN(
          ExtendedRegularEngine engine,
          ExtendedRegularEngine::Create(prepared.normalized, *db_));
      answer.probs = engine.Run();
      answer.engine = EngineKind::kExtendedRegular;
      return answer;
    }
    case QueryClass::kSafe: {
      auto engine =
          SafePlanEngine::Create(prepared.normalized, *db_, options_.plan);
      if (engine.ok()) {
        auto probs = engine->Run();
        if (probs.ok()) {
          answer.probs = std::move(*probs);
          answer.engine = EngineKind::kSafePlan;
          return answer;
        }
        if (!options_.allow_sampling_fallback) return probs.status();
      } else if (!options_.allow_sampling_fallback) {
        return engine.status();
      }
      return sample();
    }
    case QueryClass::kUnsafe: {
      if (!options_.allow_sampling_fallback) {
        return Status::UnsafeQuery(prepared.classification.reason)
            .WithPayload(kQueryClassPayload,
                         QueryClassName(QueryClass::kUnsafe));
      }
      return sample();
    }
  }
  return Status::Internal("bad query class");
}

}  // namespace lahar
