#include "engine/streaming.h"

#include "analysis/classify.h"

namespace lahar {

Result<StreamingSession> StreamingSession::Create(EventDatabase* db,
                                                  std::string_view text) {
  LAHAR_ASSIGN_OR_RETURN(PreparedQuery prepared, PrepareQuery(text, db));
  return Create(db, prepared);
}

Result<StreamingSession> StreamingSession::Create(
    EventDatabase* db, const PreparedQuery& prepared) {
  QueryClass cls = prepared.classification.query_class;
  if (cls != QueryClass::kRegular && cls != QueryClass::kExtendedRegular) {
    return Status::UnsafeQuery(
               "only Regular and Extended Regular queries evaluate in "
               "streaming fashion (Thms 3.3/3.7); Safe queries need the "
               "archived history")
        .WithPayload(kQueryClassPayload, QueryClassName(cls));
  }
  ChainOptions options;
  options.kernel_cache = prepared.kernel_cache.get();
  LAHAR_ASSIGN_OR_RETURN(ExtendedRegularEngine engine,
                         ExtendedRegularEngine::Create(prepared.normalized,
                                                       *db, options));
  return StreamingSession(std::move(engine), cls);
}

Result<double> StreamingSession::Advance() {
  double p = engine_.Step();
  LAHAR_RETURN_NOT_OK(engine_.ChainStatus());
  return p;
}

void StreamingSession::AdvanceShard(size_t begin, size_t end) {
  engine_.StepChainRange(begin, end);
}

Result<double> StreamingSession::CommitAdvance() {
  double p = engine_.CommitParallelStep();
  LAHAR_RETURN_NOT_OK(engine_.ChainStatus());
  return p;
}

}  // namespace lahar
