#include "engine/streaming.h"

#include "analysis/classify.h"
#include "analysis/plan.h"

namespace lahar {

Result<StreamingSession> StreamingSession::Create(EventDatabase* db,
                                                  std::string_view text) {
  LAHAR_ASSIGN_OR_RETURN(PreparedQuery prepared, PrepareQuery(text, db));
  return Create(db, prepared);
}

Result<StreamingSession> StreamingSession::Create(
    EventDatabase* db, const PreparedQuery& prepared) {
  return Create(db, prepared, ChainOptions{});
}

Result<StreamingSession> StreamingSession::Create(
    EventDatabase* db, const PreparedQuery& prepared,
    const ChainOptions& chain_options) {
  QueryClass cls = prepared.classification.query_class;
  if (cls != QueryClass::kRegular && cls != QueryClass::kExtendedRegular) {
    return Status::UnsafeQuery(
               "only Regular and Extended Regular queries evaluate in "
               "streaming fashion (Thms 3.3/3.7); Safe queries need the "
               "archived history")
        .WithPayload(kQueryClassPayload, QueryClassName(cls));
  }
  ChainOptions options = chain_options;
  options.kernel_cache = prepared.kernel_cache.get();
  options.row_pool = prepared.row_pool.get();
  options.stream_index = nullptr;  // the engine builds/owns its own
  LAHAR_ASSIGN_OR_RETURN(ExtendedRegularEngine engine,
                         ExtendedRegularEngine::Create(prepared.normalized,
                                                       *db, options));
  StreamingSession session(std::move(engine), cls);
  // Canonical key per grounded chain: two chains across any sessions with
  // equal keys are structurally identical and step to identical doubles,
  // so the runtime may evaluate them as one shared unit. Lifecycle
  // sessions decline sharing, so they skip materializing the keys (at a
  // million registered bindings the key strings alone would rival the
  // stub tables).
  if (!session.engine_.lifecycle_enabled()) {
    session.unit_keys_.reserve(session.engine_.num_chains());
    for (size_t i = 0; i < session.engine_.num_chains(); ++i) {
      session.unit_keys_.push_back(CanonicalQueryKey(
          prepared.normalized.Substitute(session.engine_.binding(i))));
    }
  }
  return session;
}

std::shared_ptr<SharedSubChain> StreamingSession::MakeSharedUnit(
    size_t i, size_t frontier_history) const {
  if (i >= engine_.num_chains() || engine_.IsDelegated(i)) return nullptr;
  const RegularChain& c = engine_.chain(i);
  if (!c.status().ok()) return nullptr;
  return std::make_shared<SharedSubChain>(unit_keys_[i], c,
                                          frontier_history);
}

bool StreamingSession::DelegateUnit(
    size_t i, const std::shared_ptr<SharedSubChain>& unit) {
  if (i >= engine_.num_chains()) return false;
  if (unit == nullptr) {
    engine_.UndelegateChain(i);
    return true;
  }
  return engine_.DelegateChain(i, unit);
}

Result<double> StreamingSession::Advance() {
  double p = engine_.Step();
  LAHAR_RETURN_NOT_OK(engine_.ChainStatus());
  return p;
}

void StreamingSession::AdvanceShard(size_t begin, size_t end) {
  engine_.StepChainRange(begin, end);
}

Result<double> StreamingSession::CommitAdvance() {
  double p = engine_.CommitParallelStep();
  LAHAR_RETURN_NOT_OK(engine_.ChainStatus());
  return p;
}

}  // namespace lahar
