#include "engine/streaming.h"

#include "analysis/classify.h"
#include "query/parser.h"

namespace lahar {

Result<StreamingSession> StreamingSession::Create(EventDatabase* db,
                                                  std::string_view text) {
  LAHAR_ASSIGN_OR_RETURN(QueryPtr ast, ParseQuery(text, &db->interner()));
  LAHAR_RETURN_NOT_OK(ValidateQuery(*ast, *db));
  LAHAR_ASSIGN_OR_RETURN(NormalizedQuery normalized, Normalize(*ast));
  Classification cls = Classify(normalized, *db);
  if (cls.query_class != QueryClass::kRegular &&
      cls.query_class != QueryClass::kExtendedRegular) {
    return Status::UnsafeQuery(
        "only Regular and Extended Regular queries evaluate in streaming "
        "fashion (Thms 3.3/3.7); Safe queries need the archived history");
  }
  LAHAR_ASSIGN_OR_RETURN(ExtendedRegularEngine engine,
                         ExtendedRegularEngine::Create(normalized, *db));
  return StreamingSession(std::move(engine));
}

Result<double> StreamingSession::Advance() { return engine_.Step(); }

}  // namespace lahar
