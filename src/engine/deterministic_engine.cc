#include "engine/deterministic_engine.h"

#include "analysis/bindings.h"
#include "analysis/classify.h"
#include "inference/viterbi.h"

namespace lahar {

Result<DeterministicEngine> DeterministicEngine::Create(QueryPtr q,
                                                        const EventDatabase& db,
                                                        Determinization mode) {
  if (q == nullptr) return Status::InvalidArgument("null query");
  DeterministicEngine engine;
  engine.query_ = q;
  engine.db_ = &db;
  engine.mode_ = mode;
  engine.horizon_ = db.horizon();
  engine.paths_.resize(db.num_streams());

  auto nq = Normalize(*q);
  if (nq.ok()) {
    Classification cls = Classify(*nq, db);
    if (cls.query_class == QueryClass::kRegular ||
        cls.query_class == QueryClass::kExtendedRegular) {
      std::vector<Binding> bindings =
          EnumerateBindings(*nq, db, nq->SharedVars());
      bool ok = true;
      for (const Binding& b : bindings) {
        NormalizedQuery grounded = nq->Substitute(b);
        auto nfa = QueryNfa::Build(grounded);
        auto table = SymbolTable::Build(grounded, db);
        if (!nfa.ok() || !table.ok()) {
          ok = false;
          break;
        }
        GroundedChain chain;
        chain.nfa = std::make_shared<const QueryNfa>(std::move(*nfa));
        chain.symbols = std::make_shared<const SymbolTable>(std::move(*table));
        chain.state = chain.nfa->InitialStates();
        engine.chains_.push_back(std::move(chain));
      }
      if (!ok) engine.chains_.clear();
    }
  }
  return engine;
}

const std::vector<DomainIndex>& DeterministicEngine::path(StreamId id) {
  std::vector<DomainIndex>& p = paths_[id];
  if (p.empty()) {
    const Stream& stream = db_->stream(id);
    p = mode_ == Determinization::kViterbi ? ViterbiPath(stream)
                                           : MlePath(stream);
    p.resize(horizon_ + 1, kBottom);
  }
  return p;
}

Result<bool> DeterministicEngine::Step() {
  if (!incremental()) {
    return Status::InvalidArgument(
        "Step() requires regular groundings; use Run()");
  }
  Timestamp next = ++t_;
  bool any = false;
  for (GroundedChain& chain : chains_) {
    SymbolMask input = 0;
    const auto& participating = chain.symbols->participating();
    for (size_t j = 0; j < participating.size(); ++j) {
      input |= chain.symbols->MaskFor(j, path(participating[j])[next]);
    }
    chain.state = chain.nfa->Transition(chain.state, input);
    any = any || chain.nfa->Accepts(chain.state);
  }
  return any;
}

Result<std::vector<bool>> DeterministicEngine::Run() {
  std::vector<bool> out(horizon_ + 1, false);
  if (incremental()) {
    for (Timestamp t = 1; t <= horizon_; ++t) {
      LAHAR_ASSIGN_OR_RETURN(bool sat, Step());
      out[t] = sat;
    }
    return out;
  }
  World world;
  world.values.reserve(db_->num_streams());
  for (StreamId s = 0; s < db_->num_streams(); ++s) {
    std::vector<DomainIndex> traj = path(s);
    traj.resize(db_->stream(s).horizon() + 1, kBottom);
    world.values.push_back(std::move(traj));
  }
  return SatisfiedAt(*query_, *db_, world);
}

}  // namespace lahar
