// The engine-agnostic standing-query abstraction: one QuerySession per
// registered query, regardless of its class. Every evaluation path —
// the streaming kernels of Theorems 3.3/3.7, the safe-plan algebra of
// Section 3.3, and the Monte-Carlo sampler of Section 3.5 — implements the
// same incremental protocol, so the runtime (src/runtime/) multiplexes all
// four query classes through a single serving path:
//
//   class            session              per-tick cost   answers
//   Regular          StreamingSession     O(1)            exact
//   ExtendedRegular  StreamingSession     O(m)            exact
//   Safe             SafeQuerySession     O(live window)  exact
//   Unsafe           SamplingSession      O(T * |W|)      (eps, delta)
//
// The protocol has two forms. Advance() consumes one timestep and returns
// P[q@t] at the new time. The split PrepareAdvance() / AdvanceShard(begin,
// end) / CommitAdvance() form is what the sharded executor speaks: per
// session and per tick, one prepare, then disjoint unit ranges stepped
// (possibly on different threads) while the database is quiescent, then one
// commit that combines them bit-identically to a plain Advance().
//
// The phases are per-SESSION, not global: the windowed executor
// (runtime/executor.h) runs different sessions' phases concurrently and
// out of lockstep — one worker may drive its sessions through W ticks of
// prepare/step/commit back to back while another is still on the window's
// first tick. A session only has to be consistent with its own protocol
// order; it must not assume all sessions sit at the same tick while a
// window is in flight (all of them do again by the time the window's
// results are published).
#ifndef LAHAR_ENGINE_SESSION_H_
#define LAHAR_ENGINE_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "analysis/prepared.h"
#include "common/serial.h"
#include "engine/lahar.h"
#include "engine/regular_engine.h"
#include "engine/safe_engine.h"

namespace lahar {

/// \brief A cross-session shared evaluation unit (docs/SHARING.md): one
/// RegularChain stepped once per tick on behalf of every structurally
/// identical grounded chain (equal canonical key) across standing queries.
///
/// The runtime steps the unit through AdvanceTo exactly once per window,
/// recording each tick's accept probability in a bounded frontier ring;
/// delegated sessions then read ProbAt(t) instead of stepping their own
/// copy. Chains are cloned *from* a live member at creation and copied
/// *back* at undelegation, so membership churn never loses state. Not
/// internally synchronized: AdvanceTo runs on the runtime coordinator
/// before worker fan-out, and workers only call the const readers.
class SharedSubChain {
 public:
  /// `frontier_history` bounds how many recent ticks ProbAt can answer; it
  /// must exceed the deepest read lag (the executor sizes it to the window
  /// cap plus slack).
  SharedSubChain(std::string key, RegularChain chain,
                 size_t frontier_history);

  const std::string& key() const { return key_; }
  Timestamp time() const { return chain_.time(); }

  /// Steps the chain up to timestep `to` (idempotent for to <= time()),
  /// recording per-tick probabilities in the frontier ring. Returns the
  /// number of steps executed.
  size_t AdvanceTo(Timestamp to);

  /// P[q@t] recorded by AdvanceTo; `t` must lie within the frontier
  /// history of time().
  double ProbAt(Timestamp t) const { return ring_[t % ring_.size()]; }

  const RegularChain& chain() const { return chain_; }
  /// Checkpoint restore loads directly into the chain, then calls
  /// ResyncFrontier to re-prime the current tick's ring entry.
  RegularChain* mutable_chain() { return &chain_; }
  void ResyncFrontier();

  /// Membership bookkeeping (maintained by the registry's sharing pool).
  size_t readers() const { return readers_; }
  void AddReader() { ++readers_; }
  void DropReader() { --readers_; }

  /// Cumulative steps executed by AdvanceTo.
  uint64_t steps() const { return steps_; }
  const Status& status() const { return chain_.status(); }

 private:
  std::string key_;
  RegularChain chain_;
  std::vector<double> ring_;
  size_t readers_ = 0;
  uint64_t steps_ = 0;
};

/// \brief Chain-lifecycle residency snapshot of one session (docs/PERF.md
/// "Chain lifecycle"). Sessions without the lifecycle layer report every
/// unit as resident; counters are lifetime totals.
struct SessionResidency {
  size_t bytes_resident = 0;  ///< engine memory footprint in bytes
  size_t registered_units = 0;
  size_t resident_units = 0;
  size_t stub_units = 0;
  size_t spilled_units = 0;
  uint64_t promotions = 0;
  uint64_t spills = 0;
  uint64_t rehydrations = 0;
};

/// \brief Incremental evaluation session for one standing query.
class QuerySession {
 public:
  virtual ~QuerySession() = default;

  /// Consumes timestep time()+1 (which every participating stream must
  /// already cover via Append*, unless it has ended) and returns P[q@t] at
  /// the new time. Equivalent to AdvanceShard(0, num_units()) followed by
  /// CommitAdvance().
  virtual Result<double> Advance();

  /// The last consumed timestep (0 before the first Advance).
  virtual Timestamp time() const = 0;

  /// Number of independently steppable units: per-grounding chains for the
  /// streaming engines, Monte-Carlo samples for the sampling engine, and
  /// independent grounding groups (project children) for a safe plan.
  virtual size_t num_units() const = 0;

  /// Relative per-tick cost estimate of unit `i` (shard balancing).
  virtual size_t UnitCost(size_t i) const = 0;

  /// One past the last unit of the indivisible shard group containing unit
  /// i. The executor aligns shard-range boundaries on group ends so a split
  /// never shears a group whose units must be stepped together to stay on
  /// their fast path (e.g. a lane-interleaved SIMD stripe). Groups are a
  /// performance hint only — any split is still correct. Default: every
  /// unit is its own group.
  virtual size_t UnitGroupEnd(size_t i) const { return i + 1; }

  /// Residency and memory snapshot of this session's units (stats).
  virtual SessionResidency Residency() const {
    SessionResidency r;
    r.registered_units = num_units();
    r.resident_units = r.registered_units;
    return r;
  }

  /// Total per-tick cost estimate: sum of UnitCost over all units.
  size_t StepCost() const;

  /// Single-threaded (per session) preparation before the tick's shard
  /// fan-out: sessions refresh state shared across units here (e.g. the
  /// sampling engine's symbol tables after a stream interned new domain
  /// values). The executor calls it exactly once per tick of this session,
  /// before the tick's first AdvanceShard — under windowed execution that
  /// is W times back to back, interleaved only with this session's own
  /// steps and commits. Errors latch inside the session and surface at
  /// CommitAdvance. Default: no-op.
  virtual void PrepareAdvance() {}

  /// Advances only the units in [begin, end) to time()+1. Disjoint ranges
  /// of this session may run on different threads; the database must be
  /// quiescent and this session's CommitAdvance must not be called while
  /// any of its ranges is in flight. Other sessions advance independently
  /// and may be at different ticks of the same window.
  virtual void AdvanceShard(size_t begin, size_t end) = 0;

  /// Completes a split advance once every unit range has been stepped:
  /// bumps time() and returns P[q@t], combined bit-identically to
  /// Advance(). Errors raised by shard work (e.g. a safe-plan operator
  /// hitting an unsupported construct mid-stream) surface here.
  virtual Result<double> CommitAdvance() = 0;

  QueryClass query_class() const { return query_class_; }
  EngineKind engine_kind() const { return engine_kind_; }
  /// False when answers carry the sampling engine's (eps, delta) guarantee
  /// instead of being exact.
  bool exact() const { return exact_; }

  /// True when the session serializes its state directly (SaveState /
  /// LoadState). Sessions without direct support are restored by replaying
  /// the database prefix instead — bit-identical either way (replay is the
  /// same catch-up path hot registration uses; the sampler's determinism
  /// comes from its fixed seed).
  virtual bool SupportsStateRestore() const { return false; }

  /// Serializes the session's evaluation state (checkpoint). Only valid
  /// when SupportsStateRestore(); the blob is opaque and versioned by the
  /// enclosing checkpoint, and must be loaded into a session created over
  /// an identical database snapshot by the same query text.
  virtual Status SaveState(serial::Writer* w) const {
    (void)w;
    return Status::Unimplemented("session does not serialize state");
  }

  /// Restores state written by SaveState on an equivalent session.
  virtual Status LoadState(serial::Reader* r) {
    (void)r;
    return Status::Unimplemented("session does not serialize state");
  }

  /// Safe-path memo/row-cache counters (zeroes for the other classes);
  /// surfaced in RuntimeStats so bounded-memory serving is observable.
  virtual SafeMemoStats MemoStats() const { return {}; }

  // --- Cross-session sharing hooks (docs/SHARING.md) ----------------------
  // The registry's sharing pool groups sessions whose units carry equal
  // canonical keys and swaps their private chains for one SharedSubChain.
  // Classes that decline sharing keep the no-op defaults.

  /// Units eligible for cross-session sharing (grounded chains with a
  /// canonical key); indices coincide with the unit indices of AdvanceShard.
  virtual size_t NumShareableUnits() const { return 0; }

  /// Canonical structural key of shareable unit `i` (see
  /// analysis/plan.h CanonicalQueryKey).
  virtual const std::string& ShareableUnitKey(size_t i) const;

  /// Clones unit `i`'s live chain into a fresh shared unit that other
  /// sessions with the same key can adopt. Null when the unit cannot seed
  /// one (latched error, already delegated).
  virtual std::shared_ptr<SharedSubChain> MakeSharedUnit(
      size_t i, size_t frontier_history) const {
    (void)i;
    (void)frontier_history;
    return nullptr;
  }

  /// Delegates unit `i` to `unit`: the session stops stepping its private
  /// chain and reads per-tick probabilities from the shared frontier.
  /// Passing null undelegates (the shared state is copied back into the
  /// private chain). Returns false when delegation is refused (time
  /// mismatch or latched error); the caller must then leave the session
  /// evaluating privately.
  virtual bool DelegateUnit(size_t i,
                            const std::shared_ptr<SharedSubChain>& unit) {
    (void)i;
    (void)unit;
    return false;
  }

  /// Units currently delegated to shared sub-chains (stats).
  virtual size_t NumDelegatedUnits() const { return 0; }

  /// Units stepping on the vectorized SoA kernel path (stats; zero for
  /// sessions without a chain arena).
  virtual size_t NumSimdUnits() const { return 0; }

  /// Whole-stripe steps taken / stripes demoted to per-unit steps since
  /// creation (stats; zero for sessions without lane-interleaved stripes).
  /// Fallbacks are data-dependent and scheduler-independent: the executor
  /// aligns shard splits on UnitGroupEnd, so rebalances and steals must not
  /// grow this counter (asserted by tests/chain_lifecycle_test.cc).
  virtual uint64_t StripeSteps() const { return 0; }
  virtual uint64_t StripeFallbacks() const { return 0; }

 protected:
  QuerySession(QueryClass query_class, EngineKind engine_kind, bool exact)
      : query_class_(query_class), engine_kind_(engine_kind), exact_(exact) {}

 private:
  QueryClass query_class_;
  EngineKind engine_kind_;
  bool exact_;
};

/// Routes a prepared query to the cheapest session able to serve it:
/// Regular/ExtendedRegular -> StreamingSession, Safe -> SafeQuerySession
/// (falling back to sampling when no safe plan compiles and
/// options.allow_sampling_fallback is set), Unsafe -> SamplingSession (or
/// an UnsafeQuery error when fallback is disabled). Rejections carry the
/// query's class in the kQueryClassPayload status payload.
Result<std::unique_ptr<QuerySession>> CreateQuerySession(
    EventDatabase* db, const PreparedQuery& prepared,
    const LaharOptions& options = {});

}  // namespace lahar

#endif  // LAHAR_ENGINE_SESSION_H_
