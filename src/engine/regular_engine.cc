#include "engine/regular_engine.h"

#include <algorithm>

namespace lahar {
namespace {

// Canonical live-state order shared by both execution paths: ascending
// (mask, hidden), with the latched accept flag (bit 63) making accepted
// states sort after unaccepted ones — exactly the kernel path's flat layout
// (plane, mask index, hidden). Enumerating sources in this order makes the
// two paths' floating-point accumulation sequences, and therefore their
// probabilities, bit-identical.
template <typename Pair>
void SortCanonical(std::vector<Pair>* v) {
  std::sort(v->begin(), v->end(), [](const Pair& x, const Pair& y) {
    return x.first.mask != y.first.mask ? x.first.mask < y.first.mask
                                        : x.first.hidden < y.first.hidden;
  });
}

}  // namespace

Result<RegularChain> RegularChain::Create(const NormalizedQuery& q,
                                          const EventDatabase& db,
                                          const ChainOptions& options) {
  RegularChain chain;
  LAHAR_ASSIGN_OR_RETURN(QueryNfa nfa, QueryNfa::Build(q));
  chain.nfa_ = std::make_shared<const QueryNfa>(std::move(nfa));
  LAHAR_ASSIGN_OR_RETURN(SymbolTable table, SymbolTable::Build(q, db));
  chain.symbols_ = std::make_shared<const SymbolTable>(std::move(table));
  chain.db_ = &db;
  chain.horizon_ = db.horizon();

  uint64_t radix = 1;
  size_t slot = 0;
  for (size_t pos = 0; pos < chain.symbols_->participating().size(); ++pos) {
    StreamId id = chain.symbols_->participating()[pos];
    const Stream& s = db.stream(id);
    Participant p;
    p.id = id;
    p.position = pos;
    p.markovian = s.markovian();
    p.radix = 1;
    p.hidden_slot = 0;
    if (s.markovian()) {
      // The joint hidden state is the product of the Markovian streams'
      // domains; past ~1e6 the exact chain is impractical and the caller
      // should ground the query per key (the paper's per-key processes).
      if (radix > 1000000 / s.domain_size()) {
        return Status::InvalidArgument(
            "joint hidden state of Markovian streams is too large; ground "
            "the query per key (run one chain per stream)");
      }
      p.radix = radix;
      p.hidden_slot = slot++;
      chain.radices_.push_back(radix);
      chain.kernel_domains_.push_back(
          static_cast<uint32_t>(s.domain_size()));
      radix *= s.domain_size();
      chain.markov_participants_.push_back(p);
    } else {
      chain.indep_participants_.push_back(p);
    }
    chain.participants_.push_back(p);
  }

  // Compile the transition kernel (budget permitting); the dynamic map path
  // stays available as the fallback and the semantic reference.
  if (options.kernel.max_flat_states > 0) {
    std::vector<KernelStream> profile;
    profile.reserve(chain.participants_.size());
    for (const Participant& p : chain.participants_) {
      const Stream& s = db.stream(p.id);
      KernelStream ks;
      ks.markovian = p.markovian;
      ks.radix = p.radix;
      ks.domain_size = static_cast<uint32_t>(s.domain_size());
      ks.masks.reserve(s.domain_size());
      for (DomainIndex d = 0; d < s.domain_size(); ++d) {
        ks.masks.push_back(chain.symbols_->MaskFor(p.position, d));
      }
      profile.push_back(std::move(ks));
    }
    std::shared_ptr<const CompiledKernel> kernel =
        options.kernel_cache != nullptr
            ? options.kernel_cache->FindOrCompile(*chain.nfa_, profile,
                                                  options.kernel)
            : CompileKernel(
                  *chain.nfa_, profile, options.kernel,
                  KernelSignature(*chain.nfa_, profile, options.kernel));
    if (kernel != nullptr) {
      int idx = kernel->MaskIndexOf(chain.nfa_->InitialStates());
      if (idx >= 0) {
        chain.kernel_ = std::move(kernel);
        const size_t stride = chain.kernel_->num_flat();
        chain.flat_.assign(2 * stride, 0.0);
        chain.cur_ = chain.flat_.data();
        chain.nxt_ = chain.flat_.data() + stride;
        chain.cur_[static_cast<size_t>(idx) * chain.kernel_->R] = 1.0;
      }
    }
  }
  if (chain.kernel_ == nullptr) {
    chain.states_.emplace(Key{chain.nfa_->InitialStates(), 0}, 1.0);
  }
  return chain;
}

RegularChain::RegularChain(const RegularChain& o)
    : nfa_(o.nfa_),
      symbols_(o.symbols_),
      db_(o.db_),
      participants_(o.participants_),
      markov_participants_(o.markov_participants_),
      indep_participants_(o.indep_participants_),
      indep_dist_(o.indep_dist_),
      radices_(o.radices_),
      kernel_domains_(o.kernel_domains_),
      horizon_(o.horizon_),
      t_(o.t_),
      track_accept_(o.track_accept_),
      status_(o.status_),
      states_(o.states_),
      kernel_(o.kernel_),
      planes_(o.planes_) {
  FixupStorage(o);
}

RegularChain& RegularChain::operator=(const RegularChain& o) {
  if (this != &o) {
    RegularChain tmp(o);
    *this = std::move(tmp);
  }
  return *this;
}

RegularChain::RegularChain(RegularChain&& o) noexcept {
  *this = std::move(o);
}

RegularChain& RegularChain::operator=(RegularChain&& o) noexcept {
  if (this == &o) return *this;
  nfa_ = std::move(o.nfa_);
  symbols_ = std::move(o.symbols_);
  db_ = o.db_;
  participants_ = std::move(o.participants_);
  markov_participants_ = std::move(o.markov_participants_);
  indep_participants_ = std::move(o.indep_participants_);
  indep_dist_ = std::move(o.indep_dist_);
  radices_ = std::move(o.radices_);
  kernel_domains_ = std::move(o.kernel_domains_);
  horizon_ = o.horizon_;
  t_ = o.t_;
  track_accept_ = o.track_accept_;
  status_ = std::move(o.status_);
  states_ = std::move(o.states_);
  kernel_ = std::move(o.kernel_);
  planes_ = o.planes_;
  // Moving flat_ transfers its heap buffer, so the source's cur_/nxt_
  // pointer values stay valid for *this (owned storage) and external arena
  // pointers transfer as-is (arena-bound storage).
  flat_ = std::move(o.flat_);
  cur_ = o.cur_;
  nxt_ = o.nxt_;
  scratch_ = std::move(o.scratch_);
  o.cur_ = nullptr;
  o.nxt_ = nullptr;
  o.kernel_.reset();
  o.states_.clear();
  return *this;
}

void RegularChain::FixupStorage(const RegularChain& o) {
  if (kernel_ == nullptr || o.cur_ == nullptr) {
    cur_ = nullptr;
    nxt_ = nullptr;
    return;
  }
  const size_t stride = planes_ * kernel_->num_flat();
  if (!o.flat_.empty()) {
    flat_ = o.flat_;
    cur_ = flat_.data() + (o.cur_ - o.flat_.data());
    nxt_ = flat_.data() + (o.nxt_ - o.flat_.data());
  } else {
    // The source lives in an engine-owned arena; the copy owns its storage.
    flat_.assign(2 * stride, 0.0);
    std::copy(o.cur_, o.cur_ + stride, flat_.data());
    cur_ = flat_.data();
    nxt_ = flat_.data() + stride;
  }
}

// Distribution over the OR of the symbol masks contributed by all
// *independent* participating streams at timestep `next`. Streams are
// independent of each other and of the past, so this is computed once per
// step and shared by every chain state; collapsing domain values with equal
// masks keeps it tiny (typically 2-4 entries) no matter how many streams or
// how large their domains.
void RegularChain::BuildIndependentMaskDist(Timestamp next) {
  indep_dist_.clear();
  indep_dist_.emplace_back(0, 1.0);
  std::vector<std::pair<SymbolMask, double>>& stream_dist =
      scratch_.stream_dist;
  std::vector<std::pair<SymbolMask, double>>& merged = scratch_.merged;
  for (const Participant& part : indep_participants_) {
    const Stream& s = db_->stream(part.id);
    stream_dist.clear();
    if (next > s.horizon() || s.MarginalAt(next).empty()) {
      continue;  // certain bottom: contributes mask 0 with probability 1
    }
    const std::vector<double>& m = s.MarginalAt(next);
    for (DomainIndex d = 0; d < m.size(); ++d) {
      if (m[d] <= 0) continue;
      SymbolMask mask = symbols_->MaskFor(part.position, d);
      bool found = false;
      for (auto& [existing, p] : stream_dist) {
        if (existing == mask) {
          p += m[d];
          found = true;
          break;
        }
      }
      if (!found) stream_dist.emplace_back(mask, m[d]);
    }
    if (stream_dist.size() == 1 && stream_dist[0].first == 0) continue;
    // Convolve the running OR-distribution with this stream's.
    merged.clear();
    for (const auto& [acc_mask, acc_p] : indep_dist_) {
      for (const auto& [mask, p] : stream_dist) {
        SymbolMask combined = acc_mask | mask;
        double added = acc_p * p;
        bool found = false;
        for (auto& [existing, ep] : merged) {
          if (existing == combined) {
            ep += added;
            found = true;
            break;
          }
        }
        if (!found) merged.emplace_back(combined, added);
      }
    }
    indep_dist_.swap(merged);
  }
}

// Enumerates the joint assignment of the *Markovian* participating streams
// at timestep `next`, then crosses each combination with the shared
// independent-stream mask distribution. Frames carry the probability
// product *without* the source weight p; the final accumulate groups it as
// (p * frame) * indep — the exact multiplication tree the kernel path uses.
void RegularChain::EnumerateSuccessors(const Key& key, double p,
                                       Timestamp next, StateMap* out) {
  struct Frame {
    SymbolMask input = 0;
    uint64_t hidden = 0;
    double prob = 1.0;
  };
  std::vector<Frame> frontier{{0, 0, 1.0}};
  std::vector<Frame> scratch;
  for (const Participant& part : markov_participants_) {
    const Stream& s = db_->stream(part.id);
    scratch.clear();
    if (next > s.horizon()) {
      // Stream over: certain bottom, contributes nothing to the input.
      for (const Frame& f : frontier) scratch.push_back(f);
    } else if (next > 1) {
      const Matrix& cpt = s.CptAt(next - 1);
      const DomainIndex d = static_cast<DomainIndex>(
          (key.hidden / part.radix) % s.domain_size());
      const double* row = cpt.Row(d);
      for (const Frame& f : frontier) {
        for (DomainIndex d2 = 0; d2 < s.domain_size(); ++d2) {
          double q = row[d2];
          if (q <= 0) continue;
          Frame nf = f;
          nf.prob *= q;
          nf.input |= symbols_->MaskFor(part.position, d2);
          nf.hidden += part.radix * d2;
          scratch.push_back(nf);
        }
      }
    } else {
      const std::vector<double>& m = s.MarginalAt(next);
      if (m.empty()) {
        for (const Frame& f : frontier) scratch.push_back(f);
      } else {
        for (const Frame& f : frontier) {
          for (DomainIndex d2 = 0; d2 < m.size(); ++d2) {
            double q = m[d2];
            if (q <= 0) continue;
            Frame nf = f;
            nf.prob *= q;
            nf.input |= symbols_->MaskFor(part.position, d2);
            nf.hidden += part.radix * d2;
            scratch.push_back(nf);
          }
        }
      }
    }
    frontier.swap(scratch);
  }
  const StateMask base_mask = key.mask & ~kAcceptedFlag;
  const bool was_accepted = (key.mask & kAcceptedFlag) != 0;
  for (const Frame& f : frontier) {
    const double w = p * f.prob;
    for (const auto& [imask, ip] : indep_dist_) {
      StateMask next_mask = nfa_->Transition(base_mask, f.input | imask);
      if (track_accept_ && (was_accepted || nfa_->Accepts(next_mask))) {
        next_mask |= kAcceptedFlag;
      }
      (*out)[Key{next_mask, f.hidden}] += w * ip;
    }
  }
}

void RegularChain::StepMap(Timestamp next) {
  std::vector<std::pair<Key, double>>& sorted = scratch_.sorted;
  sorted.assign(states_.begin(), states_.end());
  SortCanonical(&sorted);
  StateMap out;
  out.reserve(states_.size() * 2);
  for (const auto& [key, p] : sorted) {
    EnumerateSuccessors(key, p, next, &out);
  }
  states_.swap(out);
}

// Builds the per-step CSR rows: for every live joint hidden code h, the
// (successor code h2, probability) pairs in exactly the enumeration order
// (and with the same partial-product grouping) as EnumerateSuccessors.
void RegularChain::BuildHiddenRows(Timestamp next) {
  const uint64_t R = kernel_->R;
  Scratch& s = scratch_;
  s.row_ptr.assign(R + 1, 0);
  s.csr_h.clear();
  s.csr_p.clear();
  for (uint64_t h = 0; h < R; ++h) {
    if (s.live[h]) {
      s.frames.clear();
      s.frames.emplace_back(0, 1.0);
      for (const Participant& part : markov_participants_) {
        const Stream& st = db_->stream(part.id);
        const uint32_t dom = kernel_domains_[part.hidden_slot];
        s.frames2.clear();
        if (next > st.horizon()) {
          s.frames2 = s.frames;  // ended: digit 0, probability 1
        } else if (next > 1) {
          const Matrix& cpt = st.CptAt(next - 1);
          const DomainIndex d =
              static_cast<DomainIndex>((h / part.radix) % dom);
          const double* row = cpt.Row(d);
          for (const auto& [h2, pr] : s.frames) {
            for (DomainIndex d2 = 0; d2 < dom; ++d2) {
              const double q = row[d2];
              if (q <= 0) continue;
              s.frames2.emplace_back(h2 + part.radix * d2, pr * q);
            }
          }
        } else {
          const std::vector<double>& m = st.MarginalAt(next);
          if (m.empty()) {
            s.frames2 = s.frames;
          } else {
            for (const auto& [h2, pr] : s.frames) {
              for (DomainIndex d2 = 0; d2 < m.size(); ++d2) {
                const double q = m[d2];
                if (q <= 0) continue;
                s.frames2.emplace_back(h2 + part.radix * d2, pr * q);
              }
            }
          }
        }
        s.frames.swap(s.frames2);
      }
      for (const auto& [h2, pr] : s.frames) {
        s.csr_h.push_back(static_cast<uint32_t>(h2));
        s.csr_p.push_back(pr);
      }
    }
    s.row_ptr[h + 1] = static_cast<uint32_t>(s.csr_h.size());
  }
}

bool RegularChain::StepKernel(Timestamp next) {
  const CompiledKernel& k = *kernel_;
  const size_t M = k.masks.size();
  const uint64_t R = k.R;
  const size_t E = indep_dist_.size();
  Scratch& s = scratch_;

  // Structural guards: the compiled digit layout and mask classes assume
  // the domains fixed at creation. A surprise (a stream domain that grew,
  // an independent mask outside the compiled alphabet) falls back to the
  // dynamic map path for the rest of the chain's life.
  for (size_t i = 0; i < markov_participants_.size(); ++i) {
    const Stream& st = db_->stream(markov_participants_[i].id);
    if (st.domain_size() != kernel_domains_[i]) {
      DematerializeToMap();
      return false;
    }
  }
  s.indep_p.resize(E);
  s.step_cls.assign(static_cast<size_t>(k.num_markov_classes) * E, 0);
  for (size_t e = 0; e < E; ++e) {
    const int ic = k.IndepClassOf(indep_dist_[e].first);
    if (ic < 0) {
      DematerializeToMap();
      return false;
    }
    s.indep_p[e] = indep_dist_[e].second;
    for (uint32_t mc = 0; mc < k.num_markov_classes; ++mc) {
      s.step_cls[static_cast<size_t>(mc) * E + e] =
          k.pair_class[static_cast<size_t>(mc) * k.indep_masks.size() + ic];
    }
  }

  // Live joint hidden codes across all planes and state sets: the CSR rows
  // below are built once per live code and shared by every state set — the
  // work the map path redoes per (state set, hidden) pair.
  s.live.assign(R, 0);
  const size_t stride = planes_ * M * R;
  for (size_t block = 0; block < planes_ * M; ++block) {
    const double* src = cur_ + block * R;
    for (uint64_t h = 0; h < R; ++h) {
      if (src[h] != 0.0) s.live[h] = 1;
    }
  }
  BuildHiddenRows(next);

  // Double-buffered sparse mat-vec over the flat state. Source order
  // (plane, mask index, hidden) is the canonical order; see SortCanonical.
  std::fill(nxt_, nxt_ + stride, 0.0);
  const uint32_t C = k.num_inputs;
  for (size_t a = 0; a < planes_; ++a) {
    for (size_t mi = 0; mi < M; ++mi) {
      const double* src = cur_ + (a * M + mi) * R;
      const uint32_t* trow = &k.trans[mi * C];
      for (uint64_t h = 0; h < R; ++h) {
        const double p = src[h];
        if (p == 0.0) continue;
        for (uint32_t j = s.row_ptr[h]; j < s.row_ptr[h + 1]; ++j) {
          const uint64_t h2 = s.csr_h[j];
          const double w = p * s.csr_p[j];
          const uint32_t* cls = &s.step_cls[k.markov_class[h2] * E];
          for (size_t e = 0; e < E; ++e) {
            const uint32_t tr = trow[cls[e]];
            const size_t a2 = track_accept_ ? (a | (tr & 1u)) : 0;
            nxt_[(a2 * M + (tr >> 1)) * R + h2] += w * s.indep_p[e];
          }
        }
      }
    }
  }
  std::swap(cur_, nxt_);
  return true;
}

void RegularChain::DematerializeToMap() {
  const CompiledKernel& k = *kernel_;
  const size_t M = k.masks.size();
  const uint64_t R = k.R;
  states_.clear();
  for (size_t a = 0; a < planes_; ++a) {
    for (size_t mi = 0; mi < M; ++mi) {
      const double* src = cur_ + (a * M + mi) * R;
      const StateMask mask = k.masks[mi] | (a != 0 ? kAcceptedFlag : 0);
      for (uint64_t h = 0; h < R; ++h) {
        if (src[h] != 0.0) states_.emplace(Key{mask, h}, src[h]);
      }
    }
  }
  kernel_.reset();
  flat_.clear();
  flat_.shrink_to_fit();
  cur_ = nullptr;
  nxt_ = nullptr;
  planes_ = 1;
}

void RegularChain::RefreshSymbols() {
  Result<SymbolTable> grown = symbols_->WithGrownDomains(*db_);
  if (!grown.ok()) {
    // Keep serving with the old table — MaskFor bounds-checks, so unknown
    // values contribute no symbols — and surface the failure via status().
    if (status_.ok()) status_ = grown.status();
    return;
  }
  symbols_ = std::make_shared<const SymbolTable>(std::move(*grown));
}

double RegularChain::Step() {
  Timestamp next = t_ + 1;
  // Live serving interns domain values mid-stream; extend the symbol table
  // before reading it. If the grown value's mask falls outside the compiled
  // alphabet, StepKernel's structural guard dematerializes to the map path;
  // a mask already in the alphabet keeps the kernel running bit-identically.
  if (!symbols_->CoversDomains(*db_)) RefreshSymbols();
  BuildIndependentMaskDist(next);
  const bool stepped = kernel_ != nullptr && StepKernel(next);
  if (!stepped) StepMap(next);
  t_ = next;
  return AcceptProb();
}

void RegularChain::EnableAcceptTracking() {
  track_accept_ = true;
  if (kernel_ != nullptr && planes_ == 1) {
    // Grow to two planes (unaccepted, accepted). If the chain lived in an
    // engine arena it switches to owned storage — accept tracking is a
    // safe-plan feature and those chains are never arena-batched.
    const size_t plane = kernel_->num_flat();
    std::vector<double> grown(4 * plane, 0.0);
    std::copy(cur_, cur_ + plane, grown.data());
    flat_ = std::move(grown);
    planes_ = 2;
    cur_ = flat_.data();
    nxt_ = flat_.data() + 2 * plane;
  }
}

double RegularChain::AcceptProb() const {
  double total = 0;
  if (kernel_ != nullptr) {
    const size_t M = kernel_->masks.size();
    const uint64_t R = kernel_->R;
    for (size_t a = 0; a < planes_; ++a) {
      for (size_t mi = 0; mi < M; ++mi) {
        if (!kernel_->accepts[mi]) continue;
        const double* src = cur_ + (a * M + mi) * R;
        for (uint64_t h = 0; h < R; ++h) total += src[h];
      }
    }
    return total;
  }
  std::vector<std::pair<Key, double>> sorted(states_.begin(), states_.end());
  SortCanonical(&sorted);
  for (const auto& [key, p] : sorted) {
    if (nfa_->Accepts(key.mask & ~kAcceptedFlag)) total += p;
  }
  return total;
}

double RegularChain::AcceptedProb() const {
  double total = 0;
  if (kernel_ != nullptr) {
    if (planes_ < 2) return 0.0;
    const size_t plane = kernel_->num_flat();
    const double* src = cur_ + plane;
    for (size_t i = 0; i < plane; ++i) total += src[i];
    return total;
  }
  std::vector<std::pair<Key, double>> sorted(states_.begin(), states_.end());
  SortCanonical(&sorted);
  for (const auto& [key, p] : sorted) {
    if (key.mask & kAcceptedFlag) total += p;
  }
  return total;
}

size_t RegularChain::NumStates() const {
  if (kernel_ == nullptr) return states_.size();
  const size_t stride = planes_ * kernel_->num_flat();
  size_t live = 0;
  for (size_t i = 0; i < stride; ++i) {
    if (cur_[i] != 0.0) ++live;
  }
  return live;
}

size_t RegularChain::FlatStride() const {
  return kernel_ != nullptr ? planes_ * kernel_->num_flat() : 0;
}

size_t RegularChain::StepCost() const {
  return kernel_ != nullptr ? FlatStride()
                            : std::max<size_t>(1, states_.size());
}

void RegularChain::BindArena(double* cur, double* nxt) {
  if (kernel_ == nullptr) return;
  const size_t stride = FlatStride();
  std::copy(cur_, cur_ + stride, cur);
  std::fill(nxt, nxt + stride, 0.0);
  flat_.clear();
  flat_.shrink_to_fit();
  cur_ = cur;
  nxt_ = nxt;
}

void RegularChain::SaveState(serial::Writer* w) const {
  w->U32(t_);
  w->U8(track_accept_ ? 1 : 0);
  // Per-slot domain sizes at save time. Decoding digits with the *current*
  // domain size matches exactly how EnumerateSuccessors interprets hidden
  // codes, and the restored chain (built over the restored database, which
  // has these same sizes) re-encodes with its own radices.
  w->U64(markov_participants_.size());
  std::vector<uint64_t> domains(markov_participants_.size());
  for (size_t i = 0; i < markov_participants_.size(); ++i) {
    domains[i] = db_->stream(markov_participants_[i].id).domain_size();
    w->U64(domains[i]);
  }
  // Live entries in canonical (mask, hidden) order — kernel flat-walk and
  // sorted map produce the same sequence.
  std::vector<std::pair<Key, double>> entries;
  if (kernel_ != nullptr) {
    const CompiledKernel& k = *kernel_;
    const size_t M = k.masks.size();
    const uint64_t R = k.R;
    for (size_t a = 0; a < planes_; ++a) {
      for (size_t mi = 0; mi < M; ++mi) {
        const double* src = cur_ + (a * M + mi) * R;
        const StateMask mask = k.masks[mi] | (a != 0 ? kAcceptedFlag : 0);
        for (uint64_t h = 0; h < R; ++h) {
          if (src[h] != 0.0) entries.push_back({Key{mask, h}, src[h]});
        }
      }
    }
    SortCanonical(&entries);
  } else {
    entries.assign(states_.begin(), states_.end());
    SortCanonical(&entries);
  }
  w->U64(entries.size());
  for (const auto& [key, p] : entries) {
    w->U64(key.mask);
    for (size_t i = 0; i < markov_participants_.size(); ++i) {
      w->U64((key.hidden / radices_[i]) % domains[i]);
    }
    w->F64(p);
  }
}

Status RegularChain::LoadState(serial::Reader* r) {
  uint32_t t;
  uint8_t track;
  uint64_t num_slots;
  LAHAR_RETURN_NOT_OK(r->U32(&t));
  LAHAR_RETURN_NOT_OK(r->U8(&track));
  LAHAR_RETURN_NOT_OK(r->U64(&num_slots));
  if (num_slots != markov_participants_.size()) {
    return Status::InvalidArgument(
        "chain snapshot has " + std::to_string(num_slots) +
        " Markovian slots, this chain has " +
        std::to_string(markov_participants_.size()) +
        " (different query or database?)");
  }
  std::vector<uint64_t> domains(num_slots);
  for (size_t i = 0; i < num_slots; ++i) {
    LAHAR_RETURN_NOT_OK(r->U64(&domains[i]));
    const uint64_t here = db_->stream(markov_participants_[i].id).domain_size();
    if (domains[i] != here) {
      return Status::InvalidArgument(
          "chain snapshot slot " + std::to_string(i) + " has domain size " +
          std::to_string(domains[i]) + ", restored database has " +
          std::to_string(here) + " (snapshot/database mismatch)");
    }
  }
  uint64_t num_entries;
  LAHAR_RETURN_NOT_OK(r->U64(&num_entries));
  std::vector<std::pair<Key, double>> entries;
  entries.reserve(num_entries);
  bool any_accept_flag = false;
  for (uint64_t e = 0; e < num_entries; ++e) {
    Key key{0, 0};
    LAHAR_RETURN_NOT_OK(r->U64(&key.mask));
    for (size_t i = 0; i < num_slots; ++i) {
      uint64_t digit;
      LAHAR_RETURN_NOT_OK(r->U64(&digit));
      if (digit >= domains[i]) {
        return Status::InvalidArgument("chain snapshot digit out of domain");
      }
      key.hidden += radices_[i] * digit;
    }
    double p;
    LAHAR_RETURN_NOT_OK(r->F64(&p));
    any_accept_flag = any_accept_flag || (key.mask & kAcceptedFlag) != 0;
    entries.push_back({key, p});
  }
  if (track != 0 && !track_accept_) EnableAcceptTracking();
  // Route into whichever path this chain was built with. The kernel can
  // only host the state if every saved mask is in its reachable set (and
  // accept-flagged mass has a second plane); otherwise fall back to the
  // map, which hosts anything.
  bool use_kernel = kernel_ != nullptr && (!any_accept_flag || planes_ == 2);
  if (use_kernel) {
    for (const auto& [key, p] : entries) {
      if (kernel_->MaskIndexOf(key.mask & ~kAcceptedFlag) < 0 ||
          key.hidden >= kernel_->R) {
        use_kernel = false;
        break;
      }
    }
  }
  if (kernel_ != nullptr && !use_kernel) DematerializeToMap();
  if (use_kernel) {
    const CompiledKernel& k = *kernel_;
    const size_t M = k.masks.size();
    std::fill(cur_, cur_ + planes_ * k.num_flat(), 0.0);
    std::fill(nxt_, nxt_ + planes_ * k.num_flat(), 0.0);
    for (const auto& [key, p] : entries) {
      const size_t a = (key.mask & kAcceptedFlag) != 0 ? 1 : 0;
      const size_t mi = static_cast<size_t>(k.MaskIndexOf(key.mask &
                                                          ~kAcceptedFlag));
      cur_[(a * M + mi) * k.R + key.hidden] = p;
    }
  } else {
    states_.clear();
    for (const auto& [key, p] : entries) states_[key] += p;
  }
  t_ = t;
  status_ = Status::OK();
  return Status::OK();
}

Result<RegularEngine> RegularEngine::Create(const NormalizedQuery& q,
                                            const EventDatabase& db,
                                            const ChainOptions& options) {
  LAHAR_ASSIGN_OR_RETURN(RegularChain chain,
                         RegularChain::Create(q, db, options));
  return RegularEngine(std::move(chain));
}

std::vector<double> RegularEngine::Run() {
  std::vector<double> probs(chain_.horizon() + 1, 0.0);
  for (Timestamp t = 1; t <= chain_.horizon(); ++t) {
    probs[t] = chain_.Step();
  }
  return probs;
}

}  // namespace lahar
