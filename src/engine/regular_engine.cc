#include "engine/regular_engine.h"

#include <algorithm>

#include "automaton/simd.h"

namespace lahar {
namespace {

// Canonical live-state order shared by both execution paths: ascending
// (mask, hidden), with the latched accept flag (bit 63) making accepted
// states sort after unaccepted ones — exactly the kernel path's flat layout
// (plane, mask index, hidden). Enumerating sources in this order makes the
// two paths' floating-point accumulation sequences, and therefore their
// probabilities, bit-identical.
template <typename Pair>
void SortCanonical(std::vector<Pair>* v) {
  std::sort(v->begin(), v->end(), [](const Pair& x, const Pair& y) {
    return x.first.mask != y.first.mask ? x.first.mask < y.first.mask
                                        : x.first.hidden < y.first.hidden;
  });
}

}  // namespace

Result<RegularChain> RegularChain::Create(const NormalizedQuery& q,
                                          const EventDatabase& db,
                                          const ChainOptions& options) {
  RegularChain chain;
  LAHAR_ASSIGN_OR_RETURN(QueryNfa nfa, QueryNfa::Build(q));
  chain.nfa_ = std::make_shared<const QueryNfa>(std::move(nfa));
  LAHAR_ASSIGN_OR_RETURN(SymbolTable table,
                         SymbolTable::Build(q, db, options.stream_index));
  chain.symbols_ = std::make_shared<const SymbolTable>(std::move(table));
  chain.db_ = &db;
  chain.horizon_ = db.horizon();

  uint64_t radix = 1;
  size_t slot = 0;
  for (size_t pos = 0; pos < chain.symbols_->participating().size(); ++pos) {
    StreamId id = chain.symbols_->participating()[pos];
    const Stream& s = db.stream(id);
    Participant p;
    p.id = id;
    p.position = pos;
    p.markovian = s.markovian();
    p.radix = 1;
    p.hidden_slot = 0;
    if (s.markovian()) {
      // The joint hidden state is the product of the Markovian streams'
      // domains; past ~1e6 the exact chain is impractical and the caller
      // should ground the query per key (the paper's per-key processes).
      if (radix > 1000000 / s.domain_size()) {
        return Status::InvalidArgument(
            "joint hidden state of Markovian streams is too large; ground "
            "the query per key (run one chain per stream)");
      }
      p.radix = radix;
      p.hidden_slot = slot++;
      chain.radices_.push_back(radix);
      chain.kernel_domains_.push_back(
          static_cast<uint32_t>(s.domain_size()));
      radix *= s.domain_size();
      chain.markov_participants_.push_back(p);
    } else {
      chain.indep_participants_.push_back(p);
    }
    chain.participants_.push_back(p);
  }

  // Compile the transition kernel (budget permitting); the dynamic map path
  // stays available as the fallback and the semantic reference.
  if (options.kernel.max_flat_states > 0) {
    std::vector<KernelStream> profile;
    profile.reserve(chain.participants_.size());
    for (const Participant& p : chain.participants_) {
      const Stream& s = db.stream(p.id);
      KernelStream ks;
      ks.markovian = p.markovian;
      ks.radix = p.radix;
      ks.domain_size = static_cast<uint32_t>(s.domain_size());
      ks.masks.reserve(s.domain_size());
      for (DomainIndex d = 0; d < s.domain_size(); ++d) {
        ks.masks.push_back(chain.symbols_->MaskFor(p.position, d));
      }
      profile.push_back(std::move(ks));
    }
    std::shared_ptr<const CompiledKernel> kernel =
        options.kernel_cache != nullptr
            ? options.kernel_cache->FindOrCompile(*chain.nfa_, profile,
                                                  options.kernel)
            : CompileKernel(
                  *chain.nfa_, profile, options.kernel,
                  KernelSignature(*chain.nfa_, profile, options.kernel));
    if (kernel != nullptr) {
      int idx = kernel->MaskIndexOf(chain.nfa_->InitialStates());
      if (idx >= 0) {
        chain.kernel_ = std::move(kernel);
        const uint64_t R = chain.kernel_->R;

        // Step-path selection. kAuto takes the vectorized path only where
        // the dense-row model pays: a nontrivial hidden space under the
        // dense-row memory ceiling, with CPTs dense enough that multiplying
        // the zeros beats the CSR walk's skipping them. kSimd forces it
        // wherever structurally possible (the bit-identity tests sweep
        // every width, including R == 1).
        bool want_simd = false;
        if (options.step_mode == KernelStepMode::kSimd) {
          want_simd = R <= options.simd_max_hidden;
#if !defined(LAHAR_NO_SIMD)
        } else if (options.step_mode == KernelStepMode::kAuto) {
          double density = 1.0;
          for (const Participant& p : chain.markov_participants_) {
            const Stream& s = db.stream(p.id);
            if (s.horizon() < 2) continue;
            const Matrix& cpt = s.CptAt(1);
            size_t nz = 0, total = 0;
            for (size_t r = 0; r < cpt.rows(); ++r) {
              const double* row = cpt.Row(r);
              for (size_t c = 0; c < cpt.cols(); ++c) {
                ++total;
                if (row[c] > 0) ++nz;
              }
            }
            if (total > 0) density *= static_cast<double>(nz) / total;
          }
          want_simd = R >= 2 && R <= options.simd_max_hidden &&
                      density >= options.simd_min_density;
#endif  // !LAHAR_NO_SIMD
        }
        chain.simd_ = want_simd;
        chain.f32_rows_ = want_simd && options.float32_rows;
        if (want_simd && options.row_pool != nullptr) {
          // Structural class key only — kernel shape, tier, and domains.
          // CPT content is validated per timestep at reuse (RowContentKey),
          // not baked in here: a creation-time content hash would be O(CPT
          // bytes x horizon) per chain and, worse, go permanently stale the
          // moment a live stream's horizon grows (the streaming runtime
          // appends every tick). The t == 1 initial marginal is excluded
          // from both keys: per-key chains with distinct initials share one
          // class (t == 1 rows are always built locally; see ResolveRows).
          RowFingerprint fp;
          fp.Mix(chain.kernel_->signature.data(),
                 chain.kernel_->signature.size());
          fp.MixU64(chain.f32_rows_ ? 1 : 0);
          for (const Participant& p : chain.markov_participants_) {
            fp.MixU64(db.stream(p.id).domain_size());
          }
          chain.row_class_ = options.row_pool->FindOrCreate(fp);
        }

        const size_t stride = chain.kernel_->num_flat();
        chain.flat_.assign(2 * stride, 0.0);
        chain.cur_ = chain.flat_.data();
        chain.nxt_ = chain.flat_.data() + stride;
        // SIMD chains store state in slot layout; h == 0 maps through
        // slot_of (identity for scalar chains).
        const size_t h0 = chain.simd_ ? chain.kernel_->slot_of[0] : 0;
        chain.cur_[static_cast<size_t>(idx) * R + h0] = 1.0;
      }
    }
  }
  if (chain.kernel_ == nullptr) {
    chain.states_.emplace(Key{chain.nfa_->InitialStates(), 0}, 1.0);
  }
  return chain;
}

RegularChain::RegularChain(const RegularChain& o)
    : nfa_(o.nfa_),
      symbols_(o.symbols_),
      db_(o.db_),
      participants_(o.participants_),
      markov_participants_(o.markov_participants_),
      indep_participants_(o.indep_participants_),
      indep_dist_(o.indep_dist_),
      radices_(o.radices_),
      kernel_domains_(o.kernel_domains_),
      horizon_(o.horizon_),
      t_(o.t_),
      track_accept_(o.track_accept_),
      status_(o.status_),
      states_(o.states_),
      kernel_(o.kernel_),
      planes_(o.planes_),
      simd_(o.simd_),
      f32_rows_(o.f32_rows_),
      row_class_(o.row_class_),
      step_rows_(o.step_rows_),
      step_rows_t_(o.step_rows_t_),
      step_rows_fp_(o.step_rows_fp_) {
  FixupStorage(o);
}

RegularChain& RegularChain::operator=(const RegularChain& o) {
  if (this != &o) {
    RegularChain tmp(o);
    *this = std::move(tmp);
  }
  return *this;
}

RegularChain::RegularChain(RegularChain&& o) noexcept {
  *this = std::move(o);
}

RegularChain& RegularChain::operator=(RegularChain&& o) noexcept {
  if (this == &o) return *this;
  nfa_ = std::move(o.nfa_);
  symbols_ = std::move(o.symbols_);
  db_ = o.db_;
  participants_ = std::move(o.participants_);
  markov_participants_ = std::move(o.markov_participants_);
  indep_participants_ = std::move(o.indep_participants_);
  indep_dist_ = std::move(o.indep_dist_);
  radices_ = std::move(o.radices_);
  kernel_domains_ = std::move(o.kernel_domains_);
  horizon_ = o.horizon_;
  t_ = o.t_;
  track_accept_ = o.track_accept_;
  status_ = std::move(o.status_);
  states_ = std::move(o.states_);
  kernel_ = std::move(o.kernel_);
  planes_ = o.planes_;
  simd_ = o.simd_;
  f32_rows_ = o.f32_rows_;
  lane_stride_ = o.lane_stride_;
  row_class_ = std::move(o.row_class_);
  step_rows_ = std::move(o.step_rows_);
  step_rows_t_ = o.step_rows_t_;
  step_rows_fp_ = o.step_rows_fp_;
  // Moving flat_ transfers its heap buffer, so the source's cur_/nxt_
  // pointer values stay valid for *this (owned storage) and external arena
  // pointers transfer as-is (arena-bound storage).
  flat_ = std::move(o.flat_);
  cur_ = o.cur_;
  nxt_ = o.nxt_;
  scratch_ = std::move(o.scratch_);
  o.cur_ = nullptr;
  o.nxt_ = nullptr;
  o.kernel_.reset();
  o.states_.clear();
  return *this;
}

void RegularChain::FixupStorage(const RegularChain& o) {
  lane_stride_ = 1;  // a copy always owns contiguous storage
  if (kernel_ == nullptr || o.cur_ == nullptr) {
    cur_ = nullptr;
    nxt_ = nullptr;
    return;
  }
  const size_t stride = planes_ * kernel_->num_flat();
  if (!o.flat_.empty()) {
    flat_ = o.flat_;
    cur_ = flat_.data() + (o.cur_ - o.flat_.data());
    nxt_ = flat_.data() + (o.nxt_ - o.flat_.data());
  } else {
    // The source lives in an engine-owned arena (possibly lane-interleaved);
    // the copy owns its storage, de-strided but in the same slot layout.
    flat_.assign(2 * stride, 0.0);
    if (o.lane_stride_ == 1) {
      std::copy(o.cur_, o.cur_ + stride, flat_.data());
    } else {
      for (size_t i = 0; i < stride; ++i) flat_[i] = o.cur_[i * o.lane_stride_];
    }
    cur_ = flat_.data();
    nxt_ = flat_.data() + stride;
  }
}

// Distribution over the OR of the symbol masks contributed by all
// *independent* participating streams at timestep `next`. Streams are
// independent of each other and of the past, so this is computed once per
// step and shared by every chain state; collapsing domain values with equal
// masks keeps it tiny (typically 2-4 entries) no matter how many streams or
// how large their domains.
void RegularChain::BuildIndependentMaskDist(Timestamp next) {
  indep_dist_.clear();
  indep_dist_.emplace_back(0, 1.0);
  std::vector<std::pair<SymbolMask, double>>& stream_dist =
      scratch_.stream_dist;
  std::vector<std::pair<SymbolMask, double>>& merged = scratch_.merged;
  for (const Participant& part : indep_participants_) {
    const Stream& s = db_->stream(part.id);
    stream_dist.clear();
    if (next > s.horizon() || s.MarginalAt(next).empty()) {
      continue;  // certain bottom: contributes mask 0 with probability 1
    }
    const std::vector<double>& m = s.MarginalAt(next);
    for (DomainIndex d = 0; d < m.size(); ++d) {
      if (m[d] <= 0) continue;
      SymbolMask mask = symbols_->MaskFor(part.position, d);
      bool found = false;
      for (auto& [existing, p] : stream_dist) {
        if (existing == mask) {
          p += m[d];
          found = true;
          break;
        }
      }
      if (!found) stream_dist.emplace_back(mask, m[d]);
    }
    if (stream_dist.size() == 1 && stream_dist[0].first == 0) continue;
    // Convolve the running OR-distribution with this stream's.
    merged.clear();
    for (const auto& [acc_mask, acc_p] : indep_dist_) {
      for (const auto& [mask, p] : stream_dist) {
        SymbolMask combined = acc_mask | mask;
        double added = acc_p * p;
        bool found = false;
        for (auto& [existing, ep] : merged) {
          if (existing == combined) {
            ep += added;
            found = true;
            break;
          }
        }
        if (!found) merged.emplace_back(combined, added);
      }
    }
    indep_dist_.swap(merged);
  }
}

// Enumerates the joint assignment of the *Markovian* participating streams
// at timestep `next`, then crosses each combination with the shared
// independent-stream mask distribution. Frames carry the probability
// product *without* the source weight p; the final accumulate groups it as
// (p * frame) * indep — the exact multiplication tree the kernel path uses.
void RegularChain::EnumerateSuccessors(const Key& key, double p,
                                       Timestamp next, StateMap* out) {
  struct Frame {
    SymbolMask input = 0;
    uint64_t hidden = 0;
    double prob = 1.0;
  };
  std::vector<Frame> frontier{{0, 0, 1.0}};
  std::vector<Frame> scratch;
  for (const Participant& part : markov_participants_) {
    const Stream& s = db_->stream(part.id);
    scratch.clear();
    if (next > s.horizon()) {
      // Stream over: certain bottom, contributes nothing to the input.
      for (const Frame& f : frontier) scratch.push_back(f);
    } else if (next > 1) {
      const Matrix& cpt = s.CptAt(next - 1);
      const DomainIndex d = static_cast<DomainIndex>(
          (key.hidden / part.radix) % s.domain_size());
      const double* row = cpt.Row(d);
      for (const Frame& f : frontier) {
        for (DomainIndex d2 = 0; d2 < s.domain_size(); ++d2) {
          double q = row[d2];
          if (q <= 0) continue;
          Frame nf = f;
          nf.prob *= q;
          nf.input |= symbols_->MaskFor(part.position, d2);
          nf.hidden += part.radix * d2;
          scratch.push_back(nf);
        }
      }
    } else {
      const std::vector<double>& m = s.MarginalAt(next);
      if (m.empty()) {
        for (const Frame& f : frontier) scratch.push_back(f);
      } else {
        for (const Frame& f : frontier) {
          for (DomainIndex d2 = 0; d2 < m.size(); ++d2) {
            double q = m[d2];
            if (q <= 0) continue;
            Frame nf = f;
            nf.prob *= q;
            nf.input |= symbols_->MaskFor(part.position, d2);
            nf.hidden += part.radix * d2;
            scratch.push_back(nf);
          }
        }
      }
    }
    frontier.swap(scratch);
  }
  const StateMask base_mask = key.mask & ~kAcceptedFlag;
  const bool was_accepted = (key.mask & kAcceptedFlag) != 0;
  for (const Frame& f : frontier) {
    const double w = p * f.prob;
    for (const auto& [imask, ip] : indep_dist_) {
      StateMask next_mask = nfa_->Transition(base_mask, f.input | imask);
      if (track_accept_ && (was_accepted || nfa_->Accepts(next_mask))) {
        next_mask |= kAcceptedFlag;
      }
      (*out)[Key{next_mask, f.hidden}] += w * ip;
    }
  }
}

void RegularChain::StepMap(Timestamp next) {
  std::vector<std::pair<Key, double>>& sorted = scratch_.sorted;
  sorted.assign(states_.begin(), states_.end());
  SortCanonical(&sorted);
  StateMap out;
  out.reserve(states_.size() * 2);
  for (const auto& [key, p] : sorted) {
    EnumerateSuccessors(key, p, next, &out);
  }
  states_.swap(out);
}

// Builds the per-step CSR rows: for every live joint hidden code h, the
// (successor code h2, probability) pairs in exactly the enumeration order
// (and with the same partial-product grouping) as EnumerateSuccessors.
void RegularChain::BuildHiddenRows(Timestamp next) {
  const uint64_t R = kernel_->R;
  Scratch& s = scratch_;
  s.row_ptr.assign(R + 1, 0);
  s.csr_h.clear();
  s.csr_p.clear();
  for (uint64_t h = 0; h < R; ++h) {
    if (s.live[h]) {
      s.frames.clear();
      s.frames.emplace_back(0, 1.0);
      for (const Participant& part : markov_participants_) {
        const Stream& st = db_->stream(part.id);
        const uint32_t dom = kernel_domains_[part.hidden_slot];
        s.frames2.clear();
        if (next > st.horizon()) {
          s.frames2 = s.frames;  // ended: digit 0, probability 1
        } else if (next > 1) {
          const Matrix& cpt = st.CptAt(next - 1);
          const DomainIndex d =
              static_cast<DomainIndex>((h / part.radix) % dom);
          const double* row = cpt.Row(d);
          for (const auto& [h2, pr] : s.frames) {
            for (DomainIndex d2 = 0; d2 < dom; ++d2) {
              const double q = row[d2];
              if (q <= 0) continue;
              s.frames2.emplace_back(h2 + part.radix * d2, pr * q);
            }
          }
        } else {
          const std::vector<double>& m = st.MarginalAt(next);
          if (m.empty()) {
            s.frames2 = s.frames;
          } else {
            for (const auto& [h2, pr] : s.frames) {
              for (DomainIndex d2 = 0; d2 < m.size(); ++d2) {
                const double q = m[d2];
                if (q <= 0) continue;
                s.frames2.emplace_back(h2 + part.radix * d2, pr * q);
              }
            }
          }
        }
        s.frames.swap(s.frames2);
      }
      for (const auto& [h2, pr] : s.frames) {
        s.csr_h.push_back(static_cast<uint32_t>(h2));
        s.csr_p.push_back(pr);
      }
    }
    s.row_ptr[h + 1] = static_cast<uint32_t>(s.csr_h.size());
  }
}

// Structural guards + per-step class tables shared by every kernel-path
// step: the compiled digit layout and mask classes assume the domains fixed
// at creation. A surprise (a stream domain that grew, an independent mask
// outside the compiled alphabet) returns false — mutating nothing — and the
// caller falls back to the dynamic map path for the rest of the chain's
// life. StepStripe relies on the non-mutation to probe eligibility.
bool RegularChain::FillStepTables() {
  const CompiledKernel& k = *kernel_;
  const size_t E = indep_dist_.size();
  Scratch& s = scratch_;
  for (size_t i = 0; i < markov_participants_.size(); ++i) {
    const Stream& st = db_->stream(markov_participants_[i].id);
    if (st.domain_size() != kernel_domains_[i]) return false;
  }
  s.indep_p.resize(E);
  s.step_cls.assign(static_cast<size_t>(k.num_markov_classes) * E, 0);
  for (size_t e = 0; e < E; ++e) {
    const int ic = k.IndepClassOf(indep_dist_[e].first);
    if (ic < 0) return false;
    s.indep_p[e] = indep_dist_[e].second;
    for (uint32_t mc = 0; mc < k.num_markov_classes; ++mc) {
      s.step_cls[static_cast<size_t>(mc) * E + e] =
          k.pair_class[static_cast<size_t>(mc) * k.indep_masks.size() + ic];
    }
  }
  return true;
}

bool RegularChain::StepKernel(Timestamp next) {
  const CompiledKernel& k = *kernel_;
  const size_t M = k.masks.size();
  const uint64_t R = k.R;
  const size_t E = indep_dist_.size();
  Scratch& s = scratch_;

  if (!FillStepTables()) {
    DematerializeToMap();
    return false;
  }

  // Live joint hidden codes across all planes and state sets: the CSR rows
  // below are built once per live code and shared by every state set — the
  // work the map path redoes per (state set, hidden) pair.
  s.live.assign(R, 0);
  const size_t stride = planes_ * M * R;
  for (size_t block = 0; block < planes_ * M; ++block) {
    const double* src = cur_ + block * R;
    for (uint64_t h = 0; h < R; ++h) {
      if (src[h] != 0.0) s.live[h] = 1;
    }
  }
  BuildHiddenRows(next);

  // Double-buffered sparse mat-vec over the flat state. Source order
  // (plane, mask index, hidden) is the canonical order; see SortCanonical.
  std::fill(nxt_, nxt_ + stride, 0.0);
  const uint32_t C = k.num_inputs;
  for (size_t a = 0; a < planes_; ++a) {
    for (size_t mi = 0; mi < M; ++mi) {
      const double* src = cur_ + (a * M + mi) * R;
      const uint32_t* trow = &k.trans[mi * C];
      for (uint64_t h = 0; h < R; ++h) {
        const double p = src[h];
        if (p == 0.0) continue;
        for (uint32_t j = s.row_ptr[h]; j < s.row_ptr[h + 1]; ++j) {
          const uint64_t h2 = s.csr_h[j];
          const double w = p * s.csr_p[j];
          const uint32_t* cls = &s.step_cls[k.markov_class[h2] * E];
          for (size_t e = 0; e < E; ++e) {
            const uint32_t tr = trow[cls[e]];
            const size_t a2 = track_accept_ ? (a | (tr & 1u)) : 0;
            nxt_[(a2 * M + (tr >> 1)) * R + h2] += w * s.indep_p[e];
          }
        }
      }
    }
  }
  std::swap(cur_, nxt_);
  return true;
}

// Dense successor rows for `next` in slot space. Values are built with
// BuildHiddenRows' exact enumeration (participant order, left-associated
// products, q <= 0 skipped) and scattered into zeroed rows, so every
// nonzero is bitwise equal to the CSR value; distinct digit combinations
// give distinct successor codes, so the scatter never collides.
std::shared_ptr<const TransitionRowSet> RegularChain::BuildRowSet(
    Timestamp next) const {
  const CompiledKernel& k = *kernel_;
  const uint64_t R = k.R;
  auto set = std::make_shared<TransitionRowSet>();
  set->R = R;
  // With no participant in CPT phase (t == 1 marginal, or every stream
  // ended) the successor distribution is source-independent: one row.
  bool broadcast = true;
  for (const Participant& part : markov_participants_) {
    const Stream& st = db_->stream(part.id);
    if (next > 1 && next <= st.horizon()) {
      broadcast = false;
      break;
    }
  }
  set->broadcast = broadcast;
  const uint64_t num_rows = broadcast ? 1 : R;
  std::vector<double> dense(num_rows * R, 0.0);
  std::vector<std::pair<uint64_t, double>> frames, frames2;
  for (uint64_t h = 0; h < num_rows; ++h) {
    frames.clear();
    frames.emplace_back(0, 1.0);
    for (const Participant& part : markov_participants_) {
      const Stream& st = db_->stream(part.id);
      const uint32_t dom = kernel_domains_[part.hidden_slot];
      frames2.clear();
      if (next > st.horizon()) {
        frames2 = frames;  // ended: digit 0, probability 1
      } else if (next > 1) {
        const Matrix& cpt = st.CptAt(next - 1);
        const DomainIndex d = static_cast<DomainIndex>((h / part.radix) % dom);
        const double* row = cpt.Row(d);
        for (const auto& [h2, pr] : frames) {
          for (DomainIndex d2 = 0; d2 < dom; ++d2) {
            const double q = row[d2];
            if (q <= 0) continue;
            frames2.emplace_back(h2 + part.radix * d2, pr * q);
          }
        }
      } else {
        const std::vector<double>& m = st.MarginalAt(next);
        if (m.empty()) {
          frames2 = frames;
        } else {
          for (const auto& [h2, pr] : frames) {
            for (DomainIndex d2 = 0; d2 < m.size(); ++d2) {
              const double q = m[d2];
              if (q <= 0) continue;
              frames2.emplace_back(h2 + part.radix * d2, pr * q);
            }
          }
        }
      }
      frames.swap(frames2);
    }
    double* out = dense.data() + h * R;
    for (const auto& [h2, pr] : frames) out[k.slot_of[h2]] = pr;
  }
  if (f32_rows_) {
    set->f32 = true;
    set->rows_f.resize(dense.size());
    for (size_t i = 0; i < dense.size(); ++i) {
      set->rows_f[i] = static_cast<float>(dense[i]);
    }
  } else {
    set->rows = std::move(dense);
  }
  return set;
}

// Content key of the rows for timestep `next`: per participant, the digest
// of the CPT slice the step multiplies through, or an ended marker past
// the horizon. Slices are append-immutable, so the key for a covered tick
// never changes as a live stream grows; an "ended" row built ahead of the
// data keys differently from the post-append row and can never be read
// stale. The digests are maintained by Stream at slice write time, so this
// costs O(participants) per tick, not O(CPT bytes).
RowFingerprint RegularChain::RowContentKey(Timestamp next) const {
  RowFingerprint fp;
  fp.MixU64(next);
  for (const Participant& part : markov_participants_) {
    const Stream& st = db_->stream(part.id);
    if (next > st.horizon()) {
      fp.MixU64(0);  // ended: digit 0, probability 1
      continue;
    }
    const std::array<uint64_t, 2>& d = st.CptDigestAt(next - 1);
    fp.MixU64(1);  // covered marker: distinguishes from the ended case
    fp.MixU64(d[0]);
    fp.MixU64(d[1]);
  }
  return fp;
}

std::shared_ptr<const TransitionRowSet> RegularChain::ResolveRows(
    Timestamp next) {
  if (step_rows_ != nullptr && step_rows_t_ == next) return step_rows_;
  // t == 1 rows depend on the initial marginals, which the keys
  // deliberately exclude — never pooled.
  if (row_class_ != nullptr && next > 1) {
    step_rows_fp_ = RowContentKey(next);
    std::shared_ptr<const TransitionRowSet> set =
        row_class_->Find(next, step_rows_fp_);
    if (set == nullptr) {
      set = row_class_->Insert(next, step_rows_fp_, BuildRowSet(next));
    }
    step_rows_ = std::move(set);
  } else {
    step_rows_ = BuildRowSet(next);
  }
  step_rows_t_ = next;
  return step_rows_;
}

// Vectorized per-chain step: same source order (plane, mask index, hidden
// code ascending) and multiplication tree fl(fl(p*q)*ip) as StepKernel, but
// the inner walk is stripe-wise dense — w[slot] = p * row[slot] over the
// whole row, then one contiguous axpy per (class segment, indep entry) into
// the destination block. The extra zero-row entries add +0.0 to accumulators
// that start at +0.0 and only ever receive non-negative terms: a bitwise
// no-op, so the result is EXPECT_EQ-identical to the scalar reference.
bool RegularChain::StepKernelSimd(Timestamp next) {
  const CompiledKernel& k = *kernel_;
  const size_t M = k.masks.size();
  const uint64_t R = k.R;
  const size_t E = indep_dist_.size();
  const size_t L = lane_stride_;
  Scratch& s = scratch_;

  if (!FillStepTables()) {
    DematerializeToMap();
    return false;
  }
  const std::shared_ptr<const TransitionRowSet> rows = ResolveRows(next);

  s.w.resize(R);
  const size_t stride = planes_ * M * R;
  if (L == 1) {
    std::fill(nxt_, nxt_ + stride, 0.0);
  } else {
    for (size_t i = 0; i < stride; ++i) nxt_[i * L] = 0.0;
  }
  const uint32_t C = k.num_inputs;
  for (size_t a = 0; a < planes_; ++a) {
    for (size_t mi = 0; mi < M; ++mi) {
      const double* src = cur_ + (a * M + mi) * R * L;
      const uint32_t* trow = &k.trans[mi * C];
      for (uint64_t h = 0; h < R; ++h) {
        const double p = src[k.slot_of[h] * L];
        if (p == 0.0) continue;
        if (rows->f32) {
          simd::ScaleRowF32(s.w.data(), rows->RowF(h), p, R);
        } else {
          simd::ScaleRow(s.w.data(), rows->Row(h), p, R);
        }
        for (const CompiledKernel::ClassSegment& seg : k.class_segments) {
          const uint32_t* cls = &s.step_cls[static_cast<size_t>(seg.cls) * E];
          const size_t len = seg.end - seg.begin;
          for (size_t e = 0; e < E; ++e) {
            const uint32_t tr = trow[cls[e]];
            const size_t a2 = track_accept_ ? (a | (tr & 1u)) : 0;
            double* dst = nxt_ + ((a2 * M + (tr >> 1)) * R + seg.begin) * L;
            simd::AxpyConstStrided(dst, s.w.data() + seg.begin, s.indep_p[e],
                                   len, L);
          }
        }
      }
    }
  }
  std::swap(cur_, nxt_);
  return true;
}

bool RegularChain::StepStripe(RegularChain* const* chains, size_t n,
                              Timestamp next) {
  RegularChain& c0 = *chains[0];
  if (c0.kernel_ == nullptr) return false;
  // Structural eligibility: every lane must share the leader's kernel and
  // arena interleave and sit at the same clock/parity. Any storage change
  // (dematerialize, accept tracking re-owning, a copy) breaks the cur_
  // base check and parks the stripe on the per-chain path for good.
  for (size_t j = 0; j < n; ++j) {
    RegularChain& c = *chains[j];
    if (c.kernel_.get() != c0.kernel_.get() || !c.simd_ ||
        c.lane_stride_ != n || c.planes_ != 1 || c.track_accept_ ||
        !c.flat_.empty() || c.t_ + 1 != next || c.cur_ != c0.cur_ + j ||
        c.nxt_ != c0.nxt_ + j) {
      return false;
    }
    if (!c.symbols_->CoversDomains(*c.db_)) return false;
  }
  // Per-lane step tables; a structural surprise or divergent independent
  // mask sequence falls back (the per-chain path redoes this work — the
  // calls are idempotent and non-mutating on failure).
  for (size_t j = 0; j < n; ++j) {
    RegularChain& c = *chains[j];
    c.BuildIndependentMaskDist(next);
    if (!c.FillStepTables()) return false;
    if (c.indep_dist_.size() != c0.indep_dist_.size()) return false;
    for (size_t e = 0; e < c.indep_dist_.size(); ++e) {
      if (c.indep_dist_[e].first != c0.indep_dist_[e].first) return false;
    }
  }
  // All lanes must read the same row content; pooled classes converge on
  // one TransitionRowSet pointer, chain-local builds (t == 1, no pool,
  // horizon drift) do not and step per-chain.
  const std::shared_ptr<const TransitionRowSet> rows = c0.ResolveRows(next);
  for (size_t j = 1; j < n; ++j) {
    if (chains[j]->ResolveRows(next) != rows) return false;
  }

  const CompiledKernel& k = *c0.kernel_;
  const size_t M = k.masks.size();
  const uint64_t R = k.R;
  const size_t E = c0.indep_dist_.size();
  Scratch& s = c0.scratch_;
  s.w.resize(R * n);
  s.ip_lanes.resize(E * n);
  for (size_t j = 0; j < n; ++j) {
    for (size_t e = 0; e < E; ++e) {
      s.ip_lanes[e * n + j] = chains[j]->scratch_.indep_p[e];
    }
  }

  // Wide step: identical (mask index, hidden, segment, indep entry) order
  // as the per-chain path, with every lane advancing in lockstep. Lanes
  // whose source probability is zero contribute +0.0 terms — a bitwise
  // no-op (see StepKernelSimd) — so mixed-liveness stripes stay identical
  // to stepping each lane alone.
  double* nxt0 = c0.nxt_;
  const double* cur0 = c0.cur_;
  std::fill(nxt0, nxt0 + M * R * n, 0.0);
  const uint32_t C = k.num_inputs;
  for (size_t mi = 0; mi < M; ++mi) {
    const double* src = cur0 + mi * R * n;
    const uint32_t* trow = &k.trans[mi * C];
    for (uint64_t h = 0; h < R; ++h) {
      const double* p = src + k.slot_of[h] * n;
      if (!simd::AnyNonzero(p, n)) continue;
      if (rows->f32) {
        simd::StripeWeightsF32(s.w.data(), p, rows->RowF(h), R, n);
      } else {
        simd::StripeWeights(s.w.data(), p, rows->Row(h), R, n);
      }
      for (const CompiledKernel::ClassSegment& seg : k.class_segments) {
        const uint32_t* cls = &s.step_cls[static_cast<size_t>(seg.cls) * E];
        const size_t len = seg.end - seg.begin;
        for (size_t e = 0; e < E; ++e) {
          const uint32_t tr = trow[cls[e]];
          double* dst =
              nxt0 + (static_cast<size_t>(tr >> 1) * R + seg.begin) * n;
          simd::StripeAccum(dst, s.w.data() + seg.begin * n,
                            &s.ip_lanes[e * n], len, n);
        }
      }
    }
  }
  for (size_t j = 0; j < n; ++j) {
    RegularChain& c = *chains[j];
    std::swap(c.cur_, c.nxt_);
    c.t_ = next;
  }
  return true;
}

void RegularChain::DematerializeToMap() {
  const CompiledKernel& k = *kernel_;
  const size_t M = k.masks.size();
  const uint64_t R = k.R;
  states_.clear();
  for (size_t a = 0; a < planes_; ++a) {
    for (size_t mi = 0; mi < M; ++mi) {
      const double* src = cur_ + (a * M + mi) * R * lane_stride_;
      const StateMask mask = k.masks[mi] | (a != 0 ? kAcceptedFlag : 0);
      for (uint64_t h = 0; h < R; ++h) {
        const uint64_t slot = simd_ ? k.slot_of[h] : h;
        const double p = src[slot * lane_stride_];
        if (p != 0.0) states_.emplace(Key{mask, h}, p);
      }
    }
  }
  kernel_.reset();
  flat_.clear();
  flat_.shrink_to_fit();
  cur_ = nullptr;
  nxt_ = nullptr;
  planes_ = 1;
  simd_ = false;
  f32_rows_ = false;
  lane_stride_ = 1;
  row_class_.reset();
  step_rows_.reset();
}

void RegularChain::RefreshSymbols() {
  Result<SymbolTable> grown = symbols_->WithGrownDomains(*db_);
  if (!grown.ok()) {
    // Keep serving with the old table — MaskFor bounds-checks, so unknown
    // values contribute no symbols — and surface the failure via status().
    if (status_.ok()) status_ = grown.status();
    return;
  }
  symbols_ = std::make_shared<const SymbolTable>(std::move(*grown));
}

double RegularChain::Step() {
  Timestamp next = t_ + 1;
  // Live serving interns domain values mid-stream; extend the symbol table
  // before reading it. If the grown value's mask falls outside the compiled
  // alphabet, StepKernel's structural guard dematerializes to the map path;
  // a mask already in the alphabet keeps the kernel running bit-identically.
  if (!symbols_->CoversDomains(*db_)) RefreshSymbols();
  BuildIndependentMaskDist(next);
  const bool stepped =
      kernel_ != nullptr &&
      (simd_ ? StepKernelSimd(next) : StepKernel(next));
  if (!stepped) StepMap(next);
  t_ = next;
  return AcceptProb();
}

void RegularChain::EnableAcceptTracking() {
  track_accept_ = true;
  if (kernel_ != nullptr && planes_ == 1) {
    // Grow to two planes (unaccepted, accepted). If the chain lived in an
    // engine arena it switches to owned (contiguous, de-strided) storage —
    // accept tracking is a safe-plan feature and those chains are never
    // arena-batched.
    const size_t plane = kernel_->num_flat();
    std::vector<double> grown(4 * plane, 0.0);
    if (lane_stride_ == 1) {
      std::copy(cur_, cur_ + plane, grown.data());
    } else {
      for (size_t i = 0; i < plane; ++i) grown[i] = cur_[i * lane_stride_];
    }
    flat_ = std::move(grown);
    planes_ = 2;
    lane_stride_ = 1;
    cur_ = flat_.data();
    nxt_ = flat_.data() + 2 * plane;
  }
}

double RegularChain::AcceptProb() const {
  double total = 0;
  if (kernel_ != nullptr) {
    const size_t M = kernel_->masks.size();
    const uint64_t R = kernel_->R;
    if (simd_) {
      // Slot layout: sum in canonical h order through the permutation so
      // the reduction sequence matches the scalar path bitwise.
      for (size_t a = 0; a < planes_; ++a) {
        for (size_t mi = 0; mi < M; ++mi) {
          if (!kernel_->accepts[mi]) continue;
          const double* src = cur_ + (a * M + mi) * R * lane_stride_;
          for (uint64_t h = 0; h < R; ++h) {
            total += src[kernel_->slot_of[h] * lane_stride_];
          }
        }
      }
      return total;
    }
    for (size_t a = 0; a < planes_; ++a) {
      for (size_t mi = 0; mi < M; ++mi) {
        if (!kernel_->accepts[mi]) continue;
        const double* src = cur_ + (a * M + mi) * R;
        for (uint64_t h = 0; h < R; ++h) total += src[h];
      }
    }
    return total;
  }
  std::vector<std::pair<Key, double>> sorted(states_.begin(), states_.end());
  SortCanonical(&sorted);
  for (const auto& [key, p] : sorted) {
    if (nfa_->Accepts(key.mask & ~kAcceptedFlag)) total += p;
  }
  return total;
}

double RegularChain::AcceptedProb() const {
  double total = 0;
  if (kernel_ != nullptr) {
    if (planes_ < 2) return 0.0;
    // Two-plane chains always own contiguous storage (EnableAcceptTracking
    // de-strides), and the accepted plane is a straight (mask index, h)
    // walk; in slot layout the per-mask sum reorders h, but a sum of the
    // same mask-block in canonical order is needed for bit-identity:
    const size_t M = kernel_->masks.size();
    const uint64_t R = kernel_->R;
    const double* src = cur_ + kernel_->num_flat();
    if (simd_) {
      for (size_t mi = 0; mi < M; ++mi) {
        const double* block = src + mi * R;
        for (uint64_t h = 0; h < R; ++h) {
          total += block[kernel_->slot_of[h]];
        }
      }
      return total;
    }
    for (size_t i = 0; i < kernel_->num_flat(); ++i) total += src[i];
    return total;
  }
  std::vector<std::pair<Key, double>> sorted(states_.begin(), states_.end());
  SortCanonical(&sorted);
  for (const auto& [key, p] : sorted) {
    if (key.mask & kAcceptedFlag) total += p;
  }
  return total;
}

size_t RegularChain::NumStates() const {
  if (kernel_ == nullptr) return states_.size();
  const size_t stride = planes_ * kernel_->num_flat();
  size_t live = 0;
  for (size_t i = 0; i < stride; ++i) {
    if (cur_[i * lane_stride_] != 0.0) ++live;
  }
  return live;
}

size_t RegularChain::FlatStride() const {
  return kernel_ != nullptr ? planes_ * kernel_->num_flat() : 0;
}

size_t RegularChain::StepCost() const {
  return kernel_ != nullptr ? FlatStride()
                            : std::max<size_t>(1, states_.size());
}

std::vector<RegularChain::ParticipantSummary>
RegularChain::ParticipantSummaries() const {
  std::vector<ParticipantSummary> out;
  out.reserve(participants_.size());
  for (const Participant& p : participants_) {
    out.push_back({p.id, p.position, p.markovian});
  }
  return out;
}

size_t RegularChain::OwnedBytes() const {
  size_t total = flat_.capacity() * sizeof(double);
  const Scratch& s = scratch_;
  total += s.stream_dist.capacity() * sizeof(s.stream_dist[0]);
  total += s.merged.capacity() * sizeof(s.merged[0]);
  total += s.sorted.capacity() * sizeof(s.sorted[0]);
  total += s.live.capacity();
  total += s.row_ptr.capacity() * sizeof(uint32_t);
  total += s.csr_h.capacity() * sizeof(uint32_t);
  total += s.csr_p.capacity() * sizeof(double);
  total += s.frames.capacity() * sizeof(s.frames[0]);
  total += s.frames2.capacity() * sizeof(s.frames2[0]);
  total += s.step_cls.capacity() * sizeof(uint32_t);
  total += s.indep_p.capacity() * sizeof(double);
  total += s.w.capacity() * sizeof(double);
  total += s.ip_lanes.capacity() * sizeof(double);
  // Chain-local (non-pooled) rows are this chain's own weight; pooled rows
  // belong to the shared class and are reported engine-side, deduped.
  if (step_rows_ != nullptr &&
      (row_class_ == nullptr ||
       row_class_->Find(step_rows_t_, step_rows_fp_) != step_rows_)) {
    total += step_rows_->bytes();
  }
  // Map-path states: node + bucket estimate per live entry.
  total += states_.size() * (sizeof(Key) + sizeof(double) + 2 * sizeof(void*));
  return total;
}

void RegularChain::BindArena(double* cur, double* nxt, size_t lane_stride) {
  if (kernel_ == nullptr) return;
  const size_t stride = FlatStride();
  for (size_t i = 0; i < stride; ++i) {
    cur[i * lane_stride] = cur_[i * lane_stride_];
    nxt[i * lane_stride] = 0.0;
  }
  flat_.clear();
  flat_.shrink_to_fit();
  cur_ = cur;
  nxt_ = nxt;
  lane_stride_ = lane_stride;
}

void RegularChain::SaveState(serial::Writer* w) const {
  w->U32(t_);
  w->U8(track_accept_ ? 1 : 0);
  // Per-slot domain sizes at save time. Decoding digits with the *current*
  // domain size matches exactly how EnumerateSuccessors interprets hidden
  // codes, and the restored chain (built over the restored database, which
  // has these same sizes) re-encodes with its own radices.
  w->U64(markov_participants_.size());
  std::vector<uint64_t> domains(markov_participants_.size());
  for (size_t i = 0; i < markov_participants_.size(); ++i) {
    domains[i] = db_->stream(markov_participants_[i].id).domain_size();
    w->U64(domains[i]);
  }
  // Live entries in canonical (mask, hidden) order — kernel flat-walk and
  // sorted map produce the same sequence.
  std::vector<std::pair<Key, double>> entries;
  if (kernel_ != nullptr) {
    const CompiledKernel& k = *kernel_;
    const size_t M = k.masks.size();
    const uint64_t R = k.R;
    for (size_t a = 0; a < planes_; ++a) {
      for (size_t mi = 0; mi < M; ++mi) {
        const double* src = cur_ + (a * M + mi) * R * lane_stride_;
        const StateMask mask = k.masks[mi] | (a != 0 ? kAcceptedFlag : 0);
        for (uint64_t h = 0; h < R; ++h) {
          const uint64_t slot = simd_ ? k.slot_of[h] : h;
          const double p = src[slot * lane_stride_];
          if (p != 0.0) entries.push_back({Key{mask, h}, p});
        }
      }
    }
    SortCanonical(&entries);
  } else {
    entries.assign(states_.begin(), states_.end());
    SortCanonical(&entries);
  }
  w->U64(entries.size());
  for (const auto& [key, p] : entries) {
    w->U64(key.mask);
    for (size_t i = 0; i < markov_participants_.size(); ++i) {
      w->U64((key.hidden / radices_[i]) % domains[i]);
    }
    w->F64(p);
  }
}

Status RegularChain::LoadState(serial::Reader* r) {
  uint32_t t;
  uint8_t track;
  uint64_t num_slots;
  LAHAR_RETURN_NOT_OK(r->U32(&t));
  LAHAR_RETURN_NOT_OK(r->U8(&track));
  LAHAR_RETURN_NOT_OK(r->U64(&num_slots));
  if (num_slots != markov_participants_.size()) {
    return Status::InvalidArgument(
        "chain snapshot has " + std::to_string(num_slots) +
        " Markovian slots, this chain has " +
        std::to_string(markov_participants_.size()) +
        " (different query or database?)");
  }
  std::vector<uint64_t> domains(num_slots);
  for (size_t i = 0; i < num_slots; ++i) {
    LAHAR_RETURN_NOT_OK(r->U64(&domains[i]));
    const uint64_t here = db_->stream(markov_participants_[i].id).domain_size();
    if (domains[i] != here) {
      return Status::InvalidArgument(
          "chain snapshot slot " + std::to_string(i) + " has domain size " +
          std::to_string(domains[i]) + ", restored database has " +
          std::to_string(here) + " (snapshot/database mismatch)");
    }
  }
  uint64_t num_entries;
  LAHAR_RETURN_NOT_OK(r->U64(&num_entries));
  std::vector<std::pair<Key, double>> entries;
  entries.reserve(num_entries);
  bool any_accept_flag = false;
  for (uint64_t e = 0; e < num_entries; ++e) {
    Key key{0, 0};
    LAHAR_RETURN_NOT_OK(r->U64(&key.mask));
    for (size_t i = 0; i < num_slots; ++i) {
      uint64_t digit;
      LAHAR_RETURN_NOT_OK(r->U64(&digit));
      if (digit >= domains[i]) {
        return Status::InvalidArgument("chain snapshot digit out of domain");
      }
      key.hidden += radices_[i] * digit;
    }
    double p;
    LAHAR_RETURN_NOT_OK(r->F64(&p));
    any_accept_flag = any_accept_flag || (key.mask & kAcceptedFlag) != 0;
    entries.push_back({key, p});
  }
  if (track != 0 && !track_accept_) EnableAcceptTracking();
  // Route into whichever path this chain was built with. The kernel can
  // only host the state if every saved mask is in its reachable set (and
  // accept-flagged mass has a second plane); otherwise fall back to the
  // map, which hosts anything.
  bool use_kernel = kernel_ != nullptr && (!any_accept_flag || planes_ == 2);
  if (use_kernel) {
    for (const auto& [key, p] : entries) {
      if (kernel_->MaskIndexOf(key.mask & ~kAcceptedFlag) < 0 ||
          key.hidden >= kernel_->R) {
        use_kernel = false;
        break;
      }
    }
  }
  if (kernel_ != nullptr && !use_kernel) DematerializeToMap();
  if (use_kernel) {
    const CompiledKernel& k = *kernel_;
    const size_t M = k.masks.size();
    const size_t stride = planes_ * k.num_flat();
    for (size_t i = 0; i < stride; ++i) {
      cur_[i * lane_stride_] = 0.0;
      nxt_[i * lane_stride_] = 0.0;
    }
    for (const auto& [key, p] : entries) {
      const size_t a = (key.mask & kAcceptedFlag) != 0 ? 1 : 0;
      const size_t mi = static_cast<size_t>(k.MaskIndexOf(key.mask &
                                                          ~kAcceptedFlag));
      const uint64_t slot = simd_ ? k.slot_of[key.hidden] : key.hidden;
      cur_[((a * M + mi) * k.R + slot) * lane_stride_] = p;
    }
  } else {
    states_.clear();
    for (const auto& [key, p] : entries) states_[key] += p;
  }
  t_ = t;
  status_ = Status::OK();
  return Status::OK();
}

Result<RegularEngine> RegularEngine::Create(const NormalizedQuery& q,
                                            const EventDatabase& db,
                                            const ChainOptions& options) {
  LAHAR_ASSIGN_OR_RETURN(RegularChain chain,
                         RegularChain::Create(q, db, options));
  return RegularEngine(std::move(chain));
}

std::vector<double> RegularEngine::Run() {
  std::vector<double> probs(chain_.horizon() + 1, 0.0);
  for (Timestamp t = 1; t <= chain_.horizon(); ++t) {
    probs[t] = chain_.Step();
  }
  return probs;
}

}  // namespace lahar
