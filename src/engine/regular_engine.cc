#include "engine/regular_engine.h"

#include <algorithm>

namespace lahar {

Result<RegularChain> RegularChain::Create(const NormalizedQuery& q,
                                          const EventDatabase& db) {
  RegularChain chain;
  LAHAR_ASSIGN_OR_RETURN(QueryNfa nfa, QueryNfa::Build(q));
  chain.nfa_ = std::make_shared<const QueryNfa>(std::move(nfa));
  LAHAR_ASSIGN_OR_RETURN(SymbolTable table, SymbolTable::Build(q, db));
  chain.symbols_ = std::make_shared<const SymbolTable>(std::move(table));
  chain.db_ = &db;
  chain.horizon_ = db.horizon();

  uint64_t radix = 1;
  size_t slot = 0;
  for (size_t pos = 0; pos < chain.symbols_->participating().size(); ++pos) {
    StreamId id = chain.symbols_->participating()[pos];
    const Stream& s = db.stream(id);
    Participant p;
    p.id = id;
    p.position = pos;
    p.markovian = s.markovian();
    p.radix = 1;
    p.hidden_slot = 0;
    if (s.markovian()) {
      // The joint hidden state is the product of the Markovian streams'
      // domains; past ~1e6 the exact chain is impractical and the caller
      // should ground the query per key (the paper's per-key processes).
      if (radix > 1000000 / s.domain_size()) {
        return Status::InvalidArgument(
            "joint hidden state of Markovian streams is too large; ground "
            "the query per key (run one chain per stream)");
      }
      p.radix = radix;
      p.hidden_slot = slot++;
      chain.radices_.push_back(radix);
      radix *= s.domain_size();
      chain.markov_participants_.push_back(p);
    } else {
      chain.indep_participants_.push_back(p);
    }
    chain.participants_.push_back(p);
  }
  chain.states_.emplace(Key{chain.nfa_->InitialStates(), 0}, 1.0);
  return chain;
}

// Distribution over the OR of the symbol masks contributed by all
// *independent* participating streams at timestep `next`. Streams are
// independent of each other and of the past, so this is computed once per
// step and shared by every chain state; collapsing domain values with equal
// masks keeps it tiny (typically 2-4 entries) no matter how many streams or
// how large their domains.
void RegularChain::BuildIndependentMaskDist(Timestamp next) {
  indep_dist_.clear();
  indep_dist_.emplace_back(0, 1.0);
  std::vector<std::pair<SymbolMask, double>> stream_dist;
  std::vector<std::pair<SymbolMask, double>> merged;
  for (const Participant& part : indep_participants_) {
    const Stream& s = db_->stream(part.id);
    stream_dist.clear();
    if (next > s.horizon() || s.MarginalAt(next).empty()) {
      continue;  // certain bottom: contributes mask 0 with probability 1
    }
    const std::vector<double>& m = s.MarginalAt(next);
    for (DomainIndex d = 0; d < m.size(); ++d) {
      if (m[d] <= 0) continue;
      SymbolMask mask = symbols_->MaskFor(part.position, d);
      bool found = false;
      for (auto& [existing, p] : stream_dist) {
        if (existing == mask) {
          p += m[d];
          found = true;
          break;
        }
      }
      if (!found) stream_dist.emplace_back(mask, m[d]);
    }
    if (stream_dist.size() == 1 && stream_dist[0].first == 0) continue;
    // Convolve the running OR-distribution with this stream's.
    merged.clear();
    for (const auto& [acc_mask, acc_p] : indep_dist_) {
      for (const auto& [mask, p] : stream_dist) {
        SymbolMask combined = acc_mask | mask;
        double added = acc_p * p;
        bool found = false;
        for (auto& [existing, ep] : merged) {
          if (existing == combined) {
            ep += added;
            found = true;
            break;
          }
        }
        if (!found) merged.emplace_back(combined, added);
      }
    }
    indep_dist_.swap(merged);
  }
}

// Enumerates the joint assignment of the *Markovian* participating streams
// at timestep `next`, then crosses each combination with the shared
// independent-stream mask distribution.
void RegularChain::EnumerateSuccessors(const Key& key, double p,
                                       Timestamp next, StateMap* out) {
  struct Frame {
    SymbolMask input = 0;
    uint64_t hidden = 0;
    double prob = 1.0;
  };
  std::vector<Frame> frontier{{0, 0, p}};
  std::vector<Frame> scratch;
  for (const Participant& part : markov_participants_) {
    const Stream& s = db_->stream(part.id);
    scratch.clear();
    if (next > s.horizon()) {
      // Stream over: certain bottom, contributes nothing to the input.
      for (const Frame& f : frontier) scratch.push_back(f);
    } else if (next > 1) {
      const Matrix& cpt = s.CptAt(next - 1);
      const DomainIndex d = static_cast<DomainIndex>(
          (key.hidden / part.radix) % s.domain_size());
      const double* row = cpt.Row(d);
      for (const Frame& f : frontier) {
        for (DomainIndex d2 = 0; d2 < s.domain_size(); ++d2) {
          double q = row[d2];
          if (q <= 0) continue;
          Frame nf = f;
          nf.prob *= q;
          nf.input |= symbols_->MaskFor(part.position, d2);
          nf.hidden += part.radix * d2;
          scratch.push_back(nf);
        }
      }
    } else {
      const std::vector<double>& m = s.MarginalAt(next);
      if (m.empty()) {
        for (const Frame& f : frontier) scratch.push_back(f);
      } else {
        for (const Frame& f : frontier) {
          for (DomainIndex d2 = 0; d2 < m.size(); ++d2) {
            double q = m[d2];
            if (q <= 0) continue;
            Frame nf = f;
            nf.prob *= q;
            nf.input |= symbols_->MaskFor(part.position, d2);
            nf.hidden += part.radix * d2;
            scratch.push_back(nf);
          }
        }
      }
    }
    frontier.swap(scratch);
  }
  const StateMask base_mask = key.mask & ~kAcceptedFlag;
  const bool was_accepted = (key.mask & kAcceptedFlag) != 0;
  for (const Frame& f : frontier) {
    for (const auto& [imask, ip] : indep_dist_) {
      StateMask next_mask = nfa_->Transition(base_mask, f.input | imask);
      if (track_accept_ && (was_accepted || nfa_->Accepts(next_mask))) {
        next_mask |= kAcceptedFlag;
      }
      (*out)[Key{next_mask, f.hidden}] += f.prob * ip;
    }
  }
}

double RegularChain::Step() {
  Timestamp next = t_ + 1;
  BuildIndependentMaskDist(next);
  StateMap out;
  out.reserve(states_.size() * 2);
  for (const auto& [key, p] : states_) {
    EnumerateSuccessors(key, p, next, &out);
  }
  states_.swap(out);
  t_ = next;
  return AcceptProb();
}

double RegularChain::AcceptProb() const {
  double total = 0;
  for (const auto& [key, p] : states_) {
    if (nfa_->Accepts(key.mask & ~kAcceptedFlag)) total += p;
  }
  return total;
}

double RegularChain::AcceptedProb() const {
  double total = 0;
  for (const auto& [key, p] : states_) {
    if (key.mask & kAcceptedFlag) total += p;
  }
  return total;
}

Result<RegularEngine> RegularEngine::Create(const NormalizedQuery& q,
                                            const EventDatabase& db) {
  LAHAR_ASSIGN_OR_RETURN(RegularChain chain, RegularChain::Create(q, db));
  return RegularEngine(std::move(chain));
}

std::vector<double> RegularEngine::Run() {
  std::vector<double> probs(chain_.horizon() + 1, 0.0);
  for (Timestamp t = 1; t <= chain_.horizon(); ++t) {
    probs[t] = chain_.Step();
  }
  return probs;
}

}  // namespace lahar
