#include "engine/extended_engine.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "analysis/bindings.h"
#include "automaton/simd.h"
#include "engine/session.h"

namespace lahar {

Result<ExtendedRegularEngine> ExtendedRegularEngine::Create(
    const NormalizedQuery& q, const EventDatabase& db,
    const ChainOptions& options) {
  ExtendedRegularEngine engine;
  engine.horizon_ = db.horizon();
  engine.lazy_ = options.lazy_materialize;
  engine.spill_ = options.spill_cold_chains;
  engine.lifecycle_ = engine.lazy_ || engine.spill_;
  engine.cold_after_ = std::max<uint32_t>(1, options.cold_after_ticks);
  std::set<SymbolId> shared = q.SharedVars();
  std::vector<Binding> bindings = EnumerateBindings(q, db, shared);
  // The groundings share one automaton structure, so without a caller cache
  // a Create-local one still collapses the m compilations into one; same
  // for the dense-row pool — chains hold their row class by shared_ptr, so
  // a Create-local pool dying here leaves the sharing intact. Lifecycle
  // engines rebuild chains mid-run, so they own heap fallbacks instead.
  KernelCache local_cache;
  TransitionRowPool local_rows;
  ChainOptions opts = options;
  if (engine.lifecycle_) {
    engine.query_ = q;
    engine.db_ = &db;
    if (opts.kernel_cache == nullptr) {
      engine.owned_cache_ = std::make_shared<KernelCache>();
      opts.kernel_cache = engine.owned_cache_.get();
    }
    if (opts.row_pool == nullptr) {
      engine.owned_rows_ = std::make_shared<TransitionRowPool>();
      opts.row_pool = engine.owned_rows_.get();
    }
    engine.stream_index_ = std::make_unique<StreamKeyIndex>(
        options.stream_index != nullptr ? *options.stream_index
                                        : StreamKeyIndex::Build(db));
    opts.stream_index = engine.stream_index_.get();
    LAHAR_ASSIGN_OR_RETURN(QueryNfa stub_nfa, QueryNfa::Build(q));
    // Memoization off makes Transition() pure, so concurrent shard threads
    // can evolve stubs through the one shared automaton.
    stub_nfa.set_memoization(false);
    engine.stub_nfa_ = std::make_unique<QueryNfa>(std::move(stub_nfa));
    engine.part_begin_.push_back(0);
  } else {
    if (opts.kernel_cache == nullptr) opts.kernel_cache = &local_cache;
    if (opts.row_pool == nullptr) opts.row_pool = &local_rows;
  }
  // Even without the lifecycle, grounded builds over many bindings pay
  // O(bindings x streams) in SymbolTable::Build full scans; one O(streams)
  // index drops that to O(bindings x subgoals).
  std::unique_ptr<StreamKeyIndex> scan_index;
  if (opts.stream_index == nullptr && bindings.size() >= 64) {
    scan_index = std::make_unique<StreamKeyIndex>(StreamKeyIndex::Build(db));
    opts.stream_index = scan_index.get();
  }
  for (Binding& b : bindings) {
    NormalizedQuery grounded = q.Substitute(b);
    if (engine.lazy_) {
      // Lazy materialization: register the binding as a ~16-byte stub; the
      // real chain is compiled on its first loud tick (PromoteChain), which
      // reproduces the skipped all-quiet prefix in closed form.
      LAHAR_ASSIGN_OR_RETURN(
          SymbolTable table,
          SymbolTable::Build(grounded, db, opts.stream_index));
      engine.AppendLifecycleParts(table);
      engine.chains_.push_back(nullptr);
      engine.residency_.push_back(kStub);
      engine.stub_mask_.push_back(engine.stub_nfa_->InitialStates());
      engine.bindings_.push_back(std::move(b));
      continue;
    }
    LAHAR_ASSIGN_OR_RETURN(RegularChain chain,
                           RegularChain::Create(grounded, db, opts));
    if (engine.lifecycle_) {
      engine.AppendLifecycleParts(*chain.symbols());
      engine.residency_.push_back(kResident);
      engine.stub_mask_.push_back(engine.stub_nfa_->InitialStates());
    }
    engine.chains_.push_back(std::make_unique<RegularChain>(std::move(chain)));
    engine.bindings_.push_back(std::move(b));
  }
  engine.chain_probs_.resize(engine.chains_.size(), 0.0);
  if (engine.lifecycle_) {
    engine.idle_ticks_.assign(engine.chains_.size(), 0);
    engine.spilled_.resize(engine.chains_.size());
    engine.chain_options_ = opts;
  }
  if (options.soa_arena) {
    size_t total = 0;
    for (const auto& c : engine.chains_) {
      if (c != nullptr) total += 2 * c->FlatStride();
    }
    if (total > 0) {
      const size_t n = engine.chains_.size();
      engine.arena_.assign(total, 0.0);
      engine.stripe_width_.assign(n, 1);
      double* base = engine.arena_.data();
      // Pack consecutive runs of same-kernel SIMD chains into
      // lane-interleaved stripes of exactly simd::kLanes (flat index i of
      // lane j at block[i * kLanes + j]) so StepStripe advances all lanes
      // with one wide pass; leftovers and everything else get the plain
      // contiguous cur|nxt layout. Stubs have no flat state and are skipped.
      constexpr size_t kLanes = simd::kLanes;
      size_t i = 0;
      while (i < n) {
        if (engine.chains_[i] == nullptr) {  // stub: no flat state
          ++i;
          continue;
        }
        RegularChain& c = *engine.chains_[i];
        const size_t stride = c.FlatStride();
        if (stride == 0) {
          ++i;
          continue;
        }
        size_t run = 1;
        if (c.simd()) {
          while (i + run < n && engine.chains_[i + run] != nullptr &&
                 engine.chains_[i + run]->simd() &&
                 engine.chains_[i + run]->row_class() == c.row_class() &&
                 engine.chains_[i + run]->FlatStride() == stride) {
            ++run;
          }
        }
        while (run >= kLanes) {
          for (size_t j = 0; j < kLanes; ++j) {
            engine.chains_[i + j]->BindArena(
                base + j, base + stride * kLanes + j, kLanes);
            engine.stripe_width_[i + j] = j == 0 ? kLanes : 0;
          }
          base += 2 * stride * kLanes;
          i += kLanes;
          run -= kLanes;
        }
        for (; run > 0; --run, ++i) {
          engine.chains_[i]->BindArena(base, base + stride);
          base += 2 * stride;
        }
      }
    }
  }
  return engine;
}

void ExtendedRegularEngine::AppendLifecycleParts(const SymbolTable& table) {
  const std::vector<StreamId>& streams = table.participating();
  for (size_t p = 0; p < streams.size(); ++p) {
    LifecyclePart part;
    part.stream = streams[p];
    part.markovian = db_->stream(streams[p]).markovian();
    const size_t bits = table.domain_size(p);
    part.trigger_bits = static_cast<uint32_t>(bits);
    part.trigger_begin = static_cast<uint32_t>(trigger_words_.size());
    trigger_words_.resize(trigger_words_.size() + (bits + 63) / 64, 0);
    for (size_t d = 0; d < bits; ++d) {
      if (table.MaskFor(p, d) != 0) {
        trigger_words_[part.trigger_begin + d / 64] |= 1ULL << (d % 64);
      }
    }
    parts_.push_back(part);
  }
  part_begin_.push_back(static_cast<uint32_t>(parts_.size()));
}

bool ExtendedRegularEngine::QuietAt(size_t i, Timestamp next) const {
  for (uint32_t k = part_begin_[i]; k < part_begin_[i + 1]; ++k) {
    const LifecyclePart& part = parts_[k];
    const Stream& s = db_->stream(part.stream);
    if (next > s.horizon()) continue;  // stream over: certain bottom
    if (part.markovian) {
      // Only the t == 1 marginal can be certainly-bottom with an exact 1.0
      // multiplier and hidden digit 0; the CPT phase would need per-entry
      // digit tracking to prove quiet, so it is conservatively loud.
      if (next != 1) return false;
      const std::vector<double>& m = s.MarginalAt(1);
      if (m.empty()) continue;
      if (m[0] != 1.0) return false;
      for (size_t d = 1; d < m.size(); ++d) {
        if (m[d] > 0) return false;
      }
      continue;
    }
    // Independent stream: quiet iff no mass sits on a symbol-producing
    // value, exactly the case BuildIndependentMaskDist skips (a single
    // (mask 0, p) entry multiplies nothing in).
    const std::vector<double>& m = s.MarginalAt(next);
    for (size_t d = 0; d < m.size(); ++d) {
      if (m[d] <= 0) continue;
      if (d >= part.trigger_bits) return false;  // interned after creation
      if ((trigger_words_[part.trigger_begin + d / 64] >> (d % 64)) & 1) {
        return false;
      }
    }
  }
  return true;
}

Result<RegularChain> ExtendedRegularEngine::BuildChain(size_t i) const {
  ChainOptions opts = chain_options_;
  opts.stream_index = stream_index_.get();
  NormalizedQuery grounded = query_.Substitute(bindings_[i]);
  LAHAR_ASSIGN_OR_RETURN(RegularChain chain,
                         RegularChain::Create(grounded, *db_, opts));
  // A rebuilt chain must see exactly the creation-time participant set: the
  // always-materialized reference fixes participation at Create, so a
  // stream added since (without re-grounding the query) would diverge.
  const std::vector<StreamId>& now = chain.participating();
  const uint32_t pb = part_begin_[i];
  const uint32_t pe = part_begin_[i + 1];
  bool same = now.size() == pe - pb;
  for (uint32_t k = pb; same && k < pe; ++k) {
    same = parts_[k].stream == now[k - pb];
  }
  if (!same) {
    return Status::Internal(
        "binding's participating streams changed since engine creation; "
        "re-ground the query to pick up new streams");
  }
  return chain;
}

void ExtendedRegularEngine::PromoteChain(size_t i) {
  Result<RegularChain> built = BuildChain(i);
  if (!built.ok()) {
    LatchLifecycleError(built.status());
    return;
  }
  // Seed the fresh chain with the stub's closed-form state at time t_ via
  // the checkpoint path — the same bytes an always-materialized chain would
  // have serialized after the all-quiet prefix.
  serial::Writer w;
  SaveChainState(i, &w);
  serial::Reader r(w.str());
  Status s = built.value().LoadState(&r);
  if (!s.ok()) {
    LatchLifecycleError(s);
    return;
  }
  chains_[i] = std::make_unique<RegularChain>(std::move(built).value());
  residency_[i] = kResident;
  idle_ticks_[i] = 0;
  counters_->promotions.fetch_add(1, std::memory_order_relaxed);
}

void ExtendedRegularEngine::RehydrateChain(size_t i) {
  Result<RegularChain> built = BuildChain(i);
  if (!built.ok()) {
    LatchLifecycleError(built.status());
    return;
  }
  serial::Writer w;
  SaveChainState(i, &w);
  serial::Reader r(w.str());
  Status s = built.value().LoadState(&r);
  if (!s.ok()) {
    LatchLifecycleError(s);
    return;
  }
  chains_[i] = std::make_unique<RegularChain>(std::move(built).value());
  spilled_[i].reset();
  residency_[i] = kResident;
  idle_ticks_[i] = 0;
  counters_->rehydrations.fetch_add(1, std::memory_order_relaxed);
}

void ExtendedRegularEngine::TrySpill(size_t i) {
  const RegularChain& c = *chains_[i];
  if (IsDelegated(i) || c.track_accept() || !c.status().ok()) return;
  // SaveState is the only canonical-order export of the live distribution;
  // parse it back to inspect (and keep) the entries.
  serial::Writer w;
  c.SaveState(&w);
  serial::Reader r(w.str());
  uint32_t t;
  uint8_t track;
  uint64_t slots;
  if (!r.U32(&t).ok() || !r.U8(&track).ok() || !r.U64(&slots).ok()) return;
  auto sp = std::make_unique<SpilledChain>();
  sp->track = track;
  sp->radices = c.radices();
  for (uint32_t k = part_begin_[i]; k < part_begin_[i + 1]; ++k) {
    if (parts_[k].markovian) sp->markov_streams.push_back(parts_[k].stream);
  }
  if (sp->markov_streams.size() != slots || sp->radices.size() != slots) {
    return;
  }
  std::vector<uint64_t> domains(slots);
  for (size_t d = 0; d < slots; ++d) {
    if (!r.U64(&domains[d]).ok()) return;
  }
  uint64_t n;
  if (!r.U64(&n).ok() || n == 0) return;
  sp->entries.reserve(n);
  bool stub_form = n == 1;
  for (uint64_t e = 0; e < n; ++e) {
    SpilledChain::Entry entry;
    if (!r.U64(&entry.mask).ok()) return;
    for (size_t d = 0; d < slots; ++d) {
      uint64_t digit;
      if (!r.U64(&digit).ok()) return;
      entry.hidden += sp->radices[d] * digit;
      if (digit != 0) stub_form = false;
    }
    if (!r.F64(&entry.p).ok()) return;
    if (entry.p != 1.0) stub_form = false;
    sp->entries.push_back(entry);
  }
  if (stub_form) {
    // The state IS the closed form — drop all the way back to a stub.
    stub_mask_[i] = sp->entries[0].mask;
    chains_[i].reset();
    residency_[i] = kStub;
    counters_->spills.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Freezing is only sound when quiet ticks are bitwise no-ops: every mask
  // must be a fixed point of the empty-input transition (probabilities are
  // already exact-1.0 multiplies on quiet ticks).
  for (const SpilledChain::Entry& e : sp->entries) {
    if (stub_nfa_->Transition(e.mask, 0) != e.mask) return;
  }
  chains_[i].reset();
  spilled_[i] = std::move(sp);
  residency_[i] = kSpilled;
  counters_->spills.fetch_add(1, std::memory_order_relaxed);
}

void ExtendedRegularEngine::SaveChainState(size_t i, serial::Writer* w) const {
  if (!lifecycle_ || residency_[i] == kResident) {
    // A delegated chain serializes the shared unit's live state — the same
    // canonical bytes the private chain would have written unshared, so
    // checkpoints are bit-identical across sharing modes.
    (IsDelegated(i) ? delegates_[i]->chain() : *chains_[i]).SaveState(w);
    return;
  }
  w->U32(static_cast<uint32_t>(t_));
  if (residency_[i] == kStub) {
    w->U8(0);
    const uint32_t pb = part_begin_[i];
    const uint32_t pe = part_begin_[i + 1];
    uint64_t slots = 0;
    for (uint32_t k = pb; k < pe; ++k) slots += parts_[k].markovian ? 1 : 0;
    w->U64(slots);
    for (uint32_t k = pb; k < pe; ++k) {
      if (parts_[k].markovian) {
        w->U64(db_->stream(parts_[k].stream).domain_size());
      }
    }
    w->U64(1);
    w->U64(stub_mask_[i]);
    for (uint64_t s = 0; s < slots; ++s) w->U64(0);
    w->F64(1.0);
    return;
  }
  const SpilledChain& sp = *spilled_[i];
  w->U8(sp.track);
  w->U64(sp.radices.size());
  // Digits are re-derived against *current* domain sizes with the
  // creation-time radices — exactly RegularChain::SaveState's encoding, so
  // the bytes stay identical even if a domain grew while spilled.
  std::vector<uint64_t> domains(sp.radices.size());
  for (size_t s = 0; s < sp.radices.size(); ++s) {
    domains[s] = db_->stream(sp.markov_streams[s]).domain_size();
    w->U64(domains[s]);
  }
  w->U64(sp.entries.size());
  for (const SpilledChain::Entry& e : sp.entries) {
    w->U64(e.mask);
    for (size_t s = 0; s < sp.radices.size(); ++s) {
      w->U64((e.hidden / sp.radices[s]) % domains[s]);
    }
    w->F64(e.p);
  }
}

Status ExtendedRegularEngine::RestoreChainState(size_t i, serial::Reader* r,
                                                uint32_t t) {
  uint32_t ct;
  uint8_t track;
  uint64_t slots;
  LAHAR_RETURN_NOT_OK(r->U32(&ct));
  LAHAR_RETURN_NOT_OK(r->U8(&track));
  LAHAR_RETURN_NOT_OK(r->U64(&slots));
  std::vector<StreamId> markov;
  for (uint32_t k = part_begin_[i]; k < part_begin_[i + 1]; ++k) {
    if (parts_[k].markovian) markov.push_back(parts_[k].stream);
  }
  if (slots != markov.size()) {
    return Status::InvalidArgument(
        "chain snapshot has " + std::to_string(slots) +
        " Markovian slots, this binding has " +
        std::to_string(markov.size()) + " (different query or database?)");
  }
  std::vector<uint64_t> domains(slots);
  std::vector<uint64_t> radices(slots);
  uint64_t radix = 1;
  for (size_t s = 0; s < slots; ++s) {
    LAHAR_RETURN_NOT_OK(r->U64(&domains[s]));
    const uint64_t here = db_->stream(markov[s]).domain_size();
    if (domains[s] != here) {
      return Status::InvalidArgument(
          "chain snapshot slot " + std::to_string(s) + " has domain size " +
          std::to_string(domains[s]) + ", restored database has " +
          std::to_string(here) + " (snapshot/database mismatch)");
    }
    radices[s] = radix;
    radix *= domains[s];
  }
  uint64_t n;
  LAHAR_RETURN_NOT_OK(r->U64(&n));
  auto sp = std::make_unique<SpilledChain>();
  sp->track = track;
  sp->radices = std::move(radices);
  sp->markov_streams = std::move(markov);
  sp->entries.reserve(n);
  bool stub_form = n == 1 && track == 0;
  for (uint64_t e = 0; e < n; ++e) {
    SpilledChain::Entry entry;
    LAHAR_RETURN_NOT_OK(r->U64(&entry.mask));
    for (size_t s = 0; s < slots; ++s) {
      uint64_t digit;
      LAHAR_RETURN_NOT_OK(r->U64(&digit));
      if (digit >= domains[s]) {
        return Status::InvalidArgument("chain snapshot digit out of domain");
      }
      entry.hidden += sp->radices[s] * digit;
      if (digit != 0) stub_form = false;
    }
    LAHAR_RETURN_NOT_OK(r->F64(&entry.p));
    if (entry.p != 1.0) stub_form = false;
    sp->entries.push_back(entry);
  }
  // Classify back into the cheapest residency that reproduces the snapshot
  // exactly. Chains saved at a different clock than the engine (should not
  // happen in well-formed snapshots) always materialize.
  if (lazy_ && stub_form && ct == t) {
    stub_mask_[i] = sp->entries[0].mask;
    chains_[i].reset();
    spilled_[i].reset();
    residency_[i] = kStub;
    idle_ticks_[i] = 0;
    return Status::OK();
  }
  if (spill_ && track == 0 && n > 0 && ct == t) {
    bool frozen = true;
    for (const SpilledChain::Entry& e : sp->entries) {
      if (stub_nfa_->Transition(e.mask, 0) != e.mask) {
        frozen = false;
        break;
      }
    }
    if (frozen) {
      // Restored cold and stays cold: checkpoints of spilled chains
      // round-trip without forcing a rehydration (docs/RUNTIME.md).
      chains_[i].reset();
      spilled_[i] = std::move(sp);
      residency_[i] = kSpilled;
      idle_ticks_[i] = cold_after_;
      return Status::OK();
    }
  }
  LAHAR_ASSIGN_OR_RETURN(RegularChain chain, BuildChain(i));
  serial::Writer w;
  w.U32(ct);
  w.U8(track);
  w.U64(slots);
  for (size_t s = 0; s < slots; ++s) w.U64(domains[s]);
  w.U64(n);
  for (const SpilledChain::Entry& e : sp->entries) {
    w.U64(e.mask);
    for (size_t s = 0; s < slots; ++s) {
      w.U64((e.hidden / sp->radices[s]) % domains[s]);
    }
    w.F64(e.p);
  }
  serial::Reader cr(w.str());
  LAHAR_RETURN_NOT_OK(chain.LoadState(&cr));
  chains_[i] = std::make_unique<RegularChain>(std::move(chain));
  spilled_[i].reset();
  residency_[i] = kResident;
  idle_ticks_[i] = 0;
  return Status::OK();
}

void ExtendedRegularEngine::LatchLifecycleError(const Status& s) {
  if (s.ok()) return;
  std::lock_guard<std::mutex> lock(counters_->mu);
  if (counters_->first_error.ok()) counters_->first_error = s;
}

double ExtendedRegularEngine::Step() {
  StepChainRange(0, chains_.size());
  return CommitParallelStep();
}

void ExtendedRegularEngine::StepChainRange(size_t begin, size_t end) {
  end = std::min(end, chains_.size());
  const Timestamp next = t_ + 1;
  size_t i = begin;
  while (i < end) {
    if (lifecycle_ && residency_[i] != kResident) {
      if (QuietAt(i, next)) {
        if (residency_[i] == kStub) {
          // Closed form: the real chain's single entry {mask, 0, 1.0}
          // moves by the empty-input transition; its accept probability is
          // exactly 0.0 or 1.0.
          const StateMask m = stub_nfa_->Transition(stub_mask_[i], 0);
          stub_mask_[i] = m;
          chain_probs_[i] = stub_nfa_->Accepts(m) ? 1.0 : 0.0;
        }
        // Spilled: a quiet tick is a bitwise no-op on a frozen absorbing
        // state, so the recorded probability simply carries forward.
        ++i;
        continue;
      }
      if (residency_[i] == kStub) {
        PromoteChain(i);
      } else {
        RehydrateChain(i);
      }
      if (residency_[i] != kResident) {
        // Build failed; the error is latched (ChainStatus) and the binding
        // stays frozen rather than stepping a dead chain.
        ++i;
        continue;
      }
    }
    // Whole-stripe step when the stripe lies entirely in this range and no
    // lane is delegated; otherwise (or when StepStripe declines this tick)
    // every chain steps alone, bit-identically, on the strided path. A
    // range boundary through a stripe also lands here — lanes addressed
    // with disjoint interleaved strides are safe to step from two threads.
    const uint32_t w = i < stripe_width_.size() ? stripe_width_[i] : 1;
    if (w > 1 && i + w <= end) {
      bool delegated = false;
      for (size_t j = 0; j < w && !delegated; ++j) delegated = IsDelegated(i + j);
      if (!delegated) {
        RegularChain* lanes[simd::kLanes];
        for (size_t j = 0; j < w; ++j) lanes[j] = chains_[i + j].get();
        if (RegularChain::StepStripe(lanes, w, next)) {
          for (size_t j = 0; j < w; ++j) {
            chain_probs_[i + j] = chains_[i + j]->AcceptProb();
          }
          counters_->stripe_steps.fetch_add(1, std::memory_order_relaxed);
          i += w;
          continue;
        }
        counters_->stripe_fallbacks.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (IsDelegated(i)) {
      // The shared unit was advanced past t_+1 before this fan-out (the
      // runtime's shared phase); read its recorded frontier probability.
      chain_probs_[i] = delegates_[i]->ProbAt(next);
    } else {
      // Cold-spill accounting applies only to solo chains: stripe lanes
      // share arena storage, so freezing one would shear the stripe for no
      // memory gain.
      const bool solo = i >= stripe_width_.size() || stripe_width_[i] == 1;
      const bool consider_spill = lifecycle_ && spill_ && solo;
      const bool quiet = consider_spill && QuietAt(i, next);
      chain_probs_[i] = chains_[i]->Step();
      if (consider_spill) {
        if (quiet) {
          const uint32_t idle = ++idle_ticks_[i];
          if (idle >= cold_after_ && idle % cold_after_ == 0) TrySpill(i);
        } else {
          idle_ticks_[i] = 0;
        }
      }
    }
    ++i;
  }
}

bool ExtendedRegularEngine::DelegateChain(
    size_t i, std::shared_ptr<SharedSubChain> unit) {
  if (i >= chains_.size() || unit == nullptr) return false;
  // Lifecycle bindings may not hold a live chain to share from (and the
  // sharing planner has no view of residency), so delegation requires a
  // resident chain.
  if (lifecycle_ && residency_[i] != kResident) return false;
  if (!chains_[i]->status().ok() || !unit->status().ok()) return false;
  if (unit->time() != t_) return false;
  if (delegates_.empty()) delegates_.resize(chains_.size());
  if (delegates_[i] == nullptr) ++num_delegated_;
  delegates_[i] = std::move(unit);
  return true;
}

void ExtendedRegularEngine::UndelegateChain(size_t i) {
  if (!IsDelegated(i)) return;
  // Copy construction re-owns the state vector (off any shared arena), so
  // the private chain resumes exactly where the shared unit stands.
  chains_[i] = std::make_unique<RegularChain>(delegates_[i]->chain());
  delegates_[i] = nullptr;
  --num_delegated_;
}

ExtendedRegularEngine::MemoryFootprint ExtendedRegularEngine::Footprint()
    const {
  MemoryFootprint fp;
  fp.arena_bytes = arena_.capacity() * sizeof(double);
  std::unordered_set<const TransitionRowClass*> classes;
  // A resident binding pays the chain object itself plus its owned heap; a
  // stub/spilled binding pays only the null slot. This is the separation
  // the lifecycle exists for, so count it honestly.
  fp.owned_bytes += chains_.capacity() * sizeof(std::unique_ptr<RegularChain>);
  for (const auto& c : chains_) {
    if (c == nullptr) continue;
    fp.owned_bytes += sizeof(RegularChain) + c->OwnedBytes();
    if (c->row_class() != nullptr) classes.insert(c->row_class().get());
  }
  for (const TransitionRowClass* cls : classes) {
    fp.shared_row_bytes += cls->bytes();
  }
  if (lifecycle_) {
    fp.lifecycle_bytes =
        residency_.capacity() * sizeof(uint8_t) +
        stub_mask_.capacity() * sizeof(StateMask) +
        idle_ticks_.capacity() * sizeof(uint32_t) +
        part_begin_.capacity() * sizeof(uint32_t) +
        parts_.capacity() * sizeof(LifecyclePart) +
        trigger_words_.capacity() * sizeof(uint64_t) +
        spilled_.capacity() * sizeof(std::unique_ptr<SpilledChain>);
    for (const std::unique_ptr<SpilledChain>& sp : spilled_) {
      if (sp != nullptr) fp.lifecycle_bytes += sp->bytes();
    }
  }
  return fp;
}

size_t ExtendedRegularEngine::num_resident() const {
  if (!lifecycle_) return chains_.size();
  size_t n = 0;
  for (uint8_t r : residency_) n += r == kResident ? 1 : 0;
  return n;
}

size_t ExtendedRegularEngine::num_stub() const {
  if (!lifecycle_) return 0;
  size_t n = 0;
  for (uint8_t r : residency_) n += r == kStub ? 1 : 0;
  return n;
}

size_t ExtendedRegularEngine::num_spilled() const {
  if (!lifecycle_) return 0;
  size_t n = 0;
  for (uint8_t r : residency_) n += r == kSpilled ? 1 : 0;
  return n;
}

Status ExtendedRegularEngine::ChainStatus() const {
  if (lifecycle_) {
    std::lock_guard<std::mutex> lock(counters_->mu);
    if (!counters_->first_error.ok()) return counters_->first_error;
  }
  for (size_t i = 0; i < chains_.size(); ++i) {
    if (IsDelegated(i)) {
      LAHAR_RETURN_NOT_OK(delegates_[i]->status());
    } else if (chains_[i] != nullptr) {
      LAHAR_RETURN_NOT_OK(chains_[i]->status());
    }
  }
  return Status::OK();
}

double ExtendedRegularEngine::CommitParallelStep() {
  ++t_;
  // Single-threaded point: refresh the stream index if the database gained
  // streams since it was built, so later promotions see current candidates
  // (participation checks in BuildChain still pin the creation-time set).
  if (lifecycle_ && stream_index_ != nullptr &&
      stream_index_->num_streams() != db_->num_streams()) {
    stream_index_ =
        std::make_unique<StreamKeyIndex>(StreamKeyIndex::Build(*db_));
  }
  // A single grounding needs no union, and 1 - (1 - p) is not an IEEE
  // no-op: returning p directly keeps Regular-class answers bit-identical
  // to RegularEngine's.
  if (chain_probs_.size() == 1) return chain_probs_[0];
  double none = 1.0;
  for (double p : chain_probs_) none *= 1.0 - p;
  return 1.0 - none;
}

std::vector<double> ExtendedRegularEngine::Run() {
  std::vector<double> probs(horizon_ + 1, 0.0);
  for (Timestamp t = 1; t <= horizon_; ++t) probs[t] = Step();
  return probs;
}

void ExtendedRegularEngine::SaveState(serial::Writer* w) const {
  w->U32(t_);
  w->DoubleVec(chain_probs_);
  w->U64(chains_.size());
  for (size_t i = 0; i < chains_.size(); ++i) {
    SaveChainState(i, w);
  }
}

Status ExtendedRegularEngine::LoadState(serial::Reader* r) {
  uint32_t t;
  std::vector<double> probs;
  uint64_t num_chains;
  LAHAR_RETURN_NOT_OK(r->U32(&t));
  LAHAR_RETURN_NOT_OK(r->DoubleVec(&probs));
  LAHAR_RETURN_NOT_OK(r->U64(&num_chains));
  if (num_chains != chains_.size() || probs.size() != chains_.size()) {
    return Status::InvalidArgument(
        "engine snapshot has " + std::to_string(num_chains) +
        " chains, this engine has " + std::to_string(chains_.size()) +
        " (different query or database?)");
  }
  for (size_t i = 0; i < chains_.size(); ++i) {
    if (lifecycle_) {
      LAHAR_RETURN_NOT_OK(RestoreChainState(i, r, t));
    } else if (IsDelegated(i)) {
      LAHAR_RETURN_NOT_OK(delegates_[i]->mutable_chain()->LoadState(r));
      delegates_[i]->ResyncFrontier();
    } else {
      LAHAR_RETURN_NOT_OK(chains_[i]->LoadState(r));
    }
  }
  chain_probs_ = std::move(probs);
  t_ = t;
  return Status::OK();
}

std::vector<ExtendedRegularEngine::BindingSeries>
ExtendedRegularEngine::RunPerBinding() {
  std::vector<BindingSeries> series(chains_.size());
  for (size_t i = 0; i < chains_.size(); ++i) {
    series[i].binding = bindings_[i];
    series[i].probs.assign(horizon_ + 1, 0.0);
  }
  for (Timestamp t = t_ + 1; t <= horizon_; ++t) {
    Step();
    for (size_t i = 0; i < chains_.size(); ++i) {
      series[i].probs[t] = chain_probs_[i];
    }
  }
  return series;
}

}  // namespace lahar
