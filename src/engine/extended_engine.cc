#include "engine/extended_engine.h"

#include <algorithm>
#include <unordered_set>

#include "analysis/bindings.h"
#include "automaton/simd.h"
#include "engine/session.h"

namespace lahar {

Result<ExtendedRegularEngine> ExtendedRegularEngine::Create(
    const NormalizedQuery& q, const EventDatabase& db,
    const ChainOptions& options) {
  ExtendedRegularEngine engine;
  engine.horizon_ = db.horizon();
  std::set<SymbolId> shared = q.SharedVars();
  std::vector<Binding> bindings = EnumerateBindings(q, db, shared);
  // The groundings share one automaton structure, so without a caller cache
  // a Create-local one still collapses the m compilations into one; same
  // for the dense-row pool — chains hold their row class by shared_ptr, so
  // a Create-local pool dying here leaves the sharing intact.
  KernelCache local_cache;
  TransitionRowPool local_rows;
  ChainOptions opts = options;
  if (opts.kernel_cache == nullptr) opts.kernel_cache = &local_cache;
  if (opts.row_pool == nullptr) opts.row_pool = &local_rows;
  for (Binding& b : bindings) {
    NormalizedQuery grounded = q.Substitute(b);
    LAHAR_ASSIGN_OR_RETURN(RegularChain chain,
                           RegularChain::Create(grounded, db, opts));
    engine.chains_.push_back(std::move(chain));
    engine.bindings_.push_back(std::move(b));
  }
  engine.chain_probs_.resize(engine.chains_.size(), 0.0);
  if (options.soa_arena) {
    size_t total = 0;
    for (const RegularChain& c : engine.chains_) total += 2 * c.FlatStride();
    if (total > 0) {
      const size_t n = engine.chains_.size();
      engine.arena_.assign(total, 0.0);
      engine.stripe_width_.assign(n, 1);
      double* base = engine.arena_.data();
      // Pack consecutive runs of same-kernel SIMD chains into
      // lane-interleaved stripes of exactly simd::kLanes (flat index i of
      // lane j at block[i * kLanes + j]) so StepStripe advances all lanes
      // with one wide pass; leftovers and everything else get the plain
      // contiguous cur|nxt layout.
      constexpr size_t kLanes = simd::kLanes;
      size_t i = 0;
      while (i < n) {
        RegularChain& c = engine.chains_[i];
        const size_t stride = c.FlatStride();
        if (stride == 0) {
          ++i;
          continue;
        }
        size_t run = 1;
        if (c.simd()) {
          while (i + run < n &&
                 engine.chains_[i + run].simd() &&
                 engine.chains_[i + run].row_class() == c.row_class() &&
                 engine.chains_[i + run].FlatStride() == stride) {
            ++run;
          }
        }
        while (run >= kLanes) {
          for (size_t j = 0; j < kLanes; ++j) {
            engine.chains_[i + j].BindArena(base + j, base + stride * kLanes + j,
                                            kLanes);
            engine.stripe_width_[i + j] = j == 0 ? kLanes : 0;
          }
          base += 2 * stride * kLanes;
          i += kLanes;
          run -= kLanes;
        }
        for (; run > 0; --run, ++i) {
          engine.chains_[i].BindArena(base, base + stride);
          base += 2 * stride;
        }
      }
    }
  }
  return engine;
}

double ExtendedRegularEngine::Step() {
  StepChainRange(0, chains_.size());
  return CommitParallelStep();
}

void ExtendedRegularEngine::StepChainRange(size_t begin, size_t end) {
  end = std::min(end, chains_.size());
  const Timestamp next = t_ + 1;
  size_t i = begin;
  while (i < end) {
    // Whole-stripe step when the stripe lies entirely in this range and no
    // lane is delegated; otherwise (or when StepStripe declines this tick)
    // every chain steps alone, bit-identically, on the strided path. A
    // range boundary through a stripe also lands here — lanes addressed
    // with disjoint interleaved strides are safe to step from two threads.
    const uint32_t w = i < stripe_width_.size() ? stripe_width_[i] : 1;
    if (w > 1 && i + w <= end) {
      bool delegated = false;
      for (size_t j = 0; j < w && !delegated; ++j) delegated = IsDelegated(i + j);
      if (!delegated) {
        RegularChain* lanes[simd::kLanes];
        for (size_t j = 0; j < w; ++j) lanes[j] = &chains_[i + j];
        if (RegularChain::StepStripe(lanes, w, next)) {
          for (size_t j = 0; j < w; ++j) {
            chain_probs_[i + j] = chains_[i + j].AcceptProb();
          }
          counters_->stripe_steps.fetch_add(1, std::memory_order_relaxed);
          i += w;
          continue;
        }
        counters_->stripe_fallbacks.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (IsDelegated(i)) {
      // The shared unit was advanced past t_+1 before this fan-out (the
      // runtime's shared phase); read its recorded frontier probability.
      chain_probs_[i] = delegates_[i]->ProbAt(next);
    } else {
      chain_probs_[i] = chains_[i].Step();
    }
    ++i;
  }
}

bool ExtendedRegularEngine::DelegateChain(
    size_t i, std::shared_ptr<SharedSubChain> unit) {
  if (i >= chains_.size() || unit == nullptr) return false;
  if (!chains_[i].status().ok() || !unit->status().ok()) return false;
  if (unit->time() != t_) return false;
  if (delegates_.empty()) delegates_.resize(chains_.size());
  if (delegates_[i] == nullptr) ++num_delegated_;
  delegates_[i] = std::move(unit);
  return true;
}

void ExtendedRegularEngine::UndelegateChain(size_t i) {
  if (!IsDelegated(i)) return;
  // Copy-assignment re-owns the state vector (off any shared arena), so the
  // private chain resumes exactly where the shared unit stands.
  chains_[i] = delegates_[i]->chain();
  delegates_[i] = nullptr;
  --num_delegated_;
}

ExtendedRegularEngine::MemoryFootprint ExtendedRegularEngine::Footprint()
    const {
  MemoryFootprint fp;
  fp.arena_bytes = arena_.capacity() * sizeof(double);
  std::unordered_set<const TransitionRowClass*> classes;
  for (const RegularChain& c : chains_) {
    fp.owned_bytes += c.OwnedBytes();
    if (c.row_class() != nullptr) classes.insert(c.row_class().get());
  }
  for (const TransitionRowClass* cls : classes) {
    fp.shared_row_bytes += cls->bytes();
  }
  return fp;
}

Status ExtendedRegularEngine::ChainStatus() const {
  for (size_t i = 0; i < chains_.size(); ++i) {
    const Status& s =
        IsDelegated(i) ? delegates_[i]->status() : chains_[i].status();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

double ExtendedRegularEngine::CommitParallelStep() {
  ++t_;
  // A single grounding needs no union, and 1 - (1 - p) is not an IEEE
  // no-op: returning p directly keeps Regular-class answers bit-identical
  // to RegularEngine's.
  if (chain_probs_.size() == 1) return chain_probs_[0];
  double none = 1.0;
  for (double p : chain_probs_) none *= 1.0 - p;
  return 1.0 - none;
}

std::vector<double> ExtendedRegularEngine::Run() {
  std::vector<double> probs(horizon_ + 1, 0.0);
  for (Timestamp t = 1; t <= horizon_; ++t) probs[t] = Step();
  return probs;
}

void ExtendedRegularEngine::SaveState(serial::Writer* w) const {
  w->U32(t_);
  w->DoubleVec(chain_probs_);
  w->U64(chains_.size());
  // A delegated chain serializes the shared unit's live state — the same
  // canonical bytes the private chain would have written unshared, so
  // checkpoints are bit-identical across sharing modes.
  for (size_t i = 0; i < chains_.size(); ++i) {
    (IsDelegated(i) ? delegates_[i]->chain() : chains_[i]).SaveState(w);
  }
}

Status ExtendedRegularEngine::LoadState(serial::Reader* r) {
  uint32_t t;
  std::vector<double> probs;
  uint64_t num_chains;
  LAHAR_RETURN_NOT_OK(r->U32(&t));
  LAHAR_RETURN_NOT_OK(r->DoubleVec(&probs));
  LAHAR_RETURN_NOT_OK(r->U64(&num_chains));
  if (num_chains != chains_.size() || probs.size() != chains_.size()) {
    return Status::InvalidArgument(
        "engine snapshot has " + std::to_string(num_chains) +
        " chains, this engine has " + std::to_string(chains_.size()) +
        " (different query or database?)");
  }
  for (size_t i = 0; i < chains_.size(); ++i) {
    if (IsDelegated(i)) {
      LAHAR_RETURN_NOT_OK(delegates_[i]->mutable_chain()->LoadState(r));
      delegates_[i]->ResyncFrontier();
    } else {
      LAHAR_RETURN_NOT_OK(chains_[i].LoadState(r));
    }
  }
  chain_probs_ = std::move(probs);
  t_ = t;
  return Status::OK();
}

std::vector<ExtendedRegularEngine::BindingSeries>
ExtendedRegularEngine::RunPerBinding() {
  std::vector<BindingSeries> series(chains_.size());
  for (size_t i = 0; i < chains_.size(); ++i) {
    series[i].binding = bindings_[i];
    series[i].probs.assign(horizon_ + 1, 0.0);
  }
  for (Timestamp t = t_ + 1; t <= horizon_; ++t) {
    Step();
    for (size_t i = 0; i < chains_.size(); ++i) {
      series[i].probs[t] = chain_probs_[i];
    }
  }
  return series;
}

}  // namespace lahar
