#include "engine/extended_engine.h"

#include <algorithm>

#include "analysis/bindings.h"
#include "engine/session.h"

namespace lahar {

Result<ExtendedRegularEngine> ExtendedRegularEngine::Create(
    const NormalizedQuery& q, const EventDatabase& db,
    const ChainOptions& options) {
  ExtendedRegularEngine engine;
  engine.horizon_ = db.horizon();
  std::set<SymbolId> shared = q.SharedVars();
  std::vector<Binding> bindings = EnumerateBindings(q, db, shared);
  // The groundings share one automaton structure, so without a caller cache
  // a Create-local one still collapses the m compilations into one.
  KernelCache local_cache;
  ChainOptions opts = options;
  if (opts.kernel_cache == nullptr) opts.kernel_cache = &local_cache;
  for (Binding& b : bindings) {
    NormalizedQuery grounded = q.Substitute(b);
    LAHAR_ASSIGN_OR_RETURN(RegularChain chain,
                           RegularChain::Create(grounded, db, opts));
    engine.chains_.push_back(std::move(chain));
    engine.bindings_.push_back(std::move(b));
  }
  engine.chain_probs_.resize(engine.chains_.size(), 0.0);
  if (options.soa_arena) {
    size_t total = 0;
    for (const RegularChain& c : engine.chains_) total += 2 * c.FlatStride();
    if (total > 0) {
      engine.arena_.assign(total, 0.0);
      double* base = engine.arena_.data();
      for (RegularChain& c : engine.chains_) {
        const size_t stride = c.FlatStride();
        if (stride == 0) continue;
        c.BindArena(base, base + stride);
        base += 2 * stride;
      }
    }
  }
  return engine;
}

double ExtendedRegularEngine::Step() {
  StepChainRange(0, chains_.size());
  return CommitParallelStep();
}

void ExtendedRegularEngine::StepChainRange(size_t begin, size_t end) {
  end = std::min(end, chains_.size());
  for (size_t i = begin; i < end; ++i) {
    if (IsDelegated(i)) {
      // The shared unit was advanced past t_+1 before this fan-out (the
      // runtime's shared phase); read its recorded frontier probability.
      chain_probs_[i] = delegates_[i]->ProbAt(t_ + 1);
    } else {
      chain_probs_[i] = chains_[i].Step();
    }
  }
}

bool ExtendedRegularEngine::DelegateChain(
    size_t i, std::shared_ptr<SharedSubChain> unit) {
  if (i >= chains_.size() || unit == nullptr) return false;
  if (!chains_[i].status().ok() || !unit->status().ok()) return false;
  if (unit->time() != t_) return false;
  if (delegates_.empty()) delegates_.resize(chains_.size());
  if (delegates_[i] == nullptr) ++num_delegated_;
  delegates_[i] = std::move(unit);
  return true;
}

void ExtendedRegularEngine::UndelegateChain(size_t i) {
  if (!IsDelegated(i)) return;
  // Copy-assignment re-owns the state vector (off any shared arena), so the
  // private chain resumes exactly where the shared unit stands.
  chains_[i] = delegates_[i]->chain();
  delegates_[i] = nullptr;
  --num_delegated_;
}

Status ExtendedRegularEngine::ChainStatus() const {
  for (size_t i = 0; i < chains_.size(); ++i) {
    const Status& s =
        IsDelegated(i) ? delegates_[i]->status() : chains_[i].status();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

double ExtendedRegularEngine::CommitParallelStep() {
  ++t_;
  // A single grounding needs no union, and 1 - (1 - p) is not an IEEE
  // no-op: returning p directly keeps Regular-class answers bit-identical
  // to RegularEngine's.
  if (chain_probs_.size() == 1) return chain_probs_[0];
  double none = 1.0;
  for (double p : chain_probs_) none *= 1.0 - p;
  return 1.0 - none;
}

std::vector<double> ExtendedRegularEngine::Run() {
  std::vector<double> probs(horizon_ + 1, 0.0);
  for (Timestamp t = 1; t <= horizon_; ++t) probs[t] = Step();
  return probs;
}

void ExtendedRegularEngine::SaveState(serial::Writer* w) const {
  w->U32(t_);
  w->DoubleVec(chain_probs_);
  w->U64(chains_.size());
  // A delegated chain serializes the shared unit's live state — the same
  // canonical bytes the private chain would have written unshared, so
  // checkpoints are bit-identical across sharing modes.
  for (size_t i = 0; i < chains_.size(); ++i) {
    (IsDelegated(i) ? delegates_[i]->chain() : chains_[i]).SaveState(w);
  }
}

Status ExtendedRegularEngine::LoadState(serial::Reader* r) {
  uint32_t t;
  std::vector<double> probs;
  uint64_t num_chains;
  LAHAR_RETURN_NOT_OK(r->U32(&t));
  LAHAR_RETURN_NOT_OK(r->DoubleVec(&probs));
  LAHAR_RETURN_NOT_OK(r->U64(&num_chains));
  if (num_chains != chains_.size() || probs.size() != chains_.size()) {
    return Status::InvalidArgument(
        "engine snapshot has " + std::to_string(num_chains) +
        " chains, this engine has " + std::to_string(chains_.size()) +
        " (different query or database?)");
  }
  for (size_t i = 0; i < chains_.size(); ++i) {
    if (IsDelegated(i)) {
      LAHAR_RETURN_NOT_OK(delegates_[i]->mutable_chain()->LoadState(r));
      delegates_[i]->ResyncFrontier();
    } else {
      LAHAR_RETURN_NOT_OK(chains_[i].LoadState(r));
    }
  }
  chain_probs_ = std::move(probs);
  t_ = t;
  return Status::OK();
}

std::vector<ExtendedRegularEngine::BindingSeries>
ExtendedRegularEngine::RunPerBinding() {
  std::vector<BindingSeries> series(chains_.size());
  for (size_t i = 0; i < chains_.size(); ++i) {
    series[i].binding = bindings_[i];
    series[i].probs.assign(horizon_ + 1, 0.0);
  }
  for (Timestamp t = t_ + 1; t <= horizon_; ++t) {
    Step();
    for (size_t i = 0; i < chains_.size(); ++i) {
      series[i].probs[t] = chain_probs_[i];
    }
  }
  return series;
}

}  // namespace lahar
