// Reference evaluator: a direct, unoptimized implementation of the formal
// query semantics of Fig. 2 over deterministic worlds, plus brute-force
// probability computation by possible-world enumeration.
//
// This is the semantic ground truth that every optimized engine is tested
// against, the deterministic core of the MLE/Viterbi baselines, and the
// per-world evaluator available to the sampling engine for arbitrary
// (including unsafe) queries.
#ifndef LAHAR_ENGINE_REFERENCE_H_
#define LAHAR_ENGINE_REFERENCE_H_

#include <vector>

#include "model/world.h"
#include "query/ast.h"

namespace lahar {

/// \brief One result event: a binding of the query's free variables plus
/// the timestamp at which the match completed.
struct ResultEvent {
  Binding binding;
  Timestamp t = 0;
};

/// Evaluates q on a single deterministic world per the Fig. 2 semantics.
/// Returns every result event (deduplicated).
Result<std::vector<ResultEvent>> EvaluateOnWorld(const Query& q,
                                                 const EventDatabase& db,
                                                 const World& world);

/// satisfied[t] == true iff the world satisfies q at timestep t
/// (W |= q@t). Index 0 is unused; the vector has horizon+1 entries.
Result<std::vector<bool>> SatisfiedAt(const Query& q, const EventDatabase& db,
                                      const World& world);

/// mu(q@t) for every t by exhaustive world enumeration. Exponential; only
/// for tiny test databases. Index 0 unused.
Result<std::vector<double>> BruteForceProbabilities(const Query& q,
                                                    const EventDatabase& db);

}  // namespace lahar

#endif  // LAHAR_ENGINE_REFERENCE_H_
