// The deterministic baselines of Section 4: discard the probabilities by
// collapsing each stream to a single trajectory — the per-timestep most
// likely tuple (MLE, real-time scenario) or the Viterbi MAP path (archived
// scenario) — then run the query with standard Cayuga semantics.
//
// Regular/extended groundings run incrementally on the query NFA (this is
// what makes MLE the throughput ceiling in Fig. 12); other queries fall
// back to the reference evaluator on the determinized world.
#ifndef LAHAR_ENGINE_DETERMINISTIC_ENGINE_H_
#define LAHAR_ENGINE_DETERMINISTIC_ENGINE_H_

#include <memory>
#include <vector>

#include "automaton/nfa.h"
#include "engine/reference.h"
#include "query/normalize.h"

namespace lahar {

/// How to determinize the streams.
enum class Determinization {
  kMle,      ///< per-timestep argmax of marginals (real-time baseline)
  kViterbi,  ///< most likely trajectory (archived MAP baseline)
};

/// \brief Deterministic event detection over a determinized database.
class DeterministicEngine {
 public:
  static Result<DeterministicEngine> Create(QueryPtr q,
                                            const EventDatabase& db,
                                            Determinization mode);

  /// satisfied[t] for t = 1..horizon (index 0 unused).
  Result<std::vector<bool>> Run();

  /// Advances the incremental NFA path one timestep; returns whether q@t.
  Result<bool> Step();

  bool incremental() const { return !chains_.empty(); }
  Timestamp time() const { return t_; }
  Timestamp horizon() const { return horizon_; }

  /// The determinized trajectory of a stream (diagnostics, Fig. 11(b)).
  /// Computed on first use — only streams a query touches pay for
  /// determinization.
  const std::vector<DomainIndex>& path(StreamId id);

 private:
  struct GroundedChain {
    std::shared_ptr<const QueryNfa> nfa;
    std::shared_ptr<const SymbolTable> symbols;
    StateMask state = 0;
  };

  QueryPtr query_;
  const EventDatabase* db_ = nullptr;
  Determinization mode_ = Determinization::kMle;
  Timestamp horizon_ = 0;
  Timestamp t_ = 0;
  std::vector<std::vector<DomainIndex>> paths_;  // per stream, lazily filled
  std::vector<GroundedChain> chains_;            // NFA path if non-empty
};

}  // namespace lahar

#endif  // LAHAR_ENGINE_DETERMINISTIC_ENGINE_H_
