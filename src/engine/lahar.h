// Lahar: the top-level event processing system. Parses a query, classifies
// it (Regular / Extended Regular / Safe / Unsafe), routes it to the
// cheapest applicable engine, and returns per-timestep probabilities —
// the event query evaluation problem mu(q@t) of Section 2.3.
//
//   EventDatabase db = ...;                 // streams + relations
//   Lahar lahar(&db);
//   auto result = lahar.Run("At('Joe', l : CRoom(l))");
//   for (t) result->probs[t];               // P[query satisfied at t]
#ifndef LAHAR_ENGINE_LAHAR_H_
#define LAHAR_ENGINE_LAHAR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/classify.h"
#include "analysis/plan.h"
#include "analysis/prepared.h"
#include "engine/regular_engine.h"
#include "engine/sampling_engine.h"
#include "query/ast.h"

namespace lahar {

/// Which engine evaluated the query.
enum class EngineKind {
  kRegular,
  kExtendedRegular,
  kSafePlan,
  kSampling,
};

const char* EngineKindName(EngineKind kind);

/// Options for the Lahar facade.
struct LaharOptions {
  PlanOptions plan;
  SamplingOptions sampling;
  /// Chain construction knobs for the streaming engines, including the
  /// chain lifecycle (lazy materialization / cold-chain spill; see
  /// docs/PERF.md "Chain lifecycle"). The kernel_cache / row_pool /
  /// stream_index pointers are ignored here — sessions wire those to the
  /// PreparedQuery's shared caches.
  ChainOptions chain;
  /// Fall back to sampling when an exact engine rejects the query (unsafe
  /// queries, or safe queries outside the implemented algebra). When false,
  /// such queries return an error Status instead.
  bool allow_sampling_fallback = true;
};

/// \brief Result of evaluating a query over the whole database.
struct QueryAnswer {
  /// mu(q@t) for t = 1..horizon (index 0 unused).
  std::vector<double> probs;
  EngineKind engine = EngineKind::kRegular;
  QueryClass query_class = QueryClass::kRegular;
  /// False when the sampling engine produced the (epsilon, delta) estimate.
  bool exact = true;
};

class QuerySession;  // engine/session.h

/// \brief Facade over the four engines.
class Lahar {
 public:
  /// The database is non-const because parsing interns new symbols through
  /// its interner; stream contents are never modified.
  explicit Lahar(EventDatabase* db, LaharOptions options = {})
      : db_(db), options_(options) {}

  /// Parses and analyzes a query without running it.
  Result<PreparedQuery> Prepare(std::string_view text) const;

  /// Parses, routes, and evaluates a query text.
  Result<QueryAnswer> Run(std::string_view text) const;

  /// Evaluates an already-prepared query.
  Result<QueryAnswer> Run(const PreparedQuery& prepared) const;

  /// Opens an incremental standing-query session for `text`, routed to the
  /// cheapest engine able to serve it (see engine/session.h). Every query
  /// class is servable; with allow_sampling_fallback disabled, Safe queries
  /// without a compilable plan and Unsafe queries are rejected with the
  /// class in the kQueryClassPayload payload.
  Result<std::unique_ptr<QuerySession>> OpenSession(
      std::string_view text) const;
  Result<std::unique_ptr<QuerySession>> OpenSession(
      const PreparedQuery& prepared) const;

  const EventDatabase& db() const { return *db_; }

 private:
  EventDatabase* db_;
  LaharOptions options_;
};

}  // namespace lahar

#endif  // LAHAR_ENGINE_LAHAR_H_
