#include "engine/sampling_engine.h"

#include <cmath>
#include <unordered_map>

#include "analysis/bindings.h"
#include "analysis/classify.h"

namespace lahar {

size_t HoeffdingSamples(double epsilon, double delta) {
  return static_cast<size_t>(
      std::ceil(std::log(2.0 / delta) / (2.0 * epsilon * epsilon)));
}

Result<SamplingEngine> SamplingEngine::Create(QueryPtr q,
                                              const EventDatabase& db,
                                              const SamplingOptions& options) {
  if (q == nullptr) return Status::InvalidArgument("null query");
  SamplingEngine engine;
  engine.query_ = q;
  engine.db_ = &db;
  engine.horizon_ = db.horizon();
  engine.num_samples_ = options.num_samples > 0
                            ? options.num_samples
                            : HoeffdingSamples(options.epsilon, options.delta);
  engine.seed_ = options.seed;

  // Try the incremental NFA path: every grounding must be regular.
  auto nq = Normalize(*q);
  if (nq.ok()) {
    Classification cls = Classify(*nq, db);
    if (cls.query_class == QueryClass::kRegular ||
        cls.query_class == QueryClass::kExtendedRegular) {
      std::vector<Binding> bindings =
          EnumerateBindings(*nq, db, nq->SharedVars());
      std::unordered_map<StreamId, size_t> slot_of_stream;
      std::vector<std::vector<size_t>> chain_slots;
      bool ok = true;
      for (const Binding& b : bindings) {
        NormalizedQuery grounded = nq->Substitute(b);
        auto nfa = QueryNfa::Build(grounded);
        auto table = SymbolTable::Build(grounded, db);
        if (!nfa.ok() || !table.ok()) {
          ok = false;
          break;
        }
        GroundedChain chain;
        chain.nfa = std::make_shared<const QueryNfa>(std::move(*nfa));
        chain.symbols = std::make_shared<const SymbolTable>(std::move(*table));
        std::vector<size_t> slots;
        for (StreamId s : chain.symbols->participating()) {
          auto [it, inserted] =
              slot_of_stream.emplace(s, slot_of_stream.size());
          slots.push_back(it->second);
        }
        chain_slots.push_back(std::move(slots));
        engine.chains_.push_back(std::move(chain));
      }
      if (ok) {
        engine.slot_streams_.resize(slot_of_stream.size());
        for (const auto& [sid, slot] : slot_of_stream) {
          engine.slot_streams_[slot] = sid;
        }
        engine.chain_slots_ = std::move(chain_slots);
        for (GroundedChain& chain : engine.chains_) {
          chain.states.assign(engine.num_samples_,
                              chain.nfa->InitialStates());
        }
        engine.values_.assign(
            engine.num_samples_ * std::max<size_t>(1, slot_of_stream.size()),
            kBottom);
        Rng seeder(engine.seed_);
        for (size_t i = 0; i < engine.num_samples_; ++i) {
          engine.sample_rngs_.push_back(seeder.Split());
        }
        return engine;
      }
      engine.chains_.clear();
    }
  }
  // General path: per-world reference evaluation in Run().
  return engine;
}

Result<double> SamplingEngine::Step() {
  if (!incremental()) {
    return Status::InvalidArgument(
        "Step() requires the incremental NFA path (regular groundings)");
  }
  Timestamp next = t_ + 1;
  const size_t num_slots = slot_streams_.size();
  size_t accepted = 0;
  std::vector<double> row;
  for (size_t i = 0; i < num_samples_; ++i) {
    Rng& rng = sample_rngs_[i];
    DomainIndex* vals = &values_[i * std::max<size_t>(1, num_slots)];
    // Sample each participating stream's next value exactly once.
    for (size_t slot = 0; slot < num_slots; ++slot) {
      const Stream& s = db_->stream(slot_streams_[slot]);
      if (next > s.horizon()) {
        vals[slot] = kBottom;
        continue;
      }
      if (s.markovian() && next > 1) {
        const Matrix& cpt = s.CptAt(next - 1);
        const double* r = cpt.Row(vals[slot]);
        row.assign(r, r + cpt.cols());
        size_t d = rng.Categorical(row);
        vals[slot] = d >= row.size() ? kBottom : static_cast<DomainIndex>(d);
      } else {
        const auto& m = s.MarginalAt(next);
        if (m.empty()) {
          vals[slot] = kBottom;
        } else {
          size_t d = rng.Categorical(m);
          vals[slot] = d >= m.size() ? kBottom : static_cast<DomainIndex>(d);
        }
      }
    }
    // Advance every chain; the sample satisfies q@t if any chain accepts.
    bool any = false;
    for (size_t c = 0; c < chains_.size(); ++c) {
      GroundedChain& chain = chains_[c];
      SymbolMask input = 0;
      const std::vector<size_t>& slots = chain_slots_[c];
      for (size_t j = 0; j < slots.size(); ++j) {
        input |= chain.symbols->MaskFor(j, vals[slots[j]]);
      }
      chain.states[i] = chain.nfa->Transition(chain.states[i], input);
      any = any || chain.nfa->Accepts(chain.states[i]);
    }
    accepted += any ? 1 : 0;
  }
  t_ = next;
  return static_cast<double>(accepted) / static_cast<double>(num_samples_);
}

Result<std::vector<double>> SamplingEngine::Run() {
  std::vector<double> probs(horizon_ + 1, 0.0);
  if (incremental()) {
    for (Timestamp t = 1; t <= horizon_; ++t) {
      LAHAR_ASSIGN_OR_RETURN(probs[t], Step());
    }
    return probs;
  }
  Rng seeder(seed_);
  for (size_t i = 0; i < num_samples_; ++i) {
    Rng rng = seeder.Split();
    World w = SampleWorld(*db_, &rng);
    LAHAR_ASSIGN_OR_RETURN(std::vector<bool> sat,
                           SatisfiedAt(*query_, *db_, w));
    for (Timestamp t = 1; t <= horizon_; ++t) {
      if (sat[t]) probs[t] += 1.0;
    }
  }
  for (double& p : probs) p /= static_cast<double>(num_samples_);
  return probs;
}

}  // namespace lahar
