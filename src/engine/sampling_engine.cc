#include "engine/sampling_engine.h"

#include <cmath>
#include <unordered_map>

#include "analysis/bindings.h"
#include "analysis/classify.h"

namespace lahar {

size_t HoeffdingSamples(double epsilon, double delta) {
  return static_cast<size_t>(
      std::ceil(std::log(2.0 / delta) / (2.0 * epsilon * epsilon)));
}

Result<SamplingEngine> SamplingEngine::Create(QueryPtr q,
                                              const EventDatabase& db,
                                              const SamplingOptions& options) {
  if (q == nullptr) return Status::InvalidArgument("null query");
  SamplingEngine engine;
  engine.query_ = q;
  engine.db_ = &db;
  engine.horizon_ = db.horizon();
  engine.num_samples_ = options.num_samples > 0
                            ? options.num_samples
                            : HoeffdingSamples(options.epsilon, options.delta);
  engine.seed_ = options.seed;
  engine.accepted_.assign(engine.num_samples_, 0);
  engine.sample_status_.assign(engine.num_samples_, Status::OK());

  // Try the incremental NFA path: every grounding must be regular.
  auto nq = Normalize(*q);
  if (nq.ok()) {
    Classification cls = Classify(*nq, db);
    if (cls.query_class == QueryClass::kRegular ||
        cls.query_class == QueryClass::kExtendedRegular) {
      std::vector<Binding> bindings =
          EnumerateBindings(*nq, db, nq->SharedVars());
      std::unordered_map<StreamId, size_t> slot_of_stream;
      std::vector<std::vector<size_t>> chain_slots;
      bool ok = true;
      for (const Binding& b : bindings) {
        NormalizedQuery grounded = nq->Substitute(b);
        auto nfa = QueryNfa::Build(grounded);
        auto table = SymbolTable::Build(grounded, db);
        if (!nfa.ok() || !table.ok()) {
          ok = false;
          break;
        }
        GroundedChain chain;
        chain.nfa = std::make_shared<const QueryNfa>(std::move(*nfa));
        chain.symbols = std::make_shared<const SymbolTable>(std::move(*table));
        std::vector<size_t> slots;
        for (StreamId s : chain.symbols->participating()) {
          auto [it, inserted] =
              slot_of_stream.emplace(s, slot_of_stream.size());
          slots.push_back(it->second);
        }
        chain_slots.push_back(std::move(slots));
        engine.chains_.push_back(std::move(chain));
      }
      if (ok) {
        engine.slot_streams_.resize(slot_of_stream.size());
        for (const auto& [sid, slot] : slot_of_stream) {
          engine.slot_streams_[slot] = sid;
        }
        engine.chain_slots_ = std::move(chain_slots);
        for (GroundedChain& chain : engine.chains_) {
          chain.states.assign(engine.num_samples_,
                              chain.nfa->InitialStates());
        }
        engine.values_.assign(
            engine.num_samples_ * std::max<size_t>(1, slot_of_stream.size()),
            kBottom);
        Rng seeder(engine.seed_);
        for (size_t i = 0; i < engine.num_samples_; ++i) {
          engine.sample_rngs_.push_back(seeder.Split());
        }
        return engine;
      }
      engine.chains_.clear();
    }
  }
  // General path: batch per-world reference evaluation in Run(), per-tick
  // world-prefix extension in Step(). Seeded identically to the NFA path so
  // incremental estimates are reproducible.
  Rng seeder(engine.seed_);
  for (size_t i = 0; i < engine.num_samples_; ++i) {
    engine.sample_rngs_.push_back(seeder.Split());
  }
  engine.worlds_.resize(engine.num_samples_);
  return engine;
}

void SamplingEngine::StepNfaSample(size_t i, Timestamp next,
                                   std::vector<double>* row) {
  const size_t num_slots = slot_streams_.size();
  Rng& rng = sample_rngs_[i];
  DomainIndex* vals = &values_[i * std::max<size_t>(1, num_slots)];
  // Sample each participating stream's next value exactly once.
  for (size_t slot = 0; slot < num_slots; ++slot) {
    const Stream& s = db_->stream(slot_streams_[slot]);
    if (next > s.horizon()) {
      vals[slot] = kBottom;
      continue;
    }
    if (s.markovian() && next > 1) {
      const Matrix& cpt = s.CptAt(next - 1);
      const double* r = cpt.Row(vals[slot]);
      row->assign(r, r + cpt.cols());
      size_t d = rng.Categorical(*row);
      vals[slot] = d >= row->size() ? kBottom : static_cast<DomainIndex>(d);
    } else {
      const auto& m = s.MarginalAt(next);
      if (m.empty()) {
        vals[slot] = kBottom;
      } else {
        size_t d = rng.Categorical(m);
        vals[slot] = d >= m.size() ? kBottom : static_cast<DomainIndex>(d);
      }
    }
  }
  // Advance every chain; the sample satisfies q@t if any chain accepts.
  bool any = false;
  for (size_t c = 0; c < chains_.size(); ++c) {
    GroundedChain& chain = chains_[c];
    SymbolMask input = 0;
    const std::vector<size_t>& slots = chain_slots_[c];
    for (size_t j = 0; j < slots.size(); ++j) {
      input |= chain.symbols->MaskFor(j, vals[slots[j]]);
    }
    chain.states[i] = chain.nfa->Transition(chain.states[i], input);
    any = any || chain.nfa->Accepts(chain.states[i]);
  }
  accepted_[i] = any ? 1 : 0;
}

Status SamplingEngine::StepWorldSample(size_t i, Timestamp next) {
  // Extend the sample's world prefix through `next` — and no further, even
  // when streams already hold later timesteps (the windowed executor
  // applies batches ahead of execution). Capping at `next` fixes the RNG
  // consumption order to one draw per (sample, stream, tick) in tick
  // order, so estimates are bit-identical no matter how far ingestion has
  // run ahead of the tick being executed. Forward-samples exactly as
  // Stream::SampleTrajectory does, then re-evaluates the reference
  // semantics on the (deterministic) prefix.
  World& w = worlds_[i];
  Rng& rng = sample_rngs_[i];
  if (w.values.size() < db_->num_streams()) {
    w.values.resize(db_->num_streams());
  }
  for (StreamId s = 0; s < db_->num_streams(); ++s) {
    const Stream& stream = db_->stream(s);
    const Timestamp limit = std::min<Timestamp>(stream.horizon(), next);
    std::vector<DomainIndex>& traj = w.values[s];
    if (traj.empty()) traj.push_back(kBottom);  // index 0 unused
    for (Timestamp t = static_cast<Timestamp>(traj.size());
         t <= limit; ++t) {
      if (stream.markovian() && t > 1) {
        const Matrix& cpt = stream.CptAt(t - 1);
        const double* r = cpt.Row(traj[t - 1]);
        std::vector<double> row(r, r + cpt.cols());
        size_t d = rng.Categorical(row);
        traj.push_back(d >= row.size() ? kBottom
                                       : static_cast<DomainIndex>(d));
      } else {
        const auto& m = stream.MarginalAt(t);
        if (m.empty()) {
          traj.push_back(kBottom);
        } else {
          size_t d = rng.Categorical(m);
          traj.push_back(d >= m.size() ? kBottom
                                       : static_cast<DomainIndex>(d));
        }
      }
    }
  }
  LAHAR_ASSIGN_OR_RETURN(std::vector<bool> sat,
                         SatisfiedAt(*query_, *db_, w));
  accepted_[i] =
      next < static_cast<Timestamp>(sat.size()) && sat[next] ? 1 : 0;
  return Status::OK();
}

Status SamplingEngine::PrepareStep() {
  for (GroundedChain& chain : chains_) {
    if (chain.symbols->CoversDomains(*db_)) continue;
    LAHAR_ASSIGN_OR_RETURN(SymbolTable grown,
                           chain.symbols->WithGrownDomains(*db_));
    chain.symbols = std::make_shared<const SymbolTable>(std::move(grown));
  }
  return Status::OK();
}

void SamplingEngine::StepSampleRange(size_t begin, size_t end) {
  end = std::min(end, num_samples_);
  Timestamp next = t_ + 1;
  if (incremental()) {
    std::vector<double> row;
    for (size_t i = begin; i < end; ++i) StepNfaSample(i, next, &row);
  } else {
    for (size_t i = begin; i < end; ++i) {
      sample_status_[i] = StepWorldSample(i, next);
    }
  }
}

Result<double> SamplingEngine::CommitStep() {
  t_ = t_ + 1;
  size_t accepted = 0;
  for (size_t i = 0; i < accepted_.size(); ++i) {
    if (!sample_status_.empty()) LAHAR_RETURN_NOT_OK(sample_status_[i]);
    accepted += accepted_[i];
  }
  return static_cast<double>(accepted) / static_cast<double>(num_samples_);
}

Result<double> SamplingEngine::Step() {
  LAHAR_RETURN_NOT_OK(PrepareStep());
  StepSampleRange(0, num_samples_);
  return CommitStep();
}

Result<std::vector<double>> SamplingEngine::Run() {
  std::vector<double> probs(horizon_ + 1, 0.0);
  if (incremental()) {
    for (Timestamp t = 1; t <= horizon_; ++t) {
      LAHAR_ASSIGN_OR_RETURN(probs[t], Step());
    }
    return probs;
  }
  Rng seeder(seed_);
  for (size_t i = 0; i < num_samples_; ++i) {
    Rng rng = seeder.Split();
    World w = SampleWorld(*db_, &rng);
    LAHAR_ASSIGN_OR_RETURN(std::vector<bool> sat,
                           SatisfiedAt(*query_, *db_, w));
    for (Timestamp t = 1; t <= horizon_; ++t) {
      if (sat[t]) probs[t] += 1.0;
    }
  }
  for (double& p : probs) p /= static_cast<double>(num_samples_);
  return probs;
}

}  // namespace lahar
