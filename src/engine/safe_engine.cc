#include "engine/safe_engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "analysis/bindings.h"

namespace lahar {

// ---------------------------------------------------------------------------
// Node evaluators. Each instance is one (plan node, grounding) pair and
// computes memoized interval probabilities P[q[ts, tf]].
// ---------------------------------------------------------------------------

class SafePlanEngine::NodeEval {
 public:
  virtual ~NodeEval() = default;

  /// P[subquery satisfied at some t in [ts, tf]]; ts >= 1.
  virtual Result<double> Prob(Timestamp ts, Timestamp tf) = 0;

  /// Extends the node's tables to cover timesteps up to `t`. Already
  /// computed entries are never recomputed: the tables grow monotonically
  /// in tf (Section 3.3's lazy evaluation), so extension is bit-identical
  /// to building them at the larger horizon in the first place.
  virtual Status ExtendTo(Timestamp t) = 0;

  /// Relative per-tick cost estimate (runtime shard balancing).
  virtual size_t StepCost() const = 0;

  /// Number of independently advanceable shard units under this node.
  virtual size_t NumShardUnits() const { return 1; }

  /// Advances shard unit `unit` to tick `t`. `warm` asks the unit to also
  /// pre-compute its diagonal probability P[t, t] into its (bounded) memo,
  /// so the single-threaded combine at FinishAdvance is a pure memo hit.
  /// Units are disjoint subtrees (the safety precondition keeps their
  /// streams disjoint), so distinct units may advance concurrently.
  virtual Status AdvanceUnit(size_t unit, Timestamp t, bool warm) {
    (void)unit;
    Status s = ExtendTo(t);
    if (s.ok() && warm) s = Prob(t, t).status();
    return s;
  }

  /// Per-unit cost estimate (runtime shard balancing).
  virtual size_t UnitCostOf(size_t unit) const {
    (void)unit;
    return StepCost();
  }

  /// Accumulates memo/row-cache counters over this subtree.
  virtual void AddMemoStats(SafeMemoStats* out) const { (void)out; }

  /// Serializes / restores the incremental evaluation state (frontier
  /// chains, witness tables). Bounded caches are not part of the state:
  /// they refill bit-identically on demand.
  virtual Status SaveNode(serial::Writer* w) const = 0;
  virtual Status LoadNode(serial::Reader* r) = 0;

  /// Streams whose events this subplan's probability depends on.
  const std::set<StreamId>& used_streams() const { return used_; }

 protected:
  std::set<StreamId> used_;
};

namespace {

using NodeEval = SafePlanEngine::NodeEval;

// Node tags in the serialized evaluator state (SaveNode/LoadNode).
constexpr uint8_t kRegTag = 1;
constexpr uint8_t kSeqTag = 2;
constexpr uint8_t kProjectTag = 3;

}  // namespace

// The reg<V> leaf: interval probabilities from the Markov-chain algorithm
// with an absorbing accept flag. Rows (fixed ts, all tf) are computed on
// demand and kept in a bounded LRU arena; instead of one chain snapshot per
// timestep, a single frontier chain advances with the stream and sparse
// keyframes (every reg_keyframe_interval steps) let an evicted row rebuild
// its start-of-row chain deterministically — the rebuilt chain replays the
// exact Step() sequence of the original, so row values are bit-identical.
class SafePlanEngine::RegEval : public SafePlanEngine::NodeEval {
 public:
  static Result<std::unique_ptr<RegEval>> Make(const NormalizedQuery& grounded,
                                               const EventDatabase& db,
                                               KernelCache* kernel_cache,
                                               const SafePlanOptions& safe) {
    // One cache per plan: the project operator grounds the same subquery
    // once per key, and every grounding (plus every keyframe/row copy)
    // shares a single compiled kernel.
    ChainOptions options;
    options.kernel_cache = kernel_cache;
    LAHAR_ASSIGN_OR_RETURN(RegularChain chain,
                           RegularChain::Create(grounded, db, options));
    auto eval = std::make_unique<RegEval>();
    eval->horizon_ = chain.horizon();
    for (StreamId s : chain.participating()) eval->used_.insert(s);
    eval->row_capacity_ = std::max<size_t>(1, safe.reg_row_capacity);
    eval->keyframe_interval_ = std::max<size_t>(1, safe.reg_keyframe_interval);
    eval->base_ = chain;
    eval->frontier_ = std::move(chain);
    return eval;
  }

  Result<double> Prob(Timestamp ts, Timestamp tf) override {
    if (ts < 1) ts = 1;
    if (tf > horizon_) tf = horizon_;
    if (ts > tf || ts > horizon_) return 0.0;
    return RowValue(ts, tf);
  }

  // The chains read the database live and rows extend on demand, so growing
  // the leaf is just widening the clamp: O(1) per tick, the frontier chain
  // advances lazily the first time a row past its position is requested.
  Status ExtendTo(Timestamp t) override {
    if (t > horizon_) horizon_ = t;
    return Status::OK();
  }

  size_t StepCost() const override {
    return base_.StepCost() * (1 + rows_.size());
  }

  void AddMemoStats(SafeMemoStats* out) const override {
    out->rows_live += rows_.size();
    out->row_evictions += row_evictions_;
    out->row_rebuilds += row_rebuilds_;
  }

  Status SaveNode(serial::Writer* w) const override {
    w->U8(kRegTag);
    w->U32(horizon_);
    frontier_.SaveState(w);
    w->U64(keyframes_.size());
    for (const RegularChain& kf : keyframes_) kf.SaveState(w);
    return Status::OK();
  }

  Status LoadNode(serial::Reader* r) override {
    uint8_t tag = 0;
    LAHAR_RETURN_NOT_OK(r->U8(&tag));
    if (tag != kRegTag) {
      return Status::InvalidArgument("safe-plan state: expected reg leaf");
    }
    LAHAR_RETURN_NOT_OK(r->U32(&horizon_));
    LAHAR_RETURN_NOT_OK(frontier_.LoadState(r));
    uint64_t n = 0;
    LAHAR_RETURN_NOT_OK(r->U64(&n));
    keyframes_.clear();
    for (uint64_t i = 0; i < n; ++i) {
      RegularChain kf = base_;
      LAHAR_RETURN_NOT_OK(kf.LoadState(r));
      keyframes_.push_back(std::move(kf));
    }
    rows_.clear();
    created_.clear();
    return Status::OK();
  }

 private:
  // A partially computed row: the accept-tracking chain frozen at the last
  // computed timestep, extended only as far as callers actually ask — the
  // lazy evaluation behind Fig. 14(b).
  struct LazyRow {
    RegularChain chain;
    std::vector<double> values;  // values[b - a] = P[accept in [a, b]]
    uint64_t last_used = 0;
  };

  void AdvanceFrontierTo(Timestamp t) {
    while (frontier_.time() < t) {
      frontier_.Step();
      if (frontier_.time() % keyframe_interval_ == 0) {
        keyframes_.push_back(frontier_);
      }
    }
  }

  // Chain state after consuming timesteps 1..t: the frontier itself when t
  // is at or past it, else a copy of the nearest keyframe stepped forward.
  // Copies are exact and Step() is deterministic, so the result is the same
  // chain state no matter which start it was replayed from.
  RegularChain ChainAt(Timestamp t) {
    if (t >= frontier_.time()) {
      AdvanceFrontierTo(t);
      return frontier_;
    }
    const RegularChain* start = &base_;
    for (const RegularChain& kf : keyframes_) {
      if (kf.time() <= t) {
        start = &kf;
      } else {
        break;
      }
    }
    RegularChain chain = *start;
    while (chain.time() < t) chain.Step();
    return chain;
  }

  double RowValue(Timestamp a, Timestamp b) {
    auto it = rows_.find(a);
    if (it == rows_.end()) {
      if (created_.count(a)) {
        ++row_rebuilds_;  // evicted earlier, rebuilt from a keyframe
      } else {
        created_.insert(a);
      }
      RegularChain chain = ChainAt(a - 1);
      chain.EnableAcceptTracking();
      it = rows_.emplace(a, LazyRow{std::move(chain), {}, 0}).first;
      if (rows_.size() > row_capacity_) EvictColdestRow(a);
    }
    LazyRow& row = it->second;
    row.last_used = ++use_clock_;
    while (row.values.size() <= static_cast<size_t>(b - a)) {
      row.chain.Step();
      row.values.push_back(row.chain.AcceptedProb());
    }
    return row.values[b - a];
  }

  void EvictColdestRow(Timestamp keep) {
    auto victim = rows_.end();
    for (auto it = rows_.begin(); it != rows_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == rows_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim != rows_.end()) {
      rows_.erase(victim);
      ++row_evictions_;
    }
  }

  Timestamp horizon_ = 0;
  size_t row_capacity_ = 512;
  size_t keyframe_interval_ = 4096;
  RegularChain base_;      // chain at time 0 (keyframe of last resort)
  RegularChain frontier_;  // advances with the stream; rebuild source
  std::vector<RegularChain> keyframes_;  // ascending time()
  std::unordered_map<Timestamp, LazyRow> rows_;
  std::unordered_set<Timestamp> created_;  // row starts ever materialized
  uint64_t use_clock_ = 0;
  uint64_t row_evictions_ = 0;
  uint64_t row_rebuilds_ = 0;
};

// The seq operator: Eq. (3)'s precursor/witness decomposition. Serving keeps
// a sorted index of the timesteps whose witness probability is nonzero; the
// sparse kernels walk only those, skipping the exact-zero factors the dense
// loops would multiply through (x * 1.0 and 0.0-valued terms are IEEE
// no-ops, so the answers are bit-identical — see docs/PERF.md).
class SafePlanEngine::SeqEval : public SafePlanEngine::NodeEval {
 public:
  static Result<std::unique_ptr<SeqEval>> Make(
      std::unique_ptr<NodeEval> child, const NormalizedSubgoal& goal,
      const Binding& binding, const EventDatabase& db, bool exclude_left,
      const PlanOptions& options) {
    auto eval = std::make_unique<SeqEval>();
    eval->db_ = &db;
    eval->truncate_ = options.seq_truncate;
    eval->incremental_ = options.safe.incremental;
    eval->memo_.assign(std::max<size_t>(1, options.safe.seq_memo_capacity),
                       MemoEntry{});
    eval->exclude_left_ = exclude_left;
    eval->used_ = child->used_streams();
    eval->child_ = std::move(child);

    // Ground the subgoal and localize its predicates.
    eval->goal_sub_ = goal.goal;
    for (Term& t : eval->goal_sub_.terms) {
      if (!t.is_var) continue;
      auto it = binding.find(t.var);
      if (it != binding.end()) t = Term::Const(it->second);
    }
    eval->match_ = goal.match_pred.Substitute(binding);
    eval->accept_ = goal.accept_pred.Substitute(binding);

    eval->schema_ = db.FindSchema(eval->goal_sub_.type);
    if (eval->schema_ == nullptr) {
      return Status::NotFound("no schema for seq subgoal");
    }
    // Classify every candidate witness stream up front so structural errors
    // (Markovian witness streams) surface at Create time, as they did when
    // the whole table was built eagerly.
    for (StreamId sid : db.StreamsOfType(eval->goal_sub_.type)) {
      if (eval->exclude_left_ && eval->child_->used_streams().count(sid)) {
        continue;
      }
      LAHAR_RETURN_NOT_OK(eval->RefreshWitness(sid));
    }
    eval->w_.assign(1, 0.0);
    LAHAR_RETURN_NOT_OK(eval->ExtendTo(db.horizon()));
    return eval;
  }

  // Per-timestep probability that *some* stream produces a witness event,
  // appended one column per new timestep. Per t, the (1 - pa) factors
  // multiply in StreamsOfType order — the same sequence a from-scratch
  // build walks — so extension is bit-identical to eager evaluation.
  Status ExtendTo(Timestamp target) override {
    LAHAR_RETURN_NOT_OK(child_->ExtendTo(target));
    if (target <= horizon_) return Status::OK();
    w_.resize(target + 1, 0.0);
    for (Timestamp t = horizon_ + 1; t <= target; ++t) {
      double none = 1.0;
      for (StreamId sid : db_->StreamsOfType(goal_sub_.type)) {
        if (exclude_left_ && child_->used_streams().count(sid)) continue;
        const Stream& stream = db_->stream(sid);
        if (t > stream.horizon()) continue;
        LAHAR_RETURN_NOT_OK(RefreshWitness(sid));
        const Witness& wit = witnesses_[sid];
        if (!wit.can_match) continue;
        const auto& marg = stream.MarginalAt(t);
        double pa = 0, pm_only = 0;
        for (DomainIndex d = 1; d < marg.size(); ++d) {
          if (wit.matches[d]) pa += marg[d];
          if (wit.matches_m_only[d]) pm_only += marg[d];
        }
        if (pm_only > 1e-12) {
          return Status::Unimplemented(
              "the seq operator's right-hand subgoal has a trailing "
              "selection that can fail on matching events (q_s blocking "
              "semantics); rewrite the condition into the subgoal predicate "
              "(':' form) or use the sampling engine");
        }
        none *= 1.0 - pa;
      }
      w_[t] = 1.0 - none;
      if (w_[t] != 0.0) active_.push_back(t);
    }
    horizon_ = target;
    return Status::OK();
  }

  size_t StepCost() const override {
    size_t groundings = 0;
    for (const auto& [sid, wit] : witnesses_) {
      if (wit.can_match) ++groundings;
    }
    return child_->StepCost() + groundings + last_live_window_ + 1;
  }

  size_t NumShardUnits() const override { return child_->NumShardUnits(); }

  // Shard work forwards to the child's grounding groups. warm is forced off:
  // this node queries the child at (lo, tfp - 1) intervals, so warming the
  // child's (t, t) diagonal would only churn its row caches.
  Status AdvanceUnit(size_t unit, Timestamp t, bool warm) override {
    (void)warm;
    return child_->AdvanceUnit(unit, t, false);
  }

  size_t UnitCostOf(size_t unit) const override {
    return child_->UnitCostOf(unit) + 1;
  }

  void AddMemoStats(SafeMemoStats* out) const override {
    out->memo_entries += memo_live_;
    out->memo_hits += memo_hits_;
    out->memo_misses += memo_misses_;
    out->memo_evictions += memo_evictions_;
    child_->AddMemoStats(out);
  }

  Status SaveNode(serial::Writer* w) const override {
    w->U8(kSeqTag);
    w->U32(horizon_);
    w->DoubleVec(w_);
    return child_->SaveNode(w);
  }

  Status LoadNode(serial::Reader* r) override {
    uint8_t tag = 0;
    LAHAR_RETURN_NOT_OK(r->U8(&tag));
    if (tag != kSeqTag) {
      return Status::InvalidArgument("safe-plan state: expected seq node");
    }
    LAHAR_RETURN_NOT_OK(r->U32(&horizon_));
    LAHAR_RETURN_NOT_OK(r->DoubleVec(&w_));
    if (w_.size() < static_cast<size_t>(horizon_) + 1) {
      return Status::InvalidArgument("safe-plan state: witness table short");
    }
    active_.clear();
    for (Timestamp t = 1; t <= horizon_; ++t) {
      if (w_[t] != 0.0) active_.push_back(t);
    }
    memo_.assign(memo_.size(), MemoEntry{});
    memo_live_ = 0;
    memo_hits_ = memo_misses_ = memo_evictions_ = 0;
    return child_->LoadNode(r);
  }

  Result<double> Prob(Timestamp ts, Timestamp tf) override {
    if (ts < 1) ts = 1;
    if (tf > horizon_) tf = horizon_;
    if (ts > tf) return 0.0;
    MemoEntry& entry = memo_[MemoSlot(ts, tf)];
    if (entry.valid && entry.ts == ts && entry.tf == tf) {
      ++memo_hits_;
      return entry.value;
    }
    ++memo_misses_;
    double total = 0.0;
    if (incremental_) {
      LAHAR_ASSIGN_OR_RETURN(total, ComputeSparse(ts, tf));
    } else {
      LAHAR_ASSIGN_OR_RETURN(total, ComputeDense(ts, tf));
    }
    if (entry.valid) {
      ++memo_evictions_;
    } else {
      ++memo_live_;
    }
    entry = MemoEntry{ts, tf, total, true};
    return total;
  }

 private:
  // Which of a stream's domain values satisfy the grounded subgoal, cached
  // across ExtendTo calls and re-evaluated only for domain values interned
  // after the last refresh.
  struct Witness {
    std::vector<bool> matches;         // accept-qualified values
    std::vector<bool> matches_m_only;  // match- but not accept-qualified
    bool can_match = false;
  };

  // One direct-mapped (ts, tf) interval memo slot; collisions overwrite
  // (counted as evictions) and recompute bit-identically on the next miss.
  struct MemoEntry {
    Timestamp ts = 0;
    Timestamp tf = 0;
    double value = 0.0;
    bool valid = false;
  };

  size_t MemoSlot(Timestamp ts, Timestamp tf) const {
    uint64_t key = (static_cast<uint64_t>(ts) << 32) | tf;
    return static_cast<size_t>((key * 0x9e3779b97f4a7c15ULL) >> 32) %
           memo_.size();
  }

  // Eq. (3) over the nonzero witness positions only. The dense loops below
  // walk every u in [1, tf]; at a position with w[u] == 0 they multiply the
  // suffix products by 1.0 - 0.0 (a bit-exact no-op), produce a 0.0-valued
  // precursor/witness term that the <= kTruncate / > kTruncate tests then
  // drop (for any kTruncate >= 0, including the seq_truncate = 0 eager
  // ablation), and leave the break conditions unchanged. So walking only
  // active_ performs the same IEEE operations in the same order: answers
  // are bit-identical, and per-call work is O(live window), not O(t).
  Result<double> ComputeSparse(Timestamp ts, Timestamp tf) {
    const double kTruncate = truncate_;
    // Precursor terms over T_p in descending order; pp = w[tsp] * suffix.
    scratch_.clear();
    double suffix = 1.0;  // prod of (1 - w[u]) for u in (tsp, ts)
    auto lo_it = std::lower_bound(active_.begin(), active_.end(), ts);
    for (auto it = lo_it; it != active_.begin();) {
      --it;
      Timestamp tsp = *it;
      scratch_.emplace_back(tsp, w_[tsp] * suffix);
      suffix *= 1.0 - w_[tsp];
      if (suffix < kTruncate) {
        suffix = 0.0;
        break;
      }
    }
    const double precursor0 = suffix;  // no g-event before ts at all

    double total = 0.0;
    double wit_suffix = 1.0;  // prod of (1 - w[u]) for u in (tfp, tf]
    auto hi_it = std::upper_bound(active_.begin(), active_.end(), tf);
    for (auto it = hi_it; it != lo_it;) {
      --it;
      Timestamp tfp = *it;
      double pw = w_[tfp] * wit_suffix;
      wit_suffix *= 1.0 - w_[tfp];
      if (pw > kTruncate) {
        double inner = 0.0;
        if (precursor0 > kTruncate && tfp >= 2) {
          LAHAR_ASSIGN_OR_RETURN(double pc, child_->Prob(1, tfp - 1));
          inner += precursor0 * pc;
        }
        for (size_t k = scratch_.size(); k-- > 0;) {  // ascending tsp
          const auto& [tsp, pp] = scratch_[k];
          if (pp <= kTruncate) continue;
          if (tfp < tsp + 1) continue;  // empty interval [tsp, tfp - 1]
          LAHAR_ASSIGN_OR_RETURN(double pc, child_->Prob(tsp, tfp - 1));
          inner += pp * pc;
        }
        total += pw * inner;
      }
      if (wit_suffix < kTruncate) break;
    }
    last_live_window_ = scratch_.size();
    return total;
  }

  // Reference path (SafePlanOptions::incremental = false): the dense
  // Eq. (3) loops over every timestep. Kept selectable for verification —
  // ComputeSparse must match it bit-for-bit — and as the benchmarks'
  // "pre-PR" cell.
  Result<double> ComputeDense(Timestamp ts, Timestamp tf) {
    // Precursor distribution over T_p (shared across all witnesses).
    // precursor[i]: i = 0 means "no precursor", else T_p = i. Terms whose
    // probability falls below kTruncate contribute nothing measurable and
    // are dropped — with dense witness streams this keeps each evaluation
    // near-constant work, which is what makes the measured Fig. 14(b)
    // scaling so much better than the O(T^3) analytic bound.
    const double kTruncate = truncate_;
    std::vector<double> precursor(ts, 0.0);
    size_t window = 0;
    {
      double suffix = 1.0;  // prod of (1 - w[u]) for u in (ts', ts)
      for (Timestamp tsp = ts; tsp-- > 1;) {
        precursor[tsp] = w_[tsp] * suffix;
        suffix *= 1.0 - w_[tsp];
        ++window;
        if (suffix < kTruncate) {
          suffix = 0.0;
          break;
        }
      }
      precursor[0] = suffix;  // no g-event before ts at all
    }

    double total = 0.0;
    double wit_suffix = 1.0;  // prod of (1 - w[u]) for u in (tf', tf]
    for (Timestamp tfp = tf + 1; tfp-- > ts;) {
      double pw = w_[tfp] * wit_suffix;
      wit_suffix *= 1.0 - w_[tfp];
      if (pw > kTruncate) {
        double inner = 0.0;
        for (Timestamp tsp = 0; tsp < ts; ++tsp) {
          if (precursor[tsp] <= kTruncate) continue;
          Timestamp lo = tsp == 0 ? 1 : tsp;
          if (tfp < lo + 1) continue;  // empty interval [lo, tfp - 1]
          LAHAR_ASSIGN_OR_RETURN(double pc, child_->Prob(lo, tfp - 1));
          inner += precursor[tsp] * pc;
        }
        total += pw * inner;
      }
      if (wit_suffix < kTruncate) break;
    }
    last_live_window_ = window;
    return total;
  }

  Status RefreshWitness(StreamId sid) {
    const Stream& stream = db_->stream(sid);
    Witness& wit = witnesses_[sid];
    if (wit.matches.size() >= stream.domain_size()) return Status::OK();
    DomainIndex from = static_cast<DomainIndex>(wit.matches.size());
    if (from < 1) from = 1;  // index 0 is bottom
    wit.matches.resize(stream.domain_size(), false);
    wit.matches_m_only.resize(stream.domain_size(), false);
    Binding scratch;
    for (DomainIndex d = from; d < stream.domain_size(); ++d) {
      scratch.clear();
      if (!UnifyEvent(goal_sub_, stream.key(), stream.TupleOf(d),
                      schema_->num_key_attrs, &scratch)) {
        continue;
      }
      LAHAR_ASSIGN_OR_RETURN(bool m, match_.Eval(scratch, *db_));
      if (!m) continue;
      LAHAR_ASSIGN_OR_RETURN(bool a, accept_.Eval(scratch, *db_));
      if (a) {
        wit.matches[d] = true;
      } else {
        wit.matches_m_only[d] = true;
      }
      wit.can_match = true;
    }
    if (!wit.can_match) return Status::OK();
    if (stream.markovian()) {
      return Status::InvalidArgument(
          "the seq operator requires witness streams of type '" +
          db_->interner().Name(stream.type()) +
          "' to be independent across time (Section 3.3 assumption); "
          "archived Markovian streams are only supported inside reg "
          "leaves");
    }
    used_.insert(sid);
    return Status::OK();
  }

  const EventDatabase* db_ = nullptr;
  const EventSchema* schema_ = nullptr;
  Subgoal goal_sub_;  // grounded right-hand subgoal
  Condition match_;   // localized predicates
  Condition accept_;
  bool exclude_left_ = false;
  bool incremental_ = true;
  Timestamp horizon_ = 0;
  double truncate_ = 1e-12;
  std::unique_ptr<NodeEval> child_;
  std::unordered_map<StreamId, Witness> witnesses_;
  std::vector<double> w_;            // witness probability per timestep
  std::vector<Timestamp> active_;    // sorted timesteps with w_[t] != 0
  std::vector<MemoEntry> memo_;      // direct-mapped (ts, tf) memo
  size_t memo_live_ = 0;
  uint64_t memo_hits_ = 0;
  uint64_t memo_misses_ = 0;
  uint64_t memo_evictions_ = 0;
  // Reused per ComputeSparse call: (tsp, precursor probability) descending.
  std::vector<std::pair<Timestamp, double>> scratch_;
  size_t last_live_window_ = 0;  // precursor terms walked by the last call
};

// The independent-project operator: groundings of x use disjoint tuples, so
// P = 1 - prod over groundings (1 - P_grounding). The groundings are the
// natural shard units: their streams are disjoint by construction, so
// distinct children advance concurrently and the combine at FinishAdvance
// reads their warmed (t, t) memo entries.
class SafePlanEngine::ProjectEval : public SafePlanEngine::NodeEval {
 public:
  explicit ProjectEval(std::vector<std::unique_ptr<NodeEval>> children)
      : children_(std::move(children)) {
    for (const auto& c : children_) {
      used_.insert(c->used_streams().begin(), c->used_streams().end());
    }
  }

  Result<double> Prob(Timestamp ts, Timestamp tf) override {
    double none = 1.0;
    for (const auto& c : children_) {
      LAHAR_ASSIGN_OR_RETURN(double p, c->Prob(ts, tf));
      none *= 1.0 - p;
    }
    return 1.0 - none;
  }

  Status ExtendTo(Timestamp t) override {
    for (const auto& c : children_) LAHAR_RETURN_NOT_OK(c->ExtendTo(t));
    return Status::OK();
  }

  size_t StepCost() const override {
    size_t total = 1;
    for (const auto& c : children_) total += c->StepCost();
    return total;
  }

  size_t NumShardUnits() const override {
    return children_.empty() ? 1 : children_.size();
  }

  Status AdvanceUnit(size_t unit, Timestamp t, bool warm) override {
    if (children_.empty()) return Status::OK();
    if (unit >= children_.size()) {
      return Status::Internal("project shard unit out of range");
    }
    NodeEval& child = *children_[unit];
    LAHAR_RETURN_NOT_OK(child.ExtendTo(t));
    if (warm) return child.Prob(t, t).status();
    return Status::OK();
  }

  size_t UnitCostOf(size_t unit) const override {
    if (unit >= children_.size()) return 1;
    return children_[unit]->StepCost();
  }

  void AddMemoStats(SafeMemoStats* out) const override {
    for (const auto& c : children_) c->AddMemoStats(out);
  }

  Status SaveNode(serial::Writer* w) const override {
    w->U8(kProjectTag);
    w->U64(children_.size());
    for (const auto& c : children_) LAHAR_RETURN_NOT_OK(c->SaveNode(w));
    return Status::OK();
  }

  Status LoadNode(serial::Reader* r) override {
    uint8_t tag = 0;
    LAHAR_RETURN_NOT_OK(r->U8(&tag));
    if (tag != kProjectTag) {
      return Status::InvalidArgument("safe-plan state: expected project");
    }
    uint64_t n = 0;
    LAHAR_RETURN_NOT_OK(r->U64(&n));
    if (n != children_.size()) {
      return Status::InvalidArgument(
          "safe-plan state: grounding count mismatch (database snapshot "
          "differs from the checkpointed one)");
    }
    for (const auto& c : children_) LAHAR_RETURN_NOT_OK(c->LoadNode(r));
    return Status::OK();
  }

 private:
  std::vector<std::unique_ptr<NodeEval>> children_;
};

namespace {

// Builds the evaluator tree for `node` under `binding`.
Result<std::unique_ptr<NodeEval>> MakeEval(const SafePlanNode& node,
                                           const NormalizedQuery& full_query,
                                           const Binding& binding,
                                           const EventDatabase& db,
                                           const PlanOptions& options,
                                           KernelCache* kernel_cache) {
  switch (node.kind) {
    case SafePlanNode::Kind::kReg: {
      NormalizedQuery grounded = node.reg_query.Substitute(binding);
      LAHAR_ASSIGN_OR_RETURN(
          std::unique_ptr<SafePlanEngine::RegEval> eval,
          SafePlanEngine::RegEval::Make(grounded, db, kernel_cache,
                                        options.safe));
      return std::unique_ptr<NodeEval>(std::move(eval));
    }
    case SafePlanNode::Kind::kProject: {
      std::vector<std::unique_ptr<NodeEval>> children;
      std::set<Value> values = CandidateValues(
          full_query, db, node.project_var, binding, 0, node.prefix_len);
      for (const Value& v : values) {
        Binding extended = binding;
        extended[node.project_var] = v;
        LAHAR_ASSIGN_OR_RETURN(
            std::unique_ptr<NodeEval> child,
            MakeEval(*node.child, full_query, extended, db, options,
                     kernel_cache));
        children.push_back(std::move(child));
      }
      return std::unique_ptr<NodeEval>(
          new SafePlanEngine::ProjectEval(std::move(children)));
    }
    case SafePlanNode::Kind::kSeq: {
      LAHAR_ASSIGN_OR_RETURN(
          std::unique_ptr<NodeEval> child,
          MakeEval(*node.child, full_query, binding, db, options,
                   kernel_cache));
      LAHAR_ASSIGN_OR_RETURN(
          std::unique_ptr<SafePlanEngine::SeqEval> eval,
          SafePlanEngine::SeqEval::Make(std::move(child), node.seq_goal,
                                        binding, db,
                                        node.seq_exclude_left_streams,
                                        options));
      return std::unique_ptr<NodeEval>(std::move(eval));
    }
  }
  return Status::Internal("bad plan node");
}

// Version byte of the engine-level incremental state blob.
constexpr uint8_t kSafeStateVersion = 1;

}  // namespace

Result<SafePlanEngine> SafePlanEngine::Create(const NormalizedQuery& q,
                                              const EventDatabase& db,
                                              const PlanOptions& options) {
  SafePlanEngine engine;
  engine.db_ = &db;
  engine.options_ = options;
  LAHAR_ASSIGN_OR_RETURN(engine.plan_, CompileSafePlan(q, db, options));
  // Reg leaves share compiled kernels: plan-locally by default, or through
  // a caller-owned cache (the runtime registry's) so structurally equal
  // leaves across *plans* — and standalone regular queries — compile once.
  KernelCache local_cache;
  KernelCache* kernel_cache = options.safe.kernel_cache != nullptr
                                  ? options.safe.kernel_cache
                                  : &local_cache;
  LAHAR_ASSIGN_OR_RETURN(
      std::unique_ptr<NodeEval> root,
      MakeEval(*engine.plan_, q, Binding{}, db, options, kernel_cache));
  auto holder = std::shared_ptr<NodeEval>(std::move(root));
  engine.root_ = holder.get();
  engine.root_holder_ = holder;
  return engine;
}

Result<std::vector<double>> SafePlanEngine::Run() {
  LAHAR_RETURN_NOT_OK(root_->ExtendTo(db_->horizon()));
  std::vector<double> out(db_->horizon() + 1, 0.0);
  for (Timestamp t = 1; t <= db_->horizon(); ++t) {
    LAHAR_ASSIGN_OR_RETURN(out[t], root_->Prob(t, t));
  }
  return out;
}

Result<double> SafePlanEngine::IntervalProb(Timestamp ts, Timestamp tf) {
  if (ts < 1) {
    return Status::InvalidArgument(
        "IntervalProb requires ts >= 1 (timesteps are 1-based)");
  }
  if (ts > tf) {
    return Status::InvalidArgument(
        "IntervalProb requires ts <= tf (empty interval)");
  }
  return root_->Prob(ts, tf);
}

Status SafePlanEngine::ExtendTo(Timestamp t) { return root_->ExtendTo(t); }

Result<double> SafePlanEngine::AdvanceTo(Timestamp t) {
  LAHAR_RETURN_NOT_OK(root_->ExtendTo(t));
  return root_->Prob(t, t);
}

size_t SafePlanEngine::NumShardUnits() const {
  return root_->NumShardUnits();
}

void SafePlanEngine::PrepareShard(Timestamp t) {
  (void)t;
  shard_status_.assign(NumShardUnits(), Status::OK());
}

void SafePlanEngine::ShardAdvance(size_t begin, size_t end, Timestamp t) {
  const size_t n = shard_status_.size();
  for (size_t i = begin; i < end && i < n; ++i) {
    shard_status_[i] = root_->AdvanceUnit(i, t, /*warm=*/true);
  }
}

Result<double> SafePlanEngine::FinishAdvance(Timestamp t) {
  for (Status& s : shard_status_) {
    if (!s.ok()) {
      Status failed = std::move(s);
      shard_status_.clear();
      return failed;
    }
  }
  shard_status_.clear();
  // Extends whatever the shards did not cover (e.g. a root seq node's
  // witness table) and combines: the warmed child values are memo hits, so
  // the result is bit-identical to a single-threaded AdvanceTo(t).
  LAHAR_RETURN_NOT_OK(root_->ExtendTo(t));
  return root_->Prob(t, t);
}

size_t SafePlanEngine::StepCost() const { return root_->StepCost(); }

size_t SafePlanEngine::UnitCost(size_t unit) const {
  return root_->UnitCostOf(unit);
}

SafeMemoStats SafePlanEngine::MemoStats() const {
  SafeMemoStats out;
  root_->AddMemoStats(&out);
  return out;
}

Status SafePlanEngine::SaveState(serial::Writer* w) const {
  w->U8(kSafeStateVersion);
  return root_->SaveNode(w);
}

Status SafePlanEngine::LoadState(serial::Reader* r) {
  uint8_t version = 0;
  LAHAR_RETURN_NOT_OK(r->U8(&version));
  if (version != kSafeStateVersion) {
    return Status::InvalidArgument("unsupported safe-plan state version");
  }
  return root_->LoadNode(r);
}

}  // namespace lahar
