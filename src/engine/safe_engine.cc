#include "engine/safe_engine.h"

#include <cmath>
#include <unordered_map>

#include "analysis/bindings.h"

namespace lahar {

// ---------------------------------------------------------------------------
// Node evaluators. Each instance is one (plan node, grounding) pair and
// computes memoized interval probabilities P[q[ts, tf]].
// ---------------------------------------------------------------------------

class SafePlanEngine::NodeEval {
 public:
  virtual ~NodeEval() = default;

  /// P[subquery satisfied at some t in [ts, tf]]; ts >= 1.
  virtual Result<double> Prob(Timestamp ts, Timestamp tf) = 0;

  /// Extends the node's tables to cover timesteps up to `t`. Already
  /// computed entries are never recomputed: the tables grow monotonically
  /// in tf (Section 3.3's lazy evaluation), so extension is bit-identical
  /// to building them at the larger horizon in the first place.
  virtual Status ExtendTo(Timestamp t) = 0;

  /// Relative per-tick cost estimate (runtime shard balancing).
  virtual size_t StepCost() const = 0;

  /// Streams whose events this subplan's probability depends on.
  const std::set<StreamId>& used_streams() const { return used_; }

 protected:
  std::set<StreamId> used_;
};

namespace {

using NodeEval = SafePlanEngine::NodeEval;

struct TsPairHash {
  size_t operator()(const std::pair<Timestamp, Timestamp>& p) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(p.first) << 32) |
                                 p.second);
  }
};

}  // namespace

// The reg<V> leaf: interval probabilities from the Markov-chain algorithm
// with an absorbing accept flag. Rows (fixed ts, all tf) are computed on
// demand from per-timestep chain snapshots and memoized — the lazy
// evaluation responsible for the Fig. 14(b) behaviour.
class SafePlanEngine::RegEval : public SafePlanEngine::NodeEval {
 public:
  static Result<std::unique_ptr<RegEval>> Make(const NormalizedQuery& grounded,
                                               const EventDatabase& db,
                                               KernelCache* kernel_cache) {
    // One cache per plan: the project operator grounds the same subquery
    // once per key, and every grounding (plus every per-timestep snapshot
    // copy) shares a single compiled kernel.
    ChainOptions options;
    options.kernel_cache = kernel_cache;
    LAHAR_ASSIGN_OR_RETURN(RegularChain chain,
                           RegularChain::Create(grounded, db, options));
    auto eval = std::make_unique<RegEval>();
    eval->horizon_ = chain.horizon();
    for (StreamId s : chain.participating()) eval->used_.insert(s);
    eval->snapshots_.push_back(std::move(chain));
    return eval;
  }

  Result<double> Prob(Timestamp ts, Timestamp tf) override {
    if (ts < 1) ts = 1;
    if (tf > horizon_) tf = horizon_;
    if (ts > tf || ts > horizon_) return 0.0;
    return RowValue(ts, tf);
  }

  // The chains read the database live and rows extend on demand, so growing
  // the leaf is just widening the clamp.
  Status ExtendTo(Timestamp t) override {
    if (t > horizon_) horizon_ = t;
    return Status::OK();
  }

  size_t StepCost() const override { return snapshots_.front().StepCost(); }

 private:
  // A partially computed row: the accept-tracking chain frozen at the last
  // computed timestep, extended only as far as callers actually ask — the
  // lazy evaluation behind Fig. 14(b).
  struct LazyRow {
    RegularChain chain;
    std::vector<double> values;  // values[b - a] = P[accept in [a, b]]
  };

  // Chain state after consuming timesteps 1..t.
  const RegularChain& Snapshot(Timestamp t) {
    while (snapshots_.size() <= t) {
      RegularChain next = snapshots_.back();
      next.Step();
      snapshots_.push_back(std::move(next));
    }
    return snapshots_[t];
  }

  double RowValue(Timestamp a, Timestamp b) {
    auto it = rows_.find(a);
    if (it == rows_.end()) {
      RegularChain chain = Snapshot(a - 1);
      chain.EnableAcceptTracking();
      it = rows_.emplace(a, LazyRow{std::move(chain), {}}).first;
    }
    LazyRow& row = it->second;
    while (row.values.size() <= static_cast<size_t>(b - a)) {
      row.chain.Step();
      row.values.push_back(row.chain.AcceptedProb());
    }
    return row.values[b - a];
  }

  Timestamp horizon_ = 0;
  std::vector<RegularChain> snapshots_;
  std::unordered_map<Timestamp, LazyRow> rows_;
};

// The seq operator: Eq. (3)'s precursor/witness decomposition.
class SafePlanEngine::SeqEval : public SafePlanEngine::NodeEval {
 public:
  static Result<std::unique_ptr<SeqEval>> Make(
      std::unique_ptr<NodeEval> child, const NormalizedSubgoal& goal,
      const Binding& binding, const EventDatabase& db, bool exclude_left,
      double truncate) {
    auto eval = std::make_unique<SeqEval>();
    eval->db_ = &db;
    eval->truncate_ = truncate;
    eval->exclude_left_ = exclude_left;
    eval->used_ = child->used_streams();
    eval->child_ = std::move(child);

    // Ground the subgoal and localize its predicates.
    eval->goal_sub_ = goal.goal;
    for (Term& t : eval->goal_sub_.terms) {
      if (!t.is_var) continue;
      auto it = binding.find(t.var);
      if (it != binding.end()) t = Term::Const(it->second);
    }
    eval->match_ = goal.match_pred.Substitute(binding);
    eval->accept_ = goal.accept_pred.Substitute(binding);

    eval->schema_ = db.FindSchema(eval->goal_sub_.type);
    if (eval->schema_ == nullptr) {
      return Status::NotFound("no schema for seq subgoal");
    }
    // Classify every candidate witness stream up front so structural errors
    // (Markovian witness streams) surface at Create time, as they did when
    // the whole table was built eagerly.
    for (StreamId sid : db.StreamsOfType(eval->goal_sub_.type)) {
      if (eval->exclude_left_ && eval->child_->used_streams().count(sid)) {
        continue;
      }
      LAHAR_RETURN_NOT_OK(eval->RefreshWitness(sid));
    }
    eval->w_.assign(1, 0.0);
    LAHAR_RETURN_NOT_OK(eval->ExtendTo(db.horizon()));
    return eval;
  }

  // Per-timestep probability that *some* stream produces a witness event,
  // appended one column per new timestep. Per t, the (1 - pa) factors
  // multiply in StreamsOfType order — the same sequence a from-scratch
  // build walks — so extension is bit-identical to eager evaluation.
  Status ExtendTo(Timestamp target) override {
    LAHAR_RETURN_NOT_OK(child_->ExtendTo(target));
    if (target <= horizon_) return Status::OK();
    w_.resize(target + 1, 0.0);
    for (Timestamp t = horizon_ + 1; t <= target; ++t) {
      double none = 1.0;
      for (StreamId sid : db_->StreamsOfType(goal_sub_.type)) {
        if (exclude_left_ && child_->used_streams().count(sid)) continue;
        const Stream& stream = db_->stream(sid);
        if (t > stream.horizon()) continue;
        LAHAR_RETURN_NOT_OK(RefreshWitness(sid));
        const Witness& wit = witnesses_[sid];
        if (!wit.can_match) continue;
        const auto& marg = stream.MarginalAt(t);
        double pa = 0, pm_only = 0;
        for (DomainIndex d = 1; d < marg.size(); ++d) {
          if (wit.matches[d]) pa += marg[d];
          if (wit.matches_m_only[d]) pm_only += marg[d];
        }
        if (pm_only > 1e-12) {
          return Status::Unimplemented(
              "the seq operator's right-hand subgoal has a trailing "
              "selection that can fail on matching events (q_s blocking "
              "semantics); rewrite the condition into the subgoal predicate "
              "(':' form) or use the sampling engine");
        }
        none *= 1.0 - pa;
      }
      w_[t] = 1.0 - none;
    }
    horizon_ = target;
    return Status::OK();
  }

  size_t StepCost() const override { return child_->StepCost() + 1; }

  Result<double> Prob(Timestamp ts, Timestamp tf) override {
    if (ts < 1) ts = 1;
    if (tf > horizon_) tf = horizon_;
    if (ts > tf) return 0.0;
    auto key = std::make_pair(ts, tf);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    // Precursor distribution over T_p (shared across all witnesses).
    // precursor[i]: i = 0 means "no precursor", else T_p = i. Terms whose
    // probability falls below kTruncate contribute nothing measurable and
    // are dropped — with dense witness streams this keeps each evaluation
    // near-constant work, which is what makes the measured Fig. 14(b)
    // scaling so much better than the O(T^3) analytic bound.
    const double kTruncate = truncate_;
    std::vector<double> precursor(ts, 0.0);
    {
      double suffix = 1.0;  // prod of (1 - w[u]) for u in (ts', ts)
      for (Timestamp tsp = ts; tsp-- > 1;) {
        precursor[tsp] = w_[tsp] * suffix;
        suffix *= 1.0 - w_[tsp];
        if (suffix < kTruncate) {
          suffix = 0.0;
          break;
        }
      }
      precursor[0] = suffix;  // no g-event before ts at all
    }

    double total = 0.0;
    double wit_suffix = 1.0;  // prod of (1 - w[u]) for u in (tf', tf]
    for (Timestamp tfp = tf + 1; tfp-- > ts;) {
      double pw = w_[tfp] * wit_suffix;
      wit_suffix *= 1.0 - w_[tfp];
      if (pw > kTruncate) {
        double inner = 0.0;
        for (Timestamp tsp = 0; tsp < ts; ++tsp) {
          if (precursor[tsp] <= kTruncate) continue;
          Timestamp lo = tsp == 0 ? 1 : tsp;
          if (tfp < lo + 1) continue;  // empty interval [lo, tfp - 1]
          LAHAR_ASSIGN_OR_RETURN(double pc, child_->Prob(lo, tfp - 1));
          inner += precursor[tsp] * pc;
        }
        total += pw * inner;
      }
      if (wit_suffix < kTruncate) break;
    }
    memo_.emplace(key, total);
    return total;
  }

 private:
  // Which of a stream's domain values satisfy the grounded subgoal, cached
  // across ExtendTo calls and re-evaluated only for domain values interned
  // after the last refresh.
  struct Witness {
    std::vector<bool> matches;         // accept-qualified values
    std::vector<bool> matches_m_only;  // match- but not accept-qualified
    bool can_match = false;
  };

  Status RefreshWitness(StreamId sid) {
    const Stream& stream = db_->stream(sid);
    Witness& wit = witnesses_[sid];
    if (wit.matches.size() >= stream.domain_size()) return Status::OK();
    DomainIndex from = static_cast<DomainIndex>(wit.matches.size());
    if (from < 1) from = 1;  // index 0 is bottom
    wit.matches.resize(stream.domain_size(), false);
    wit.matches_m_only.resize(stream.domain_size(), false);
    Binding scratch;
    for (DomainIndex d = from; d < stream.domain_size(); ++d) {
      scratch.clear();
      if (!UnifyEvent(goal_sub_, stream.key(), stream.TupleOf(d),
                      schema_->num_key_attrs, &scratch)) {
        continue;
      }
      LAHAR_ASSIGN_OR_RETURN(bool m, match_.Eval(scratch, *db_));
      if (!m) continue;
      LAHAR_ASSIGN_OR_RETURN(bool a, accept_.Eval(scratch, *db_));
      if (a) {
        wit.matches[d] = true;
      } else {
        wit.matches_m_only[d] = true;
      }
      wit.can_match = true;
    }
    if (!wit.can_match) return Status::OK();
    if (stream.markovian()) {
      return Status::InvalidArgument(
          "the seq operator requires witness streams of type '" +
          db_->interner().Name(stream.type()) +
          "' to be independent across time (Section 3.3 assumption); "
          "archived Markovian streams are only supported inside reg "
          "leaves");
    }
    used_.insert(sid);
    return Status::OK();
  }

  const EventDatabase* db_ = nullptr;
  const EventSchema* schema_ = nullptr;
  Subgoal goal_sub_;   // grounded right-hand subgoal
  Condition match_;    // localized predicates
  Condition accept_;
  bool exclude_left_ = false;
  Timestamp horizon_ = 0;
  double truncate_ = 1e-12;
  std::unique_ptr<NodeEval> child_;
  std::unordered_map<StreamId, Witness> witnesses_;
  std::vector<double> w_;  // witness probability per timestep
  std::unordered_map<std::pair<Timestamp, Timestamp>, double, TsPairHash>
      memo_;
};

// The independent-project operator: groundings of x use disjoint tuples, so
// P = 1 - prod over groundings (1 - P_grounding).
class SafePlanEngine::ProjectEval : public SafePlanEngine::NodeEval {
 public:
  explicit ProjectEval(std::vector<std::unique_ptr<NodeEval>> children)
      : children_(std::move(children)) {
    for (const auto& c : children_) {
      used_.insert(c->used_streams().begin(), c->used_streams().end());
    }
  }

  Result<double> Prob(Timestamp ts, Timestamp tf) override {
    double none = 1.0;
    for (const auto& c : children_) {
      LAHAR_ASSIGN_OR_RETURN(double p, c->Prob(ts, tf));
      none *= 1.0 - p;
    }
    return 1.0 - none;
  }

  Status ExtendTo(Timestamp t) override {
    for (const auto& c : children_) LAHAR_RETURN_NOT_OK(c->ExtendTo(t));
    return Status::OK();
  }

  size_t StepCost() const override {
    size_t total = 1;
    for (const auto& c : children_) total += c->StepCost();
    return total;
  }

 private:
  std::vector<std::unique_ptr<NodeEval>> children_;
};

namespace {

// Builds the evaluator tree for `node` under `binding`.
Result<std::unique_ptr<NodeEval>> MakeEval(const SafePlanNode& node,
                                           const NormalizedQuery& full_query,
                                           const Binding& binding,
                                           const EventDatabase& db,
                                           const PlanOptions& options,
                                           KernelCache* kernel_cache) {
  switch (node.kind) {
    case SafePlanNode::Kind::kReg: {
      NormalizedQuery grounded = node.reg_query.Substitute(binding);
      LAHAR_ASSIGN_OR_RETURN(std::unique_ptr<SafePlanEngine::RegEval> eval,
                             SafePlanEngine::RegEval::Make(grounded, db, kernel_cache));
      return std::unique_ptr<NodeEval>(std::move(eval));
    }
    case SafePlanNode::Kind::kProject: {
      std::vector<std::unique_ptr<NodeEval>> children;
      std::set<Value> values = CandidateValues(
          full_query, db, node.project_var, binding, 0, node.prefix_len);
      for (const Value& v : values) {
        Binding extended = binding;
        extended[node.project_var] = v;
        LAHAR_ASSIGN_OR_RETURN(
            std::unique_ptr<NodeEval> child,
            MakeEval(*node.child, full_query, extended, db, options,
                     kernel_cache));
        children.push_back(std::move(child));
      }
      return std::unique_ptr<NodeEval>(
          new SafePlanEngine::ProjectEval(std::move(children)));
    }
    case SafePlanNode::Kind::kSeq: {
      LAHAR_ASSIGN_OR_RETURN(
          std::unique_ptr<NodeEval> child,
          MakeEval(*node.child, full_query, binding, db, options,
                   kernel_cache));
      LAHAR_ASSIGN_OR_RETURN(
          std::unique_ptr<SafePlanEngine::SeqEval> eval,
          SafePlanEngine::SeqEval::Make(std::move(child), node.seq_goal,
                                        binding, db,
                                        node.seq_exclude_left_streams,
                                        options.seq_truncate));
      return std::unique_ptr<NodeEval>(std::move(eval));
    }
  }
  return Status::Internal("bad plan node");
}

}  // namespace

Result<SafePlanEngine> SafePlanEngine::Create(const NormalizedQuery& q,
                                              const EventDatabase& db,
                                              const PlanOptions& options) {
  SafePlanEngine engine;
  engine.db_ = &db;
  engine.options_ = options;
  LAHAR_ASSIGN_OR_RETURN(engine.plan_, CompileSafePlan(q, db, options));
  KernelCache kernel_cache;  // shared by every reg leaf of this plan
  LAHAR_ASSIGN_OR_RETURN(
      std::unique_ptr<NodeEval> root,
      MakeEval(*engine.plan_, q, Binding{}, db, options, &kernel_cache));
  auto holder = std::shared_ptr<NodeEval>(std::move(root));
  engine.root_ = holder.get();
  engine.root_holder_ = holder;
  return engine;
}

Result<std::vector<double>> SafePlanEngine::Run() {
  LAHAR_RETURN_NOT_OK(root_->ExtendTo(db_->horizon()));
  std::vector<double> out(db_->horizon() + 1, 0.0);
  for (Timestamp t = 1; t <= db_->horizon(); ++t) {
    LAHAR_ASSIGN_OR_RETURN(out[t], root_->Prob(t, t));
  }
  return out;
}

Result<double> SafePlanEngine::IntervalProb(Timestamp ts, Timestamp tf) {
  return root_->Prob(ts, tf);
}

Status SafePlanEngine::ExtendTo(Timestamp t) { return root_->ExtendTo(t); }

Result<double> SafePlanEngine::AdvanceTo(Timestamp t) {
  LAHAR_RETURN_NOT_OK(root_->ExtendTo(t));
  return root_->Prob(t, t);
}

size_t SafePlanEngine::StepCost() const { return root_->StepCost(); }

}  // namespace lahar
