#include "engine/reference.h"

#include <algorithm>

#include "automaton/symbols.h"
#include <map>
#include <set>

namespace lahar {
namespace {

// A deterministic event instance inside one world.
struct DetEvent {
  SymbolId type;
  const ValueTuple* key;
  const ValueTuple* values;
  size_t num_key;
};

// All events of a world, indexed by timestep.
struct WorldIndex {
  std::vector<std::vector<DetEvent>> at;  // [t], t = 1..horizon

  static WorldIndex Build(const EventDatabase& db, const World& world) {
    WorldIndex idx;
    idx.at.resize(db.horizon() + 1);
    for (StreamId s = 0; s < db.num_streams(); ++s) {
      const Stream& stream = db.stream(s);
      const EventSchema* schema = db.FindSchema(stream.type());
      // The world may be a strict prefix of the archive (the incremental
      // sampler extends trajectories only through the tick it is stepping);
      // timesteps it has not sampled yet hold no events.
      const std::vector<DomainIndex>& traj = world.values[s];
      const Timestamp limit = std::min<Timestamp>(
          stream.horizon(), traj.empty() ? 0 : traj.size() - 1);
      for (Timestamp t = 1; t <= limit; ++t) {
        DomainIndex d = traj[t];
        if (d == kBottom) continue;
        idx.at[t].push_back({stream.type(), &stream.key(), &stream.TupleOf(d),
                             schema->num_key_attrs});
      }
    }
    return idx;
  }
};

// Canonical key for deduplicating result events.
using EventKey = std::pair<std::vector<std::pair<SymbolId, uint64_t>>, Timestamp>;

EventKey KeyOf(const ResultEvent& e) {
  std::vector<std::pair<SymbolId, uint64_t>> b;
  b.reserve(e.binding.size());
  for (const auto& [v, val] : e.binding) {
    uint64_t enc = (static_cast<uint64_t>(val.kind()) << 62);
    if (val.is_symbol()) {
      enc ^= val.symbol();
    } else if (val.is_int()) {
      enc ^= static_cast<uint64_t>(val.int_value()) & ~(3ULL << 62);
    }
    b.emplace_back(v, enc);
  }
  std::sort(b.begin(), b.end());
  return {std::move(b), e.t};
}

std::vector<ResultEvent> Dedup(std::vector<ResultEvent> in) {
  std::set<EventKey> seen;
  std::vector<ResultEvent> out;
  for (auto& e : in) {
    if (seen.insert(KeyOf(e)).second) out.push_back(std::move(e));
  }
  return out;
}

void ProjectTo(const std::set<SymbolId>& keep, Binding* b) {
  for (auto it = b->begin(); it != b->end();) {
    if (keep.count(it->first)) {
      ++it;
    } else {
      it = b->erase(it);
    }
  }
}

class Evaluator {
 public:
  Evaluator(const EventDatabase& db, const WorldIndex& idx)
      : db_(db), idx_(idx) {}

  Result<std::vector<ResultEvent>> Eval(const Query& q) {
    switch (q.kind) {
      case Query::Kind::kBase:
        return EvalLeaf(q.base);
      case Query::Kind::kSequence: {
        LAHAR_ASSIGN_OR_RETURN(std::vector<ResultEvent> lhs, Eval(*q.child));
        std::set<SymbolId> child_free = FreeVars(*q.child);
        return ExtendWithBase(std::move(lhs), q.base, child_free);
      }
      case Query::Kind::kSelection: {
        LAHAR_ASSIGN_OR_RETURN(std::vector<ResultEvent> in, Eval(*q.child));
        std::vector<ResultEvent> out;
        for (auto& e : in) {
          LAHAR_ASSIGN_OR_RETURN(bool keep, q.selection.Eval(e.binding, db_));
          if (keep) out.push_back(std::move(e));
        }
        return out;
      }
    }
    return Status::Internal("bad query node");
  }

 private:
  // Matches of a subgoal + predicate at timestep t, extending `base` binding.
  Result<std::vector<Binding>> MatchesAt(const Subgoal& goal,
                                         const Condition& pred, Timestamp t,
                                         const Binding& base) {
    std::vector<Binding> out;
    if (t >= idx_.at.size()) return out;
    for (const DetEvent& ev : idx_.at[t]) {
      if (ev.type != goal.type) continue;
      Binding b = base;
      if (!UnifyEvent(goal, *ev.key, *ev.values, ev.num_key, &b)) continue;
      LAHAR_ASSIGN_OR_RETURN(bool ok, pred.Eval(b, db_));
      if (ok) out.push_back(std::move(b));
    }
    return out;
  }

  // The events returned by sigma_pred(goal) across all timesteps.
  Result<std::vector<ResultEvent>> LeafMatches(const Subgoal& goal,
                                               const Condition& pred) {
    std::vector<ResultEvent> out;
    for (Timestamp t = 1; t < idx_.at.size(); ++t) {
      LAHAR_ASSIGN_OR_RETURN(std::vector<Binding> bs,
                             MatchesAt(goal, pred, t, Binding{}));
      for (auto& b : bs) out.push_back({std::move(b), t});
    }
    return out;
  }

  // One sequencing step: pair each lhs event with its immediate successors
  // among sigma_pred(goal) events agreeing on shared variables (Fig. 2).
  Result<std::vector<ResultEvent>> SeqStep(const std::vector<ResultEvent>& lhs,
                                           const Subgoal& goal,
                                           const Condition& pred) {
    std::vector<ResultEvent> out;
    for (const ResultEvent& e1 : lhs) {
      for (Timestamp t = e1.t + 1; t < idx_.at.size(); ++t) {
        LAHAR_ASSIGN_OR_RETURN(std::vector<Binding> bs,
                               MatchesAt(goal, pred, t, e1.binding));
        if (bs.empty()) continue;
        for (auto& b : bs) out.push_back({std::move(b), t});
        break;  // only the earliest successor timestamp counts
      }
    }
    return Dedup(std::move(out));
  }

  // Kleene unfolding: extend `level` results by one more sigma_theta1(goal)
  // event, apply theta2, and project to keep ∪ V.
  Result<std::vector<ResultEvent>> KleeneExtend(
      const std::vector<ResultEvent>& level, const BaseQuery& bq,
      const std::set<SymbolId>& keep) {
    LAHAR_ASSIGN_OR_RETURN(std::vector<ResultEvent> next,
                           SeqStep(level, bq.goal, bq.pred));
    std::vector<ResultEvent> out;
    for (auto& e : next) {
      LAHAR_ASSIGN_OR_RETURN(bool ok, bq.kleene_pred.Eval(e.binding, db_));
      if (!ok) continue;
      ProjectTo(keep, &e.binding);
      out.push_back(std::move(e));
    }
    return Dedup(std::move(out));
  }

  // Evaluates a leaf base query (a subgoal or a leading Kleene plus).
  Result<std::vector<ResultEvent>> EvalLeaf(const BaseQuery& bq) {
    if (!bq.is_kleene) return LeafMatches(bq.goal, bq.pred);
    // First unfolding: a single matching event satisfying theta1 and theta2.
    LAHAR_ASSIGN_OR_RETURN(std::vector<ResultEvent> level,
                           LeafMatches(bq.goal, bq.pred));
    std::set<SymbolId> keep(bq.kleene_vars.begin(), bq.kleene_vars.end());
    std::vector<ResultEvent> filtered;
    for (auto& e : level) {
      LAHAR_ASSIGN_OR_RETURN(bool ok, bq.kleene_pred.Eval(e.binding, db_));
      if (!ok) continue;
      ProjectTo(keep, &e.binding);
      filtered.push_back(std::move(e));
    }
    return KleeneFixpoint(Dedup(std::move(filtered)), bq, keep);
  }

  // Extends lhs results with a base query on the right of a sequence.
  Result<std::vector<ResultEvent>> ExtendWithBase(
      std::vector<ResultEvent> lhs, const BaseQuery& bq,
      const std::set<SymbolId>& child_free) {
    if (!bq.is_kleene) return SeqStep(lhs, bq.goal, bq.pred);
    std::set<SymbolId> keep = child_free;
    keep.insert(bq.kleene_vars.begin(), bq.kleene_vars.end());
    LAHAR_ASSIGN_OR_RETURN(std::vector<ResultEvent> level,
                           KleeneExtend(lhs, bq, keep));
    return KleeneFixpoint(std::move(level), bq, keep);
  }

  // Unions unfoldings until no new results appear (bounded by the horizon).
  Result<std::vector<ResultEvent>> KleeneFixpoint(
      std::vector<ResultEvent> level, const BaseQuery& bq,
      const std::set<SymbolId>& keep) {
    std::set<EventKey> seen;
    std::vector<ResultEvent> all;
    for (const auto& e : level) {
      seen.insert(KeyOf(e));
      all.push_back(e);
    }
    size_t guard = idx_.at.size() + 1;
    while (!level.empty() && guard-- > 0) {
      LAHAR_ASSIGN_OR_RETURN(std::vector<ResultEvent> next,
                             KleeneExtend(level, bq, keep));
      level.clear();
      for (auto& e : next) {
        if (seen.insert(KeyOf(e)).second) {
          all.push_back(e);
          level.push_back(std::move(e));
        }
      }
    }
    return all;
  }

  const EventDatabase& db_;
  const WorldIndex& idx_;
};

}  // namespace

Result<std::vector<ResultEvent>> EvaluateOnWorld(const Query& q,
                                                 const EventDatabase& db,
                                                 const World& world) {
  WorldIndex idx = WorldIndex::Build(db, world);
  Evaluator eval(db, idx);
  LAHAR_ASSIGN_OR_RETURN(std::vector<ResultEvent> out, eval.Eval(q));
  return Dedup(std::move(out));
}

Result<std::vector<bool>> SatisfiedAt(const Query& q, const EventDatabase& db,
                                      const World& world) {
  LAHAR_ASSIGN_OR_RETURN(std::vector<ResultEvent> events,
                         EvaluateOnWorld(q, db, world));
  std::vector<bool> out(db.horizon() + 1, false);
  for (const auto& e : events) {
    if (e.t < out.size()) out[e.t] = true;
  }
  return out;
}

Result<std::vector<double>> BruteForceProbabilities(const Query& q,
                                                    const EventDatabase& db) {
  std::vector<double> probs(db.horizon() + 1, 0.0);
  Status failure;
  EnumerateWorlds(db, [&](const World& w, double p) {
    if (!failure.ok()) return;
    Result<std::vector<bool>> sat = SatisfiedAt(q, db, w);
    if (!sat.ok()) {
      failure = sat.status();
      return;
    }
    for (Timestamp t = 1; t < probs.size(); ++t) {
      if ((*sat)[t]) probs[t] += p;
    }
  });
  if (!failure.ok()) return failure;
  return probs;
}

}  // namespace lahar
