// Evaluation of Safe Queries via the probabilistic stream algebra
// (Section 3.3): every plan node computes interval probabilities
// P[q[ts, tf]] — the probability that its subquery is satisfied at some
// timestep in [ts, tf] — and the operators combine them:
//
//   reg<V>(q)   — the Markov-chain algorithm extended to intervals with an
//                 absorbing "accepted" flag (the conditional decomposition
//                 on M(t) of Section 3.3.1).
//   seq(P, g)   — the precursor/witness decomposition, Eq. (3): condition
//                 on the latest g-event before ts (T_p) and the latest
//                 witness in [ts, tf] (T_w); q' must hold in [T_p, T_w - 1].
//   pi_-x(P)    — independent-project: 1 - prod over groundings of x.
//
// All tables are evaluated lazily and memoized. For *serving* (one
// AdvanceTo(t) per tick over an unbounded stream) the evaluator keeps
// per-tick cost and memory flat instead of growing with the horizon:
//
//  * seq nodes walk only the timesteps whose witness probability is
//    nonzero (a sorted index of the w[u] != 0 positions), skipping the
//    exact-zero factors the dense Eq. (3) loops would multiply by 1.0 —
//    the same IEEE operations in the same order, so answers stay
//    bit-identical to the reference loops (selectable via
//    SafePlanOptions::incremental);
//  * the (ts, tf) interval memo is a bounded direct-mapped cache and the
//    reg leaves keep a bounded LRU row arena over sparse chain keyframes
//    instead of one chain snapshot per timestep — evictions recompute
//    deterministically, so capacity never changes an answer;
//  * independent grounding groups (project children) advance as separate
//    shard units, so a safe session no longer serializes a runtime tick.
//
// Preconditions (checked at Create): the streams matched by a seq operator's
// right-hand subgoal must be independent (non-Markovian) — the paper's
// Section 3.3 assumption. Markovian streams are still fine inside reg
// leaves, whose chain tracks the hidden state exactly.
#ifndef LAHAR_ENGINE_SAFE_ENGINE_H_
#define LAHAR_ENGINE_SAFE_ENGINE_H_

#include <memory>
#include <set>
#include <vector>

#include "analysis/plan.h"
#include "common/serial.h"
#include "engine/regular_engine.h"

namespace lahar {

/// \brief Cache/memo observability counters for one safe-plan evaluator
/// tree (aggregated over every node; see RuntimeStats).
struct SafeMemoStats {
  size_t memo_entries = 0;     ///< live (ts, tf) interval memo entries
  uint64_t memo_hits = 0;      ///< interval memo hits
  uint64_t memo_misses = 0;    ///< interval memo misses (computed fresh)
  uint64_t memo_evictions = 0; ///< entries overwritten by the bounded memo
  size_t rows_live = 0;        ///< live reg-leaf interval rows
  uint64_t row_evictions = 0;  ///< LRU reg-row evictions
  uint64_t row_rebuilds = 0;   ///< evicted rows rebuilt from a keyframe
};

/// \brief Engine for Safe Queries: compiles a safe plan and evaluates it.
class SafePlanEngine {
 public:
  /// Compiles the plan (Algorithm 1) and prepares evaluation. Fails with
  /// UnsafeQuery if no safe plan exists.
  static Result<SafePlanEngine> Create(const NormalizedQuery& q,
                                       const EventDatabase& db,
                                       const PlanOptions& options = {});

  /// mu(q@t) for t = 1..horizon (index 0 unused). Lazy tables mean the cost
  /// concentrates in the reg rows actually touched.
  Result<std::vector<double>> Run();

  /// P[q satisfied at some t in [ts, tf]] from the plan root. Requires a
  /// well-formed 1-based interval: ts >= 1 and ts <= tf (InvalidArgument
  /// otherwise — an empty or negative interval is a caller bug, not a
  /// zero-probability event).
  Result<double> IntervalProb(Timestamp ts, Timestamp tf);

  /// Extends the lazy evaluation structures to cover timesteps up to `t`
  /// after the database grew: reg-leaf rows and seq witness tables gain one
  /// column per appended timestep instead of being recomputed — the
  /// incremental mode behind SafeQuerySession (engine/session.h). Run()
  /// calls this implicitly, so batch results always cover the live horizon.
  Status ExtendTo(Timestamp t);

  /// Incremental per-tick evaluation: extends the tables to `t` and returns
  /// mu(q@t), bit-identical to probs[t] of a batch Run() over the same
  /// data (the tables extend monotonically in tf, so the arithmetic is the
  /// same either way).
  Result<double> AdvanceTo(Timestamp t);

  // --- sharded serving protocol (SafeQuerySession) -----------------------
  // Independent grounding groups — the children of a projection node, which
  // touch disjoint streams by the safety precondition — are exposed as
  // shard units. Per tick: PrepareShard once, ShardAdvance over disjoint
  // unit ranges (any threads, database quiescent), then FinishAdvance
  // single-threaded; the combined answer is bit-identical to AdvanceTo(t).

  /// Number of independently advanceable units (>= 1).
  size_t NumShardUnits() const;

  /// Single-threaded per-tick preparation: resets the per-unit status
  /// slots for tick `t`.
  void PrepareShard(Timestamp t);

  /// Advances units [begin, end) to tick `t`: extends their tables and
  /// pre-computes their grounding probabilities into the (bounded) memos.
  /// Errors latch per unit and surface at FinishAdvance.
  void ShardAdvance(size_t begin, size_t end, Timestamp t);

  /// Completes the tick: surfaces any latched shard error, extends whatever
  /// the shards did not cover, and returns mu(q@t).
  Result<double> FinishAdvance(Timestamp t);

  /// Relative per-tick cost estimate (runtime shard balancing): reflects
  /// live rows, witness density, and grounding fan-out, not just leaf
  /// count.
  size_t StepCost() const;

  /// Per-unit cost estimate (a unit is one grounding subtree).
  size_t UnitCost(size_t unit) const;

  /// Aggregated memo/row cache counters over the whole evaluator tree.
  SafeMemoStats MemoStats() const;

  /// Serializes the incremental evaluation state (frontier chains, witness
  /// tables, clock-free: the clock lives in SafeQuerySession). The blob
  /// must be loaded into an engine created over an identical database
  /// snapshot by the same query; bounded caches are not serialized — they
  /// refill bit-identically on demand.
  Status SaveState(serial::Writer* w) const;
  Status LoadState(serial::Reader* r);

  /// The compiled plan (for inspection / the query_classifier example).
  const SafePlanNode& plan() const { return *plan_; }

  // Implementation detail, public for the evaluator factory.
  class NodeEval;
  class RegEval;
  class SeqEval;
  class ProjectEval;

 private:
  const EventDatabase* db_ = nullptr;
  PlanOptions options_;
  SafePlanPtr plan_;
  std::shared_ptr<void> root_holder_;  // owns the eval tree
  NodeEval* root_ = nullptr;
  // Per-unit shard status, sized by PrepareShard; slot i is written only by
  // the shard that owns unit i, then read single-threaded at FinishAdvance.
  std::vector<Status> shard_status_;
};

}  // namespace lahar

#endif  // LAHAR_ENGINE_SAFE_ENGINE_H_
