// Evaluation of Safe Queries via the probabilistic stream algebra
// (Section 3.3): every plan node computes interval probabilities
// P[q[ts, tf]] — the probability that its subquery is satisfied at some
// timestep in [ts, tf] — and the operators combine them:
//
//   reg<V>(q)   — the Markov-chain algorithm extended to intervals with an
//                 absorbing "accepted" flag (the conditional decomposition
//                 on M(t) of Section 3.3.1).
//   seq(P, g)   — the precursor/witness decomposition, Eq. (3): condition
//                 on the latest g-event before ts (T_p) and the latest
//                 witness in [ts, tf] (T_w); q' must hold in [T_p, T_w - 1].
//   pi_-x(P)    — independent-project: 1 - prod over groundings of x.
//
// All tables are evaluated lazily and memoized, which is why measured
// throughput degrades far more gently with trace length than the O(T^3)
// analytic worst case (Fig. 14(b)).
//
// Preconditions (checked at Create): the streams matched by a seq operator's
// right-hand subgoal must be independent (non-Markovian) — the paper's
// Section 3.3 assumption. Markovian streams are still fine inside reg
// leaves, whose chain tracks the hidden state exactly.
#ifndef LAHAR_ENGINE_SAFE_ENGINE_H_
#define LAHAR_ENGINE_SAFE_ENGINE_H_

#include <memory>
#include <set>
#include <vector>

#include "analysis/plan.h"
#include "engine/regular_engine.h"

namespace lahar {

/// \brief Engine for Safe Queries: compiles a safe plan and evaluates it.
class SafePlanEngine {
 public:
  /// Compiles the plan (Algorithm 1) and prepares evaluation. Fails with
  /// UnsafeQuery if no safe plan exists.
  static Result<SafePlanEngine> Create(const NormalizedQuery& q,
                                       const EventDatabase& db,
                                       const PlanOptions& options = {});

  /// mu(q@t) for t = 1..horizon (index 0 unused). Lazy tables mean the cost
  /// concentrates in the reg rows actually touched.
  Result<std::vector<double>> Run();

  /// P[q satisfied at some t in [ts, tf]] from the plan root.
  Result<double> IntervalProb(Timestamp ts, Timestamp tf);

  /// Extends the lazy evaluation structures to cover timesteps up to `t`
  /// after the database grew: reg-leaf rows and seq witness tables gain one
  /// column per appended timestep instead of being recomputed — the
  /// incremental mode behind SafeQuerySession (engine/session.h). Run()
  /// calls this implicitly, so batch results always cover the live horizon.
  Status ExtendTo(Timestamp t);

  /// Incremental per-tick evaluation: extends the tables to `t` and returns
  /// mu(q@t), bit-identical to probs[t] of a batch Run() over the same
  /// data (the tables extend monotonically in tf, so the arithmetic is the
  /// same either way).
  Result<double> AdvanceTo(Timestamp t);

  /// Relative per-tick cost estimate (runtime shard balancing): sums the
  /// reg leaves' chain step costs.
  size_t StepCost() const;

  /// The compiled plan (for inspection / the query_classifier example).
  const SafePlanNode& plan() const { return *plan_; }

  // Implementation detail, public for the evaluator factory.
  class NodeEval;
  class RegEval;
  class SeqEval;
  class ProjectEval;

 private:
  const EventDatabase* db_ = nullptr;
  PlanOptions options_;
  SafePlanPtr plan_;
  std::shared_ptr<void> root_holder_;  // owns the eval tree
  NodeEval* root_ = nullptr;
};

}  // namespace lahar

#endif  // LAHAR_ENGINE_SAFE_ENGINE_H_
