// Naive random sampling (Section 3.5): estimate mu(q@t) by running the
// query over n sampled possible worlds. Works for ANY query — including the
// provably #P-hard ones of Section 3.4 — with the (epsilon, delta) guarantee
// of Prop. 3.20: n = ceil(ln(2/delta) / (2 epsilon^2)) samples give
// P[|estimate - truth| <= epsilon] >= 1 - delta at each timestep (Hoeffding).
//
// Two execution paths:
//  * Queries whose groundings are regular run n parallel NFAs over sampled
//    symbol streams, incrementally per timestep (the paper's "n copies of
//    the query" with bitvector-style batched state).
//  * Everything else (safe and unsafe queries) samples whole worlds and
//    invokes the reference evaluator per world — slower, but fully general.
#ifndef LAHAR_ENGINE_SAMPLING_ENGINE_H_
#define LAHAR_ENGINE_SAMPLING_ENGINE_H_

#include <memory>
#include <vector>

#include "automaton/nfa.h"
#include "engine/reference.h"
#include "query/normalize.h"

namespace lahar {

/// Options for the sampling engine.
struct SamplingOptions {
  double epsilon = 0.1;  ///< additive error bound
  double delta = 0.1;    ///< failure probability
  uint64_t seed = 0xC0FFEE;
  /// Overrides the Hoeffding sample count when non-zero.
  size_t num_samples = 0;
};

/// Samples required for the (epsilon, delta) guarantee.
size_t HoeffdingSamples(double epsilon, double delta);

/// \brief Monte-Carlo engine over possible worlds.
class SamplingEngine {
 public:
  /// Builds the engine; picks the NFA path when every grounding of the
  /// query is regular, the reference-evaluator path otherwise.
  static Result<SamplingEngine> Create(QueryPtr q, const EventDatabase& db,
                                       const SamplingOptions& options = {});

  /// Estimated mu(q@t) for t = 1..horizon (index 0 unused).
  Result<std::vector<double>> Run();

  /// Advances the incremental NFA path one timestep and returns the
  /// estimate at the new time. Only valid when incremental() is true.
  Result<double> Step();

  bool incremental() const { return !chains_.empty(); }
  size_t num_samples() const { return num_samples_; }
  Timestamp time() const { return t_; }
  Timestamp horizon() const { return horizon_; }

 private:
  // One grounded regular query: its automaton, symbol table, and the
  // per-sample NFA state masks.
  struct GroundedChain {
    std::shared_ptr<const QueryNfa> nfa;
    std::shared_ptr<const SymbolTable> symbols;
    std::vector<StateMask> states;  // per sample
  };

  QueryPtr query_;
  const EventDatabase* db_ = nullptr;
  size_t num_samples_ = 0;
  uint64_t seed_ = 0;
  Timestamp horizon_ = 0;
  Timestamp t_ = 0;

  std::vector<GroundedChain> chains_;  // NFA path (empty => general path)
  // Streams sampled per timestep (union over chains); each chain maps its
  // participant positions into these slots so a shared stream is sampled
  // exactly once per sample per timestep.
  std::vector<StreamId> slot_streams_;
  std::vector<std::vector<size_t>> chain_slots_;
  std::vector<DomainIndex> values_;  // [sample * num_slots + slot]
  std::vector<Rng> sample_rngs_;     // one generator per sample
};

}  // namespace lahar

#endif  // LAHAR_ENGINE_SAMPLING_ENGINE_H_
