// Naive random sampling (Section 3.5): estimate mu(q@t) by running the
// query over n sampled possible worlds. Works for ANY query — including the
// provably #P-hard ones of Section 3.4 — with the (epsilon, delta) guarantee
// of Prop. 3.20: n = ceil(ln(2/delta) / (2 epsilon^2)) samples give
// P[|estimate - truth| <= epsilon] >= 1 - delta at each timestep (Hoeffding).
//
// Two execution paths:
//  * Queries whose groundings are regular run n parallel NFAs over sampled
//    symbol streams, incrementally per timestep (the paper's "n copies of
//    the query" with bitvector-style batched state).
//  * Everything else (safe and unsafe queries) samples whole worlds and
//    invokes the reference evaluator per world — slower, but fully general.
#ifndef LAHAR_ENGINE_SAMPLING_ENGINE_H_
#define LAHAR_ENGINE_SAMPLING_ENGINE_H_

#include <memory>
#include <vector>

#include "automaton/nfa.h"
#include "engine/reference.h"
#include "query/normalize.h"

namespace lahar {

/// Options for the sampling engine.
struct SamplingOptions {
  double epsilon = 0.1;  ///< additive error bound
  double delta = 0.1;    ///< failure probability
  uint64_t seed = 0xC0FFEE;
  /// Overrides the Hoeffding sample count when non-zero.
  size_t num_samples = 0;
};

/// Samples required for the (epsilon, delta) guarantee.
size_t HoeffdingSamples(double epsilon, double delta);

/// \brief Monte-Carlo engine over possible worlds.
class SamplingEngine {
 public:
  /// Builds the engine; picks the NFA path when every grounding of the
  /// query is regular, the reference-evaluator path otherwise.
  static Result<SamplingEngine> Create(QueryPtr q, const EventDatabase& db,
                                       const SamplingOptions& options = {});

  /// Estimated mu(q@t) for t = 1..horizon (index 0 unused).
  Result<std::vector<double>> Run();

  /// Advances one timestep and returns the estimate at the new time.
  /// Regular groundings use the incremental NFA path; everything else
  /// extends per-sample world prefixes and re-evaluates the reference
  /// semantics on each — O(t * |W|) per tick, but it hosts even unsafe
  /// queries as standing queries. Equivalent to StepSampleRange(0, n)
  /// followed by CommitStep().
  Result<double> Step();

  /// Single-threaded preparation before a (possibly sharded) step: extends
  /// the NFA path's shared symbol tables over domain values interned since
  /// the last tick. Must not run concurrently with StepSampleRange; Step()
  /// calls it itself. No-op on the general path.
  Status PrepareStep();

  /// Split form of Step() for the sharded runtime executor: advances only
  /// the samples in [begin, end) to time()+1. Samples are independent, so
  /// disjoint ranges may run on different threads; the database must be
  /// quiescent meanwhile. Errors are recorded per sample and surface at
  /// CommitStep.
  void StepSampleRange(size_t begin, size_t end);

  /// Completes a split step once every sample range has been advanced:
  /// bumps time() and returns the acceptance fraction (an integer count
  /// over samples, so the estimate is independent of sharding).
  Result<double> CommitStep();

  bool incremental() const { return !chains_.empty(); }
  size_t num_samples() const { return num_samples_; }
  Timestamp time() const { return t_; }
  Timestamp horizon() const { return horizon_; }

 private:
  // One tick of one sample; `next` is t_ + 1.
  void StepNfaSample(size_t i, Timestamp next, std::vector<double>* row);
  Status StepWorldSample(size_t i, Timestamp next);
  // One grounded regular query: its automaton, symbol table, and the
  // per-sample NFA state masks.
  struct GroundedChain {
    std::shared_ptr<const QueryNfa> nfa;
    std::shared_ptr<const SymbolTable> symbols;
    std::vector<StateMask> states;  // per sample
  };

  QueryPtr query_;
  const EventDatabase* db_ = nullptr;
  size_t num_samples_ = 0;
  uint64_t seed_ = 0;
  Timestamp horizon_ = 0;
  Timestamp t_ = 0;

  std::vector<GroundedChain> chains_;  // NFA path (empty => general path)
  // Streams sampled per timestep (union over chains); each chain maps its
  // participant positions into these slots so a shared stream is sampled
  // exactly once per sample per timestep.
  std::vector<StreamId> slot_streams_;
  std::vector<std::vector<size_t>> chain_slots_;
  std::vector<DomainIndex> values_;  // [sample * num_slots + slot]
  std::vector<Rng> sample_rngs_;     // one generator per sample
  // Per-sample outcome of the tick in flight (written by StepSampleRange,
  // folded by CommitStep). uint8_t, not vector<bool>: samples on different
  // shards must not share bytes.
  std::vector<uint8_t> accepted_;
  std::vector<Status> sample_status_;
  // General path only: per-sample sampled world prefixes, extended lazily
  // as streams grow (empty until the first Step).
  std::vector<World> worlds_;
};

}  // namespace lahar

#endif  // LAHAR_ENGINE_SAMPLING_ENGINE_H_
