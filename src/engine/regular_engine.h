// Exact evaluation of Regular Queries on probabilistic streams
// (Sections 3.1.2): the query automaton is run as a Markov chain whose state
// joins the NFA state *set* with the hidden values of the participating
// Markovian streams; probabilities propagate by (sparse) matrix
// multiplication. Independent streams need no hidden state, so the chain
// collapses to a distribution over NFA state sets.
//
// The chain advances one timestep per Step() in O(1) amortized work per
// (state, successor-value) pair — the streaming evaluation of Theorem 3.3.
#ifndef LAHAR_ENGINE_REGULAR_ENGINE_H_
#define LAHAR_ENGINE_REGULAR_ENGINE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "automaton/nfa.h"
#include "automaton/symbols.h"
#include "model/database.h"
#include "query/normalize.h"

namespace lahar {

/// \brief The Markov chain M(t) of Section 3.1.2 for one grounded regular
/// query: a joint distribution over (NFA state set, hidden stream values).
///
/// Copyable: safe plans snapshot chains to compute interval probabilities.
class RegularChain {
 public:
  /// Builds the chain for a normalized query that must be regular once the
  /// caller has substituted its shared variables (this class does not check
  /// classification; see analysis/classify.h).
  static Result<RegularChain> Create(const NormalizedQuery& q,
                                     const EventDatabase& db);

  /// Timeline position: 0 before the first step, then 1..horizon.
  Timestamp time() const { return t_; }
  /// Last timestep of the chain (the database horizon).
  Timestamp horizon() const { return horizon_; }

  /// Advances one timestep and returns P[q@t] at the new time. Calling past
  /// the horizon keeps consuming certain-bottom inputs (all streams ended).
  double Step();

  /// Current P[q@t]: total mass on state sets containing the accept state.
  double AcceptProb() const;

  /// Latches an "accepted" flag on every state from the *next* Step on:
  /// after calling this at time a-1, AcceptedProb() at time b equals
  /// P[q true at some t in [a, b]] — the interval probability of the
  /// Section 3.3 reg operator.
  void EnableAcceptTracking() { track_accept_ = true; }

  /// Probability that the accepted flag is set (see EnableAcceptTracking).
  double AcceptedProb() const;

  /// Number of live (state set, hidden) pairs — the chain's working size.
  size_t NumStates() const { return states_.size(); }

  /// Streams contributing symbols to this chain (safe plans use this to
  /// keep operator event sets disjoint).
  const std::vector<StreamId>& participating() const {
    return symbols_->participating();
  }

 private:
  // Bit 63 of the state mask is the latched "accepted" flag.
  static constexpr StateMask kAcceptedFlag = 1ULL << 63;

  struct Key {
    StateMask mask;
    uint64_t hidden;  // mixed-radix code of Markovian stream values
    bool operator==(const Key& o) const {
      return mask == o.mask && hidden == o.hidden;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()(k.mask * 0x9e3779b97f4a7c15ULL ^ k.hidden);
    }
  };
  using StateMap = std::unordered_map<Key, double, KeyHash>;

  // Per participating stream: how it contributes to the joint transition.
  struct Participant {
    StreamId id;
    size_t position;       // index into SymbolTable::participating()
    bool markovian;
    uint64_t radix;        // multiplier in the hidden code (1 if independent)
    size_t hidden_slot;    // position among Markovian participants
  };

  void BuildIndependentMaskDist(Timestamp next);
  void EnumerateSuccessors(const Key& key, double p, Timestamp next,
                           StateMap* out);

  std::shared_ptr<const QueryNfa> nfa_;
  std::shared_ptr<const SymbolTable> symbols_;
  const EventDatabase* db_ = nullptr;
  std::vector<Participant> participants_;
  std::vector<Participant> markov_participants_;
  std::vector<Participant> indep_participants_;
  // Per-step OR-distribution of independent streams' symbol masks.
  std::vector<std::pair<SymbolMask, double>> indep_dist_;
  std::vector<uint64_t> radices_;  // per Markovian participant
  Timestamp horizon_ = 0;
  Timestamp t_ = 0;
  bool track_accept_ = false;
  StateMap states_;
};

/// \brief Engine for Regular Queries: one chain, streamed over the database.
class RegularEngine {
 public:
  /// Builds the engine; `q` must already be normalized and regular.
  static Result<RegularEngine> Create(const NormalizedQuery& q,
                                      const EventDatabase& db);

  /// P[q@t] for t = 1..horizon (index 0 unused).
  std::vector<double> Run();

  RegularChain& chain() { return chain_; }

 private:
  explicit RegularEngine(RegularChain chain) : chain_(std::move(chain)) {}
  RegularChain chain_;
};

}  // namespace lahar

#endif  // LAHAR_ENGINE_REGULAR_ENGINE_H_
