// Exact evaluation of Regular Queries on probabilistic streams
// (Sections 3.1.2): the query automaton is run as a Markov chain whose state
// joins the NFA state *set* with the hidden values of the participating
// Markovian streams; probabilities propagate by (sparse) matrix
// multiplication. Independent streams need no hidden state, so the chain
// collapses to a distribution over NFA state sets.
//
// The chain advances one timestep per Step() in O(1) amortized work per
// (state, successor-value) pair — the streaming evaluation of Theorem 3.3.
//
// Two execution paths implement the same semantics (see docs/PERF.md):
//
//  * the compiled-kernel path (default): the reachable joint space is
//    enumerated once at Create time (automaton/kernel.h) and Step() is a
//    double-buffered flat-array sparse mat-vec — no hashing, no per-step
//    allocation;
//  * the dynamic map path: the original hash-map evaluation, used when the
//    reachable space exceeds ChainOptions::kernel budgets (or the kernel is
//    disabled). Both paths enumerate successors in one canonical order, so
//    their per-tick probabilities are bit-identical.
#ifndef LAHAR_ENGINE_REGULAR_ENGINE_H_
#define LAHAR_ENGINE_REGULAR_ENGINE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "automaton/kernel.h"
#include "automaton/nfa.h"
#include "automaton/rows.h"
#include "automaton/symbols.h"
#include "common/serial.h"
#include "model/database.h"
#include "query/normalize.h"

namespace lahar {

/// How a compiled chain executes its per-tick transition (docs/PERF.md):
///   kScalar - the CSR sparse mat-vec (StepKernel), the bit-identity
///             reference for every other path;
///   kSimd   - dense vectorized rows over the class-sorted slot layout
///             (StepKernelSimd / StepStripe), bit-identical to kScalar;
///   kAuto   - kSimd where the dense-row model pays for itself (see
///             simd_max_hidden / simd_min_density), kScalar elsewhere.
enum class KernelStepMode { kAuto, kScalar, kSimd };

/// Options controlling chain construction (kernel compilation and batching).
struct ChainOptions {
  /// Kernel budgets; kernel.max_flat_states = 0 forces the dynamic map path.
  KernelLimits kernel;
  /// Optional cross-chain kernel reuse (e.g. PreparedQuery::kernel_cache).
  /// Engines fall back to a local cache when null; kernels are held by
  /// shared_ptr, so the cache may outlive or die before the chains.
  KernelCache* kernel_cache = nullptr;
  /// Extended engine only: pack the compiled chains' state vectors into one
  /// contiguous SoA arena (see ExtendedRegularEngine).
  bool soa_arena = true;

  /// Step-path selection for compiled chains.
  KernelStepMode step_mode = KernelStepMode::kAuto;
  /// kAuto/kSimd ceiling on the joint hidden space: dense rows cost R*R
  /// doubles per (class, timestep), so past this the CSR walk wins.
  uint32_t simd_max_hidden = 512;
  /// kAuto floor on the joint CPT nonzero fraction: below it the CSR skip
  /// of zero successors beats dense multiply-accumulate.
  double simd_min_density = 0.35;
  /// Optional cross-chain dense-row reuse (e.g. PreparedQuery::row_pool).
  /// Null makes every SIMD chain build rows locally; classes are held by
  /// shared_ptr, so the pool may die before the chains.
  TransitionRowPool* row_pool = nullptr;
  /// Store pooled rows as float32 (half the bytes, NOT bit-identical; see
  /// rows.h for the error bound). Only affects SIMD-mode chains.
  bool float32_rows = false;

  /// Optional (type, key) -> streams index for grounded-query builds; makes
  /// SymbolTable::Build O(subgoals) instead of O(streams). The extended
  /// engine builds one per Create and threads it through every binding.
  const StreamKeyIndex* stream_index = nullptr;

  // --- chain lifecycle (extended engine only; docs/PERF.md) ---------------
  /// Keep a registered binding as a ~16-byte closed-form stub until a
  /// participating stream first shows evidence (nonzero-symbol mass), then
  /// materialize the real chain. Bit-identical to always-materialized by
  /// construction: the skipped prefix is the deterministic all-bottom
  /// trajectory whose probabilities stay exactly 1.0.
  bool lazy_materialize = false;
  /// Spill chains that idled `cold_after_ticks` ticks in a frozen
  /// (absorbing under empty input) state into a compact side arena of
  /// checkpoint-encoded entries; rehydrate transparently on next evidence.
  bool spill_cold_chains = false;
  /// Idle ticks (no participating-stream evidence) before a frozen chain
  /// is eligible to spill.
  uint32_t cold_after_ticks = 64;
};

/// \brief The Markov chain M(t) of Section 3.1.2 for one grounded regular
/// query: a joint distribution over (NFA state set, hidden stream values).
///
/// Copyable: safe plans snapshot chains to compute interval probabilities.
/// Copies share the immutable compiled structures (NFA, symbol table,
/// kernel) via shared_ptr and only duplicate the live state vector.
class RegularChain {
 public:
  /// Builds the chain for a normalized query that must be regular once the
  /// caller has substituted its shared variables (this class does not check
  /// classification; see analysis/classify.h).
  static Result<RegularChain> Create(const NormalizedQuery& q,
                                     const EventDatabase& db,
                                     const ChainOptions& options = {});

  RegularChain() = default;
  RegularChain(const RegularChain& o);
  RegularChain& operator=(const RegularChain& o);
  RegularChain(RegularChain&& o) noexcept;
  RegularChain& operator=(RegularChain&& o) noexcept;

  /// Timeline position: 0 before the first step, then 1..horizon.
  Timestamp time() const { return t_; }
  /// Last timestep of the chain (the database horizon).
  Timestamp horizon() const { return horizon_; }

  /// Advances one timestep and returns P[q@t] at the new time. Calling past
  /// the horizon keeps consuming certain-bottom inputs (all streams ended).
  double Step();

  /// Current P[q@t]: total mass on state sets containing the accept state.
  double AcceptProb() const;

  /// Latches an "accepted" flag on every state from the *next* Step on:
  /// after calling this at time a-1, AcceptedProb() at time b equals
  /// P[q true at some t in [a, b]] — the interval probability of the
  /// Section 3.3 reg operator.
  void EnableAcceptTracking();

  /// Probability that the accepted flag is set (see EnableAcceptTracking).
  double AcceptedProb() const;

  /// Number of live (state set, hidden) pairs — the chain's working size.
  size_t NumStates() const;

  /// Streams contributing symbols to this chain (safe plans use this to
  /// keep operator event sets disjoint).
  const std::vector<StreamId>& participating() const {
    return symbols_->participating();
  }

  /// The compiled query automaton (shared, immutable). The extended
  /// engine's lifecycle layer keeps a memoization-free copy to evolve
  /// closed-form stubs without a live chain.
  const std::shared_ptr<const QueryNfa>& nfa() const { return nfa_; }

  /// The symbol table (shared, immutable until RefreshSymbols swaps it).
  const std::shared_ptr<const SymbolTable>& symbols() const {
    return symbols_;
  }

  /// \brief Creation-time facts the lifecycle layer needs to run a
  /// binding's closed-form stub and synthesize its checkpoint bytes after
  /// the chain itself has been dropped (see ExtendedRegularEngine).
  struct ParticipantSummary {
    StreamId stream = 0;
    size_t position = 0;  ///< index into the chain's symbol table
    bool markovian = false;
  };
  std::vector<ParticipantSummary> ParticipantSummaries() const;

  /// Per-Markovian-participant radix multipliers (hidden-code layout).
  const std::vector<uint64_t>& radices() const { return radices_; }

  /// True once EnableAcceptTracking was called (the checkpoint track byte).
  bool track_accept() const { return track_accept_; }

  /// True when this chain stepped onto a compiled kernel (vs. the map path).
  bool compiled() const { return kernel_ != nullptr; }

  /// True when this chain runs the vectorized dense-row step (state stored
  /// in the kernel's class-sorted slot layout).
  bool simd() const { return simd_; }

  /// True when this chain reads float32-tier transition rows.
  bool float32_rows() const { return f32_rows_; }

  /// The interned row class this chain shares (null when rows are local).
  const std::shared_ptr<TransitionRowClass>& row_class() const {
    return row_class_;
  }

  /// Heap bytes owned by this chain itself: state buffers, scratch, and
  /// chain-local (non-pooled) rows. Pooled row bytes are amortized across
  /// the class and reported by the engine (see
  /// ExtendedRegularEngine::Footprint).
  size_t OwnedBytes() const;

  /// Steps a full lane-interleaved stripe of `n` chains (each bound with
  /// BindArena lane_stride == n over one interleaved block) through one
  /// timestep, bit-identically to stepping each alone. Returns false
  /// WITHOUT mutating anything when the stripe is not eligible this tick
  /// (mixed structure, a chain fell off the kernel, distinct row content,
  /// ...); the caller then steps each chain individually.
  static bool StepStripe(RegularChain* const* chains, size_t n,
                         Timestamp next);

  /// First error latched by Step() (e.g. a failed symbol-table refresh
  /// after mid-stream domain growth); OK in normal operation. A chain with
  /// a latched error keeps stepping, treating unknown values as producing
  /// no symbols.
  const Status& status() const { return status_; }

  /// Doubles per state buffer on the kernel path (planes x |masks| x R);
  /// 0 on the map path. A chain owns two such buffers (double-buffering).
  size_t FlatStride() const;

  /// Relative per-step cost estimate, used by the runtime executor to
  /// balance chain ranges across shards.
  size_t StepCost() const;

  /// Moves the chain's kernel state into caller-owned storage (the extended
  /// engine's SoA arena). `cur` and `nxt` must each address FlatStride()
  /// doubles at spacing `lane_stride` (flat index i lives at cur[i *
  /// lane_stride]) and stay valid for the chain's lifetime; the current
  /// state is copied into `cur`. lane_stride > 1 lane-interleaves SIMD
  /// chains for StepStripe. No-op on the map path.
  void BindArena(double* cur, double* nxt, size_t lane_stride = 1);

  /// Serializes the live distribution for checkpointing: the clock, accept
  /// tracking, and every nonzero (state set, hidden) pair in canonical
  /// order. Hidden codes are stored as per-slot domain digits (not raw
  /// mixed-radix codes), so a chain rebuilt over the restored database —
  /// whose radices may differ if the domain grew after this chain was
  /// created — re-encodes them for its own layout. Execution path (kernel
  /// vs. map) is NOT part of the state: both are bit-identical, and the
  /// restored chain uses whichever it was built with (dematerializing only
  /// if the saved distribution doesn't fit its kernel).
  void SaveState(serial::Writer* w) const;
  Status LoadState(serial::Reader* r);

 private:
  // Bit 63 of the state mask is the latched "accepted" flag.
  static constexpr StateMask kAcceptedFlag = 1ULL << 63;

  struct Key {
    StateMask mask;
    uint64_t hidden;  // mixed-radix code of Markovian stream values
    bool operator==(const Key& o) const {
      return mask == o.mask && hidden == o.hidden;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()(k.mask * 0x9e3779b97f4a7c15ULL ^ k.hidden);
    }
  };
  using StateMap = std::unordered_map<Key, double, KeyHash>;

  // Per participating stream: how it contributes to the joint transition.
  struct Participant {
    StreamId id;
    size_t position;       // index into SymbolTable::participating()
    bool markovian;
    uint64_t radix;        // multiplier in the hidden code (1 if independent)
    size_t hidden_slot;    // position among Markovian participants
  };

  void BuildIndependentMaskDist(Timestamp next);
  void EnumerateSuccessors(const Key& key, double p, Timestamp next,
                           StateMap* out);
  // Map-path step over the canonically sorted live states.
  void StepMap(Timestamp next);
  // Kernel-path step; returns false after falling back to the map path
  // (the state was dematerialized and the step must be re-run on the map).
  bool StepKernel(Timestamp next);
  // Vectorized dense-row step (state in slot layout, possibly strided);
  // same fallback contract as StepKernel.
  bool StepKernelSimd(Timestamp next);
  // Fills scratch indep_p/step_cls from indep_dist_; false (mutating
  // nothing else) when a structural assumption broke and the caller must
  // dematerialize.
  bool FillStepTables();
  // Dense rows for timestep `next`: pooled when the class has them (or this
  // chain builds and publishes), chain-local otherwise (t == 1 or no
  // pool). Cached per timestep.
  std::shared_ptr<const TransitionRowSet> ResolveRows(Timestamp next);
  std::shared_ptr<const TransitionRowSet> BuildRowSet(Timestamp next) const;
  // Content key of the rows for timestep `next`: the write-time digests of
  // the CPT slices stepped through (or an ended marker past a horizon).
  // Validates pooled reuse — see automaton/rows.h. O(participants) per
  // tick; Stream maintains the slice digests.
  RowFingerprint RowContentKey(Timestamp next) const;
  // Builds the per-step CSR rows (successor hidden code, probability) for
  // every live joint hidden code; mirrors EnumerateSuccessors' enumeration
  // order exactly.
  void BuildHiddenRows(Timestamp next);
  // Abandons the kernel mid-stream: converts the flat state back into the
  // dynamic map (used when a structural assumption breaks, e.g. a stream's
  // domain grew after creation).
  void DematerializeToMap();
  // Swaps in a symbol table extended over domain values interned since
  // creation (copy-on-grow: the old table stays untouched for other chains
  // sharing it). On failure, latches status_ and keeps the old table.
  void RefreshSymbols();
  void FixupStorage(const RegularChain& o);

  std::shared_ptr<const QueryNfa> nfa_;
  std::shared_ptr<const SymbolTable> symbols_;
  const EventDatabase* db_ = nullptr;
  std::vector<Participant> participants_;
  std::vector<Participant> markov_participants_;
  std::vector<Participant> indep_participants_;
  // Per-step OR-distribution of independent streams' symbol masks.
  std::vector<std::pair<SymbolMask, double>> indep_dist_;
  std::vector<uint64_t> radices_;  // per Markovian participant
  // Markovian domain sizes the kernel was compiled against (per hidden
  // slot); checked each step so a domain change falls back to the map path.
  std::vector<uint32_t> kernel_domains_;
  Timestamp horizon_ = 0;
  Timestamp t_ = 0;
  bool track_accept_ = false;
  Status status_;  // first Step()-time error (see status())

  // --- dynamic map path ----------------------------------------------------
  StateMap states_;

  // --- compiled kernel path ------------------------------------------------
  std::shared_ptr<const CompiledKernel> kernel_;
  size_t planes_ = 1;            // 2 once accept tracking is enabled
  std::vector<double> flat_;     // owned cur|nxt storage (empty when arena-bound)
  double* cur_ = nullptr;
  double* nxt_ = nullptr;

  // --- vectorized step path (simd_ implies kernel_) ------------------------
  bool simd_ = false;       // state lives in slot layout; step via dense rows
  bool f32_rows_ = false;   // rows on the float32 tier
  size_t lane_stride_ = 1;  // arena lane interleave (1 = contiguous)
  std::shared_ptr<TransitionRowClass> row_class_;  // null = always local rows
  std::shared_ptr<const TransitionRowSet> step_rows_;  // cache for step t
  Timestamp step_rows_t_ = 0;
  RowFingerprint step_rows_fp_;  // content key of step_rows_ (pooled path)

  // Per-step scratch (reused, never copied with meaning).
  struct Scratch {
    std::vector<std::pair<SymbolMask, double>> stream_dist;
    std::vector<std::pair<SymbolMask, double>> merged;
    std::vector<std::pair<Key, double>> sorted;   // map path canonical order
    std::vector<uint8_t> live;                    // [R]
    std::vector<uint32_t> row_ptr;                // [R + 1]
    std::vector<uint32_t> csr_h;
    std::vector<double> csr_p;
    std::vector<std::pair<uint64_t, double>> frames, frames2;
    std::vector<uint32_t> step_cls;               // [markov classes x E]
    std::vector<double> indep_p;                  // [E]
    std::vector<double> w;                        // simd weights [R or R*L]
    std::vector<double> ip_lanes;                 // stripe indep_p [E*L]
  };
  Scratch scratch_;
};

/// \brief Engine for Regular Queries: one chain, streamed over the database.
class RegularEngine {
 public:
  /// Builds the engine; `q` must already be normalized and regular.
  static Result<RegularEngine> Create(const NormalizedQuery& q,
                                      const EventDatabase& db,
                                      const ChainOptions& options = {});

  /// P[q@t] for t = 1..horizon (index 0 unused).
  std::vector<double> Run();

  RegularChain& chain() { return chain_; }

 private:
  explicit RegularEngine(RegularChain chain) : chain_(std::move(chain)) {}
  RegularChain chain_;
};

}  // namespace lahar

#endif  // LAHAR_ENGINE_REGULAR_ENGINE_H_
