// Online evaluation: the streaming mode of Theorems 3.3 and 3.7. A session
// is created over a database whose streams are declared (keys and domains
// interned) but not necessarily populated; inference output is appended one
// timestep at a time and Advance() returns the up-to-date P[q@t] — O(1)
// incremental work for Regular queries, O(m) for Extended Regular.
//
//   StreamingSession session = *StreamingSession::Create(&db,
//       "At('Joe', l : CoffeeRoom(l))");
//   for each arriving timestep:
//     db.AppendMarginal(joe_stream, filter_output);  // or AppendMarkovStep
//     double p = *session.Advance();
//
// Safe and Unsafe queries are rejected: their evaluation needs the archived
// history (Theorem 3.10's growing state), exactly as in the paper.
#ifndef LAHAR_ENGINE_STREAMING_H_
#define LAHAR_ENGINE_STREAMING_H_

#include <string_view>

#include "analysis/prepared.h"
#include "engine/extended_engine.h"
#include "query/ast.h"

namespace lahar {

/// \brief Incremental evaluation session for (Extended) Regular queries.
class StreamingSession {
 public:
  /// Parses and classifies `text`, then delegates to the PreparedQuery
  /// overload. Keys and value domains visible at creation are final:
  /// streams added or domain values interned later are not picked up (the
  /// paper's per-key chains are likewise fixed at query start).
  static Result<StreamingSession> Create(EventDatabase* db,
                                         std::string_view text);

  /// Creates a session from an already-prepared query, skipping the
  /// reparse/reclassify work — the path used when registering many standing
  /// queries at once (see src/runtime/registry.h). Fails with UnsafeQuery
  /// if the prepared query is not streamable.
  static Result<StreamingSession> Create(EventDatabase* db,
                                         const PreparedQuery& prepared);

  /// Consumes timestep time()+1 (which every stream must already cover via
  /// Append*, unless it has simply ended) and returns P[q@t] at the new
  /// time.
  Result<double> Advance();

  /// Split form of Advance() for the sharded runtime executor: advances
  /// only the chains in [begin, end) to time()+1. Disjoint ranges may run
  /// on different threads; the database must be quiescent meanwhile.
  void AdvanceChains(size_t begin, size_t end);

  /// Completes a split advance once every chain range has been stepped:
  /// bumps time() and returns P[q@t], combined bit-identically to
  /// Advance().
  double CommitAdvance();

  /// The last consumed timestep (0 before the first Advance).
  Timestamp time() const { return engine_.time(); }

  /// Number of per-grounding chains (the O(m) of Theorem 3.7).
  size_t num_chains() const { return engine_.num_chains(); }

  /// The underlying engine (diagnostics: per-chain probabilities and
  /// bindings).
  const ExtendedRegularEngine& engine() const { return engine_; }

 private:
  explicit StreamingSession(ExtendedRegularEngine engine)
      : engine_(std::move(engine)) {}

  ExtendedRegularEngine engine_;
};

}  // namespace lahar

#endif  // LAHAR_ENGINE_STREAMING_H_
