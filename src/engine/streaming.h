// Online evaluation: the streaming mode of Theorems 3.3 and 3.7. A session
// is created over a database whose streams are declared (keys and domains
// interned) but not necessarily populated; inference output is appended one
// timestep at a time and Advance() returns the up-to-date P[q@t] — O(1)
// incremental work for Regular queries, O(m) for Extended Regular.
//
//   StreamingSession session = *StreamingSession::Create(&db,
//       "At('Joe', l : CoffeeRoom(l))");
//   for each arriving timestep:
//     db.AppendMarginal(joe_stream, filter_output);  // or AppendMarkovStep
//     double p = *session.Advance();
//
// Safe and Unsafe queries are rejected: their evaluation needs the archived
// history (Theorem 3.10's growing state). They are still served incrementally
// through the other QuerySession implementations (see engine/session.h).
#ifndef LAHAR_ENGINE_STREAMING_H_
#define LAHAR_ENGINE_STREAMING_H_

#include <string_view>

#include "analysis/prepared.h"
#include "engine/extended_engine.h"
#include "engine/session.h"
#include "query/ast.h"

namespace lahar {

/// \brief Incremental evaluation session for (Extended) Regular queries.
class StreamingSession : public QuerySession {
 public:
  /// Parses and classifies `text`, then delegates to the PreparedQuery
  /// overload. Keys and value domains visible at creation are final:
  /// streams added or domain values interned later are not picked up (the
  /// paper's per-key chains are likewise fixed at query start).
  static Result<StreamingSession> Create(EventDatabase* db,
                                         std::string_view text);

  /// Creates a session from an already-prepared query, skipping the
  /// reparse/reclassify work — the path used when registering many standing
  /// queries at once (see src/runtime/registry.h). Fails with UnsafeQuery
  /// (carrying the class in the kQueryClassPayload payload) if the prepared
  /// query is not streamable.
  static Result<StreamingSession> Create(EventDatabase* db,
                                         const PreparedQuery& prepared);

  /// As above, with explicit chain-construction knobs (kernel budgets,
  /// step mode, chain lifecycle). The cache/pool/index pointers in
  /// `chain_options` are overridden with the PreparedQuery's shared caches.
  static Result<StreamingSession> Create(EventDatabase* db,
                                         const PreparedQuery& prepared,
                                         const ChainOptions& chain_options);

  /// Consumes timestep time()+1 (which every stream must already cover via
  /// Append*, unless it has simply ended) and returns P[q@t] at the new
  /// time.
  Result<double> Advance() override;

  /// Split form of Advance() for the sharded runtime executor: advances
  /// only the chains in [begin, end) to time()+1. Disjoint ranges may run
  /// on different threads; the database must be quiescent meanwhile.
  void AdvanceShard(size_t begin, size_t end) override;

  /// Completes a split advance once every chain range has been stepped:
  /// bumps time() and returns P[q@t], combined bit-identically to
  /// Advance().
  Result<double> CommitAdvance() override;

  /// The last consumed timestep (0 before the first Advance).
  Timestamp time() const override { return engine_.time(); }

  /// Units are the per-grounding chains (the O(m) of Theorem 3.7).
  size_t num_units() const override { return engine_.num_chains(); }
  size_t UnitCost(size_t i) const override { return engine_.ChainCost(i); }

  /// Shard groups are the engine's lane-interleaved stripes: splitting one
  /// across shards would demote every lane to per-chain fallback steps.
  size_t UnitGroupEnd(size_t i) const override {
    return engine_.ChainGroupEnd(i);
  }

  /// Residency and memory accounting (chain lifecycle; docs/PERF.md).
  SessionResidency Residency() const override {
    SessionResidency r;
    r.bytes_resident = engine_.Footprint().bytes();
    r.registered_units = engine_.num_chains();
    r.resident_units = engine_.num_resident();
    r.stub_units = engine_.num_stub();
    r.spilled_units = engine_.num_spilled();
    r.promotions = engine_.promotions();
    r.spills = engine_.spills();
    r.rehydrations = engine_.rehydrations();
    return r;
  }

  /// Streaming state is O(chains), so checkpoints serialize it directly
  /// instead of replaying the archived prefix.
  bool SupportsStateRestore() const override { return true; }
  Status SaveState(serial::Writer* w) const override {
    engine_.SaveState(w);
    return Status::OK();
  }
  Status LoadState(serial::Reader* r) override {
    return engine_.LoadState(r);
  }

  /// Number of per-grounding chains (alias of num_units for diagnostics).
  size_t num_chains() const { return engine_.num_chains(); }

  /// Chains stepping on the vectorized SoA kernel path (docs/PERF.md).
  size_t NumSimdUnits() const override { return engine_.num_simd(); }
  uint64_t StripeSteps() const override { return engine_.stripe_steps(); }
  uint64_t StripeFallbacks() const override {
    return engine_.stripe_fallbacks();
  }

  /// The underlying engine (diagnostics: per-chain probabilities and
  /// bindings).
  const ExtendedRegularEngine& engine() const { return engine_; }

  // Cross-session sharing (docs/SHARING.md): every grounded chain is a
  // shareable unit keyed by the canonical form of its grounded query.
  // Lifecycle sessions decline sharing entirely — stubs and spilled
  // bindings hold no live chain to seed or adopt a shared unit with.
  size_t NumShareableUnits() const override {
    return engine_.lifecycle_enabled() ? 0 : engine_.num_chains();
  }
  const std::string& ShareableUnitKey(size_t i) const override {
    return unit_keys_[i];
  }
  std::shared_ptr<SharedSubChain> MakeSharedUnit(
      size_t i, size_t frontier_history) const override;
  bool DelegateUnit(size_t i,
                    const std::shared_ptr<SharedSubChain>& unit) override;
  size_t NumDelegatedUnits() const override {
    return engine_.num_delegated();
  }

 private:
  StreamingSession(ExtendedRegularEngine engine, QueryClass query_class)
      : QuerySession(query_class,
                     query_class == QueryClass::kRegular
                         ? EngineKind::kRegular
                         : EngineKind::kExtendedRegular,
                     /*exact=*/true),
        engine_(std::move(engine)) {}

  ExtendedRegularEngine engine_;
  /// Canonical key per grounded chain (index-aligned with engine chains).
  std::vector<std::string> unit_keys_;
};

}  // namespace lahar

#endif  // LAHAR_ENGINE_STREAMING_H_
