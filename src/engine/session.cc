#include "engine/session.h"

#include <utility>

#include "engine/safe_engine.h"
#include "engine/sampling_engine.h"
#include "engine/streaming.h"

namespace lahar {

SharedSubChain::SharedSubChain(std::string key, RegularChain chain,
                               size_t frontier_history)
    : key_(std::move(key)), chain_(std::move(chain)) {
  ring_.assign(frontier_history < 2 ? 2 : frontier_history, 0.0);
  ResyncFrontier();
}

size_t SharedSubChain::AdvanceTo(Timestamp to) {
  size_t executed = 0;
  while (chain_.time() < to) {
    double p = chain_.Step();
    ring_[chain_.time() % ring_.size()] = p;
    ++steps_;
    ++executed;
  }
  return executed;
}

void SharedSubChain::ResyncFrontier() {
  ring_[chain_.time() % ring_.size()] = chain_.AcceptProb();
}

Result<double> QuerySession::Advance() {
  PrepareAdvance();
  AdvanceShard(0, num_units());
  return CommitAdvance();
}

size_t QuerySession::StepCost() const {
  size_t total = 0;
  for (size_t i = 0; i < num_units(); ++i) total += UnitCost(i);
  return total;
}

const std::string& QuerySession::ShareableUnitKey(size_t i) const {
  (void)i;
  static const std::string kEmpty;
  return kEmpty;
}

namespace {

// Incremental serving of a Safe query: each tick extends the plan's
// bounded reg-leaf rows and seq witness tables by one column (they grow
// monotonically in tf, Section 3.3) instead of recomputing Run() over the
// whole horizon. Units are the plan's independent grounding groups (the
// children of its projection node, disjoint streams by the safety
// precondition): AdvanceShard extends each group's tables and warms its
// diagonal memo entry, and CommitAdvance combines the warmed values —
// bit-identical to a single-threaded AdvanceTo.
class SafeQuerySession : public QuerySession {
 public:
  explicit SafeQuerySession(SafePlanEngine engine)
      : QuerySession(QueryClass::kSafe, EngineKind::kSafePlan,
                     /*exact=*/true),
        engine_(std::move(engine)) {}

  Timestamp time() const override { return t_; }
  size_t num_units() const override { return engine_.NumShardUnits(); }
  size_t UnitCost(size_t i) const override { return engine_.UnitCost(i); }

  void PrepareAdvance() override { engine_.PrepareShard(t_ + 1); }

  void AdvanceShard(size_t begin, size_t end) override {
    engine_.ShardAdvance(begin, end, t_ + 1);
  }

  Result<double> CommitAdvance() override {
    ++t_;
    return engine_.FinishAdvance(t_);
  }

  SafeMemoStats MemoStats() const override { return engine_.MemoStats(); }

  bool SupportsStateRestore() const override { return true; }

  Status SaveState(serial::Writer* w) const override {
    w->U8(1);  // session-state version
    w->U32(t_);
    return engine_.SaveState(w);
  }

  Status LoadState(serial::Reader* r) override {
    uint8_t version = 0;
    LAHAR_RETURN_NOT_OK(r->U8(&version));
    if (version != 1) {
      return Status::InvalidArgument("unsupported safe-session state");
    }
    LAHAR_RETURN_NOT_OK(r->U32(&t_));
    return engine_.LoadState(r);
  }

 private:
  SafePlanEngine engine_;
  Timestamp t_ = 0;
};

// Approximate serving of Safe-without-plan and Unsafe queries: the sampling
// engine steps its per-sample state one tick at a time, so even provably
// #P-hard queries (Section 3.4) host as standing queries with the
// (epsilon, delta) guarantee of Prop. 3.20. Units are samples.
class SamplingSession : public QuerySession {
 public:
  SamplingSession(SamplingEngine engine, QueryClass query_class)
      : QuerySession(query_class, EngineKind::kSampling, /*exact=*/false),
        engine_(std::move(engine)) {}

  Timestamp time() const override { return engine_.time(); }
  size_t num_units() const override { return engine_.num_samples(); }
  size_t UnitCost(size_t) const override { return 1; }

  void PrepareAdvance() override {
    Status s = engine_.PrepareStep();
    if (prepare_status_.ok()) prepare_status_ = std::move(s);
  }

  void AdvanceShard(size_t begin, size_t end) override {
    engine_.StepSampleRange(begin, end);
  }

  Result<double> CommitAdvance() override {
    // Commit unconditionally so time() stays in step with the executor's
    // tick even when the prepare failed; the error wins over the estimate.
    Result<double> p = engine_.CommitStep();
    Status prep = std::exchange(prepare_status_, Status::OK());
    if (!prep.ok()) return prep;
    return p;
  }

 private:
  SamplingEngine engine_;
  Status prepare_status_;
};

}  // namespace

Result<std::unique_ptr<QuerySession>> CreateQuerySession(
    EventDatabase* db, const PreparedQuery& prepared,
    const LaharOptions& options) {
  QueryClass cls = prepared.classification.query_class;

  auto sample = [&]() -> Result<std::unique_ptr<QuerySession>> {
    LAHAR_ASSIGN_OR_RETURN(
        SamplingEngine engine,
        SamplingEngine::Create(prepared.ast, *db, options.sampling));
    return std::unique_ptr<QuerySession>(
        new SamplingSession(std::move(engine), cls));
  };

  switch (cls) {
    case QueryClass::kRegular:
    case QueryClass::kExtendedRegular: {
      LAHAR_ASSIGN_OR_RETURN(StreamingSession session,
                             StreamingSession::Create(db, prepared,
                                                      options.chain));
      return std::unique_ptr<QuerySession>(
          new StreamingSession(std::move(session)));
    }
    case QueryClass::kSafe: {
      auto engine =
          SafePlanEngine::Create(prepared.normalized, *db, options.plan);
      if (engine.ok()) {
        return std::unique_ptr<QuerySession>(
            new SafeQuerySession(std::move(*engine)));
      }
      if (!options.allow_sampling_fallback) {
        Status status = engine.status();
        return std::move(status).WithPayload(kQueryClassPayload,
                                             QueryClassName(cls));
      }
      return sample();
    }
    case QueryClass::kUnsafe: {
      if (!options.allow_sampling_fallback) {
        return Status::UnsafeQuery(prepared.classification.reason)
            .WithPayload(kQueryClassPayload, QueryClassName(cls));
      }
      return sample();
    }
  }
  return Status::Internal("bad query class");
}

}  // namespace lahar
