// Extended Regular Queries (Section 3.2): one regular Markov chain per
// grounding of the shared variables; the groundings use disjoint tuples, so
// their truths are independent and combine as 1 - prod(1 - p_i).
//
// Space is O(m) in the number of distinct keys m, independent of stream
// length (Theorem 3.7), and each timestep costs O(m) chain steps.
//
// Chain lifecycle (docs/PERF.md "Chain lifecycle"): with
// ChainOptions::lazy_materialize / spill_cold_chains set, a binding is one
// of three residency states —
//   * resident: a live RegularChain (the only state without the knobs);
//   * stub:     ~16 bytes (NFA mask + idle counter). Valid while every
//               participating stream is "quiet" (contributes no symbols and
//               multiplies probabilities by exactly 1.0), in which case the
//               real chain's state is the closed-form single entry
//               {mask, hidden=0, p=1.0} with mask evolving by
//               Transition(mask, 0). Promoted to resident on first
//               evidence, bit-identically by construction.
//   * spilled:  the chain's live distribution parked as checkpoint-encoded
//               entries in a compact side arena. Only entered when every
//               state-set mask is a fixed point of the empty-input
//               transition, so quiet ticks are bitwise no-ops; rehydrated
//               transparently on the next loud tick.
// All three serialize into the same per-chain checkpoint encoding, so
// engine snapshots are byte-identical to the always-materialized reference.
#ifndef LAHAR_ENGINE_EXTENDED_ENGINE_H_
#define LAHAR_ENGINE_EXTENDED_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/regular_engine.h"

namespace lahar {

class SharedSubChain;  // engine/session.h

/// \brief Engine for Extended Regular (and Regular) queries.
class ExtendedRegularEngine {
 public:
  /// Builds one chain per grounding of the shared variables. The query must
  /// be (extended) regular; classification is not re-checked here.
  ///
  /// All groundings share one NFA structure, so their compiled kernels
  /// dedupe through a cache (options.kernel_cache, or a Create-local one):
  /// the m per-key chains hold one shared CompiledKernel. When
  /// options.soa_arena is set (default), the compiled chains' state vectors
  /// are additionally packed into one engine-owned contiguous arena
  /// ([chain0 cur | chain0 nxt | chain1 cur | ...]) so a timestep walks
  /// memory linearly instead of m scattered heap blocks.
  static Result<ExtendedRegularEngine> Create(const NormalizedQuery& q,
                                              const EventDatabase& db,
                                              const ChainOptions& options = {});

  /// Advances every chain one timestep; returns P[q@t] at the new time.
  double Step();

  /// Split form of Step() for sharded execution (src/runtime/): advances
  /// only the chains in [begin, end) to time()+1. Chains are independent,
  /// so disjoint ranges may run on different threads concurrently; the
  /// database must not be mutated while any range is in flight.
  void StepChainRange(size_t begin, size_t end);

  /// Completes a split step once every chain range has been stepped:
  /// advances the clock and combines the per-chain probabilities in chain
  /// order, bit-identically to Step().
  double CommitParallelStep();

  /// P[q@t] for t = 1..horizon (index 0 unused).
  std::vector<double> Run();

  /// Per-grounding time series: which binding of the shared variables
  /// satisfies the query, and when. `series[i].probs[t]` is P[q{binding_i}
  /// satisfied at t]; the combined Run() answer is their independent union.
  struct BindingSeries {
    Binding binding;
    std::vector<double> probs;
  };
  std::vector<BindingSeries> RunPerBinding();

  Timestamp time() const { return t_; }
  Timestamp horizon() const { return horizon_; }
  size_t num_chains() const { return chains_.size(); }

  /// Per-grounding probabilities at the current time (diagnostics).
  const std::vector<double>& chain_probs() const { return chain_probs_; }
  /// The grounding behind chain i.
  const Binding& binding(size_t i) const { return bindings_[i]; }
  /// The live chain of grounding i (for seeding shared units; when the
  /// chain is delegated this is its frozen pre-delegation state). Requires
  /// a materialized chain — stub/spilled bindings hold none.
  const RegularChain& chain(size_t i) const { return *chains_[i]; }

  /// Delegates chain `i` to a shared sub-chain: the engine stops stepping
  /// its private copy and reads per-tick probabilities from the unit's
  /// frontier. Refused (returns false) when either side has a latched
  /// error or the unit's clock is not at this engine's time(). The private
  /// chain is left frozen as a fallback until undelegation copies the
  /// shared state back.
  bool DelegateChain(size_t i, std::shared_ptr<SharedSubChain> unit);
  /// Reclaims chain `i`: copies the shared unit's live state back into the
  /// private chain (re-owning storage) and resumes local stepping.
  void UndelegateChain(size_t i);
  bool IsDelegated(size_t i) const {
    return i < delegates_.size() && delegates_[i] != nullptr;
  }
  size_t num_delegated() const { return num_delegated_; }

  /// Relative per-step cost of chain i (runtime shard balancing);
  /// delegated chains cost one frontier read, stubs and spilled chains one
  /// quiet check.
  size_t ChainCost(size_t i) const {
    if (IsDelegated(i)) return 1;
    if (lifecycle_ && residency_[i] != kResident) return 1;
    return chains_[i]->StepCost();
  }

  /// One past the last chain of the indivisible shard-unit group holding
  /// chain i: the whole lane-interleaved stripe for stripe lanes, i + 1
  /// otherwise. The executor aligns shard-range splits on these boundaries
  /// so a split never shears a stripe into per-chain fallbacks.
  size_t ChainGroupEnd(size_t i) const {
    if (i >= stripe_width_.size()) return i + 1;
    size_t j = i;
    while (j > 0 && stripe_width_[j] == 0) --j;  // member lane -> leader
    const uint32_t w = stripe_width_[j];
    return w > 1 ? j + w : i + 1;
  }
  /// First error latched by any chain (e.g. a failed symbol-table refresh
  /// after mid-stream domain growth); OK in normal operation.
  Status ChainStatus() const;
  /// Number of chains running on a compiled kernel (vs. the map path).
  size_t num_compiled() const {
    size_t n = 0;
    for (const auto& c : chains_) n += (c != nullptr && c->compiled()) ? 1 : 0;
    return n;
  }
  /// Number of chains on the vectorized dense-row step path.
  size_t num_simd() const {
    size_t n = 0;
    for (const auto& c : chains_) n += (c != nullptr && c->simd()) ? 1 : 0;
    return n;
  }
  /// Number of chains packed into lane-interleaved stripes (stepped
  /// simd::kLanes at a time when eligible).
  size_t num_striped() const {
    size_t n = 0;
    for (uint32_t w : stripe_width_) {
      if (w > 1) n += w;
    }
    return n;
  }
  /// Whole-stripe steps taken / stripes that fell back to per-chain steps
  /// this run (a fallback still computes bit-identical results).
  uint64_t stripe_steps() const {
    return counters_->stripe_steps.load(std::memory_order_relaxed);
  }
  uint64_t stripe_fallbacks() const {
    return counters_->stripe_fallbacks.load(std::memory_order_relaxed);
  }
  /// Doubles in the shared SoA state arena (0 when unused).
  size_t arena_size() const { return arena_.size(); }

  // --- chain lifecycle (lazy materialization / cold spill) ----------------
  /// True when this engine runs the stub/resident/spilled lifecycle
  /// (ChainOptions::lazy_materialize or spill_cold_chains).
  bool lifecycle_enabled() const { return lifecycle_; }
  /// Registered bindings currently holding a live chain.
  size_t num_resident() const;
  /// Registered bindings currently held as closed-form stubs.
  size_t num_stub() const;
  /// Registered bindings currently spilled to the side arena.
  size_t num_spilled() const;
  /// Lifetime lifecycle transitions (relaxed counters).
  uint64_t promotions() const {
    return counters_->promotions.load(std::memory_order_relaxed);
  }
  uint64_t spills() const {
    return counters_->spills.load(std::memory_order_relaxed);
  }
  uint64_t rehydrations() const {
    return counters_->rehydrations.load(std::memory_order_relaxed);
  }

  /// Steady-state memory accounting for the bytes-per-chain model
  /// (docs/PERF.md): the SoA arena, per-chain owned heap (state buffers,
  /// scratch, local rows), pooled transition rows counted once per
  /// distinct class across all chains, and the lifecycle side arenas
  /// (stub tables + spilled entries).
  struct MemoryFootprint {
    size_t arena_bytes = 0;
    size_t owned_bytes = 0;
    size_t shared_row_bytes = 0;
    size_t lifecycle_bytes = 0;  ///< stub tables + spilled side arena
    size_t bytes() const {
      return arena_bytes + owned_bytes + shared_row_bytes + lifecycle_bytes;
    }
  };
  MemoryFootprint Footprint() const;

  /// Serializes the clock, chain probabilities, and every chain's state
  /// distribution (checkpointing). LoadState restores into an engine built
  /// by the same query over an identical database snapshot — chain count
  /// and per-chain hidden-slot layout must match — after which stepping
  /// continues bit-identically.
  void SaveState(serial::Writer* w) const;
  Status LoadState(serial::Reader* r);

 private:
  // Residency of a binding (lifecycle mode; everything is kResident
  // otherwise). Stored as uint8_t so 1M bindings cost 1MB.
  static constexpr uint8_t kResident = 0;
  static constexpr uint8_t kStub = 1;
  static constexpr uint8_t kSpilled = 2;

  // One participating stream of one binding, flattened: enough to decide
  // per tick whether the stream is quiet (contributes no symbols, scales
  // probabilities by exactly 1.0) without a live chain.
  struct LifecyclePart {
    StreamId stream = 0;
    bool markovian = false;
    // Independent streams: bit d of trigger_words_[trigger_begin + d/64]
    // set means domain value d produces a symbol (creation-time masks;
    // existing values never change masks under domain growth). Mass on a
    // value >= trigger_bits (interned after creation) conservatively
    // promotes.
    uint32_t trigger_begin = 0;
    uint32_t trigger_bits = 0;
  };

  // A cold chain's live distribution, parked off the step path. Entries
  // keep the raw (mask, hidden) keys plus the creation-time radices, so
  // checkpoint bytes can be re-emitted against *current* domain sizes
  // exactly as the live chain's SaveState would.
  struct SpilledChain {
    uint8_t track = 0;
    std::vector<uint64_t> radices;         // per Markovian slot
    std::vector<StreamId> markov_streams;  // per slot, for domain lookups
    struct Entry {
      StateMask mask = 0;
      uint64_t hidden = 0;
      double p = 0.0;
    };
    std::vector<Entry> entries;  // canonical (mask, hidden) order
    size_t bytes() const {
      return sizeof(SpilledChain) + radices.capacity() * sizeof(uint64_t) +
             markov_streams.capacity() * sizeof(StreamId) +
             entries.capacity() * sizeof(Entry);
    }
  };

  // True when every participating stream of binding i is quiet at `next`:
  // stepping is then the empty-input transition with all probability
  // multipliers exactly 1.0 (see BuildIndependentMaskDist /
  // EnumerateSuccessors in regular_engine.cc).
  bool QuietAt(size_t i, Timestamp next) const;
  // Appends the next binding's lifecycle tables from its symbol table.
  void AppendLifecycleParts(const SymbolTable& table);
  // Materializes binding i from its stub (thread-safe for disjoint i).
  void PromoteChain(size_t i);
  // Rebuilds binding i's chain from its spilled entries.
  void RehydrateChain(size_t i);
  // Freezes resident binding i when its state is a fixed point of the
  // empty-input transition; downgrades all the way to a stub when the
  // state is exactly the closed form. No-op when ineligible.
  void TrySpill(size_t i);
  // Serializes binding i's snapshot — same bytes as a live chain's
  // SaveState — from whichever residency it is in.
  void SaveChainState(size_t i, serial::Writer* w) const;
  // Restores binding i from one chain snapshot inside an engine snapshot
  // taken at time `t`, classifying it back into the cheapest residency that
  // reproduces it exactly (stub, spilled, or materialized).
  Status RestoreChainState(size_t i, serial::Reader* r, uint32_t t);
  // Builds a fresh chain for binding i (promotion/rehydration/restore).
  Result<RegularChain> BuildChain(size_t i) const;
  void LatchLifecycleError(const Status& s);

  // Heap-held per binding so non-resident bindings cost a null pointer, not
  // a sizeof(RegularChain) slot (~half a KB of empty vectors): the slot is
  // null exactly while residency is kStub/kSpilled.
  std::vector<std::unique_ptr<RegularChain>> chains_;
  std::vector<Binding> bindings_;
  std::vector<double> chain_probs_;
  // Sized lazily on first delegation; delegates_[i] != null means chain i
  // reads the shared frontier instead of stepping.
  std::vector<std::shared_ptr<SharedSubChain>> delegates_;
  size_t num_delegated_ = 0;
  // Contiguous cur|nxt state buffers of all compiled chains (SoA batching).
  // Chains hold raw pointers into this vector; the engine is movable (the
  // heap buffer survives a move) but each chain's copy ctor re-owns its
  // slice, so copied engines simply stop using the arena.
  std::vector<double> arena_;
  // Stripe layout over chains_: stripe_width_[i] is simd::kLanes at a
  // stripe leader, 0 at its member lanes (the leader steps them), and 1
  // for chains stepped alone. Empty when no arena was packed.
  std::vector<uint32_t> stripe_width_;
  // Heap-held so the engine stays movable; StepChainRange runs concurrently
  // across shard threads, hence atomics (relaxed: they are pure counters).
  struct StripeCounters {
    std::atomic<uint64_t> stripe_steps{0};
    std::atomic<uint64_t> stripe_fallbacks{0};
    std::atomic<uint64_t> promotions{0};
    std::atomic<uint64_t> spills{0};
    std::atomic<uint64_t> rehydrations{0};
    // First error from a concurrent promote/rehydrate (ChainStatus()).
    std::mutex mu;
    Status first_error;
  };
  std::unique_ptr<StripeCounters> counters_ =
      std::make_unique<StripeCounters>();

  // --- lifecycle state (empty unless lifecycle_) --------------------------
  bool lifecycle_ = false;
  bool lazy_ = false;
  bool spill_ = false;
  uint32_t cold_after_ = 64;
  // Rebuilding chains mid-run needs the query, database, and options that
  // built the engine; the caches the options point at must outlive every
  // promotion, so the engine owns fallbacks when the caller passed none.
  NormalizedQuery query_;
  const EventDatabase* db_ = nullptr;
  ChainOptions chain_options_;
  std::shared_ptr<KernelCache> owned_cache_;
  std::shared_ptr<TransitionRowPool> owned_rows_;
  std::unique_ptr<StreamKeyIndex> stream_index_;
  // Memoization-free automaton copy for stub evolution: Transition() is
  // then pure/const and safe from concurrent shard threads. One copy
  // serves every binding (groundings share the NFA structure).
  std::unique_ptr<QueryNfa> stub_nfa_;
  std::vector<uint8_t> residency_;
  std::vector<StateMask> stub_mask_;
  std::vector<uint32_t> idle_ticks_;
  std::vector<uint32_t> part_begin_;  // [n + 1] offsets into parts_
  std::vector<LifecyclePart> parts_;
  std::vector<uint64_t> trigger_words_;
  std::vector<std::unique_ptr<SpilledChain>> spilled_;

  Timestamp t_ = 0;
  Timestamp horizon_ = 0;
};

}  // namespace lahar

#endif  // LAHAR_ENGINE_EXTENDED_ENGINE_H_
