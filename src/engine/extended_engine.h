// Extended Regular Queries (Section 3.2): one regular Markov chain per
// grounding of the shared variables; the groundings use disjoint tuples, so
// their truths are independent and combine as 1 - prod(1 - p_i).
//
// Space is O(m) in the number of distinct keys m, independent of stream
// length (Theorem 3.7), and each timestep costs O(m) chain steps.
#ifndef LAHAR_ENGINE_EXTENDED_ENGINE_H_
#define LAHAR_ENGINE_EXTENDED_ENGINE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "engine/regular_engine.h"

namespace lahar {

class SharedSubChain;  // engine/session.h

/// \brief Engine for Extended Regular (and Regular) queries.
class ExtendedRegularEngine {
 public:
  /// Builds one chain per grounding of the shared variables. The query must
  /// be (extended) regular; classification is not re-checked here.
  ///
  /// All groundings share one NFA structure, so their compiled kernels
  /// dedupe through a cache (options.kernel_cache, or a Create-local one):
  /// the m per-key chains hold one shared CompiledKernel. When
  /// options.soa_arena is set (default), the compiled chains' state vectors
  /// are additionally packed into one engine-owned contiguous arena
  /// ([chain0 cur | chain0 nxt | chain1 cur | ...]) so a timestep walks
  /// memory linearly instead of m scattered heap blocks.
  static Result<ExtendedRegularEngine> Create(const NormalizedQuery& q,
                                              const EventDatabase& db,
                                              const ChainOptions& options = {});

  /// Advances every chain one timestep; returns P[q@t] at the new time.
  double Step();

  /// Split form of Step() for sharded execution (src/runtime/): advances
  /// only the chains in [begin, end) to time()+1. Chains are independent,
  /// so disjoint ranges may run on different threads concurrently; the
  /// database must not be mutated while any range is in flight.
  void StepChainRange(size_t begin, size_t end);

  /// Completes a split step once every chain range has been stepped:
  /// advances the clock and combines the per-chain probabilities in chain
  /// order, bit-identically to Step().
  double CommitParallelStep();

  /// P[q@t] for t = 1..horizon (index 0 unused).
  std::vector<double> Run();

  /// Per-grounding time series: which binding of the shared variables
  /// satisfies the query, and when. `series[i].probs[t]` is P[q{binding_i}
  /// satisfied at t]; the combined Run() answer is their independent union.
  struct BindingSeries {
    Binding binding;
    std::vector<double> probs;
  };
  std::vector<BindingSeries> RunPerBinding();

  Timestamp time() const { return t_; }
  Timestamp horizon() const { return horizon_; }
  size_t num_chains() const { return chains_.size(); }

  /// Per-grounding probabilities at the current time (diagnostics).
  const std::vector<double>& chain_probs() const { return chain_probs_; }
  /// The grounding behind chain i.
  const Binding& binding(size_t i) const { return bindings_[i]; }
  /// The live chain of grounding i (for seeding shared units; when the
  /// chain is delegated this is its frozen pre-delegation state).
  const RegularChain& chain(size_t i) const { return chains_[i]; }

  /// Delegates chain `i` to a shared sub-chain: the engine stops stepping
  /// its private copy and reads per-tick probabilities from the unit's
  /// frontier. Refused (returns false) when either side has a latched
  /// error or the unit's clock is not at this engine's time(). The private
  /// chain is left frozen as a fallback until undelegation copies the
  /// shared state back.
  bool DelegateChain(size_t i, std::shared_ptr<SharedSubChain> unit);
  /// Reclaims chain `i`: copies the shared unit's live state back into the
  /// private chain (re-owning storage) and resumes local stepping.
  void UndelegateChain(size_t i);
  bool IsDelegated(size_t i) const {
    return i < delegates_.size() && delegates_[i] != nullptr;
  }
  size_t num_delegated() const { return num_delegated_; }

  /// Relative per-step cost of chain i (runtime shard balancing);
  /// delegated chains cost one frontier read.
  size_t ChainCost(size_t i) const {
    return IsDelegated(i) ? 1 : chains_[i].StepCost();
  }
  /// First error latched by any chain (e.g. a failed symbol-table refresh
  /// after mid-stream domain growth); OK in normal operation.
  Status ChainStatus() const;
  /// Number of chains running on a compiled kernel (vs. the map path).
  size_t num_compiled() const {
    size_t n = 0;
    for (const RegularChain& c : chains_) n += c.compiled() ? 1 : 0;
    return n;
  }
  /// Number of chains on the vectorized dense-row step path.
  size_t num_simd() const {
    size_t n = 0;
    for (const RegularChain& c : chains_) n += c.simd() ? 1 : 0;
    return n;
  }
  /// Number of chains packed into lane-interleaved stripes (stepped
  /// simd::kLanes at a time when eligible).
  size_t num_striped() const {
    size_t n = 0;
    for (uint32_t w : stripe_width_) {
      if (w > 1) n += w;
    }
    return n;
  }
  /// Whole-stripe steps taken / stripes that fell back to per-chain steps
  /// this run (a fallback still computes bit-identical results).
  uint64_t stripe_steps() const {
    return counters_->stripe_steps.load(std::memory_order_relaxed);
  }
  uint64_t stripe_fallbacks() const {
    return counters_->stripe_fallbacks.load(std::memory_order_relaxed);
  }
  /// Doubles in the shared SoA state arena (0 when unused).
  size_t arena_size() const { return arena_.size(); }

  /// Steady-state memory accounting for the bytes-per-chain model
  /// (docs/PERF.md): the SoA arena, per-chain owned heap (state buffers,
  /// scratch, local rows), and pooled transition rows counted once per
  /// distinct class across all chains.
  struct MemoryFootprint {
    size_t arena_bytes = 0;
    size_t owned_bytes = 0;
    size_t shared_row_bytes = 0;
    size_t bytes() const {
      return arena_bytes + owned_bytes + shared_row_bytes;
    }
  };
  MemoryFootprint Footprint() const;

  /// Serializes the clock, chain probabilities, and every chain's state
  /// distribution (checkpointing). LoadState restores into an engine built
  /// by the same query over an identical database snapshot — chain count
  /// and per-chain hidden-slot layout must match — after which stepping
  /// continues bit-identically.
  void SaveState(serial::Writer* w) const;
  Status LoadState(serial::Reader* r);

 private:
  std::vector<RegularChain> chains_;
  std::vector<Binding> bindings_;
  std::vector<double> chain_probs_;
  // Sized lazily on first delegation; delegates_[i] != null means chain i
  // reads the shared frontier instead of stepping.
  std::vector<std::shared_ptr<SharedSubChain>> delegates_;
  size_t num_delegated_ = 0;
  // Contiguous cur|nxt state buffers of all compiled chains (SoA batching).
  // Chains hold raw pointers into this vector; the engine is movable (the
  // heap buffer survives a move) but each chain's copy ctor re-owns its
  // slice, so copied engines simply stop using the arena.
  std::vector<double> arena_;
  // Stripe layout over chains_: stripe_width_[i] is simd::kLanes at a
  // stripe leader, 0 at its member lanes (the leader steps them), and 1
  // for chains stepped alone. Empty when no arena was packed.
  std::vector<uint32_t> stripe_width_;
  // Heap-held so the engine stays movable; StepChainRange runs concurrently
  // across shard threads, hence atomics (relaxed: they are pure counters).
  struct StripeCounters {
    std::atomic<uint64_t> stripe_steps{0};
    std::atomic<uint64_t> stripe_fallbacks{0};
  };
  std::unique_ptr<StripeCounters> counters_ =
      std::make_unique<StripeCounters>();
  Timestamp t_ = 0;
  Timestamp horizon_ = 0;
};

}  // namespace lahar

#endif  // LAHAR_ENGINE_EXTENDED_ENGINE_H_
