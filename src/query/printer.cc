#include "query/printer.h"

namespace lahar {
namespace {

const char* CmpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

std::string BaseToString(const BaseQuery& bq, const Interner& interner) {
  std::string out = interner.Name(bq.goal.type) + "(";
  for (size_t i = 0; i < bq.goal.terms.size(); ++i) {
    if (i) out += ", ";
    out += ToString(bq.goal.terms[i], interner);
  }
  if (!bq.pred.IsTrue()) out += " : " + ToString(bq.pred, interner);
  out += ")";
  if (bq.is_kleene) {
    out += "+{";
    for (size_t i = 0; i < bq.kleene_vars.size(); ++i) {
      if (i) out += ", ";
      out += interner.Name(bq.kleene_vars[i]);
    }
    if (!bq.kleene_pred.IsTrue()) {
      out += " : " + ToString(bq.kleene_pred, interner);
    }
    out += "}";
  }
  return out;
}

}  // namespace

std::string ToString(const Term& t, const Interner& interner) {
  if (t.is_var) return interner.Name(t.var);
  return t.constant.ToString(interner);
}

std::string ToString(const Subgoal& g, const Interner& interner) {
  std::string out = interner.Name(g.type) + "(";
  for (size_t i = 0; i < g.terms.size(); ++i) {
    if (i) out += ", ";
    out += ToString(g.terms[i], interner);
  }
  return out + ")";
}

namespace {

std::string AtomToString(const ConditionAtom& atom, const Interner& interner) {
  std::string out;
  if (std::holds_alternative<CompareAtom>(atom)) {
    const auto& a = std::get<CompareAtom>(atom);
    out += ToString(a.lhs, interner);
    out += " ";
    out += CmpName(a.op);
    out += " ";
    out += ToString(a.rhs, interner);
  } else {
    const auto& a = std::get<RelAtom>(atom);
    if (a.negated) out += "NOT ";
    out += interner.Name(a.rel) + "(";
    for (size_t j = 0; j < a.args.size(); ++j) {
      if (j) out += ", ";
      out += ToString(a.args[j], interner);
    }
    out += ")";
  }
  return out;
}

}  // namespace

std::string ToString(const Condition& cond, const Interner& interner) {
  if (cond.IsTrue()) return "true";
  std::string out;
  for (size_t i = 0; i < cond.clauses().size(); ++i) {
    if (i) out += " AND ";
    const ConditionClause& clause = cond.clauses()[i];
    bool paren = cond.clauses().size() > 1 && clause.atoms.size() > 1;
    if (paren) out += "(";
    for (size_t j = 0; j < clause.atoms.size(); ++j) {
      if (j) out += " OR ";
      out += AtomToString(clause.atoms[j], interner);
    }
    if (paren) out += ")";
  }
  return out;
}

std::string ToString(const Query& q, const Interner& interner) {
  switch (q.kind) {
    case Query::Kind::kBase:
      return BaseToString(q.base, interner);
    case Query::Kind::kSequence:
      return ToString(*q.child, interner) + "; " +
             BaseToString(q.base, interner);
    case Query::Kind::kSelection:
      return "(" + ToString(*q.child, interner) + " WHERE " +
             ToString(q.selection, interner) + ")";
  }
  return "?";
}

}  // namespace lahar
