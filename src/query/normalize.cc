#include "query/normalize.h"

#include <algorithm>
#include <map>

namespace lahar {
namespace {

// Places one selection conjunct (a CNF clause) whose scope is the prefix
// of `subgoals` (the whole current list). Pushes it to the shortest prefix
// containing its variables; if it is then local to that prefix's last
// subgoal it becomes that subgoal's accept predicate, otherwise it is
// non-local.
void PlaceConjunct(const ConditionClause& clause,
                   std::vector<NormalizedSubgoal>* subgoals,
                   Condition* residual) {
  std::set<SymbolId> vars = clause.Vars();
  if (vars.empty()) {
    // Variable-free condition: constant truth value; attach anywhere.
    Condition c;
    c.AddClause(clause);
    (*subgoals)[0].accept_pred = (*subgoals)[0].accept_pred.And(c);
    return;
  }
  // j* = first index such that the prefix 0..j* covers all variables.
  std::set<SymbolId> seen;
  size_t jstar = subgoals->size();
  for (size_t j = 0; j < subgoals->size(); ++j) {
    auto gv = (*subgoals)[j].Vars();
    seen.insert(gv.begin(), gv.end());
    if (std::includes(seen.begin(), seen.end(), vars.begin(), vars.end())) {
      jstar = j;
      break;
    }
  }
  Condition c;
  c.AddClause(clause);
  if (jstar == subgoals->size()) {
    // Variables not all covered — ValidateQuery prevents this, but keep the
    // conjunct rather than dropping it.
    *residual = residual->And(c);
    return;
  }
  auto gv = (*subgoals)[jstar].Vars();
  bool local = std::includes(gv.begin(), gv.end(), vars.begin(), vars.end());
  if (local) {
    (*subgoals)[jstar].accept_pred = (*subgoals)[jstar].accept_pred.And(c);
  } else {
    *residual = residual->And(c);
  }
}

void AppendBase(const BaseQuery& bq, std::vector<NormalizedSubgoal>* out) {
  NormalizedSubgoal ns;
  ns.goal = bq.goal;
  ns.match_pred = bq.pred;
  ns.is_kleene = bq.is_kleene;
  ns.kleene_vars = bq.kleene_vars;
  if (bq.is_kleene) ns.accept_pred = bq.kleene_pred;
  out->push_back(std::move(ns));
}

Status Walk(const Query& q, std::vector<NormalizedSubgoal>* subgoals,
            Condition* residual) {
  switch (q.kind) {
    case Query::Kind::kBase:
      AppendBase(q.base, subgoals);
      return Status::OK();
    case Query::Kind::kSequence:
      LAHAR_RETURN_NOT_OK(Walk(*q.child, subgoals, residual));
      AppendBase(q.base, subgoals);
      return Status::OK();
    case Query::Kind::kSelection: {
      LAHAR_RETURN_NOT_OK(Walk(*q.child, subgoals, residual));
      if (subgoals->empty()) {
        return Status::Internal("selection over empty query");
      }
      for (const ConditionClause& clause : q.selection.clauses()) {
        PlaceConjunct(clause, subgoals, residual);
      }
      return Status::OK();
    }
  }
  return Status::Internal("bad query node");
}

}  // namespace

std::set<SymbolId> NormalizedQuery::SharedVars() const {
  std::map<SymbolId, int> counts;
  std::set<SymbolId> shared;
  for (const NormalizedSubgoal& sg : subgoals) {
    for (SymbolId v : sg.Vars()) counts[v] += 1;
    if (sg.is_kleene) {
      for (SymbolId v : sg.kleene_vars) shared.insert(v);
    }
  }
  for (const auto& [v, n] : counts) {
    if (n > 1) shared.insert(v);
  }
  return shared;
}

NormalizedQuery NormalizedQuery::Substitute(const Binding& subst) const {
  NormalizedQuery out;
  out.residual = residual.Substitute(subst);
  for (const NormalizedSubgoal& sg : subgoals) {
    NormalizedSubgoal ns;
    ns.goal = sg.goal;
    for (Term& t : ns.goal.terms) {
      if (!t.is_var) continue;
      auto it = subst.find(t.var);
      if (it != subst.end()) t = Term::Const(it->second);
    }
    ns.match_pred = sg.match_pred.Substitute(subst);
    ns.accept_pred = sg.accept_pred.Substitute(subst);
    ns.is_kleene = sg.is_kleene;
    for (SymbolId v : sg.kleene_vars) {
      if (!subst.count(v)) ns.kleene_vars.push_back(v);
    }
    out.subgoals.push_back(std::move(ns));
  }
  return out;
}

Result<NormalizedQuery> Normalize(const Query& q) {
  NormalizedQuery out;
  LAHAR_RETURN_NOT_OK(Walk(q, &out.subgoals, &out.residual));
  if (out.subgoals.empty()) {
    return Status::InvalidArgument("query has no subgoals");
  }
  return out;
}

}  // namespace lahar
