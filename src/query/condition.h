// Terms, bindings, and conditions (the theta predicates of Section 2.2).
//
// A condition is a conjunction of atoms; an atom is either a comparison
// between terms (x = 'a', y > 20) or a (possibly negated) membership test in
// a finite relation (Hallway(l), NOT Office(p, l)).
#ifndef LAHAR_QUERY_CONDITION_H_
#define LAHAR_QUERY_CONDITION_H_

#include <set>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/status.h"
#include "model/database.h"
#include "model/value.h"

namespace lahar {

/// \brief A term: a variable or a constant.
struct Term {
  static Term Var(SymbolId v) {
    Term t;
    t.is_var = true;
    t.var = v;
    return t;
  }
  static Term Const(Value c) {
    Term t;
    t.is_var = false;
    t.constant = c;
    return t;
  }

  bool is_var = false;
  SymbolId var = 0;
  Value constant;

  bool operator==(const Term& o) const {
    if (is_var != o.is_var) return false;
    return is_var ? var == o.var : constant == o.constant;
  }
};

/// A partial assignment of variables to values.
using Binding = std::unordered_map<SymbolId, Value>;

/// Resolves a term under a binding. Returns null Value if an unbound
/// variable (callers treat that as an error; see Condition::Eval).
Value Resolve(const Term& t, const Binding& b);

/// Comparison operators for Compare atoms.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// \brief Atom: lhs op rhs.
struct CompareAtom {
  Term lhs;
  CmpOp op;
  Term rhs;
};

/// \brief Atom: [NOT] Rel(args) membership in a finite relation.
struct RelAtom {
  SymbolId rel = 0;
  std::vector<Term> args;
  bool negated = false;
};

using ConditionAtom = std::variant<CompareAtom, RelAtom>;

/// \brief A disjunction of atoms (one clause of a CNF condition).
struct ConditionClause {
  std::vector<ConditionAtom> atoms;

  std::set<SymbolId> Vars() const;
  Result<bool> Eval(const Binding& binding, const EventDatabase& db) const;
  ConditionClause Substitute(const Binding& subst) const;
};

/// \brief A condition in conjunctive normal form: AND of OR-clauses.
/// The empty conjunction is true. The paper allows "complex Boolean
/// expressions" as predicates; CNF covers them (NOT applies to relation
/// atoms, comparisons negate by flipping the operator).
class Condition {
 public:
  Condition() = default;

  static Condition True() { return Condition(); }
  bool IsTrue() const { return clauses_.empty(); }

  /// Appends a single-atom clause (a plain conjunct).
  void AddAtom(ConditionAtom atom);
  /// Appends a disjunctive clause.
  void AddClause(ConditionClause clause) {
    clauses_.push_back(std::move(clause));
  }

  const std::vector<ConditionClause>& clauses() const { return clauses_; }

  /// Conjunction of this condition and `other`.
  Condition And(const Condition& other) const;

  /// The set of variables mentioned by any atom (var(theta)).
  std::set<SymbolId> Vars() const;

  /// Evaluates under `binding`; every variable must be bound and every
  /// referenced relation must exist in `db`, otherwise an error Status.
  Result<bool> Eval(const Binding& binding, const EventDatabase& db) const;

  /// Substitutes constants for the given variables (used when grounding
  /// shared variables).
  Condition Substitute(const Binding& subst) const;

 private:
  std::vector<ConditionClause> clauses_;
};

/// Variables of a single atom.
std::set<SymbolId> AtomVars(const ConditionAtom& atom);

}  // namespace lahar

#endif  // LAHAR_QUERY_CONDITION_H_
