#include "query/parser.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

namespace lahar {
namespace {

enum class Tok {
  kIdent,
  kQuoted,
  kInt,
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kSemi,
  kComma,
  kColon,
  kPlus,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;   // identifier / quoted payload
  int64_t number = 0;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      size_t pos = i_;
      if (i_ >= text_.size()) {
        out.push_back({Tok::kEnd, "", 0, pos});
        return out;
      }
      char c = text_[i_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i_;
        while (i_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[i_])) ||
                text_[i_] == '_')) {
          ++i_;
        }
        out.push_back(
            {Tok::kIdent, std::string(text_.substr(start, i_ - start)), 0, pos});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i_ + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[i_ + 1])))) {
        size_t start = i_;
        if (c == '-') ++i_;
        while (i_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[i_]))) {
          ++i_;
        }
        Token t{Tok::kInt, "", 0, pos};
        t.number = std::strtoll(std::string(text_.substr(start, i_ - start)).c_str(),
                                nullptr, 10);
        out.push_back(t);
        continue;
      }
      if (c == '\'') {
        ++i_;
        size_t start = i_;
        while (i_ < text_.size() && text_[i_] != '\'') ++i_;
        if (i_ >= text_.size()) {
          return Status::ParseError("unterminated quoted constant at offset " +
                                    std::to_string(pos));
        }
        out.push_back(
            {Tok::kQuoted, std::string(text_.substr(start, i_ - start)), 0, pos});
        ++i_;
        continue;
      }
      switch (c) {
        case '(': out.push_back({Tok::kLParen, "", 0, pos}); ++i_; break;
        case ')': out.push_back({Tok::kRParen, "", 0, pos}); ++i_; break;
        case '{': out.push_back({Tok::kLBrace, "", 0, pos}); ++i_; break;
        case '}': out.push_back({Tok::kRBrace, "", 0, pos}); ++i_; break;
        case ';': out.push_back({Tok::kSemi, "", 0, pos}); ++i_; break;
        case ',': out.push_back({Tok::kComma, "", 0, pos}); ++i_; break;
        case ':': out.push_back({Tok::kColon, "", 0, pos}); ++i_; break;
        case '+': out.push_back({Tok::kPlus, "", 0, pos}); ++i_; break;
        case '=': out.push_back({Tok::kEq, "", 0, pos}); ++i_; break;
        case '!':
          if (Peek(1) == '=') {
            out.push_back({Tok::kNe, "", 0, pos});
            i_ += 2;
          } else {
            return Status::ParseError("stray '!' at offset " +
                                      std::to_string(pos));
          }
          break;
        case '<':
          if (Peek(1) == '=') {
            out.push_back({Tok::kLe, "", 0, pos});
            i_ += 2;
          } else {
            out.push_back({Tok::kLt, "", 0, pos});
            ++i_;
          }
          break;
        case '>':
          if (Peek(1) == '=') {
            out.push_back({Tok::kGe, "", 0, pos});
            i_ += 2;
          } else {
            out.push_back({Tok::kGt, "", 0, pos});
            ++i_;
          }
          break;
        default:
          return Status::ParseError(std::string("unexpected character '") + c +
                                    "' at offset " + std::to_string(pos));
      }
    }
  }

 private:
  void SkipSpace() {
    while (i_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[i_]))) {
      ++i_;
    }
  }
  char Peek(size_t ahead) const {
    return i_ + ahead < text_.size() ? text_[i_ + ahead] : '\0';
  }

  std::string_view text_;
  size_t i_ = 0;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, Interner* interner)
      : tokens_(std::move(tokens)), interner_(interner) {}

  Result<QueryPtr> ParseTop() {
    LAHAR_ASSIGN_OR_RETURN(QueryPtr q, ParseQueryExpr());
    if (!At(Tok::kEnd)) {
      return Err("trailing input after query");
    }
    return q;
  }

 private:
  // query := seq [WHERE cond]
  Result<QueryPtr> ParseQueryExpr() {
    LAHAR_ASSIGN_OR_RETURN(QueryPtr q, ParseSeq());
    if (AtKeyword("WHERE")) {
      Advance();
      LAHAR_ASSIGN_OR_RETURN(Condition cond, ParseCond());
      q = MakeSelection(std::move(q), std::move(cond));
    }
    return q;
  }

  // seq := unit (';' base)*
  Result<QueryPtr> ParseSeq() {
    LAHAR_ASSIGN_OR_RETURN(QueryPtr q, ParseUnit());
    while (At(Tok::kSemi)) {
      Advance();
      if (At(Tok::kLParen)) {
        return Err(
            "sequencing is left-associative: a parenthesized subquery may "
            "only appear as the first unit");
      }
      LAHAR_ASSIGN_OR_RETURN(BaseQuery bq, ParseBase());
      q = MakeSequence(std::move(q), std::move(bq));
    }
    return q;
  }

  // unit := base | '(' query ')'
  Result<QueryPtr> ParseUnit() {
    if (At(Tok::kLParen)) {
      Advance();
      LAHAR_ASSIGN_OR_RETURN(QueryPtr q, ParseQueryExpr());
      LAHAR_RETURN_NOT_OK(Expect(Tok::kRParen, "')'"));
      return q;
    }
    LAHAR_ASSIGN_OR_RETURN(BaseQuery bq, ParseBase());
    return MakeBase(std::move(bq));
  }

  // base := IDENT '(' terms [':' cond] ')' [kleene]
  Result<BaseQuery> ParseBase() {
    if (!At(Tok::kIdent)) return Err("expected a subgoal");
    BaseQuery bq;
    bq.goal.type = interner_->Intern(Cur().text);
    Advance();
    LAHAR_RETURN_NOT_OK(Expect(Tok::kLParen, "'(' after subgoal name"));
    if (!At(Tok::kRParen) && !At(Tok::kColon)) {
      while (true) {
        LAHAR_ASSIGN_OR_RETURN(Term t, ParseTerm());
        bq.goal.terms.push_back(t);
        if (!At(Tok::kComma)) break;
        Advance();
      }
    }
    if (At(Tok::kColon)) {
      Advance();
      LAHAR_ASSIGN_OR_RETURN(bq.pred, ParseCond());
    }
    LAHAR_RETURN_NOT_OK(Expect(Tok::kRParen, "')' closing subgoal"));
    if (At(Tok::kPlus)) {
      Advance();
      bq.is_kleene = true;
      LAHAR_RETURN_NOT_OK(Expect(Tok::kLBrace, "'{' after '+'"));
      while (At(Tok::kIdent) && !AtKeyword("NOT")) {
        bq.kleene_vars.push_back(interner_->Intern(Cur().text));
        Advance();
        if (At(Tok::kComma)) {
          Advance();
          continue;
        }
        break;
      }
      if (At(Tok::kColon)) {
        Advance();
        LAHAR_ASSIGN_OR_RETURN(bq.kleene_pred, ParseCond());
      }
      LAHAR_RETURN_NOT_OK(Expect(Tok::kRBrace, "'}' closing Kleene plus"));
    }
    return bq;
  }

  // cond := clause (AND clause)*
  // clause := unit (OR unit)*;  unit := atom | '(' clause ')'
  // (parentheses group disjunctions; OR is associative so groups flatten)
  Result<Condition> ParseCond() {
    Condition cond;
    while (true) {
      ConditionClause clause;
      LAHAR_RETURN_NOT_OK(ParseClauseInto(&clause));
      cond.AddClause(std::move(clause));
      if (AtKeyword("AND")) {
        Advance();
        continue;
      }
      break;
    }
    return cond;
  }

  Status ParseClauseInto(ConditionClause* clause) {
    while (true) {
      if (At(Tok::kLParen)) {
        Advance();
        LAHAR_RETURN_NOT_OK(ParseClauseInto(clause));
        LAHAR_RETURN_NOT_OK(Expect(Tok::kRParen, "')' closing clause"));
      } else {
        LAHAR_ASSIGN_OR_RETURN(ConditionAtom atom, ParseAtom());
        clause->atoms.push_back(std::move(atom));
      }
      if (AtKeyword("OR")) {
        Advance();
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Result<ConditionAtom> ParseAtom() {
    bool negated = false;
    if (AtKeyword("NOT")) {
      negated = true;
      Advance();
    }
    // Relation atom: IDENT '(' ... — requires lookahead to distinguish from
    // a comparison whose lhs is a variable.
    if (At(Tok::kIdent) && PeekKind(1) == Tok::kLParen) {
      RelAtom rel;
      rel.negated = negated;
      rel.rel = interner_->Intern(Cur().text);
      Advance();
      Advance();  // '('
      if (!At(Tok::kRParen)) {
        while (true) {
          LAHAR_ASSIGN_OR_RETURN(Term t, ParseTerm());
          rel.args.push_back(t);
          if (!At(Tok::kComma)) break;
          Advance();
        }
      }
      LAHAR_RETURN_NOT_OK(Expect(Tok::kRParen, "')' closing relation atom"));
      return ConditionAtom(std::move(rel));
    }
    if (negated) return Err("NOT applies only to relation atoms");
    CompareAtom cmp;
    LAHAR_ASSIGN_OR_RETURN(cmp.lhs, ParseTerm());
    switch (Cur().kind) {
      case Tok::kEq: cmp.op = CmpOp::kEq; break;
      case Tok::kNe: cmp.op = CmpOp::kNe; break;
      case Tok::kLt: cmp.op = CmpOp::kLt; break;
      case Tok::kLe: cmp.op = CmpOp::kLe; break;
      case Tok::kGt: cmp.op = CmpOp::kGt; break;
      case Tok::kGe: cmp.op = CmpOp::kGe; break;
      default: return Err("expected comparison operator");
    }
    Advance();
    LAHAR_ASSIGN_OR_RETURN(cmp.rhs, ParseTerm());
    return ConditionAtom(cmp);
  }

  Result<Term> ParseTerm() {
    if (At(Tok::kIdent)) {
      Term t = Term::Var(interner_->Intern(Cur().text));
      Advance();
      return t;
    }
    if (At(Tok::kQuoted)) {
      Term t = Term::Const(Value::Symbol(interner_->Intern(Cur().text)));
      Advance();
      return t;
    }
    if (At(Tok::kInt)) {
      Term t = Term::Const(Value::Int(Cur().number));
      Advance();
      return t;
    }
    return Err("expected a term (variable, 'constant', or integer)");
  }

  const Token& Cur() const { return tokens_[i_]; }
  bool At(Tok k) const { return Cur().kind == k; }
  bool AtKeyword(const char* kw) const {
    return Cur().kind == Tok::kIdent && Cur().text == kw;
  }
  Tok PeekKind(size_t ahead) const {
    size_t j = i_ + ahead;
    return j < tokens_.size() ? tokens_[j].kind : Tok::kEnd;
  }
  void Advance() {
    if (i_ + 1 < tokens_.size()) ++i_;
  }
  Status Expect(Tok k, const char* what) {
    if (!At(k)) return Err(std::string("expected ") + what);
    Advance();
    return Status::OK();
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(Cur().pos));
  }

  std::vector<Token> tokens_;
  Interner* interner_;
  size_t i_ = 0;
};

}  // namespace

Result<QueryPtr> ParseQuery(std::string_view text, Interner* interner) {
  Lexer lexer(text);
  LAHAR_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Run());
  Parser parser(std::move(tokens), interner);
  return parser.ParseTop();
}

}  // namespace lahar
