// Event query AST (Section 2.2, Definition 2.1).
//
// A query is built from base queries (a subgoal with an optional predicate,
// or a parameterized Kleene plus) combined left-associatively by sequencing
// and wrapped in selections:
//
//   q ::= bq | q ; bq | sigma_theta(q)
//   bq ::= sigma_theta(g) | (sigma_theta(g))+ <V, theta2>
#ifndef LAHAR_QUERY_AST_H_
#define LAHAR_QUERY_AST_H_

#include <memory>
#include <set>
#include <vector>

#include "query/condition.h"

namespace lahar {

/// \brief A subgoal: a relational symbol with terms (no timestamp).
///
/// E.g. At(x, 'Room201'). The first k terms sit in key positions, where k is
/// the schema's key arity (checked against the database at analysis time).
struct Subgoal {
  SymbolId type = 0;
  std::vector<Term> terms;

  /// The variables occurring in the subgoal (var(g)).
  std::set<SymbolId> Vars() const;
};

/// \brief A base query: sigma_theta(g) or (sigma_theta(g))+<V, theta2>.
struct BaseQuery {
  Subgoal goal;
  /// theta: part of the subgoal match itself (folded into the structural
  /// match, like writing the constant directly; see Ex. 3.11 q_f).
  Condition pred;

  bool is_kleene = false;
  /// V: variables shared (and exported) across Kleene unfoldings.
  std::vector<SymbolId> kleene_vars;
  /// theta2: applied to each unfolding (the a-predicate of the translation).
  Condition kleene_pred;

  /// Free variables: var(g) for a plain subgoal; V for a Kleene plus.
  std::set<SymbolId> FreeVars() const;
};

/// \brief An event query: base / sequence / selection tree.
///
/// Sequencing is strictly left-associative: the right operand of a sequence
/// is always a base query (enforced by construction).
struct Query {
  enum class Kind { kBase, kSequence, kSelection };

  Kind kind = Kind::kBase;
  BaseQuery base;                       ///< kBase; or the rhs of kSequence
  std::shared_ptr<const Query> child;   ///< lhs of kSequence / kSelection
  Condition selection;                  ///< theta of kSelection
};

using QueryPtr = std::shared_ptr<const Query>;

/// Constructs a base-query leaf.
QueryPtr MakeBase(BaseQuery base);
/// Constructs lhs ; rhs.
QueryPtr MakeSequence(QueryPtr lhs, BaseQuery rhs);
/// Constructs sigma_theta(child).
QueryPtr MakeSelection(QueryPtr child, Condition theta);

/// Free variables of a query (selection does not bind; sequence unions).
std::set<SymbolId> FreeVars(const Query& q);

/// All variables occurring in subgoals (including non-exported Kleene vars).
std::set<SymbolId> AllVars(const Query& q);

/// The base queries of q in left-to-right order (goal(q)).
std::vector<const BaseQuery*> Goals(const Query& q);

/// Variables that occur in more than one base query, or are shared by a
/// Kleene plus (the paper's "shared" variables).
std::set<SymbolId> SharedVars(const Query& q);

/// Structural well-formedness against a database:
///  - every subgoal's type has a declared schema with matching arity,
///  - base-query predicates and Kleene predicates use only var(g),
///  - kleene_vars are a subset of var(g),
///  - a Kleene subgoal's non-V variables occur in no other base query
///    (they are renamed fresh per unfolding, so cross-references would be
///    silently meaningless otherwise),
///  - selection conditions use only free variables of their child.
Status ValidateQuery(const Query& q, const EventDatabase& db);

/// Substitutes constants for variables throughout the query (q{x -> d}).
QueryPtr SubstituteQuery(const Query& q, const Binding& subst);

}  // namespace lahar

#endif  // LAHAR_QUERY_AST_H_
