// Text syntax for the event query language.
//
// Grammar (a strict subset of Cayuga, Section 2.2):
//
//   query    := seq [ 'WHERE' cond ]
//   seq      := unit ( ';' base )*
//   unit     := base | '(' query ')'
//   base     := IDENT '(' terms [ ':' cond ] ')' [ kleene ]
//   kleene   := '+' '{' [ vars ] [ ':' cond ] '}'
//   cond     := atom ( 'AND' atom )*
//   atom     := [ 'NOT' ] IDENT '(' terms ')'     (relation membership)
//             | term cmp term
//   cmp      := '=' | '!=' | '<' | '<=' | '>' | '>='
//   term     := IDENT (a variable) | 'quoted' (a symbol) | integer
//
// A condition after the ':' inside a subgoal is the base-query predicate
// theta (part of the structural match, Ex. 3.11 q_f); a WHERE applies a
// selection around the query parsed so far (the filtering semantics of q_s).
// Sequencing is left-associative; parenthesized subqueries may only appear
// as the first unit, matching the paper's restriction.
//
// Examples:
//   At('Joe','220'); At('Joe', l : CRoom(l)); At('Joe','220')
//   (At(p,l1); At(p,l2)+{p : Hall(l2)}; At(p,l3))
//       WHERE Person(p) AND Office(p,l1) AND CRoom(l3)
#ifndef LAHAR_QUERY_PARSER_H_
#define LAHAR_QUERY_PARSER_H_

#include <string_view>

#include "query/ast.h"

namespace lahar {

/// Parses `text` into a query AST, interning names through `interner`.
/// Does not consult schemas; call ValidateQuery against a database next.
Result<QueryPtr> ParseQuery(std::string_view text, Interner* interner);

}  // namespace lahar

#endif  // LAHAR_QUERY_PARSER_H_
