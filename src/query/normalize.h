// Selection push-down and normalization (Section 3.1.1).
//
// Rewrites a query into a flat list of subgoals, each carrying two local
// predicates:
//   * match_pred — part of the structural match: an event produces the m_i
//     symbol only if it unifies with the subgoal AND satisfies match_pred
//     (this is the base-query predicate theta, e.g. writing R(b)).
//   * accept_pred — the sequence-level selection sigma_i localized to this
//     subgoal: an event additionally produces a_i only if it satisfies it.
//     Events that match structurally but fail accept_pred *block* (Ex. 3.11).
//
// Conjuncts whose variables span multiple subgoals cannot be localized and
// are collected in `residual`; a query with residual conjuncts has non-local
// predicates and is provably #P-hard (Prop. 3.18), handled only by sampling.
#ifndef LAHAR_QUERY_NORMALIZE_H_
#define LAHAR_QUERY_NORMALIZE_H_

#include <vector>

#include "query/ast.h"

namespace lahar {

/// \brief One subgoal of a normalized query with its localized predicates.
struct NormalizedSubgoal {
  Subgoal goal;
  Condition match_pred;
  Condition accept_pred;
  bool is_kleene = false;
  std::vector<SymbolId> kleene_vars;

  /// var(g): variables of the subgoal.
  std::set<SymbolId> Vars() const { return goal.Vars(); }
};

/// \brief A query in normalized (flat, selection-pushed) form.
struct NormalizedQuery {
  std::vector<NormalizedSubgoal> subgoals;
  /// Conjuncts that could not be localized to a single subgoal.
  Condition residual;

  /// True iff every predicate is local (residual is empty).
  bool AllPredicatesLocal() const { return residual.IsTrue(); }

  /// Variables occurring in more than one subgoal or shared by a Kleene
  /// plus (same notion as SharedVars on the AST).
  std::set<SymbolId> SharedVars() const;

  /// Substitutes constants for variables (grounding shared variables).
  NormalizedQuery Substitute(const Binding& subst) const;
};

/// Normalizes a query. The query should already pass ValidateQuery.
Result<NormalizedQuery> Normalize(const Query& q);

}  // namespace lahar

#endif  // LAHAR_QUERY_NORMALIZE_H_
