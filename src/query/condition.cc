#include "query/condition.h"

namespace lahar {
namespace {

Term SubstituteTerm(const Term& t, const Binding& subst) {
  if (!t.is_var) return t;
  auto it = subst.find(t.var);
  return it == subst.end() ? t : Term::Const(it->second);
}

Result<bool> EvalCompare(const CompareAtom& a, const Binding& binding) {
  Value lhs = Resolve(a.lhs, binding);
  Value rhs = Resolve(a.rhs, binding);
  if ((a.lhs.is_var && lhs.is_null()) || (a.rhs.is_var && rhs.is_null())) {
    return Status::InvalidArgument("comparison over unbound variable");
  }
  switch (a.op) {
    case CmpOp::kEq: return lhs == rhs;
    case CmpOp::kNe: return lhs != rhs;
    case CmpOp::kLt: return lhs < rhs;
    case CmpOp::kLe: return !(rhs < lhs);
    case CmpOp::kGt: return rhs < lhs;
    case CmpOp::kGe: return !(lhs < rhs);
  }
  return Status::Internal("bad comparison op");
}

Result<bool> EvalRel(const RelAtom& a, const Binding& binding,
                     const EventDatabase& db) {
  const Relation* rel = db.FindRelation(a.rel);
  if (rel == nullptr) {
    return Status::NotFound("undeclared relation '" +
                            db.interner().Name(a.rel) + "'");
  }
  if (rel->arity() != a.args.size()) {
    return Status::InvalidArgument("relation arity mismatch for '" +
                                   db.interner().Name(a.rel) + "'");
  }
  ValueTuple tuple;
  tuple.reserve(a.args.size());
  for (const Term& t : a.args) {
    Value v = Resolve(t, binding);
    if (t.is_var && v.is_null()) {
      return Status::InvalidArgument("relation atom over unbound variable");
    }
    tuple.push_back(v);
  }
  bool in = rel->Contains(tuple);
  return a.negated ? !in : in;
}

}  // namespace

Value Resolve(const Term& t, const Binding& b) {
  if (!t.is_var) return t.constant;
  auto it = b.find(t.var);
  return it == b.end() ? Value() : it->second;
}

std::set<SymbolId> ConditionClause::Vars() const {
  std::set<SymbolId> vars;
  for (const auto& atom : atoms) {
    auto v = AtomVars(atom);
    vars.insert(v.begin(), v.end());
  }
  return vars;
}

Result<bool> ConditionClause::Eval(const Binding& binding,
                                   const EventDatabase& db) const {
  for (const auto& atom : atoms) {
    Result<bool> r =
        std::holds_alternative<CompareAtom>(atom)
            ? EvalCompare(std::get<CompareAtom>(atom), binding)
            : EvalRel(std::get<RelAtom>(atom), binding, db);
    if (!r.ok()) return r;
    if (*r) return true;
  }
  return false;
}

ConditionClause ConditionClause::Substitute(const Binding& subst) const {
  ConditionClause out;
  for (const auto& atom : atoms) {
    if (std::holds_alternative<CompareAtom>(atom)) {
      CompareAtom a = std::get<CompareAtom>(atom);
      a.lhs = SubstituteTerm(a.lhs, subst);
      a.rhs = SubstituteTerm(a.rhs, subst);
      out.atoms.emplace_back(a);
    } else {
      RelAtom a = std::get<RelAtom>(atom);
      for (Term& t : a.args) t = SubstituteTerm(t, subst);
      out.atoms.emplace_back(std::move(a));
    }
  }
  return out;
}

void Condition::AddAtom(ConditionAtom atom) {
  ConditionClause clause;
  clause.atoms.push_back(std::move(atom));
  clauses_.push_back(std::move(clause));
}

Condition Condition::And(const Condition& other) const {
  Condition out = *this;
  for (const auto& c : other.clauses_) out.clauses_.push_back(c);
  return out;
}

std::set<SymbolId> Condition::Vars() const {
  std::set<SymbolId> vars;
  for (const auto& clause : clauses_) {
    auto v = clause.Vars();
    vars.insert(v.begin(), v.end());
  }
  return vars;
}

Result<bool> Condition::Eval(const Binding& binding,
                             const EventDatabase& db) const {
  for (const auto& clause : clauses_) {
    LAHAR_ASSIGN_OR_RETURN(bool ok, clause.Eval(binding, db));
    if (!ok) return false;
  }
  return true;
}

Condition Condition::Substitute(const Binding& subst) const {
  Condition out;
  for (const auto& clause : clauses_) {
    out.AddClause(clause.Substitute(subst));
  }
  return out;
}

std::set<SymbolId> AtomVars(const ConditionAtom& atom) {
  std::set<SymbolId> vars;
  if (std::holds_alternative<CompareAtom>(atom)) {
    const auto& a = std::get<CompareAtom>(atom);
    if (a.lhs.is_var) vars.insert(a.lhs.var);
    if (a.rhs.is_var) vars.insert(a.rhs.var);
  } else {
    for (const Term& t : std::get<RelAtom>(atom).args) {
      if (t.is_var) vars.insert(t.var);
    }
  }
  return vars;
}

}  // namespace lahar
