// Pretty-printer for queries and conditions; inverse of the parser (round
// trips up to whitespace).
#ifndef LAHAR_QUERY_PRINTER_H_
#define LAHAR_QUERY_PRINTER_H_

#include <string>

#include "query/ast.h"

namespace lahar {

/// Renders a query in the parser's syntax.
std::string ToString(const Query& q, const Interner& interner);

/// Renders a condition.
std::string ToString(const Condition& cond, const Interner& interner);

/// Renders a term.
std::string ToString(const Term& t, const Interner& interner);

/// Renders a subgoal (without predicates).
std::string ToString(const Subgoal& g, const Interner& interner);

}  // namespace lahar

#endif  // LAHAR_QUERY_PRINTER_H_
