#include "query/ast.h"

#include <algorithm>
#include <map>

namespace lahar {

std::set<SymbolId> Subgoal::Vars() const {
  std::set<SymbolId> vars;
  for (const Term& t : terms) {
    if (t.is_var) vars.insert(t.var);
  }
  return vars;
}

std::set<SymbolId> BaseQuery::FreeVars() const {
  if (!is_kleene) return goal.Vars();
  return std::set<SymbolId>(kleene_vars.begin(), kleene_vars.end());
}

QueryPtr MakeBase(BaseQuery base) {
  auto q = std::make_shared<Query>();
  q->kind = Query::Kind::kBase;
  q->base = std::move(base);
  return q;
}

QueryPtr MakeSequence(QueryPtr lhs, BaseQuery rhs) {
  auto q = std::make_shared<Query>();
  q->kind = Query::Kind::kSequence;
  q->child = std::move(lhs);
  q->base = std::move(rhs);
  return q;
}

QueryPtr MakeSelection(QueryPtr child, Condition theta) {
  auto q = std::make_shared<Query>();
  q->kind = Query::Kind::kSelection;
  q->child = std::move(child);
  q->selection = std::move(theta);
  return q;
}

std::set<SymbolId> FreeVars(const Query& q) {
  switch (q.kind) {
    case Query::Kind::kBase:
      return q.base.FreeVars();
    case Query::Kind::kSelection:
      return FreeVars(*q.child);
    case Query::Kind::kSequence: {
      std::set<SymbolId> vars = FreeVars(*q.child);
      auto rhs = q.base.FreeVars();
      vars.insert(rhs.begin(), rhs.end());
      return vars;
    }
  }
  return {};
}

std::set<SymbolId> AllVars(const Query& q) {
  std::set<SymbolId> vars;
  for (const BaseQuery* bq : Goals(q)) {
    auto v = bq->goal.Vars();
    vars.insert(v.begin(), v.end());
  }
  return vars;
}

namespace {

void CollectGoals(const Query& q, std::vector<const BaseQuery*>* out) {
  switch (q.kind) {
    case Query::Kind::kBase:
      out->push_back(&q.base);
      return;
    case Query::Kind::kSelection:
      CollectGoals(*q.child, out);
      return;
    case Query::Kind::kSequence:
      CollectGoals(*q.child, out);
      out->push_back(&q.base);
      return;
  }
}

}  // namespace

std::vector<const BaseQuery*> Goals(const Query& q) {
  std::vector<const BaseQuery*> out;
  CollectGoals(q, &out);
  return out;
}

std::set<SymbolId> SharedVars(const Query& q) {
  std::map<SymbolId, int> counts;
  std::set<SymbolId> shared;
  for (const BaseQuery* bq : Goals(q)) {
    for (SymbolId v : bq->goal.Vars()) counts[v] += 1;
    if (bq->is_kleene) {
      // Kleene-shared variables count as shared regardless of other uses.
      for (SymbolId v : bq->kleene_vars) shared.insert(v);
    }
  }
  for (const auto& [v, n] : counts) {
    if (n > 1) shared.insert(v);
  }
  return shared;
}

namespace {

Status ValidateBase(const BaseQuery& bq, const EventDatabase& db) {
  const EventSchema* schema = db.FindSchema(bq.goal.type);
  if (schema == nullptr) {
    return Status::NotFound("no schema for event type '" +
                            db.interner().Name(bq.goal.type) + "'");
  }
  if (bq.goal.terms.size() != schema->arity()) {
    return Status::InvalidArgument(
        "subgoal '" + db.interner().Name(bq.goal.type) + "' has " +
        std::to_string(bq.goal.terms.size()) + " terms, schema expects " +
        std::to_string(schema->arity()));
  }
  std::set<SymbolId> gvars = bq.goal.Vars();
  for (SymbolId v : bq.pred.Vars()) {
    if (!gvars.count(v)) {
      return Status::InvalidArgument(
          "base-query predicate uses variable not in its subgoal");
    }
  }
  if (bq.is_kleene) {
    for (SymbolId v : bq.kleene_vars) {
      if (!gvars.count(v)) {
        return Status::InvalidArgument(
            "Kleene shared variable not in the subgoal");
      }
    }
    for (SymbolId v : bq.kleene_pred.Vars()) {
      if (!gvars.count(v)) {
        return Status::InvalidArgument(
            "Kleene predicate uses variable not in its subgoal");
      }
    }
  }
  return Status::OK();
}

Status ValidateNode(const Query& q, const EventDatabase& db) {
  switch (q.kind) {
    case Query::Kind::kBase:
      return ValidateBase(q.base, db);
    case Query::Kind::kSequence:
      LAHAR_RETURN_NOT_OK(ValidateNode(*q.child, db));
      return ValidateBase(q.base, db);
    case Query::Kind::kSelection: {
      LAHAR_RETURN_NOT_OK(ValidateNode(*q.child, db));
      std::set<SymbolId> free = FreeVars(*q.child);
      for (SymbolId v : q.selection.Vars()) {
        if (!free.count(v)) {
          return Status::InvalidArgument(
              "selection uses variable '" + db.interner().Name(v) +
              "' that is not free in its subquery");
        }
      }
      return Status::OK();
    }
  }
  return Status::Internal("bad query node");
}

}  // namespace

Status ValidateQuery(const Query& q, const EventDatabase& db) {
  LAHAR_RETURN_NOT_OK(ValidateNode(q, db));
  // A Kleene subgoal's non-exported variables must be private to it.
  std::vector<const BaseQuery*> goals = Goals(q);
  for (size_t i = 0; i < goals.size(); ++i) {
    if (!goals[i]->is_kleene) continue;
    std::set<SymbolId> exported(goals[i]->kleene_vars.begin(),
                                goals[i]->kleene_vars.end());
    for (SymbolId v : goals[i]->goal.Vars()) {
      if (exported.count(v)) continue;
      for (size_t j = 0; j < goals.size(); ++j) {
        if (j == i) continue;
        if (goals[j]->goal.Vars().count(v)) {
          return Status::InvalidArgument(
              "non-shared Kleene variable '" + db.interner().Name(v) +
              "' also occurs in another subgoal; it is renamed fresh per "
              "unfolding, so the cross-reference cannot join");
        }
      }
    }
  }
  return Status::OK();
}

namespace {

Subgoal SubstituteSubgoal(const Subgoal& g, const Binding& subst) {
  Subgoal out = g;
  for (Term& t : out.terms) {
    if (!t.is_var) continue;
    auto it = subst.find(t.var);
    if (it != subst.end()) t = Term::Const(it->second);
  }
  return out;
}

BaseQuery SubstituteBase(const BaseQuery& bq, const Binding& subst) {
  BaseQuery out = bq;
  out.goal = SubstituteSubgoal(bq.goal, subst);
  out.pred = bq.pred.Substitute(subst);
  if (bq.is_kleene) {
    out.kleene_pred = bq.kleene_pred.Substitute(subst);
    out.kleene_vars.clear();
    for (SymbolId v : bq.kleene_vars) {
      if (!subst.count(v)) out.kleene_vars.push_back(v);
    }
  }
  return out;
}

}  // namespace

QueryPtr SubstituteQuery(const Query& q, const Binding& subst) {
  switch (q.kind) {
    case Query::Kind::kBase:
      return MakeBase(SubstituteBase(q.base, subst));
    case Query::Kind::kSequence:
      return MakeSequence(SubstituteQuery(*q.child, subst),
                          SubstituteBase(q.base, subst));
    case Query::Kind::kSelection:
      return MakeSelection(SubstituteQuery(*q.child, subst),
                           q.selection.Substitute(subst));
  }
  return nullptr;
}

}  // namespace lahar
