// StreamRuntime::Checkpoint / Restore. Kept out of executor.cc so the tick
// loop stays focused; format documented in runtime/checkpoint.h.
#include <string>
#include <vector>

#include "runtime/checkpoint.h"
#include "runtime/executor.h"

namespace lahar {

Result<std::string> StreamRuntime::Checkpoint() const {
  // The state mutex serializes against the coordinator: a checkpoint taken
  // while running lands between windows, seeing a database and session pool
  // that are exactly at tick_.
  std::lock_guard<std::mutex> lock(state_mu_);
  // A checkpoint taken from *inside* the tick callback is special under
  // windowed execution: the callback for tick t fires after t's whole
  // window ran, so the sessions may already sit several ticks past t. The
  // snapshot must still be "as of t" (that is the contract the caller's
  // trigger logic sees), so it records tick = t and skips direct session
  // state — restore rebuilds every session by replaying the archived
  // prefix to t, which is bit-identical to having saved at t. The archive
  // itself is saved in full, so the restored runtime re-executes the ticks
  // past t from its own database. Only the coordinator thread can be
  // inside a callback, which is why the thread-id check gates the
  // (unsynchronized, coordinator-only) callback_tick_ read.
  const bool mid_window = coordinator_.joinable() &&
                          std::this_thread::get_id() ==
                              coordinator_.get_id() &&
                          callback_tick_ != tick_;
  const Timestamp snap_tick = mid_window ? callback_tick_ : tick_;
  serial::Writer w;
  w.U32(kCheckpointMagic);
  w.U32(kCheckpointVersion);
  LAHAR_RETURN_NOT_OK(db_->SaveTo(&w));
  w.U32(snap_tick);
  std::vector<StreamId> ended;
  for (StreamId id = 0; id < db_->num_streams(); ++id) {
    if (watermark_.ended(id)) ended.push_back(id);
  }
  w.U64(ended.size());
  for (StreamId id : ended) w.U32(id);
  w.U64(registry_.size());
  for (const auto& q : registry_.queries()) {
    w.U64(q->id);
    w.Str(q->text);
    if (!mid_window && q->session->SupportsStateRestore()) {
      serial::Writer state;
      LAHAR_RETURN_NOT_OK(q->session->SaveState(&state));
      w.U8(1);
      w.Str(state.str());
    } else {
      // Sampling sessions rebuild by replaying the database prefix on
      // restore — the same bit-identical catch-up path hot registration
      // uses (the sampler's determinism comes from its seed). Streaming
      // and safe sessions serialize their state directly above.
      w.U8(0);
    }
  }
  return w.str();
}

Status StreamRuntime::Restore(std::string_view snapshot) {
  if (started_.load()) {
    return Status::InvalidArgument(
        "Restore requires a runtime that has not been started");
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  if (registry_.size() != 0) {
    return Status::InvalidArgument(
        "Restore requires an empty registry (queries come from the "
        "snapshot)");
  }
  serial::Reader r(snapshot);
  uint32_t magic, version;
  LAHAR_RETURN_NOT_OK(r.U32(&magic));
  if (magic != kCheckpointMagic) {
    return Status::InvalidArgument("not a lahar checkpoint (bad magic)");
  }
  LAHAR_RETURN_NOT_OK(r.U32(&version));
  if (version != kCheckpointVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kCheckpointVersion) +
        ")");
  }
  LAHAR_ASSIGN_OR_RETURN(std::unique_ptr<EventDatabase> loaded,
                         EventDatabase::LoadFrom(&r));
  uint32_t tick;
  LAHAR_RETURN_NOT_OK(r.U32(&tick));
  uint64_t num_ended;
  LAHAR_RETURN_NOT_OK(r.U64(&num_ended));
  std::vector<StreamId> ended(num_ended);
  for (uint64_t i = 0; i < num_ended; ++i) {
    LAHAR_RETURN_NOT_OK(r.U32(&ended[i]));
  }

  // Swap the snapshot's content into the caller's database in place: the
  // registry and every session hold the db_ pointer, so the object must
  // stay put.
  *db_ = std::move(*loaded);
  tick_ = tick;
  watermark_ = Watermark();
  for (StreamId id = 0; id < db_->num_streams(); ++id) {
    watermark_.Track(id, db_->stream(id).horizon());
  }
  for (StreamId id : ended) watermark_.MarkEnded(id);
  // Buffered updates were never part of the checkpoint; producers resend
  // everything newer than the checkpoint tick.
  reorder_.Clear();

  uint64_t num_queries;
  LAHAR_RETURN_NOT_OK(r.U64(&num_queries));
  for (uint64_t i = 0; i < num_queries; ++i) {
    uint64_t id;
    std::string text;
    uint8_t has_state;
    LAHAR_RETURN_NOT_OK(r.U64(&id));
    LAHAR_RETURN_NOT_OK(r.Str(&text));
    LAHAR_RETURN_NOT_OK(r.U8(&has_state));
    if (has_state != 0) {
      std::string blob;
      LAHAR_RETURN_NOT_OK(r.Str(&blob));
      serial::Reader state(blob);
      LAHAR_RETURN_NOT_OK(registry_.RestoreQuery(id, text, tick_, &state));
    } else {
      LAHAR_RETURN_NOT_OK(registry_.RestoreQuery(id, text, tick_, nullptr));
    }
  }

  {
    std::lock_guard<std::mutex> tick_lock(tick_mu_);
    published_tick_ = tick_;
    latest_.reset();
  }
  return Status::OK();
}

}  // namespace lahar
