#include "runtime/ingest.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>

namespace lahar {

bool IngestQueue::TryPush(TickBatch batch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      ++closed_rejected_;
      return false;
    }
    if (batches_.size() >= capacity_) {
      ++dropped_;
      return false;
    }
    batches_.push_back(std::move(batch));
  }
  not_empty_.notify_one();
  return true;
}

Status IngestQueue::Push(TickBatch batch, std::chrono::milliseconds deadline) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_full_.wait_for(lock, deadline, [&] {
          return closed_ || batches_.size() < capacity_;
        })) {
      return Status::OutOfRange("ingest queue full past deadline (" +
                                std::to_string(deadline.count()) + "ms)");
    }
    if (closed_) return Status::InvalidArgument("ingest queue closed");
    batches_.push_back(std::move(batch));
  }
  not_empty_.notify_one();
  return Status::OK();
}

std::optional<TickBatch> IngestQueue::Pop() {
  std::optional<TickBatch> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (batches_.empty()) return std::nullopt;
    out = std::move(batches_.front());
    batches_.pop_front();
  }
  not_full_.notify_one();
  return out;
}

std::optional<TickBatch> IngestQueue::PopWait(
    std::chrono::milliseconds timeout) {
  std::optional<TickBatch> out;
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout,
                        [&] { return closed_ || !batches_.empty(); });
    if (batches_.empty()) return std::nullopt;
    out = std::move(batches_.front());
    batches_.pop_front();
  }
  not_full_.notify_one();
  return out;
}

size_t IngestQueue::DrainWait(std::vector<TickBatch>* out) {
  size_t drained = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] {
      return closed_ || wake_pending_ || !batches_.empty();
    });
    wake_pending_ = false;
    drained = batches_.size();
    while (!batches_.empty()) {
      out->push_back(std::move(batches_.front()));
      batches_.pop_front();
    }
  }
  // Every slot freed at once: wake all producers parked in Push.
  if (drained > 0) not_full_.notify_all();
  return drained;
}

void IngestQueue::Wake() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    wake_pending_ = true;
  }
  not_empty_.notify_all();
}

void IngestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool IngestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t IngestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_.size();
}

uint64_t IngestQueue::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

uint64_t IngestQueue::closed_rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_rejected_;
}

void Watermark::Track(StreamId id, Timestamp covered) {
  if (id >= covered_.size()) {
    covered_.resize(id + 1, 0);
    tracked_.resize(id + 1, false);
  }
  if (!tracked_[id]) {
    tracked_[id] = true;
    ++num_tracked_;
  }
  covered_[id] = covered;
}

void Watermark::Advance(StreamId id, Timestamp t) {
  if (id >= covered_.size() || !tracked_[id]) return;
  if (covered_[id] != kEnded) covered_[id] = std::max(covered_[id], t);
}

void Watermark::MarkEnded(StreamId id) {
  if (id >= covered_.size() || !tracked_[id]) return;
  covered_[id] = kEnded;
}

Timestamp Watermark::Safe() const {
  Timestamp safe = kEnded;
  for (size_t i = 0; i < covered_.size(); ++i) {
    if (tracked_[i] && covered_[i] != kEnded) {
      safe = std::min(safe, covered_[i]);
    }
  }
  return safe;
}

bool Watermark::ended(StreamId id) const {
  return id < covered_.size() && tracked_[id] && covered_[id] == kEnded;
}

namespace {

// Mirrors the checks Stream::Append{Marginal,Initial} run after resizing to
// the domain, so a validated update cannot fail at apply time.
Status CheckUpdateDistribution(const Stream& s, std::vector<double> dist) {
  dist.resize(s.domain_size(), 0.0);
  double total = 0;
  for (double p : dist) {
    if (p < -1e-9 || p > 1 + 1e-9) {
      return Status::InvalidArgument("probability out of [0,1]");
    }
    total += p;
  }
  if (std::fabs(total - 1.0) > 1e-6) {
    return Status::InvalidArgument("distribution sums to " +
                                   std::to_string(total));
  }
  return Status::OK();
}

// Mirrors Stream::AppendMarkovStep's CPT checks.
Status CheckUpdateCpt(const Stream& s, const Matrix& cpt) {
  if (cpt.rows() != s.domain_size() || cpt.cols() != s.domain_size()) {
    return Status::InvalidArgument("CPT must be D x D over the stream domain");
  }
  for (size_t r = 0; r < cpt.rows(); ++r) {
    double total = 0;
    for (size_t c = 0; c < cpt.cols(); ++c) total += cpt.At(r, c);
    if (std::fabs(total - 1.0) > 1e-6) {
      return Status::InvalidArgument("CPT row " + std::to_string(r) +
                                     " sums to " + std::to_string(total));
    }
  }
  return Status::OK();
}

// Full validation for one update at tick `t`, with no mutation. Every check
// the apply path would perform runs here first, so the apply loop below
// cannot fail mid-batch.
Status ValidateUpdate(const EventDatabase& db, Timestamp t,
                      const StreamUpdate& u) {
  if (u.stream >= db.num_streams()) {
    return Status::OutOfRange("batch references unknown stream " +
                              std::to_string(u.stream));
  }
  const Stream& s = db.stream(u.stream);
  if (t != s.horizon() + 1) {
    return Status::InvalidArgument(
        "batch for t=" + std::to_string(t) + " but stream " +
        std::to_string(u.stream) + " is at horizon " +
        std::to_string(s.horizon()) + " (ticks must arrive in order)");
  }
  if (u.cpt.has_value()) {
    if (!s.markovian()) {
      return Status::InvalidArgument("CPT update for independent stream " +
                                     std::to_string(u.stream));
    }
    if (s.horizon() < 1 || s.MarginalAt(s.horizon()).empty()) {
      return Status::InvalidArgument(
          "CPT update for Markovian stream " + std::to_string(u.stream) +
          " before its initial marginal");
    }
    return CheckUpdateCpt(s, *u.cpt);
  }
  if (s.markovian() && s.horizon() != 0) {
    return Status::InvalidArgument(
        "marginal update for Markovian stream " + std::to_string(u.stream) +
        " past t=1 (expected a CPT)");
  }
  return CheckUpdateDistribution(s, u.marginal);
}

}  // namespace

Status ApplyBatch(EventDatabase* db, const TickBatch& batch,
                  Watermark* watermark) {
  // Phase 1: validate everything. No mutation happens until every update
  // (including duplicates within the batch) has passed.
  std::unordered_set<StreamId> seen;
  seen.reserve(batch.updates.size());
  for (const StreamUpdate& u : batch.updates) {
    if (!seen.insert(u.stream).second) {
      return Status::InvalidArgument("batch contains stream " +
                                     std::to_string(u.stream) + " twice");
    }
    LAHAR_RETURN_NOT_OK(ValidateUpdate(*db, batch.t, u));
  }
  // Phase 2: apply. Validation mirrored every apply-side check, so a
  // failure here is a programming error, not a data error — surface it as
  // Internal but note the transaction guarantee no longer holds.
  for (const StreamUpdate& u : batch.updates) {
    Status st;
    if (u.cpt.has_value()) {
      st = db->AppendMarkovStep(u.stream, *u.cpt);
    } else if (db->stream(u.stream).markovian()) {
      st = db->AppendInitial(u.stream, u.marginal);
    } else {
      st = db->AppendMarginal(u.stream, u.marginal);
    }
    if (!st.ok()) {
      return Status::Internal("validated update failed to apply: " +
                              st.ToString());
    }
    if (watermark != nullptr) watermark->Advance(u.stream, batch.t);
  }
  return Status::OK();
}

Status ReorderBuffer::Offer(const EventDatabase& db, TickBatch batch,
                            std::vector<StreamUpdate>* due) {
  // Classification pass — nothing is consumed until every update has a
  // home, so a rejected batch leaves the buffer exactly as it was.
  enum class Slot { kLate, kDue, kBuffer, kMergedAway };
  std::vector<Slot> slots(batch.updates.size());
  for (size_t i = 0; i < batch.updates.size(); ++i) {
    const StreamUpdate& u = batch.updates[i];
    if (u.stream >= db.num_streams()) {
      return Status::OutOfRange("batch references unknown stream " +
                                std::to_string(u.stream));
    }
    const Timestamp horizon = db.stream(u.stream).horizon();
    if (batch.t <= horizon) {
      slots[i] = Slot::kLate;
    } else if (batch.t == horizon + 1) {
      slots[i] = Slot::kDue;
    } else if (batch.t <= horizon + 1 + window_) {
      slots[i] = buffered_.count({batch.t, u.stream}) != 0
                     ? Slot::kMergedAway
                     : Slot::kBuffer;
    } else {
      return Status::OutOfRange(
          "batch for t=" + std::to_string(batch.t) + " is beyond the reorder "
          "window (stream " + std::to_string(u.stream) + " at horizon " +
          std::to_string(horizon) + ", window " + std::to_string(window_) +
          "); resend once earlier ticks have been applied");
    }
  }
  for (size_t i = 0; i < batch.updates.size(); ++i) {
    StreamUpdate& u = batch.updates[i];
    switch (slots[i]) {
      case Slot::kLate:
        ++late_dropped_;
        break;
      case Slot::kDue:
        due->push_back(std::move(u));
        break;
      case Slot::kBuffer:
        buffered_.emplace(std::make_pair(batch.t, u.stream), std::move(u));
        break;
      case Slot::kMergedAway:
        ++merged_;
        break;
    }
  }
  return Status::OK();
}

bool ReorderBuffer::PopDue(const EventDatabase& db, TickBatch* out) {
  // buffered_ is ordered by (tick, stream), so the first due entry found
  // has the smallest due tick; collect its whole (tick, per-stream-due)
  // group and stop.
  out->updates.clear();
  Timestamp due_tick = 0;
  for (auto it = buffered_.begin(); it != buffered_.end();) {
    const Timestamp t = it->first.first;
    const StreamId id = it->first.second;
    if (!out->updates.empty() && t != due_tick) break;
    if (id < db.num_streams() && t == db.stream(id).horizon() + 1) {
      if (out->updates.empty()) due_tick = t;
      out->updates.push_back(std::move(it->second));
      it = buffered_.erase(it);
    } else {
      ++it;
    }
  }
  out->t = due_tick;
  return !out->updates.empty();
}

}  // namespace lahar
