#include "runtime/ingest.h"

#include <algorithm>
#include <string>

namespace lahar {

bool IngestQueue::TryPush(TickBatch batch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || batches_.size() >= capacity_) {
      ++dropped_;
      return false;
    }
    batches_.push_back(std::move(batch));
  }
  not_empty_.notify_one();
  return true;
}

Status IngestQueue::Push(TickBatch batch, std::chrono::milliseconds deadline) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_full_.wait_for(lock, deadline, [&] {
          return closed_ || batches_.size() < capacity_;
        })) {
      return Status::OutOfRange("ingest queue full past deadline (" +
                                std::to_string(deadline.count()) + "ms)");
    }
    if (closed_) return Status::InvalidArgument("ingest queue closed");
    batches_.push_back(std::move(batch));
  }
  not_empty_.notify_one();
  return Status::OK();
}

std::optional<TickBatch> IngestQueue::Pop() {
  std::optional<TickBatch> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (batches_.empty()) return std::nullopt;
    out = std::move(batches_.front());
    batches_.pop_front();
  }
  not_full_.notify_one();
  return out;
}

std::optional<TickBatch> IngestQueue::PopWait(
    std::chrono::milliseconds timeout) {
  std::optional<TickBatch> out;
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout,
                        [&] { return closed_ || !batches_.empty(); });
    if (batches_.empty()) return std::nullopt;
    out = std::move(batches_.front());
    batches_.pop_front();
  }
  not_full_.notify_one();
  return out;
}

void IngestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool IngestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t IngestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_.size();
}

uint64_t IngestQueue::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Watermark::Track(StreamId id, Timestamp covered) {
  if (id >= covered_.size()) {
    covered_.resize(id + 1, 0);
    tracked_.resize(id + 1, false);
  }
  if (!tracked_[id]) {
    tracked_[id] = true;
    ++num_tracked_;
  }
  covered_[id] = covered;
}

void Watermark::Advance(StreamId id, Timestamp t) {
  if (id >= covered_.size() || !tracked_[id]) return;
  if (covered_[id] != kEnded) covered_[id] = std::max(covered_[id], t);
}

void Watermark::MarkEnded(StreamId id) {
  if (id >= covered_.size() || !tracked_[id]) return;
  covered_[id] = kEnded;
}

Timestamp Watermark::Safe() const {
  Timestamp safe = kEnded;
  for (size_t i = 0; i < covered_.size(); ++i) {
    if (tracked_[i] && covered_[i] != kEnded) {
      safe = std::min(safe, covered_[i]);
    }
  }
  return safe;
}

Status ApplyBatch(EventDatabase* db, const TickBatch& batch,
                  Watermark* watermark) {
  for (const StreamUpdate& u : batch.updates) {
    if (u.stream >= db->num_streams()) {
      return Status::OutOfRange("batch references unknown stream " +
                                std::to_string(u.stream));
    }
    const Stream& s = db->stream(u.stream);
    if (batch.t != s.horizon() + 1) {
      return Status::InvalidArgument(
          "batch for t=" + std::to_string(batch.t) + " but stream " +
          std::to_string(u.stream) + " is at horizon " +
          std::to_string(s.horizon()) + " (ticks must arrive in order)");
    }
    if (u.cpt.has_value()) {
      LAHAR_RETURN_NOT_OK(db->AppendMarkovStep(u.stream, *u.cpt));
    } else if (s.markovian()) {
      LAHAR_RETURN_NOT_OK(db->AppendInitial(u.stream, u.marginal));
    } else {
      LAHAR_RETURN_NOT_OK(db->AppendMarginal(u.stream, u.marginal));
    }
    if (watermark != nullptr) watermark->Advance(u.stream, batch.t);
  }
  return Status::OK();
}

}  // namespace lahar
