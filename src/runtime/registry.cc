#include "runtime/registry.h"

#include <algorithm>

namespace lahar {

QueryRegistry::QueryRegistry(EventDatabase* db, LaharOptions options,
                             SharingOptions sharing)
    : db_(db),
      options_(std::move(options)),
      sharing_(sharing),
      shared_kernels_(std::make_shared<KernelCache>()),
      shared_rows_(std::make_shared<TransitionRowPool>()) {
  // Safe plans compile their reg leaves through the registry-wide cache
  // (unless the caller wired a cache of their own), so structurally equal
  // leaves across plans — and standalone regular queries — compile once.
  if (options_.plan.safe.kernel_cache == nullptr) {
    options_.plan.safe.kernel_cache = shared_kernels_.get();
  }
}

Result<QueryId> QueryRegistry::Register(std::string_view text,
                                        Timestamp tick) {
  // Exact-text dedup: a textually identical re-registration reuses the
  // cached prepared plan (and its kernel cache) instead of reparsing and
  // reclassifying. Sessions stay per-query; only the plan is shared.
  std::string key(text);
  auto it = prepared_cache_.find(key);
  if (it != prepared_cache_.end()) {
    ++prepared_dedup_hits_;
    return RegisterPrepared(it->second.prepared, text, tick,
                            /*cached_plan=*/true);
  }
  LAHAR_ASSIGN_OR_RETURN(PreparedQuery prepared, PrepareQuery(text, db_));
  prepared.kernel_cache = shared_kernels_;
  prepared.row_pool = shared_rows_;
  auto ins = prepared_cache_.emplace(std::move(key),
                                     PreparedEntry{std::move(prepared), 0});
  Result<QueryId> id = RegisterPrepared(ins.first->second.prepared, text,
                                        tick, /*cached_plan=*/true);
  if (!id.ok() && ins.first->second.refs == 0) {
    prepared_cache_.erase(ins.first);
  }
  return id;
}

Result<QueryId> QueryRegistry::Register(const PreparedQuery& prepared,
                                        std::string_view text,
                                        Timestamp tick) {
  return RegisterPrepared(prepared, text, tick, /*cached_plan=*/false);
}

Result<QueryId> QueryRegistry::RegisterPrepared(const PreparedQuery& prepared,
                                                std::string_view text,
                                                Timestamp tick,
                                                bool cached_plan) {
  KernelCache* plan_cache = prepared.kernel_cache.get();
  KernelCache::Stats shared_before = shared_kernels_->stats();
  KernelCache::Stats plan_before;
  if (plan_cache != nullptr && plan_cache != shared_kernels_.get()) {
    plan_before = plan_cache->stats();
  }
  LAHAR_ASSIGN_OR_RETURN(std::unique_ptr<QuerySession> session,
                         CreateQuerySession(db_, prepared, options_));
  auto q = std::make_unique<StandingQuery>();
  q->id = next_id_++;
  q->text = std::string(text);
  q->query_class = prepared.classification.query_class;
  q->engine = session->engine_kind();
  q->exact = session->exact();
  q->session = std::move(session);
  q->cached_plan = cached_plan;
  KernelCache::Stats shared_after = shared_kernels_->stats();
  q->kernel_hits = shared_after.hits - shared_before.hits;
  q->kernel_misses = shared_after.misses - shared_before.misses;
  if (plan_cache != nullptr && plan_cache != shared_kernels_.get()) {
    KernelCache::Stats plan_after = plan_cache->stats();
    q->kernel_hits += plan_after.hits - plan_before.hits;
    q->kernel_misses += plan_after.misses - plan_before.misses;
  }
  // Catch up to the runtime's clock: the database already stores timesteps
  // 1..tick, so replaying them aligns the session with the standing pool.
  while (q->session->time() < tick) {
    LAHAR_ASSIGN_OR_RETURN(double p, q->session->Advance());
    (void)p;
  }
  QueryId id = q->id;
  StandingQuery* raw = q.get();
  queries_.push_back(std::move(q));
  if (cached_plan) {
    auto it = prepared_cache_.find(raw->text);
    if (it != prepared_cache_.end()) ++it->second.refs;
  }
  AttachSharing(raw);
  ++version_;
  return id;
}

Status QueryRegistry::RestoreQuery(QueryId id, std::string_view text,
                                   Timestamp tick, serial::Reader* state) {
  if (Find(id) != nullptr) {
    return Status::AlreadyExists("query id " + std::to_string(id) +
                                 " already registered");
  }
  LAHAR_ASSIGN_OR_RETURN(PreparedQuery prepared, PrepareQuery(text, db_));
  prepared.kernel_cache = shared_kernels_;
  prepared.row_pool = shared_rows_;
  LAHAR_ASSIGN_OR_RETURN(std::unique_ptr<QuerySession> session,
                         CreateQuerySession(db_, prepared, options_));
  auto q = std::make_unique<StandingQuery>();
  q->id = id;
  q->text = std::string(text);
  q->query_class = prepared.classification.query_class;
  q->engine = session->engine_kind();
  q->exact = session->exact();
  q->session = std::move(session);
  if (state != nullptr && q->session->SupportsStateRestore()) {
    LAHAR_RETURN_NOT_OK(q->session->LoadState(state));
    if (q->session->time() != tick) {
      return Status::InvalidArgument(
          "restored session for query " + std::to_string(id) + " is at t=" +
          std::to_string(q->session->time()) + ", checkpoint tick is " +
          std::to_string(tick));
    }
  } else {
    // Replay catch-up: the restored database stores timesteps 1..tick, and
    // this is the same path hot registration uses, so the session's state
    // is bit-identical to one that ran through the prefix live (sampling
    // sessions re-derive their trajectories from the fixed seed).
    while (q->session->time() < tick) {
      LAHAR_ASSIGN_OR_RETURN(double p, q->session->Advance());
      (void)p;
    }
  }
  StandingQuery* raw = q.get();
  queries_.push_back(std::move(q));
  next_id_ = std::max(next_id_, id + 1);
  AttachSharing(raw);
  ++version_;
  return Status::OK();
}

Status QueryRegistry::Unregister(QueryId id) {
  auto it = std::find_if(
      queries_.begin(), queries_.end(),
      [id](const std::unique_ptr<StandingQuery>& q) { return q->id == id; });
  if (it == queries_.end()) {
    return Status::NotFound("no registered query with id " +
                            std::to_string(id));
  }
  DetachSharing(it->get());
  ReleasePreparedPlan(**it);
  queries_.erase(it);
  ++version_;
  return Status::OK();
}

void QueryRegistry::ReleasePreparedPlan(const StandingQuery& q) {
  if (!q.cached_plan) return;
  auto it = prepared_cache_.find(q.text);
  if (it == prepared_cache_.end()) return;
  if (it->second.refs > 0) --it->second.refs;
  if (it->second.refs == 0) prepared_cache_.erase(it);
}

void QueryRegistry::AttachSharing(StandingQuery* q) {
  if (!sharing_.enabled) return;
  QuerySession* s = q->session.get();
  size_t n = s->NumShareableUnits();
  for (size_t i = 0; i < n; ++i) {
    const std::string& key = s->ShareableUnitKey(i);
    if (key.empty()) continue;
    UnitPool& pool = sharing_pool_[key];
    pool.members.push_back(UnitMember{q, i, false});
    q->shared_units.emplace_back(key, i);
    if (pool.unit == nullptr && pool.members.size() >= 2) {
      // Materialize lazily at the second member, seeded from the NEW
      // member's caught-up chain (deterministic stepping makes every
      // member's chain state identical, so any member can seed).
      pool.unit = s->MakeSharedUnit(i, sharing_.frontier_history);
      if (pool.unit == nullptr) continue;  // errored chain: stay private
      for (UnitMember& m : pool.members) {
        m.delegated = m.query->session->DelegateUnit(m.unit, pool.unit);
        if (m.delegated) pool.unit->AddReader();
      }
      if (pool.unit->readers() < 2) {
        // Sharing didn't take (e.g. a member refused on a latched error):
        // roll everyone back to private stepping.
        for (UnitMember& m : pool.members) {
          if (m.delegated) {
            m.query->session->DelegateUnit(m.unit, nullptr);
            m.delegated = false;
          }
        }
        pool.unit = nullptr;
      }
    } else if (pool.unit != nullptr) {
      UnitMember& m = pool.members.back();
      m.delegated = s->DelegateUnit(i, pool.unit);
      if (m.delegated) pool.unit->AddReader();
    }
  }
}

void QueryRegistry::DetachSharing(StandingQuery* q) {
  for (const auto& [key, idx] : q->shared_units) {
    auto it = sharing_pool_.find(key);
    if (it == sharing_pool_.end()) continue;
    UnitPool& pool = it->second;
    for (auto mit = pool.members.begin(); mit != pool.members.end(); ++mit) {
      if (mit->query != q || mit->unit != idx) continue;
      if (mit->delegated && pool.unit != nullptr) {
        q->session->DelegateUnit(idx, nullptr);
        pool.unit->DropReader();
      }
      pool.members.erase(mit);
      break;
    }
    // Below two readers the unit saves nothing: undelegate the survivors
    // (copying the live shared state back into their private chains) and
    // drop the unit. A later re-registration re-materializes it.
    if (pool.unit != nullptr && pool.unit->readers() < 2) {
      for (UnitMember& m : pool.members) {
        if (m.delegated) {
          m.query->session->DelegateUnit(m.unit, nullptr);
          m.delegated = false;
        }
      }
      pool.unit = nullptr;
    }
    if (pool.members.empty()) sharing_pool_.erase(it);
  }
  q->shared_units.clear();
}

void QueryRegistry::AdvanceSharedUnits(Timestamp to) {
  for (auto& [key, pool] : sharing_pool_) {
    (void)key;
    if (pool.unit == nullptr) continue;
    size_t steps = pool.unit->AdvanceTo(to);
    shared_steps_executed_ += steps;
    shared_steps_saved_ += steps * (pool.unit->readers() - 1);
  }
}

size_t QueryRegistry::num_sharing_groups() const {
  size_t n = 0;
  for (const auto& [key, pool] : sharing_pool_) {
    (void)key;
    if (pool.unit != nullptr) ++n;
  }
  return n;
}

std::vector<size_t> QueryRegistry::SharingFanouts() const {
  std::vector<size_t> out;
  for (const auto& [key, pool] : sharing_pool_) {
    (void)key;
    if (pool.unit != nullptr) out.push_back(pool.unit->readers());
  }
  return out;
}

StandingQuery* QueryRegistry::Find(QueryId id) {
  for (auto& q : queries_) {
    if (q->id == id) return q.get();
  }
  return nullptr;
}

size_t QueryRegistry::total_chains() const {
  size_t total = 0;
  for (const auto& q : queries_) total += q->session->num_units();
  return total;
}

}  // namespace lahar
