#include "runtime/registry.h"

#include <algorithm>

namespace lahar {

Result<QueryId> QueryRegistry::Register(std::string_view text,
                                        Timestamp tick) {
  LAHAR_ASSIGN_OR_RETURN(PreparedQuery prepared, PrepareQuery(text, db_));
  return Register(prepared, text, tick);
}

Result<QueryId> QueryRegistry::Register(const PreparedQuery& prepared,
                                        std::string_view text,
                                        Timestamp tick) {
  LAHAR_ASSIGN_OR_RETURN(std::unique_ptr<QuerySession> session,
                         CreateQuerySession(db_, prepared, options_));
  auto q = std::make_unique<StandingQuery>();
  q->id = next_id_++;
  q->text = std::string(text);
  q->query_class = prepared.classification.query_class;
  q->engine = session->engine_kind();
  q->exact = session->exact();
  q->session = std::move(session);
  // Catch up to the runtime's clock: the database already stores timesteps
  // 1..tick, so replaying them aligns the session with the standing pool.
  while (q->session->time() < tick) {
    LAHAR_ASSIGN_OR_RETURN(double p, q->session->Advance());
    (void)p;
  }
  QueryId id = q->id;
  queries_.push_back(std::move(q));
  ++version_;
  return id;
}

Status QueryRegistry::RestoreQuery(QueryId id, std::string_view text,
                                   Timestamp tick, serial::Reader* state) {
  if (Find(id) != nullptr) {
    return Status::AlreadyExists("query id " + std::to_string(id) +
                                 " already registered");
  }
  LAHAR_ASSIGN_OR_RETURN(PreparedQuery prepared, PrepareQuery(text, db_));
  LAHAR_ASSIGN_OR_RETURN(std::unique_ptr<QuerySession> session,
                         CreateQuerySession(db_, prepared, options_));
  auto q = std::make_unique<StandingQuery>();
  q->id = id;
  q->text = std::string(text);
  q->query_class = prepared.classification.query_class;
  q->engine = session->engine_kind();
  q->exact = session->exact();
  q->session = std::move(session);
  if (state != nullptr && q->session->SupportsStateRestore()) {
    LAHAR_RETURN_NOT_OK(q->session->LoadState(state));
    if (q->session->time() != tick) {
      return Status::InvalidArgument(
          "restored session for query " + std::to_string(id) + " is at t=" +
          std::to_string(q->session->time()) + ", checkpoint tick is " +
          std::to_string(tick));
    }
  } else {
    // Replay catch-up: the restored database stores timesteps 1..tick, and
    // this is the same path hot registration uses, so the session's state
    // is bit-identical to one that ran through the prefix live (sampling
    // sessions re-derive their trajectories from the fixed seed).
    while (q->session->time() < tick) {
      LAHAR_ASSIGN_OR_RETURN(double p, q->session->Advance());
      (void)p;
    }
  }
  queries_.push_back(std::move(q));
  next_id_ = std::max(next_id_, id + 1);
  ++version_;
  return Status::OK();
}

Status QueryRegistry::Unregister(QueryId id) {
  auto it = std::find_if(
      queries_.begin(), queries_.end(),
      [id](const std::unique_ptr<StandingQuery>& q) { return q->id == id; });
  if (it == queries_.end()) {
    return Status::NotFound("no registered query with id " +
                            std::to_string(id));
  }
  queries_.erase(it);
  ++version_;
  return Status::OK();
}

StandingQuery* QueryRegistry::Find(QueryId id) {
  for (auto& q : queries_) {
    if (q->id == id) return q.get();
  }
  return nullptr;
}

size_t QueryRegistry::total_chains() const {
  size_t total = 0;
  for (const auto& q : queries_) total += q->session->num_units();
  return total;
}

}  // namespace lahar
