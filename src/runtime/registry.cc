#include "runtime/registry.h"

#include <algorithm>

namespace lahar {

Result<QueryId> QueryRegistry::Register(std::string_view text,
                                        Timestamp tick) {
  LAHAR_ASSIGN_OR_RETURN(PreparedQuery prepared, PrepareQuery(text, db_));
  return Register(prepared, text, tick);
}

Result<QueryId> QueryRegistry::Register(const PreparedQuery& prepared,
                                        std::string_view text,
                                        Timestamp tick) {
  LAHAR_ASSIGN_OR_RETURN(std::unique_ptr<QuerySession> session,
                         CreateQuerySession(db_, prepared, options_));
  auto q = std::make_unique<StandingQuery>();
  q->id = next_id_++;
  q->text = std::string(text);
  q->query_class = prepared.classification.query_class;
  q->engine = session->engine_kind();
  q->exact = session->exact();
  q->session = std::move(session);
  // Catch up to the runtime's clock: the database already stores timesteps
  // 1..tick, so replaying them aligns the session with the standing pool.
  while (q->session->time() < tick) {
    LAHAR_ASSIGN_OR_RETURN(double p, q->session->Advance());
    (void)p;
  }
  QueryId id = q->id;
  queries_.push_back(std::move(q));
  ++version_;
  return id;
}

Status QueryRegistry::Unregister(QueryId id) {
  auto it = std::find_if(
      queries_.begin(), queries_.end(),
      [id](const std::unique_ptr<StandingQuery>& q) { return q->id == id; });
  if (it == queries_.end()) {
    return Status::NotFound("no registered query with id " +
                            std::to_string(id));
  }
  queries_.erase(it);
  ++version_;
  return Status::OK();
}

StandingQuery* QueryRegistry::Find(QueryId id) {
  for (auto& q : queries_) {
    if (q->id == id) return q.get();
  }
  return nullptr;
}

size_t QueryRegistry::total_chains() const {
  size_t total = 0;
  for (const auto& q : queries_) total += q->session->num_units();
  return total;
}

}  // namespace lahar
