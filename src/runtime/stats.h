// Counters for the multi-query streaming runtime: per-query and per-shard
// advance latency, ticks processed, queue depth, and drops. Everything is a
// plain struct so benches and the CLI can print or serialize them without
// pulling in the runtime itself.
#ifndef LAHAR_RUNTIME_STATS_H_
#define LAHAR_RUNTIME_STATS_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "model/value.h"

namespace lahar {

/// Stable identifier of a registered standing query (see runtime/registry.h).
using QueryId = uint64_t;

/// \brief Summary of a latency distribution, in microseconds.
///
/// Percentiles come from a log-scale histogram (power-of-two nanosecond
/// buckets), so they are accurate to within a factor of ~2 — enough to spot
/// stragglers, not a substitute for a profiler.
struct LatencySummary {
  uint64_t count = 0;
  double min_us = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p99_us = 0;
  double max_us = 0;
};

/// \brief Cheap fixed-size latency histogram (no allocation on record).
class LatencyRecorder {
 public:
  void Record(uint64_t ns);
  LatencySummary Summarize() const;
  void Reset();

 private:
  static constexpr size_t kBuckets = 64;  // bucket b covers [2^b, 2^{b+1}) ns
  std::array<uint64_t, kBuckets> counts_{};
  uint64_t count_ = 0;
  uint64_t min_ns_ = UINT64_MAX;
  uint64_t max_ns_ = 0;
  double sum_ns_ = 0;
};

/// \brief Per-query counters, snapshot at Stats() time.
struct QueryStats {
  QueryId id = 0;
  std::string text;
  /// Query class and serving engine names (strings so this header stays
  /// free of analysis/engine includes).
  std::string query_class;
  std::string engine;
  /// False when the session serves (epsilon, delta) sampling estimates.
  bool exact = true;
  /// Shardable units: chains for streaming sessions, samples for sampling
  /// sessions, 1 for a safe plan.
  size_t num_chains = 0;
  uint64_t ticks = 0;
  uint64_t errors = 0;      ///< ticks whose CommitAdvance failed
  std::string last_error;   ///< empty when the last commit succeeded
  /// Wall time spent stepping this query's units per tick (summed across
  /// the shards that shared them).
  LatencySummary advance;
  /// Safe-path cache counters (zero for the other classes): live interval
  /// memo entries / reg rows and the eviction activity that keeps them
  /// bounded (see engine/safe_engine.h).
  size_t memo_entries = 0;
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
  uint64_t memo_evictions = 0;
  size_t rows_live = 0;
  uint64_t row_evictions = 0;
  uint64_t row_rebuilds = 0;
  /// Kernel-cache lookups attributable to building this query's session
  /// (hits mean a structurally equal kernel compiled earlier — by this
  /// query or any other — was reused; see docs/SHARING.md).
  uint64_t kernel_hits = 0;
  uint64_t kernel_misses = 0;
  /// Units of this query currently delegated to cross-query shared
  /// sub-chains (stepped once per tick for all their readers).
  size_t shared_units = 0;
  /// Units of this query stepping on the vectorized SoA kernel path
  /// (docs/PERF.md).
  size_t simd_units = 0;
  /// Whole-stripe steps taken / stripes demoted to per-unit steps.
  /// Fallbacks are data-dependent: the executor aligns shard splits on
  /// stripe boundaries, so rebalances must not grow them.
  uint64_t stripe_steps = 0;
  uint64_t stripe_fallbacks = 0;
  // --- chain lifecycle (docs/PERF.md "Chain lifecycle") -------------------
  /// Session memory footprint in bytes (resident chains + stubs + spill
  /// arena). num_chains counts *registered* units; resident + stub +
  /// spilled partitions them for lifecycle sessions (all resident
  /// otherwise).
  size_t bytes_resident = 0;
  size_t resident_units = 0;  ///< units holding a materialized chain
  size_t stub_units = 0;      ///< lazy stubs never promoted (~16 B each)
  size_t spilled_units = 0;   ///< cold chains in the spill arena
  uint64_t promotions = 0;    ///< stub -> resident transitions
  uint64_t spills = 0;        ///< resident -> spilled/stub transitions
  uint64_t rehydrations = 0;  ///< spilled -> resident transitions
};

/// \brief Per-shard counters, snapshot at Stats() time.
struct ShardStats {
  size_t shard = 0;
  uint64_t ticks = 0;
  uint64_t chains_stepped = 0;
  /// Wall time the shard spent on its work items per tick.
  LatencySummary tick;
};

/// \brief Per-tenant admission-control counters (see net/server.h).
struct NetTenantStats {
  std::string tenant;
  uint64_t ingest_frames = 0;   ///< ingest frames accepted into the queue
  uint64_t quota_rejected = 0;  ///< ingest frames shed by the token bucket
};

/// \brief Counters for the TCP serving front-end (net/server.h), merged
/// into RuntimeStats by Server::Stats(). All zero when no server is
/// attached, in which case ToString omits the net section.
struct NetStats {
  size_t connections = 0;          ///< currently open
  uint64_t total_connections = 0;  ///< accepted since Start
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t protocol_errors = 0;   ///< error frames sent for malformed input
  uint64_t quota_rejected = 0;    ///< ingest frames shed by tenant quotas
  uint64_t backpressure_rejected = 0;  ///< ingest frames shed, queue full
  uint64_t slow_disconnects = 0;  ///< connections dropped at the outbound cap
  size_t subscriptions = 0;       ///< live (connection, query) subscriptions
  std::vector<NetTenantStats> tenants;  ///< sorted by tenant name
};

/// \brief Full runtime snapshot.
struct RuntimeStats {
  Timestamp tick = 0;            ///< last completed tick
  uint64_t ticks_processed = 0;  ///< ticks executed since Start
  size_t num_queries = 0;
  size_t total_chains = 0;
  size_t num_threads = 0;
  size_t queue_depth = 0;
  size_t queue_capacity = 0;
  uint64_t queue_dropped = 0;    ///< TryPush load-shed (queue at capacity)
  uint64_t queue_closed_rejected = 0;  ///< TryPush after Close (shutdown)
  uint64_t batches_applied = 0;
  uint64_t batches_rejected = 0;  ///< malformed batches skipped by ingest
  std::string last_ingest_error;  ///< empty when every batch applied cleanly
  size_t reorder_depth = 0;       ///< updates held in the reorder buffer
  size_t reorder_window = 0;      ///< configured reorder window (ticks)
  uint64_t reorder_late_dropped = 0;  ///< stale duplicates dropped
  uint64_t reorder_merged = 0;        ///< buffered duplicates merged away
  /// Registered queries per class, (class name, count) in class order —
  /// every class the runtime is currently serving, including approximate
  /// sampling sessions.
  std::vector<std::pair<std::string, size_t>> class_counts;
  /// Per-tick advance latency aggregated per query class, (class name,
  /// summary) in class order — makes a regression in one class observable
  /// even when the mixed tick latency hides it.
  std::vector<std::pair<std::string, LatencySummary>> class_latency;
  /// Safe-path cache totals across every safe session (bounded-memory
  /// serving observability; per-query breakdown in QueryStats).
  size_t safe_memo_entries = 0;
  uint64_t safe_memo_evictions = 0;
  size_t safe_rows_live = 0;
  uint64_t safe_row_evictions = 0;
  // --- cross-query sharing counters (docs/SHARING.md) ---------------------
  /// Materialized sharing groups: sub-chain units stepped once per tick
  /// and read by >= 2 sessions.
  size_t sharing_groups = 0;
  /// Chain steps executed by shared units since Start.
  uint64_t shared_steps_executed = 0;
  /// Chain steps the readers did NOT execute thanks to sharing: every unit
  /// step saves (readers - 1) private steps.
  uint64_t shared_steps_saved = 0;
  /// Group fan-out (readers per materialized group), log2 buckets like
  /// window_size_hist: [1] [2] [3-4] [5-8] ... 65+.
  std::vector<uint64_t> sharing_fanout_hist;
  /// Textually identical registrations served from the prepared-plan cache
  /// instead of reparsing and reclassifying.
  uint64_t prepared_dedup_hits = 0;
  /// Registry-wide compiled-kernel cache: lookups across every session
  /// build plus the number of distinct kernels held.
  uint64_t kernel_cache_hits = 0;
  uint64_t kernel_cache_misses = 0;
  size_t kernel_cache_entries = 0;
  /// Chains stepping on the vectorized SoA kernel path across all queries
  /// (docs/PERF.md), with their whole-stripe steps and per-unit demotions
  /// (stripe_fallbacks growing under rebalance churn means shard splits
  /// are shearing lane-interleaved stripes).
  size_t simd_units = 0;
  uint64_t stripe_steps = 0;
  uint64_t stripe_fallbacks = 0;
  // --- chain lifecycle totals (docs/PERF.md "Chain lifecycle") ------------
  /// Summed session footprints; total_chains counts registered units, and
  /// resident + stub + spilled partitions them.
  size_t bytes_resident = 0;
  size_t resident_units = 0;
  size_t stub_units = 0;
  size_t spilled_units = 0;
  uint64_t promotions = 0;
  uint64_t spills = 0;
  uint64_t rehydrations = 0;
  /// End-to-end per-tick wall time. Under windowed execution each tick of
  /// a window records the window's wall time divided by its width, so the
  /// count still equals ticks_processed and the mean is the true
  /// amortized per-tick cost.
  LatencySummary tick_latency;
  // --- windowed-executor counters (see runtime/executor.h) ---------------
  uint64_t windows_executed = 0;  ///< batched windows run (>= 1 tick each)
  size_t max_window_ticks = 0;    ///< configured window cap (W <= this)
  /// Window widths, log2 buckets: [1] [2] [3-4] [5-8] [9-16] [17-32]
  /// [33-64] and 65+. Mass in the first bucket means producers never run
  /// ahead (per-tick barriers); mass to the right is amortized handshakes.
  std::vector<uint64_t> window_size_hist;
  uint64_t steals = 0;      ///< whole sessions moved between shards by rebalances
  uint64_t split_placements = 0;  ///< split-group primary-shard moves
  uint64_t rebalances = 0;  ///< drift-triggered plan rebuilds
  /// Work-plan rebuilds of any cause: registry churn (register/unregister
  /// bumps the version; the next window rebuilds from static costs) plus
  /// the drift rebalances above. Deterministically >= 1 once a window has
  /// run, and grows with each churn batch — unlike steals, which require a
  /// measured drift rebalance to move an owner.
  uint64_t plan_rebuilds = 0;
  /// Coordinator wait at the end-of-window barrier (one record per window,
  /// multi-threaded runs only) — the pool's straggler skew.
  LatencySummary barrier_wait;
  /// TCP front-end counters; all-zero unless the stats came through
  /// net::Server::Stats() (a bare StreamRuntime has no server attached).
  NetStats net;
  std::vector<QueryStats> queries;
  std::vector<ShardStats> shards;

  /// Multi-line human-readable table.
  std::string ToString() const;
  /// One JSON object (the shape bench_t04_runtime_scaling emits per cell).
  /// All embedded strings — query text, error messages, tenant names — are
  /// JSON-escaped, so a query containing `"` stays parseable.
  std::string ToJson() const;
};

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters).
std::string JsonEscape(std::string_view s);

}  // namespace lahar

#endif  // LAHAR_RUNTIME_STATS_H_
