// Versioned binary checkpoint format for StreamRuntime (see
// StreamRuntime::Checkpoint / Restore in runtime/executor.h).
//
// Layout (all little-endian, via common/serial.h):
//
//   u32  magic        'LCKP'
//   u32  version      kCheckpointVersion
//   ...  database     EventDatabase::SaveTo
//   u32  tick         last completed tick
//   u64  num_ended    streams excluded from the watermark, then that many
//   u32  stream id    ended stream ids
//   u64  num_queries  then per query, in registration order:
//     u64 id          original QueryId (preserved on restore)
//     str text        query text (reparsed/reclassified on restore)
//     u8  has_state   1 when the session serialized its state directly
//     str state       opaque session blob (present iff has_state)
//
// Sessions without direct state (safe plans, samplers) are restored by
// replaying the database prefix — the same bit-identical catch-up path hot
// registration uses. Reorder-buffered updates are NOT checkpointed:
// producers must resend ticks newer than the checkpoint tick.
#ifndef LAHAR_RUNTIME_CHECKPOINT_H_
#define LAHAR_RUNTIME_CHECKPOINT_H_

#include <cstdint>

namespace lahar {

inline constexpr uint32_t kCheckpointMagic = 0x504B434CU;  // "LCKP"
inline constexpr uint32_t kCheckpointVersion = 1;

}  // namespace lahar

#endif  // LAHAR_RUNTIME_CHECKPOINT_H_
