// Ingestion for the multi-query streaming runtime: per-timestep batches of
// inference output (marginals for independent streams, CPTs for Markovian
// ones) flow through a bounded MPSC queue into the runtime's database.
//
// Backpressure is explicit: TryPush never blocks (the caller decides to
// drop), Push blocks until space frees up or a deadline expires. A
// Watermark tracks the highest timestep each stream has covered; the
// executor only runs tick t once min-over-streams reaches t, so no session
// ever reads a half-filled timestep.
#ifndef LAHAR_RUNTIME_INGEST_H_
#define LAHAR_RUNTIME_INGEST_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/matrix.h"
#include "model/database.h"

namespace lahar {

/// \brief One stream's payload for one timestep.
///
/// Exactly one of `marginal` / `cpt` is set, matching the stream's flavour:
/// independent streams take a marginal every timestep; Markovian streams
/// take a marginal at t=1 (the initial distribution) and a CPT afterwards.
struct StreamUpdate {
  StreamId stream = 0;
  std::vector<double> marginal;
  std::optional<Matrix> cpt;
};

/// \brief Everything the producers learned about timestep `t`.
///
/// A batch need not cover every stream (multiple producers can each own a
/// stream subset and push their own batches for the same tick); the
/// watermark holds tick execution until the union of batches covers t.
struct TickBatch {
  Timestamp t = 0;
  std::vector<StreamUpdate> updates;
};

/// \brief Bounded multi-producer single-consumer queue of TickBatches.
class IngestQueue {
 public:
  explicit IngestQueue(size_t capacity) : capacity_(capacity) {}

  /// Non-blocking push; returns false (and counts a drop) when the queue is
  /// full or closed.
  bool TryPush(TickBatch batch);

  /// Blocking push with a deadline. Returns OutOfRange when the queue stays
  /// full past the deadline, InvalidArgument when the queue is closed.
  Status Push(TickBatch batch, std::chrono::milliseconds deadline);

  /// Non-blocking pop (consumer side).
  std::optional<TickBatch> Pop();

  /// Pops, waiting up to `timeout` for a batch. Returns nullopt on timeout
  /// or when the queue is closed and drained.
  std::optional<TickBatch> PopWait(std::chrono::milliseconds timeout);

  /// Bulk drain (consumer side): blocks until at least one batch is queued,
  /// the queue is closed, or Wake() is called, then moves *every* queued
  /// batch onto the back of `*out` and returns the number drained. There is
  /// no polling interval — the wait is a condition variable signaled by
  /// Push/TryPush/Close/Wake, so a quiet queue costs zero wakeups and a
  /// push is seen immediately. Returns 0 only on close or an explicit Wake
  /// with nothing queued.
  size_t DrainWait(std::vector<TickBatch>* out);

  /// Wakes a blocked DrainWait even though no batch arrived. Used when
  /// consumer-visible state *outside* the queue changed (e.g. the runtime's
  /// watermark after MarkStreamEnded) and the consumer must re-check it.
  void Wake();

  /// Rejects all future pushes and wakes every waiter. Queued batches can
  /// still be popped; PopWait returns immediately once drained.
  void Close();

  bool closed() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Number of TryPush calls shed because the queue was at capacity.
  /// Shutdown rejections are counted separately (closed_rejected) so
  /// backpressure telemetry is not polluted by producers racing Close().
  uint64_t dropped() const;
  /// Number of TryPush calls rejected because the queue was closed.
  uint64_t closed_rejected() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<TickBatch> batches_;
  bool closed_ = false;
  bool wake_pending_ = false;
  uint64_t dropped_ = 0;
  uint64_t closed_rejected_ = 0;
};

/// \brief Tracks, per stream, the highest timestep whose data has been
/// applied to the database. Safe() is the min across tracked streams: the
/// highest tick every session may consume.
class Watermark {
 public:
  /// Safe() when no stream gates ticks (none tracked, or all ended): there
  /// is no bound to enforce, but also nothing arriving — the executor runs
  /// no further ticks.
  static constexpr Timestamp kUnbounded = UINT32_MAX;

  /// Starts tracking `id` with `covered` timesteps already present.
  void Track(StreamId id, Timestamp covered);

  /// Records that `id` now covers timestep `t` (monotone; lower t ignored).
  void Advance(StreamId id, Timestamp t);

  /// Excludes `id` from Safe(): the stream has ended and will not gate
  /// ticks any more (its sessions keep consuming certain-bottom).
  void MarkEnded(StreamId id);

  /// Min covered timestep across tracked, non-ended streams; kUnbounded
  /// when nothing gates (no tracked streams or all ended).
  Timestamp Safe() const;

  /// True when `id` is tracked and has been MarkEnded.
  bool ended(StreamId id) const;

  size_t num_tracked() const { return num_tracked_; }

 private:
  static constexpr Timestamp kEnded = kUnbounded;
  std::vector<Timestamp> covered_;  // indexed by StreamId; kEnded = excluded
  std::vector<bool> tracked_;
  size_t num_tracked_ = 0;
};

/// Applies one batch to the database **transactionally**: every update is
/// validated (stream bounds, flavour, distribution/CPT shape and sums,
/// `batch.t == stream.horizon()+1`, no duplicate stream within the batch)
/// before anything is mutated. A rejected batch therefore leaves the
/// database and the watermark untouched, and the producer can retry the
/// identical batch once whatever it was missing has been fixed — retries
/// are idempotent, never wedged on a half-advanced horizon.
///
/// On success, marginals append to independent streams (or seed empty
/// Markovian streams at t=1), CPTs append Markov steps, and `watermark`
/// advances for each applied stream.
Status ApplyBatch(EventDatabase* db, const TickBatch& batch,
                  Watermark* watermark);

/// \brief Bounded per-stream reorder stage in front of ApplyBatch.
///
/// Multi-producer races deliver batches out of order and occasionally twice.
/// The buffer classifies every update against its stream's current horizon:
///
///  * `t <= horizon`        — data already applied; dropped as a benign
///                            duplicate (counted in late_dropped()).
///  * `t == horizon + 1`    — due now; handed back to the caller to apply.
///  * within the window     — held until its tick is next. A second update
///                            for the same (tick, stream) slot merges
///                            first-wins (counted in merged()).
///  * beyond the window, or an unknown stream — the *whole* batch is
///                            rejected untouched (the bound keeps a
///                            runaway producer from ballooning memory).
///
/// Single-consumer, like ApplyBatch: the runtime coordinator owns it.
class ReorderBuffer {
 public:
  /// `window` = how far past horizon+1 an update may arrive and still be
  /// buffered (0 = strict in-order ingest).
  explicit ReorderBuffer(size_t window) : window_(window) {}

  /// Classifies `batch` (see class comment). Due updates are appended to
  /// `*due`; buffered ones are held. Returns non-OK — with the buffer and
  /// `*due` untouched — when any update is out of window or unknown.
  Status Offer(const EventDatabase& db, TickBatch batch,
               std::vector<StreamUpdate>* due);

  /// Pops every buffered update that has become due (its tick is now
  /// horizon+1 for its stream), for the smallest such tick, into `*out`.
  /// Returns false when nothing is due. Callers loop: applying one due
  /// group advances horizons, which may make the next group due.
  bool PopDue(const EventDatabase& db, TickBatch* out);

  /// Number of updates currently held.
  size_t depth() const { return buffered_.size(); }
  size_t window() const { return window_; }
  /// Updates dropped because their tick was already applied (duplicates).
  uint64_t late_dropped() const { return late_dropped_; }
  /// Updates merged away because the same (tick, stream) slot was already
  /// buffered (first write wins).
  uint64_t merged() const { return merged_; }

  /// Discards everything held (checkpoint restore: producers resend).
  void Clear() { buffered_.clear(); }

 private:
  const size_t window_;
  // Ordered by (tick, stream) so PopDue scans due ticks smallest-first.
  std::map<std::pair<Timestamp, StreamId>, StreamUpdate> buffered_;
  uint64_t late_dropped_ = 0;
  uint64_t merged_ = 0;
};

}  // namespace lahar

#endif  // LAHAR_RUNTIME_INGEST_H_
