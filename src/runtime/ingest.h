// Ingestion for the multi-query streaming runtime: per-timestep batches of
// inference output (marginals for independent streams, CPTs for Markovian
// ones) flow through a bounded MPSC queue into the runtime's database.
//
// Backpressure is explicit: TryPush never blocks (the caller decides to
// drop), Push blocks until space frees up or a deadline expires. A
// Watermark tracks the highest timestep each stream has covered; the
// executor only runs tick t once min-over-streams reaches t, so no session
// ever reads a half-filled timestep.
#ifndef LAHAR_RUNTIME_INGEST_H_
#define LAHAR_RUNTIME_INGEST_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/matrix.h"
#include "model/database.h"

namespace lahar {

/// \brief One stream's payload for one timestep.
///
/// Exactly one of `marginal` / `cpt` is set, matching the stream's flavour:
/// independent streams take a marginal every timestep; Markovian streams
/// take a marginal at t=1 (the initial distribution) and a CPT afterwards.
struct StreamUpdate {
  StreamId stream = 0;
  std::vector<double> marginal;
  std::optional<Matrix> cpt;
};

/// \brief Everything the producers learned about timestep `t`.
///
/// A batch need not cover every stream (multiple producers can each own a
/// stream subset and push their own batches for the same tick); the
/// watermark holds tick execution until the union of batches covers t.
struct TickBatch {
  Timestamp t = 0;
  std::vector<StreamUpdate> updates;
};

/// \brief Bounded multi-producer single-consumer queue of TickBatches.
class IngestQueue {
 public:
  explicit IngestQueue(size_t capacity) : capacity_(capacity) {}

  /// Non-blocking push; returns false (and counts a drop) when the queue is
  /// full or closed.
  bool TryPush(TickBatch batch);

  /// Blocking push with a deadline. Returns OutOfRange when the queue stays
  /// full past the deadline, InvalidArgument when the queue is closed.
  Status Push(TickBatch batch, std::chrono::milliseconds deadline);

  /// Non-blocking pop (consumer side).
  std::optional<TickBatch> Pop();

  /// Pops, waiting up to `timeout` for a batch. Returns nullopt on timeout
  /// or when the queue is closed and drained.
  std::optional<TickBatch> PopWait(std::chrono::milliseconds timeout);

  /// Rejects all future pushes and wakes every waiter. Queued batches can
  /// still be popped; PopWait returns immediately once drained.
  void Close();

  bool closed() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Number of TryPush calls rejected because the queue was full or closed.
  uint64_t dropped() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<TickBatch> batches_;
  bool closed_ = false;
  uint64_t dropped_ = 0;
};

/// \brief Tracks, per stream, the highest timestep whose data has been
/// applied to the database. Safe() is the min across tracked streams: the
/// highest tick every session may consume.
class Watermark {
 public:
  /// Safe() when no stream gates ticks (none tracked, or all ended): there
  /// is no bound to enforce, but also nothing arriving — the executor runs
  /// no further ticks.
  static constexpr Timestamp kUnbounded = UINT32_MAX;

  /// Starts tracking `id` with `covered` timesteps already present.
  void Track(StreamId id, Timestamp covered);

  /// Records that `id` now covers timestep `t` (monotone; lower t ignored).
  void Advance(StreamId id, Timestamp t);

  /// Excludes `id` from Safe(): the stream has ended and will not gate
  /// ticks any more (its sessions keep consuming certain-bottom).
  void MarkEnded(StreamId id);

  /// Min covered timestep across tracked, non-ended streams; kUnbounded
  /// when nothing gates (no tracked streams or all ended).
  Timestamp Safe() const;

  size_t num_tracked() const { return num_tracked_; }

 private:
  static constexpr Timestamp kEnded = kUnbounded;
  std::vector<Timestamp> covered_;  // indexed by StreamId; kEnded = excluded
  std::vector<bool> tracked_;
  size_t num_tracked_ = 0;
};

/// Applies one batch to the database: marginals append to independent
/// streams (or seed empty Markovian streams at t=1), CPTs append Markov
/// steps. Every update must target timestep stream.horizon()+1 == batch.t;
/// on error the batch may be partially applied and the caller should treat
/// the runtime's data as ended at the previous tick. Advances `watermark`
/// for each applied stream.
Status ApplyBatch(EventDatabase* db, const TickBatch& batch,
                  Watermark* watermark);

}  // namespace lahar

#endif  // LAHAR_RUNTIME_INGEST_H_
