// The multi-query streaming runtime: owns an EventDatabase, a registry of
// standing QuerySessions (one per registered query, of whatever class), and
// a sharded worker pool that advances every registered query once per
// arriving timestep.
//
// Data flow per tick t:
//
//   producers --TickBatch--> IngestQueue --> coordinator applies batches to
//   the database and advances the Watermark; once every stream covers t,
//   the coordinator fans the sessions' units out to the shard pool
//   (QuerySession::AdvanceShard on disjoint ranges), barriers, then
//   commits each session in registration order (CommitAdvance) and
//   publishes an immutable TickResult snapshot.
//
// Sessions expose independently steppable units — per-grounding chains for
// the streaming engines (Theorems 3.3/3.7), Monte-Carlo samples for
// sampling sessions, independent grounding groups for safe plans — so the
// fan-out changes wall-clock time only; the published probabilities are
// bit-identical to advancing each session sequentially.
//
// Threading contract: the database is written only by the coordinator, and
// only while no chain work is in flight; shard threads read it during the
// fan-out window. Register/Unregister take the same state mutex the tick
// loop holds, so query add/remove lands between ticks ("hot" but never
// mid-tick). TickResult snapshots are immutable and handed to readers as
// shared_ptrs, so polling never contends with tick execution beyond a
// pointer copy.
#ifndef LAHAR_RUNTIME_EXECUTOR_H_
#define LAHAR_RUNTIME_EXECUTOR_H_

#include <array>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/ingest.h"
#include "runtime/registry.h"
#include "runtime/stats.h"

namespace lahar {

/// \brief Immutable per-tick snapshot: P[q@t] for every standing query.
struct TickResult {
  Timestamp t = 0;
  /// (QueryId, probability) in registration order (ascending id). A query
  /// whose CommitAdvance failed this tick is absent (see
  /// StandingQuery::last_error in the stats).
  std::vector<std::pair<QueryId, double>> probs;

  /// Probability for one query, or nullptr if it was not registered at t
  /// (or errored this tick).
  const double* Find(QueryId id) const;
};

/// Options for StreamRuntime.
struct RuntimeOptions {
  /// Worker threads stepping chains. 0 means hardware_concurrency; 1 runs
  /// chain work inline on the coordinator (no shard pool).
  size_t num_threads = 0;
  /// IngestQueue capacity, in TickBatches.
  size_t queue_capacity = 256;
  /// How far past a stream's next expected timestep (horizon+1) an update
  /// may arrive and still be buffered for later application (multi-producer
  /// reordering). 0 = strict in-order ingest: anything not immediately
  /// applicable is rejected. See ReorderBuffer in runtime/ingest.h.
  size_t reorder_window = 64;
  /// How long the coordinator sleeps on an empty queue before rechecking
  /// for shutdown.
  std::chrono::milliseconds poll_interval{5};
  /// Session routing options (safe-plan compilation, sampling parameters,
  /// and whether Safe/Unsafe queries may fall back to sampling).
  LaharOptions session;
};

/// \brief Concurrent multi-query streaming runtime over one database.
class StreamRuntime {
 public:
  /// The runtime adopts the database's current horizon as its starting
  /// tick: a preloaded archive is treated as already-consumed history
  /// (sessions registered later replay it to catch up), and fresh ticks
  /// begin at horizon+1. The caller keeps `db` alive and must not touch it
  /// while the runtime is running.
  explicit StreamRuntime(EventDatabase* db, RuntimeOptions options = {});
  ~StreamRuntime();

  StreamRuntime(const StreamRuntime&) = delete;
  StreamRuntime& operator=(const StreamRuntime&) = delete;

  /// Registers a standing query (see QueryRegistry::Register). Safe to call
  /// before Start or while running; while running, the registration lands
  /// between ticks and the session is caught up to the current tick.
  Result<QueryId> Register(std::string_view text);
  Result<QueryId> Register(const PreparedQuery& prepared,
                           std::string_view text);
  Status Unregister(QueryId id);

  /// True while `id` names a registered standing query (used by the network
  /// front-end to validate subscriptions without snapshotting full stats).
  bool HasQuery(QueryId id) const;

  /// The ingestion queue producers push TickBatches into.
  IngestQueue& ingest() { return queue_; }

  /// Excludes a stream from the watermark (it has ended; sessions keep
  /// consuming certain-bottom for it).
  void MarkStreamEnded(StreamId id);

  /// Launches the shard pool and the coordinator. Start/Stop are one-shot:
  /// a stopped runtime stays stopped.
  void Start();

  /// Stops ingesting (closes the queue), finishes the tick in flight, and
  /// joins all threads. Idempotent.
  void Stop();

  bool running() const;

  /// Last completed tick (== database horizon at construction before any
  /// tick runs).
  Timestamp tick() const;

  /// Latest published snapshot (nullptr before the first tick). Costs one
  /// mutex-protected shared_ptr copy; never blocks on tick execution.
  std::shared_ptr<const TickResult> Latest() const;

  /// Blocks until tick `t` has completed, the runtime stops, or `timeout`
  /// expires. Returns true iff tick() >= t.
  bool WaitForTick(Timestamp t, std::chrono::milliseconds timeout) const;

  /// Called on the coordinator thread after every tick with the published
  /// snapshot. Settable any time (guarded against the coordinator's reads);
  /// keep it fast and do not call back into the runtime from it — except
  /// Checkpoint(), which is explicitly callback-safe.
  void SetTickCallback(std::function<void(const TickResult&)> callback);

  /// Snapshot of all counters. Callable any time; may wait for the tick in
  /// flight.
  RuntimeStats Stats() const;

  /// Serializes the runtime's recoverable state — the database, the current
  /// tick, ended streams, and every standing query (with direct session
  /// state for the streaming engines) — into a versioned binary snapshot.
  /// Callable while running: it takes the state mutex, so it lands between
  /// ticks, never mid-tick (the tick callback is a natural place to call it
  /// from — the coordinator invokes callbacks with no locks held). Batches
  /// still buffered in the reorder stage are NOT part of a checkpoint;
  /// producers must resend ticks newer than the checkpoint tick on restart.
  Result<std::string> Checkpoint() const;

  /// Restores a snapshot produced by Checkpoint() into this runtime. Must
  /// be called before Start(), on a runtime whose database holds the same
  /// *declarations* (schemas, streams with full domains, relations) the
  /// checkpointed one started from — e.g. a CloneDeclarations() clone; the
  /// archived timesteps are replaced by the snapshot's. Registered queries
  /// are restored under their original ids; subsequent ticks produce
  /// results bit-identical to a runtime that was never interrupted.
  Status Restore(std::string_view snapshot);

 private:
  // One contiguous unit range of one session, assigned to one shard.
  struct WorkItem {
    StandingQuery* query;
    size_t begin;
    size_t end;
  };

  void CoordinatorLoop();
  void ShardLoop(size_t shard);
  // Executes one tick; requires state_mu_ held and watermark coverage.
  std::shared_ptr<const TickResult> RunTick();
  // Rebuilds shard_work_ from the registry; requires state_mu_ held and no
  // tick in flight.
  void RebuildPartitions();

  EventDatabase* db_;
  RuntimeOptions options_;
  size_t num_threads_;
  IngestQueue queue_;

  // --- state guarded by state_mu_ ---------------------------------------
  mutable std::mutex state_mu_;
  QueryRegistry registry_;
  Watermark watermark_;
  ReorderBuffer reorder_;
  Timestamp tick_ = 0;
  uint64_t ticks_processed_ = 0;
  uint64_t batches_applied_ = 0;
  uint64_t batches_rejected_ = 0;
  Status last_ingest_error_;
  LatencyRecorder tick_latency_;
  // Per-query-class advance latency, indexed by QueryClass enum order.
  std::array<LatencyRecorder, 4> class_latency_;
  uint64_t work_version_ = ~0ULL;  // registry version the partitions match
  std::vector<std::vector<WorkItem>> shard_work_;

  // --- shard pool handshake (work_mu_) -----------------------------------
  struct ShardCounters {
    uint64_t ticks = 0;
    uint64_t chains = 0;
    LatencyRecorder latency;
  };
  mutable std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t work_generation_ = 0;
  size_t pending_shards_ = 0;
  bool shard_stop_ = false;
  std::vector<ShardCounters> shard_counters_;

  // --- published results (tick_mu_) --------------------------------------
  mutable std::mutex tick_mu_;
  mutable std::condition_variable tick_cv_;
  Timestamp published_tick_ = 0;
  std::shared_ptr<const TickResult> latest_;

  // callback_mu_ guards tick_callback_: SetTickCallback may race the
  // coordinator's per-tick reads, so both sides lock (the coordinator
  // copies the callback out and invokes the copy without the lock).
  mutable std::mutex callback_mu_;
  std::function<void(const TickResult&)> tick_callback_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::vector<std::thread> shards_;
  std::thread coordinator_;
};

}  // namespace lahar

#endif  // LAHAR_RUNTIME_EXECUTOR_H_
