// The multi-query streaming runtime: owns an EventDatabase, a registry of
// standing QuerySessions (one per registered query, of whatever class), and
// a worker pool that advances every registered query through *batched tick
// windows*.
//
// Data flow per window:
//
//   producers --TickBatch--> IngestQueue --(bulk DrainWait)--> coordinator
//   applies every drained batch to the database and advances the
//   Watermark; if the watermark now covers ticks (tick_, tick_ + W]
//   (W <= RuntimeOptions::max_window_ticks), the coordinator publishes ONE
//   work epoch for the whole window. Each worker advances its
//   persistently-assigned sessions through all W ticks back to back —
//   PrepareAdvance / AdvanceShard / CommitAdvance per tick, results
//   committed lock-free into a preallocated window buffer — then raises
//   its per-shard completion flag. After the single end-of-window barrier
//   the coordinator harvests the buffer and publishes one immutable
//   TickResult per tick, in order.
//
// Windowing changes only where barriers happen, never what is computed:
// within a session the per-tick protocol (prepare, step units, commit) is
// exactly the sequential Advance() loop, so published probabilities and
// checkpoint bytes are bit-identical to per-tick execution
// (max_window_ticks == 1) and to a single-threaded run. The tick callback
// also still fires once per tick in order — checkpoint triggers and the
// net front-end's fan-out (src/net/server.cc) observe no difference
// beyond latency.
//
// Work assignment is persistent, not per-tick: the plan maps whole
// sessions to workers (cost-weighted greedy) and is rebuilt only when the
// registry version changes. A session heavier than ~1.5x the per-shard
// quota is split into unit ranges spread over several workers; those
// ranges synchronize per tick through the group's atomics (an atomic
// countdown elects the committing range; no mutex, no condvar). When a
// shard's measured window cost drifts >2x above the mean, the coordinator
// rebuilds the plan from measured per-session costs instead of static
// estimates and counts every session that changed owner as a steal.
//
// Synchronization budget per window: one mutex/condvar handshake to wake
// the pool and one to park the coordinator at the end-of-window barrier —
// per-tick work never takes a lock. The epoch counter and the per-shard
// completion flags are atomics; the window buffer is written by exactly
// one thread per (tick, query) slot.
//
// Threading contract: the database is written only by the coordinator, and
// only while no window is in flight; workers read it during the window.
// Register/Unregister/Checkpoint take the same state mutex the window loop
// holds, so they land between windows ("hot" but never mid-window).
// TickResult snapshots are immutable and handed to readers as shared_ptrs,
// so polling never contends with execution beyond a pointer copy.
#ifndef LAHAR_RUNTIME_EXECUTOR_H_
#define LAHAR_RUNTIME_EXECUTOR_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/ingest.h"
#include "runtime/registry.h"
#include "runtime/stats.h"

namespace lahar {

/// \brief Immutable per-tick snapshot: P[q@t] for every standing query.
struct TickResult {
  Timestamp t = 0;
  /// (QueryId, probability) in registration order (ascending id). A query
  /// whose CommitAdvance failed this tick is absent (see
  /// StandingQuery::last_error in the stats).
  std::vector<std::pair<QueryId, double>> probs;

  /// Probability for one query, or nullptr if it was not registered at t
  /// (or errored this tick).
  const double* Find(QueryId id) const;
};

/// Options for StreamRuntime.
struct RuntimeOptions {
  /// Worker threads stepping sessions. 0 means hardware_concurrency; 1 runs
  /// window work inline on the coordinator (no worker pool).
  size_t num_threads = 0;
  /// IngestQueue capacity, in TickBatches.
  size_t queue_capacity = 256;
  /// How far past a stream's next expected timestep (horizon+1) an update
  /// may arrive and still be buffered for later application (multi-producer
  /// reordering). 0 = strict in-order ingest: anything not immediately
  /// applicable is rejected. See ReorderBuffer in runtime/ingest.h.
  size_t reorder_window = 64;
  /// Upper bound on how many watermark-covered ticks one window executes
  /// (one worker handoff + one barrier per window, so the handshake cost is
  /// amortized up to this factor when producers run ahead). 1 restores
  /// per-tick barriers; 0 is treated as 1. Results are bit-identical for
  /// every value — only latency and throughput change.
  size_t max_window_ticks = 16;
  /// Pin worker thread i to core i modulo the core count (Linux only;
  /// silently ignored elsewhere). Helps steady-state serving at high
  /// thread counts; leave off when sharing the machine.
  bool pin_threads = false;
  /// Session routing options (safe-plan compilation, sampling parameters,
  /// and whether Safe/Unsafe queries may fall back to sampling).
  LaharOptions session;
  /// Cross-query shared evaluation (docs/SHARING.md). `sharing.enabled =
  /// false` selects the bit-identical `unshared` verification mode. The
  /// runtime raises `frontier_history` to cover its window size.
  SharingOptions sharing;
};

/// \brief Concurrent multi-query streaming runtime over one database.
class StreamRuntime {
 public:
  /// The runtime adopts the database's current horizon as its starting
  /// tick: a preloaded archive is treated as already-consumed history
  /// (sessions registered later replay it to catch up), and fresh ticks
  /// begin at horizon+1. The caller keeps `db` alive and must not touch it
  /// while the runtime is running.
  explicit StreamRuntime(EventDatabase* db, RuntimeOptions options = {});
  ~StreamRuntime();

  StreamRuntime(const StreamRuntime&) = delete;
  StreamRuntime& operator=(const StreamRuntime&) = delete;

  /// Registers a standing query (see QueryRegistry::Register). Safe to call
  /// before Start or while running; while running, the registration lands
  /// between windows and the session is caught up to the current tick.
  Result<QueryId> Register(std::string_view text);
  Result<QueryId> Register(const PreparedQuery& prepared,
                           std::string_view text);
  Status Unregister(QueryId id);

  /// True while `id` names a registered standing query (used by the network
  /// front-end to validate subscriptions without snapshotting full stats).
  bool HasQuery(QueryId id) const;

  /// The ingestion queue producers push TickBatches into.
  IngestQueue& ingest() { return queue_; }

  /// Excludes a stream from the watermark (it has ended; sessions keep
  /// consuming certain-bottom for it). Wakes the coordinator so any ticks
  /// the ended stream was gating run immediately.
  void MarkStreamEnded(StreamId id);

  /// Launches the worker pool and the coordinator. Start/Stop are one-shot:
  /// a stopped runtime stays stopped.
  void Start();

  /// Stops ingesting (closes the queue), finishes the window in flight, and
  /// joins all threads. Idempotent.
  void Stop();

  bool running() const;

  /// Last completed tick (== database horizon at construction before any
  /// tick runs).
  Timestamp tick() const;

  /// Latest published snapshot (nullptr before the first tick). Costs one
  /// mutex-protected shared_ptr copy; never blocks on tick execution.
  std::shared_ptr<const TickResult> Latest() const;

  /// Blocks until tick `t` has completed, the runtime stops, or `timeout`
  /// expires. Returns true iff tick() >= t. Wakes promptly — and returns
  /// false — when the runtime stops mid-wait instead of sleeping out the
  /// timeout.
  bool WaitForTick(Timestamp t, std::chrono::milliseconds timeout) const;

  /// Called on the coordinator thread once per tick, in order, with the
  /// published snapshot (a window of W ticks fires it W times back to
  /// back). Settable any time (guarded against the coordinator's reads);
  /// keep it fast and do not call back into the runtime from it — except
  /// Checkpoint(), which is explicitly callback-safe.
  void SetTickCallback(std::function<void(const TickResult&)> callback);

  /// Snapshot of all counters. Callable any time; may wait for the window
  /// in flight.
  RuntimeStats Stats() const;

  /// Serializes the runtime's recoverable state — the database, the current
  /// tick, ended streams, and every standing query (with direct session
  /// state for the streaming engines) — into a versioned binary snapshot.
  /// Callable while running: it takes the state mutex, so it lands between
  /// windows, never mid-window (the tick callback is a natural place to
  /// call it from — the coordinator invokes callbacks with no locks held).
  /// Batches still buffered in the reorder stage are NOT part of a
  /// checkpoint; producers must resend ticks newer than the checkpoint tick
  /// on restart.
  Result<std::string> Checkpoint() const;

  /// Restores a snapshot produced by Checkpoint() into this runtime. Must
  /// be called before Start(), on a runtime whose database holds the same
  /// *declarations* (schemas, streams with full domains, relations) the
  /// checkpointed one started from — e.g. a CloneDeclarations() clone; the
  /// archived timesteps are replaced by the snapshot's. Registered queries
  /// are restored under their original ids; subsequent ticks produce
  /// results bit-identical to a runtime that was never interrupted.
  Status Restore(std::string_view snapshot);

 private:
  // One whole session owned end to end by one worker for the window (the
  // common case): the owner runs the per-tick protocol W times with no
  // synchronization at all.
  struct OwnedItem {
    StandingQuery* query;
    size_t index;  // registry position == window-buffer column
  };
  // A session too heavy for one worker: its unit ranges run on several
  // workers, synchronized per tick through these atomics (no locks). The
  // range that decrements `remaining` to zero commits the tick, prepares
  // the next one, and opens it by bumping `ready_tick`.
  struct SharedGroup {
    StandingQuery* query = nullptr;
    size_t index = 0;
    uint32_t nranges = 0;
    std::atomic<uint32_t> remaining{0};
    // Highest window tick (1-based) ranges may step; the coordinator arms
    // it to 1 after running the session's first PrepareAdvance.
    std::atomic<uint32_t> ready_tick{0};
  };
  struct SharedRange {
    SharedGroup* group;
    size_t begin;
    size_t end;
  };
  // Per-worker work for one window. `shared` is ordered by ascending group
  // index on every worker — all workers visit split sessions in the same
  // global order, which (with shared-before-owned execution) rules out
  // cross-group waiting cycles.
  struct ShardPlan {
    std::vector<SharedRange> shared;
    std::vector<OwnedItem> owned;
  };
  // One query's slot for one window tick. Written during the window by
  // exactly one thread (the owner, or the committing range of a split
  // session; `ns` alone takes concurrent relaxed adds from ranges), read
  // by the coordinator after the end-of-window barrier.
  struct WindowEntry {
    double prob = 0;
    bool ok = false;
    Status error;
    std::atomic<uint64_t> ns{0};
    WindowEntry() = default;
    // Vector growth only; never copied while a window is in flight.
    WindowEntry(const WindowEntry& o)
        : prob(o.prob), ok(o.ok), error(o.error), ns(o.ns.load()) {}
  };
  // Per-worker scratch: written exclusively by the owning worker during a
  // window, read by the coordinator after the barrier. done_epoch is the
  // per-shard completion flag of the epoch handshake.
  struct ShardScratch {
    uint64_t chains = 0;   // units stepped this window (summed per tick)
    uint64_t busy_ns = 0;  // wall time this worker spent on the window
    std::atomic<uint64_t> done_epoch{0};
  };
  struct ShardCounters {
    uint64_t ticks = 0;
    uint64_t chains = 0;
    LatencyRecorder latency;
  };

  void CoordinatorLoop();
  void ShardLoop(size_t shard);
  // Executes one window of `window` ticks, appending one published
  // snapshot per tick to *out; requires state_mu_ held and watermark
  // coverage through tick_ + window.
  void RunWindow(size_t window,
                 std::vector<std::shared_ptr<const TickResult>>* out);
  // One worker's share of the current window (also the inline path's body).
  void RunWindowShard(size_t shard);
  // Rebuilds the persistent plan; requires state_mu_ held and no window in
  // flight. `measured` switches the cost model from static UnitCost
  // estimates to measured per-session nanoseconds (drift rebalances) and
  // counts owner changes as steals.
  void RebuildPlan(bool measured);

  EventDatabase* db_;
  RuntimeOptions options_;
  size_t num_threads_;
  size_t window_cap_;  // max(1, options_.max_window_ticks)
  IngestQueue queue_;

  // --- state guarded by state_mu_ ---------------------------------------
  mutable std::mutex state_mu_;
  QueryRegistry registry_;
  Watermark watermark_;
  ReorderBuffer reorder_;
  Timestamp tick_ = 0;
  uint64_t ticks_processed_ = 0;
  uint64_t batches_applied_ = 0;
  uint64_t batches_rejected_ = 0;
  Status last_ingest_error_;
  LatencyRecorder tick_latency_;
  // Per-query-class advance latency, indexed by QueryClass enum order.
  std::array<LatencyRecorder, 4> class_latency_;
  uint64_t windows_executed_ = 0;
  // Window sizes, log2 buckets: [1] [2] [3-4] [5-8] [9-16] [17-32] [33-64]
  // and 65+.
  std::array<uint64_t, 8> window_size_hist_{};
  uint64_t steals_ = 0;      // whole sessions moved by drift rebalances
  uint64_t split_placements_ = 0;  // split-group primary-shard moves
  uint64_t rebalances_ = 0;  // drift-triggered plan rebuilds
  uint64_t plan_rebuilds_ = 0;  // all plan rebuilds (registry churn + drift)
  uint64_t last_rebalance_window_ = 0;
  LatencyRecorder barrier_wait_;  // coordinator wait at the window barrier
  uint64_t work_version_ = ~0ULL;  // registry version the plan matches

  // The window plan and buffer: written by the coordinator between windows
  // (under state_mu_), read by workers during one. Publication to the pool
  // happens-before via the work_mu_ handshake; completion happens-before
  // via the per-shard flags and the running-count decrement chain.
  size_t window_size_ = 0;
  std::vector<ShardPlan> shard_plan_;
  std::deque<SharedGroup> shared_groups_;  // stable addresses for the plan
  std::vector<std::vector<WindowEntry>> window_entries_;  // [tick][query]
  std::vector<ShardScratch> shard_scratch_;

  // --- worker pool handshake (work_mu_: sleep/wake only) ------------------
  mutable std::mutex work_mu_;
  std::condition_variable work_cv_;  // coordinator -> pool: new epoch
  std::condition_variable done_cv_;  // last worker -> coordinator
  std::atomic<uint64_t> epoch_{0};
  std::atomic<size_t> shards_running_{0};
  std::atomic<bool> shard_stop_{false};
  std::vector<ShardCounters> shard_counters_;  // merged under work_mu_

  // --- published results (tick_mu_) --------------------------------------
  mutable std::mutex tick_mu_;
  mutable std::condition_variable tick_cv_;
  Timestamp published_tick_ = 0;
  std::shared_ptr<const TickResult> latest_;

  // callback_mu_ guards tick_callback_: SetTickCallback may race the
  // coordinator's per-tick reads, so both sides lock (the coordinator
  // copies the callback out and invokes the copy without the lock).
  mutable std::mutex callback_mu_;
  std::function<void(const TickResult&)> tick_callback_;
  // Tick whose callback the coordinator is currently dispatching. Written
  // and read only on the coordinator thread (Checkpoint checks the thread
  // id before touching it), so it needs no lock: it lets a checkpoint
  // taken from inside the tick-t callback serialize at t even though the
  // sessions already sit at the end of t's window (see Checkpoint()).
  Timestamp callback_tick_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::vector<std::thread> shards_;
  std::thread coordinator_;
};

}  // namespace lahar

#endif  // LAHAR_RUNTIME_EXECUTOR_H_
