#include "runtime/executor.h"

#include <algorithm>
#include <chrono>

namespace lahar {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const double* TickResult::Find(QueryId id) const {
  auto it = std::lower_bound(
      probs.begin(), probs.end(), id,
      [](const std::pair<QueryId, double>& p, QueryId q) { return p.first < q; });
  return it != probs.end() && it->first == id ? &it->second : nullptr;
}

StreamRuntime::StreamRuntime(EventDatabase* db, RuntimeOptions options)
    : db_(db),
      options_(options),
      num_threads_(options.num_threads != 0
                       ? options.num_threads
                       : std::max(1u, std::thread::hardware_concurrency())),
      queue_(options.queue_capacity),
      registry_(db, options.session),
      reorder_(options.reorder_window) {
  tick_ = db_->horizon();
  published_tick_ = tick_;
  for (StreamId id = 0; id < db_->num_streams(); ++id) {
    watermark_.Track(id, db_->stream(id).horizon());
  }
  // Counter slot 0 doubles as the inline path's: with one thread the
  // coordinator steps the work itself but its ticks/chains still count.
  shard_counters_.resize(num_threads_ > 1 ? num_threads_ : 1);
  shard_work_.resize(num_threads_ > 1 ? num_threads_ : 1);
}

StreamRuntime::~StreamRuntime() { Stop(); }

Result<QueryId> StreamRuntime::Register(std::string_view text) {
  std::lock_guard<std::mutex> lock(state_mu_);
  return registry_.Register(text, tick_);
}

Result<QueryId> StreamRuntime::Register(const PreparedQuery& prepared,
                                        std::string_view text) {
  std::lock_guard<std::mutex> lock(state_mu_);
  return registry_.Register(prepared, text, tick_);
}

Status StreamRuntime::Unregister(QueryId id) {
  std::lock_guard<std::mutex> lock(state_mu_);
  return registry_.Unregister(id);
}

bool StreamRuntime::HasQuery(QueryId id) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  for (const auto& q : registry_.queries()) {
    if (q->id == id) return true;
  }
  return false;
}

void StreamRuntime::MarkStreamEnded(StreamId id) {
  std::lock_guard<std::mutex> lock(state_mu_);
  watermark_.MarkEnded(id);
}

void StreamRuntime::SetTickCallback(
    std::function<void(const TickResult&)> callback) {
  std::lock_guard<std::mutex> lock(callback_mu_);
  tick_callback_ = std::move(callback);
}

void StreamRuntime::Start() {
  if (started_.exchange(true)) return;
  running_.store(true);
  if (num_threads_ > 1) {
    for (size_t i = 0; i < num_threads_; ++i) {
      shards_.emplace_back([this, i] { ShardLoop(i); });
    }
  }
  coordinator_ = std::thread([this] { CoordinatorLoop(); });
}

void StreamRuntime::Stop() {
  if (!started_.load() || stop_.exchange(true)) {
    // Either never started or already stopping; still join if needed.
    if (coordinator_.joinable()) coordinator_.join();
    for (std::thread& t : shards_) {
      if (t.joinable()) t.join();
    }
    running_.store(false);
    return;
  }
  queue_.Close();
  if (coordinator_.joinable()) coordinator_.join();
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    shard_stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : shards_) {
    if (t.joinable()) t.join();
  }
  running_.store(false);
  tick_cv_.notify_all();
}

bool StreamRuntime::running() const { return running_.load(); }

Timestamp StreamRuntime::tick() const {
  std::lock_guard<std::mutex> lock(tick_mu_);
  return published_tick_;
}

std::shared_ptr<const TickResult> StreamRuntime::Latest() const {
  std::lock_guard<std::mutex> lock(tick_mu_);
  return latest_;
}

bool StreamRuntime::WaitForTick(Timestamp t,
                                std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(tick_mu_);
  tick_cv_.wait_for(lock, timeout, [&] {
    return published_tick_ >= t || !running_.load();
  });
  return published_tick_ >= t;
}

RuntimeStats StreamRuntime::Stats() const {
  RuntimeStats out;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    out.tick = tick_;
    out.ticks_processed = ticks_processed_;
    out.num_queries = registry_.size();
    out.total_chains = registry_.total_chains();
    out.num_threads = num_threads_;
    out.batches_applied = batches_applied_;
    out.batches_rejected = batches_rejected_;
    out.last_ingest_error =
        last_ingest_error_.ok() ? "" : last_ingest_error_.ToString();
    out.reorder_depth = reorder_.depth();
    out.reorder_window = reorder_.window();
    out.reorder_late_dropped = reorder_.late_dropped();
    out.reorder_merged = reorder_.merged();
    out.tick_latency = tick_latency_.Summarize();
    size_t class_counts[4] = {0, 0, 0, 0};
    for (const auto& q : registry_.queries()) {
      QueryStats qs;
      qs.id = q->id;
      qs.text = q->text;
      qs.query_class = QueryClassName(q->query_class);
      qs.engine = EngineKindName(q->engine);
      qs.exact = q->exact;
      qs.num_chains = q->session->num_units();
      qs.ticks = q->ticks;
      qs.errors = q->errors;
      qs.last_error = q->last_error.ok() ? "" : q->last_error.ToString();
      qs.advance = q->advance_latency.Summarize();
      SafeMemoStats ms = q->session->MemoStats();
      qs.memo_entries = ms.memo_entries;
      qs.memo_hits = ms.memo_hits;
      qs.memo_misses = ms.memo_misses;
      qs.memo_evictions = ms.memo_evictions;
      qs.rows_live = ms.rows_live;
      qs.row_evictions = ms.row_evictions;
      qs.row_rebuilds = ms.row_rebuilds;
      out.safe_memo_entries += ms.memo_entries;
      out.safe_memo_evictions += ms.memo_evictions;
      out.safe_rows_live += ms.rows_live;
      out.safe_row_evictions += ms.row_evictions;
      out.queries.push_back(std::move(qs));
      ++class_counts[static_cast<size_t>(q->query_class)];
    }
    for (QueryClass c : {QueryClass::kRegular, QueryClass::kExtendedRegular,
                         QueryClass::kSafe, QueryClass::kUnsafe}) {
      out.class_counts.emplace_back(QueryClassName(c),
                                    class_counts[static_cast<size_t>(c)]);
      out.class_latency.emplace_back(
          QueryClassName(c),
          class_latency_[static_cast<size_t>(c)].Summarize());
    }
  }
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    for (size_t i = 0; i < shard_counters_.size(); ++i) {
      ShardStats ss;
      ss.shard = i;
      ss.ticks = shard_counters_[i].ticks;
      ss.chains_stepped = shard_counters_[i].chains;
      ss.tick = shard_counters_[i].latency.Summarize();
      out.shards.push_back(std::move(ss));
    }
  }
  out.queue_depth = queue_.size();
  out.queue_capacity = queue_.capacity();
  out.queue_dropped = queue_.dropped();
  out.queue_closed_rejected = queue_.closed_rejected();
  return out;
}

void StreamRuntime::RebuildPartitions() {
  const size_t num_shards = shard_work_.size();
  for (auto& w : shard_work_) w.clear();
  if (registry_.total_chains() == 0 || num_shards == 0) {
    work_version_ = registry_.version();
    return;
  }
  // Deterministic cost-weighted greedy fill: walk queries in registration
  // order, weighting each unit by its session's per-step cost estimate
  // (UnitCost: flat-state size for compiled chains, live map size on the
  // map path, per-grounding-group cost for a safe plan) so a shard holding a few
  // heavy units balances against one holding many light ones. Costs drift
  // as map-path chains grow, but partitions are only rebuilt on registry
  // changes — the estimate is a snapshot, not a bound.
  uint64_t total_cost = 0;
  for (const auto& q : registry_.queries()) {
    total_cost += q->session->StepCost();
  }
  const uint64_t quota = (total_cost + num_shards - 1) / num_shards;
  size_t shard = 0;
  uint64_t filled = 0;
  for (const auto& q : registry_.queries()) {
    const size_t n = q->session->num_units();
    size_t begin = 0;
    for (size_t i = 0; i < n; ++i) {
      if (filled >= quota && shard + 1 < num_shards) {
        if (i > begin) {
          shard_work_[shard].push_back(WorkItem{q.get(), begin, i});
          begin = i;
        }
        ++shard;
        filled = 0;
      }
      filled += q->session->UnitCost(i);
    }
    if (begin < n) {
      shard_work_[shard].push_back(WorkItem{q.get(), begin, n});
    }
  }
  work_version_ = registry_.version();
}

std::shared_ptr<const TickResult> StreamRuntime::RunTick() {
  const uint64_t t0 = NowNs();
  if (work_version_ != registry_.version()) RebuildPartitions();

  // Single-threaded prepare phase: sessions refresh state shared across
  // their units (e.g. sampling symbol tables after mid-stream domain
  // growth) before any shard touches them. Errors latch inside the session
  // and surface at CommitAdvance below.
  for (const auto& q : registry_.queries()) q->session->PrepareAdvance();

  if (num_threads_ > 1) {
    // Fan the chain ranges out to the shard pool and wait for the barrier.
    {
      std::lock_guard<std::mutex> lock(work_mu_);
      ++work_generation_;
      pending_shards_ = num_threads_;
    }
    work_cv_.notify_all();
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      done_cv_.wait(lock, [&] { return pending_shards_ == 0; });
    }
  } else {
    const uint64_t s0 = NowNs();
    uint64_t chains = 0;
    for (const WorkItem& w : shard_work_[0]) {
      const uint64_t q0 = NowNs();
      w.query->session->AdvanceShard(w.begin, w.end);
      w.query->tick_ns.fetch_add(NowNs() - q0, std::memory_order_relaxed);
      chains += w.end - w.begin;
    }
    // The inline path is still "shard 0" for observability: without this,
    // single-threaded runs report no ShardStats and chains_stepped is lost.
    {
      std::lock_guard<std::mutex> lock(work_mu_);
      ShardCounters& c = shard_counters_[0];
      ++c.ticks;
      c.chains += chains;
      c.latency.Record(NowNs() - s0);
    }
  }

  ++tick_;
  ++ticks_processed_;
  auto snapshot = std::make_shared<TickResult>();
  snapshot->t = tick_;
  snapshot->probs.reserve(registry_.size());
  for (const auto& q : registry_.queries()) {
    // Commit in registration order: the combine is bit-identical to a
    // sequential Advance() on each session.
    const uint64_t c0 = NowNs();
    Result<double> p = q->session->CommitAdvance();
    uint64_t ns =
        q->tick_ns.exchange(0, std::memory_order_relaxed) + (NowNs() - c0);
    q->advance_latency.Record(ns);
    class_latency_[static_cast<size_t>(q->query_class)].Record(ns);
    ++q->ticks;
    if (p.ok()) {
      snapshot->probs.emplace_back(q->id, *p);
    } else {
      // An erroring query is omitted from the snapshot but stays registered
      // (its session keeps consuming ticks); the failure is visible through
      // Stats until the caller unregisters it.
      ++q->errors;
      q->last_error = p.status();
    }
  }
  tick_latency_.Record(NowNs() - t0);

  {
    std::lock_guard<std::mutex> lock(tick_mu_);
    published_tick_ = tick_;
    latest_ = snapshot;
  }
  tick_cv_.notify_all();
  return snapshot;
}

void StreamRuntime::CoordinatorLoop() {
  std::vector<std::shared_ptr<const TickResult>> completed;
  while (true) {
    std::optional<TickBatch> batch = queue_.PopWait(options_.poll_interval);
    completed.clear();
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      if (batch.has_value()) {
        // Route through the reorder stage: due updates apply now (as one
        // transaction), ahead-of-time ones are buffered, stale ones are
        // benign duplicates. A rejected batch (out of window, unknown
        // stream, or failed validation) changes nothing — the producer can
        // retry it once the gap is filled.
        const Timestamp t = batch->t;
        std::vector<StreamUpdate> due;
        Status s = reorder_.Offer(*db_, *std::move(batch), &due);
        if (s.ok() && !due.empty()) {
          s = ApplyBatch(db_, TickBatch{t, std::move(due)}, &watermark_);
        }
        if (s.ok()) {
          ++batches_applied_;
        } else {
          ++batches_rejected_;
          last_ingest_error_ = s;
        }
        // Applying a due group advances horizons, which can release
        // buffered successors; drain until nothing more is due. A buffered
        // group that fails validation is discarded (counted, never
        // retried): keeping it would wedge the stream forever.
        TickBatch ready;
        while (reorder_.PopDue(*db_, &ready)) {
          Status ds = ApplyBatch(db_, ready, &watermark_);
          if (!ds.ok()) {
            ++batches_rejected_;
            last_ingest_error_ = ds;
          }
        }
      }
      while (true) {
        Timestamp safe = watermark_.Safe();
        if (safe == Watermark::kUnbounded || safe <= tick_) break;
        completed.push_back(RunTick());
      }
    }
    std::function<void(const TickResult&)> cb;
    {
      std::lock_guard<std::mutex> lock(callback_mu_);
      cb = tick_callback_;
    }
    if (cb) {
      for (const auto& snap : completed) cb(*snap);
    }
    if (stop_.load()) break;
    if (queue_.closed() && queue_.size() == 0) break;  // drained; all ticks ran
  }
  running_.store(false);
  tick_cv_.notify_all();
}

void StreamRuntime::ShardLoop(size_t shard) {
  uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock,
                    [&] { return work_generation_ != seen || shard_stop_; });
      if (shard_stop_) return;
      seen = work_generation_;
    }
    const uint64_t t0 = NowNs();
    uint64_t chains = 0;
    for (const WorkItem& w : shard_work_[shard]) {
      const uint64_t q0 = NowNs();
      w.query->session->AdvanceShard(w.begin, w.end);
      w.query->tick_ns.fetch_add(NowNs() - q0, std::memory_order_relaxed);
      chains += w.end - w.begin;
    }
    {
      std::lock_guard<std::mutex> lock(work_mu_);
      ShardCounters& c = shard_counters_[shard];
      ++c.ticks;
      c.chains += chains;
      c.latency.Record(NowNs() - t0);
      if (--pending_shards_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace lahar
