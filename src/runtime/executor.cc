#include "runtime/executor.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace lahar {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// A split session spends its per-tick waits here: a short pause-spin for
// the common a-few-hundred-ns gap, then yields so an oversubscribed (or
// single-core) machine makes progress instead of burning the quantum.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

inline void SpinWaitAtLeast(const std::atomic<uint32_t>& v, uint32_t target) {
  for (int spins = 0; v.load(std::memory_order_acquire) < target; ++spins) {
    if (spins < 64) {
      CpuRelax();
    } else {
      std::this_thread::yield();
    }
  }
}

// Log2-ish histogram bucket for a window size W >= 1 (see executor.h).
size_t WindowBucket(size_t w) {
  size_t b = 0;
  while (w > 1 && b < 7) {
    w = (w + 1) / 2;
    ++b;
  }
  return b;
}

void PinToCore(std::thread& t, size_t core) {
#ifdef __linux__
  const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(core % ncpu), &set);
  // Best effort: a restricted cpuset just leaves the thread unpinned.
  (void)pthread_setaffinity_np(t.native_handle(), sizeof(set), &set);
#else
  (void)t;
  (void)core;
#endif
}

}  // namespace

const double* TickResult::Find(QueryId id) const {
  auto it = std::lower_bound(
      probs.begin(), probs.end(), id,
      [](const std::pair<QueryId, double>& p, QueryId q) { return p.first < q; });
  return it != probs.end() && it->first == id ? &it->second : nullptr;
}

StreamRuntime::StreamRuntime(EventDatabase* db, RuntimeOptions options)
    : db_(db),
      options_(options),
      num_threads_(options.num_threads != 0
                       ? options.num_threads
                       : std::max(1u, std::thread::hardware_concurrency())),
      window_cap_(std::max<size_t>(1, options.max_window_ticks)),
      queue_(options.queue_capacity),
      // Shared units record one frontier probability per tick; delegated
      // sessions may lag a whole window behind the unit, so the ring must
      // cover window_cap_ ticks (plus slack for the arming tick).
      registry_(db, options.session,
                [&] {
                  SharingOptions s = options.sharing;
                  if (s.frontier_history < window_cap_ + 2) {
                    s.frontier_history = window_cap_ + 2;
                  }
                  return s;
                }()),
      reorder_(options.reorder_window) {
  tick_ = db_->horizon();
  published_tick_ = tick_;
  for (StreamId id = 0; id < db_->num_streams(); ++id) {
    watermark_.Track(id, db_->stream(id).horizon());
  }
  // Slot 0 doubles as the inline path's: with one thread the coordinator
  // runs the window itself but its ticks/chains still count.
  const size_t nshards = num_threads_ > 1 ? num_threads_ : 1;
  shard_counters_.resize(nshards);
  shard_plan_.resize(nshards);
  shard_scratch_ = std::vector<ShardScratch>(nshards);
}

StreamRuntime::~StreamRuntime() { Stop(); }

Result<QueryId> StreamRuntime::Register(std::string_view text) {
  std::lock_guard<std::mutex> lock(state_mu_);
  return registry_.Register(text, tick_);
}

Result<QueryId> StreamRuntime::Register(const PreparedQuery& prepared,
                                        std::string_view text) {
  std::lock_guard<std::mutex> lock(state_mu_);
  return registry_.Register(prepared, text, tick_);
}

Status StreamRuntime::Unregister(QueryId id) {
  std::lock_guard<std::mutex> lock(state_mu_);
  return registry_.Unregister(id);
}

bool StreamRuntime::HasQuery(QueryId id) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  for (const auto& q : registry_.queries()) {
    if (q->id == id) return true;
  }
  return false;
}

void StreamRuntime::MarkStreamEnded(StreamId id) {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    watermark_.MarkEnded(id);
  }
  // The watermark may have advanced past ticks the ended stream was
  // gating; kick the coordinator out of its queue wait to re-check.
  queue_.Wake();
}

void StreamRuntime::SetTickCallback(
    std::function<void(const TickResult&)> callback) {
  std::lock_guard<std::mutex> lock(callback_mu_);
  tick_callback_ = std::move(callback);
}

void StreamRuntime::Start() {
  if (started_.exchange(true)) return;
  running_.store(true);
  if (num_threads_ > 1) {
    for (size_t i = 0; i < num_threads_; ++i) {
      shards_.emplace_back([this, i] { ShardLoop(i); });
      if (options_.pin_threads) PinToCore(shards_.back(), i);
    }
  }
  coordinator_ = std::thread([this] { CoordinatorLoop(); });
  // First-pass kick: a restored runtime can hold archived ticks past its
  // checkpoint tick (mid-window checkpoints save the full archive); run
  // them now instead of waiting for the first push.
  queue_.Wake();
}

void StreamRuntime::Stop() {
  queue_.Close();  // wakes a coordinator parked in DrainWait
  stop_.store(true);
  if (coordinator_.joinable()) coordinator_.join();
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    shard_stop_.store(true);
  }
  work_cv_.notify_all();
  for (std::thread& t : shards_) {
    if (t.joinable()) t.join();
  }
  // Storing the flag under tick_mu_ closes the WaitForTick race: a waiter
  // between its predicate check and its sleep cannot miss the wake and
  // sleep out its full timeout against a stopped runtime.
  {
    std::lock_guard<std::mutex> lock(tick_mu_);
    running_.store(false);
  }
  tick_cv_.notify_all();
}

bool StreamRuntime::running() const { return running_.load(); }

Timestamp StreamRuntime::tick() const {
  std::lock_guard<std::mutex> lock(tick_mu_);
  return published_tick_;
}

std::shared_ptr<const TickResult> StreamRuntime::Latest() const {
  std::lock_guard<std::mutex> lock(tick_mu_);
  return latest_;
}

bool StreamRuntime::WaitForTick(Timestamp t,
                                std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(tick_mu_);
  tick_cv_.wait_for(lock, timeout, [&] {
    return published_tick_ >= t || !running_.load();
  });
  return published_tick_ >= t;
}

RuntimeStats StreamRuntime::Stats() const {
  RuntimeStats out;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    out.tick = tick_;
    out.ticks_processed = ticks_processed_;
    out.num_queries = registry_.size();
    out.total_chains = registry_.total_chains();
    out.num_threads = num_threads_;
    out.batches_applied = batches_applied_;
    out.batches_rejected = batches_rejected_;
    out.last_ingest_error =
        last_ingest_error_.ok() ? "" : last_ingest_error_.ToString();
    out.reorder_depth = reorder_.depth();
    out.reorder_window = reorder_.window();
    out.reorder_late_dropped = reorder_.late_dropped();
    out.reorder_merged = reorder_.merged();
    out.tick_latency = tick_latency_.Summarize();
    out.windows_executed = windows_executed_;
    out.max_window_ticks = window_cap_;
    out.window_size_hist.assign(window_size_hist_.begin(),
                                window_size_hist_.end());
    out.steals = steals_;
    out.split_placements = split_placements_;
    out.rebalances = rebalances_;
    out.plan_rebuilds = plan_rebuilds_;
    out.barrier_wait = barrier_wait_.Summarize();
    out.sharing_groups = registry_.num_sharing_groups();
    out.shared_steps_executed = registry_.shared_steps_executed();
    out.shared_steps_saved = registry_.shared_steps_saved();
    out.prepared_dedup_hits = registry_.prepared_dedup_hits();
    KernelCache::Stats ks = registry_.shared_kernels().stats();
    out.kernel_cache_hits = ks.hits;
    out.kernel_cache_misses = ks.misses;
    out.kernel_cache_entries = registry_.shared_kernels().size();
    out.sharing_fanout_hist.assign(8, 0);
    for (size_t readers : registry_.SharingFanouts()) {
      ++out.sharing_fanout_hist[WindowBucket(readers)];
    }
    size_t class_counts[4] = {0, 0, 0, 0};
    for (const auto& q : registry_.queries()) {
      QueryStats qs;
      qs.id = q->id;
      qs.text = q->text;
      qs.query_class = QueryClassName(q->query_class);
      qs.engine = EngineKindName(q->engine);
      qs.exact = q->exact;
      qs.num_chains = q->session->num_units();
      qs.ticks = q->ticks;
      qs.errors = q->errors;
      qs.last_error = q->last_error.ok() ? "" : q->last_error.ToString();
      qs.advance = q->advance_latency.Summarize();
      SafeMemoStats ms = q->session->MemoStats();
      qs.memo_entries = ms.memo_entries;
      qs.memo_hits = ms.memo_hits;
      qs.memo_misses = ms.memo_misses;
      qs.memo_evictions = ms.memo_evictions;
      qs.rows_live = ms.rows_live;
      qs.row_evictions = ms.row_evictions;
      qs.row_rebuilds = ms.row_rebuilds;
      qs.kernel_hits = q->kernel_hits;
      qs.kernel_misses = q->kernel_misses;
      qs.shared_units = q->session->NumDelegatedUnits();
      qs.simd_units = q->session->NumSimdUnits();
      qs.stripe_steps = q->session->StripeSteps();
      qs.stripe_fallbacks = q->session->StripeFallbacks();
      out.simd_units += qs.simd_units;
      out.stripe_steps += qs.stripe_steps;
      out.stripe_fallbacks += qs.stripe_fallbacks;
      SessionResidency res = q->session->Residency();
      qs.bytes_resident = res.bytes_resident;
      qs.resident_units = res.resident_units;
      qs.stub_units = res.stub_units;
      qs.spilled_units = res.spilled_units;
      qs.promotions = res.promotions;
      qs.spills = res.spills;
      qs.rehydrations = res.rehydrations;
      out.bytes_resident += res.bytes_resident;
      out.resident_units += res.resident_units;
      out.stub_units += res.stub_units;
      out.spilled_units += res.spilled_units;
      out.promotions += res.promotions;
      out.spills += res.spills;
      out.rehydrations += res.rehydrations;
      out.safe_memo_entries += ms.memo_entries;
      out.safe_memo_evictions += ms.memo_evictions;
      out.safe_rows_live += ms.rows_live;
      out.safe_row_evictions += ms.row_evictions;
      out.queries.push_back(std::move(qs));
      ++class_counts[static_cast<size_t>(q->query_class)];
    }
    for (QueryClass c : {QueryClass::kRegular, QueryClass::kExtendedRegular,
                         QueryClass::kSafe, QueryClass::kUnsafe}) {
      out.class_counts.emplace_back(QueryClassName(c),
                                    class_counts[static_cast<size_t>(c)]);
      out.class_latency.emplace_back(
          QueryClassName(c),
          class_latency_[static_cast<size_t>(c)].Summarize());
    }
  }
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    for (size_t i = 0; i < shard_counters_.size(); ++i) {
      ShardStats ss;
      ss.shard = i;
      ss.ticks = shard_counters_[i].ticks;
      ss.chains_stepped = shard_counters_[i].chains;
      ss.tick = shard_counters_[i].latency.Summarize();
      out.shards.push_back(std::move(ss));
    }
  }
  out.queue_depth = queue_.size();
  out.queue_capacity = queue_.capacity();
  out.queue_dropped = queue_.dropped();
  out.queue_closed_rejected = queue_.closed_rejected();
  return out;
}

void StreamRuntime::RebuildPlan(bool measured) {
  ++plan_rebuilds_;
  const size_t nshards = shard_plan_.size();
  for (ShardPlan& p : shard_plan_) {
    p.shared.clear();
    p.owned.clear();
  }
  shared_groups_.clear();
  const size_t nq = registry_.size();
  // The window buffer follows the registry: one column per query, one row
  // per possible window tick.
  window_entries_.resize(window_cap_);
  for (auto& row : window_entries_) {
    row.resize(nq);
  }
  work_version_ = registry_.version();
  if (nq == 0) return;

  // Cost model: static UnitCost estimates on registry-change rebuilds
  // (deterministic before anything has run), measured per-tick nanoseconds
  // on drift rebalances (every session has committed at least one window
  // by then, so every cost is a real measurement).
  struct Item {
    StandingQuery* q;
    size_t index;
    uint64_t cost;
  };
  std::vector<Item> items;
  items.reserve(nq);
  uint64_t total_cost = 0;
  {
    size_t index = 0;
    for (const auto& q : registry_.queries()) {
      uint64_t cost = measured ? q->measured_ns : q->session->StepCost();
      if (cost == 0) cost = 1;
      items.push_back(Item{q.get(), index++, cost});
      total_cost += cost;
    }
  }
  // Longest-processing-time greedy: heaviest first onto the lightest
  // shard. Ties break on registry order / lowest shard, so static rebuilds
  // are deterministic.
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) { return a.cost > b.cost; });
  std::vector<uint64_t> load(nshards, 0);
  const uint64_t quota = (total_cost + nshards - 1) / nshards;
  auto lightest = [&](size_t skip_used, const std::vector<size_t>& used) {
    size_t best = SIZE_MAX;
    for (size_t s = 0; s < nshards; ++s) {
      if (skip_used &&
          std::find(used.begin(), used.end(), s) != used.end()) {
        continue;
      }
      if (best == SIZE_MAX || load[s] < load[best]) best = s;
    }
    return best;
  };
  const std::vector<size_t> kNone;
  for (const Item& item : items) {
    const size_t nunits = item.q->session->num_units();
    // A session heavier than ~1.5x the per-shard quota cannot be balanced
    // whole; split its unit range across (up to) as many workers as its
    // cost spans quotas. The ranges must land on distinct shards — two
    // ranges of one group on one worker would wait on themselves.
    const bool split = nshards > 1 && nunits >= 2 &&
                       item.cost > quota + quota / 2;
    if (!split) {
      const size_t s = lightest(false, kNone);
      shard_plan_[s].owned.push_back(OwnedItem{item.q, item.index});
      load[s] += item.cost;
      if (measured && item.q->home_shard != s) ++steals_;
      item.q->home_shard = s;
      continue;
    }
    size_t nranges = std::min<uint64_t>(
        nshards, (item.cost + quota - 1) / std::max<uint64_t>(1, quota));
    nranges = std::min(nranges, nunits);
    if (nranges < 2) {
      const size_t s = lightest(false, kNone);
      shard_plan_[s].owned.push_back(OwnedItem{item.q, item.index});
      load[s] += item.cost;
      if (measured && item.q->home_shard != s) ++steals_;
      item.q->home_shard = s;
      continue;
    }
    // Contiguous unit ranges balanced by UnitCost (measured cost is
    // per-session; the per-unit proportions still come from the static
    // estimate).
    uint64_t unit_total = 0;
    for (size_t i = 0; i < nunits; ++i) unit_total += item.q->session->UnitCost(i);
    const uint64_t range_quota =
        std::max<uint64_t>(1, (unit_total + nranges - 1) / nranges);
    shared_groups_.emplace_back();
    SharedGroup& g = shared_groups_.back();
    g.query = item.q;
    g.index = item.index;
    // Cuts land only on shard-group boundaries (UnitGroupEnd): splitting a
    // lane-interleaved SIMD stripe across shards would demote every lane to
    // the per-chain fallback step, so a rebalance must never shear one.
    std::vector<std::pair<size_t, size_t>> ranges;  // [begin, end)
    size_t begin = 0;
    uint64_t filled = 0;
    for (size_t i = 0; i < nunits;) {
      size_t ge = item.q->session->UnitGroupEnd(i);
      if (ge <= i || ge > nunits) ge = i + 1;
      if (filled >= range_quota && ranges.size() + 1 < nranges && i > begin) {
        ranges.emplace_back(begin, i);
        begin = i;
        filled = 0;
      }
      for (size_t u = i; u < ge; ++u) {
        filled += item.q->session->UnitCost(u);
      }
      i = ge;
    }
    ranges.emplace_back(begin, nunits);
    g.nranges = static_cast<uint32_t>(ranges.size());
    std::vector<size_t> used;
    for (const auto& [b, e] : ranges) {
      const size_t s = lightest(true, used);
      used.push_back(s);
      shard_plan_[s].shared.push_back(SharedRange{&g, b, e});
      // Charge the shard this range's share of the session cost.
      uint64_t range_cost = 0;
      for (size_t i = b; i < e; ++i) range_cost += item.q->session->UnitCost(i);
      load[s] += unit_total > 0
                     ? item.cost * range_cost / unit_total
                     : item.cost / ranges.size();
    }
    // A split group's primary shard moves whenever the range partition
    // shifts, which is a deliberate placement decision, not a drift steal —
    // count it separately so `steals` keeps measuring rebalance churn.
    if (measured && item.q->home_shard != used[0]) ++split_placements_;
    item.q->home_shard = used[0];
  }
  // Every worker visits split sessions in the same global order (see
  // ShardPlan in executor.h).
  for (ShardPlan& p : shard_plan_) {
    std::sort(p.shared.begin(), p.shared.end(),
              [](const SharedRange& a, const SharedRange& b) {
                return a.group->index < b.group->index;
              });
  }
}

void StreamRuntime::RunWindowShard(size_t shard) {
  const size_t W = window_size_;
  ShardPlan& plan = shard_plan_[shard];
  ShardScratch& scratch = shard_scratch_[shard];
  scratch.chains = 0;
  const uint64_t w0 = NowNs();
  // Split sessions first, in global group order (deadlock freedom: when a
  // worker reaches group g, every group it holds with a smaller index is
  // done, so the participants of the smallest unfinished group are all
  // either at it or unblocked on their way to it).
  for (const SharedRange& r : plan.shared) {
    SharedGroup* g = r.group;
    QuerySession* session = g->query->session.get();
    for (uint32_t k = 1; k <= W; ++k) {
      SpinWaitAtLeast(g->ready_tick, k);
      const uint64_t a0 = NowNs();
      session->AdvanceShard(r.begin, r.end);
      scratch.chains += r.end - r.begin;
      WindowEntry& e = window_entries_[k - 1][g->index];
      e.ns.fetch_add(NowNs() - a0, std::memory_order_relaxed);
      if (g->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last range in: this thread owns the session until it reopens the
        // group, so committing here is the same single-threaded commit the
        // sequential path runs.
        const uint64_t c0 = NowNs();
        Result<double> p = session->CommitAdvance();
        if (p.ok()) {
          e.prob = *p;
          e.ok = true;
        } else {
          e.error = p.status();
        }
        if (k < W) session->PrepareAdvance();
        e.ns.fetch_add(NowNs() - c0, std::memory_order_relaxed);
        g->remaining.store(g->nranges, std::memory_order_relaxed);
        g->ready_tick.store(k + 1, std::memory_order_release);
      }
    }
  }
  // Owned sessions: the whole window with zero synchronization. Each tick
  // is exactly the sequential Advance() protocol, so W ticks here are
  // bit-identical to W per-tick barriers.
  for (const OwnedItem& o : plan.owned) {
    QuerySession* session = o.query->session.get();
    const size_t n = session->num_units();
    for (size_t k = 0; k < W; ++k) {
      const uint64_t a0 = NowNs();
      session->PrepareAdvance();
      if (n > 0) session->AdvanceShard(0, n);
      Result<double> p = session->CommitAdvance();
      WindowEntry& e = window_entries_[k][o.index];
      if (p.ok()) {
        e.prob = *p;
        e.ok = true;
      } else {
        e.error = p.status();
      }
      e.ns.store(NowNs() - a0, std::memory_order_relaxed);
      scratch.chains += n;
    }
  }
  scratch.busy_ns = NowNs() - w0;
}

void StreamRuntime::RunWindow(
    size_t window, std::vector<std::shared_ptr<const TickResult>>* out) {
  const uint64_t t0 = NowNs();
  if (work_version_ != registry_.version()) RebuildPlan(/*measured=*/false);
  const size_t W = window_size_ = window;
  const size_t nq = registry_.size();
  // Shared-unit phase (docs/SHARING.md): every cross-query shared unit
  // steps through the whole window up front, on this thread; delegated
  // chains then read the recorded frontier instead of stepping. The epoch
  // bump below publishes the frontiers to the worker pool.
  registry_.AdvanceSharedUnits(tick_ + W);
  for (size_t k = 0; k < W; ++k) {
    for (WindowEntry& e : window_entries_[k]) {
      e.ok = false;
      e.error = Status::OK();
      e.ns.store(0, std::memory_order_relaxed);
    }
  }
  // Arm split sessions: run their first PrepareAdvance here (no range may
  // be in flight — none is) and open tick 1.
  for (SharedGroup& g : shared_groups_) {
    g.remaining.store(g.nranges, std::memory_order_relaxed);
    g.query->session->PrepareAdvance();
    g.ready_tick.store(1, std::memory_order_release);
  }

  if (num_threads_ > 1) {
    for (ShardScratch& s : shard_scratch_) {
      s.chains = 0;
      s.busy_ns = 0;
    }
    shards_running_.store(num_threads_, std::memory_order_relaxed);
    {
      // The epoch bump is the work publication: everything written above
      // happens-before the workers' wake-up through work_mu_.
      std::lock_guard<std::mutex> lock(work_mu_);
      epoch_.fetch_add(1, std::memory_order_release);
    }
    work_cv_.notify_all();
    const uint64_t b0 = NowNs();
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      done_cv_.wait(lock, [&] {
        return shards_running_.load(std::memory_order_acquire) == 0;
      });
    }
    barrier_wait_.Record(NowNs() - b0);
  } else {
    RunWindowShard(0);
  }
  const uint64_t window_ns = NowNs() - t0;

  // Merge worker scratch into the long-lived shard counters (Stats() reads
  // them under work_mu_).
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    for (size_t s = 0; s < shard_counters_.size(); ++s) {
      ShardCounters& c = shard_counters_[s];
      c.ticks += W;
      c.chains += shard_scratch_[s].chains;
      const uint64_t per_tick = shard_scratch_[s].busy_ns / W;
      for (size_t k = 0; k < W; ++k) c.latency.Record(per_tick);
    }
  }

  // Harvest the window buffer: publish one immutable TickResult per tick,
  // in order, and fold the per-(tick, query) timings into the recorders.
  const auto& queries = registry_.queries();
  for (size_t k = 0; k < W; ++k) {
    ++tick_;
    ++ticks_processed_;
    auto snapshot = std::make_shared<TickResult>();
    snapshot->t = tick_;
    snapshot->probs.reserve(nq);
    for (size_t i = 0; i < nq; ++i) {
      StandingQuery* q = queries[i].get();
      WindowEntry& e = window_entries_[k][i];
      const uint64_t ns = e.ns.load(std::memory_order_relaxed);
      q->advance_latency.Record(ns);
      class_latency_[static_cast<size_t>(q->query_class)].Record(ns);
      ++q->ticks;
      // Half-life-one EWMA of the per-tick cost, for drift rebalances.
      q->measured_ns = q->measured_ns > 0 ? (q->measured_ns + ns) / 2 : ns;
      if (e.ok) {
        snapshot->probs.emplace_back(q->id, e.prob);
      } else {
        // An erroring query is omitted from the snapshot but stays
        // registered (its session keeps consuming ticks); the failure is
        // visible through Stats until the caller unregisters it.
        ++q->errors;
        q->last_error = e.error;
      }
    }
    tick_latency_.Record(window_ns / W);
    {
      std::lock_guard<std::mutex> lock(tick_mu_);
      published_tick_ = tick_;
      latest_ = snapshot;
    }
    tick_cv_.notify_all();
    out->push_back(std::move(snapshot));
  }

  ++windows_executed_;
  ++window_size_hist_[WindowBucket(W)];

  // Drift check: when one worker's measured window cost runs >2x the mean,
  // the static estimates have gone stale — rebuild the plan from measured
  // per-session costs. The cooldown and the absolute floor keep noise on
  // near-empty windows from thrashing the plan.
  if (num_threads_ > 1 && nq > 1 &&
      windows_executed_ >= last_rebalance_window_ + 4) {
    uint64_t sum = 0, max_busy = 0;
    for (const ShardScratch& s : shard_scratch_) {
      sum += s.busy_ns;
      max_busy = std::max(max_busy, s.busy_ns);
    }
    const uint64_t mean = sum / shard_scratch_.size();
    if (sum > 100'000 && mean > 0 && max_busy > 2 * mean) {
      RebuildPlan(/*measured=*/true);
      ++rebalances_;
      last_rebalance_window_ = windows_executed_;
    }
  }
}

void StreamRuntime::CoordinatorLoop() {
  std::vector<TickBatch> drained;
  std::vector<std::shared_ptr<const TickResult>> completed;
  while (true) {
    drained.clear();
    // Blocks until producers push, the queue closes, or an external state
    // change (MarkStreamEnded) kicks us — no polling interval, no idle
    // wakeups.
    queue_.DrainWait(&drained);
    completed.clear();
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      for (TickBatch& batch : drained) {
        // Route through the reorder stage: due updates apply now (as one
        // transaction), ahead-of-time ones are buffered, stale ones are
        // benign duplicates. A rejected batch (out of window, unknown
        // stream, or failed validation) changes nothing — the producer can
        // retry it once the gap is filled.
        const Timestamp t = batch.t;
        std::vector<StreamUpdate> due;
        Status s = reorder_.Offer(*db_, std::move(batch), &due);
        if (s.ok() && !due.empty()) {
          s = ApplyBatch(db_, TickBatch{t, std::move(due)}, &watermark_);
        }
        if (s.ok()) {
          ++batches_applied_;
        } else {
          ++batches_rejected_;
          last_ingest_error_ = s;
        }
        // Applying a due group advances horizons, which can release
        // buffered successors; drain until nothing more is due. A buffered
        // group that fails validation is discarded (counted, never
        // retried): keeping it would wedge the stream forever.
        TickBatch ready;
        while (reorder_.PopDue(*db_, &ready)) {
          Status ds = ApplyBatch(db_, ready, &watermark_);
          if (!ds.ok()) {
            ++batches_rejected_;
            last_ingest_error_ = ds;
          }
        }
      }
      // Execute everything the watermark covers, max_window_ticks at a
      // time. Draining the queue first is what makes windows wide: a burst
      // of B covered ticks costs ceil(B / W) barriers instead of B.
      while (true) {
        const Timestamp safe = watermark_.Safe();
        if (safe == Watermark::kUnbounded || safe <= tick_) break;
        const size_t window =
            std::min<size_t>(safe - tick_, window_cap_);
        RunWindow(window, &completed);
      }
    }
    std::function<void(const TickResult&)> cb;
    {
      std::lock_guard<std::mutex> lock(callback_mu_);
      cb = tick_callback_;
    }
    if (cb) {
      for (const auto& snap : completed) {
        callback_tick_ = snap->t;
        cb(*snap);
      }
    }
    if (stop_.load()) break;
    if (queue_.closed() && queue_.size() == 0) break;  // drained; all ticks ran
  }
  {
    std::lock_guard<std::mutex> lock(tick_mu_);
    running_.store(false);
  }
  tick_cv_.notify_all();
}

void StreamRuntime::ShardLoop(size_t shard) {
  uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [&] {
        return epoch_.load(std::memory_order_relaxed) != seen ||
               shard_stop_.load(std::memory_order_relaxed);
      });
      if (shard_stop_.load(std::memory_order_relaxed)) return;
      seen = epoch_.load(std::memory_order_acquire);
    }
    RunWindowShard(shard);
    // Completion publication: flag first (per-shard), then the running
    // count; the last worker's decrement releases the whole window's
    // writes to the coordinator, and the empty critical section makes the
    // notify visible to a coordinator between predicate check and sleep.
    shard_scratch_[shard].done_epoch.store(seen, std::memory_order_release);
    if (shards_running_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      { std::lock_guard<std::mutex> lock(work_mu_); }
      done_cv_.notify_all();
    }
  }
}

}  // namespace lahar
