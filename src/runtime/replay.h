// Replay helpers: turn an archived EventDatabase into a live feed for the
// streaming runtime. CloneDeclarations copies the *shape* of a database
// (interner, schemas, relations, streams with fully interned domains but no
// data); ExtractBatches slices its contents into per-timestep TickBatches.
// Replaying the batches into the clone reproduces the archive bit-for-bit,
// which is what makes "runtime results == sequential replay == archived
// evaluation" a testable identity (tests/runtime_stress_test.cc).
#ifndef LAHAR_RUNTIME_REPLAY_H_
#define LAHAR_RUNTIME_REPLAY_H_

#include <memory>
#include <vector>

#include "runtime/ingest.h"

namespace lahar {

/// Clones schemas, relations, and stream declarations (type, key, domain in
/// interning order) of `src` into a fresh database with horizon 0. Symbol
/// ids are preserved by re-interning in id order, so queries prepared
/// against the clone classify identically.
Result<std::unique_ptr<EventDatabase>> CloneDeclarations(
    const EventDatabase& src);

/// The TickBatch covering timestep `t` of every stream in `src`: marginals
/// for independent streams (certain-bottom when unset), initial marginal or
/// CPT for Markovian ones. Streams whose horizon ended before `t` are
/// padded so the watermark keeps moving: independent streams get a
/// certain-bottom marginal (bit-identical to the engines' own ended-stream
/// handling), Markovian ones an identity CPT, which *holds the last value*
/// rather than ending the stream — prefer MarkStreamEnded when that
/// distinction matters (sim workloads share one horizon, so it rarely
/// does).
Result<TickBatch> BatchForTick(const EventDatabase& src, Timestamp t);

/// All batches for t = 1..src.horizon().
Result<std::vector<TickBatch>> ExtractBatches(const EventDatabase& src);

}  // namespace lahar

#endif  // LAHAR_RUNTIME_REPLAY_H_
