#include "runtime/replay.h"

#include <string>

namespace lahar {

Result<std::unique_ptr<EventDatabase>> CloneDeclarations(
    const EventDatabase& src) {
  auto dst = std::make_unique<EventDatabase>();
  // Re-intern every symbol in id order so SymbolIds transfer verbatim.
  for (SymbolId id = 0; id < src.interner().size(); ++id) {
    SymbolId got = dst->interner().Intern(src.interner().Name(id));
    if (got != id) {
      return Status::Internal("interner clone produced id " +
                              std::to_string(got) + " for " +
                              std::to_string(id));
    }
  }
  for (const auto& [type, schema] : src.schemas()) {
    (void)type;
    LAHAR_RETURN_NOT_OK(dst->DeclareSchema(schema));
  }
  for (const auto& [name, rel] : src.relations()) {
    LAHAR_ASSIGN_OR_RETURN(
        Relation * cloned,
        dst->DeclareRelation(src.interner().Name(name), rel->arity()));
    for (const ValueTuple& t : rel->tuples()) {
      LAHAR_RETURN_NOT_OK(cloned->Insert(t));
    }
  }
  for (StreamId id = 0; id < src.num_streams(); ++id) {
    const Stream& s = src.stream(id);
    Stream empty(s.type(), s.key(), s.num_value_attrs(), /*horizon=*/0,
                 s.markovian());
    // Domains are final at session creation, so intern the full domain in
    // the source's order (index 0 is bottom in both).
    for (DomainIndex d = 1; d < s.domain_size(); ++d) {
      empty.InternTuple(s.TupleOf(d));
    }
    LAHAR_ASSIGN_OR_RETURN(StreamId got, dst->AddStream(std::move(empty)));
    if (got != id) {
      return Status::Internal("stream clone produced id " +
                              std::to_string(got));
    }
  }
  return dst;
}

Result<TickBatch> BatchForTick(const EventDatabase& src, Timestamp t) {
  if (t < 1) return Status::OutOfRange("ticks start at 1");
  TickBatch batch;
  batch.t = t;
  for (StreamId id = 0; id < src.num_streams(); ++id) {
    const Stream& s = src.stream(id);
    StreamUpdate u;
    u.stream = id;
    if (s.markovian()) {
      if (t == 1) {
        u.marginal = s.horizon() >= 1 ? s.MarginalAt(1)
                                      : std::vector<double>{1.0};
      } else if (t <= s.horizon()) {
        u.cpt = s.CptAt(t - 1);
      } else {
        // Ended stream: identity CPT holds the last value so the watermark
        // keeps moving (see header caveat).
        Matrix identity(s.domain_size(), s.domain_size(), 0.0);
        for (size_t d = 0; d < s.domain_size(); ++d) identity.At(d, d) = 1.0;
        u.cpt = std::move(identity);
      }
    } else {
      if (t <= s.horizon() && !s.MarginalAt(t).empty()) {
        u.marginal = s.MarginalAt(t);
      } else {
        // Unset or past-the-end timestep: certain bottom.
        u.marginal.assign(s.domain_size(), 0.0);
        u.marginal[kBottom] = 1.0;
      }
    }
    batch.updates.push_back(std::move(u));
  }
  return batch;
}

Result<std::vector<TickBatch>> ExtractBatches(const EventDatabase& src) {
  std::vector<TickBatch> out;
  out.reserve(src.horizon());
  for (Timestamp t = 1; t <= src.horizon(); ++t) {
    LAHAR_ASSIGN_OR_RETURN(TickBatch batch, BatchForTick(src, t));
    out.push_back(std::move(batch));
  }
  return out;
}

}  // namespace lahar
