// Standing-query lifecycle for the streaming runtime: register (prepare →
// classify → route to a QuerySession for the query's class → catch it up to
// the current tick), look up, and unregister by QueryId. Every query class
// is servable (see engine/session.h); with sampling fallback disabled,
// rejections carry the class in the kQueryClassPayload status payload.
//
// The registry is not internally synchronized: StreamRuntime guards every
// call with its state mutex, which is exactly what makes add/remove "hot" —
// it happens between ticks, never during one.
#ifndef LAHAR_RUNTIME_REGISTRY_H_
#define LAHAR_RUNTIME_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/session.h"
#include "runtime/stats.h"

namespace lahar {

/// \brief One registered standing query and its runtime bookkeeping.
struct StandingQuery {
  QueryId id = 0;
  std::string text;
  QueryClass query_class = QueryClass::kRegular;
  EngineKind engine = EngineKind::kRegular;
  bool exact = true;
  std::unique_ptr<QuerySession> session;

  // Coordinator-only window bookkeeping (harvested after the end-of-window
  // barrier, never touched by shard threads): the measured per-tick cost in
  // nanoseconds (a half-life-one EWMA) drives drift-triggered work
  // stealing, and home_shard remembers the last plan's owner so a
  // rebalance can count how many sessions actually moved.
  uint64_t measured_ns = 0;
  size_t home_shard = 0;
  uint64_t ticks = 0;
  uint64_t errors = 0;       ///< ticks whose CommitAdvance failed
  Status last_error;         ///< most recent CommitAdvance failure
  LatencyRecorder advance_latency;
};

/// \brief Registry of standing queries over one database.
class QueryRegistry {
 public:
  explicit QueryRegistry(EventDatabase* db, LaharOptions options = {})
      : db_(db), options_(options) {}

  /// Parses, classifies, and registers `text`, routing it to the session
  /// implementation for its class (streaming kernels, incremental safe
  /// plan, or sampling). The new session is caught up to `tick` by
  /// replaying the database's stored prefix, so it joins the next tick in
  /// lockstep with the existing queries.
  Result<QueryId> Register(std::string_view text, Timestamp tick);

  /// Same, from an already-prepared query (no reparse/reclassify) — the
  /// batch-registration path.
  Result<QueryId> Register(const PreparedQuery& prepared,
                           std::string_view text, Timestamp tick);

  /// Removes a query. NotFound if the id is unknown.
  Status Unregister(QueryId id);

  /// Checkpoint restore: re-registers a query under its *original* id. The
  /// session is rebuilt from `text`; if `state` is non-null and the session
  /// serializes its state, the saved state is loaded directly, otherwise
  /// the session catches up by replaying the database prefix to `tick` —
  /// bit-identical either way. Ids are preserved and next_id_ advances past
  /// them, so later registrations never collide with restored queries.
  Status RestoreQuery(QueryId id, std::string_view text, Timestamp tick,
                      serial::Reader* state);

  StandingQuery* Find(QueryId id);

  /// Queries in registration order — the executor's combine order, which
  /// makes per-tick results deterministic.
  const std::vector<std::unique_ptr<StandingQuery>>& queries() const {
    return queries_;
  }

  size_t size() const { return queries_.size(); }

  /// Total shardable units across all sessions (chains for the streaming
  /// engines, samples for sampling sessions, 1 per safe plan).
  size_t total_chains() const;

  /// Bumped on every Register/Unregister; the executor rebuilds its shard
  /// partitions when it observes a new version.
  uint64_t version() const { return version_; }

 private:
  EventDatabase* db_;
  LaharOptions options_;
  std::vector<std::unique_ptr<StandingQuery>> queries_;
  QueryId next_id_ = 1;
  uint64_t version_ = 0;
};

}  // namespace lahar

#endif  // LAHAR_RUNTIME_REGISTRY_H_
