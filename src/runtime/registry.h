// Standing-query lifecycle for the streaming runtime: register (prepare →
// classify → reject non-streamable with UnsafeQuery → create the session →
// catch it up to the current tick), look up, and unregister by QueryId.
//
// The registry is not internally synchronized: StreamRuntime guards every
// call with its state mutex, which is exactly what makes add/remove "hot" —
// it happens between ticks, never during one.
#ifndef LAHAR_RUNTIME_REGISTRY_H_
#define LAHAR_RUNTIME_REGISTRY_H_

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/streaming.h"
#include "runtime/stats.h"

namespace lahar {

/// \brief One registered standing query and its runtime bookkeeping.
struct StandingQuery {
  QueryId id = 0;
  std::string text;
  QueryClass query_class = QueryClass::kRegular;
  std::unique_ptr<StreamingSession> session;

  // Written by shard threads during a tick (relaxed adds), read and reset
  // by the coordinator after the tick barrier.
  std::atomic<uint64_t> tick_ns{0};
  uint64_t ticks = 0;
  LatencyRecorder advance_latency;
};

/// \brief Registry of standing queries over one database.
class QueryRegistry {
 public:
  explicit QueryRegistry(EventDatabase* db) : db_(db) {}

  /// Parses, classifies, and registers `text`. Rejects Safe/Unsafe queries
  /// with UnsafeQuery (they need the archived history; run them through
  /// Lahar::Run instead). The new session is caught up to `tick` by
  /// replaying the database's stored prefix, so it joins the next tick in
  /// lockstep with the existing queries.
  Result<QueryId> Register(std::string_view text, Timestamp tick);

  /// Same, from an already-prepared query (no reparse/reclassify) — the
  /// batch-registration path.
  Result<QueryId> Register(const PreparedQuery& prepared,
                           std::string_view text, Timestamp tick);

  /// Removes a query. NotFound if the id is unknown.
  Status Unregister(QueryId id);

  StandingQuery* Find(QueryId id);

  /// Queries in registration order — the executor's combine order, which
  /// makes per-tick results deterministic.
  const std::vector<std::unique_ptr<StandingQuery>>& queries() const {
    return queries_;
  }

  size_t size() const { return queries_.size(); }
  size_t total_chains() const;

  /// Bumped on every Register/Unregister; the executor rebuilds its shard
  /// partitions when it observes a new version.
  uint64_t version() const { return version_; }

 private:
  EventDatabase* db_;
  std::vector<std::unique_ptr<StandingQuery>> queries_;
  QueryId next_id_ = 1;
  uint64_t version_ = 0;
};

}  // namespace lahar

#endif  // LAHAR_RUNTIME_REGISTRY_H_
