// Standing-query lifecycle for the streaming runtime: register (prepare →
// classify → route to a QuerySession for the query's class → catch it up to
// the current tick), look up, and unregister by QueryId. Every query class
// is servable (see engine/session.h); with sampling fallback disabled,
// rejections carry the class in the kQueryClassPayload status payload.
//
// The registry is not internally synchronized: StreamRuntime guards every
// call with its state mutex, which is exactly what makes add/remove "hot" —
// it happens between ticks, never during one.
#ifndef LAHAR_RUNTIME_REGISTRY_H_
#define LAHAR_RUNTIME_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "automaton/kernel.h"
#include "automaton/rows.h"
#include "engine/session.h"
#include "runtime/stats.h"

namespace lahar {

/// \brief Options controlling cross-query shared evaluation
/// (docs/SHARING.md).
struct SharingOptions {
  /// Master switch. false selects the `unshared` verification mode: every
  /// session keeps stepping private chains. Results are bit-identical
  /// either way (shared units are clones of the same deterministic chains).
  bool enabled = true;

  /// Ticks of per-unit frontier history retained for delegated reads. Must
  /// exceed the executor's window size; StreamRuntime raises it to cover
  /// its configured window automatically.
  size_t frontier_history = 64;
};

/// \brief One registered standing query and its runtime bookkeeping.
struct StandingQuery {
  QueryId id = 0;
  std::string text;
  QueryClass query_class = QueryClass::kRegular;
  EngineKind engine = EngineKind::kRegular;
  bool exact = true;
  std::unique_ptr<QuerySession> session;

  // Coordinator-only window bookkeeping (harvested after the end-of-window
  // barrier, never touched by shard threads): the measured per-tick cost in
  // nanoseconds (a half-life-one EWMA) drives drift-triggered work
  // stealing, and home_shard remembers the last plan's owner so a
  // rebalance can count how many sessions actually moved.
  uint64_t measured_ns = 0;
  size_t home_shard = 0;
  uint64_t ticks = 0;
  uint64_t errors = 0;       ///< ticks whose CommitAdvance failed
  Status last_error;         ///< most recent CommitAdvance failure
  LatencyRecorder advance_latency;

  /// Kernel-cache lookups attributable to building this query's session.
  uint64_t kernel_hits = 0;
  uint64_t kernel_misses = 0;
  /// True when the prepared plan came from the registry's exact-text cache
  /// (refcounted there; see QueryRegistry).
  bool cached_plan = false;
  /// (canonical key, unit index) of every unit pooled for sharing.
  std::vector<std::pair<std::string, size_t>> shared_units;
};

/// \brief Registry of standing queries over one database.
///
/// Beyond the per-query lifecycle, the registry owns the cross-query
/// sharing machinery (docs/SHARING.md): a process-wide KernelCache every
/// session compiles through, an exact-text cache of prepared plans, and the
/// sharing pool that groups structurally identical grounded chains into
/// SharedSubChain units stepped once per tick for all their readers.
class QueryRegistry {
 public:
  explicit QueryRegistry(EventDatabase* db, LaharOptions options = {},
                         SharingOptions sharing = {});

  /// Parses, classifies, and registers `text`, routing it to the session
  /// implementation for its class (streaming kernels, incremental safe
  /// plan, or sampling). The new session is caught up to `tick` by
  /// replaying the database's stored prefix, so it joins the next tick in
  /// lockstep with the existing queries.
  Result<QueryId> Register(std::string_view text, Timestamp tick);

  /// Same, from an already-prepared query (no reparse/reclassify) — the
  /// batch-registration path.
  Result<QueryId> Register(const PreparedQuery& prepared,
                           std::string_view text, Timestamp tick);

  /// Removes a query. NotFound if the id is unknown.
  Status Unregister(QueryId id);

  /// Checkpoint restore: re-registers a query under its *original* id. The
  /// session is rebuilt from `text`; if `state` is non-null and the session
  /// serializes its state, the saved state is loaded directly, otherwise
  /// the session catches up by replaying the database prefix to `tick` —
  /// bit-identical either way. Ids are preserved and next_id_ advances past
  /// them, so later registrations never collide with restored queries.
  Status RestoreQuery(QueryId id, std::string_view text, Timestamp tick,
                      serial::Reader* state);

  StandingQuery* Find(QueryId id);

  /// Queries in registration order — the executor's combine order, which
  /// makes per-tick results deterministic.
  const std::vector<std::unique_ptr<StandingQuery>>& queries() const {
    return queries_;
  }

  size_t size() const { return queries_.size(); }

  /// Total shardable units across all sessions (chains for the streaming
  /// engines, samples for sampling sessions, 1 per safe plan).
  size_t total_chains() const;

  /// Bumped on every Register/Unregister; the executor rebuilds its shard
  /// partitions when it observes a new version.
  uint64_t version() const { return version_; }

  // --- Cross-query sharing (docs/SHARING.md) ------------------------------

  /// Steps every materialized shared unit to timestep `to` and accrues the
  /// sharing counters. The executor calls this once per window, before any
  /// dependent session's fan-out; delegated sessions then read the
  /// recorded frontier instead of stepping.
  void AdvanceSharedUnits(Timestamp to);

  /// Materialized sharing groups (units live and stepped once per tick).
  size_t num_sharing_groups() const;
  /// Reader count of each materialized group (fan-out histogram input).
  std::vector<size_t> SharingFanouts() const;
  /// Chain steps executed by shared units / avoided in their readers.
  uint64_t shared_steps_executed() const { return shared_steps_executed_; }
  uint64_t shared_steps_saved() const { return shared_steps_saved_; }
  /// Textually identical registrations served from the prepared-plan cache
  /// instead of reparsing/reclassifying.
  uint64_t prepared_dedup_hits() const { return prepared_dedup_hits_; }
  /// Registry-wide compiled-kernel cache shared by every session.
  const KernelCache& shared_kernels() const { return *shared_kernels_; }
  /// Registry-wide dense-transition-row pool (automaton/rows.h).
  const TransitionRowPool& shared_rows() const { return *shared_rows_; }
  const SharingOptions& sharing_options() const { return sharing_; }

 private:
  Result<QueryId> RegisterPrepared(const PreparedQuery& prepared,
                                   std::string_view text, Timestamp tick,
                                   bool cached_plan);
  /// Pools the session's shareable units; always the LAST step of a
  /// successful Register/RestoreQuery (the session must be caught up).
  void AttachSharing(StandingQuery* q);
  /// Removes the query from every pool it joined, dissolving units whose
  /// reader count drops below two (survivors resume private stepping).
  void DetachSharing(StandingQuery* q);
  void ReleasePreparedPlan(const StandingQuery& q);

  struct UnitMember {
    StandingQuery* query;
    size_t unit;
    bool delegated = false;
  };
  struct UnitPool {
    std::vector<UnitMember> members;
    /// Materialized lazily when a second member arrives; null while the
    /// key has a single holder (non-overlapping workloads pay nothing).
    std::shared_ptr<SharedSubChain> unit;
  };
  struct PreparedEntry {
    PreparedQuery prepared;
    size_t refs = 0;
  };

  EventDatabase* db_;
  LaharOptions options_;
  SharingOptions sharing_;
  std::shared_ptr<KernelCache> shared_kernels_;
  std::shared_ptr<TransitionRowPool> shared_rows_;
  std::vector<std::unique_ptr<StandingQuery>> queries_;
  std::unordered_map<std::string, UnitPool> sharing_pool_;
  std::unordered_map<std::string, PreparedEntry> prepared_cache_;
  uint64_t prepared_dedup_hits_ = 0;
  uint64_t shared_steps_executed_ = 0;
  uint64_t shared_steps_saved_ = 0;
  QueryId next_id_ = 1;
  uint64_t version_ = 0;
};

}  // namespace lahar

#endif  // LAHAR_RUNTIME_REGISTRY_H_
