#include "runtime/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lahar {
namespace {

// Index of the power-of-two bucket holding `ns` (0 for ns <= 1).
size_t BucketOf(uint64_t ns) {
  size_t b = 0;
  while (ns > 1) {
    ns >>= 1;
    ++b;
  }
  return b;
}

// Geometric midpoint of bucket b, in nanoseconds.
double BucketMid(size_t b) {
  return std::sqrt(static_cast<double>(1ULL << b) *
                   static_cast<double>(b + 1 < 64 ? (1ULL << (b + 1)) : ~0ULL));
}

std::string FormatUs(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", us);
  return buf;
}

void AppendJsonLatency(std::string* out, const char* name,
                       const LatencySummary& s) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"count\":%llu,\"min_us\":%.3f,\"mean_us\":%.3f,"
                "\"p50_us\":%.3f,\"p99_us\":%.3f,\"max_us\":%.3f}",
                name, static_cast<unsigned long long>(s.count), s.min_us,
                s.mean_us, s.p50_us, s.p99_us, s.max_us);
  *out += buf;
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void LatencyRecorder::Record(uint64_t ns) {
  ++counts_[std::min(BucketOf(ns), kBuckets - 1)];
  ++count_;
  min_ns_ = std::min(min_ns_, ns);
  max_ns_ = std::max(max_ns_, ns);
  sum_ns_ += static_cast<double>(ns);
}

LatencySummary LatencyRecorder::Summarize() const {
  LatencySummary s;
  s.count = count_;
  if (count_ == 0) return s;
  s.min_us = static_cast<double>(min_ns_) / 1000.0;
  s.max_us = static_cast<double>(max_ns_) / 1000.0;
  s.mean_us = sum_ns_ / static_cast<double>(count_) / 1000.0;
  auto percentile = [&](double p) {
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(p * static_cast<double>(count_)));
    rank = std::max<uint64_t>(rank, 1);
    uint64_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      seen += counts_[b];
      if (seen >= rank) {
        // Clamp the histogram estimate into the observed range.
        return std::min(static_cast<double>(max_ns_),
                        std::max(static_cast<double>(min_ns_),
                                 BucketMid(b))) /
               1000.0;
      }
    }
    return s.max_us;
  };
  s.p50_us = percentile(0.50);
  s.p99_us = percentile(0.99);
  return s;
}

void LatencyRecorder::Reset() { *this = LatencyRecorder(); }

std::string RuntimeStats::ToString() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "runtime: tick=%u ticks_processed=%llu queries=%zu "
                "units=%zu threads=%zu\n",
                tick, static_cast<unsigned long long>(ticks_processed),
                num_queries, total_chains, num_threads);
  out += buf;
  if (!class_counts.empty()) {
    out += "classes:";
    for (const auto& [name, count] : class_counts) {
      std::snprintf(buf, sizeof(buf), " %s=%zu", name.c_str(), count);
      out += buf;
    }
    out += "\n";
  }
  std::snprintf(buf, sizeof(buf),
                "ingest:  depth=%zu/%zu dropped=%llu closed_rejected=%llu "
                "applied=%llu rejected=%llu%s%s\n",
                queue_depth, queue_capacity,
                static_cast<unsigned long long>(queue_dropped),
                static_cast<unsigned long long>(queue_closed_rejected),
                static_cast<unsigned long long>(batches_applied),
                static_cast<unsigned long long>(batches_rejected),
                last_ingest_error.empty() ? "" : " last_error=",
                last_ingest_error.c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "reorder: depth=%zu window=%zu late_dropped=%llu "
                "merged=%llu\n",
                reorder_depth, reorder_window,
                static_cast<unsigned long long>(reorder_late_dropped),
                static_cast<unsigned long long>(reorder_merged));
  out += buf;
  if (windows_executed > 0) {
    std::snprintf(buf, sizeof(buf),
                  "windows: executed=%llu cap=%zu steals=%llu "
                  "split_placements=%llu rebalances=%llu "
                  "plan_rebuilds=%llu hist=[",
                  static_cast<unsigned long long>(windows_executed),
                  max_window_ticks, static_cast<unsigned long long>(steals),
                  static_cast<unsigned long long>(split_placements),
                  static_cast<unsigned long long>(rebalances),
                  static_cast<unsigned long long>(plan_rebuilds));
    out += buf;
    for (size_t i = 0; i < window_size_hist.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%s%llu", i > 0 ? " " : "",
                    static_cast<unsigned long long>(window_size_hist[i]));
      out += buf;
    }
    out += "]\n";
    if (barrier_wait.count > 0) {
      std::snprintf(buf, sizeof(buf),
                    "barrier wait (us): mean=%s p50=%s p99=%s max=%s\n",
                    FormatUs(barrier_wait.mean_us).c_str(),
                    FormatUs(barrier_wait.p50_us).c_str(),
                    FormatUs(barrier_wait.p99_us).c_str(),
                    FormatUs(barrier_wait.max_us).c_str());
      out += buf;
    }
  }
  if (total_chains > 0 || bytes_resident > 0) {
    std::snprintf(buf, sizeof(buf),
                  "memory:  bytes_resident=%zu resident=%zu/%zu stubs=%zu "
                  "spilled=%zu promotions=%llu spills=%llu "
                  "rehydrations=%llu\n",
                  bytes_resident, resident_units, total_chains, stub_units,
                  spilled_units, static_cast<unsigned long long>(promotions),
                  static_cast<unsigned long long>(spills),
                  static_cast<unsigned long long>(rehydrations));
    out += buf;
  }
  if (safe_memo_entries > 0 || safe_memo_evictions > 0 ||
      safe_rows_live > 0 || safe_row_evictions > 0) {
    std::snprintf(buf, sizeof(buf),
                  "safe:    memo_entries=%zu memo_evictions=%llu "
                  "rows_live=%zu row_evictions=%llu\n",
                  safe_memo_entries,
                  static_cast<unsigned long long>(safe_memo_evictions),
                  safe_rows_live,
                  static_cast<unsigned long long>(safe_row_evictions));
    out += buf;
  }
  if (sharing_groups > 0 || shared_steps_saved > 0 ||
      prepared_dedup_hits > 0 || kernel_cache_hits > 0 ||
      kernel_cache_misses > 0) {
    std::snprintf(buf, sizeof(buf),
                  "sharing: groups=%zu steps_executed=%llu steps_saved=%llu "
                  "plan_dedup_hits=%llu kernels=%zu kernel_hits=%llu "
                  "kernel_misses=%llu simd_units=%zu stripe_steps=%llu "
                  "stripe_fallbacks=%llu fanout_hist=[",
                  sharing_groups,
                  static_cast<unsigned long long>(shared_steps_executed),
                  static_cast<unsigned long long>(shared_steps_saved),
                  static_cast<unsigned long long>(prepared_dedup_hits),
                  kernel_cache_entries,
                  static_cast<unsigned long long>(kernel_cache_hits),
                  static_cast<unsigned long long>(kernel_cache_misses),
                  simd_units, static_cast<unsigned long long>(stripe_steps),
                  static_cast<unsigned long long>(stripe_fallbacks));
    out += buf;
    for (size_t i = 0; i < sharing_fanout_hist.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%s%llu", i > 0 ? " " : "",
                    static_cast<unsigned long long>(sharing_fanout_hist[i]));
      out += buf;
    }
    out += "]\n";
  }
  if (net.total_connections > 0 || net.connections > 0) {
    std::snprintf(buf, sizeof(buf),
                  "net:     conns=%zu/%llu subs=%zu frames=%llu/%llu "
                  "bytes=%llu/%llu proto_errors=%llu quota_rejected=%llu "
                  "backpressure=%llu slow_disconnects=%llu\n",
                  net.connections,
                  static_cast<unsigned long long>(net.total_connections),
                  net.subscriptions,
                  static_cast<unsigned long long>(net.frames_in),
                  static_cast<unsigned long long>(net.frames_out),
                  static_cast<unsigned long long>(net.bytes_in),
                  static_cast<unsigned long long>(net.bytes_out),
                  static_cast<unsigned long long>(net.protocol_errors),
                  static_cast<unsigned long long>(net.quota_rejected),
                  static_cast<unsigned long long>(net.backpressure_rejected),
                  static_cast<unsigned long long>(net.slow_disconnects));
    out += buf;
    for (const NetTenantStats& t : net.tenants) {
      std::snprintf(buf, sizeof(buf),
                    "  tenant %s: ingest=%llu quota_rejected=%llu\n",
                    t.tenant.c_str(),
                    static_cast<unsigned long long>(t.ingest_frames),
                    static_cast<unsigned long long>(t.quota_rejected));
      out += buf;
    }
  }
  std::snprintf(buf, sizeof(buf),
                "tick latency (us): min=%s mean=%s p50=%s p99=%s max=%s\n",
                FormatUs(tick_latency.min_us).c_str(),
                FormatUs(tick_latency.mean_us).c_str(),
                FormatUs(tick_latency.p50_us).c_str(),
                FormatUs(tick_latency.p99_us).c_str(),
                FormatUs(tick_latency.max_us).c_str());
  out += buf;
  for (const auto& [name, lat] : class_latency) {
    if (lat.count == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "  class %s: ticks=%llu mean=%sus p50=%sus p99=%sus\n",
                  name.c_str(), static_cast<unsigned long long>(lat.count),
                  FormatUs(lat.mean_us).c_str(), FormatUs(lat.p50_us).c_str(),
                  FormatUs(lat.p99_us).c_str());
    out += buf;
  }
  for (const ShardStats& s : shards) {
    std::snprintf(buf, sizeof(buf),
                  "  shard %zu: ticks=%llu chains=%llu mean=%sus p99=%sus\n",
                  s.shard, static_cast<unsigned long long>(s.ticks),
                  static_cast<unsigned long long>(s.chains_stepped),
                  FormatUs(s.tick.mean_us).c_str(),
                  FormatUs(s.tick.p99_us).c_str());
    out += buf;
  }
  for (const QueryStats& q : queries) {
    std::snprintf(buf, sizeof(buf),
                  "  query %llu: class=%s engine=%s%s units=%zu ticks=%llu "
                  "mean=%sus p99=%sus%s%s  %s\n",
                  static_cast<unsigned long long>(q.id),
                  q.query_class.c_str(), q.engine.c_str(),
                  q.exact ? "" : " (sampled)", q.num_chains,
                  static_cast<unsigned long long>(q.ticks),
                  FormatUs(q.advance.mean_us).c_str(),
                  FormatUs(q.advance.p99_us).c_str(),
                  q.last_error.empty() ? "" : " last_error=",
                  q.last_error.c_str(),
                  q.text.size() > 48 ? (q.text.substr(0, 45) + "...").c_str()
                                     : q.text.c_str());
    out += buf;
    if (q.memo_entries > 0 || q.memo_evictions > 0 || q.rows_live > 0 ||
        q.row_evictions > 0) {
      std::snprintf(buf, sizeof(buf),
                    "    safe memo: entries=%zu hits=%llu misses=%llu "
                    "evictions=%llu rows=%zu row_evictions=%llu "
                    "row_rebuilds=%llu\n",
                    q.memo_entries,
                    static_cast<unsigned long long>(q.memo_hits),
                    static_cast<unsigned long long>(q.memo_misses),
                    static_cast<unsigned long long>(q.memo_evictions),
                    q.rows_live,
                    static_cast<unsigned long long>(q.row_evictions),
                    static_cast<unsigned long long>(q.row_rebuilds));
      out += buf;
    }
    if (q.stub_units > 0 || q.spilled_units > 0 || q.promotions > 0 ||
        q.spills > 0 || q.rehydrations > 0) {
      std::snprintf(buf, sizeof(buf),
                    "    lifecycle: bytes=%zu resident=%zu/%zu stubs=%zu "
                    "spilled=%zu promotions=%llu spills=%llu "
                    "rehydrations=%llu\n",
                    q.bytes_resident, q.resident_units, q.num_chains,
                    q.stub_units, q.spilled_units,
                    static_cast<unsigned long long>(q.promotions),
                    static_cast<unsigned long long>(q.spills),
                    static_cast<unsigned long long>(q.rehydrations));
      out += buf;
    }
    if (q.shared_units > 0 || q.kernel_hits > 0 || q.kernel_misses > 0 ||
        q.simd_units > 0) {
      std::snprintf(buf, sizeof(buf),
                    "    sharing: delegated_units=%zu kernel_hits=%llu "
                    "kernel_misses=%llu simd_units=%zu stripe_steps=%llu "
                    "stripe_fallbacks=%llu\n",
                    q.shared_units,
                    static_cast<unsigned long long>(q.kernel_hits),
                    static_cast<unsigned long long>(q.kernel_misses),
                    q.simd_units,
                    static_cast<unsigned long long>(q.stripe_steps),
                    static_cast<unsigned long long>(q.stripe_fallbacks));
      out += buf;
    }
  }
  return out;
}

std::string RuntimeStats::ToJson() const {
  std::string out = "{";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "\"tick\":%u,\"ticks_processed\":%llu,\"queries\":%zu,"
                "\"chains\":%zu,\"threads\":%zu,\"queue_depth\":%zu,"
                "\"queue_capacity\":%zu,\"queue_dropped\":%llu,"
                "\"queue_closed_rejected\":%llu,"
                "\"batches_applied\":%llu,\"batches_rejected\":%llu,"
                "\"reorder_depth\":%zu,\"reorder_window\":%zu,"
                "\"reorder_late_dropped\":%llu,\"reorder_merged\":%llu,",
                tick, static_cast<unsigned long long>(ticks_processed),
                num_queries, total_chains, num_threads, queue_depth,
                queue_capacity, static_cast<unsigned long long>(queue_dropped),
                static_cast<unsigned long long>(queue_closed_rejected),
                static_cast<unsigned long long>(batches_applied),
                static_cast<unsigned long long>(batches_rejected),
                reorder_depth, reorder_window,
                static_cast<unsigned long long>(reorder_late_dropped),
                static_cast<unsigned long long>(reorder_merged));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "\"windows_executed\":%llu,\"max_window_ticks\":%zu,"
                "\"steals\":%llu,\"split_placements\":%llu,"
                "\"rebalances\":%llu,\"plan_rebuilds\":%llu,"
                "\"window_size_hist\":[",
                static_cast<unsigned long long>(windows_executed),
                max_window_ticks, static_cast<unsigned long long>(steals),
                static_cast<unsigned long long>(split_placements),
                static_cast<unsigned long long>(rebalances),
                static_cast<unsigned long long>(plan_rebuilds));
  out += buf;
  for (size_t i = 0; i < window_size_hist.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%llu", i > 0 ? "," : "",
                  static_cast<unsigned long long>(window_size_hist[i]));
    out += buf;
  }
  out += "],";
  AppendJsonLatency(&out, "barrier_wait", barrier_wait);
  out += ",";
  if (!class_counts.empty()) {
    out += "\"classes\":{";
    for (size_t i = 0; i < class_counts.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%s\"%s\":%zu", i > 0 ? "," : "",
                    class_counts[i].first.c_str(), class_counts[i].second);
      out += buf;
    }
    out += "},";
  }
  std::snprintf(buf, sizeof(buf),
                "\"safe_memo_entries\":%zu,\"safe_memo_evictions\":%llu,"
                "\"safe_rows_live\":%zu,\"safe_row_evictions\":%llu,",
                safe_memo_entries,
                static_cast<unsigned long long>(safe_memo_evictions),
                safe_rows_live,
                static_cast<unsigned long long>(safe_row_evictions));
  out += buf;
  // Lifecycle totals are always present (all units resident and zero
  // transitions when no session runs the chain lifecycle).
  std::snprintf(buf, sizeof(buf),
                "\"bytes_resident\":%zu,\"resident_units\":%zu,"
                "\"stub_units\":%zu,\"spilled_units\":%zu,"
                "\"promotions\":%llu,\"spills\":%llu,\"rehydrations\":%llu,",
                bytes_resident, resident_units, stub_units, spilled_units,
                static_cast<unsigned long long>(promotions),
                static_cast<unsigned long long>(spills),
                static_cast<unsigned long long>(rehydrations));
  out += buf;
  // Sharing counters are always present (zeros when sharing is disabled or
  // no workload overlaps) so dashboards need no field probing.
  std::snprintf(buf, sizeof(buf),
                "\"sharing_groups\":%zu,\"shared_steps_executed\":%llu,"
                "\"shared_steps_saved\":%llu,\"prepared_dedup_hits\":%llu,"
                "\"kernel_cache_hits\":%llu,\"kernel_cache_misses\":%llu,"
                "\"kernel_cache_entries\":%zu,\"simd_units\":%zu,"
                "\"stripe_steps\":%llu,\"stripe_fallbacks\":%llu,"
                "\"sharing_fanout_hist\":[",
                sharing_groups,
                static_cast<unsigned long long>(shared_steps_executed),
                static_cast<unsigned long long>(shared_steps_saved),
                static_cast<unsigned long long>(prepared_dedup_hits),
                static_cast<unsigned long long>(kernel_cache_hits),
                static_cast<unsigned long long>(kernel_cache_misses),
                kernel_cache_entries, simd_units,
                static_cast<unsigned long long>(stripe_steps),
                static_cast<unsigned long long>(stripe_fallbacks));
  out += buf;
  for (size_t i = 0; i < sharing_fanout_hist.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%llu", i > 0 ? "," : "",
                  static_cast<unsigned long long>(sharing_fanout_hist[i]));
    out += buf;
  }
  out += "],";
  if (!class_latency.empty()) {
    out += "\"class_latency\":{";
    bool first = true;
    for (const auto& [name, lat] : class_latency) {
      if (lat.count == 0) continue;
      if (!first) out += ",";
      first = false;
      out += "\"" + name + "\":";
      std::string inner;
      AppendJsonLatency(&inner, "advance", lat);
      // AppendJsonLatency emits `"advance":{...}`; keep just the object.
      out += inner.substr(inner.find('{'));
    }
    out += "},";
  }
  if (net.total_connections > 0 || net.connections > 0) {
    std::snprintf(buf, sizeof(buf),
                  "\"net\":{\"connections\":%zu,\"total_connections\":%llu,"
                  "\"subscriptions\":%zu,\"frames_in\":%llu,"
                  "\"frames_out\":%llu,\"bytes_in\":%llu,\"bytes_out\":%llu,"
                  "\"protocol_errors\":%llu,\"quota_rejected\":%llu,"
                  "\"backpressure_rejected\":%llu,\"slow_disconnects\":%llu,"
                  "\"tenants\":{",
                  net.connections,
                  static_cast<unsigned long long>(net.total_connections),
                  net.subscriptions,
                  static_cast<unsigned long long>(net.frames_in),
                  static_cast<unsigned long long>(net.frames_out),
                  static_cast<unsigned long long>(net.bytes_in),
                  static_cast<unsigned long long>(net.bytes_out),
                  static_cast<unsigned long long>(net.protocol_errors),
                  static_cast<unsigned long long>(net.quota_rejected),
                  static_cast<unsigned long long>(net.backpressure_rejected),
                  static_cast<unsigned long long>(net.slow_disconnects));
    out += buf;
    for (size_t i = 0; i < net.tenants.size(); ++i) {
      const NetTenantStats& t = net.tenants[i];
      std::snprintf(buf, sizeof(buf),
                    "%s\"%s\":{\"ingest\":%llu,\"quota_rejected\":%llu}",
                    i > 0 ? "," : "", JsonEscape(t.tenant).c_str(),
                    static_cast<unsigned long long>(t.ingest_frames),
                    static_cast<unsigned long long>(t.quota_rejected));
      out += buf;
    }
    out += "}},";
  }
  // Per-query entries carry caller-controlled strings (the query text, the
  // last error); JsonEscape keeps a query like At('he said "hi"', ...) from
  // corrupting the emitted object.
  out += "\"query_stats\":[";
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryStats& q = queries[i];
    if (i > 0) out += ",";
    std::snprintf(buf, sizeof(buf),
                  "{\"id\":%llu,\"class\":\"%s\",\"engine\":\"%s\","
                  "\"exact\":%s,\"units\":%zu,\"ticks\":%llu,"
                  "\"errors\":%llu,\"kernel_hits\":%llu,"
                  "\"kernel_misses\":%llu,\"shared_units\":%zu,"
                  "\"simd_units\":%zu,\"stripe_steps\":%llu,"
                  "\"stripe_fallbacks\":%llu,",
                  static_cast<unsigned long long>(q.id),
                  JsonEscape(q.query_class).c_str(),
                  JsonEscape(q.engine).c_str(), q.exact ? "true" : "false",
                  q.num_chains, static_cast<unsigned long long>(q.ticks),
                  static_cast<unsigned long long>(q.errors),
                  static_cast<unsigned long long>(q.kernel_hits),
                  static_cast<unsigned long long>(q.kernel_misses),
                  q.shared_units, q.simd_units,
                  static_cast<unsigned long long>(q.stripe_steps),
                  static_cast<unsigned long long>(q.stripe_fallbacks));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"bytes_resident\":%zu,\"resident_units\":%zu,"
                  "\"stub_units\":%zu,\"spilled_units\":%zu,"
                  "\"promotions\":%llu,\"spills\":%llu,"
                  "\"rehydrations\":%llu,",
                  q.bytes_resident, q.resident_units, q.stub_units,
                  q.spilled_units,
                  static_cast<unsigned long long>(q.promotions),
                  static_cast<unsigned long long>(q.spills),
                  static_cast<unsigned long long>(q.rehydrations));
    out += buf;
    out += "\"text\":\"" + JsonEscape(q.text) + "\",";
    out += "\"last_error\":\"" + JsonEscape(q.last_error) + "\"}";
  }
  out += "],";
  AppendJsonLatency(&out, "tick_latency", tick_latency);
  out += "}";
  return out;
}

}  // namespace lahar
