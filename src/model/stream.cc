#include "model/stream.h"

#include <cassert>
#include <cmath>
#include <cstring>

namespace lahar {
namespace {

Status CheckDistribution(const std::vector<double>& dist) {
  double total = 0;
  for (double p : dist) {
    if (p < -1e-9 || p > 1 + 1e-9) {
      return Status::InvalidArgument("probability out of [0,1]");
    }
    total += p;
  }
  if (std::fabs(total - 1.0) > 1e-6) {
    return Status::InvalidArgument("distribution sums to " +
                                   std::to_string(total));
  }
  return Status::OK();
}

const std::vector<double> kEmptyDist;

}  // namespace

Stream::Stream(SymbolId type, ValueTuple key, size_t num_value_attrs,
               Timestamp horizon, bool markovian)
    : type_(type),
      key_(std::move(key)),
      num_value_attrs_(num_value_attrs),
      horizon_(horizon),
      markovian_(markovian) {
  domain_.push_back(ValueTuple{});  // index 0 = bottom
  marginals_.resize(horizon_ + 1);
  if (markovian_) {
    cpts_.resize(horizon_);  // cpts_[1..horizon-1]
    cpt_digests_.resize(horizon_);
  }
}

// Dual word-wise FNV-1a over dims then raw entry bits. Word-wise (not
// byte-wise) keeps the cost well under one pass of the validation checks
// that already read every entry on the write path.
std::array<uint64_t, 2> Stream::DigestCpt(const Matrix& cpt) {
  uint64_t lo = 0xcbf29ce484222325ULL;
  uint64_t hi = 0x84222325cbf29ce4ULL;
  auto mix = [&](uint64_t v) {
    lo = (lo ^ v) * 0x100000001b3ULL;
    hi = (hi ^ v) * 0x00000100000001b3ULL + 0x9e3779b97f4a7c15ULL;
  };
  mix(cpt.rows());
  mix(cpt.cols());
  for (size_t r = 0; r < cpt.rows(); ++r) {
    const double* row = cpt.Row(r);
    for (size_t c = 0; c < cpt.cols(); ++c) {
      uint64_t bits;
      std::memcpy(&bits, &row[c], sizeof(bits));
      mix(bits);
    }
  }
  return {lo, hi};
}

DomainIndex Stream::InternTuple(const ValueTuple& values) {
  assert(values.size() == num_value_attrs_);
  auto it = domain_index_.find(values);
  if (it != domain_index_.end()) return it->second;
  DomainIndex d = static_cast<DomainIndex>(domain_.size());
  domain_.push_back(values);
  domain_index_.emplace(values, d);
  return d;
}

DomainIndex Stream::LookupTuple(const ValueTuple& values) const {
  auto it = domain_index_.find(values);
  return it == domain_index_.end() ? kNotFound : it->second;
}

Status Stream::SetMarginal(Timestamp t, std::vector<double> dist) {
  if (t < 1 || t > horizon_) return Status::OutOfRange("timestep out of range");
  dist.resize(domain_.size(), 0.0);
  LAHAR_RETURN_NOT_OK(CheckDistribution(dist));
  marginals_[t] = std::move(dist);
  return Status::OK();
}

Status Stream::SetInitial(std::vector<double> dist) {
  if (!markovian_) {
    return Status::InvalidArgument("SetInitial requires a Markovian stream");
  }
  return SetMarginal(1, std::move(dist));
}

Status Stream::SetCpt(Timestamp t, Matrix cpt) {
  if (!markovian_) {
    return Status::InvalidArgument("SetCpt requires a Markovian stream");
  }
  if (t < 1 || t >= horizon_) return Status::OutOfRange("CPT timestep");
  if (cpt.rows() != domain_.size() || cpt.cols() != domain_.size()) {
    return Status::InvalidArgument(
        "CPT must be D x D over the stream domain; intern all tuples first");
  }
  for (size_t r = 0; r < cpt.rows(); ++r) {
    double total = 0;
    for (size_t c = 0; c < cpt.cols(); ++c) total += cpt.At(r, c);
    if (std::fabs(total - 1.0) > 1e-6) {
      return Status::InvalidArgument("CPT row " + std::to_string(r) +
                                     " sums to " + std::to_string(total));
    }
  }
  cpts_[t] = std::move(cpt);
  cpt_digests_[t] = DigestCpt(cpts_[t]);
  return Status::OK();
}

Status Stream::FinalizeMarkov() {
  if (!markovian_) {
    return Status::InvalidArgument("FinalizeMarkov requires Markovian stream");
  }
  if (marginals_[1].empty()) return Status::InvalidArgument("missing initial");
  for (Timestamp t = 1; t < horizon_; ++t) {
    if (cpts_[t].rows() == 0) {
      return Status::InvalidArgument("missing CPT at t=" + std::to_string(t));
    }
    marginals_[t + 1] = cpts_[t].LeftMultiply(marginals_[t]);
  }
  return Status::OK();
}

Status Stream::PruneCpts(double epsilon, size_t* entries_before,
                         size_t* entries_after) {
  if (!markovian_) {
    return Status::InvalidArgument("PruneCpts requires a Markovian stream");
  }
  size_t before = 0, after = 0;
  for (Timestamp t = 1; t < horizon_; ++t) {
    Matrix& cpt = cpts_[t];
    for (size_t r = 0; r < cpt.rows(); ++r) {
      double kept = 0;
      size_t kept_count = 0;
      DomainIndex argmax = 0;
      for (size_t c = 0; c < cpt.cols(); ++c) {
        double p = cpt.At(r, c);
        before += p > 0;
        if (p > cpt.At(r, argmax)) argmax = static_cast<DomainIndex>(c);
        if (p < epsilon) {
          cpt.At(r, c) = 0.0;
        } else {
          kept += p;
          if (p > 0) ++kept_count;
        }
      }
      if (kept <= 0) {
        // Everything pruned: keep the row's mode so the row stays stochastic.
        cpt.At(r, argmax) = 1.0;
        kept_count = 1;
      } else {
        for (size_t c = 0; c < cpt.cols(); ++c) cpt.At(r, c) /= kept;
      }
      after += kept_count;
    }
    cpt_digests_[t] = DigestCpt(cpt);
  }
  if (entries_before != nullptr) *entries_before = before;
  if (entries_after != nullptr) *entries_after = after;
  return FinalizeMarkov();
}

Status Stream::AppendMarginal(std::vector<double> dist) {
  if (markovian_) {
    return Status::InvalidArgument(
        "AppendMarginal requires an independent stream; use AppendMarkovStep");
  }
  dist.resize(domain_.size(), 0.0);
  LAHAR_RETURN_NOT_OK(CheckDistribution(dist));
  marginals_.push_back(std::move(dist));
  ++horizon_;
  return Status::OK();
}

Status Stream::AppendInitial(std::vector<double> dist) {
  if (!markovian_) {
    return Status::InvalidArgument(
        "AppendInitial requires a Markovian stream; use AppendMarginal");
  }
  if (horizon_ != 0) {
    return Status::InvalidArgument(
        "AppendInitial requires an empty stream (horizon 0)");
  }
  dist.resize(domain_.size(), 0.0);
  LAHAR_RETURN_NOT_OK(CheckDistribution(dist));
  marginals_.push_back(std::move(dist));
  cpts_.emplace_back();  // index 0 placeholder; CPTs live at 1..horizon-1
  cpt_digests_.emplace_back();
  horizon_ = 1;
  return Status::OK();
}

Status Stream::AppendMarkovStep(Matrix cpt) {
  if (!markovian_) {
    return Status::InvalidArgument(
        "AppendMarkovStep requires a Markovian stream");
  }
  if (horizon_ < 1 || marginals_[horizon_].empty()) {
    return Status::InvalidArgument(
        "set the initial marginal (and finalize) before appending");
  }
  if (cpt.rows() != domain_.size() || cpt.cols() != domain_.size()) {
    return Status::InvalidArgument("CPT must be D x D over the stream domain");
  }
  for (size_t r = 0; r < cpt.rows(); ++r) {
    double total = 0;
    for (size_t c = 0; c < cpt.cols(); ++c) total += cpt.At(r, c);
    if (std::fabs(total - 1.0) > 1e-6) {
      return Status::InvalidArgument("CPT row " + std::to_string(r) +
                                     " sums to " + std::to_string(total));
    }
  }
  marginals_.push_back(cpt.LeftMultiply(marginals_[horizon_]));
  cpts_.push_back(std::move(cpt));
  cpt_digests_.push_back(DigestCpt(cpts_.back()));
  ++horizon_;
  return Status::OK();
}

const std::vector<double>& Stream::MarginalAt(Timestamp t) const {
  if (t < 1 || t > horizon_) return kEmptyDist;
  return marginals_[t];
}

const Matrix& Stream::CptAt(Timestamp t) const {
  assert(markovian_ && t >= 1 && t < horizon_);
  return cpts_[t];
}

const std::array<uint64_t, 2>& Stream::CptDigestAt(Timestamp t) const {
  assert(markovian_ && t >= 1 && t < horizon_);
  return cpt_digests_[t];
}

double Stream::ProbAt(Timestamp t, DomainIndex d) const {
  const auto& m = MarginalAt(t);
  return d < m.size() ? m[d] : 0.0;
}

ProbabilisticEvent Stream::EventAt(Timestamp t) const {
  ProbabilisticEvent e;
  e.t = t;
  const auto& m = MarginalAt(t);
  e.bottom_p = m.empty() ? 1.0 : m[kBottom];
  for (DomainIndex d = 1; d < m.size(); ++d) {
    if (m[d] > 0) e.outcomes.push_back({domain_[d], m[d]});
  }
  return e;
}

std::vector<DomainIndex> Stream::SampleTrajectory(Rng* rng) const {
  std::vector<DomainIndex> traj(horizon_ + 1, kBottom);
  if (horizon_ == 0) return traj;
  if (!markovian_) {
    for (Timestamp t = 1; t <= horizon_; ++t) {
      const auto& m = MarginalAt(t);
      if (m.empty()) continue;  // unset timestep: certain bottom
      size_t d = rng->Categorical(m);
      traj[t] = d >= m.size() ? kBottom : static_cast<DomainIndex>(d);
    }
    return traj;
  }
  const auto& init = MarginalAt(1);
  size_t d0 = rng->Categorical(init);
  traj[1] = d0 >= init.size() ? kBottom : static_cast<DomainIndex>(d0);
  std::vector<double> row(domain_.size());
  for (Timestamp t = 1; t < horizon_; ++t) {
    const Matrix& cpt = cpts_[t];
    const double* r = cpt.Row(traj[t]);
    row.assign(r, r + cpt.cols());
    size_t d = rng->Categorical(row);
    traj[t + 1] = d >= row.size() ? kBottom : static_cast<DomainIndex>(d);
  }
  return traj;
}

double Stream::TrajectoryProb(const std::vector<DomainIndex>& traj) const {
  assert(traj.size() == static_cast<size_t>(horizon_) + 1);
  if (horizon_ == 0) return 1.0;
  double p = ProbAt(1, traj[1]);
  for (Timestamp t = 1; t < horizon_ && p > 0; ++t) {
    if (markovian_) {
      p *= cpts_[t].At(traj[t], traj[t + 1]);
    } else {
      p *= ProbAt(t + 1, traj[t + 1]);
    }
  }
  return p;
}

void WriteValueTuple(const ValueTuple& t, serial::Writer* w) {
  w->U64(t.size());
  for (const Value& v : t) {
    w->U8(static_cast<uint8_t>(v.kind()));
    w->U64(v.is_symbol() ? static_cast<uint64_t>(v.symbol())
                         : static_cast<uint64_t>(v.is_int() ? v.int_value()
                                                            : 0));
  }
}

Status ReadValueTuple(serial::Reader* r, ValueTuple* out) {
  uint64_t n;
  LAHAR_RETURN_NOT_OK(r->U64(&n));
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint8_t kind;
    uint64_t payload;
    LAHAR_RETURN_NOT_OK(r->U8(&kind));
    LAHAR_RETURN_NOT_OK(r->U64(&payload));
    switch (static_cast<Value::Kind>(kind)) {
      case Value::Kind::kNull:
        out->push_back(Value());
        break;
      case Value::Kind::kSymbol:
        out->push_back(Value::Symbol(static_cast<SymbolId>(payload)));
        break;
      case Value::Kind::kInt:
        out->push_back(Value::Int(static_cast<int64_t>(payload)));
        break;
      default:
        return Status::InvalidArgument("unknown value kind in snapshot");
    }
  }
  return Status::OK();
}

void Stream::SaveTo(serial::Writer* w) const {
  w->U32(type_);
  WriteValueTuple(key_, w);
  w->U64(num_value_attrs_);
  w->U32(horizon_);
  w->U8(markovian_ ? 1 : 0);
  // Domain, skipping the implicit bottom at index 0.
  w->U64(domain_.size() - 1);
  for (size_t d = 1; d < domain_.size(); ++d) WriteValueTuple(domain_[d], w);
  // Marginals for t = 1..horizon. Empty vectors (unset certain-bottom
  // timesteps) and short vectors (recorded before domain growth) are kept
  // as-is, hence the per-timestep presence flag plus exact length.
  for (Timestamp t = 1; t <= horizon_; ++t) {
    const auto& m = marginals_[t];
    w->U8(m.empty() ? 0 : 1);
    if (!m.empty()) w->DoubleVec(m);
  }
  // CPT vector, field-exact: append-built Markovian streams store
  // cpts_.size() == horizon_, Set-built ones horizon_ at declaration time,
  // independent streams 0.
  w->U64(cpts_.size());
  for (const Matrix& cpt : cpts_) {
    w->U64(cpt.rows());
    w->U64(cpt.cols());
    for (size_t r = 0; r < cpt.rows(); ++r) {
      for (size_t c = 0; c < cpt.cols(); ++c) w->F64(cpt.At(r, c));
    }
  }
}

Result<Stream> Stream::LoadFrom(serial::Reader* r) {
  uint32_t type, horizon;
  ValueTuple key;
  uint64_t num_value_attrs, domain_count;
  uint8_t markovian;
  LAHAR_RETURN_NOT_OK(r->U32(&type));
  LAHAR_RETURN_NOT_OK(ReadValueTuple(r, &key));
  LAHAR_RETURN_NOT_OK(r->U64(&num_value_attrs));
  LAHAR_RETURN_NOT_OK(r->U32(&horizon));
  LAHAR_RETURN_NOT_OK(r->U8(&markovian));
  LAHAR_RETURN_NOT_OK(r->U64(&domain_count));
  Stream s(type, std::move(key), num_value_attrs, horizon, markovian != 0);
  for (uint64_t d = 0; d < domain_count; ++d) {
    ValueTuple tuple;
    LAHAR_RETURN_NOT_OK(ReadValueTuple(r, &tuple));
    if (tuple.size() != num_value_attrs) {
      return Status::InvalidArgument("domain tuple arity mismatch in snapshot");
    }
    s.InternTuple(tuple);
  }
  for (Timestamp t = 1; t <= horizon; ++t) {
    uint8_t present;
    LAHAR_RETURN_NOT_OK(r->U8(&present));
    if (present != 0) {
      LAHAR_RETURN_NOT_OK(r->DoubleVec(&s.marginals_[t]));
    }
  }
  uint64_t num_cpts;
  LAHAR_RETURN_NOT_OK(r->U64(&num_cpts));
  s.cpts_.resize(num_cpts);
  for (uint64_t i = 0; i < num_cpts; ++i) {
    uint64_t rows, cols;
    LAHAR_RETURN_NOT_OK(r->U64(&rows));
    LAHAR_RETURN_NOT_OK(r->U64(&cols));
    Matrix m(rows, cols);
    for (uint64_t rr = 0; rr < rows; ++rr) {
      for (uint64_t cc = 0; cc < cols; ++cc) {
        LAHAR_RETURN_NOT_OK(r->F64(&m.At(rr, cc)));
      }
    }
    s.cpts_[i] = std::move(m);
  }
  // The digest cache is not part of the snapshot format; rebuild it.
  s.cpt_digests_.resize(s.cpts_.size());
  for (size_t i = 0; i < s.cpts_.size(); ++i) {
    s.cpt_digests_[i] = DigestCpt(s.cpts_[i]);
  }
  return s;
}

Status Stream::Validate() const {
  for (Timestamp t = 1; t <= horizon_; ++t) {
    if (marginals_[t].empty()) continue;
    if (marginals_[t].size() != domain_.size()) {
      return Status::Internal("marginal size mismatch at t=" +
                              std::to_string(t));
    }
    LAHAR_RETURN_NOT_OK(CheckDistribution(marginals_[t]));
  }
  return Status::OK();
}

}  // namespace lahar
