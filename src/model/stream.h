// Probabilistic event streams (Section 2.3).
//
// A stream is the sequence of probabilistic events for one (type, key) pair
// over the timeline 1..T. Timesteps where the key is missing are padded with
// certain-bottom. Two flavours exist:
//
//  * Independent streams (the real-time scenario): one marginal distribution
//    per timestep, independent across time.
//  * Markovian streams (the archived scenario): an initial marginal plus one
//    conditional probability table (CPT) per timestep,
//    E(t)(d', d) = P[e(t+1) = d' | e(t) = d], exactly the relation encoding
//    E(ID, T, A', A, P) of Fig. 3(d).
//
// The value-attribute domain of a stream is interned into dense indices;
// index 0 is always bottom (the event did not occur).
#ifndef LAHAR_MODEL_STREAM_H_
#define LAHAR_MODEL_STREAM_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/serial.h"
#include "common/status.h"
#include "model/event.h"
#include "model/value.h"

namespace lahar {

/// Serializes a value tuple (per value: kind byte + 64-bit payload).
void WriteValueTuple(const ValueTuple& t, serial::Writer* w);
Status ReadValueTuple(serial::Reader* r, ValueTuple* out);

/// Dense index into a stream's value-tuple domain; 0 is bottom.
using DomainIndex = uint32_t;

/// Index 0 of every stream domain: the event did not occur.
inline constexpr DomainIndex kBottom = 0;

/// \brief One probabilistic event stream: (type, key) over timeline 1..T.
class Stream {
 public:
  /// Creates an empty stream. For Markovian streams, call SetInitial and
  /// SetCpt for t = 1..T-1, then FinalizeMarkov(); for independent streams,
  /// call SetMarginal for each t.
  Stream(SymbolId type, ValueTuple key, size_t num_value_attrs,
         Timestamp horizon, bool markovian);

  SymbolId type() const { return type_; }
  const ValueTuple& key() const { return key_; }
  size_t num_value_attrs() const { return num_value_attrs_; }
  Timestamp horizon() const { return horizon_; }
  bool markovian() const { return markovian_; }

  /// Interns a value tuple into the domain, returning its dense index.
  /// The tuple must have num_value_attrs() entries.
  DomainIndex InternTuple(const ValueTuple& values);

  /// Looks up a tuple; returns kNotFound if absent from the domain.
  DomainIndex LookupTuple(const ValueTuple& values) const;
  static constexpr DomainIndex kNotFound = UINT32_MAX;

  /// Domain size D (bottom plus concrete tuples).
  size_t domain_size() const { return domain_.size(); }

  /// Value tuple for a domain index; index 0 (bottom) yields an empty tuple.
  const ValueTuple& TupleOf(DomainIndex d) const { return domain_[d]; }

  /// Sets the marginal at timestep t (independent streams). `dist` has one
  /// entry per domain index and must sum to 1.
  Status SetMarginal(Timestamp t, std::vector<double> dist);

  /// Sets the initial marginal (Markovian streams), i.e. the distribution at
  /// t = 1.
  Status SetInitial(std::vector<double> dist);

  /// Sets the CPT governing the transition from timestep t to t+1
  /// (Markovian streams): cpt.At(d, d') = P[e(t+1) = d' | e(t) = d].
  /// Rows must sum to 1. Valid t: 1..horizon-1.
  Status SetCpt(Timestamp t, Matrix cpt);

  /// Chains the initial marginal through the CPTs to populate the per-step
  /// marginals. Must be called after all SetCpt calls on Markovian streams.
  Status FinalizeMarkov();

  /// Prunes CPT entries below `epsilon` and renormalizes rows — the storage
  /// optimization Section 4.3.2 alludes to (the paper cut its CPT relation
  /// ~26x "without a noticeable degradation in quality"). Marginals are
  /// re-chained afterwards. Returns the number of entries dropped via the
  /// out-parameters (either may be null).
  Status PruneCpts(double epsilon, size_t* entries_before = nullptr,
                   size_t* entries_after = nullptr);

  /// Appends one timestep to an independent stream (extends the horizon).
  /// The domain must already be fully interned.
  Status AppendMarginal(std::vector<double> dist);

  /// Appends the initial marginal (timestep 1) to an *empty* Markovian
  /// stream, giving it horizon 1 — the streaming counterpart of
  /// SetInitial + FinalizeMarkov for a stream declared with horizon 0.
  /// Subsequent timesteps arrive via AppendMarkovStep.
  Status AppendInitial(std::vector<double> dist);

  /// Appends one timestep to a Markovian stream: `cpt` governs the
  /// transition from the current last timestep to the new one; the new
  /// marginal is chained automatically. Requires a set initial marginal.
  Status AppendMarkovStep(Matrix cpt);

  /// Marginal distribution at timestep t (1..horizon). Entries beyond the
  /// stored vector's size are zero.
  const std::vector<double>& MarginalAt(Timestamp t) const;

  /// CPT for the transition t -> t+1. Requires markovian() and 1<=t<horizon.
  const Matrix& CptAt(Timestamp t) const;

  /// Content digest (dual word-wise FNV over dims + entry bits) of
  /// CptAt(t), maintained wherever the slice is written, so reading it is
  /// O(1). Engines use it to validate shared transition-row reuse per tick
  /// without re-reading slice bytes (automaton/rows.h); equal digests on
  /// structurally equal streams mean bit-equal slices. Same preconditions
  /// as CptAt.
  const std::array<uint64_t, 2>& CptDigestAt(Timestamp t) const;

  /// Marginal probability of domain index d at time t (0 if out of range).
  double ProbAt(Timestamp t, DomainIndex d) const;

  /// The probabilistic event at timestep t, in the Section-2.3 form.
  ProbabilisticEvent EventAt(Timestamp t) const;

  /// Samples a full trajectory (values[1..horizon]; index 0 is unused).
  std::vector<DomainIndex> SampleTrajectory(Rng* rng) const;

  /// Probability of a trajectory under Eq. (1). `traj[t]` for t=1..horizon.
  double TrajectoryProb(const std::vector<DomainIndex>& traj) const;

  /// Checks all stored distributions.
  Status Validate() const;

  /// Field-exact binary snapshot for checkpointing. Unlike the Append/Set
  /// API, this preserves unset (certain-bottom) timesteps and marginals
  /// recorded before later domain growth exactly as stored, so LoadFrom
  /// reproduces the stream state bit-for-bit.
  void SaveTo(serial::Writer* w) const;
  static Result<Stream> LoadFrom(serial::Reader* r);

 private:
  SymbolId type_;
  ValueTuple key_;
  size_t num_value_attrs_;
  Timestamp horizon_;
  bool markovian_;

  std::vector<ValueTuple> domain_;  // [0] = bottom (empty tuple)
  std::unordered_map<ValueTuple, DomainIndex, ValueTupleHash> domain_index_;

  // marginals_[t] for t = 1..horizon (index 0 unused).
  std::vector<std::vector<double>> marginals_;
  static std::array<uint64_t, 2> DigestCpt(const Matrix& cpt);

  // cpts_[t] is the transition t -> t+1, for t = 1..horizon-1 (Markovian).
  std::vector<Matrix> cpts_;
  // cpt_digests_[t] mirrors cpts_[t] — recomputed wherever a slice is
  // written (Set/Append/Prune/LoadFrom), never serialized (snapshot bytes
  // are unchanged by this cache; LoadFrom rebuilds it).
  std::vector<std::array<uint64_t, 2>> cpt_digests_;
};

}  // namespace lahar

#endif  // LAHAR_MODEL_STREAM_H_
