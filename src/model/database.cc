#include "model/database.h"

#include <algorithm>

namespace lahar {

Status Relation::Insert(ValueTuple t) {
  if (t.size() != arity_) {
    return Status::InvalidArgument("relation tuple arity mismatch");
  }
  tuples_.insert(std::move(t));
  return Status::OK();
}

Status EventDatabase::DeclareSchema(EventSchema schema) {
  if (schema.num_key_attrs > schema.attr_names.size()) {
    return Status::InvalidArgument("key wider than schema");
  }
  auto [it, inserted] = schemas_.emplace(schema.type, std::move(schema));
  (void)it;
  if (!inserted) return Status::AlreadyExists("schema already declared");
  return Status::OK();
}

const EventSchema* EventDatabase::FindSchema(SymbolId type) const {
  auto it = schemas_.find(type);
  return it == schemas_.end() ? nullptr : &it->second;
}

Result<StreamId> EventDatabase::AddStream(Stream stream) {
  const EventSchema* schema = FindSchema(stream.type());
  if (schema == nullptr) {
    return Status::NotFound("no schema for stream type '" +
                            interner_->Name(stream.type()) + "'");
  }
  if (stream.key().size() != schema->num_key_attrs ||
      stream.num_value_attrs() != schema->num_value_attrs()) {
    return Status::InvalidArgument("stream shape does not match schema");
  }
  StreamId id = static_cast<StreamId>(streams_.size());
  horizon_ = std::max(horizon_, stream.horizon());
  streams_by_type_[stream.type()].push_back(id);
  streams_.push_back(std::move(stream));
  return id;
}

std::vector<StreamId> EventDatabase::StreamsOfType(SymbolId type) const {
  auto it = streams_by_type_.find(type);
  return it == streams_by_type_.end() ? std::vector<StreamId>{} : it->second;
}

Result<Relation*> EventDatabase::DeclareRelation(std::string_view name,
                                                 size_t arity) {
  SymbolId id = interner_->Intern(name);
  auto it = relations_.find(id);
  if (it != relations_.end()) {
    if (it->second->arity() != arity) {
      return Status::InvalidArgument("relation redeclared with new arity");
    }
    return it->second.get();
  }
  auto rel = std::make_unique<Relation>(id, arity);
  Relation* ptr = rel.get();
  relations_.emplace(id, std::move(rel));
  return ptr;
}

const Relation* EventDatabase::FindRelation(SymbolId name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

Relation* EventDatabase::FindRelation(SymbolId name) {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

Status EventDatabase::AppendMarginal(StreamId id, std::vector<double> dist) {
  if (id >= streams_.size()) return Status::OutOfRange("bad stream id");
  LAHAR_RETURN_NOT_OK(streams_[id].AppendMarginal(std::move(dist)));
  horizon_ = std::max(horizon_, streams_[id].horizon());
  return Status::OK();
}

Status EventDatabase::AppendInitial(StreamId id, std::vector<double> dist) {
  if (id >= streams_.size()) return Status::OutOfRange("bad stream id");
  LAHAR_RETURN_NOT_OK(streams_[id].AppendInitial(std::move(dist)));
  horizon_ = std::max(horizon_, streams_[id].horizon());
  return Status::OK();
}

Status EventDatabase::AppendMarkovStep(StreamId id, Matrix cpt) {
  if (id >= streams_.size()) return Status::OutOfRange("bad stream id");
  LAHAR_RETURN_NOT_OK(streams_[id].AppendMarkovStep(std::move(cpt)));
  horizon_ = std::max(horizon_, streams_[id].horizon());
  return Status::OK();
}

size_t EventDatabase::TotalTuples() const {
  size_t total = 0;
  for (const Stream& s : streams_) {
    for (Timestamp t = 1; t <= s.horizon(); ++t) {
      const auto& m = s.MarginalAt(t);
      for (double p : m) total += p > 0 ? 1 : 0;
    }
  }
  return total;
}

Status EventDatabase::Validate() const {
  for (const Stream& s : streams_) LAHAR_RETURN_NOT_OK(s.Validate());
  return Status::OK();
}

}  // namespace lahar
