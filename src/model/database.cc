#include "model/database.h"

#include <algorithm>

namespace lahar {

Status Relation::Insert(ValueTuple t) {
  if (t.size() != arity_) {
    return Status::InvalidArgument("relation tuple arity mismatch");
  }
  tuples_.insert(std::move(t));
  return Status::OK();
}

Status EventDatabase::DeclareSchema(EventSchema schema) {
  if (schema.num_key_attrs > schema.attr_names.size()) {
    return Status::InvalidArgument("key wider than schema");
  }
  auto [it, inserted] = schemas_.emplace(schema.type, std::move(schema));
  (void)it;
  if (!inserted) return Status::AlreadyExists("schema already declared");
  return Status::OK();
}

const EventSchema* EventDatabase::FindSchema(SymbolId type) const {
  auto it = schemas_.find(type);
  return it == schemas_.end() ? nullptr : &it->second;
}

Result<StreamId> EventDatabase::AddStream(Stream stream) {
  const EventSchema* schema = FindSchema(stream.type());
  if (schema == nullptr) {
    return Status::NotFound("no schema for stream type '" +
                            interner_->Name(stream.type()) + "'");
  }
  if (stream.key().size() != schema->num_key_attrs ||
      stream.num_value_attrs() != schema->num_value_attrs()) {
    return Status::InvalidArgument("stream shape does not match schema");
  }
  StreamId id = static_cast<StreamId>(streams_.size());
  horizon_ = std::max(horizon_, stream.horizon());
  streams_by_type_[stream.type()].push_back(id);
  streams_.push_back(std::move(stream));
  return id;
}

std::vector<StreamId> EventDatabase::StreamsOfType(SymbolId type) const {
  auto it = streams_by_type_.find(type);
  return it == streams_by_type_.end() ? std::vector<StreamId>{} : it->second;
}

Result<Relation*> EventDatabase::DeclareRelation(std::string_view name,
                                                 size_t arity) {
  SymbolId id = interner_->Intern(name);
  auto it = relations_.find(id);
  if (it != relations_.end()) {
    if (it->second->arity() != arity) {
      return Status::InvalidArgument("relation redeclared with new arity");
    }
    return it->second.get();
  }
  auto rel = std::make_unique<Relation>(id, arity);
  Relation* ptr = rel.get();
  relations_.emplace(id, std::move(rel));
  return ptr;
}

const Relation* EventDatabase::FindRelation(SymbolId name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

Relation* EventDatabase::FindRelation(SymbolId name) {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

Status EventDatabase::AppendMarginal(StreamId id, std::vector<double> dist) {
  if (id >= streams_.size()) return Status::OutOfRange("bad stream id");
  LAHAR_RETURN_NOT_OK(streams_[id].AppendMarginal(std::move(dist)));
  horizon_ = std::max(horizon_, streams_[id].horizon());
  return Status::OK();
}

Status EventDatabase::AppendInitial(StreamId id, std::vector<double> dist) {
  if (id >= streams_.size()) return Status::OutOfRange("bad stream id");
  LAHAR_RETURN_NOT_OK(streams_[id].AppendInitial(std::move(dist)));
  horizon_ = std::max(horizon_, streams_[id].horizon());
  return Status::OK();
}

Status EventDatabase::AppendMarkovStep(StreamId id, Matrix cpt) {
  if (id >= streams_.size()) return Status::OutOfRange("bad stream id");
  LAHAR_RETURN_NOT_OK(streams_[id].AppendMarkovStep(std::move(cpt)));
  horizon_ = std::max(horizon_, streams_[id].horizon());
  return Status::OK();
}

size_t EventDatabase::TotalTuples() const {
  size_t total = 0;
  for (const Stream& s : streams_) {
    for (Timestamp t = 1; t <= s.horizon(); ++t) {
      const auto& m = s.MarginalAt(t);
      for (double p : m) total += p > 0 ? 1 : 0;
    }
  }
  return total;
}

Status EventDatabase::Validate() const {
  for (const Stream& s : streams_) LAHAR_RETURN_NOT_OK(s.Validate());
  return Status::OK();
}

Status EventDatabase::SaveTo(serial::Writer* w) const {
  // Interner strings in id order; re-interning them in order at load time
  // reproduces the exact same ids, so raw SymbolIds round-trip everywhere
  // below. Id 0 (the empty string) is implicit in a fresh interner.
  w->U64(interner_->size());
  for (SymbolId id = 1; id < interner_->size(); ++id) {
    w->Str(interner_->Name(id));
  }

  std::vector<SymbolId> schema_ids;
  schema_ids.reserve(schemas_.size());
  for (const auto& [type, schema] : schemas_) schema_ids.push_back(type);
  std::sort(schema_ids.begin(), schema_ids.end());
  w->U64(schema_ids.size());
  for (SymbolId type : schema_ids) {
    const EventSchema& schema = schemas_.at(type);
    w->U32(schema.type);
    w->U64(schema.attr_names.size());
    for (SymbolId a : schema.attr_names) w->U32(a);
    w->U64(schema.num_key_attrs);
  }

  std::vector<SymbolId> rel_ids;
  rel_ids.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) rel_ids.push_back(name);
  std::sort(rel_ids.begin(), rel_ids.end());
  w->U64(rel_ids.size());
  for (SymbolId name : rel_ids) {
    const Relation& rel = *relations_.at(name);
    w->U32(rel.name());
    w->U64(rel.arity());
    std::vector<ValueTuple> tuples(rel.tuples().begin(), rel.tuples().end());
    std::sort(tuples.begin(), tuples.end());
    w->U64(tuples.size());
    for (const ValueTuple& t : tuples) WriteValueTuple(t, w);
  }

  w->U64(streams_.size());
  for (const Stream& s : streams_) s.SaveTo(w);
  w->U32(horizon_);
  return Status::OK();
}

Result<std::unique_ptr<EventDatabase>> EventDatabase::LoadFrom(
    serial::Reader* r) {
  auto db = std::make_unique<EventDatabase>();

  uint64_t num_symbols;
  LAHAR_RETURN_NOT_OK(r->U64(&num_symbols));
  for (uint64_t id = 1; id < num_symbols; ++id) {
    std::string name;
    LAHAR_RETURN_NOT_OK(r->Str(&name));
    SymbolId got = db->interner_->Intern(name);
    if (got != id) {
      return Status::InvalidArgument("duplicate symbol in snapshot");
    }
  }

  uint64_t num_schemas;
  LAHAR_RETURN_NOT_OK(r->U64(&num_schemas));
  for (uint64_t i = 0; i < num_schemas; ++i) {
    EventSchema schema;
    uint64_t arity;
    LAHAR_RETURN_NOT_OK(r->U32(&schema.type));
    LAHAR_RETURN_NOT_OK(r->U64(&arity));
    schema.attr_names.resize(arity);
    for (uint64_t a = 0; a < arity; ++a) {
      LAHAR_RETURN_NOT_OK(r->U32(&schema.attr_names[a]));
    }
    LAHAR_RETURN_NOT_OK(r->U64(&schema.num_key_attrs));
    LAHAR_RETURN_NOT_OK(db->DeclareSchema(std::move(schema)));
  }

  uint64_t num_relations;
  LAHAR_RETURN_NOT_OK(r->U64(&num_relations));
  for (uint64_t i = 0; i < num_relations; ++i) {
    uint32_t name;
    uint64_t arity, num_tuples;
    LAHAR_RETURN_NOT_OK(r->U32(&name));
    LAHAR_RETURN_NOT_OK(r->U64(&arity));
    if (name >= db->interner_->size()) {
      return Status::InvalidArgument("relation name id out of range");
    }
    LAHAR_ASSIGN_OR_RETURN(Relation * rel,
                           db->DeclareRelation(db->interner_->Name(name),
                                               arity));
    LAHAR_RETURN_NOT_OK(r->U64(&num_tuples));
    for (uint64_t t = 0; t < num_tuples; ++t) {
      ValueTuple tuple;
      LAHAR_RETURN_NOT_OK(ReadValueTuple(r, &tuple));
      LAHAR_RETURN_NOT_OK(rel->Insert(std::move(tuple)));
    }
  }

  uint64_t num_streams;
  LAHAR_RETURN_NOT_OK(r->U64(&num_streams));
  for (uint64_t i = 0; i < num_streams; ++i) {
    LAHAR_ASSIGN_OR_RETURN(Stream s, Stream::LoadFrom(r));
    LAHAR_RETURN_NOT_OK(db->AddStream(std::move(s)).status());
  }
  LAHAR_RETURN_NOT_OK(r->U32(&db->horizon_));
  return db;
}

}  // namespace lahar
