// Possible worlds (Section 2.1/2.3): deterministic instantiations of a
// probabilistic event database, with sampling, probability computation, and
// exhaustive enumeration for brute-force reference evaluation in tests.
#ifndef LAHAR_MODEL_WORLD_H_
#define LAHAR_MODEL_WORLD_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "model/database.h"

namespace lahar {

/// \brief One possible world: a concrete trajectory per stream.
///
/// values[s][t] is the domain index taken by stream s at timestep t
/// (t = 1..horizon of that stream; index 0 unused; kBottom = no event).
struct World {
  std::vector<std::vector<DomainIndex>> values;
};

/// Samples a world from the database's distribution.
World SampleWorld(const EventDatabase& db, Rng* rng);

/// Probability mu(W) of a world: product of per-stream trajectory
/// probabilities (streams are independent; within a stream, Eq. (1)).
double WorldProb(const EventDatabase& db, const World& world);

/// The deterministic events present in `world` at timestep t (events whose
/// stream value is not bottom), with key then value attributes.
std::vector<Event> WorldEventsAt(const EventDatabase& db, const World& world,
                                 Timestamp t);

/// Enumerates every positive-probability world, invoking `fn(world, prob)`.
/// Exponential in streams x timesteps; intended only for tiny test databases.
/// Returns the total probability mass visited (should be ~1).
double EnumerateWorlds(const EventDatabase& db,
                       const std::function<void(const World&, double)>& fn);

}  // namespace lahar

#endif  // LAHAR_MODEL_WORLD_H_
