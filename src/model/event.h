// Deterministic and probabilistic events (Section 2 of the paper).
//
// An event conforms to EventType(ID, a1..an, T): a type, a key (the ID,
// possibly multi-attribute), value attributes, and a timestamp. A
// probabilistic event replaces the value attributes with a partial random
// variable: a distribution over value tuples that may also place mass on
// bottom (the event did not happen at all).
#ifndef LAHAR_MODEL_EVENT_H_
#define LAHAR_MODEL_EVENT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "model/value.h"

namespace lahar {

/// \brief Schema of an event type: EventType(ID, a1..an, T).
///
/// The first `num_key_attrs` attributes form the event key (the underlined
/// ID in the paper); the rest are value attributes carrying the uncertainty.
struct EventSchema {
  SymbolId type = 0;                   ///< interned event-type name, e.g. "At"
  std::vector<SymbolId> attr_names;    ///< key attributes first
  size_t num_key_attrs = 1;

  size_t arity() const { return attr_names.size(); }
  size_t num_value_attrs() const { return attr_names.size() - num_key_attrs; }
};

/// \brief A deterministic event: one tuple of a stream at one timestep.
struct Event {
  SymbolId type = 0;
  ValueTuple attrs;   ///< key attributes followed by value attributes
  Timestamp t = 0;
};

/// \brief One outcome of a probabilistic event's partial random variable.
struct Outcome {
  ValueTuple values;  ///< the value attributes (key is fixed per stream)
  double p = 0.0;
};

/// \brief A probabilistic event: P[e = d] over value tuples d, plus bottom.
///
/// Invariant (checked by Validate): sum of outcome probabilities plus
/// bottom_p equals 1 up to tolerance, and every probability is in [0,1].
struct ProbabilisticEvent {
  Timestamp t = 0;
  std::vector<Outcome> outcomes;  ///< distinct tuples with non-zero mass
  double bottom_p = 1.0;          ///< probability the event did not occur

  /// Checks the distribution invariant.
  Status Validate() const;
};

}  // namespace lahar

#endif  // LAHAR_MODEL_EVENT_H_
