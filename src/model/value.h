// Attribute values: a compact tagged scalar that is either null, an interned
// symbol (strings such as people, rooms), or a 64-bit integer.
#ifndef LAHAR_MODEL_VALUE_H_
#define LAHAR_MODEL_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/interner.h"

namespace lahar {

/// Discrete timestep. The timeline is 1..T; 0 means "before the stream".
using Timestamp = uint32_t;

/// \brief A single attribute value: null, interned symbol, or integer.
///
/// Values are 16 bytes, trivially copyable, and compare/hash as integers.
/// Symbols require the owning Interner to render as text.
class Value {
 public:
  enum class Kind : uint8_t { kNull = 0, kSymbol = 1, kInt = 2 };

  /// Null value (used for padding / don't-care).
  Value() : kind_(Kind::kNull), int_(0) {}

  static Value Symbol(SymbolId id) {
    Value v;
    v.kind_ = Kind::kSymbol;
    v.int_ = id;
    return v;
  }
  static Value Int(int64_t x) {
    Value v;
    v.kind_ = Kind::kInt;
    v.int_ = x;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_symbol() const { return kind_ == Kind::kSymbol; }
  bool is_int() const { return kind_ == Kind::kInt; }

  /// Requires is_symbol().
  SymbolId symbol() const { return static_cast<SymbolId>(int_); }
  /// Requires is_int().
  int64_t int_value() const { return int_; }

  bool operator==(const Value& o) const {
    return kind_ == o.kind_ && int_ == o.int_;
  }
  bool operator!=(const Value& o) const { return !(*this == o); }
  /// Total order (kind first, then payload) for use in sorted containers.
  bool operator<(const Value& o) const {
    if (kind_ != o.kind_) return kind_ < o.kind_;
    return int_ < o.int_;
  }

  size_t Hash() const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(kind_) << 62) ^
                                 static_cast<uint64_t>(int_));
  }

  /// Renders for debugging; symbols are resolved through `interner`.
  std::string ToString(const Interner& interner) const;

 private:
  Kind kind_;
  int64_t int_;
};

/// A tuple of values (a row, an event's attributes, or a relation tuple).
using ValueTuple = std::vector<Value>;

struct ValueTupleHash {
  size_t operator()(const ValueTuple& t) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& v : t) h = h * 1315423911ULL + v.Hash();
    return h;
  }
};

/// Renders a tuple as "(a, b, c)" for debugging.
std::string ToString(const ValueTuple& t, const Interner& interner);

}  // namespace lahar

#endif  // LAHAR_MODEL_VALUE_H_
