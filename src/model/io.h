// Plain-text serialization of probabilistic event databases, so pipelines
// can hand streams between processes and the CLI can query saved data.
//
// Format (one directive per line, '#' comments, whitespace separated):
//
//   lahar-db 1
//   schema <type> <num_key_attrs> <attr-name>...
//   relation <name> <arity>
//   rel <name> <value>...
//   stream <type> independent|markov <horizon>
//   key <value>...
//   domain <tuple>...            tuple = value[,value...]
//   marginal <t> <idx>:<p>...    idx into [bottom, domain...]; rest is 0
//   initial <idx>:<p>...         (markov)
//   cpt <t> <from>:<to>:<p>...   unlisted entries are 0 (rows renormalized
//                                must already sum to 1)
//
// Values are symbols by default; integers are written as #<n>. Symbols
// containing whitespace, ',' or '#' are not supported by this format.
#ifndef LAHAR_MODEL_IO_H_
#define LAHAR_MODEL_IO_H_

#include <iosfwd>
#include <string>

#include "model/database.h"

namespace lahar {

/// Serializes the database (schemas, relations, streams).
Status WriteDatabase(const EventDatabase& db, std::ostream* out);
Status WriteDatabaseToFile(const EventDatabase& db, const std::string& path);

/// Parses a database from the text format.
Result<std::unique_ptr<EventDatabase>> ReadDatabase(std::istream* in);
Result<std::unique_ptr<EventDatabase>> ReadDatabaseFromFile(
    const std::string& path);

}  // namespace lahar

#endif  // LAHAR_MODEL_IO_H_
