// The probabilistic event database (Section 2.3): a set of probabilistic
// event streams plus optional finite ("standard") relations used by query
// conditions such as Hallway(l) or Office(p, l).
#ifndef LAHAR_MODEL_DATABASE_H_
#define LAHAR_MODEL_DATABASE_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "model/event.h"
#include "model/stream.h"

namespace lahar {

/// Dense id of a stream within its database.
using StreamId = uint32_t;

/// \brief A finite deterministic relation, e.g. Hallway(l) or Office(p, l).
class Relation {
 public:
  Relation(SymbolId name, size_t arity) : name_(name), arity_(arity) {}

  SymbolId name() const { return name_; }
  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }

  Status Insert(ValueTuple t);
  bool Contains(const ValueTuple& t) const { return tuples_.count(t) > 0; }

  const std::unordered_set<ValueTuple, ValueTupleHash>& tuples() const {
    return tuples_;
  }

 private:
  SymbolId name_;
  size_t arity_;
  std::unordered_set<ValueTuple, ValueTupleHash> tuples_;
};

/// \brief A probabilistic event database: streams, schemas, and relations.
///
/// Owns the string interner so that symbols are consistent across queries,
/// streams, and relations. Streams are appended and then referenced by
/// StreamId everywhere else.
class EventDatabase {
 public:
  EventDatabase() : interner_(std::make_unique<Interner>()) {}

  Interner& interner() { return *interner_; }
  const Interner& interner() const { return *interner_; }

  /// Shorthand for interning a string and wrapping it as a symbol Value.
  Value Sym(std::string_view s) { return Value::Symbol(interner_->Intern(s)); }

  /// Declares an event-type schema. Fails if the type already exists.
  Status DeclareSchema(EventSchema schema);

  /// Returns the schema for an event type, or nullptr if undeclared.
  const EventSchema* FindSchema(SymbolId type) const;

  /// Adds a stream; its type must have a declared schema with a matching
  /// arity and the key must match the schema's key arity.
  Result<StreamId> AddStream(Stream stream);

  size_t num_streams() const { return streams_.size(); }
  Stream& stream(StreamId id) { return streams_[id]; }
  const Stream& stream(StreamId id) const { return streams_[id]; }

  /// All streams of the given event type.
  std::vector<StreamId> StreamsOfType(SymbolId type) const;

  /// Creates (or returns the existing) relation `name` with `arity`.
  Result<Relation*> DeclareRelation(std::string_view name, size_t arity);

  /// Returns the relation, or nullptr if undeclared.
  const Relation* FindRelation(SymbolId name) const;
  Relation* FindRelation(SymbolId name);

  /// All declared schemas / relations (serialization and tooling).
  const std::unordered_map<SymbolId, EventSchema>& schemas() const {
    return schemas_;
  }
  const std::unordered_map<SymbolId, std::unique_ptr<Relation>>& relations()
      const {
    return relations_;
  }

  /// Appends one timestep to a stream (see Stream::AppendMarginal /
  /// AppendInitial / AppendMarkovStep) and advances the database clock.
  Status AppendMarginal(StreamId id, std::vector<double> dist);
  Status AppendInitial(StreamId id, std::vector<double> dist);
  Status AppendMarkovStep(StreamId id, Matrix cpt);

  /// Largest horizon across streams (the database clock T).
  Timestamp horizon() const { return horizon_; }

  /// Total number of (timestep, outcome) entries across all streams — the
  /// "tuples" count used in throughput metrics.
  size_t TotalTuples() const;

  /// Validates all streams.
  Status Validate() const;

  /// Binary snapshot of the whole database (interner, schemas, relations,
  /// streams, clock) for checkpointing. Deterministic: iteration over the
  /// unordered containers is sorted before writing, so identical databases
  /// produce identical bytes. LoadFrom rebuilds an equivalent database with
  /// the same symbol ids and stream ids.
  Status SaveTo(serial::Writer* w) const;
  static Result<std::unique_ptr<EventDatabase>> LoadFrom(serial::Reader* r);

 private:
  std::unique_ptr<Interner> interner_;
  std::unordered_map<SymbolId, EventSchema> schemas_;
  std::vector<Stream> streams_;
  std::unordered_map<SymbolId, std::vector<StreamId>> streams_by_type_;
  std::unordered_map<SymbolId, std::unique_ptr<Relation>> relations_;
  Timestamp horizon_ = 0;
};

}  // namespace lahar

#endif  // LAHAR_MODEL_DATABASE_H_
