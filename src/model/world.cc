#include "model/world.h"

namespace lahar {

World SampleWorld(const EventDatabase& db, Rng* rng) {
  World w;
  w.values.reserve(db.num_streams());
  for (StreamId s = 0; s < db.num_streams(); ++s) {
    w.values.push_back(db.stream(s).SampleTrajectory(rng));
  }
  return w;
}

double WorldProb(const EventDatabase& db, const World& world) {
  double p = 1.0;
  for (StreamId s = 0; s < db.num_streams() && p > 0; ++s) {
    p *= db.stream(s).TrajectoryProb(world.values[s]);
  }
  return p;
}

std::vector<Event> WorldEventsAt(const EventDatabase& db, const World& world,
                                 Timestamp t) {
  std::vector<Event> events;
  for (StreamId s = 0; s < db.num_streams(); ++s) {
    const Stream& stream = db.stream(s);
    if (t < 1 || t > stream.horizon()) continue;
    DomainIndex d = world.values[s][t];
    if (d == kBottom) continue;
    Event e;
    e.type = stream.type();
    e.t = t;
    e.attrs = stream.key();
    const ValueTuple& vals = stream.TupleOf(d);
    e.attrs.insert(e.attrs.end(), vals.begin(), vals.end());
    events.push_back(std::move(e));
  }
  return events;
}

namespace {

// Recursively assigns stream s's trajectory, timestep by timestep.
void Enumerate(const EventDatabase& db, World* w, StreamId s, Timestamp t,
               double prob, double* visited,
               const std::function<void(const World&, double)>& fn) {
  if (prob <= 0) return;
  if (s == db.num_streams()) {
    *visited += prob;
    fn(*w, prob);
    return;
  }
  const Stream& stream = db.stream(s);
  if (t > stream.horizon()) {
    Enumerate(db, w, s + 1, 1, prob, visited, fn);
    return;
  }
  for (DomainIndex d = 0; d < stream.domain_size(); ++d) {
    double step;
    if (t == 1 || !stream.markovian()) {
      step = stream.ProbAt(t, d);
    } else {
      step = stream.CptAt(t - 1).At(w->values[s][t - 1], d);
    }
    if (step <= 0) continue;
    w->values[s][t] = d;
    Enumerate(db, w, s, t + 1, prob * step, visited, fn);
  }
  w->values[s][t] = kBottom;
}

}  // namespace

double EnumerateWorlds(const EventDatabase& db,
                       const std::function<void(const World&, double)>& fn) {
  World w;
  for (StreamId s = 0; s < db.num_streams(); ++s) {
    w.values.emplace_back(db.stream(s).horizon() + 1, kBottom);
  }
  double visited = 0;
  Enumerate(db, &w, 0, 1, 1.0, &visited, fn);
  return visited;
}

}  // namespace lahar
