#include "model/event.h"

#include <cmath>

namespace lahar {

Status ProbabilisticEvent::Validate() const {
  double total = bottom_p;
  if (bottom_p < -1e-9 || bottom_p > 1 + 1e-9) {
    return Status::InvalidArgument("bottom probability out of [0,1]");
  }
  for (const Outcome& o : outcomes) {
    if (o.p < -1e-9 || o.p > 1 + 1e-9) {
      return Status::InvalidArgument("outcome probability out of [0,1]");
    }
    total += o.p;
  }
  if (std::fabs(total - 1.0) > 1e-6) {
    return Status::InvalidArgument("probabilities sum to " +
                                   std::to_string(total) + ", expected 1");
  }
  return Status::OK();
}

}  // namespace lahar
