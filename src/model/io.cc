#include "model/io.h"

#include <cmath>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>

namespace lahar {
namespace {

std::string ValueToken(const Value& v, const Interner& interner) {
  if (v.is_int()) return "#" + std::to_string(v.int_value());
  if (v.is_symbol()) return interner.Name(v.symbol());
  return "#null";  // never produced by valid databases
}

Result<Value> ParseValueToken(const std::string& token, Interner* interner) {
  if (!token.empty() && token[0] == '#') {
    if (token == "#null") return Value();
    char* end = nullptr;
    long long n = std::strtoll(token.c_str() + 1, &end, 10);
    if (end == nullptr || *end != '\0') {
      return Status::ParseError("bad integer value '" + token + "'");
    }
    return Value::Int(n);
  }
  return Value::Symbol(interner->Intern(token));
}

std::string TupleToken(const ValueTuple& t, const Interner& interner) {
  std::string out;
  for (size_t i = 0; i < t.size(); ++i) {
    if (i) out += ",";
    out += ValueToken(t[i], interner);
  }
  return out;
}

Result<ValueTuple> ParseTupleToken(const std::string& token,
                                   Interner* interner) {
  ValueTuple out;
  std::stringstream ss(token);
  std::string part;
  while (std::getline(ss, part, ',')) {
    LAHAR_ASSIGN_OR_RETURN(Value v, ParseValueToken(part, interner));
    out.push_back(v);
  }
  return out;
}

void WriteSparseDist(const std::vector<double>& dist, std::ostream* out) {
  for (size_t d = 0; d < dist.size(); ++d) {
    if (dist[d] > 0) *out << " " << d << ":" << dist[d];
  }
}

}  // namespace

Status WriteDatabase(const EventDatabase& db, std::ostream* out) {
  const Interner& in = db.interner();
  out->precision(17);
  *out << "lahar-db 1\n";

  for (const auto& [type, schema] : db.schemas()) {
    *out << "schema " << in.Name(type) << " " << schema.num_key_attrs;
    for (SymbolId attr : schema.attr_names) *out << " " << in.Name(attr);
    *out << "\n";
  }
  for (const auto& [name, rel] : db.relations()) {
    *out << "relation " << in.Name(name) << " " << rel->arity() << "\n";
    for (const ValueTuple& t : rel->tuples()) {
      *out << "rel " << in.Name(name);
      for (const Value& v : t) *out << " " << ValueToken(v, in);
      *out << "\n";
    }
  }
  for (StreamId s = 0; s < db.num_streams(); ++s) {
    const Stream& stream = db.stream(s);
    *out << "stream " << in.Name(stream.type()) << " "
         << (stream.markovian() ? "markov" : "independent") << " "
         << stream.horizon() << "\n";
    *out << "key";
    for (const Value& v : stream.key()) *out << " " << ValueToken(v, in);
    *out << "\n";
    *out << "domain";
    for (DomainIndex d = 1; d < stream.domain_size(); ++d) {
      *out << " " << TupleToken(stream.TupleOf(d), in);
    }
    *out << "\n";
    if (!stream.markovian()) {
      for (Timestamp t = 1; t <= stream.horizon(); ++t) {
        const auto& m = stream.MarginalAt(t);
        if (m.empty()) continue;
        *out << "marginal " << t;
        WriteSparseDist(m, out);
        *out << "\n";
      }
    } else {
      *out << "initial";
      WriteSparseDist(stream.MarginalAt(1), out);
      *out << "\n";
      for (Timestamp t = 1; t < stream.horizon(); ++t) {
        const Matrix& cpt = stream.CptAt(t);
        *out << "cpt " << t;
        for (size_t r = 0; r < cpt.rows(); ++r) {
          for (size_t c = 0; c < cpt.cols(); ++c) {
            if (cpt.At(r, c) > 0) {
              *out << " " << r << ":" << c << ":" << cpt.At(r, c);
            }
          }
        }
        *out << "\n";
      }
    }
  }
  if (!out->good()) return Status::Internal("write failed");
  return Status::OK();
}

Status WriteDatabaseToFile(const EventDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open '" + path + "' for writing");
  return WriteDatabase(db, &out);
}

namespace {

// Incremental reader state for the stream being parsed.
struct PendingStream {
  std::unique_ptr<Stream> stream;
  bool has_key = false;
  Timestamp horizon = 0;
};

// Non-throwing numeric parsing: the reader must reject malformed input with
// a Status, never an exception.
Result<size_t> ParseIndex(const std::string& token) {
  if (token.empty()) return Status::ParseError("empty index");
  char* end = nullptr;
  unsigned long v = std::strtoul(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || end == token.c_str()) {
    return Status::ParseError("bad index '" + token + "'");
  }
  return static_cast<size_t>(v);
}

Result<double> ParseProb(const std::string& token) {
  if (token.empty()) return Status::ParseError("empty probability");
  char* end = nullptr;
  double v = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == token.c_str() ||
      !(v >= 0.0) || v > 1.0 + 1e-9) {
    return Status::ParseError("bad probability '" + token + "'");
  }
  return v;
}

Result<std::pair<size_t, double>> ParseIdxProb(const std::string& token) {
  size_t colon = token.find(':');
  if (colon == std::string::npos) {
    return Status::ParseError("expected idx:prob, got '" + token + "'");
  }
  LAHAR_ASSIGN_OR_RETURN(size_t idx, ParseIndex(token.substr(0, colon)));
  LAHAR_ASSIGN_OR_RETURN(double p, ParseProb(token.substr(colon + 1)));
  return std::make_pair(idx, p);
}

}  // namespace

Result<std::unique_ptr<EventDatabase>> ReadDatabase(std::istream* in) {
  auto db = std::make_unique<EventDatabase>();
  std::string line;
  size_t line_no = 0;
  bool saw_header = false;

  // The stream currently being assembled (streams span several lines).
  SymbolId pending_type = 0;
  bool pending_markov = false;
  Timestamp pending_horizon = 0;
  ValueTuple pending_key;
  std::vector<ValueTuple> pending_domain;
  std::vector<std::pair<Timestamp, std::vector<double>>> pending_marginals;
  std::vector<double> pending_initial;
  std::vector<std::pair<Timestamp, Matrix>> pending_cpts;
  bool in_stream = false;

  auto err = [&](const std::string& msg) {
    return Status::ParseError(msg + " at line " + std::to_string(line_no));
  };

  auto flush_stream = [&]() -> Status {
    if (!in_stream) return Status::OK();
    const EventSchema* schema = db->FindSchema(pending_type);
    if (schema == nullptr) {
      return Status::ParseError("stream before its schema");
    }
    Stream stream(pending_type, pending_key,
                  schema->num_value_attrs(), pending_horizon, pending_markov);
    for (const ValueTuple& t : pending_domain) {
      if (t.size() != schema->num_value_attrs()) {
        return Status::ParseError("domain tuple arity does not match schema");
      }
      stream.InternTuple(t);
    }
    if (!pending_markov) {
      for (auto& [t, dist] : pending_marginals) {
        LAHAR_RETURN_NOT_OK(stream.SetMarginal(t, std::move(dist)));
      }
    } else {
      LAHAR_RETURN_NOT_OK(stream.SetInitial(pending_initial));
      for (auto& [t, cpt] : pending_cpts) {
        LAHAR_RETURN_NOT_OK(stream.SetCpt(t, std::move(cpt)));
      }
      LAHAR_RETURN_NOT_OK(stream.FinalizeMarkov());
    }
    LAHAR_RETURN_NOT_OK(db->AddStream(std::move(stream)).status());
    in_stream = false;
    pending_domain.clear();
    pending_marginals.clear();
    pending_initial.clear();
    pending_cpts.clear();
    return Status::OK();
  };

  while (std::getline(*in, line)) {
    ++line_no;
    std::stringstream ss(line);
    std::string directive;
    if (!(ss >> directive) || directive[0] == '#') continue;
    if (!saw_header) {
      int version = 0;
      if (directive != "lahar-db" || !(ss >> version) || version != 1) {
        return err("expected 'lahar-db 1' header");
      }
      saw_header = true;
      continue;
    }
    if (directive == "schema") {
      LAHAR_RETURN_NOT_OK(flush_stream());
      std::string type;
      size_t num_key = 0;
      if (!(ss >> type >> num_key)) return err("bad schema line");
      EventSchema schema;
      schema.type = db->interner().Intern(type);
      schema.num_key_attrs = num_key;
      std::string attr;
      while (ss >> attr) {
        schema.attr_names.push_back(db->interner().Intern(attr));
      }
      LAHAR_RETURN_NOT_OK(db->DeclareSchema(std::move(schema)));
    } else if (directive == "relation") {
      LAHAR_RETURN_NOT_OK(flush_stream());
      std::string name;
      size_t arity = 0;
      if (!(ss >> name >> arity)) return err("bad relation line");
      LAHAR_RETURN_NOT_OK(db->DeclareRelation(name, arity).status());
    } else if (directive == "rel") {
      std::string name;
      if (!(ss >> name)) return err("bad rel line");
      Relation* found = db->FindRelation(db->interner().Intern(name));
      if (found == nullptr) return err("rel before relation declaration");
      ValueTuple tuple;
      std::string token;
      while (ss >> token) {
        LAHAR_ASSIGN_OR_RETURN(Value v,
                               ParseValueToken(token, &db->interner()));
        tuple.push_back(v);
      }
      LAHAR_RETURN_NOT_OK(found->Insert(tuple));
    } else if (directive == "stream") {
      LAHAR_RETURN_NOT_OK(flush_stream());
      std::string type, kind;
      if (!(ss >> type >> kind >> pending_horizon)) {
        return err("bad stream line");
      }
      pending_type = db->interner().Intern(type);
      if (kind == "markov") {
        pending_markov = true;
      } else if (kind == "independent") {
        pending_markov = false;
      } else {
        return err("stream kind must be 'independent' or 'markov'");
      }
      pending_key.clear();
      in_stream = true;
    } else if (directive == "key") {
      if (!in_stream) return err("key outside a stream");
      std::string token;
      pending_key.clear();
      while (ss >> token) {
        LAHAR_ASSIGN_OR_RETURN(Value v,
                               ParseValueToken(token, &db->interner()));
        pending_key.push_back(v);
      }
    } else if (directive == "domain") {
      if (!in_stream) return err("domain outside a stream");
      std::string token;
      while (ss >> token) {
        LAHAR_ASSIGN_OR_RETURN(ValueTuple t,
                               ParseTupleToken(token, &db->interner()));
        pending_domain.push_back(std::move(t));
      }
    } else if (directive == "marginal") {
      if (!in_stream) return err("marginal outside a stream");
      Timestamp t = 0;
      if (!(ss >> t)) return err("bad marginal line");
      std::vector<double> dist(pending_domain.size() + 1, 0.0);
      std::string token;
      while (ss >> token) {
        LAHAR_ASSIGN_OR_RETURN(auto ip, ParseIdxProb(token));
        if (ip.first >= dist.size()) return err("marginal index out of range");
        dist[ip.first] = ip.second;
      }
      pending_marginals.emplace_back(t, std::move(dist));
    } else if (directive == "initial") {
      if (!in_stream) return err("initial outside a stream");
      pending_initial.assign(pending_domain.size() + 1, 0.0);
      std::string token;
      while (ss >> token) {
        LAHAR_ASSIGN_OR_RETURN(auto ip, ParseIdxProb(token));
        if (ip.first >= pending_initial.size()) {
          return err("initial index out of range");
        }
        pending_initial[ip.first] = ip.second;
      }
    } else if (directive == "cpt") {
      if (!in_stream) return err("cpt outside a stream");
      Timestamp t = 0;
      if (!(ss >> t)) return err("bad cpt line");
      const size_t D = pending_domain.size() + 1;
      Matrix cpt(D, D, 0.0);
      std::string token;
      while (ss >> token) {
        size_t c1 = token.find(':');
        size_t c2 = token.find(':', c1 + 1);
        if (c1 == std::string::npos || c2 == std::string::npos) {
          return err("expected from:to:prob, got '" + token + "'");
        }
        LAHAR_ASSIGN_OR_RETURN(size_t from, ParseIndex(token.substr(0, c1)));
        LAHAR_ASSIGN_OR_RETURN(size_t to,
                               ParseIndex(token.substr(c1 + 1, c2 - c1 - 1)));
        if (from >= D || to >= D) return err("cpt index out of range");
        LAHAR_ASSIGN_OR_RETURN(cpt.At(from, to),
                               ParseProb(token.substr(c2 + 1)));
      }
      pending_cpts.emplace_back(t, std::move(cpt));
    } else {
      return err("unknown directive '" + directive + "'");
    }
  }
  LAHAR_RETURN_NOT_OK(flush_stream());
  if (!saw_header) return Status::ParseError("empty or headerless input");
  return db;
}

Result<std::unique_ptr<EventDatabase>> ReadDatabaseFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  return ReadDatabase(&in);
}

}  // namespace lahar
