#include "model/value.h"

namespace lahar {

std::string Value::ToString(const Interner& interner) const {
  switch (kind_) {
    case Kind::kNull: return "null";
    case Kind::kSymbol: return "'" + interner.Name(symbol()) + "'";
    case Kind::kInt: return std::to_string(int_);
  }
  return "?";
}

std::string ToString(const ValueTuple& t, const Interner& interner) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i) out += ", ";
    out += t[i].ToString(interner);
  }
  out += ")";
  return out;
}

}  // namespace lahar
