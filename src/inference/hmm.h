// Discrete hidden Markov model with the inference routines the paper's
// pipeline needs (Section 2.4):
//
//  * Filter      — forward algorithm; per-step posteriors given past
//                  observations only (the real-time, *independent* stream).
//  * Smooth      — forward-backward; smoothed marginals plus the pairwise
//                  conditional probability tables P[X(t+1) | X(t), o(1:T)]
//                  (the archived, *Markovian* stream of Fig. 3(d)).
//  * MapPath     — Viterbi decoding (the archived MAP baseline).
//
// Observations enter as per-timestep likelihood vectors L_t[state] =
// P[o_t | X_t = state], which keeps the model independent of the sensor
// alphabet (the RFID sensor model produces them; see sim/sensor.h).
#ifndef LAHAR_INFERENCE_HMM_H_
#define LAHAR_INFERENCE_HMM_H_

#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/status.h"

namespace lahar {

/// Per-timestep observation likelihoods: likelihoods[t][s], t = 0-based.
using Likelihoods = std::vector<std::vector<double>>;

/// \brief A discrete HMM over states 0..N-1.
class DiscreteHmm {
 public:
  /// `prior` must be a distribution of size N; `transition` an N x N
  /// row-stochastic matrix.
  static Result<DiscreteHmm> Create(std::vector<double> prior,
                                    Matrix transition);

  size_t num_states() const { return prior_.size(); }
  const std::vector<double>& prior() const { return prior_; }
  const Matrix& transition() const { return transition_; }

  /// Forward filtering: out[t][s] = P[X_t = s | o_0..o_t].
  Result<std::vector<std::vector<double>>> Filter(
      const Likelihoods& likelihoods) const;

  /// Output of forward-backward smoothing.
  struct Smoothed {
    /// marginals[t][s] = P[X_t = s | all observations].
    std::vector<std::vector<double>> marginals;
    /// cpts[t].At(i, j) = P[X_{t+1} = j | X_t = i, all observations],
    /// for t = 0..T-2. Rows with zero posterior mass fall back to the
    /// prior transition row (they never contribute probability).
    std::vector<Matrix> cpts;
  };

  /// Forward-backward smoothing with pairwise CPT extraction.
  Result<Smoothed> Smooth(const Likelihoods& likelihoods) const;

  /// Viterbi decoding: the most likely state sequence given observations.
  Result<std::vector<size_t>> MapPath(const Likelihoods& likelihoods) const;

  /// Samples a trajectory of length T from the generative model (no
  /// observations) — used by the simulator for ground-truth motion.
  std::vector<size_t> SampleTrajectory(size_t T, Rng* rng) const;

 private:
  Status CheckLikelihoods(const Likelihoods& likelihoods) const;

  std::vector<double> prior_;
  Matrix transition_;
};

}  // namespace lahar

#endif  // LAHAR_INFERENCE_HMM_H_
