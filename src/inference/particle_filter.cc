#include "inference/particle_filter.h"

namespace lahar {

ParticleFilter::ParticleFilter(const DiscreteHmm* model, size_t num_particles,
                               Rng rng)
    : model_(model), rng_(rng) {
  particles_.reserve(num_particles);
  for (size_t i = 0; i < num_particles; ++i) {
    size_t s = rng_.Categorical(model_->prior());
    particles_.push_back(
        s >= model_->num_states() ? 0 : static_cast<uint32_t>(s));
  }
  weights_.resize(num_particles);
}

std::vector<double> ParticleFilter::Step(
    const std::vector<double>& likelihood) {
  const size_t N = model_->num_states();
  const size_t P = particles_.size();

  // Predict: move each particle independently through the motion model.
  // (The initial particles already represent the prior at the first step.)
  if (!first_step_) {
    std::vector<double> row(N);
    for (uint32_t& p : particles_) {
      const double* r = model_->transition().Row(p);
      row.assign(r, r + N);
      size_t next = rng_.Categorical(row);
      if (next < N) p = static_cast<uint32_t>(next);
    }
  }
  first_step_ = false;

  // Weight by the observation likelihood.
  double total = 0;
  for (size_t i = 0; i < P; ++i) {
    weights_[i] = likelihood[particles_[i]];
    total += weights_[i];
  }
  if (total <= 0) {
    // Total depletion: re-seed from the likelihood itself.
    std::vector<double> fallback = likelihood;
    if (Sum(fallback) <= 0) fallback.assign(N, 1.0);
    for (uint32_t& p : particles_) {
      size_t s = rng_.Categorical(fallback);
      if (s < N) p = static_cast<uint32_t>(s);
    }
    std::fill(weights_.begin(), weights_.end(), 1.0);
  }

  // Multinomial resampling.
  scratch_.resize(P);
  for (size_t i = 0; i < P; ++i) {
    size_t pick = rng_.Categorical(weights_);
    scratch_[i] = particles_[pick < P ? pick : 0];
  }
  particles_.swap(scratch_);

  // Histogram of resampled particles = the filtered marginal estimate.
  std::vector<double> hist(N, 0.0);
  for (uint32_t p : particles_) hist[p] += 1.0;
  for (double& h : hist) h /= static_cast<double>(P);
  return hist;
}

std::vector<std::vector<double>> RunParticleFilter(
    const DiscreteHmm& model, const Likelihoods& likelihoods,
    size_t num_particles, Rng rng) {
  ParticleFilter pf(&model, num_particles, rng);
  std::vector<std::vector<double>> out;
  out.reserve(likelihoods.size());
  for (const auto& l : likelihoods) out.push_back(pf.Step(l));
  return out;
}

}  // namespace lahar
