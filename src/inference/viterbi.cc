#include "inference/viterbi.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lahar {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

double SafeLog(double p) { return p > 0 ? std::log(p) : kNegInf; }

}  // namespace

std::vector<DomainIndex> MlePath(const Stream& stream) {
  std::vector<DomainIndex> path(stream.horizon() + 1, kBottom);
  for (Timestamp t = 1; t <= stream.horizon(); ++t) {
    const auto& m = stream.MarginalAt(t);
    double best = -1;
    for (DomainIndex d = 0; d < m.size(); ++d) {
      if (m[d] > best) {
        best = m[d];
        path[t] = d;
      }
    }
  }
  return path;
}

std::vector<DomainIndex> ViterbiPath(const Stream& stream) {
  if (!stream.markovian() || stream.horizon() == 0) return MlePath(stream);
  const Timestamp T = stream.horizon();
  const size_t D = stream.domain_size();

  // delta[d] = best log-probability of a trajectory ending in d at time t.
  std::vector<double> delta(D, kNegInf);
  const auto& init = stream.MarginalAt(1);
  for (size_t d = 0; d < D && d < init.size(); ++d) {
    delta[d] = SafeLog(init[d]);
  }
  // back[t][d] = argmax predecessor of d at time t.
  std::vector<std::vector<DomainIndex>> back(T + 1,
                                             std::vector<DomainIndex>(D, 0));
  std::vector<double> next(D, kNegInf);
  for (Timestamp t = 2; t <= T; ++t) {
    const Matrix& cpt = stream.CptAt(t - 1);
    std::fill(next.begin(), next.end(), kNegInf);
    for (size_t d = 0; d < D; ++d) {
      if (delta[d] == kNegInf) continue;
      const double* row = cpt.Row(d);
      for (size_t d2 = 0; d2 < D; ++d2) {
        double cand = delta[d] + SafeLog(row[d2]);
        if (cand > next[d2]) {
          next[d2] = cand;
          back[t][d2] = static_cast<DomainIndex>(d);
        }
      }
    }
    delta.swap(next);  // next is refilled at the top of the loop
  }

  std::vector<DomainIndex> path(T + 1, kBottom);
  DomainIndex best = 0;
  for (size_t d = 1; d < D; ++d) {
    if (delta[d] > delta[best]) best = static_cast<DomainIndex>(d);
  }
  path[T] = best;
  for (Timestamp t = T; t > 1; --t) {
    path[t - 1] = back[t][path[t]];
  }
  return path;
}

}  // namespace lahar
