// Bootstrap particle filter (Section 2.4): the sample-based inference the
// paper's real-time pipeline runs on raw RFID readings.
//
// Each particle is a guess about the tag's current state; prediction moves
// it through the motion model, weighting scores it against the sensor
// likelihood, and multinomial resampling concentrates particles on likely
// states. The per-step histogram of particles is the filtered marginal fed
// to Lahar as an *independent* stream — including the "particle churn"
// sampling noise the paper discusses (particles drifting out of and back
// into a room spark spurious low-probability events), which exact
// forward filtering would not reproduce.
#ifndef LAHAR_INFERENCE_PARTICLE_FILTER_H_
#define LAHAR_INFERENCE_PARTICLE_FILTER_H_

#include <vector>

#include "inference/hmm.h"

namespace lahar {

/// \brief Bootstrap particle filter over a discrete HMM.
class ParticleFilter {
 public:
  /// Draws `num_particles` initial particles from the model prior.
  ParticleFilter(const DiscreteHmm* model, size_t num_particles, Rng rng);

  /// One predict-weight-resample step; returns the particle histogram
  /// (an estimate of the filtered marginal). If every particle receives
  /// zero weight, particles are re-seeded from the exact filtered posterior
  /// of the likelihood alone (total particle depletion recovery).
  std::vector<double> Step(const std::vector<double>& likelihood);

  size_t num_particles() const { return particles_.size(); }
  const std::vector<uint32_t>& particles() const { return particles_; }

 private:
  const DiscreteHmm* model_;
  Rng rng_;
  std::vector<uint32_t> particles_;  // current state per particle
  std::vector<double> weights_;
  std::vector<uint32_t> scratch_;
  bool first_step_ = true;
};

/// Runs a particle filter over a whole observation sequence; out[t][s] is
/// the particle histogram at step t (t = 0-based).
std::vector<std::vector<double>> RunParticleFilter(
    const DiscreteHmm& model, const Likelihoods& likelihoods,
    size_t num_particles, Rng rng);

}  // namespace lahar

#endif  // LAHAR_INFERENCE_PARTICLE_FILTER_H_
