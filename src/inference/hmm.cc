#include "inference/hmm.h"

#include <cmath>
#include <limits>

namespace lahar {

Result<DiscreteHmm> DiscreteHmm::Create(std::vector<double> prior,
                                        Matrix transition) {
  if (prior.empty()) return Status::InvalidArgument("empty prior");
  if (transition.rows() != prior.size() ||
      transition.cols() != prior.size()) {
    return Status::InvalidArgument("transition shape mismatch");
  }
  double total = Sum(prior);
  if (std::fabs(total - 1.0) > 1e-6) {
    return Status::InvalidArgument("prior does not sum to 1");
  }
  for (size_t r = 0; r < transition.rows(); ++r) {
    double row = 0;
    for (size_t c = 0; c < transition.cols(); ++c) row += transition.At(r, c);
    if (std::fabs(row - 1.0) > 1e-6) {
      return Status::InvalidArgument("transition row " + std::to_string(r) +
                                     " does not sum to 1");
    }
  }
  DiscreteHmm hmm;
  hmm.prior_ = std::move(prior);
  hmm.transition_ = std::move(transition);
  return hmm;
}

Status DiscreteHmm::CheckLikelihoods(const Likelihoods& likelihoods) const {
  if (likelihoods.empty()) {
    return Status::InvalidArgument("no observations");
  }
  for (const auto& l : likelihoods) {
    if (l.size() != num_states()) {
      return Status::InvalidArgument("likelihood vector size mismatch");
    }
  }
  return Status::OK();
}

Result<std::vector<std::vector<double>>> DiscreteHmm::Filter(
    const Likelihoods& likelihoods) const {
  LAHAR_RETURN_NOT_OK(CheckLikelihoods(likelihoods));
  const size_t T = likelihoods.size();
  const size_t N = num_states();
  std::vector<std::vector<double>> out(T, std::vector<double>(N, 0.0));
  std::vector<double> alpha = prior_;
  std::vector<double> scratch;
  for (size_t t = 0; t < T; ++t) {
    if (t > 0) {
      transition_.LeftMultiplyInto(alpha, &scratch);
      alpha.swap(scratch);
    }
    for (size_t s = 0; s < N; ++s) alpha[s] *= likelihoods[t][s];
    double total = Sum(alpha);
    if (total <= 0) {
      return Status::InvalidArgument(
          "observation at step " + std::to_string(t) +
          " has zero likelihood under the model");
    }
    for (double& a : alpha) a /= total;
    out[t] = alpha;
  }
  return out;
}

Result<DiscreteHmm::Smoothed> DiscreteHmm::Smooth(
    const Likelihoods& likelihoods) const {
  LAHAR_RETURN_NOT_OK(CheckLikelihoods(likelihoods));
  const size_t T = likelihoods.size();
  const size_t N = num_states();

  // Scaled forward pass.
  std::vector<std::vector<double>> alpha(T, std::vector<double>(N, 0.0));
  std::vector<double> cur = prior_;
  std::vector<double> scratch;
  for (size_t t = 0; t < T; ++t) {
    if (t > 0) {
      transition_.LeftMultiplyInto(cur, &scratch);
      cur.swap(scratch);
    }
    for (size_t s = 0; s < N; ++s) cur[s] *= likelihoods[t][s];
    double total = Sum(cur);
    if (total <= 0) {
      return Status::InvalidArgument(
          "observation at step " + std::to_string(t) +
          " has zero likelihood under the model");
    }
    for (double& a : cur) a /= total;
    alpha[t] = cur;
  }

  // Scaled backward pass.
  std::vector<std::vector<double>> beta(T, std::vector<double>(N, 1.0));
  for (size_t t = T - 1; t-- > 0;) {
    for (size_t i = 0; i < N; ++i) {
      double acc = 0;
      const double* row = transition_.Row(i);
      for (size_t j = 0; j < N; ++j) {
        acc += row[j] * likelihoods[t + 1][j] * beta[t + 1][j];
      }
      beta[t][i] = acc;
    }
    Normalize(&beta[t]);
  }

  Smoothed out;
  out.marginals.assign(T, std::vector<double>(N, 0.0));
  for (size_t t = 0; t < T; ++t) {
    for (size_t s = 0; s < N; ++s) {
      out.marginals[t][s] = alpha[t][s] * beta[t][s];
    }
    Normalize(&out.marginals[t]);
  }

  // Pairwise CPTs: P[X_{t+1}=j | X_t=i, o_{1:T}]
  //   proportional to T(i,j) * L_{t+1}(j) * beta_{t+1}(j).
  out.cpts.reserve(T > 0 ? T - 1 : 0);
  for (size_t t = 0; t + 1 < T; ++t) {
    Matrix cpt(N, N, 0.0);
    for (size_t i = 0; i < N; ++i) {
      double total = 0;
      for (size_t j = 0; j < N; ++j) {
        double v =
            transition_.At(i, j) * likelihoods[t + 1][j] * beta[t + 1][j];
        cpt.At(i, j) = v;
        total += v;
      }
      if (total > 0) {
        for (size_t j = 0; j < N; ++j) cpt.At(i, j) /= total;
      } else {
        // Unreachable given the observations; fall back to the prior row so
        // the CPT stays stochastic (this row carries no posterior mass).
        for (size_t j = 0; j < N; ++j) cpt.At(i, j) = transition_.At(i, j);
      }
    }
    out.cpts.push_back(std::move(cpt));
  }
  return out;
}

Result<std::vector<size_t>> DiscreteHmm::MapPath(
    const Likelihoods& likelihoods) const {
  LAHAR_RETURN_NOT_OK(CheckLikelihoods(likelihoods));
  const size_t T = likelihoods.size();
  const size_t N = num_states();
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  auto safe_log = [](double p) {
    return p > 0 ? std::log(p) : -std::numeric_limits<double>::infinity();
  };

  std::vector<double> delta(N);
  for (size_t s = 0; s < N; ++s) {
    delta[s] = safe_log(prior_[s]) + safe_log(likelihoods[0][s]);
  }
  std::vector<std::vector<size_t>> back(T, std::vector<size_t>(N, 0));
  std::vector<double> next(N);
  for (size_t t = 1; t < T; ++t) {
    std::fill(next.begin(), next.end(), kNegInf);
    for (size_t i = 0; i < N; ++i) {
      if (delta[i] == kNegInf) continue;
      const double* row = transition_.Row(i);
      for (size_t j = 0; j < N; ++j) {
        double cand = delta[i] + safe_log(row[j]);
        if (cand > next[j]) {
          next[j] = cand;
          back[t][j] = i;
        }
      }
    }
    for (size_t j = 0; j < N; ++j) next[j] += safe_log(likelihoods[t][j]);
    delta.swap(next);  // next is refilled at the top of the loop
  }
  size_t best = 0;
  for (size_t s = 1; s < N; ++s) {
    if (delta[s] > delta[best]) best = s;
  }
  if (delta[best] == kNegInf) {
    return Status::InvalidArgument("no state sequence explains observations");
  }
  std::vector<size_t> path(T);
  path[T - 1] = best;
  for (size_t t = T - 1; t > 0; --t) path[t - 1] = back[t][path[t]];
  return path;
}

std::vector<size_t> DiscreteHmm::SampleTrajectory(size_t T, Rng* rng) const {
  std::vector<size_t> path(T, 0);
  if (T == 0) return path;
  size_t cur = rng->Categorical(prior_);
  if (cur >= num_states()) cur = 0;
  path[0] = cur;
  std::vector<double> row(num_states());
  for (size_t t = 1; t < T; ++t) {
    const double* r = transition_.Row(cur);
    row.assign(r, r + num_states());
    size_t next = rng->Categorical(row);
    cur = next >= num_states() ? cur : next;
    path[t] = cur;
  }
  return path;
}

}  // namespace lahar
