// Viterbi decoding (the MAP baseline of Section 4): the single most likely
// trajectory of a probabilistic stream under its own chain measure, Eq. (1).
// For a Markovian stream this is classic Viterbi over the CPTs; for an
// independent stream it degenerates to the per-timestep argmax (MLE).
#ifndef LAHAR_INFERENCE_VITERBI_H_
#define LAHAR_INFERENCE_VITERBI_H_

#include <vector>

#include "model/stream.h"

namespace lahar {

/// The most likely trajectory (values[1..horizon]; index 0 unused).
/// Ties break toward the smaller domain index (bottom first).
std::vector<DomainIndex> ViterbiPath(const Stream& stream);

/// Per-timestep argmax of the marginals — the MLE determinization used in
/// the real-time baseline. Timesteps with no distribution yield bottom.
std::vector<DomainIndex> MlePath(const Stream& stream);

}  // namespace lahar

#endif  // LAHAR_INFERENCE_VITERBI_H_
