
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/bindings.cc" "src/CMakeFiles/lahar.dir/analysis/bindings.cc.o" "gcc" "src/CMakeFiles/lahar.dir/analysis/bindings.cc.o.d"
  "/root/repo/src/analysis/classify.cc" "src/CMakeFiles/lahar.dir/analysis/classify.cc.o" "gcc" "src/CMakeFiles/lahar.dir/analysis/classify.cc.o.d"
  "/root/repo/src/analysis/plan.cc" "src/CMakeFiles/lahar.dir/analysis/plan.cc.o" "gcc" "src/CMakeFiles/lahar.dir/analysis/plan.cc.o.d"
  "/root/repo/src/automaton/nfa.cc" "src/CMakeFiles/lahar.dir/automaton/nfa.cc.o" "gcc" "src/CMakeFiles/lahar.dir/automaton/nfa.cc.o.d"
  "/root/repo/src/automaton/symbols.cc" "src/CMakeFiles/lahar.dir/automaton/symbols.cc.o" "gcc" "src/CMakeFiles/lahar.dir/automaton/symbols.cc.o.d"
  "/root/repo/src/common/interner.cc" "src/CMakeFiles/lahar.dir/common/interner.cc.o" "gcc" "src/CMakeFiles/lahar.dir/common/interner.cc.o.d"
  "/root/repo/src/common/matrix.cc" "src/CMakeFiles/lahar.dir/common/matrix.cc.o" "gcc" "src/CMakeFiles/lahar.dir/common/matrix.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/lahar.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/lahar.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/lahar.dir/common/status.cc.o" "gcc" "src/CMakeFiles/lahar.dir/common/status.cc.o.d"
  "/root/repo/src/engine/deterministic_engine.cc" "src/CMakeFiles/lahar.dir/engine/deterministic_engine.cc.o" "gcc" "src/CMakeFiles/lahar.dir/engine/deterministic_engine.cc.o.d"
  "/root/repo/src/engine/extended_engine.cc" "src/CMakeFiles/lahar.dir/engine/extended_engine.cc.o" "gcc" "src/CMakeFiles/lahar.dir/engine/extended_engine.cc.o.d"
  "/root/repo/src/engine/lahar.cc" "src/CMakeFiles/lahar.dir/engine/lahar.cc.o" "gcc" "src/CMakeFiles/lahar.dir/engine/lahar.cc.o.d"
  "/root/repo/src/engine/reference.cc" "src/CMakeFiles/lahar.dir/engine/reference.cc.o" "gcc" "src/CMakeFiles/lahar.dir/engine/reference.cc.o.d"
  "/root/repo/src/engine/regular_engine.cc" "src/CMakeFiles/lahar.dir/engine/regular_engine.cc.o" "gcc" "src/CMakeFiles/lahar.dir/engine/regular_engine.cc.o.d"
  "/root/repo/src/engine/safe_engine.cc" "src/CMakeFiles/lahar.dir/engine/safe_engine.cc.o" "gcc" "src/CMakeFiles/lahar.dir/engine/safe_engine.cc.o.d"
  "/root/repo/src/engine/sampling_engine.cc" "src/CMakeFiles/lahar.dir/engine/sampling_engine.cc.o" "gcc" "src/CMakeFiles/lahar.dir/engine/sampling_engine.cc.o.d"
  "/root/repo/src/engine/streaming.cc" "src/CMakeFiles/lahar.dir/engine/streaming.cc.o" "gcc" "src/CMakeFiles/lahar.dir/engine/streaming.cc.o.d"
  "/root/repo/src/inference/hmm.cc" "src/CMakeFiles/lahar.dir/inference/hmm.cc.o" "gcc" "src/CMakeFiles/lahar.dir/inference/hmm.cc.o.d"
  "/root/repo/src/inference/particle_filter.cc" "src/CMakeFiles/lahar.dir/inference/particle_filter.cc.o" "gcc" "src/CMakeFiles/lahar.dir/inference/particle_filter.cc.o.d"
  "/root/repo/src/inference/viterbi.cc" "src/CMakeFiles/lahar.dir/inference/viterbi.cc.o" "gcc" "src/CMakeFiles/lahar.dir/inference/viterbi.cc.o.d"
  "/root/repo/src/metrics/quality.cc" "src/CMakeFiles/lahar.dir/metrics/quality.cc.o" "gcc" "src/CMakeFiles/lahar.dir/metrics/quality.cc.o.d"
  "/root/repo/src/model/database.cc" "src/CMakeFiles/lahar.dir/model/database.cc.o" "gcc" "src/CMakeFiles/lahar.dir/model/database.cc.o.d"
  "/root/repo/src/model/event.cc" "src/CMakeFiles/lahar.dir/model/event.cc.o" "gcc" "src/CMakeFiles/lahar.dir/model/event.cc.o.d"
  "/root/repo/src/model/io.cc" "src/CMakeFiles/lahar.dir/model/io.cc.o" "gcc" "src/CMakeFiles/lahar.dir/model/io.cc.o.d"
  "/root/repo/src/model/stream.cc" "src/CMakeFiles/lahar.dir/model/stream.cc.o" "gcc" "src/CMakeFiles/lahar.dir/model/stream.cc.o.d"
  "/root/repo/src/model/value.cc" "src/CMakeFiles/lahar.dir/model/value.cc.o" "gcc" "src/CMakeFiles/lahar.dir/model/value.cc.o.d"
  "/root/repo/src/model/world.cc" "src/CMakeFiles/lahar.dir/model/world.cc.o" "gcc" "src/CMakeFiles/lahar.dir/model/world.cc.o.d"
  "/root/repo/src/query/ast.cc" "src/CMakeFiles/lahar.dir/query/ast.cc.o" "gcc" "src/CMakeFiles/lahar.dir/query/ast.cc.o.d"
  "/root/repo/src/query/condition.cc" "src/CMakeFiles/lahar.dir/query/condition.cc.o" "gcc" "src/CMakeFiles/lahar.dir/query/condition.cc.o.d"
  "/root/repo/src/query/normalize.cc" "src/CMakeFiles/lahar.dir/query/normalize.cc.o" "gcc" "src/CMakeFiles/lahar.dir/query/normalize.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/lahar.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/lahar.dir/query/parser.cc.o.d"
  "/root/repo/src/query/printer.cc" "src/CMakeFiles/lahar.dir/query/printer.cc.o" "gcc" "src/CMakeFiles/lahar.dir/query/printer.cc.o.d"
  "/root/repo/src/sim/floorplan.cc" "src/CMakeFiles/lahar.dir/sim/floorplan.cc.o" "gcc" "src/CMakeFiles/lahar.dir/sim/floorplan.cc.o.d"
  "/root/repo/src/sim/scenarios.cc" "src/CMakeFiles/lahar.dir/sim/scenarios.cc.o" "gcc" "src/CMakeFiles/lahar.dir/sim/scenarios.cc.o.d"
  "/root/repo/src/sim/sensor.cc" "src/CMakeFiles/lahar.dir/sim/sensor.cc.o" "gcc" "src/CMakeFiles/lahar.dir/sim/sensor.cc.o.d"
  "/root/repo/src/sim/trace_generator.cc" "src/CMakeFiles/lahar.dir/sim/trace_generator.cc.o" "gcc" "src/CMakeFiles/lahar.dir/sim/trace_generator.cc.o.d"
  "/root/repo/src/sim/trajectory.cc" "src/CMakeFiles/lahar.dir/sim/trajectory.cc.o" "gcc" "src/CMakeFiles/lahar.dir/sim/trajectory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
