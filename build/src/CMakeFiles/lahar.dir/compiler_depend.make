# Empty compiler generated dependencies file for lahar.
# This may be replaced when dependencies are built.
