file(REMOVE_RECURSE
  "liblahar.a"
)
