# Empty dependencies file for elder_care.
# This may be replaced when dependencies are built.
