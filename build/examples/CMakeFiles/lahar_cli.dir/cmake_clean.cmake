file(REMOVE_RECURSE
  "CMakeFiles/lahar_cli.dir/lahar_cli.cpp.o"
  "CMakeFiles/lahar_cli.dir/lahar_cli.cpp.o.d"
  "lahar_cli"
  "lahar_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lahar_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
