# Empty dependencies file for lahar_cli.
# This may be replaced when dependencies are built.
