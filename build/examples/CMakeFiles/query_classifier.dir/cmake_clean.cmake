file(REMOVE_RECURSE
  "CMakeFiles/query_classifier.dir/query_classifier.cpp.o"
  "CMakeFiles/query_classifier.dir/query_classifier.cpp.o.d"
  "query_classifier"
  "query_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
