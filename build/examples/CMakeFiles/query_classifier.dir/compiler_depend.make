# Empty compiler generated dependencies file for query_classifier.
# This may be replaced when dependencies are built.
