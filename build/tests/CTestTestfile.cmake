# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/reference_test[1]_include.cmake")
include("/root/repo/build/tests/regular_engine_test[1]_include.cmake")
include("/root/repo/build/tests/extended_engine_test[1]_include.cmake")
include("/root/repo/build/tests/safe_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sampling_engine_test[1]_include.cmake")
include("/root/repo/build/tests/deterministic_engine_test[1]_include.cmake")
include("/root/repo/build/tests/lahar_test[1]_include.cmake")
include("/root/repo/build/tests/inference_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/automaton_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/streaming_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
