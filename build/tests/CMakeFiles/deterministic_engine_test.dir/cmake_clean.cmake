file(REMOVE_RECURSE
  "CMakeFiles/deterministic_engine_test.dir/deterministic_engine_test.cc.o"
  "CMakeFiles/deterministic_engine_test.dir/deterministic_engine_test.cc.o.d"
  "deterministic_engine_test"
  "deterministic_engine_test.pdb"
  "deterministic_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deterministic_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
