# Empty dependencies file for regular_engine_test.
# This may be replaced when dependencies are built.
