file(REMOVE_RECURSE
  "CMakeFiles/regular_engine_test.dir/regular_engine_test.cc.o"
  "CMakeFiles/regular_engine_test.dir/regular_engine_test.cc.o.d"
  "regular_engine_test"
  "regular_engine_test.pdb"
  "regular_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regular_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
