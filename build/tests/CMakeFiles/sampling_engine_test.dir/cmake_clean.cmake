file(REMOVE_RECURSE
  "CMakeFiles/sampling_engine_test.dir/sampling_engine_test.cc.o"
  "CMakeFiles/sampling_engine_test.dir/sampling_engine_test.cc.o.d"
  "sampling_engine_test"
  "sampling_engine_test.pdb"
  "sampling_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
