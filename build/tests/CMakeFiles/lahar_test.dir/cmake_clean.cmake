file(REMOVE_RECURSE
  "CMakeFiles/lahar_test.dir/lahar_test.cc.o"
  "CMakeFiles/lahar_test.dir/lahar_test.cc.o.d"
  "lahar_test"
  "lahar_test.pdb"
  "lahar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lahar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
