# Empty compiler generated dependencies file for lahar_test.
# This may be replaced when dependencies are built.
