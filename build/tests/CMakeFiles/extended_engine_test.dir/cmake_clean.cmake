file(REMOVE_RECURSE
  "CMakeFiles/extended_engine_test.dir/extended_engine_test.cc.o"
  "CMakeFiles/extended_engine_test.dir/extended_engine_test.cc.o.d"
  "extended_engine_test"
  "extended_engine_test.pdb"
  "extended_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
