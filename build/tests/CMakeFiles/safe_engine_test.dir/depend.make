# Empty dependencies file for safe_engine_test.
# This may be replaced when dependencies are built.
