file(REMOVE_RECURSE
  "CMakeFiles/safe_engine_test.dir/safe_engine_test.cc.o"
  "CMakeFiles/safe_engine_test.dir/safe_engine_test.cc.o.d"
  "safe_engine_test"
  "safe_engine_test.pdb"
  "safe_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
