# Empty compiler generated dependencies file for bench_t01_query_complexity.
# This may be replaced when dependencies are built.
