file(REMOVE_RECURSE
  "CMakeFiles/bench_t01_query_complexity.dir/bench_t01_query_complexity.cc.o"
  "CMakeFiles/bench_t01_query_complexity.dir/bench_t01_query_complexity.cc.o.d"
  "bench_t01_query_complexity"
  "bench_t01_query_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t01_query_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
