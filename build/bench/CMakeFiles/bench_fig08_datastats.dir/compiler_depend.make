# Empty compiler generated dependencies file for bench_fig08_datastats.
# This may be replaced when dependencies are built.
