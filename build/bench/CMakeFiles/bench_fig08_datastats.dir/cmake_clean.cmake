file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_datastats.dir/bench_fig08_datastats.cc.o"
  "CMakeFiles/bench_fig08_datastats.dir/bench_fig08_datastats.cc.o.d"
  "bench_fig08_datastats"
  "bench_fig08_datastats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_datastats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
