# Empty dependencies file for bench_fig14_safe_plans.
# This may be replaced when dependencies are built.
