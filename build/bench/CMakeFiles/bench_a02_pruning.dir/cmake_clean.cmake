file(REMOVE_RECURSE
  "CMakeFiles/bench_a02_pruning.dir/bench_a02_pruning.cc.o"
  "CMakeFiles/bench_a02_pruning.dir/bench_a02_pruning.cc.o.d"
  "bench_a02_pruning"
  "bench_a02_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a02_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
