# Empty compiler generated dependencies file for bench_a02_pruning.
# This may be replaced when dependencies are built.
