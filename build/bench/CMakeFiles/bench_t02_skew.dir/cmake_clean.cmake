file(REMOVE_RECURSE
  "CMakeFiles/bench_t02_skew.dir/bench_t02_skew.cc.o"
  "CMakeFiles/bench_t02_skew.dir/bench_t02_skew.cc.o.d"
  "bench_t02_skew"
  "bench_t02_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t02_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
