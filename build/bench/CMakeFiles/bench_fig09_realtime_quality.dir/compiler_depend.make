# Empty compiler generated dependencies file for bench_fig09_realtime_quality.
# This may be replaced when dependencies are built.
