file(REMOVE_RECURSE
  "CMakeFiles/bench_a01_ablations.dir/bench_a01_ablations.cc.o"
  "CMakeFiles/bench_a01_ablations.dir/bench_a01_ablations.cc.o.d"
  "bench_a01_ablations"
  "bench_a01_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a01_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
