# Empty dependencies file for bench_a01_ablations.
# This may be replaced when dependencies are built.
