file(REMOVE_RECURSE
  "CMakeFiles/bench_t03_sampling_accuracy.dir/bench_t03_sampling_accuracy.cc.o"
  "CMakeFiles/bench_t03_sampling_accuracy.dir/bench_t03_sampling_accuracy.cc.o.d"
  "bench_t03_sampling_accuracy"
  "bench_t03_sampling_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t03_sampling_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
