# Empty compiler generated dependencies file for bench_t03_sampling_accuracy.
# This may be replaced when dependencies are built.
