# Empty compiler generated dependencies file for bench_fig10_archived_quality.
# This may be replaced when dependencies are built.
