file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_room_occupancy.dir/bench_fig11_room_occupancy.cc.o"
  "CMakeFiles/bench_fig11_room_occupancy.dir/bench_fig11_room_occupancy.cc.o.d"
  "bench_fig11_room_occupancy"
  "bench_fig11_room_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_room_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
