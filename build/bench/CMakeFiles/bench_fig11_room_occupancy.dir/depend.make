# Empty dependencies file for bench_fig11_room_occupancy.
# This may be replaced when dependencies are built.
