#!/usr/bin/env python3
"""Compare two benchmark runs and fail on throughput regressions.

Usage:
    bench/compare.py BASELINE CURRENT [--threshold 0.10] [--metric ticks_per_sec]
                     [--min-metric NAME:VALUE ...] [--max-metric NAME:VALUE ...]

Each input file holds one JSON object per line — either raw JSON or the
`JSON {...}`-prefixed lines the bench binaries print (so a captured stdout
works as-is:  ./bench_t05_kernel_speedup | grep ^JSON > current.json).

Records are keyed by every non-metric field (bench, workload, config,
chains, ...; run-size fields like ticks/time_ms are ignored). For each key
present in both files the metric is compared; a drop of more than
--threshold (default 10%) is a regression and the script exits 1. Keys
present in only one file are reported but not fatal, so adding a new bench
cell doesn't break the gate.

--min-metric NAME:VALUE adds an absolute floor on top of the relative
check: every record in CURRENT carrying field NAME must be >= VALUE, and
at least one such record must exist (a silently-missing metric would
otherwise pass). --max-metric NAME:VALUE is the mirror-image ceiling
(every record carrying NAME must be <= VALUE), for metrics where smaller
is better: memory per key, resident fractions, latencies. Both are
repeatable. Example:

    bench/compare.py base.json current.json \
        --min-metric scaling_efficiency_8t:3.0 \
        --max-metric bytes_per_registered_key_ratio:0.15
"""

import argparse
import json
import sys

# Fields describing how long the cell ran rather than what it measured;
# excluded from the match key along with the metric itself. Diagnostic
# outputs (latencies, cache counters, derived ratios) live here too: they
# vary run to run and must not split otherwise-identical cells apart.
RUN_SIZE_FIELDS = {
    "ticks", "time_ms", "reps", "tick_p99_us",
    "early_tick_us", "late_tick_us", "flatness", "speedup",
    "memo_entries", "memo_evictions", "row_evictions", "row_rebuilds",
    "pushes", "scaling_efficiency_8t", "windows", "barrier_p99_us",
    "chains", "sharing_groups", "shared_steps_saved", "sharing_ratio_64",
    "simd_chains", "striped", "bytes_per_chain", "kernel_simd_speedup",
    "bytes_per_chain_reduction",
    "create_ms", "registered_keys", "resident_chains", "stub_chains",
    "spilled_chains", "spills", "promotions", "rehydrations",
    "bytes_resident", "bytes_per_registered_key", "resident_fraction",
    "bytes_per_registered_key_ratio", "sparse_resident_fraction",
    "dense_ticks_ratio",
}


def load(path, metric):
    records = {}
    benches = set()
    raw = []
    with open(path) as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if line.startswith("JSON "):
                line = line[len("JSON "):]
            if not line.startswith("{"):
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                raise SystemExit(f"{path}:{line_no}: bad JSON line: {e}")
            raw.append(obj)
            if "bench" in obj:
                benches.add(obj["bench"])
            if metric not in obj:
                continue
            key = tuple(
                sorted((k, v) for k, v in obj.items()
                       if k != metric and k not in RUN_SIZE_FIELDS))
            records[key] = float(obj[metric])
    return records, benches, raw


def parse_bound_metric(flag, spec):
    name, sep, value = spec.rpartition(":")
    if not sep or not name:
        raise SystemExit(f"{flag} wants NAME:VALUE, got '{spec}'")
    try:
        return name, float(value)
    except ValueError:
        raise SystemExit(f"{flag} '{spec}': '{value}' is not a number")


def check_bound_metrics(raw, specs, path, ceiling):
    """Absolute floors (or ceilings) over the raw records of the current run."""
    flag = "--max-metric" if ceiling else "--min-metric"
    failures = []
    for name, bound in specs:
        hits = [obj for obj in raw if name in obj]
        if not hits:
            failures.append(f"{flag} {name}:{bound:g}: no record in "
                            f"{path} carries '{name}'")
            continue
        for obj in hits:
            got = float(obj[name])
            ident = " ".join(f"{k}={v}" for k, v in sorted(obj.items())
                             if k != name)
            if (got > bound) if ceiling else (got < bound):
                failures.append(f"{flag} {name}:{bound:g}: got "
                                f"{got:g} ({ident})")
            elif ceiling:
                print(f"[ceiling-ok] {name}={got:g} <= {bound:g} ({ident})")
            else:
                print(f"[floor-ok] {name}={got:g} >= {bound:g} ({ident})")
    return failures


def describe(key):
    return " ".join(f"{k}={v}" for k, v in key)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="fatal fractional drop (default 0.10 = 10%%)")
    parser.add_argument("--metric", default="ticks_per_sec",
                        help="JSON field to compare (higher is better)")
    parser.add_argument("--min-metric", action="append", default=[],
                        metavar="NAME:VALUE", dest="min_metric",
                        help="absolute floor: every CURRENT record with "
                             "field NAME must be >= VALUE, and at least one "
                             "must exist (repeatable)")
    parser.add_argument("--max-metric", action="append", default=[],
                        metavar="NAME:VALUE", dest="max_metric",
                        help="absolute ceiling: every CURRENT record with "
                             "field NAME must be <= VALUE, and at least one "
                             "must exist (repeatable)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="BENCH",
                        help="bench name that must appear in BOTH files; "
                             "a missing required bench is a clear failure "
                             "instead of silently comparing nothing "
                             "(repeatable)")
    args = parser.parse_args()

    base, base_benches, _ = load(args.baseline, args.metric)
    cur, cur_benches, cur_raw = load(args.current, args.metric)
    if not base:
        raise SystemExit(f"{args.baseline}: no records with '{args.metric}'")
    if not cur:
        raise SystemExit(f"{args.current}: no records with '{args.metric}'")

    missing = []
    for name in args.require:
        if name not in base_benches:
            missing.append(f"required bench '{name}' has no records in "
                           f"baseline {args.baseline} — record a baseline "
                           f"for it (see docs/PERF.md)")
        if name not in cur_benches:
            missing.append(f"required bench '{name}' has no records in "
                           f"current run {args.current} — did the bench "
                           f"binary run and print JSON lines?")
    if missing:
        raise SystemExit("\n".join(missing))

    floor_failures = check_bound_metrics(
        cur_raw,
        [parse_bound_metric("--min-metric", s) for s in args.min_metric],
        args.current, ceiling=False)
    floor_failures += check_bound_metrics(
        cur_raw,
        [parse_bound_metric("--max-metric", s) for s in args.max_metric],
        args.current, ceiling=True)

    regressions = []
    for key in sorted(base):
        if key not in cur:
            print(f"[only-baseline] {describe(key)}")
            continue
        old, new = base[key], cur[key]
        delta = (new - old) / old if old > 0 else 0.0
        status = "ok"
        if old > 0 and delta < -args.threshold:
            status = "REGRESSION"
            regressions.append(key)
        print(f"[{status}] {describe(key)}: "
              f"{old:.1f} -> {new:.1f} ({delta:+.1%})")
    for key in sorted(set(cur) - set(base)):
        print(f"[only-current] {describe(key)}")

    failed = False
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%} on {args.metric}", file=sys.stderr)
        failed = True
    else:
        print(f"\nno regressions beyond {args.threshold:.0%} "
              f"on {args.metric}")
    if floor_failures:
        for f in floor_failures:
            print(f, file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
