// Figure 12: real-time throughput (tuples/second) versus the number of
// concurrently tracked tags, for Q1 (Regular selection) and Q2 (Extended
// Regular sequence), comparing the MLE determinization, Lahar on
// independent streams, and naive random sampling (epsilon = delta = 0.1).
//
// Paper shape (log-scale): MLE is fastest but less than 2x above Lahar;
// sampling is orders of magnitude slower and degrades further on Q2.
#include "bench_util.h"
#include "engine/extended_engine.h"
#include "engine/sampling_engine.h"

using namespace lahar;
using namespace lahar::bench;

namespace {

struct Row {
  size_t tags;
  double mle;
  double lahar;
  double sampling;
};

Row RunOne(const char* query, size_t tags) {
  const Timestamp kHorizon = 60;
  auto scenario = RandomWalkScenario(tags, kHorizon, /*seed=*/7 + tags);
  auto db = scenario->BuildDatabase(StreamKind::kFiltered);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return {};
  }
  size_t tuples = (*db)->TotalTuples();
  Lahar lahar(db->get());
  auto prepared = lahar.Prepare(query);
  if (!prepared.ok()) {
    std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
    return {};
  }

  Row row;
  row.tags = tags;
  row.mle = Throughput(tuples, TimeMs([&] {
    auto engine =
        DeterministicEngine::Create(prepared->ast, **db, Determinization::kMle);
    auto sat = engine->Run();
    (void)sat;
  }));
  row.lahar = Throughput(tuples, TimeMs([&] {
    auto engine = ExtendedRegularEngine::Create(prepared->normalized, **db);
    auto probs = engine->Run();
    (void)probs;
  }));
  row.sampling = Throughput(tuples, TimeMs([&] {
    SamplingOptions options;  // epsilon = delta = 0.1 -> 150 samples
    auto engine = SamplingEngine::Create(prepared->ast, **db, options);
    auto probs = engine->Run();
    (void)probs;
  }));
  return row;
}

void RunQuery(const char* label, const char* query) {
  std::printf("\n%s: %s\n", label, query);
  std::printf("%-6s %14s %14s %14s %10s\n", "tags", "MLE(t/s)", "Lahar(t/s)",
              "Sampling(t/s)", "MLE/Lahar");
  for (size_t tags : {1, 5, 10, 25, 50, 100}) {
    Row row = RunOne(query, tags);
    std::printf("%-6zu %14.0f %14.0f %14.0f %9.2fx\n", row.tags, row.mle,
                row.lahar, row.sampling,
                row.lahar > 0 ? row.mle / row.lahar : 0.0);
  }
}

}  // namespace

int main() {
  std::printf("Fig 12 | Real-time throughput vs concurrent tags "
              "(horizon=60, particle-filtered streams)\n");
  RunQuery("Fig 12(a) Q1 [Regular selection]", kQ1Selection);
  RunQuery("Fig 12(b) Q2 [Extended Regular sequence]", kQ2Sequence);
  std::printf("\n(paper: MLE < 2x over Lahar; sampling orders of magnitude "
              "slower, worse on Q2)\n");
  return 0;
}
