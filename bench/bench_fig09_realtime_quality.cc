// Figure 9: real-time scenario quality. Precision, recall, and F1 of the
// coffee-room query as a function of the threshold rho, comparing Lahar on
// particle-filtered independent streams against the MLE determinization.
// One query per tag (the paper's per-person architecture), pooled counts.
//
// Paper shape: for rho in roughly [0.1, 0.5] Lahar beats MLE on both
// precision (up to ~16 points) and recall (~11 points); at small rho,
// particle churn makes Lahar's precision *worse* than MLE's.
#include <algorithm>

#include "bench_util.h"

using namespace lahar;
using namespace lahar::bench;

int main() {
  const Timestamp kHorizon = 500;
  const Timestamp kTolerance = 8;
  const size_t kWorkers = 6;

  auto scenario = OfficeScenario(kWorkers, kHorizon, /*seed=*/2008,
                                 QualityConfig());
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  TagQualityData data = CollectTagQuality(*scenario, StreamKind::kFiltered,
                                          Determinization::kMle);
  QualityScore mle = data.BaselineScore(kTolerance);
  std::printf("Fig 9 | Real-time quality: Lahar(Independent) vs MLE\n");
  std::printf("workers=%zu horizon=%u tolerance=%u truth_events=%zu\n",
              kWorkers, kHorizon, kTolerance, data.total_truth);

  PrintQualityHeader("Fig 9(a-c): precision / recall / F1 vs rho",
                     {"Lahar", "MLE"});
  double best_gain_p = -1, best_gain_r = -1;
  bool low_rho_worse = false;
  for (double rho : {0.0, 0.02, 0.05, 0.08, 0.10, 0.12, 0.15, 0.20, 0.25,
                     0.30, 0.40, 0.50}) {
    QualityScore s = data.LaharAt(rho, kTolerance);
    PrintQualityRow(rho, {s, mle});
    if (rho >= 0.0799) {
      best_gain_p = std::max(best_gain_p, s.precision - mle.precision);
      best_gain_r = std::max(best_gain_r, s.recall - mle.recall);
    }
    if (rho > 0 && rho < 0.0799 && s.precision < mle.precision) {
      low_rho_worse = true;
    }
  }
  std::printf(
      "\nmax gain over MLE in the useful band: precision %+0.1f pts, recall "
      "%+0.1f pts\n",
      100 * best_gain_p, 100 * best_gain_r);
  std::printf("particle churn hurts precision at small rho: %s\n",
              low_rho_worse ? "yes (as in the paper)" : "no");
  std::printf("(paper: +16 pts precision, +11 pts recall; churn-driven "
              "precision loss below rho ~ 0.1)\n");
  return 0;
}
