// Figure 10: archived scenario quality. Precision, recall, and F1 of the
// coffee-room query over smoothed Markovian streams (Lahar) against the
// Viterbi MAP determinization, plus the Section 4.2.1 ablation that drops
// the CPTs and treats the smoothed marginals as independent. One query per
// tag, pooled counts.
//
// Paper shape: archived gains exceed the real-time ones (the paper reports
// ~+20 points precision and a massive +47 points recall near rho = 0.12,
// with Lahar's F1 above Viterbi's along the whole interval); dropping the
// correlations costs quality (the paper loses ~8 points of precision).
#include <algorithm>

#include "bench_util.h"

using namespace lahar;
using namespace lahar::bench;

int main() {
  const Timestamp kHorizon = 400;
  const Timestamp kTolerance = 8;
  const size_t kWorkers = 6;

  auto scenario = OfficeScenario(kWorkers, kHorizon, /*seed=*/2008,
                                 QualityConfig());
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  TagQualityData markov = CollectTagQuality(*scenario, StreamKind::kSmoothed,
                                            Determinization::kViterbi);
  TagQualityData indep = CollectTagQuality(
      *scenario, StreamKind::kSmoothedIndependent, Determinization::kViterbi);
  QualityScore viterbi = markov.BaselineScore(kTolerance);

  std::printf("Fig 10 | Archived quality: Lahar(Markov) vs Viterbi MAP\n");
  std::printf("workers=%zu horizon=%u tolerance=%u truth_events=%zu\n",
              kWorkers, kHorizon, kTolerance, markov.total_truth);
  PrintQualityHeader(
      "Fig 10(a-c): precision / recall / F1 vs rho "
      "(+ independent-marginals ablation)",
      {"Markov", "Viterbi", "IndepAbl"});
  double best_gain_p = -1, best_gain_r = -1;
  int f1_wins = 0, rows = 0, markov_beats_indep = 0;
  for (double rho : {0.02, 0.05, 0.08, 0.10, 0.12, 0.15, 0.20, 0.25, 0.30,
                     0.40, 0.50}) {
    QualityScore m = markov.LaharAt(rho, kTolerance);
    QualityScore i = indep.LaharAt(rho, kTolerance);
    PrintQualityRow(rho, {m, viterbi, i});
    if (rho >= 0.0799) {
      best_gain_p = std::max(best_gain_p, m.precision - viterbi.precision);
      best_gain_r = std::max(best_gain_r, m.recall - viterbi.recall);
    }
    f1_wins += m.f1 >= viterbi.f1;
    markov_beats_indep += m.f1 >= i.f1;
    ++rows;
  }
  std::printf(
      "\nmax gain over Viterbi in the useful band: precision %+0.1f pts, "
      "recall %+0.1f pts\n",
      100 * best_gain_p, 100 * best_gain_r);
  std::printf("Markov F1 >= Viterbi F1 at %d/%d thresholds; "
              "Markov F1 >= independent-ablation F1 at %d/%d\n",
              f1_wins, rows, markov_beats_indep, rows);
  std::printf("(paper: ~+20 pts precision / +47 pts recall at rho=0.12; "
              "Markov F1 above Viterbi everywhere; correlations add ~8 pts)\n");
  return 0;
}
