// Chain-lifecycle residency experiment (docs/PERF.md "Chain lifecycle"):
// how much memory and throughput a standing query costs per *registered*
// binding when only a small slice of the population is active.
//
// Three cells, each run in `dense` mode (always-materialized reference,
// lifecycle off) and `lifecycle` mode (lazy materialization + cold-chain
// spill), with every published P[q@t] cross-checked bitwise between the
// modes — the bench doubles as an equivalence harness and exits 1 on any
// drift:
//
//   sparse           100k registered tags (20k in smoke), ~2% ever active:
//                    1% active all run, 0.5% active in the first half only
//                    (they go cold and spill), 0.5% active in two windows
//                    (spill, then rehydrate or re-promote). The memory
//                    cell: bytes_per_registered_key in both modes.
//   dense_all_active every tag active every tick — the adversarial cell
//                    for the lifecycle layer's per-tick overhead. Gated on
//                    throughput parity with the dense reference.
//   wide_floorplan   the WideFloorplanScenario simulation (diurnal badge
//                    population on a fixed building) end to end.
//
// The summary record carries the CI gates (see .github/workflows/ci.yml):
//   bytes_per_registered_key_ratio  lifecycle / dense bytes per registered
//                                   key on the sparse cell; --max-metric
//                                   ceiling 0.15 (the lifecycle tables must
//                                   cost < 15% of materialized chains).
//   sparse_resident_fraction        resident chains / registered on the
//                                   sparse cell at end of run; --max-metric
//                                   ceiling 0.05 (~2% active + slack).
//   dense_ticks_ratio               lifecycle / dense ticks-per-sec on the
//                                   all-active cell; --min-metric floor 0.9
//                                   (spill accounting must not tax the
//                                   striped hot path). The all-active
//                                   lifecycle config keeps lazy off: every
//                                   chain would promote on tick 1 anyway,
//                                   and materializing at Create keeps them
//                                   in the SoA stripes. The lazy config is
//                                   also run and reported (mode
//                                   lifecycle_lazy) but not gated — its
//                                   solo promoted chains step off-stripe by
//                                   design.
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/streaming.h"

using namespace lahar;
using namespace lahar::bench;

namespace {

// The synthetic cells use a 32-room location domain: wide enough that a
// materialized chain's domain-sized working buffers dominate its footprint
// (the situation the lifecycle layer targets — stub cost is independent of
// the domain), matching the deployment story of a building-wide antenna
// map rather than a toy corridor.
constexpr size_t kNumRooms = 32;

// Exact binary fractions summing to exactly 1.0, rotated by `salt` so
// neighbouring chains do not all carry identical probabilities. Exactness
// matters: the dense/lifecycle cross-check is bitwise, so the inputs must
// not depend on accumulation order.
std::vector<double> ActiveDist(size_t salt) {
  static const double kMass[4] = {0.5, 0.25, 0.125, 0.125};
  std::vector<double> dist(1 + kNumRooms, 0.0);
  for (size_t j = 0; j < 4; ++j) {
    dist[1 + (salt + 7 * j) % kNumRooms] = kMass[j];
  }
  return dist;
}

// Is tag i active at tick t in the sparse cell? Per 200 tags: #0 is active
// the whole run, #100 in two windows (first third, last third), #50 and
// #150 in the first half only, the rest never. 2% of the population ever
// carries evidence; the rest are quiet all-bottom keys.
bool SparseActiveAt(size_t i, Timestamp t, Timestamp horizon) {
  switch (i % 200) {
    case 0: return true;
    case 100: return t <= horizon / 3 || t > (2 * horizon) / 3;
    case 50:
    case 150: return t <= horizon / 2;
    default: return false;
  }
}

// Synthetic database: one At(tag; location) stream per tag over kNumRooms
// rooms (all in Room). `all_active` populates every tick; otherwise only
// SparseActiveAt ticks get a marginal row. Quiet ticks stay unset: an
// empty marginal row is certain-bottom, which every engine skips (and the
// lifecycle layer never wakes for) — so the sparse database itself is also
// O(active) storage.
Result<std::unique_ptr<EventDatabase>> BuildDb(size_t num_tags,
                                               Timestamp horizon,
                                               bool all_active) {
  auto db = std::make_unique<EventDatabase>();
  SymbolId at = db->interner().Intern("At");
  EventSchema schema;
  schema.type = at;
  schema.attr_names = {db->interner().Intern("tag"),
                       db->interner().Intern("location")};
  schema.num_key_attrs = 1;
  LAHAR_RETURN_NOT_OK(db->DeclareSchema(schema));
  LAHAR_ASSIGN_OR_RETURN(Relation * room, db->DeclareRelation("Room", 1));
  std::vector<std::string> rooms;
  for (size_t r = 0; r < kNumRooms; ++r) {
    rooms.push_back("r" + std::to_string(r));
    LAHAR_RETURN_NOT_OK(room->Insert({db->Sym(rooms.back())}));
  }
  for (size_t i = 0; i < num_tags; ++i) {
    Stream stream(at, {db->Sym("tag" + std::to_string(i))}, 1, horizon,
                  /*markovian=*/false);
    for (const std::string& r : rooms) stream.InternTuple({db->Sym(r)});
    for (Timestamp t = 1; t <= horizon; ++t) {
      if (all_active || SparseActiveAt(i, t, horizon)) {
        LAHAR_RETURN_NOT_OK(stream.SetMarginal(t, ActiveDist(i + t)));
      }
    }
    LAHAR_RETURN_NOT_OK(db->AddStream(std::move(stream)).status());
  }
  return db;
}

struct ModeResult {
  double create_ms = 0;
  double advance_ms = 0;  // best over reps
  double ticks_per_sec = 0;
  std::vector<double> probs;  // [1..horizon], from the last rep
  SessionResidency res;       // end-of-run snapshot, last rep
};

// Runs one (cell, mode): creates a StreamingSession with `opts`, advances
// it through the full horizon, snapshots residency at the end. The
// database is only read, so reps and modes share it.
bool RunMode(EventDatabase* db, const PreparedQuery& prepared,
             const ChainOptions& opts, Timestamp horizon, size_t reps,
             ModeResult* out) {
  for (size_t rep = 0; rep < reps; ++rep) {
    Result<StreamingSession> session =
        Status::Internal("session not created");
    const double create_ms = TimeMs([&] {
      session = StreamingSession::Create(db, prepared, opts);
    });
    if (!session.ok()) {
      std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
      return false;
    }
    out->probs.assign(1, 0.0);  // index 0 unused
    bool failed = false;
    const double ms = TimeMs([&] {
      for (Timestamp t = 1; t <= horizon; ++t) {
        Result<double> p = session->Advance();
        if (!p.ok()) {
          std::fprintf(stderr, "advance t=%u: %s\n", t,
                       p.status().ToString().c_str());
          failed = true;
          return;
        }
        out->probs.push_back(*p);
      }
    });
    if (failed) return false;
    out->res = session->Residency();
    if (rep == 0 || ms < out->advance_ms) out->advance_ms = ms;
    if (rep == 0) out->create_ms = create_ms;
  }
  out->ticks_per_sec = Throughput(horizon, out->advance_ms);
  return true;
}

void EmitJson(const std::string& cell, const std::string& mode,
              Timestamp horizon, size_t reps, const ModeResult& r) {
  const size_t registered = r.res.registered_units;
  JsonLine()
      .Add("bench", std::string("t10_resident_scale"))
      .Add("cell", cell)
      .Add("mode", mode)
      .Add("ticks", static_cast<size_t>(horizon))
      .Add("reps", reps)
      .Add("time_ms", r.advance_ms)
      .Add("create_ms", r.create_ms)
      .Add("ticks_per_sec", r.ticks_per_sec)
      .Add("registered_keys", registered)
      .Add("resident_chains", r.res.resident_units)
      .Add("stub_chains", r.res.stub_units)
      .Add("spilled_chains", r.res.spilled_units)
      .Add("bytes_resident", r.res.bytes_resident)
      .Add("bytes_per_registered_key",
           registered > 0
               ? static_cast<double>(r.res.bytes_resident) / registered
               : 0.0)
      .Add("resident_fraction",
           registered > 0
               ? static_cast<double>(r.res.resident_units) / registered
               : 0.0)
      .Add("promotions", static_cast<size_t>(r.res.promotions))
      .Add("spills", static_cast<size_t>(r.res.spills))
      .Add("rehydrations", static_cast<size_t>(r.res.rehydrations))
      .Print();
}

void PrintRow(const std::string& cell, const std::string& mode,
              const ModeResult& r) {
  const size_t registered = r.res.registered_units;
  std::printf(
      "%-16s %-15s %10.1f %11.1f %9zu/%-9zu %6zu %6zu %12.1f\n",
      cell.c_str(), mode.c_str(), r.ticks_per_sec, r.create_ms,
      r.res.resident_units, registered, r.res.spilled_units,
      static_cast<size_t>(r.res.spills),
      registered > 0 ? static_cast<double>(r.res.bytes_resident) / registered
                     : 0.0);
}

// Bitwise comparison of two modes' published probabilities; the lifecycle
// is an optimization, never a semantics change.
bool CheckBitwise(const std::string& cell, const ModeResult& a,
                  const std::string& a_name, const ModeResult& b,
                  const std::string& b_name) {
  if (a.probs.size() != b.probs.size()) {
    std::fprintf(stderr, "%s: %s ran %zu ticks, %s ran %zu\n", cell.c_str(),
                 a_name.c_str(), a.probs.size(), b_name.c_str(),
                 b.probs.size());
    return false;
  }
  for (size_t t = 1; t < a.probs.size(); ++t) {
    if (a.probs[t] != b.probs[t]) {
      std::fprintf(stderr, "%s MISMATCH at t=%zu: %s=%.17g %s=%.17g\n",
                   cell.c_str(), t, a_name.c_str(), a.probs[t],
                   b_name.c_str(), b.probs[t]);
      return false;
    }
  }
  return true;
}

ChainOptions DenseOptions() { return ChainOptions{}; }

ChainOptions LifecycleOptions(bool lazy) {
  ChainOptions opts;
  opts.lazy_materialize = lazy;
  opts.spill_cold_chains = true;
  opts.cold_after_ticks = 8;
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  // A two-subgoal sequence: chains hold partial-match state across ticks,
  // so going cold exercises the real spill encoding, not just re-stubbing.
  const std::string query =
      "At(x, l1 : Room(l1)); At(x, l2 : Room(l2))";

  const size_t sparse_tags = smoke ? 20000 : 100000;
  const Timestamp sparse_horizon = smoke ? 36 : 72;
  const size_t active_tags = smoke ? 512 : 2048;
  const Timestamp active_horizon = smoke ? 32 : 128;
  const size_t active_reps = smoke ? 2 : 3;
  const size_t wide_tags = smoke ? 80 : 300;
  const Timestamp wide_horizon = smoke ? 48 : 96;
  // The wide cell finishes in a few ms; best-of-3 keeps its ticks/sec
  // stable enough for the 10% regression gate.
  const size_t wide_reps = smoke ? 1 : 3;

  std::printf("Resident scale | chain lifecycle vs always-materialized%s\n",
              smoke ? " (smoke)" : "");
  std::printf("%-16s %-15s %10s %11s %19s %6s %6s %12s\n", "cell", "mode",
              "ticks/s", "create_ms", "resident/registered", "spilld",
              "spills", "bytes/key");

  double sparse_bytes_dense = 0, sparse_bytes_lifecycle = 0;
  double sparse_resident_fraction = 0;
  double dense_ticks_ratio = 0;
  bool drift = false;

  // --- sparse: 100k registered keys, ~2% ever active ----------------------
  {
    auto db = BuildDb(sparse_tags, sparse_horizon, /*all_active=*/false);
    if (!db.ok()) {
      std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
      return 1;
    }
    auto prepared = PrepareQuery(query, db->get());
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
      return 1;
    }
    ModeResult dense, lifecycle;
    if (!RunMode(db->get(), *prepared, DenseOptions(), sparse_horizon, 1,
                 &dense) ||
        !RunMode(db->get(), *prepared, LifecycleOptions(/*lazy=*/true),
                 sparse_horizon, 1, &lifecycle)) {
      return 1;
    }
    drift |= !CheckBitwise("sparse", dense, "dense", lifecycle, "lifecycle");
    PrintRow("sparse", "dense", dense);
    PrintRow("sparse", "lifecycle", lifecycle);
    EmitJson("sparse", "dense", sparse_horizon, 1, dense);
    EmitJson("sparse", "lifecycle", sparse_horizon, 1, lifecycle);
    const size_t n = dense.res.registered_units;
    sparse_bytes_dense =
        n > 0 ? static_cast<double>(dense.res.bytes_resident) / n : 0.0;
    sparse_bytes_lifecycle =
        n > 0 ? static_cast<double>(lifecycle.res.bytes_resident) / n : 0.0;
    sparse_resident_fraction =
        n > 0 ? static_cast<double>(lifecycle.res.resident_units) / n : 0.0;
    if (lifecycle.res.spills == 0) {
      std::fprintf(stderr,
                   "sparse lifecycle run recorded no spills — the cold "
                   "half-run tags never went cold?\n");
      return 1;
    }
  }

  // --- dense_all_active: the lifecycle layer's overhead cell --------------
  {
    auto db = BuildDb(active_tags, active_horizon, /*all_active=*/true);
    if (!db.ok()) {
      std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
      return 1;
    }
    auto prepared = PrepareQuery(query, db->get());
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
      return 1;
    }
    ModeResult dense, lifecycle, lazy;
    if (!RunMode(db->get(), *prepared, DenseOptions(), active_horizon,
                 active_reps, &dense) ||
        !RunMode(db->get(), *prepared, LifecycleOptions(/*lazy=*/false),
                 active_horizon, active_reps, &lifecycle) ||
        !RunMode(db->get(), *prepared, LifecycleOptions(/*lazy=*/true),
                 active_horizon, active_reps, &lazy)) {
      return 1;
    }
    drift |= !CheckBitwise("dense_all_active", dense, "dense", lifecycle,
                           "lifecycle");
    drift |= !CheckBitwise("dense_all_active", dense, "dense", lazy,
                           "lifecycle_lazy");
    PrintRow("dense_all_active", "dense", dense);
    PrintRow("dense_all_active", "lifecycle", lifecycle);
    PrintRow("dense_all_active", "lifecycle_lazy", lazy);
    EmitJson("dense_all_active", "dense", active_horizon, active_reps, dense);
    EmitJson("dense_all_active", "lifecycle", active_horizon, active_reps,
             lifecycle);
    EmitJson("dense_all_active", "lifecycle_lazy", active_horizon,
             active_reps, lazy);
    if (dense.ticks_per_sec > 0) {
      dense_ticks_ratio = lifecycle.ticks_per_sec / dense.ticks_per_sec;
    }
  }

  // --- wide_floorplan: the simulated diurnal badge population -------------
  {
    auto scenario = WideFloorplanScenario(wide_tags, wide_horizon,
                                          /*seed=*/47);
    if (!scenario.ok()) {
      std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
      return 1;
    }
    auto db = scenario->BuildDatabase(StreamKind::kDiurnal);
    if (!db.ok()) {
      std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
      return 1;
    }
    const std::string wide_query =
        "At(x, l1 : NotRoom(l1)); At(x, l2 : Room(l2))";
    auto prepared = PrepareQuery(wide_query, db->get());
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
      return 1;
    }
    ModeResult dense, lifecycle;
    if (!RunMode(db->get(), *prepared, DenseOptions(), wide_horizon,
                 wide_reps, &dense) ||
        !RunMode(db->get(), *prepared, LifecycleOptions(/*lazy=*/true),
                 wide_horizon, wide_reps, &lifecycle)) {
      return 1;
    }
    drift |= !CheckBitwise("wide_floorplan", dense, "dense", lifecycle,
                           "lifecycle");
    PrintRow("wide_floorplan", "dense", dense);
    PrintRow("wide_floorplan", "lifecycle", lifecycle);
    EmitJson("wide_floorplan", "dense", wide_horizon, wide_reps, dense);
    EmitJson("wide_floorplan", "lifecycle", wide_horizon, wide_reps,
             lifecycle);
  }

  if (drift) return 1;

  const double bytes_ratio =
      sparse_bytes_dense > 0 ? sparse_bytes_lifecycle / sparse_bytes_dense
                             : 0.0;
  JsonLine()
      .Add("bench", std::string("t10_resident_scale_summary"))
      .Add("bytes_per_registered_key_ratio", bytes_ratio)
      .Add("sparse_resident_fraction", sparse_resident_fraction)
      .Add("dense_ticks_ratio", dense_ticks_ratio)
      .Print();
  std::printf(
      "\nbytes_per_registered_key_ratio = %.4f (lifecycle %.1f B/key vs "
      "dense %.1f B/key, sparse cell)\n",
      bytes_ratio, sparse_bytes_lifecycle, sparse_bytes_dense);
  std::printf("sparse_resident_fraction = %.4f\n", sparse_resident_fraction);
  std::printf("dense_ticks_ratio = %.3f (lifecycle vs dense ticks/sec, "
              "all-active cell)\n",
              dense_ticks_ratio);
  return 0;
}
