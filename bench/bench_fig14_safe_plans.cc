// Figure 14: safe plans. (a) Throughput of the Safe (not Extended Regular)
// query At(p, l1); At(p, l2); At(q, l3) versus naive sampling as the number
// of concurrent tags grows; (b) throughput as the *trace length* grows —
// the analytic worst case is O(T^3) total work (cubically decaying
// throughput), but lazy evaluation of the recurrence does much better.
#include <cmath>

#include "bench_util.h"
#include "engine/safe_engine.h"
#include "engine/sampling_engine.h"

using namespace lahar;
using namespace lahar::bench;

namespace {

double SafeMs(const PreparedQuery& prepared, const EventDatabase& db) {
  return TimeMs([&] {
    PlanOptions options;
    options.assume_distinct_keys = true;
    auto engine = SafePlanEngine::Create(prepared.normalized, db, options);
    if (!engine.ok()) {
      std::fprintf(stderr, "safe plan: %s\n",
                   engine.status().ToString().c_str());
      return;
    }
    auto probs = engine->Run();
    if (!probs.ok()) {
      std::fprintf(stderr, "safe run: %s\n",
                   probs.status().ToString().c_str());
    }
  });
}

}  // namespace

int main() {
  std::printf("Fig 14 | Safe-plan performance: %s\n", kSafeQuery);

  std::printf("\nFig 14(a): throughput vs concurrent tags (horizon=60)\n");
  std::printf("%-6s %16s %16s\n", "tags", "SafePlan(t/s)", "Sampling(t/s)");
  for (size_t tags : {2, 5, 10, 25, 50}) {
    auto scenario = RandomWalkScenario(tags, 60, /*seed=*/7 + tags);
    auto db = scenario->BuildDatabase(StreamKind::kFiltered);
    if (!db.ok()) return 1;
    size_t tuples = (*db)->TotalTuples();
    Lahar lahar(db->get());
    auto prepared = lahar.Prepare(kSafeQuery);
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
      return 1;
    }
    double safe_ms = SafeMs(*prepared, **db);
    double sampling_ms = TimeMs([&] {
      auto engine = SamplingEngine::Create(prepared->ast, **db, {});
      auto probs = engine->Run();
      (void)probs;
    });
    std::printf("%-6zu %16.0f %16.0f\n", tags, Throughput(tuples, safe_ms),
                Throughput(tuples, sampling_ms));
  }

  std::printf("\nFig 14(b): throughput vs simulated trace length (5 tags)\n");
  std::printf("%-10s %16s %14s %22s\n", "steps", "SafePlan(t/s)", "time(ms)",
              "worst-case O(T^3) pred");
  double base_ms = 0;
  Timestamp base_T = 0;
  for (Timestamp T : {300, 600, 1200, 1800, 2400, 3000}) {
    auto scenario = RandomWalkScenario(5, T, /*seed=*/21);
    auto db = scenario->BuildDatabase(StreamKind::kFiltered);
    if (!db.ok()) return 1;
    size_t tuples = (*db)->TotalTuples();
    Lahar lahar(db->get());
    auto prepared = lahar.Prepare(kSafeQuery);
    if (!prepared.ok()) return 1;
    double ms = SafeMs(*prepared, **db);
    if (base_ms == 0) {
      base_ms = ms;
      base_T = T;
    }
    double predicted_ms =
        base_ms * std::pow(static_cast<double>(T) / base_T, 3.0);
    std::printf("%-10u %16.0f %14.1f %20.1fms\n", T, Throughput(tuples, ms),
                ms, predicted_ms);
  }
  std::printf("\n(paper: measured asymptotics are much better than the "
              "analytic O(T^3) prediction thanks to lazy evaluation)\n");
  return 0;
}
