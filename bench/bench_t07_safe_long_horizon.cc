// Long-horizon safe-plan serving: per-tick latency and memory behaviour of
// a SafeQuerySession over a 100k-tick stream (2k with --smoke).
//
// One safe query — "R(x, u1); S(x, u2); T('a', y)", the seq-over-project
// shape — served tick by tick in two modes over bit-identical feeds:
//
//   mode=incremental  the sparse seq kernels + bounded memos (default)
//   mode=reference    SafePlanOptions::incremental = false — the dense
//                     Eq. (3) loops, O(t) per tick (the pre-optimization
//                     serving cost, kept selectable for verification)
//
// R/S are dense (a witness-truncation window keeps the live precursor set
// bounded); T is sparse (fires every 16th tick), so the witness index has
// real zero gaps to skip. Both modes must produce bit-identical per-tick
// probabilities — any mismatch is a hard failure, making this bench double
// as the equivalence cross-check at a horizon the unit tests can't reach.
//
// Reported per mode (grep ^JSON for the compare.py gate): total throughput,
// mean per-tick latency over an early window (ticks 901..1000) and the last
// 100 ticks, their ratio ("flatness" — the flat-latency acceptance bound is
// 2x), memo/row cache counters, and the incremental-over-reference speedup.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/session.h"

using namespace lahar;
using namespace lahar::bench;

namespace {

constexpr const char* kQuery = "R(x, u1); S(x, u2); T('a', y)";
constexpr size_t kKeys = 2;
constexpr Timestamp kFullHorizon = 100000;
constexpr Timestamp kSmokeHorizon = 2000;

// splitmix64: deterministic per-(tick, stream) marginals so every database
// built by BuildTick is bit-identical without sharing generator state.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double DenseProb(Timestamp t, uint64_t stream) {
  uint64_t h = Mix(static_cast<uint64_t>(t) * 1000003ULL + stream);
  return 0.2 + 0.4 * static_cast<double>(h >> 11) / 9007199254740992.0;
}

struct Setup {
  EventDatabase db;
  std::vector<StreamId> r_ids, s_ids;
  StreamId t_id = 0;
};

void DeclareSchema(EventDatabase* db, const std::string& type) {
  EventSchema schema;
  schema.type = db->interner().Intern(type);
  schema.attr_names = {db->interner().Intern("id"),
                       db->interner().Intern("value")};
  schema.num_key_attrs = 1;
  (void)db->DeclareSchema(schema);
}

StreamId AddEmptyStream(EventDatabase* db, const std::string& type,
                        const std::string& key, const std::string& value) {
  DeclareSchema(db, type);
  Stream s(db->interner().Intern(type), {db->Sym(key)}, 1, 0,
           /*markovian=*/false);
  s.InternTuple({db->Sym(value)});
  auto id = db->AddStream(std::move(s));
  if (!id.ok()) {
    std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
    std::exit(1);
  }
  return *id;
}

bool BuildSetup(Setup* out) {
  for (size_t k = 0; k < kKeys; ++k) {
    out->r_ids.push_back(
        AddEmptyStream(&out->db, "R", "k" + std::to_string(k + 1), "u"));
    out->s_ids.push_back(
        AddEmptyStream(&out->db, "S", "k" + std::to_string(k + 1), "v"));
  }
  out->t_id = AddEmptyStream(&out->db, "T", "a", "w");
  return true;
}

void Append(EventDatabase* db, StreamId id, double p) {
  // Domain is {bottom, value}: index 1 carries p, the rest is bottom.
  std::vector<double> dist = {1.0 - p, p};
  Status s = db->AppendMarginal(id, dist);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    std::exit(1);
  }
}

void AppendTick(Setup* setup, Timestamp t) {
  for (size_t k = 0; k < kKeys; ++k) {
    Append(&setup->db, setup->r_ids[k], DenseProb(t, 2 * k));
    Append(&setup->db, setup->s_ids[k], DenseProb(t, 2 * k + 1));
  }
  // Sparse witness stream: a high-confidence detection every 4th tick
  // (the paper's RFID setting — witness sightings are near-certain when
  // they happen). High confidence keeps the truncated precursor window
  // narrow, so the incremental path's per-tick work is genuinely O(live
  // window) while the reference still pays its O(t) dense-vector pass.
  Append(&setup->db, setup->t_id, t % 4 == 1 ? 0.995 : 0.0);
}

struct CellResult {
  bool ok = false;
  double time_ms = 0;
  double early_tick_us = 0;  // mean over ticks 901..1000
  double late_tick_us = 0;   // mean over the last 100 ticks
  SafeMemoStats memo;
  std::vector<double> probs;  // per tick (bitwise cross-check)
};

CellResult RunCell(bool incremental, Timestamp horizon) {
  CellResult result;
  Setup setup;
  if (!BuildSetup(&setup)) return result;
  LaharOptions options;
  options.plan.safe.incremental = incremental;
  Lahar serving(&setup.db, options);
  auto session = serving.OpenSession(kQuery);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return result;
  }
  QuerySession& q = **session;

  const Timestamp early_end = std::min<Timestamp>(1000, horizon / 2);
  const Timestamp early_begin = early_end > 100 ? early_end - 100 : 0;
  const Timestamp late_begin = horizon - 100;
  result.probs.reserve(horizon);
  uint64_t total_ns = 0, early_ns = 0, late_ns = 0;
  for (Timestamp t = 1; t <= horizon; ++t) {
    AppendTick(&setup, t);  // feed time excluded from the advance timing
    auto t0 = std::chrono::steady_clock::now();
    auto p = q.Advance();
    auto t1 = std::chrono::steady_clock::now();
    if (!p.ok()) {
      std::fprintf(stderr, "tick %u: %s\n", t, p.status().ToString().c_str());
      return result;
    }
    uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    total_ns += ns;
    if (t > early_begin && t <= early_end) early_ns += ns;
    if (t > late_begin) late_ns += ns;
    result.probs.push_back(*p);
  }
  result.time_ms = static_cast<double>(total_ns) / 1e6;
  const double early_n = static_cast<double>(early_end - early_begin);
  result.early_tick_us = static_cast<double>(early_ns) / early_n / 1000.0;
  result.late_tick_us = static_cast<double>(late_ns) / 100.0 / 1000.0;
  result.memo = q.MemoStats();
  result.ok = true;
  return result;
}

void PrintCell(const char* mode, const CellResult& r, Timestamp horizon,
               double speedup, double flatness) {
  JsonLine()
      .Add("bench", std::string("t07_safe_long_horizon"))
      .Add("mode", std::string(mode))
      .Add("keys", kKeys)
      .Add("ticks", static_cast<size_t>(horizon))
      .Add("time_ms", r.time_ms)
      .Add("ticks_per_sec", Throughput(horizon, r.time_ms))
      .Add("early_tick_us", r.early_tick_us)
      .Add("late_tick_us", r.late_tick_us)
      .Add("flatness", flatness)
      .Add("speedup", speedup)
      .Add("memo_entries", r.memo.memo_entries)
      .Add("memo_evictions", static_cast<size_t>(r.memo.memo_evictions))
      .Add("row_evictions", static_cast<size_t>(r.memo.row_evictions))
      .Add("row_rebuilds", static_cast<size_t>(r.memo.row_rebuilds))
      .Print();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const Timestamp horizon = smoke ? kSmokeHorizon : kFullHorizon;
  std::printf(
      "Safe-plan long-horizon serving | %u ticks, %zu keys, query: %s\n",
      horizon, kKeys, kQuery);

  CellResult inc = RunCell(/*incremental=*/true, horizon);
  CellResult ref = RunCell(/*incremental=*/false, horizon);
  if (!inc.ok || !ref.ok) return 1;

  // Bitwise cross-check: the sparse kernels skip exact zeros only, so the
  // two modes must agree on every tick to the last bit.
  for (Timestamp t = 1; t <= horizon; ++t) {
    if (inc.probs[t - 1] != ref.probs[t - 1]) {
      std::fprintf(stderr,
                   "BITWISE MISMATCH at tick %u: incremental=%.17g "
                   "reference=%.17g\n",
                   t, inc.probs[t - 1], ref.probs[t - 1]);
      return 1;
    }
  }

  const double speedup = inc.time_ms > 0 ? ref.time_ms / inc.time_ms : 0.0;
  const double inc_flatness =
      inc.early_tick_us > 0 ? inc.late_tick_us / inc.early_tick_us : 0.0;
  const double ref_flatness =
      ref.early_tick_us > 0 ? ref.late_tick_us / ref.early_tick_us : 0.0;
  PrintCell("incremental", inc, horizon, speedup, inc_flatness);
  PrintCell("reference", ref, horizon, 1.0, ref_flatness);

  std::printf("%-12s %10s %14s %14s %9s\n", "mode", "time_ms",
              "early_us/tick", "late_us/tick", "flatness");
  std::printf("%-12s %10.1f %14.2f %14.2f %9.2f\n", "incremental",
              inc.time_ms, inc.early_tick_us, inc.late_tick_us, inc_flatness);
  std::printf("%-12s %10.1f %14.2f %14.2f %9.2f\n", "reference", ref.time_ms,
              ref.early_tick_us, ref.late_tick_us, ref_flatness);
  std::printf(
      "cumulative speedup %.2fx | memo entries %zu (evictions %llu) | "
      "row evictions %llu\n",
      speedup, inc.memo.memo_entries,
      static_cast<unsigned long long>(inc.memo.memo_evictions),
      static_cast<unsigned long long>(inc.memo.row_evictions));

  if (!smoke) {
    // Acceptance gates (full run only; the 2k-tick smoke is too short for
    // the asymptotics to show and just sanity-checks the bitwise cross).
    if (inc_flatness > 2.0) {
      std::fprintf(stderr,
                   "FAIL: per-tick latency not flat (%.2fx between tick 1k "
                   "and %u)\n",
                   inc_flatness, horizon);
      return 1;
    }
    if (speedup < 5.0) {
      std::fprintf(stderr,
                   "FAIL: incremental speedup %.2fx < 5x over the reference "
                   "loop at T=%u\n",
                   speedup, horizon);
      return 1;
    }
  }
  return 0;
}
