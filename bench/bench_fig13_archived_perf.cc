// Figure 13: archived throughput (tuples/second) versus the number of
// concurrently tracked tags over smoothed Markovian streams, comparing the
// Viterbi MAP determinization, Lahar's Markov-chain evaluation, and naive
// random sampling. Queries are grounded per key and the times summed — the
// paper's architecture runs one query process per key per stream.
//
// Paper shape: Viterbi and Lahar(Markov) have comparable raw throughput,
// both orders of magnitude above sampling; and because a Markovian timestep
// carries ~D^2 CPT tuples where the MLE stream carries ~1, the *effective
// objects per second* of the Markovian pipeline is about an order of
// magnitude lower than the raw tuple rate suggests.
#include <string>

#include "bench_util.h"
#include "engine/extended_engine.h"
#include "engine/sampling_engine.h"

using namespace lahar;
using namespace lahar::bench;

namespace {

// Counts CPT entries as tuples (the E(ID, T, A', A, P) encoding of
// Fig. 3(d)), matching how the paper accounts for Markovian stream size.
size_t MarkovTuples(const EventDatabase& db) {
  size_t total = 0;
  for (StreamId s = 0; s < db.num_streams(); ++s) {
    const Stream& stream = db.stream(s);
    if (!stream.markovian()) continue;
    for (Timestamp t = 1; t < stream.horizon(); ++t) {
      const Matrix& cpt = stream.CptAt(t);
      for (size_t r = 0; r < cpt.rows(); ++r) {
        for (size_t c = 0; c < cpt.cols(); ++c) total += cpt.At(r, c) > 0;
      }
    }
  }
  return total;
}

std::string GroundQ1(const std::string& tag) {
  return "At('" + tag + "', l : CoffeeRoom(l))";
}
std::string GroundQ2(const std::string& tag) {
  return "At('" + tag + "', l1 : NotRoom(l1)); At('" + tag +
         "', l2 : CoffeeRoom(l2))";
}

void RunQuery(const char* label,
              std::string (*ground)(const std::string&)) {
  const Timestamp kHorizon = 60;
  std::printf("\n%s\n", label);
  std::printf("%-6s %16s %16s %16s %14s\n", "tags", "Viterbi(t/s)",
              "Lahar-Mkv(t/s)", "Sampling(t/s)", "eff-obj/s(Mkv)");
  for (size_t tags : {1, 5, 10, 25, 50}) {
    auto scenario = RandomWalkScenario(tags, kHorizon, /*seed=*/7 + tags);
    auto db = scenario->BuildDatabase(StreamKind::kSmoothed);
    if (!db.ok()) {
      std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
      return;
    }
    size_t tuples = MarkovTuples(**db);
    Lahar lahar(db->get());
    std::vector<PreparedQuery> prepared;
    for (const TagTrace& tag : scenario->tags) {
      auto p = lahar.Prepare(ground(tag.name));
      if (!p.ok()) {
        std::fprintf(stderr, "%s\n", p.status().ToString().c_str());
        return;
      }
      prepared.push_back(std::move(*p));
    }
    double viterbi_ms = TimeMs([&] {
      for (const PreparedQuery& p : prepared) {
        auto engine = DeterministicEngine::Create(p.ast, **db,
                                                  Determinization::kViterbi);
        auto sat = engine->Run();
        (void)sat;
      }
    });
    double lahar_ms = TimeMs([&] {
      for (const PreparedQuery& p : prepared) {
        auto engine = ExtendedRegularEngine::Create(p.normalized, **db);
        auto probs = engine->Run();
        (void)probs;
      }
    });
    double sampling_ms = TimeMs([&] {
      for (const PreparedQuery& p : prepared) {
        auto engine = SamplingEngine::Create(p.ast, **db, {});
        auto probs = engine->Run();
        (void)probs;
      }
    });
    double eff_objects =
        lahar_ms > 0 ? 1000.0 * tags * kHorizon / lahar_ms : 0.0;
    std::printf("%-6zu %16.0f %16.0f %16.0f %14.0f\n", tags,
                Throughput(tuples, viterbi_ms), Throughput(tuples, lahar_ms),
                Throughput(tuples, sampling_ms), eff_objects);
  }
}

}  // namespace

int main() {
  std::printf("Fig 13 | Archived throughput vs concurrent tags "
              "(horizon=60, smoothed Markovian streams; tuple count = CPT "
              "entries; one grounded query per key)\n");
  RunQuery("Fig 13(a) Q1 [Regular selection]", GroundQ1);
  RunQuery("Fig 13(b) Q2 [Extended Regular sequence]", GroundQ2);
  std::printf("\n(paper: Viterbi ~ Lahar(Markov) >> sampling; effective "
              "objects/s ~an order of magnitude below raw tuples/s)\n");
  return 0;
}
