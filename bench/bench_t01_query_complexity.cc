// Section 4.3.2, query-complexity experiment: throughput as the number of
// subgoals grows, with 50 concurrently tracked tags.
//
// Paper shape: real-time (independent) streams keep pace with the trace up
// to ~5 subgoals; Markovian streams, which carry far more state, manage ~3
// — acceptable because Markovian queries are meant for offline use.
#include <string>

#include "bench_util.h"
#include "engine/extended_engine.h"

using namespace lahar;
using namespace lahar::bench;

namespace {

// A sequence of k location subgoals grounded to one tag (the paper's
// per-key processes): the first k-1 steps outside rooms, the last in the
// coffee room.
std::string QueryWithSubgoals(const std::string& tag, int k) {
  std::string q;
  for (int i = 1; i <= k; ++i) {
    if (i > 1) q += "; ";
    std::string var = "l" + std::to_string(i);
    if (i == k) {
      q += "At('" + tag + "', " + var + " : CoffeeRoom(" + var + "))";
    } else {
      q += "At('" + tag + "', " + var + " : NotRoom(" + var + "))";
    }
  }
  return q;
}

void Run(const char* label, StreamKind kind, int max_subgoals) {
  const size_t kTags = 50;
  const Timestamp kHorizon = 60;
  auto scenario = RandomWalkScenario(kTags, kHorizon, /*seed=*/13);
  auto db = scenario->BuildDatabase(kind);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return;
  }
  size_t tuples = (*db)->TotalTuples();
  std::printf("\n%s (50 tags, horizon 60, %zu tuples)\n", label, tuples);
  std::printf("%-10s %14s %12s %18s\n", "subgoals", "tuples/s", "time(ms)",
              "keeps pace (<60s)");
  Lahar lahar(db->get());
  for (int k = 1; k <= max_subgoals; ++k) {
    std::vector<PreparedQuery> prepared;
    for (const TagTrace& tag : scenario->tags) {
      auto p = lahar.Prepare(QueryWithSubgoals(tag.name, k));
      if (!p.ok()) return;
      prepared.push_back(std::move(*p));
    }
    double ms = TimeMs([&] {
      for (const PreparedQuery& p : prepared) {
        auto engine = ExtendedRegularEngine::Create(p.normalized, **db);
        if (engine.ok()) {
          auto probs = engine->Run();
          (void)probs;
        }
      }
    });
    std::printf("%-10d %14.0f %12.1f %18s\n", k, Throughput(tuples, ms), ms,
                ms < 60000.0 ? "yes" : "NO");
  }
}

}  // namespace

int main() {
  std::printf("Sec 4.3.2 | throughput vs number of subgoals\n");
  Run("Real-time (independent streams)", StreamKind::kFiltered, 6);
  Run("Archived (Markovian streams)", StreamKind::kSmoothed, 5);
  std::printf("\n(paper: viable up to ~5 subgoals real-time, ~3 Markovian)\n");
  return 0;
}
