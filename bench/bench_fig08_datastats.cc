// Figure 8: deployment and data statistics. The original experiment had 8
// people and 52 objects moving through a two-floor instrumented building
// for ~72 minutes; this bench reports the same inventory for our synthetic
// deployment plus the sizes of each derived data product (filtered
// marginals, smoothed marginals, smoothed CPTs, Viterbi paths).
#include "bench_util.h"
#include "inference/viterbi.h"

using namespace lahar;
using namespace lahar::bench;

namespace {

size_t CptTuples(const EventDatabase& db) {
  size_t total = 0;
  for (StreamId s = 0; s < db.num_streams(); ++s) {
    const Stream& stream = db.stream(s);
    if (!stream.markovian()) continue;
    for (Timestamp t = 1; t < stream.horizon(); ++t) {
      const Matrix& cpt = stream.CptAt(t);
      for (size_t r = 0; r < cpt.rows(); ++r) {
        for (size_t c = 0; c < cpt.cols(); ++c) total += cpt.At(r, c) > 0;
      }
    }
  }
  return total;
}

}  // namespace

int main() {
  const size_t kPeople = 8;
  const size_t kObjects = 52;
  const Timestamp kHorizon = 600;  // ~72 simulated minutes at ~7s steps

  // People are office workers; objects random-walk (they ride along with
  // whoever carries them — approximated as independent walkers).
  auto people = OfficeScenario(kPeople, kHorizon, /*seed=*/88);
  auto objects = RandomWalkScenario(kObjects, kHorizon, /*seed=*/99);
  if (!people.ok() || !objects.ok()) return 1;

  const Floorplan& fp = *people->floorplan;
  std::printf("Fig 8(a) | deployment inventory (paper values in parens)\n");
  std::printf("%-22s %8zu  (8)\n", "People", kPeople);
  std::printf("%-22s %8zu  (52)\n", "Objects", kObjects);
  std::printf("%-22s %8zu  (352)\n", "Locations",
              fp.num_locations() + objects->floorplan->num_locations());
  std::printf("%-22s %8zu  (38)\n", "Antennas",
              fp.num_antennas() + objects->floorplan->num_antennas());
  std::printf("%-22s %8u  (~4300 s)\n", "Duration (steps)", kHorizon);

  // Merge both scenarios' tags into one database per representation.
  auto count = [&](StreamKind kind) -> std::pair<size_t, size_t> {
    auto pdb = people->BuildDatabase(kind);
    auto odb = objects->BuildDatabase(kind);
    if (!pdb.ok() || !odb.ok()) return {0, 0};
    size_t tuples = (*pdb)->TotalTuples() + (*odb)->TotalTuples();
    size_t cpts = CptTuples(**pdb) + CptTuples(**odb);
    return {tuples, cpts};
  };

  std::printf("\nFig 8(b) | data products (tuple counts)\n");
  std::printf("%-22s %12s\n", "Data", "Tuples");
  auto [filtered, fc] = count(StreamKind::kFiltered);
  std::printf("%-22s %12zu   (paper: 5.2M)\n", "Filtered probs", filtered);
  auto [smoothed, sc] = count(StreamKind::kSmoothed);
  std::printf("%-22s %12zu   (paper: 5.2M)\n", "Smoothed probs", smoothed);
  std::printf("%-22s %12zu   (paper: 509M)\n", "Smoothed CPTs", sc);
  // Viterbi path: one tuple per tag per timestep.
  std::printf("%-22s %12zu   (paper: 75k)\n", "Viterbi paths",
              (kPeople + kObjects) * static_cast<size_t>(kHorizon));
  std::printf("\n(shape: CPTs dominate storage by ~2 orders of magnitude; "
              "Viterbi paths are the smallest product)\n");
  (void)fc;
  (void)smoothed;
  return 0;
}
