// Kernel speedup experiment: ticks/sec of the Extended Regular hot path
// under its three execution modes —
//
//   map    — the dynamic hash-map path (the pre-kernel implementation),
//   kernel — compiled transition kernels, each chain owning its state,
//   soa    — compiled kernels with all chains' state packed into the
//            engine's contiguous SoA arena (the default configuration).
//
// The workload is the paper's Section 4.3 shape: m tags moving through the
// building, one per-key chain each, on both the archived Markovian streams
// (smoothed + CPTs; joint hidden state) and the real-time independent
// streams (filtered marginals). All modes produce bit-identical
// probabilities (tests/kernel_equivalence_test.cc), so only the clock
// distinguishes them.
//
// One `JSON {...}` line per (workload, config) cell — grep ^JSON and feed
// two runs to bench/compare.py to gate regressions. `--smoke` shrinks the
// workload to a ~2s ctest smoke check.
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "automaton/simd.h"
#include "bench_util.h"
#include "engine/extended_engine.h"
#include "query/normalize.h"
#include "query/parser.h"

using namespace lahar;
using namespace lahar::bench;

namespace {

struct BenchConfig {
  const char* name;
  ChainOptions options;
};

std::vector<BenchConfig> Configs() {
  BenchConfig map{"map", {}};
  map.options.kernel.max_flat_states = 0;
  BenchConfig kernel{"kernel", {}};
  kernel.options.soa_arena = false;
  BenchConfig soa{"soa", {}};
  return {map, kernel, soa};
}

struct CellResult {
  double ticks_per_sec = 0;
  double checksum = 0;  // sum of all published probs; must match across modes
};

// Times repeated full Run() passes (engine creation excluded) until the
// cell has run for at least `min_ms`.
CellResult RunCell(const NormalizedQuery& nq, const EventDatabase& db,
                   const char* workload, const BenchConfig& config,
                   double min_ms) {
  CellResult result;
  double total_ms = 0;
  size_t reps = 0;
  size_t chains = 0, compiled = 0;
  Timestamp horizon = db.horizon();
  while (total_ms < min_ms || reps == 0) {
    auto engine = ExtendedRegularEngine::Create(nq, db, config.options);
    if (!engine.ok()) {
      std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
      return result;
    }
    chains = engine->num_chains();
    compiled = engine->num_compiled();
    std::vector<double> probs;
    total_ms += TimeMs([&] { probs = engine->Run(); });
    if (reps == 0) {
      for (double p : probs) result.checksum += p;
    }
    ++reps;
  }
  result.ticks_per_sec = Throughput(horizon * reps, total_ms);
  JsonLine()
      .Add("bench", std::string("t05_kernel_speedup"))
      .Add("workload", std::string(workload))
      .Add("config", std::string(config.name))
      .Add("chains", chains)
      .Add("compiled", compiled)
      .Add("ticks", static_cast<size_t>(horizon) * reps)
      .Add("time_ms", total_ms)
      .Add("ticks_per_sec", result.ticks_per_sec)
      .Print();
  return result;
}

int RunWorkload(const Scenario& scenario, StreamKind kind,
                const char* workload, double min_ms) {
  auto db = scenario.BuildDatabase(kind);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  const std::string query =
      "At(x, l1 : NotRoom(l1)); At(x, l2 : Room(l2))";
  auto q = ParseQuery(query, &(*db)->interner());
  if (!q.ok()) {
    std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
    return 1;
  }
  auto nq = Normalize(**q);
  if (!nq.ok()) {
    std::fprintf(stderr, "%s\n", nq.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%s streams | m chains, horizon %u\n", workload,
              (*db)->horizon());
  std::printf("%-8s %14s %10s\n", "config", "ticks/sec", "speedup");
  double base = 0, base_checksum = 0;
  int rc = 0;
  for (const BenchConfig& config : Configs()) {
    CellResult r = RunCell(*nq, **db, workload, config, min_ms);
    if (std::strcmp(config.name, "map") == 0) {
      base = r.ticks_per_sec;
      base_checksum = r.checksum;
    } else if (r.checksum != base_checksum) {
      // The kernel contract is bit-identity; a drifting checksum is a bug,
      // not a measurement artifact.
      std::fprintf(stderr, "FAIL: %s/%s checksum %.17g != map %.17g\n",
                   workload, config.name, r.checksum, base_checksum);
      rc = 1;
    }
    std::printf("%-8s %14.1f %9.2fx\n", config.name, r.ticks_per_sec,
                base > 0 ? r.ticks_per_sec / base : 0.0);
  }
  return rc;
}

// --- Wide-arena vectorized kernel cell -------------------------------------
//
// The workload the SIMD step path is built for: many per-tag Markov chains
// over one shared dense CPT (every tag interns the same transition-row
// class; initial distributions stay distinct per tag so the fingerprint's
// t==1 exclusion is what makes the class shared). Three configs ride the
// same SoA arena:
//
//   soa          — scalar CSR walk forced (step_mode=kScalar): the reference
//   soa-simd     — vectorized dense-row kernels (bit-identical to soa)
//   soa-simd-f32 — float32 row tier (bounded drift; see automaton/rows.h)
//
// The summary record carries the two CI-gated metrics: kernel_simd_speedup
// (tps soa-simd / tps soa) and bytes_per_chain_reduction (bpc soa / bpc
// soa-simd).

Matrix WideCpt(size_t n) {
  Matrix cpt(n, n, 0.0);
  cpt.At(0, 0) = 1.0;  // bottom absorbing
  for (size_t d = 1; d < n; ++d) {
    double total = 0;
    for (size_t d2 = 1; d2 < n; ++d2) {
      double w = 1.0;  // uniform floor keeps the rows fully dense
      if (d2 == d) {
        w = 6.0;  // self bias
      } else if (d2 == d % (n - 1) + 1) {
        w = 2.0;  // one preferred neighbor
      }
      cpt.At(d, d2) = w;
      total += w;
    }
    for (size_t d2 = 1; d2 < n; ++d2) cpt.At(d, d2) /= total;
  }
  return cpt;
}

void AddWideTag(EventDatabase* db, size_t i, const Matrix& cpt,
                const std::vector<std::string>& locs, Timestamp horizon) {
  Stream s(db->interner().Intern("At"),
           {db->Sym("tag" + std::to_string(i))}, 1, horizon,
           /*markovian=*/true);
  for (const std::string& l : locs) s.InternTuple({db->Sym(l)});
  const size_t n = s.domain_size();
  std::vector<double> init(n, 0.0);
  double total = 0;
  for (size_t d = 1; d < n; ++d) {
    init[d] = 1.0 + static_cast<double>((i * 7 + d) % 5);
    total += init[d];
  }
  for (size_t d = 1; d < n; ++d) init[d] /= total;
  if (!s.SetInitial(init).ok()) std::abort();
  for (Timestamp t = 1; t < horizon; ++t) {
    if (!s.SetCpt(t, cpt).ok()) std::abort();
  }
  if (!s.FinalizeMarkov().ok()) std::abort();
  if (!db->AddStream(std::move(s)).ok()) std::abort();
}

struct WideCellResult {
  double ticks_per_sec = 0;
  double checksum = 0;
  double bytes_per_chain = 0;
};

WideCellResult RunWideCell(const NormalizedQuery& nq, const EventDatabase& db,
                           const BenchConfig& config, double min_ms) {
  WideCellResult result;
  double total_ms = 0;
  size_t reps = 0, chains = 0, compiled = 0, simd_chains = 0, striped = 0;
  Timestamp horizon = db.horizon();
  while (total_ms < min_ms || reps == 0) {
    auto engine = ExtendedRegularEngine::Create(nq, db, config.options);
    if (!engine.ok()) {
      std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
      return result;
    }
    chains = engine->num_chains();
    compiled = engine->num_compiled();
    simd_chains = engine->num_simd();
    std::vector<double> probs;
    total_ms += TimeMs([&] { probs = engine->Run(); });
    if (reps == 0) {
      for (double p : probs) result.checksum += p;
      result.bytes_per_chain =
          chains > 0
              ? static_cast<double>(engine->Footprint().bytes()) / chains
              : 0;
      striped = engine->num_striped();
    }
    ++reps;
  }
  result.ticks_per_sec = Throughput(horizon * reps, total_ms);
  JsonLine()
      .Add("bench", std::string("t05_kernel_speedup"))
      .Add("workload", std::string("wide"))
      .Add("config", std::string(config.name))
      .Add("chains", chains)
      .Add("compiled", compiled)
      .Add("simd_chains", simd_chains)
      .Add("striped", striped)
      .Add("ticks", static_cast<size_t>(horizon) * reps)
      .Add("time_ms", total_ms)
      .Add("ticks_per_sec", result.ticks_per_sec)
      .Add("bytes_per_chain", result.bytes_per_chain)
      .Print();
  return result;
}

int RunWideWorkload(size_t tags, Timestamp horizon, double min_ms) {
  EventDatabase db;
  EventSchema schema;
  schema.type = db.interner().Intern("At");
  schema.attr_names = {db.interner().Intern("id"),
                       db.interner().Intern("value")};
  schema.num_key_attrs = 1;
  if (!db.DeclareSchema(schema).ok()) return 1;
  std::vector<std::string> locs;
  for (int r = 1; r <= 8; ++r) locs.push_back("r" + std::to_string(r));
  for (int h = 1; h <= 8; ++h) locs.push_back("h" + std::to_string(h));
  auto room = db.DeclareRelation("Room", 1);
  auto notroom = db.DeclareRelation("NotRoom", 1);
  if (!room.ok() || !notroom.ok()) return 1;
  for (const std::string& l : locs) {
    Relation* rel = l[0] == 'r' ? *room : *notroom;
    if (!rel->Insert({db.Sym(l)}).ok()) return 1;
  }
  Matrix cpt = WideCpt(locs.size() + 1);
  for (size_t i = 0; i < tags; ++i) {
    AddWideTag(&db, i, cpt, locs, horizon);
  }

  const std::string query = "At(x, l1 : NotRoom(l1)); At(x, l2 : Room(l2))";
  auto q = ParseQuery(query, &db.interner());
  if (!q.ok()) {
    std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
    return 1;
  }
  auto nq = Normalize(**q);
  if (!nq.ok()) {
    std::fprintf(stderr, "%s\n", nq.status().ToString().c_str());
    return 1;
  }

  BenchConfig scalar{"soa", {}};
  scalar.options.step_mode = KernelStepMode::kScalar;
  BenchConfig simd{"soa-simd", {}};
  simd.options.step_mode = KernelStepMode::kSimd;
  BenchConfig f32{"soa-simd-f32", {}};
  f32.options.step_mode = KernelStepMode::kSimd;
  f32.options.float32_rows = true;

  std::printf("\nwide streams | %zu chains, horizon %u, shared CPT (%s)\n",
              tags, horizon, simd::IsaName());
  std::printf("%-14s %14s %10s %16s\n", "config", "ticks/sec", "speedup",
              "bytes/chain");
  int rc = 0;
  WideCellResult rs = RunWideCell(*nq, db, scalar, min_ms);
  WideCellResult rv = RunWideCell(*nq, db, simd, min_ms);
  WideCellResult rf = RunWideCell(*nq, db, f32, min_ms);
  if (rv.checksum != rs.checksum) {
    // Vectorized vs scalar is a bit-identity contract, same as kernel vs
    // map: a drifting checksum is a bug, not a measurement artifact.
    std::fprintf(stderr, "FAIL: wide/soa-simd checksum %.17g != soa %.17g\n",
                 rv.checksum, rs.checksum);
    rc = 1;
  }
  // The f32 tier trades exactness for bytes under a documented bound; a
  // loose relative check still catches gross breakage.
  if (rs.checksum > 0 &&
      std::fabs(rf.checksum - rs.checksum) > 1e-4 * rs.checksum) {
    std::fprintf(stderr, "FAIL: wide/soa-simd-f32 checksum %.17g drifted "
                 "beyond 1e-4 of soa %.17g\n", rf.checksum, rs.checksum);
    rc = 1;
  }
  for (const auto& [name, r] :
       {std::pair<const char*, const WideCellResult&>{"soa", rs},
        {"soa-simd", rv},
        {"soa-simd-f32", rf}}) {
    std::printf("%-14s %14.1f %9.2fx %16.0f\n", name, r.ticks_per_sec,
                rs.ticks_per_sec > 0 ? r.ticks_per_sec / rs.ticks_per_sec
                                     : 0.0,
                r.bytes_per_chain);
  }
  JsonLine()
      .Add("bench", std::string("t05_kernel_speedup"))
      .Add("workload", std::string("wide"))
      .Add("config", std::string("summary"))
      .Add("kernel_simd_speedup",
           rs.ticks_per_sec > 0 ? rv.ticks_per_sec / rs.ticks_per_sec : 0.0)
      .Add("bytes_per_chain_reduction",
           rv.bytes_per_chain > 0 ? rs.bytes_per_chain / rv.bytes_per_chain
                                  : 0.0)
      .Print();
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const size_t tags = smoke ? 16 : 64;
  const Timestamp horizon = smoke ? 50 : 200;
  const double min_ms = smoke ? 50 : 500;

  std::printf("Kernel speedup | %zu tags, horizon %u%s\n", tags, horizon,
              smoke ? " (smoke)" : "");
  auto scenario = RandomWalkScenario(tags, horizon, /*seed=*/43);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  int rc = 0;
  rc |= RunWorkload(*scenario, StreamKind::kSmoothed, "markov", min_ms);
  rc |= RunWorkload(*scenario, StreamKind::kFiltered, "independent", min_ms);
  rc |= RunWideWorkload(smoke ? 48 : 256, horizon, min_ms);
  std::printf("\n(map/kernel/soa are bit-identical; see "
              "tests/kernel_equivalence_test.cc)\n");
  return rc;
}
