// Kernel speedup experiment: ticks/sec of the Extended Regular hot path
// under its three execution modes —
//
//   map    — the dynamic hash-map path (the pre-kernel implementation),
//   kernel — compiled transition kernels, each chain owning its state,
//   soa    — compiled kernels with all chains' state packed into the
//            engine's contiguous SoA arena (the default configuration).
//
// The workload is the paper's Section 4.3 shape: m tags moving through the
// building, one per-key chain each, on both the archived Markovian streams
// (smoothed + CPTs; joint hidden state) and the real-time independent
// streams (filtered marginals). All modes produce bit-identical
// probabilities (tests/kernel_equivalence_test.cc), so only the clock
// distinguishes them.
//
// One `JSON {...}` line per (workload, config) cell — grep ^JSON and feed
// two runs to bench/compare.py to gate regressions. `--smoke` shrinks the
// workload to a ~2s ctest smoke check.
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/extended_engine.h"
#include "query/normalize.h"
#include "query/parser.h"

using namespace lahar;
using namespace lahar::bench;

namespace {

struct BenchConfig {
  const char* name;
  ChainOptions options;
};

std::vector<BenchConfig> Configs() {
  BenchConfig map{"map", {}};
  map.options.kernel.max_flat_states = 0;
  BenchConfig kernel{"kernel", {}};
  kernel.options.soa_arena = false;
  BenchConfig soa{"soa", {}};
  return {map, kernel, soa};
}

struct CellResult {
  double ticks_per_sec = 0;
  double checksum = 0;  // sum of all published probs; must match across modes
};

// Times repeated full Run() passes (engine creation excluded) until the
// cell has run for at least `min_ms`.
CellResult RunCell(const NormalizedQuery& nq, const EventDatabase& db,
                   const char* workload, const BenchConfig& config,
                   double min_ms) {
  CellResult result;
  double total_ms = 0;
  size_t reps = 0;
  size_t chains = 0, compiled = 0;
  Timestamp horizon = db.horizon();
  while (total_ms < min_ms || reps == 0) {
    auto engine = ExtendedRegularEngine::Create(nq, db, config.options);
    if (!engine.ok()) {
      std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
      return result;
    }
    chains = engine->num_chains();
    compiled = engine->num_compiled();
    std::vector<double> probs;
    total_ms += TimeMs([&] { probs = engine->Run(); });
    if (reps == 0) {
      for (double p : probs) result.checksum += p;
    }
    ++reps;
  }
  result.ticks_per_sec = Throughput(horizon * reps, total_ms);
  JsonLine()
      .Add("bench", std::string("t05_kernel_speedup"))
      .Add("workload", std::string(workload))
      .Add("config", std::string(config.name))
      .Add("chains", chains)
      .Add("compiled", compiled)
      .Add("ticks", static_cast<size_t>(horizon) * reps)
      .Add("time_ms", total_ms)
      .Add("ticks_per_sec", result.ticks_per_sec)
      .Print();
  return result;
}

int RunWorkload(const Scenario& scenario, StreamKind kind,
                const char* workload, double min_ms) {
  auto db = scenario.BuildDatabase(kind);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  const std::string query =
      "At(x, l1 : NotRoom(l1)); At(x, l2 : Room(l2))";
  auto q = ParseQuery(query, &(*db)->interner());
  if (!q.ok()) {
    std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
    return 1;
  }
  auto nq = Normalize(**q);
  if (!nq.ok()) {
    std::fprintf(stderr, "%s\n", nq.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%s streams | m chains, horizon %u\n", workload,
              (*db)->horizon());
  std::printf("%-8s %14s %10s\n", "config", "ticks/sec", "speedup");
  double base = 0, base_checksum = 0;
  int rc = 0;
  for (const BenchConfig& config : Configs()) {
    CellResult r = RunCell(*nq, **db, workload, config, min_ms);
    if (std::strcmp(config.name, "map") == 0) {
      base = r.ticks_per_sec;
      base_checksum = r.checksum;
    } else if (r.checksum != base_checksum) {
      // The kernel contract is bit-identity; a drifting checksum is a bug,
      // not a measurement artifact.
      std::fprintf(stderr, "FAIL: %s/%s checksum %.17g != map %.17g\n",
                   workload, config.name, r.checksum, base_checksum);
      rc = 1;
    }
    std::printf("%-8s %14.1f %9.2fx\n", config.name, r.ticks_per_sec,
                base > 0 ? r.ticks_per_sec / base : 0.0);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const size_t tags = smoke ? 16 : 64;
  const Timestamp horizon = smoke ? 50 : 200;
  const double min_ms = smoke ? 50 : 500;

  std::printf("Kernel speedup | %zu tags, horizon %u%s\n", tags, horizon,
              smoke ? " (smoke)" : "");
  auto scenario = RandomWalkScenario(tags, horizon, /*seed=*/43);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  int rc = 0;
  rc |= RunWorkload(*scenario, StreamKind::kSmoothed, "markov", min_ms);
  rc |= RunWorkload(*scenario, StreamKind::kFiltered, "independent", min_ms);
  std::printf("\n(map/kernel/soa are bit-identical; see "
              "tests/kernel_equivalence_test.cc)\n");
  return rc;
}
