// CPT pruning (Section 4.3.2's optimization note): the paper reduced its
// 26 GB CPT relation ~26x "without a noticeable degradation in quality" by
// pruning. We sweep the pruning threshold and report storage (non-zero CPT
// entries), archived-query quality, and throughput.
#include "bench_util.h"
#include "engine/extended_engine.h"

using namespace lahar;
using namespace lahar::bench;

namespace {

size_t CptEntries(const EventDatabase& db) {
  size_t total = 0;
  for (StreamId s = 0; s < db.num_streams(); ++s) {
    const Stream& stream = db.stream(s);
    if (!stream.markovian()) continue;
    for (Timestamp t = 1; t < stream.horizon(); ++t) {
      const Matrix& cpt = stream.CptAt(t);
      for (size_t r = 0; r < cpt.rows(); ++r) {
        for (size_t c = 0; c < cpt.cols(); ++c) total += cpt.At(r, c) > 0;
      }
    }
  }
  return total;
}

}  // namespace

int main() {
  const Timestamp kHorizon = 400;
  const Timestamp kTolerance = 8;
  const double kRho = 0.12;
  auto scenario = OfficeScenario(6, kHorizon, /*seed=*/2008, QualityConfig());
  if (!scenario.ok()) return 1;
  // Ground truth once.
  TagQualityData reference = CollectTagQuality(*scenario, StreamKind::kSmoothed,
                                               Determinization::kViterbi);

  std::printf("Sec 4.3.2 optimization | CPT pruning threshold sweep "
              "(archived coffee query, rho=%.2f)\n",
              kRho);
  std::printf("%-10s %14s %10s %10s %10s %10s %12s\n", "epsilon", "entries",
              "ratio", "P", "R", "F1", "time(ms)");
  for (double eps : {0.0, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1}) {
    auto db = scenario->BuildDatabase(StreamKind::kSmoothed);
    if (!db.ok()) return 1;
    static size_t baseline_entries = 0;
    for (StreamId s = 0; s < (*db)->num_streams(); ++s) {
      if (eps > 0) {
        if (!(*db)->stream(s).PruneCpts(eps).ok()) return 1;
      }
    }
    size_t entries = CptEntries(**db);
    if (eps == 0.0) baseline_entries = entries;

    // Per-tag quality + timing on the pruned database.
    PooledScore pooled;
    double total_ms = 0;
    Lahar lahar(db->get());
    for (size_t i = 0; i < scenario->tags.size(); ++i) {
      std::string query = TagCoffeeQuery(scenario->tags[i].name);
      auto prepared = lahar.Prepare(query);
      if (!prepared.ok()) return 1;
      std::vector<double> probs;
      total_ms += TimeMs([&] {
        auto engine = ExtendedRegularEngine::Create(prepared->normalized, **db);
        if (engine.ok()) probs = engine->Run();
      });
      pooled.Add(Score(probs, kRho, reference.truths[i], kTolerance));
    }
    QualityScore s = pooled.Finish();
    std::printf("%-10.0e %14zu %9.1fx %10.3f %10.3f %10.3f %12.1f\n", eps,
                entries,
                entries > 0 ? double(baseline_entries) / entries : 0.0,
                s.precision, s.recall, s.f1, total_ms);
  }
  std::printf("\n(paper: ~26x CPT reduction without noticeable quality "
              "loss; expect quality to hold for small epsilon and degrade "
              "once real transitions are pruned)\n");
  return 0;
}
